//===- ablation_strategies.cpp - Strategy comparison ---------------------------===//
//
// Ablation: the full strategy ladder per workload — no promotion beyond
// safe PRE (conservative), the software run-time disambiguation baseline
// [30], ALAT speculation (the paper), and the paper's §2.5 st.a
// extension on top. Also ALAT without the alias profile, which must
// degenerate to the baseline (no χ can be marked speculative).
//
//===----------------------------------------------------------------------===//

#include "../bench/BenchUtil.h"

using namespace srp;
using namespace srp::bench;
using namespace srp::core;

int main() {
  printHeader("Ablation: promotion strategies",
              "cycles per workload across the strategy ladder");

  outs() << formatString("%-8s %12s %12s %12s %12s %14s\n", "bench",
                         "conserv", "baseline", "alat", "alat+st.a",
                         "alat(no prof)");
  for (const Workload &W : workloads::standardWorkloads()) {
    PipelineResult Cons =
        runOrDie(W, configFor(pre::PromotionConfig::conservative()));
    PipelineResult Base =
        runOrDie(W, configFor(pre::PromotionConfig::baselineO3()));
    PipelineResult Alat =
        runOrDie(W, configFor(pre::PromotionConfig::alat()));
    pre::PromotionConfig StACfg = pre::PromotionConfig::alat();
    StACfg.UseStA = true;
    PipelineConfig StAPipe = configFor(StACfg);
    StAPipe.Sim.UseStA = true;
    PipelineResult StA = runOrDie(W, StAPipe);
    PipelineConfig NoProf = configFor(pre::PromotionConfig::alat());
    NoProf.UseAliasProfile = false;
    PipelineResult NP = runOrDie(W, NoProf);
    outs() << formatString(
        "%-8s %12llu %12llu %12llu %12llu %14llu\n", W.Name.c_str(),
        (unsigned long long)Cons.Sim.Counters.Cycles,
        (unsigned long long)Base.Sim.Counters.Cycles,
        (unsigned long long)Alat.Sim.Counters.Cycles,
        (unsigned long long)StA.Sim.Counters.Cycles,
        (unsigned long long)NP.Sim.Counters.Cycles);
  }
  outs() << "\nexpected order: conserv >= baseline >= alat >= alat+st.a; "
            "alat without a profile ~= baseline\n";
  return 0;
}
