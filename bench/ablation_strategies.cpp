//===- ablation_strategies.cpp - Strategy comparison ---------------------------===//
//
// Ablation: the full strategy ladder per workload — no promotion beyond
// safe PRE (conservative), the software run-time disambiguation baseline
// [30], ALAT speculation (the paper), and the paper's §2.5 st.a
// extension on top. Also ALAT without the alias profile, which must
// degenerate to the baseline (no χ can be marked speculative).
//
//===----------------------------------------------------------------------===//

#include "../bench/BenchUtil.h"

using namespace srp;
using namespace srp::bench;
using namespace srp::core;

int main(int argc, char **argv) {
  BenchOptions Opts = parseBenchOptions(argc, argv);
  printHeader("Ablation: promotion strategies",
              "cycles per workload across the strategy ladder");

  pre::PromotionConfig StACfg = pre::PromotionConfig::alat();
  StACfg.UseStA = true;
  PipelineConfig StAPipe = configFor(StACfg);
  StAPipe.Sim.UseStA = true;
  PipelineConfig NoProf = configFor(pre::PromotionConfig::alat());
  NoProf.UseAliasProfile = false;
  ExperimentGrid G = runGridOrDie(
      workloads::standardWorkloads(),
      {configFor(pre::PromotionConfig::conservative()),
       configFor(pre::PromotionConfig::baselineO3()),
       configFor(pre::PromotionConfig::alat()), StAPipe, NoProf},
      Opts);

  outs() << formatString("%-8s %12s %12s %12s %12s %14s\n", "bench",
                         "conserv", "baseline", "alat", "alat+st.a",
                         "alat(no prof)");
  for (size_t WI = 0; WI < G.Workloads.size(); ++WI) {
    const Workload &W = G.Workloads[WI];
    outs() << formatString(
        "%-8s %12llu %12llu %12llu %12llu %14llu\n", W.Name.c_str(),
        (unsigned long long)G.at(WI, 0).Sim.Counters.Cycles,
        (unsigned long long)G.at(WI, 1).Sim.Counters.Cycles,
        (unsigned long long)G.at(WI, 2).Sim.Counters.Cycles,
        (unsigned long long)G.at(WI, 3).Sim.Counters.Cycles,
        (unsigned long long)G.at(WI, 4).Sim.Counters.Cycles);
  }
  outs() << "\nexpected order: conserv >= baseline >= alat >= alat+st.a; "
            "alat without a profile ~= baseline\n";
  finishBench(Opts, G);
  return 0;
}
