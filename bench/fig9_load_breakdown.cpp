//===- fig9_load_breakdown.cpp - Figure 9 reproduction ------------------------===//
//
// Figure 9 of the paper: among the loads that speculative promotion
// removes (relative to the baseline), what fraction were indirect versus
// direct references. The paper observes indirect loads dominating for
// ammp, gzip, mcf and parser.
//
// Dynamic weights come from the train edge profile (each removed load
// site counted by its block's execution count), which is the substitute
// for the paper's hardware counters.
//
//===----------------------------------------------------------------------===//

#include "../bench/BenchUtil.h"

using namespace srp;
using namespace srp::bench;
using namespace srp::core;

int main(int argc, char **argv) {
  BenchOptions Opts = parseBenchOptions(argc, argv);
  printHeader("Figure 9: direct vs indirect among reduced loads",
              "paper: indirect dominates for ammp, gzip, mcf, parser");

  ExperimentGrid G = runGridOrDie(
      workloads::standardWorkloads(),
      {configFor(pre::PromotionConfig::baselineO3()),
       configFor(pre::PromotionConfig::alat())},
      Opts);

  outs() << formatString("%-8s %12s %12s %14s\n", "bench", "direct(%)",
                         "indirect(%)", "sites (d/i)");
  for (size_t WI = 0; WI < G.Workloads.size(); ++WI) {
    const Workload &W = G.Workloads[WI];
    const PipelineResult &Base = G.at(WI, 0);
    const PipelineResult &Spec = G.at(WI, 1);
    // The speculative pass's extra removals over the baseline.
    auto Extra = [](uint64_t SpecV, uint64_t BaseV) {
      return SpecV > BaseV ? SpecV - BaseV : 0;
    };
    uint64_t Dir = Extra(Spec.Promotion.DynLoadsRemovedDirect,
                         Base.Promotion.DynLoadsRemovedDirect);
    uint64_t Ind = Extra(Spec.Promotion.DynLoadsRemovedIndirect,
                         Base.Promotion.DynLoadsRemovedIndirect);
    uint64_t Total = Dir + Ind;
    double DirPct = Total ? 100.0 * double(Dir) / double(Total) : 0.0;
    double IndPct = Total ? 100.0 * double(Ind) / double(Total) : 0.0;
    outs() << formatString("%-8s %11.1f%% %11.1f%%       %u/%u\n",
                           W.Name.c_str(), DirPct, IndPct,
                           Spec.Promotion.LoadsRemovedDirect,
                           Spec.Promotion.LoadsRemovedIndirect);
  }
  finishBench(Opts, G);
  return 0;
}
