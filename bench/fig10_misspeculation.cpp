//===- fig10_misspeculation.cpp - Figure 10 reproduction ----------------------===//
//
// Figure 10 of the paper: the mis-speculation ratio (failed checks over
// executed checks) and the weight of checking relative to all retired
// loads. The paper observes generally tiny ratios, with gzip near 5% —
// but notes gzip's check count is negligible against its loads, so the
// failures do not hurt.
//
//===----------------------------------------------------------------------===//

#include "../bench/BenchUtil.h"

using namespace srp;
using namespace srp::bench;
using namespace srp::core;

int main(int argc, char **argv) {
  BenchOptions Opts = parseBenchOptions(argc, argv);
  printHeader("Figure 10: mis-speculation in speculative promotion",
              "paper: ratios are small; gzip ~5% but with few checks");

  ExperimentGrid G =
      runGridOrDie(workloads::standardWorkloads(),
                   {configFor(pre::PromotionConfig::alat())}, Opts);

  outs() << formatString("%-8s %10s %10s %12s %16s\n", "bench", "checks",
                         "failed", "misspec(%)", "checks/loads(%)");
  for (size_t WI = 0; WI < G.Workloads.size(); ++WI) {
    const Workload &W = G.Workloads[WI];
    const auto &C = G.at(WI, 0).Sim.Counters;
    double Ratio = C.AlatChecks
                       ? 100.0 * double(C.AlatCheckFailures) /
                             double(C.AlatChecks)
                       : 0.0;
    double Weight = C.RetiredLoads
                        ? 100.0 * double(C.AlatChecks) /
                              double(C.RetiredLoads + C.AlatChecks)
                        : 0.0;
    outs() << formatString("%-8s %10llu %10llu %11.2f%% %15.1f%%\n",
                           W.Name.c_str(),
                           (unsigned long long)C.AlatChecks,
                           (unsigned long long)C.AlatCheckFailures, Ratio,
                           Weight);
  }
  finishBench(Opts, G);
  return 0;
}
