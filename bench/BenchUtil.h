//===- BenchUtil.h - Shared bench harness helpers ----------------*- C++ -*-===//
//
// Part of the srp-alat project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the figure-reproduction benches. Every figure and
/// ablation runs the same job shape — a workload×config grid of
/// pipelines — so the harness parses the common command line (-jN,
/// --smoke, --timing, --stats), hands the grid to core::runExperiments,
/// dies on any failure or oracle divergence, and reports per-pass timing
/// and the stats registry on request. Counters are identical for every
/// -j value (see core/Experiment.h), so parallelism never changes a
/// figure, only its wall-clock.
///
//===----------------------------------------------------------------------===//

#ifndef SRP_BENCH_BENCHUTIL_H
#define SRP_BENCH_BENCHUTIL_H

#include "core/Experiment.h"
#include "core/Pipeline.h"
#include "support/Error.h"
#include "support/OStream.h"
#include "support/Stats.h"
#include "support/StringUtils.h"
#include "workloads/Workloads.h"

#include <cstdlib>
#include <map>

namespace srp::bench {

/// Command-line options every fig*/ablation_* binary accepts.
struct BenchOptions {
  unsigned Threads = 1; ///< -jN: parallel pipelines
  bool Smoke = false;   ///< --smoke: scale inputs down to a CI-fast run
  bool Timing = false;  ///< --timing: per-pass wall-time breakdown
  bool Stats = false;   ///< --stats: dump the process StatsRegistry
};

inline BenchOptions parseBenchOptions(int Argc, char **Argv) {
  BenchOptions Opts;
  for (int I = 1; I < Argc; ++I) {
    std::string_view Arg = Argv[I];
    if (startsWith(Arg, "-j") && Arg.size() > 2)
      Opts.Threads = static_cast<unsigned>(
          std::max(1, std::atoi(Arg.data() + 2)));
    else if (Arg == "--smoke")
      Opts.Smoke = true;
    else if (Arg == "--timing")
      Opts.Timing = true;
    else if (Arg == "--stats")
      Opts.Stats = true;
    else
      fatalError("unknown bench option '" + std::string(Arg) +
                 "' (supported: -jN --smoke --timing --stats)");
  }
  return Opts;
}

/// A workload×config grid with its results, indexed [workload][config].
struct ExperimentGrid {
  std::vector<core::Workload> Workloads; ///< possibly smoke-rescaled
  size_t NumConfigs = 0;
  std::vector<core::PipelineResult> Results;

  const core::PipelineResult &at(size_t WI, size_t CI) const {
    return Results[WI * NumConfigs + CI];
  }
};

/// Runs \p Exps through the parallel driver with the oracle gate on,
/// dying on the first failed experiment (a bench result is only
/// meaningful if the binary is correct).
inline std::vector<core::PipelineResult>
runExperimentsOrDie(const std::vector<core::Experiment> &Exps,
                    const BenchOptions &Opts) {
  core::ExperimentOptions EO;
  EO.Threads = Opts.Threads;
  EO.CheckOracle = true;
  std::vector<core::PipelineResult> Results = core::runExperiments(Exps, EO);
  for (size_t I = 0; I < Results.size(); ++I)
    if (!Results[I].Ok)
      fatalError(Exps[I].Label + ": " + Results[I].Error);
  return Results;
}

/// Runs every workload under every config. Workloads are taken by value:
/// --smoke rescales the copies (train == ref == 1) without touching the
/// caller's definitions.
inline ExperimentGrid runGridOrDie(std::vector<core::Workload> Ws,
                                   const std::vector<core::PipelineConfig> &Configs,
                                   const BenchOptions &Opts) {
  ExperimentGrid G;
  G.Workloads = std::move(Ws);
  G.NumConfigs = Configs.size();
  if (Opts.Smoke)
    for (core::Workload &W : G.Workloads) {
      W.TrainScale = 1;
      W.RefScale = 1;
    }
  std::vector<core::Experiment> Exps;
  Exps.reserve(G.Workloads.size() * Configs.size());
  for (const core::Workload &W : G.Workloads)
    for (const core::PipelineConfig &C : Configs)
      Exps.push_back({&W, C, W.Name});
  G.Results = runExperimentsOrDie(Exps, Opts);
  return G;
}

/// Prints the per-pass wall-time breakdown summed over \p Results
/// (--timing). Pass times include only enabled passes that ran.
inline void reportTiming(const std::vector<core::PipelineResult> &Results) {
  std::map<std::string, uint64_t> Total;
  for (const core::PipelineResult &R : Results)
    for (const core::PipelineResult::PassTiming &T : R.Timings)
      Total[T.Name] += T.Micros;
  outs() << "\n-- pass timing (us, summed over " << Results.size()
         << " pipelines) --\n";
  for (const auto &[Name, Micros] : Total)
    outs() << formatString("  %12llu  %s\n", (unsigned long long)Micros,
                           Name.c_str());
}

/// End-of-bench reporting hook: --timing and --stats output.
inline void finishBench(const BenchOptions &Opts,
                        const std::vector<core::PipelineResult> &Results) {
  if (Opts.Timing)
    reportTiming(Results);
  if (Opts.Stats) {
    outs() << "\n-- stats registry --\n";
    StatsRegistry::get().report(outs());
  }
}

inline void finishBench(const BenchOptions &Opts, const ExperimentGrid &G) {
  finishBench(Opts, G.Results);
}

/// Single-pipeline convenience used by the micro benches: run and check
/// against the interpreter oracle, dying on failure.
inline core::PipelineResult runOrDie(const core::Workload &W,
                                     const core::PipelineConfig &Config) {
  core::PipelineResult R = core::runPipeline(W, Config);
  if (!R.Ok)
    fatalError(W.Name + ": " + R.Error);
  // Guard: a bench result is only meaningful if the binary is correct.
  std::vector<std::string> Oracle = core::oracleOutput(W);
  if (R.Output != Oracle)
    fatalError(W.Name + ": simulated output diverges from the oracle");
  return R;
}

inline double pctReduction(uint64_t Base, uint64_t Spec) {
  if (Base == 0)
    return 0.0;
  return 100.0 * (double(Base) - double(Spec)) / double(Base);
}

inline void printHeader(const char *Title, const char *PaperNote) {
  outs() << "\n==== " << Title << " ====\n" << PaperNote << "\n\n";
}

} // namespace srp::bench

#endif // SRP_BENCH_BENCHUTIL_H
