//===- BenchUtil.h - Shared bench harness helpers ----------------*- C++ -*-===//
//
// Part of the srp-alat project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the figure-reproduction benches: run a workload
/// under a strategy, and tabulate results the way the paper's figures
/// report them.
///
//===----------------------------------------------------------------------===//

#ifndef SRP_BENCH_BENCHUTIL_H
#define SRP_BENCH_BENCHUTIL_H

#include "core/Pipeline.h"
#include "support/Error.h"
#include "support/OStream.h"
#include "support/StringUtils.h"
#include "workloads/Workloads.h"

namespace srp::bench {

inline core::PipelineResult runOrDie(const core::Workload &W,
                                     const core::PipelineConfig &Config) {
  core::PipelineResult R = core::runPipeline(W, Config);
  if (!R.Ok)
    fatalError(W.Name + ": " + R.Error);
  // Guard: a bench result is only meaningful if the binary is correct.
  std::vector<std::string> Oracle = core::oracleOutput(W);
  if (R.Output != Oracle)
    fatalError(W.Name + ": simulated output diverges from the oracle");
  return R;
}

inline double pctReduction(uint64_t Base, uint64_t Spec) {
  if (Base == 0)
    return 0.0;
  return 100.0 * (double(Base) - double(Spec)) / double(Base);
}

inline void printHeader(const char *Title, const char *PaperNote) {
  outs() << "\n==== " << Title << " ====\n" << PaperNote << "\n\n";
}

} // namespace srp::bench

#endif // SRP_BENCH_BENCHUTIL_H
