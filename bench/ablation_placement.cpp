//===- ablation_placement.cpp - Check placement: §3.4 vs Figure 1 --------------===//
//
// The paper presents two equivalent code shapes: Figure 1 turns the
// reuse load itself into ld.c; §3.4's CodeMotion instead inserts a check
// statement after each speculatively ignored store, letting one check
// cover every later reuse. This ablation measures both placements.
//
//===----------------------------------------------------------------------===//

#include "../bench/BenchUtil.h"

using namespace srp;
using namespace srp::bench;
using namespace srp::core;

int main() {
  printHeader("Ablation: check placement",
              "after-store check statements (§3.4) vs checking loads at "
              "the reuse (Figure 1)");

  outs() << formatString("%-8s %14s %14s %12s %12s\n", "bench",
                         "cyc(after-st)", "cyc(at-reuse)", "chk(a-s)",
                         "chk(a-r)");
  for (const Workload &W : workloads::standardWorkloads()) {
    PipelineResult AfterStore =
        runOrDie(W, configFor(pre::PromotionConfig::alat()));
    pre::PromotionConfig C = pre::PromotionConfig::alat();
    C.ChecksAtReuse = true;
    PipelineResult AtReuse = runOrDie(W, configFor(C));
    outs() << formatString(
        "%-8s %14llu %14llu %12llu %12llu\n", W.Name.c_str(),
        (unsigned long long)AfterStore.Sim.Counters.Cycles,
        (unsigned long long)AtReuse.Sim.Counters.Cycles,
        (unsigned long long)AfterStore.Sim.Counters.AlatChecks,
        (unsigned long long)AtReuse.Sim.Counters.AlatChecks);
  }
  outs() << "\nreading: with several reuses per store the after-store "
            "form needs fewer checks; with several stores per reuse the "
            "at-reuse form does\n";
  return 0;
}
