//===- ablation_placement.cpp - Check placement: §3.4 vs Figure 1 --------------===//
//
// The paper presents two equivalent code shapes: Figure 1 turns the
// reuse load itself into ld.c; §3.4's CodeMotion instead inserts a check
// statement after each speculatively ignored store, letting one check
// cover every later reuse. This ablation measures both placements.
//
//===----------------------------------------------------------------------===//

#include "../bench/BenchUtil.h"

using namespace srp;
using namespace srp::bench;
using namespace srp::core;

int main(int argc, char **argv) {
  BenchOptions Opts = parseBenchOptions(argc, argv);
  printHeader("Ablation: check placement",
              "after-store check statements (§3.4) vs checking loads at "
              "the reuse (Figure 1)");

  pre::PromotionConfig C = pre::PromotionConfig::alat();
  C.ChecksAtReuse = true;
  ExperimentGrid G = runGridOrDie(
      workloads::standardWorkloads(),
      {configFor(pre::PromotionConfig::alat()), configFor(C)}, Opts);

  outs() << formatString("%-8s %14s %14s %12s %12s\n", "bench",
                         "cyc(after-st)", "cyc(at-reuse)", "chk(a-s)",
                         "chk(a-r)");
  for (size_t WI = 0; WI < G.Workloads.size(); ++WI) {
    const Workload &W = G.Workloads[WI];
    const PipelineResult &AfterStore = G.at(WI, 0);
    const PipelineResult &AtReuse = G.at(WI, 1);
    outs() << formatString(
        "%-8s %14llu %14llu %12llu %12llu\n", W.Name.c_str(),
        (unsigned long long)AfterStore.Sim.Counters.Cycles,
        (unsigned long long)AtReuse.Sim.Counters.Cycles,
        (unsigned long long)AfterStore.Sim.Counters.AlatChecks,
        (unsigned long long)AtReuse.Sim.Counters.AlatChecks);
  }
  outs() << "\nreading: with several reuses per store the after-store "
            "form needs fewer checks; with several stores per reuse the "
            "at-reuse form does\n";
  finishBench(Opts, G);
  return 0;
}
