//===- fig8_performance.cpp - Figure 8 reproduction ---------------------------===//
//
// Figure 8 of the paper: per-benchmark percentage reduction (speculative
// register promotion vs the -O3 baseline, which includes the software
// run-time disambiguation of [30]) in total CPU cycles, data access
// cycles, and retired loads.
//
// Expected shape (paper): every benchmark improves; cycle reductions are
// in the low single digits on the paper's full SPEC programs (our
// kernels are all hot loop, so the percentages are larger); the FP
// benchmarks (ammp, art, equake) gain the most because FP loads cost 9
// cycles.
//
//===----------------------------------------------------------------------===//

#include "../bench/BenchUtil.h"

using namespace srp;
using namespace srp::bench;
using namespace srp::core;

int main(int argc, char **argv) {
  BenchOptions Opts = parseBenchOptions(argc, argv);
  printHeader("Figure 8: performance of speculative register promotion",
              "% reduction vs baseline O3 (software checks enabled); "
              "paper reports 1-7% CPU cycles on full SPEC programs");

  ExperimentGrid G = runGridOrDie(
      workloads::standardWorkloads(),
      {configFor(pre::PromotionConfig::baselineO3()),
       configFor(pre::PromotionConfig::alat())},
      Opts);

  outs() << formatString("%-8s %12s %14s %14s %16s\n", "bench",
                         "cycles(%)", "data-acc(%)", "loads(%)",
                         "cycles base->spec");
  double SumCyc = 0, SumLd = 0;
  unsigned N = 0;
  for (size_t WI = 0; WI < G.Workloads.size(); ++WI) {
    const Workload &W = G.Workloads[WI];
    const PipelineResult &Base = G.at(WI, 0);
    const PipelineResult &Spec = G.at(WI, 1);
    double Cyc = pctReduction(Base.Sim.Counters.Cycles,
                              Spec.Sim.Counters.Cycles);
    double Da = pctReduction(Base.Sim.Counters.DataAccessCycles,
                             Spec.Sim.Counters.DataAccessCycles);
    double Ld = pctReduction(Base.Sim.Counters.RetiredLoads,
                             Spec.Sim.Counters.RetiredLoads);
    outs() << formatString(
        "%-8s %11.1f%% %13.1f%% %13.1f%%   %9llu->%-9llu\n",
        W.Name.c_str(), Cyc, Da, Ld,
        (unsigned long long)Base.Sim.Counters.Cycles,
        (unsigned long long)Spec.Sim.Counters.Cycles);
    SumCyc += Cyc;
    SumLd += Ld;
    ++N;
  }
  outs() << formatString("\nmean cycle reduction %.1f%%, mean load "
                         "reduction %.1f%% across %u workloads\n",
                         SumCyc / N, SumLd / N, N);
  // The paper measures whole SPEC programs where the promotable kernels
  // are a fraction f of execution; our workloads are the kernels alone.
  // Projecting the measured kernel speedup onto realistic fractions
  // recovers the paper's headline range.
  outs() << "\nwhole-program projection (Amdahl over kernel fraction f):"
            "\n";
  for (double F : {0.10, 0.25, 0.50})
    outs() << formatString(
        "  f = %2.0f%%  ->  program-level cycle reduction ~%.1f%%\n",
        F * 100.0, F * SumCyc / N);
  outs() << "(the paper's 1-7%% corresponds to kernels covering roughly "
            "5-30%% of execution)\n";
  finishBench(Opts, G);
  return 0;
}
