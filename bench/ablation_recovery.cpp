//===- ablation_recovery.cpp - Mis-speculation cost sensitivity ---------------===//
//
// Ablation of §2.5's cost discussion: a failed ld.c merely re-exposes the
// load latency, but a failed chk.a pays a trap plus branches. This bench
// sweeps the chk.a recovery penalty on gzip (the only workload with a
// visible mis-speculation rate) and on a cascade-promoted variant of the
// Figure 4 kernel, showing when aggressive speculation stops paying.
//
//===----------------------------------------------------------------------===//

#include "../bench/BenchUtil.h"

#include "workloads/LoopHelper.h"

using namespace srp;
using namespace srp::bench;
using namespace srp::core;
using namespace srp::ir;

namespace {

/// A pointer-chase kernel where p itself is redirected on every Nth
/// iteration: cascade speculation (chk.a) fails at rate 1/N.
Workload cascadeWorkload(int64_t CollidePeriod) {
  Workload W;
  W.Name = "cascade" + std::to_string(CollidePeriod);
  W.TrainScale = 1;
  W.RefScale = 4;
  W.Build = [CollidePeriod](Module &M, uint64_t Scale) {
    const int64_t N = static_cast<int64_t>(1000 * Scale);
    Symbol *A = M.createGlobal("a", TypeKind::Int);
    Symbol *B2 = M.createGlobal("b", TypeKind::Int);
    Symbol *P = M.createGlobal("p", TypeKind::Int);
    Symbol *Q = M.createGlobal("q", TypeKind::Int);
    Symbol *Spare = M.createGlobal("spare", TypeKind::Int);
    Symbol *Zero = M.createGlobal("always_zero", TypeKind::Int);
    Symbol *I = M.createGlobal("i", TypeKind::Int);
    Symbol *Acc = M.createGlobal("acc", TypeKind::Int);

    IRBuilder B(M);
    B.startFunction("main");
    unsigned TA = B.emitAddrOf(A);
    unsigned TB = B.emitAddrOf(B2);
    B.emitStore(directRef(A), Operand::constInt(11));
    B.emitStore(directRef(B2), Operand::constInt(22));
    B.emitStore(directRef(P), Operand::temp(TA));
    // q may point at p itself (a cascade hazard) or at spare.
    {
      BasicBlock *Decoy = B.createBlock("decoy");
      BasicBlock *Join = B.createBlock("seeded");
      unsigned TZ = B.emitLoad(directRef(Zero));
      B.setCondBr(Operand::temp(TZ), Decoy, Join);
      B.setBlock(Decoy);
      unsigned TP = B.emitAddrOf(P);
      B.emitStore(directRef(Q), Operand::temp(TP));
      B.setBr(Join);
      B.setBlock(Join);
      unsigned TS = B.emitAddrOf(Spare);
      B.emitStore(directRef(Q), Operand::temp(TS));
    }

    workloads::LoopCtx L =
        workloads::beginLoop(B, I, Operand::constInt(N));
    {
      unsigned TI = L.IdxTemp;
      unsigned T1 = B.emitLoad(indirectRef(P, TypeKind::Int));
      // Every CollidePeriod-th iteration q really redirects p; the
      // pointer flips between &a and &b, so the cascade check fails.
      BasicBlock *Collide = B.createBlock("collide");
      BasicBlock *Quiet = B.createBlock("quiet");
      BasicBlock *After = B.createBlock("after");
      unsigned TRem = B.emitAssign(Opcode::Rem, Operand::temp(TI),
                                   Operand::constInt(CollidePeriod));
      unsigned TLate = B.emitAssign(
          Opcode::CmpLe, Operand::constInt(1100), Operand::temp(TI));
      unsigned TEq = B.emitAssign(Opcode::CmpEq, Operand::temp(TRem),
                                  Operand::constInt(1));
      unsigned TCol = B.emitAssign(Opcode::And, Operand::temp(TEq),
                                   Operand::temp(TLate));
      B.setCondBr(Operand::temp(TCol), Collide, Quiet);
      B.setBlock(Collide);
      unsigned TPp = B.emitAddrOf(P);
      B.emitStore(directRef(Q), Operand::temp(TPp));
      B.setBr(After);
      B.setBlock(Quiet);
      unsigned TSp = B.emitAddrOf(Spare);
      B.emitStore(directRef(Q), Operand::temp(TSp));
      B.setBr(After);
      B.setBlock(After);
      // *q = &b: when q == &p this really retargets p.
      unsigned TB2 = B.emitAddrOf(B2);
      B.emitStore(indirectRef(Q, TypeKind::Int), Operand::temp(TB2));
      unsigned T2 = B.emitLoad(indirectRef(P, TypeKind::Int));
      unsigned TSum = B.emitAssign(Opcode::Add, Operand::temp(T1),
                                   Operand::temp(T2));
      unsigned TAcc = B.emitLoad(directRef(Acc));
      unsigned TNew = B.emitAssign(Opcode::Add, Operand::temp(TAcc),
                                   Operand::temp(TSum));
      B.emitStore(directRef(Acc), Operand::temp(TNew));
      // Restore p for the next round.
      B.emitStore(directRef(P), Operand::temp(TA));
    }
    workloads::endLoop(B, L);
    unsigned TOut = B.emitLoad(directRef(Acc));
    B.emitPrint(Operand::temp(TOut));
    B.setRet(Operand::temp(TOut));
    (void)TB;
  };
  return W;
}

} // namespace

int main(int argc, char **argv) {
  BenchOptions Opts = parseBenchOptions(argc, argv);
  printHeader("Ablation: recovery penalty",
              "chk.a mis-speculation cost sweep (the paper: 'address "
              "mis-speculation could be expensive')");

  // Config 0 is the baseline; 1..4 sweep the chk.a recovery penalty.
  const unsigned Penalties[] = {5u, 15u, 50u, 150u};
  std::vector<PipelineConfig> Configs = {
      configFor(pre::PromotionConfig::baselineO3())};
  for (unsigned Penalty : Penalties) {
    PipelineConfig C = configFor(pre::PromotionConfig::alat());
    C.Promotion.EnableCascade = true;
    C.Sim.ChkMissPenalty = Penalty;
    Configs.push_back(C);
  }
  ExperimentGrid G = runGridOrDie(
      {cascadeWorkload(64), cascadeWorkload(8)}, Configs, Opts);

  outs() << formatString("%-12s %10s %10s %12s %12s %12s\n", "kernel",
                         "recover", "penalty", "cycles", "vs baseline",
                         "fail(%)");
  for (size_t WI = 0; WI < G.Workloads.size(); ++WI) {
    const Workload &W = G.Workloads[WI];
    const PipelineResult &Base = G.at(WI, 0);
    for (size_t PI = 0; PI < std::size(Penalties); ++PI) {
      const PipelineResult &R = G.at(WI, PI + 1);
      const auto &Ctr = R.Sim.Counters;
      double FailPct = Ctr.AlatChecks
                           ? 100.0 * double(Ctr.AlatCheckFailures) /
                                 double(Ctr.AlatChecks)
                           : 0.0;
      double Delta = 100.0 *
                     (double(Base.Sim.Counters.Cycles) -
                      double(Ctr.Cycles)) /
                     double(Base.Sim.Counters.Cycles);
      outs() << formatString(
          "%-12s %10llu %10u %12llu %+11.1f%% %11.2f%%\n",
          W.Name.c_str(), (unsigned long long)Ctr.ChkARecoveries,
          Penalties[PI], (unsigned long long)Ctr.Cycles, Delta, FailPct);
    }
  }
  outs() << "\nreading: cascade speculation loses even at modest "
            "penalties and collapses as collisions rise — which is "
            "precisely why the paper's implementation is 'limited to "
            "expressions that will not cause cascaded failure' (§4); "
            "EnableCascade stays off by default here too\n";
  finishBench(Opts, G);
  return 0;
}
