//===- micro_compiler.cpp - Compiler-phase microbenchmarks ---------------------===//
//
// google-benchmark microbenchmarks of the compiler phases themselves:
// Steensgaard alias analysis, HSSA construction, the speculative
// promotion pass, and lowering — measured on the gzip workload build.
//
//===----------------------------------------------------------------------===//

#include "alias/AliasAnalysis.h"
#include "codegen/Lowering.h"
#include "codegen/RegAlloc.h"
#include "interp/Interpreter.h"
#include "pre/Promoter.h"
#include "ssa/HSSA.h"
#include "workloads/Workloads.h"

#include <benchmark/benchmark.h>

using namespace srp;

namespace {

void buildGzip(ir::Module &M) {
  core::Workload W = workloads::gzipWorkload();
  W.Build(M, 1);
  for (unsigned I = 0; I < M.numFunctions(); ++I)
    M.function(I)->recomputeCFG();
}

void BM_SteensgaardAnalysis(benchmark::State &State) {
  ir::Module M;
  buildGzip(M);
  for (auto _ : State) {
    alias::SteensgaardAnalysis AA(M);
    benchmark::DoNotOptimize(AA.numLocationClasses());
  }
}
BENCHMARK(BM_SteensgaardAnalysis);

void BM_HSSABuild(benchmark::State &State) {
  ir::Module M;
  buildGzip(M);
  alias::SteensgaardAnalysis AA(M);
  for (auto _ : State) {
    ssa::DominatorTree DT(*M.function(0));
    ssa::HSSA H(*M.function(0), DT, AA, nullptr);
    benchmark::DoNotOptimize(H.numObjects());
  }
}
BENCHMARK(BM_HSSABuild);

void BM_PromoteModule(benchmark::State &State) {
  for (auto _ : State) {
    State.PauseTiming();
    ir::Module M;
    buildGzip(M);
    interp::AliasProfile AP;
    interp::Interpreter Train(M);
    Train.setAliasProfile(&AP);
    Train.run();
    alias::SteensgaardAnalysis AA(M);
    State.ResumeTiming();
    auto Stats = pre::promoteModule(M, AA, &AP, nullptr,
                                    pre::PromotionConfig::alat());
    benchmark::DoNotOptimize(Stats.PromotedExprs);
  }
}
BENCHMARK(BM_PromoteModule);

void BM_LowerAndAllocate(benchmark::State &State) {
  ir::Module M;
  buildGzip(M);
  for (auto _ : State) {
    auto MM = codegen::lowerModule(M);
    codegen::allocateRegisters(*MM);
    benchmark::DoNotOptimize(MM->numFunctions());
  }
}
BENCHMARK(BM_LowerAndAllocate);

void BM_InterpretTrainRun(benchmark::State &State) {
  ir::Module M;
  buildGzip(M);
  for (auto _ : State) {
    interp::Interpreter I(M);
    auto R = I.run();
    benchmark::DoNotOptimize(R.StmtsExecuted);
  }
}
BENCHMARK(BM_InterpretTrainRun);

} // namespace

BENCHMARK_MAIN();
