//===- ablation_alias.cpp - Alias-analysis precision vs speculation -----------===//
//
// The question §5 of the paper raises: the alternative to hardware
// speculation is a better static alias analysis. This ablation runs the
// conservative strategy under Steensgaard (ORC's equivalence-class
// baseline) and under the inclusion-based Andersen analysis, against the
// ALAT strategy — showing how much of the win precision alone recovers.
//
// On these workloads the ambiguity is *fundamental* (the decoy
// assignments are statically reachable), so even a precise flow-
// insensitive analysis cannot disprove the aliases; the profile can.
//
//===----------------------------------------------------------------------===//

#include "../bench/BenchUtil.h"

using namespace srp;
using namespace srp::bench;
using namespace srp::core;

int main(int argc, char **argv) {
  BenchOptions Opts = parseBenchOptions(argc, argv);
  printHeader("Ablation: alias precision vs speculation",
              "cycles: conservative/Steensgaard vs conservative/Andersen "
              "vs ALAT speculation");

  PipelineConfig AndersenCfg =
      configFor(pre::PromotionConfig::conservative());
  AndersenCfg.UseAndersen = true;
  ExperimentGrid G = runGridOrDie(
      workloads::standardWorkloads(),
      {configFor(pre::PromotionConfig::conservative()), AndersenCfg,
       configFor(pre::PromotionConfig::alat())},
      Opts);

  outs() << formatString("%-8s %14s %14s %12s\n", "bench", "steensgaard",
                         "andersen", "alat");
  for (size_t WI = 0; WI < G.Workloads.size(); ++WI) {
    const Workload &W = G.Workloads[WI];
    outs() << formatString(
        "%-8s %14llu %14llu %12llu\n", W.Name.c_str(),
        (unsigned long long)G.at(WI, 0).Sim.Counters.Cycles,
        (unsigned long long)G.at(WI, 1).Sim.Counters.Cycles,
        (unsigned long long)G.at(WI, 2).Sim.Counters.Cycles);
  }
  outs() << "\nexpected: andersen <= steensgaard (never worse), and alat "
            "well below both — the ambiguity here is dynamic, not an "
            "analysis artifact\n";
  finishBench(Opts, G);
  return 0;
}
