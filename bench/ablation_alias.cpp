//===- ablation_alias.cpp - Alias-analysis precision vs speculation -----------===//
//
// The question §5 of the paper raises: the alternative to hardware
// speculation is a better static alias analysis. This ablation runs the
// conservative strategy under Steensgaard (ORC's equivalence-class
// baseline) and under the inclusion-based Andersen analysis, against the
// ALAT strategy — showing how much of the win precision alone recovers.
//
// On these workloads the ambiguity is *fundamental* (the decoy
// assignments are statically reachable), so even a precise flow-
// insensitive analysis cannot disprove the aliases; the profile can.
//
//===----------------------------------------------------------------------===//

#include "../bench/BenchUtil.h"

using namespace srp;
using namespace srp::bench;
using namespace srp::core;

int main() {
  printHeader("Ablation: alias precision vs speculation",
              "cycles: conservative/Steensgaard vs conservative/Andersen "
              "vs ALAT speculation");

  outs() << formatString("%-8s %14s %14s %12s\n", "bench", "steensgaard",
                         "andersen", "alat");
  for (const Workload &W : workloads::standardWorkloads()) {
    PipelineResult Steens =
        runOrDie(W, configFor(pre::PromotionConfig::conservative()));
    PipelineConfig AndersenCfg =
        configFor(pre::PromotionConfig::conservative());
    AndersenCfg.UseAndersen = true;
    PipelineResult Anders = runOrDie(W, AndersenCfg);
    PipelineResult Alat =
        runOrDie(W, configFor(pre::PromotionConfig::alat()));
    outs() << formatString("%-8s %14llu %14llu %12llu\n", W.Name.c_str(),
                           (unsigned long long)Steens.Sim.Counters.Cycles,
                           (unsigned long long)Anders.Sim.Counters.Cycles,
                           (unsigned long long)Alat.Sim.Counters.Cycles);
  }
  outs() << "\nexpected: andersen <= steensgaard (never worse), and alat "
            "well below both — the ambiguity here is dynamic, not an "
            "analysis artifact\n";
  return 0;
}
