//===- ablation_alat_size.cpp - ALAT geometry sensitivity ---------------------===//
//
// Ablation (motivated by §2.1 and §5): sensitivity of speculative
// promotion to the ALAT's geometry — total entries, associativity, and
// the partial address-tag bits stores compare against.
//
// The standard workloads track only a couple of registers, so they never
// stress the table; this bench builds a dedicated kernel that promotes K
// expressions simultaneously (K live ALAT entries) while a hot loop
// streams stores across a large array (plenty of distinct store
// addresses for partial tags to falsely match). Fewer entries cause
// capacity evictions; fewer tag bits cause false invalidations; both
// degrade into extra reloads, never into wrong answers (asserted against
// the oracle).
//
//===----------------------------------------------------------------------===//

#include "../bench/BenchUtil.h"

#include "workloads/LoopHelper.h"

using namespace srp;
using namespace srp::bench;
using namespace srp::core;
using namespace srp::ir;

namespace {

/// K promoted scalars, each read twice per iteration around an ambiguous
/// store, plus a streaming array store (addresses cover 16KB).
Workload stressWorkload(unsigned K) {
  Workload W;
  W.Name = "stress" + std::to_string(K);
  W.TrainScale = 1;
  W.RefScale = 2;
  W.Build = [K](Module &M, uint64_t Scale) {
    const int64_t N = static_cast<int64_t>(1500 * Scale);
    Symbol *Stream = M.createGlobal("stream", TypeKind::Int, 2048);
    Symbol *Sink = M.createGlobal("sink", TypeKind::Int, 2);
    Symbol *SinkPtr = M.createGlobal("sink_ptr", TypeKind::Int);
    Symbol *Zero = M.createGlobal("always_zero", TypeKind::Int);
    Symbol *I = M.createGlobal("i", TypeKind::Int);
    Symbol *Acc = M.createGlobal("acc", TypeKind::Int);
    std::vector<Symbol *> Cells;
    for (unsigned C = 0; C < K; ++C)
      Cells.push_back(
          M.createGlobal("cell" + std::to_string(C), TypeKind::Int));

    workloads::LoopCtx L;
    IRBuilder B(M);
    B.startFunction("main");
    // sink_ptr may point at any cell (decoy chain) but targets sink.
    {
      BasicBlock *Decoy = B.createBlock("decoy");
      BasicBlock *Join = B.createBlock("seeded");
      unsigned TZ = B.emitLoad(directRef(Zero));
      B.setCondBr(Operand::temp(TZ), Decoy, Join);
      B.setBlock(Decoy);
      for (Symbol *C : Cells) {
        unsigned T = B.emitAddrOf(C);
        B.emitStore(directRef(SinkPtr), Operand::temp(T));
      }
      B.setBr(Join);
      B.setBlock(Join);
      unsigned TS = B.emitAddrOf(Sink);
      B.emitStore(directRef(SinkPtr), Operand::temp(TS));
    }
    for (unsigned C = 0; C < K; ++C)
      B.emitStore(directRef(Cells[C]),
                  Operand::constInt(static_cast<int64_t>(C) * 3 + 1));

    L = workloads::beginLoop(B, I, Operand::constInt(N));
    {
      unsigned TI = L.IdxTemp;
      // Streaming store: 2048 distinct addresses (16KB window).
      unsigned TIdx = B.emitAssign(Opcode::And, Operand::temp(TI),
                                   Operand::constInt(2047));
      B.emitStore(arrayRef(Stream, Operand::temp(TIdx)),
                  Operand::temp(TI));
      // K promoted reads around two ambiguous stores.
      std::vector<unsigned> Vals;
      for (unsigned C = 0; C < K; ++C)
        Vals.push_back(B.emitLoad(directRef(Cells[C])));
      B.emitStore(indirectRef(SinkPtr, TypeKind::Int),
                  Operand::temp(TI));
      B.emitStore(indirectRef(SinkPtr, TypeKind::Int, 8),
                  Operand::temp(TIdx));
      unsigned Sum = Vals[0];
      for (unsigned C = 0; C < K; ++C) {
        unsigned Again = B.emitLoad(directRef(Cells[C]));
        Sum = B.emitAssign(Opcode::Add, Operand::temp(Sum),
                           Operand::temp(Again));
      }
      unsigned TAcc = B.emitLoad(directRef(Acc));
      unsigned TNew = B.emitAssign(Opcode::Add, Operand::temp(TAcc),
                                   Operand::temp(Sum));
      B.emitStore(directRef(Acc), Operand::temp(TNew));
    }
    workloads::endLoop(B, L);
    unsigned TOut = B.emitLoad(directRef(Acc));
    B.emitPrint(Operand::temp(TOut));
    B.setRet(Operand::temp(TOut));
  };
  return W;
}

struct Geometry {
  unsigned Entries, Ways, TagBits;
  const char *Note;
};

const Geometry Geoms[] = {
    {32, 2, 20, "Itanium-like"}, {16, 2, 20, "half size"},
    {8, 2, 20, "quarter size"},  {4, 2, 20, "tiny"},
    {32, 1, 20, "direct-mapped"}, {64, 4, 20, "oversized"},
    {32, 2, 14, "14-bit tags"},  {32, 2, 11, "11-bit tags"},
    {32, 2, 8, "8-bit tags"},    {32, 2, 48, "full tags"},
};

} // namespace

int main(int argc, char **argv) {
  BenchOptions Opts = parseBenchOptions(argc, argv);
  printHeader("Ablation: ALAT geometry",
              "stress kernels with K concurrently tracked registers over "
              "a streaming store window; failures degrade performance, "
              "never correctness");

  std::vector<Workload> Ws;
  for (unsigned K : {4, 12, 24, 40})
    Ws.push_back(stressWorkload(K));
  std::vector<PipelineConfig> Configs;
  for (const Geometry &G : Geoms) {
    PipelineConfig C = configFor(pre::PromotionConfig::alat());
    C.Sim.Alat.Entries = G.Entries;
    C.Sim.Alat.Ways = G.Ways;
    C.Sim.Alat.PartialTagBits = G.TagBits;
    Configs.push_back(C);
  }
  ExperimentGrid Grid = runGridOrDie(std::move(Ws), Configs, Opts);

  for (size_t WI = 0; WI < Grid.Workloads.size(); ++WI) {
    outs() << formatString("%-10s %8s %6s %9s %10s %11s %11s %12s\n",
                           Grid.Workloads[WI].Name.c_str(), "entries",
                           "ways", "tag-bits", "failed(%)", "false-inv",
                           "evictions", "cycles");
    for (size_t GI = 0; GI < std::size(Geoms); ++GI) {
      const Geometry &G = Geoms[GI];
      const PipelineResult &R = Grid.at(WI, GI);
      const auto &Ctr = R.Sim.Counters;
      double FailPct = Ctr.AlatChecks
                           ? 100.0 * double(Ctr.AlatCheckFailures) /
                                 double(Ctr.AlatChecks)
                           : 0.0;
      outs() << formatString(
          "%-10s %8u %6u %9u %9.2f%% %11llu %11llu %12llu  %s\n", "",
          G.Entries, G.Ways, G.TagBits, FailPct,
          (unsigned long long)R.Sim.Alat.FalseInvalidations,
          (unsigned long long)R.Sim.Alat.CapacityEvictions,
          (unsigned long long)Ctr.Cycles, G.Note);
    }
    outs() << '\n';
  }
  finishBench(Opts, Grid);
  return 0;
}
