//===- micro_alat.cpp - ALAT model microbenchmarks -----------------------------===//
//
// google-benchmark microbenchmarks of the ALAT model's hot operations
// (allocate / store-notify / check), plus the cache hierarchy, so model
// overhead is visible when simulating large workloads.
//
//===----------------------------------------------------------------------===//

#include "arch/Alat.h"
#include "arch/Caches.h"

#include <benchmark/benchmark.h>

using namespace srp::arch;

namespace {

void BM_AlatAllocate(benchmark::State &State) {
  Alat Table{AlatConfig{}};
  unsigned Reg = 32;
  uint64_t Addr = 0x10000;
  for (auto _ : State) {
    Table.allocate(Reg, Addr);
    Reg = 32 + ((Reg + 1) % 64);
    Addr += 8;
    benchmark::DoNotOptimize(Table);
  }
}
BENCHMARK(BM_AlatAllocate);

void BM_AlatStoreNotify(benchmark::State &State) {
  Alat Table{AlatConfig{}};
  for (unsigned R = 32; R < 64; ++R)
    Table.allocate(R, 0x10000 + R * 8);
  uint64_t Addr = 0x20000;
  for (auto _ : State) {
    Table.storeNotify(Addr);
    Addr += 8;
    benchmark::DoNotOptimize(Table);
  }
}
BENCHMARK(BM_AlatStoreNotify);

void BM_AlatCheckHit(benchmark::State &State) {
  Alat Table{AlatConfig{}};
  Table.allocate(40, 0x10000);
  for (auto _ : State) {
    bool Hit = Table.check(40, 0x10000, /*Clear=*/false);
    benchmark::DoNotOptimize(Hit);
  }
}
BENCHMARK(BM_AlatCheckHit);

void BM_AlatCheckMiss(benchmark::State &State) {
  Alat Table{AlatConfig{}};
  for (auto _ : State) {
    bool Hit = Table.check(41, 0x10000, /*Clear=*/false);
    benchmark::DoNotOptimize(Hit);
  }
}
BENCHMARK(BM_AlatCheckMiss);

void BM_CacheAccessHit(benchmark::State &State) {
  MemoryHierarchy Mem{MemoryConfig{}};
  Mem.loadLatency(0x10000, false);
  for (auto _ : State) {
    unsigned Lat = Mem.loadLatency(0x10000, false);
    benchmark::DoNotOptimize(Lat);
  }
}
BENCHMARK(BM_CacheAccessHit);

void BM_CacheAccessStream(benchmark::State &State) {
  MemoryHierarchy Mem{MemoryConfig{}};
  uint64_t Addr = 0;
  for (auto _ : State) {
    unsigned Lat = Mem.loadLatency(Addr, false);
    Addr += 64;
    benchmark::DoNotOptimize(Lat);
  }
}
BENCHMARK(BM_CacheAccessStream);

} // namespace

BENCHMARK_MAIN();
