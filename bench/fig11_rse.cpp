//===- fig11_rse.cpp - Figure 11 reproduction ---------------------------------===//
//
// Figure 11 of the paper: register-stack-engine memory cycles before and
// after speculative promotion. Promotion keeps more values live in
// registers, growing procedure register frames; the paper's point is
// that the resulting RSE traffic stays in the noise (for ammp and gzip
// the relative increase is large, but the absolute RSE cycles are about
// 0.001% of execution).
//
//===----------------------------------------------------------------------===//

#include "../bench/BenchUtil.h"

using namespace srp;
using namespace srp::bench;
using namespace srp::core;

int main(int argc, char **argv) {
  BenchOptions Opts = parseBenchOptions(argc, argv);
  printHeader("Figure 11: RSE memory cycle increase",
              "paper: increases are relatively visible but absolutely "
              "negligible");

  ExperimentGrid G = runGridOrDie(
      workloads::standardWorkloads(),
      {configFor(pre::PromotionConfig::baselineO3()),
       configFor(pre::PromotionConfig::alat())},
      Opts);

  outs() << formatString("%-8s %12s %12s %12s %14s %12s\n", "bench",
                         "rse(base)", "rse(spec)", "increase(%)",
                         "rse/cycles(%)", "frame regs");
  for (size_t WI = 0; WI < G.Workloads.size(); ++WI) {
    const Workload &W = G.Workloads[WI];
    const PipelineResult &Base = G.at(WI, 0);
    const PipelineResult &Spec = G.at(WI, 1);
    uint64_t RseB = Base.Sim.Counters.RseCycles;
    uint64_t RseS = Spec.Sim.Counters.RseCycles;
    double Inc = RseB ? 100.0 * (double(RseS) - double(RseB)) /
                            double(RseB)
                      : (RseS ? 100.0 : 0.0);
    double Frac = 100.0 * double(RseS) /
                  double(Spec.Sim.Counters.Cycles);
    outs() << formatString(
        "%-8s %12llu %12llu %11.1f%% %13.5f%% %6u->%u\n",
        W.Name.c_str(), (unsigned long long)RseB,
        (unsigned long long)RseS, Inc, Frac, Base.MaxStackedRegs,
        Spec.MaxStackedRegs);
  }
  outs() << "\n(workloads are shallow call trees, so most rows are 0 — "
            "the deep-call RSE path is exercised by CodegenTest)\n";
  finishBench(Opts, G);
  return 0;
}
