//===- ablation_sta.cpp - The §2.5 st.a extension ------------------------------===//
//
// Ablation of the paper's proposed st.a instruction: a store that also
// allocates the ALAT entry, saving the explicit ld.a the read-after-write
// pattern (Figure 1(b)) otherwise needs. Measures retired loads and
// cycles with and without the extension.
//
//===----------------------------------------------------------------------===//

#include "../bench/BenchUtil.h"

using namespace srp;
using namespace srp::bench;
using namespace srp::core;

int main(int argc, char **argv) {
  BenchOptions Opts = parseBenchOptions(argc, argv);
  printHeader("Ablation: st.a extension (§2.5)",
              "the extension removes the ld.a after defining stores");

  pre::PromotionConfig C = pre::PromotionConfig::alat();
  C.UseStA = true;
  PipelineConfig Pipe = configFor(C);
  Pipe.Sim.UseStA = true;
  ExperimentGrid G = runGridOrDie(
      workloads::standardWorkloads(),
      {configFor(pre::PromotionConfig::alat()), Pipe}, Opts);

  outs() << formatString("%-8s %12s %12s %12s %12s %10s\n", "bench",
                         "loads", "loads+st.a", "cycles", "cycles+st.a",
                         "st.a uses");
  for (size_t WI = 0; WI < G.Workloads.size(); ++WI) {
    const Workload &W = G.Workloads[WI];
    const PipelineResult &Plain = G.at(WI, 0);
    const PipelineResult &StA = G.at(WI, 1);
    outs() << formatString("%-8s %12llu %12llu %12llu %12llu %10u\n",
                           W.Name.c_str(),
                           (unsigned long long)Plain.Sim.Counters.RetiredLoads,
                           (unsigned long long)StA.Sim.Counters.RetiredLoads,
                           (unsigned long long)Plain.Sim.Counters.Cycles,
                           (unsigned long long)StA.Sim.Counters.Cycles,
                           StA.Promotion.StAStores);
  }
  finishBench(Opts, G);
  return 0;
}
