//===- SupportTest.cpp - Tests for the support library ----------*- C++ -*-===//

#include "support/OStream.h"
#include "support/RNG.h"
#include "support/StringUtils.h"

#include <gtest/gtest.h>

#include <set>

using namespace srp;

namespace {

TEST(OStreamTest, WritesScalars) {
  std::string Buffer;
  StringOStream OS(Buffer);
  OS << "x=" << 42 << ' ' << -7 << ' ' << 3.5 << ' ' << true;
  EXPECT_EQ(Buffer, "x=42 -7 3.5 true");
}

TEST(OStreamTest, WritesUnsignedAndHex) {
  std::string Buffer;
  StringOStream OS(Buffer);
  OS << uint64_t(18446744073709551615ULL) << ' ';
  OS.writeHex(0xdeadbeef);
  EXPECT_EQ(Buffer, "18446744073709551615 0xdeadbeef");
}

TEST(OStreamTest, Justification) {
  std::string Buffer;
  StringOStream OS(Buffer);
  OS.leftJustify("ab", 5);
  OS << '|';
  OS.rightJustify("cd", 4);
  EXPECT_EQ(Buffer, "ab   |  cd");
}

TEST(OStreamTest, JustificationDoesNotTruncate) {
  std::string Buffer;
  StringOStream OS(Buffer);
  OS.leftJustify("abcdef", 3);
  EXPECT_EQ(Buffer, "abcdef");
}

TEST(OStreamTest, IndentLargeWidth) {
  std::string Buffer;
  StringOStream OS(Buffer);
  OS.indent(70);
  EXPECT_EQ(Buffer, std::string(70, ' '));
}

TEST(StringUtilsTest, FormatString) {
  EXPECT_EQ(formatString("%d-%s", 5, "x"), "5-x");
  EXPECT_EQ(formatString("%0.2f", 1.5), "1.50");
  EXPECT_EQ(formatString("empty"), "empty");
}

TEST(StringUtilsTest, SplitDropsEmptyPieces) {
  auto Pieces = splitString("a,,b,c,", ',');
  ASSERT_EQ(Pieces.size(), 3u);
  EXPECT_EQ(Pieces[0], "a");
  EXPECT_EQ(Pieces[1], "b");
  EXPECT_EQ(Pieces[2], "c");
}

TEST(StringUtilsTest, Trim) {
  EXPECT_EQ(trimString("  x y \t\n"), "x y");
  EXPECT_EQ(trimString("   "), "");
  EXPECT_EQ(trimString("abc"), "abc");
}

TEST(StringUtilsTest, StartsWith) {
  EXPECT_TRUE(startsWith("foobar", "foo"));
  EXPECT_FALSE(startsWith("fo", "foo"));
  EXPECT_TRUE(startsWith("anything", ""));
}

TEST(RNGTest, DeterministicAcrossInstances) {
  RNG A(12345), B(12345);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RNGTest, DifferentSeedsDiffer) {
  RNG A(1), B(2);
  int Same = 0;
  for (int I = 0; I < 64; ++I)
    Same += A.next() == B.next();
  EXPECT_LT(Same, 4);
}

TEST(RNGTest, NextBelowStaysInRange) {
  RNG R(7);
  std::set<uint64_t> Seen;
  for (int I = 0; I < 1000; ++I) {
    uint64_t V = R.nextBelow(10);
    EXPECT_LT(V, 10u);
    Seen.insert(V);
  }
  // All ten residues should show up in 1000 draws.
  EXPECT_EQ(Seen.size(), 10u);
}

TEST(RNGTest, NextInRangeInclusive) {
  RNG R(9);
  bool SawLo = false, SawHi = false;
  for (int I = 0; I < 2000; ++I) {
    int64_t V = R.nextInRange(-3, 3);
    EXPECT_GE(V, -3);
    EXPECT_LE(V, 3);
    SawLo |= V == -3;
    SawHi |= V == 3;
  }
  EXPECT_TRUE(SawLo);
  EXPECT_TRUE(SawHi);
}

TEST(RNGTest, NextBoolExtremes) {
  RNG R(11);
  for (int I = 0; I < 50; ++I) {
    EXPECT_FALSE(R.nextBool(0.0));
    EXPECT_TRUE(R.nextBool(1.0));
  }
}

TEST(RNGTest, NextDoubleUnitInterval) {
  RNG R(13);
  double Sum = 0;
  for (int I = 0; I < 10000; ++I) {
    double V = R.nextDouble();
    EXPECT_GE(V, 0.0);
    EXPECT_LT(V, 1.0);
    Sum += V;
  }
  EXPECT_NEAR(Sum / 10000.0, 0.5, 0.02);
}

} // namespace
