//===- SupportTest.cpp - Tests for the support library ----------*- C++ -*-===//

#include "support/Hash.h"
#include "support/JSONReader.h"
#include "support/OStream.h"
#include "support/RNG.h"
#include "support/Stats.h"
#include "support/StringUtils.h"

#include <gtest/gtest.h>

#include <set>
#include <thread>

using namespace srp;

namespace {

TEST(OStreamTest, WritesScalars) {
  std::string Buffer;
  StringOStream OS(Buffer);
  OS << "x=" << 42 << ' ' << -7 << ' ' << 3.5 << ' ' << true;
  EXPECT_EQ(Buffer, "x=42 -7 3.5 true");
}

TEST(OStreamTest, WritesUnsignedAndHex) {
  std::string Buffer;
  StringOStream OS(Buffer);
  OS << uint64_t(18446744073709551615ULL) << ' ';
  OS.writeHex(0xdeadbeef);
  EXPECT_EQ(Buffer, "18446744073709551615 0xdeadbeef");
}

TEST(OStreamTest, Justification) {
  std::string Buffer;
  StringOStream OS(Buffer);
  OS.leftJustify("ab", 5);
  OS << '|';
  OS.rightJustify("cd", 4);
  EXPECT_EQ(Buffer, "ab   |  cd");
}

TEST(OStreamTest, JustificationDoesNotTruncate) {
  std::string Buffer;
  StringOStream OS(Buffer);
  OS.leftJustify("abcdef", 3);
  EXPECT_EQ(Buffer, "abcdef");
}

TEST(OStreamTest, IndentLargeWidth) {
  std::string Buffer;
  StringOStream OS(Buffer);
  OS.indent(70);
  EXPECT_EQ(Buffer, std::string(70, ' '));
}

TEST(StringUtilsTest, FormatString) {
  EXPECT_EQ(formatString("%d-%s", 5, "x"), "5-x");
  EXPECT_EQ(formatString("%0.2f", 1.5), "1.50");
  EXPECT_EQ(formatString("empty"), "empty");
}

TEST(StringUtilsTest, SplitDropsEmptyPieces) {
  auto Pieces = splitString("a,,b,c,", ',');
  ASSERT_EQ(Pieces.size(), 3u);
  EXPECT_EQ(Pieces[0], "a");
  EXPECT_EQ(Pieces[1], "b");
  EXPECT_EQ(Pieces[2], "c");
}

TEST(StringUtilsTest, Trim) {
  EXPECT_EQ(trimString("  x y \t\n"), "x y");
  EXPECT_EQ(trimString("   "), "");
  EXPECT_EQ(trimString("abc"), "abc");
}

TEST(StringUtilsTest, StartsWith) {
  EXPECT_TRUE(startsWith("foobar", "foo"));
  EXPECT_FALSE(startsWith("fo", "foo"));
  EXPECT_TRUE(startsWith("anything", ""));
}

TEST(RNGTest, DeterministicAcrossInstances) {
  RNG A(12345), B(12345);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RNGTest, DifferentSeedsDiffer) {
  RNG A(1), B(2);
  int Same = 0;
  for (int I = 0; I < 64; ++I)
    Same += A.next() == B.next();
  EXPECT_LT(Same, 4);
}

TEST(RNGTest, NextBelowStaysInRange) {
  RNG R(7);
  std::set<uint64_t> Seen;
  for (int I = 0; I < 1000; ++I) {
    uint64_t V = R.nextBelow(10);
    EXPECT_LT(V, 10u);
    Seen.insert(V);
  }
  // All ten residues should show up in 1000 draws.
  EXPECT_EQ(Seen.size(), 10u);
}

TEST(RNGTest, NextInRangeInclusive) {
  RNG R(9);
  bool SawLo = false, SawHi = false;
  for (int I = 0; I < 2000; ++I) {
    int64_t V = R.nextInRange(-3, 3);
    EXPECT_GE(V, -3);
    EXPECT_LE(V, 3);
    SawLo |= V == -3;
    SawHi |= V == 3;
  }
  EXPECT_TRUE(SawLo);
  EXPECT_TRUE(SawHi);
}

TEST(RNGTest, NextBoolExtremes) {
  RNG R(11);
  for (int I = 0; I < 50; ++I) {
    EXPECT_FALSE(R.nextBool(0.0));
    EXPECT_TRUE(R.nextBool(1.0));
  }
}

// The hash is fixed by specification (content addressing must be stable
// across builds), so pin it to the published FNV-1a test vectors.
TEST(HashTest, Fnv1a64KnownVectors) {
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ULL);
}

TEST(HashTest, ChainingEqualsConcatenation) {
  EXPECT_EQ(fnv1a64("world", fnv1a64("hello ")), fnv1a64("hello world"));
  // The integer overload hashes 8 little-endian bytes.
  std::string Bytes("\x39\x30\x00\x00\x00\x00\x00\x00", 8);
  EXPECT_EQ(fnv1a64(uint64_t(12345), Fnv1a64Offset), fnv1a64(Bytes));
}

TEST(JSONReaderTest, ParsesScalarsWithIntegralIdentity) {
  JSONValue V;
  std::string Error;
  ASSERT_TRUE(parseJSON(" 42 ", V, Error)) << Error;
  ASSERT_TRUE(V.isUint());
  EXPECT_EQ(V.asUint(), 42u);

  ASSERT_TRUE(parseJSON("-7", V, Error));
  EXPECT_EQ(V.kind(), JSONValue::Kind::Int);
  EXPECT_EQ(V.asInt(), -7);

  ASSERT_TRUE(parseJSON("1.5", V, Error));
  EXPECT_EQ(V.kind(), JSONValue::Kind::Double);
  EXPECT_DOUBLE_EQ(V.asDouble(), 1.5);

  ASSERT_TRUE(parseJSON("1e3", V, Error));
  EXPECT_EQ(V.kind(), JSONValue::Kind::Double);

  ASSERT_TRUE(parseJSON("18446744073709551615", V, Error));
  ASSERT_TRUE(V.isUint());
  EXPECT_EQ(V.asUint(), UINT64_MAX);

  ASSERT_TRUE(parseJSON("true", V, Error));
  EXPECT_TRUE(V.asBool());
  ASSERT_TRUE(parseJSON("null", V, Error));
  EXPECT_TRUE(V.isNull());
  ASSERT_TRUE(parseJSON("\"a\\n\\u0041\"", V, Error));
  EXPECT_EQ(V.asString(), "a\nA");
}

TEST(JSONReaderTest, ObjectsPreserveOrderAndFind) {
  JSONValue V;
  std::string Error;
  ASSERT_TRUE(parseJSON("{\"b\":1,\"a\":[2,3],\"c\":{}}", V, Error));
  ASSERT_TRUE(V.isObject());
  ASSERT_EQ(V.size(), 3u);
  EXPECT_EQ(V.members()[0].first, "b");
  EXPECT_EQ(V.members()[1].first, "a");
  const JSONValue *A = V.find("a");
  ASSERT_NE(A, nullptr);
  ASSERT_TRUE(A->isArray());
  ASSERT_EQ(A->size(), 2u);
  EXPECT_EQ(A->at(1).asUint(), 3u);
  EXPECT_EQ(V.find("missing"), nullptr);
}

// Strictness is the point: the parser fronts an adversarial protocol, so
// every extension is an error and every error carries an offset.
TEST(JSONReaderTest, RejectsExtensionsAndAbuse) {
  const char *Bad[] = {
      "",
      "{",
      "{\"a\":1,}",       // trailing comma
      "{a:1}",            // unquoted key
      "{\"a\":1,\"a\":2}", // duplicate key
      "[1 2]",
      "01",               // leading zero
      "+1",
      "1.",               // no digits after the point
      "\"\\ud800\"",      // lone surrogate
      "\"unterminated",
      "\"bad \\q escape\"",
      "nul",
      "// comment\n1",
      "1 2",              // trailing garbage
      "\x01",
  };
  for (const char *Text : Bad) {
    JSONValue V;
    std::string Error;
    EXPECT_FALSE(parseJSON(Text, V, Error)) << Text;
    EXPECT_NE(Error.find("offset"), std::string::npos) << Text;
  }
}

TEST(JSONReaderTest, DepthLimitStopsRecursion) {
  std::string Deep(64, '[');
  Deep += std::string(64, ']');
  JSONValue V;
  std::string Error;
  EXPECT_TRUE(parseJSON(Deep, V, Error)) << Error;
  EXPECT_FALSE(parseJSON("[" + Deep + "]", V, Error));
  EXPECT_FALSE(parseJSON(std::string(5000, '['), V, Error));
}

// The stats-epoch mechanism the serve daemon and srp-run's fixed
// --stats/--timing-json reporting rest on: a capture sees only what its
// thread recorded while it was alive, and totals still add up after it
// merges out.
TEST(StatsCaptureTest, EpochIsolatesAndMergesOut) {
  StatsRegistry &Global = StatsRegistry::get();
  uint64_t Before = Global.value("test.capture.counter");
  StatsRegistry::current().add("test.capture.counter", 1); // outside
  {
    ScopedStatsCapture Outer;
    StatsRegistry::current().add("test.capture.counter", 10);
    {
      ScopedStatsCapture Inner;
      StatsRegistry::current().add("test.capture.counter", 100);
      EXPECT_EQ(Inner.captured().value("test.capture.counter"), 100u);
    }
    // Inner merged into Outer, not into the global registry.
    EXPECT_EQ(Outer.captured().value("test.capture.counter"), 110u);
    EXPECT_EQ(Global.value("test.capture.counter"), Before + 1);
  }
  // Everything reaches the global registry once the last capture dies.
  EXPECT_EQ(Global.value("test.capture.counter"), Before + 111);
  // With no capture alive, current() is the global registry itself.
  EXPECT_EQ(&StatsRegistry::current(), &Global);
}

TEST(StatsCaptureTest, ThreadsHaveIndependentEpochs) {
  ScopedStatsCapture Capture;
  std::thread([] {
    // This thread has no capture: it records globally.
    StatsRegistry::current().add("test.capture.other-thread", 5);
  }).join();
  EXPECT_EQ(Capture.captured().value("test.capture.other-thread"), 0u);
  EXPECT_GE(StatsRegistry::get().value("test.capture.other-thread"), 5u);
}

TEST(RNGTest, NextDoubleUnitInterval) {
  RNG R(13);
  double Sum = 0;
  for (int I = 0; I < 10000; ++I) {
    double V = R.nextDouble();
    EXPECT_GE(V, 0.0);
    EXPECT_LT(V, 1.0);
    Sum += V;
  }
  EXPECT_NEAR(Sum / 10000.0, 0.5, 0.02);
}

} // namespace
