//===- ExperimentTest.cpp - Parallel experiment driver tests -------------------===//
//
// The determinism contract of core::runExperiments: a pipeline run is a
// pure function of (workload, config), so the counters coming back must
// be byte-identical for any thread count. PipelineResult::Timings is
// wall-clock and explicitly excluded (see core/Pipeline.h).
//
//===----------------------------------------------------------------------===//

#include "core/Experiment.h"

#include "ir/IRBuilder.h"
#include "workloads/LoopHelper.h"

#include <gtest/gtest.h>

#include <cstring>

using namespace srp;
using namespace srp::core;
using namespace srp::ir;

namespace {

/// A Figure 1(a)-in-a-loop kernel: the invariant load of `a` crosses a
/// may-aliasing store every iteration, so the ALAT strategy speculates
/// while the baseline falls back to software checking — both paths of the
/// pipeline get exercised.
Workload specKernel() {
  Workload W;
  W.Name = "speckernel";
  W.TrainScale = 1;
  W.RefScale = 2;
  W.Build = [](Module &M, uint64_t Scale) {
    const int64_t N = static_cast<int64_t>(200 * Scale);
    Symbol *A = M.createGlobal("a", TypeKind::Int);
    Symbol *B2 = M.createGlobal("b", TypeKind::Int);
    Symbol *P = M.createGlobal("p", TypeKind::Int);
    Symbol *Zero = M.createGlobal("always_zero", TypeKind::Int);
    Symbol *I = M.createGlobal("i", TypeKind::Int);
    Symbol *Acc = M.createGlobal("acc", TypeKind::Int);
    IRBuilder B(M);
    B.startFunction("main");
    B.emitStore(directRef(A), Operand::constInt(7));
    // p may point at a (decoy path) but really points at b.
    {
      BasicBlock *Decoy = B.createBlock("decoy");
      BasicBlock *Join = B.createBlock("seeded");
      unsigned TZ = B.emitLoad(directRef(Zero));
      B.setCondBr(Operand::temp(TZ), Decoy, Join);
      B.setBlock(Decoy);
      unsigned TA = B.emitAddrOf(A);
      B.emitStore(directRef(P), Operand::temp(TA));
      B.setBr(Join);
      B.setBlock(Join);
      unsigned TB = B.emitAddrOf(B2);
      B.emitStore(directRef(P), Operand::temp(TB));
    }
    workloads::LoopCtx L =
        workloads::beginLoop(B, I, Operand::constInt(N));
    {
      unsigned T1 = B.emitLoad(directRef(A));
      B.emitStore(indirectRef(P, TypeKind::Int), Operand::temp(L.IdxTemp));
      unsigned T2 = B.emitLoad(directRef(A));
      unsigned TS = B.emitAssign(Opcode::Add, Operand::temp(T1),
                                 Operand::temp(T2));
      unsigned TAcc = B.emitLoad(directRef(Acc));
      unsigned TNew = B.emitAssign(Opcode::Add, Operand::temp(TAcc),
                                   Operand::temp(TS));
      B.emitStore(directRef(Acc), Operand::temp(TNew));
    }
    workloads::endLoop(B, L);
    unsigned TOut = B.emitLoad(directRef(Acc));
    B.emitPrint(Operand::temp(TOut));
    B.setRet(Operand::temp(TOut));
  };
  return W;
}

/// Everything of a result that must be thread-count independent (all of
/// it except Timings).
void expectIdentical(const PipelineResult &A, const PipelineResult &B) {
  EXPECT_EQ(A.Ok, B.Ok);
  EXPECT_EQ(A.Error, B.Error);
  EXPECT_EQ(A.Output, B.Output);
  EXPECT_EQ(0, std::memcmp(&A.Sim.Counters, &B.Sim.Counters,
                           sizeof(A.Sim.Counters)));
  EXPECT_EQ(0, std::memcmp(&A.Promotion, &B.Promotion,
                           sizeof(A.Promotion)));
  EXPECT_EQ(A.MaxStackedRegs, B.MaxStackedRegs);
  EXPECT_EQ(A.SpecDiags.size(), B.SpecDiags.size());
}

std::vector<Experiment> grid(const Workload &W) {
  std::vector<Experiment> Exps;
  for (const char *Strategy : {"conservative", "baseline", "alat"}) {
    PipelineConfig C =
        configFor(Strategy[0] == 'c'   ? pre::PromotionConfig::conservative()
                  : Strategy[0] == 'b' ? pre::PromotionConfig::baselineO3()
                                       : pre::PromotionConfig::alat());
    Exps.push_back({&W, C, std::string(W.Name) + "/" + Strategy});
  }
  return Exps;
}

TEST(ExperimentTest, ParallelCountersMatchSerialByteForByte) {
  Workload W = specKernel();
  std::vector<Experiment> Exps = grid(W);

  ExperimentOptions Serial;
  Serial.Threads = 1;
  Serial.CheckOracle = true;
  std::vector<PipelineResult> SerialR = runExperiments(Exps, Serial);

  ExperimentOptions Parallel;
  Parallel.Threads = 4;
  Parallel.CheckOracle = true;
  std::vector<PipelineResult> ParallelR = runExperiments(Exps, Parallel);

  ASSERT_EQ(SerialR.size(), Exps.size());
  ASSERT_EQ(ParallelR.size(), Exps.size());
  for (size_t I = 0; I < Exps.size(); ++I) {
    EXPECT_TRUE(SerialR[I].Ok) << Exps[I].Label << ": " << SerialR[I].Error;
    expectIdentical(SerialR[I], ParallelR[I]);
  }
  // The grid is not degenerate: the strategies really differ.
  EXPECT_LT(SerialR[2].Sim.Counters.RetiredLoads,
            SerialR[0].Sim.Counters.RetiredLoads)
      << "alat must retire fewer loads than conservative";
}

TEST(ExperimentTest, ResultsComeBackInInputOrder) {
  Workload W = specKernel();
  std::vector<Experiment> Exps = grid(W);
  ExperimentOptions Opts;
  Opts.Threads = 3;
  std::vector<PipelineResult> R = runExperiments(Exps, Opts);
  ASSERT_EQ(R.size(), 3u);
  // Index 0 is conservative, 2 is alat — distinguishable by ALAT checks.
  EXPECT_EQ(R[0].Sim.Counters.AlatChecks, 0u);
  EXPECT_GT(R[2].Sim.Counters.AlatChecks, 0u);
}

TEST(ExperimentTest, MoreThreadsThanExperiments) {
  Workload W = specKernel();
  std::vector<Experiment> Exps = {
      {&W, configFor(pre::PromotionConfig::alat()), "only"}};
  ExperimentOptions Opts;
  Opts.Threads = 8;
  Opts.CheckOracle = true;
  std::vector<PipelineResult> R = runExperiments(Exps, Opts);
  ASSERT_EQ(R.size(), 1u);
  EXPECT_TRUE(R[0].Ok) << R[0].Error;
}

} // namespace
