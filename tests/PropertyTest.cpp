//===- PropertyTest.cpp - Differential property tests ------------*- C++ -*-===//
//
// The project's headline invariant (DESIGN.md §5): for any program, every
// promotion strategy and the full compile-to-simulate pipeline produce the
// interpreter's output. Random programs sweep the space; each seed runs
// through conservative / baseline / ALAT / ALAT+cascade / ALAT+st.a, at
// the IR level (interpret the promoted module) and through the backend
// (lower, allocate, simulate).
//
//===----------------------------------------------------------------------===//

#include "fuzz/RandomProgram.h"

#include "alias/AliasAnalysis.h"
#include "arch/Simulator.h"
#include "codegen/Lowering.h"
#include "codegen/RegAlloc.h"
#include "interp/Interpreter.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "pre/Promoter.h"

#include <gtest/gtest.h>

using namespace srp;
using namespace srp::ir;
using namespace srp::interp;

namespace {

struct StrategyCase {
  const char *Name;
  pre::PromotionConfig Config;
};

std::vector<StrategyCase> strategies() {
  pre::PromotionConfig Cascade = pre::PromotionConfig::alat();
  Cascade.EnableCascade = true;
  pre::PromotionConfig StA = pre::PromotionConfig::alat();
  StA.UseStA = true;
  pre::PromotionConfig SwInt = pre::PromotionConfig::baselineO3();
  SwInt.SoftwareCheckIntExprs = true;
  SwInt.SoftwareMaxChecks = 4;
  pre::PromotionConfig AtReuse = pre::PromotionConfig::alat();
  AtReuse.ChecksAtReuse = true;
  AtReuse.EnableCascade = true;
  return {
      {"conservative", pre::PromotionConfig::conservative()},
      {"baselineO3", pre::PromotionConfig::baselineO3()},
      {"baselineO3+intfwd", SwInt},
      {"alat", pre::PromotionConfig::alat()},
      {"alat+cascade", Cascade},
      {"alat+sta", StA},
      {"alat+at-reuse", AtReuse},
  };
}

class RandomDifferential : public ::testing::TestWithParam<int> {};

TEST_P(RandomDifferential, AllStrategiesMatchOracle) {
  uint64_t Seed = static_cast<uint64_t>(GetParam()) * 7919 + 17;

  // Oracle.
  Module Ref;
  srp::fuzz::buildRandomProgram(Ref, Seed);
  {
    auto Errors = verifyModule(Ref);
    ASSERT_TRUE(Errors.empty()) << Errors[0];
  }
  for (unsigned I = 0; I < Ref.numFunctions(); ++I)
    Ref.function(I)->recomputeCFG();
  Interpreter OracleInterp(Ref);
  RunResult Oracle = OracleInterp.run(20'000'000);
  ASSERT_TRUE(Oracle.Ok) << Oracle.Error;

  for (const StrategyCase &S : strategies()) {
    SCOPED_TRACE(S.Name);
    Module M;
    srp::fuzz::buildRandomProgram(M, Seed);
    for (unsigned I = 0; I < M.numFunctions(); ++I)
      M.function(I)->recomputeCFG();

    AliasProfile AP;
    EdgeProfile EP;
    Interpreter Train(M);
    Train.setAliasProfile(&AP);
    Train.setEdgeProfile(&EP);
    ASSERT_TRUE(Train.run(20'000'000).Ok);

    alias::SteensgaardAnalysis AA(M);
    pre::promoteModule(M, AA, &AP, &EP, S.Config);
    auto Errors = verifyModule(M);
    ASSERT_TRUE(Errors.empty())
        << Errors[0] << "\n"
        << moduleToString(M);

    // IR level.
    Interpreter After(M);
    RunResult R = After.run(20'000'000);
    ASSERT_TRUE(R.Ok) << R.Error;
    ASSERT_EQ(R.Output, Oracle.Output) << moduleToString(M);

    // Backend level.
    auto MM = codegen::lowerModule(M);
    codegen::allocateRegisters(*MM);
    arch::SimConfig SC;
    SC.UseStA = true;
    arch::SimResult Sim = arch::simulate(*MM, SC);
    ASSERT_TRUE(Sim.Ok) << Sim.Error;
    ASSERT_EQ(Sim.Output, Oracle.Output) << moduleToString(M);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomDifferential,
                         ::testing::Range(0, 40));

/// Register pressure must not break correctness: the same differential
/// under a tiny register pool (forcing spills around speculation).
class RandomTinyRegs : public ::testing::TestWithParam<int> {};

TEST_P(RandomTinyRegs, SpillsPreserveSemantics) {
  uint64_t Seed = static_cast<uint64_t>(GetParam()) * 104729 + 3;

  Module Ref;
  srp::fuzz::buildRandomProgram(Ref, Seed);
  for (unsigned I = 0; I < Ref.numFunctions(); ++I)
    Ref.function(I)->recomputeCFG();
  Interpreter OracleInterp(Ref);
  RunResult Oracle = OracleInterp.run(20'000'000);
  ASSERT_TRUE(Oracle.Ok) << Oracle.Error;

  Module M;
  srp::fuzz::buildRandomProgram(M, Seed);
  for (unsigned I = 0; I < M.numFunctions(); ++I)
    M.function(I)->recomputeCFG();
  AliasProfile AP;
  Interpreter Train(M);
  Train.setAliasProfile(&AP);
  ASSERT_TRUE(Train.run(20'000'000).Ok);
  alias::SteensgaardAnalysis AA(M);
  pre::promoteModule(M, AA, &AP, nullptr, pre::PromotionConfig::alat());
  ASSERT_TRUE(verifyModule(M).empty());

  auto MM = codegen::lowerModule(M);
  codegen::RegAllocOptions RA;
  RA.IntPoolSize = 10;
  RA.FpPoolSize = 6;
  codegen::allocateRegisters(*MM, RA);
  arch::SimResult Sim = arch::simulate(*MM, arch::SimConfig());
  ASSERT_TRUE(Sim.Ok) << Sim.Error;
  EXPECT_EQ(Sim.Output, Oracle.Output);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTinyRegs, ::testing::Range(0, 15));

} // namespace
