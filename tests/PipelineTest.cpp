//===- PipelineTest.cpp - End-to-end pipeline and workload tests -*- C++ -*-===//

#include "core/Pipeline.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace srp;
using namespace srp::core;
using namespace srp::workloads;

namespace {

PipelineConfig conservativeConfig() {
  return configFor(pre::PromotionConfig::conservative());
}
PipelineConfig baselineConfig() {
  return configFor(pre::PromotionConfig::baselineO3());
}
PipelineConfig alatConfig() {
  return configFor(pre::PromotionConfig::alat());
}

/// Every strategy must produce the oracle's output on every workload.
class WorkloadCorrectness
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

static const char *strategyName(int S) {
  switch (S) {
  case 0:
    return "conservative";
  case 1:
    return "baselineO3";
  default:
    return "alat";
  }
}

TEST_P(WorkloadCorrectness, MatchesOracle) {
  auto [WorkloadIdx, Strategy] = GetParam();
  Workload W = standardWorkloads()[static_cast<size_t>(WorkloadIdx)];
  SCOPED_TRACE(W.Name + std::string("/") + strategyName(Strategy));

  PipelineConfig Config = Strategy == 0   ? conservativeConfig()
                          : Strategy == 1 ? baselineConfig()
                                          : alatConfig();
  std::vector<std::string> Oracle = oracleOutput(W);
  ASSERT_FALSE(Oracle.empty()) << "oracle produced no output";
  PipelineResult R = runPipeline(W, Config);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Output, Oracle);
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloadsAllStrategies, WorkloadCorrectness,
    ::testing::Combine(::testing::Range(0, 10), ::testing::Range(0, 3)),
    [](const ::testing::TestParamInfo<std::tuple<int, int>> &Info) {
      Workload W =
          standardWorkloads()[static_cast<size_t>(std::get<0>(Info.param))];
      return W.Name + "_" + strategyName(std::get<1>(Info.param));
    });

//===----------------------------------------------------------------------===//
// The paper's qualitative claims, per workload.
//===----------------------------------------------------------------------===//

TEST(PipelineTest, AlatReducesRetiredLoadsOnEveryWorkload) {
  for (const Workload &W : standardWorkloads()) {
    SCOPED_TRACE(W.Name);
    PipelineResult Base = runPipeline(W, baselineConfig());
    PipelineResult Spec = runPipeline(W, alatConfig());
    ASSERT_TRUE(Base.Ok) << Base.Error;
    ASSERT_TRUE(Spec.Ok) << Spec.Error;
    EXPECT_LT(Spec.Sim.Counters.RetiredLoads,
              Base.Sim.Counters.RetiredLoads)
        << "speculation must remove loads the baseline cannot";
  }
}

TEST(PipelineTest, AlatReducesCyclesOnEveryWorkload) {
  for (const Workload &W : standardWorkloads()) {
    SCOPED_TRACE(W.Name);
    PipelineResult Base = runPipeline(W, baselineConfig());
    PipelineResult Spec = runPipeline(W, alatConfig());
    ASSERT_TRUE(Base.Ok && Spec.Ok);
    // Allow 0.1% noise: when every removed load was an L1 hit that
    // scheduled perfectly, checks and loads cost about the same (the
    // paper's own explanation of its small integer gains).
    EXPECT_LE(Spec.Sim.Counters.Cycles,
              Base.Sim.Counters.Cycles + Base.Sim.Counters.Cycles / 1000)
        << "speculation must not slow the workload down";
  }
}

TEST(PipelineTest, GzipHasVisibleMisSpeculation) {
  PipelineResult R = runPipeline(gzipWorkload(), alatConfig());
  ASSERT_TRUE(R.Ok) << R.Error;
  ASSERT_GT(R.Sim.Counters.AlatChecks, 0u);
  double Ratio = double(R.Sim.Counters.AlatCheckFailures) /
                 double(R.Sim.Counters.AlatChecks);
  EXPECT_GT(Ratio, 0.01) << "gzip is built to collide ~5% of the time";
  EXPECT_LT(Ratio, 0.15);
}

TEST(PipelineTest, QuietWorkloadsHaveTinyMisSpeculation) {
  for (const char *Name : {"ammp", "mcf", "vpr"}) {
    for (const Workload &W : standardWorkloads()) {
      if (W.Name != Name)
        continue;
      SCOPED_TRACE(Name);
      PipelineResult R = runPipeline(W, alatConfig());
      ASSERT_TRUE(R.Ok) << R.Error;
      if (R.Sim.Counters.AlatChecks == 0)
        continue;
      double Ratio = double(R.Sim.Counters.AlatCheckFailures) /
                     double(R.Sim.Counters.AlatChecks);
      EXPECT_LT(Ratio, 0.02) << "these workloads never really collide";
    }
  }
}

TEST(PipelineTest, FpWorkloadsGainMoreCyclesPerRemovedLoad) {
  // The §4 explanation: each removed FP load is worth ~9 cycles, an int
  // load ~2. Compare cycle-gain per removed load between ammp (FP) and
  // vpr (int).
  auto GainPerLoad = [](const Workload &W) {
    PipelineResult Base = runPipeline(W, baselineConfig());
    PipelineResult Spec = runPipeline(W, alatConfig());
    EXPECT_TRUE(Base.Ok && Spec.Ok);
    uint64_t LoadsSaved = Base.Sim.Counters.RetiredLoads -
                          Spec.Sim.Counters.RetiredLoads;
    uint64_t CyclesSaved =
        Base.Sim.Counters.Cycles > Spec.Sim.Counters.Cycles
            ? Base.Sim.Counters.Cycles - Spec.Sim.Counters.Cycles
            : 0;
    return LoadsSaved ? double(CyclesSaved) / double(LoadsSaved) : 0.0;
  };
  double FpGain = GainPerLoad(ammpWorkload());
  double IntGain = GainPerLoad(vprWorkload());
  EXPECT_GT(FpGain, IntGain)
      << "FP loads cost more, so removing them buys more";
}

TEST(PipelineTest, RseCyclesAreNegligible) {
  // Figure 11: RSE cycles are a vanishing fraction of total cycles even
  // after promotion grows register frames.
  for (const Workload &W : standardWorkloads()) {
    SCOPED_TRACE(W.Name);
    PipelineResult Spec = runPipeline(W, alatConfig());
    ASSERT_TRUE(Spec.Ok);
    EXPECT_LT(Spec.Sim.Counters.RseCycles,
              Spec.Sim.Counters.Cycles / 100)
        << "RSE cost must stay in the noise";
  }
}

TEST(PipelineTest, PromotionGrowsRegisterFramesModestly) {
  for (const Workload &W : standardWorkloads()) {
    SCOPED_TRACE(W.Name);
    PipelineResult Base = runPipeline(W, conservativeConfig());
    PipelineResult Spec = runPipeline(W, alatConfig());
    ASSERT_TRUE(Base.Ok && Spec.Ok);
    // Promoted temps live longer, but copy propagation can also retire
    // registers; the paper's point is just that the frame stays well
    // inside the 96-register stacked file.
    EXPECT_LE(Spec.MaxStackedRegs, 96u);
    EXPECT_EQ(Spec.RegAlloc.SpilledRegs, 0u)
        << "the large register file absorbs the added pressure";
  }
}

TEST(PipelineTest, ProfileRemapAcrossScalesIsStable) {
  // Train scale 1, ref scale 4 (the default): the pipeline must not
  // reject the workload for shape changes, and speculation must engage.
  PipelineResult R = runPipeline(ammpWorkload(), alatConfig());
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_GT(R.Promotion.loadsRemoved(), 0u);
  EXPECT_GT(R.Sim.Counters.AlatChecks, 0u);
}

TEST(PipelineTest, DisablingAliasProfileDisablesDataSpeculation) {
  PipelineConfig C = alatConfig();
  C.UseAliasProfile = false;
  PipelineResult R = runPipeline(ammpWorkload(), C);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Promotion.ChecksInserted, 0u)
      << "no profile, no speculative chis, no ALAT checks";
}

} // namespace
