//===- CopyPropTest.cpp - Tests for local copy propagation -------*- C++ -*-===//

#include "pre/CopyProp.h"

#include "interp/Interpreter.h"
#include "ir/IRBuilder.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

using namespace srp;
using namespace srp::ir;
using namespace srp::pre;

namespace {

interp::RunResult interpret(Module &M) {
  for (unsigned I = 0; I < M.numFunctions(); ++I)
    M.function(I)->recomputeCFG();
  interp::Interpreter I(M);
  return I.run();
}

unsigned countAssigns(const Function &F) {
  unsigned N = 0;
  for (unsigned BI = 0; BI < F.numBlocks(); ++BI)
    for (size_t SI = 0; SI < F.block(BI)->size(); ++SI)
      N += F.block(BI)->stmt(SI)->Kind == StmtKind::Assign;
  return N;
}

TEST(CopyPropTest, ForwardsSimpleCopies) {
  Module M;
  IRBuilder B(M);
  Function *F = B.startFunction("main");
  unsigned T0 = B.emitAssign(Opcode::Copy, Operand::constInt(5));
  unsigned T1 = B.emitAssign(Opcode::Copy, Operand::temp(T0));
  unsigned T2 = B.emitAssign(Opcode::Add, Operand::temp(T1),
                             Operand::constInt(1));
  B.emitPrint(Operand::temp(T2));
  B.setRet();
  M.function(0)->recomputeCFG();
  auto Ref = interpret(M);

  CopyPropStats Stats = propagateCopies(*F);
  EXPECT_GE(Stats.UsesRewritten, 1u);
  EXPECT_GE(Stats.AssignsRemoved, 1u) << "the dead chained copy";
  auto After = interpret(M);
  EXPECT_EQ(After.Output, Ref.Output);
}

TEST(CopyPropTest, RespectsRedefinitionOfSource) {
  // t = copy x; x redefined; use of t must NOT become a use of x.
  // Build with raw statements since the builder enforces single
  // assignment (this mirrors post-promotion IR).
  Module M;
  Symbol *A = M.createGlobal("a", TypeKind::Int);
  IRBuilder B(M);
  Function *F = B.startFunction("main");
  unsigned X = B.emitLoad(directRef(A)); // x = a (0)
  unsigned T = B.emitAssign(Opcode::Copy, Operand::temp(X));
  // Redefine x via a raw statement (post-PRE pattern).
  Stmt Redef;
  Redef.Kind = StmtKind::Assign;
  Redef.Op = Opcode::Copy;
  Redef.Dst = X;
  Redef.A = Operand::constInt(99);
  B.block()->append(Redef);
  B.emitPrint(Operand::temp(T)); // must print 0, not 99
  B.emitPrint(Operand::temp(X));
  B.setRet();
  M.function(0)->recomputeCFG();
  auto Ref = interpret(M);
  ASSERT_EQ(Ref.Output[0], "0");
  ASSERT_EQ(Ref.Output[1], "99");

  propagateCopies(*F);
  auto After = interpret(M);
  EXPECT_EQ(After.Output, Ref.Output);
}

TEST(CopyPropTest, DoesNotCrossBlocks) {
  // The pass is block-local: a copy in one block must not rewrite uses
  // in another (the source may be redefined on another path).
  Module M;
  IRBuilder B(M);
  Function *F = B.startFunction("main");
  BasicBlock *Next = B.createBlock("next");
  unsigned T0 = B.emitAssign(Opcode::Copy, Operand::constInt(3));
  unsigned T1 = B.emitAssign(Opcode::Copy, Operand::temp(T0));
  B.setBr(Next);
  B.setBlock(Next);
  B.emitPrint(Operand::temp(T1));
  B.setRet();
  M.function(0)->recomputeCFG();
  auto Ref = interpret(M);

  propagateCopies(*F);
  auto After = interpret(M);
  EXPECT_EQ(After.Output, Ref.Output);
  EXPECT_EQ(After.Output[0], "3");
}

TEST(CopyPropTest, KeepsInvalaNamedTemps) {
  // invala names a temp's register; the temp must not be deleted as dead.
  Module M;
  Symbol *A = M.createGlobal("a", TypeKind::Int);
  IRBuilder B(M);
  Function *F = B.startFunction("main");
  unsigned T = B.emitLoad(directRef(A), SpecFlag::LdA);
  B.emitInvala(T);
  B.setRet();
  M.function(0)->recomputeCFG();
  propagateCopies(*F);
  EXPECT_EQ(F->entry()->size(), 2u) << "load and invala both survive";
}

TEST(CopyPropTest, RemovesDeadArithmetic) {
  Module M;
  IRBuilder B(M);
  Function *F = B.startFunction("main");
  B.emitAssign(Opcode::Add, Operand::constInt(1), Operand::constInt(2));
  unsigned T = B.emitAssign(Opcode::Copy, Operand::constInt(7));
  B.emitPrint(Operand::temp(T));
  B.setRet();
  M.function(0)->recomputeCFG();

  CopyPropStats Stats = propagateCopies(*F);
  EXPECT_GE(Stats.AssignsRemoved, 1u);
  auto After = interpret(M);
  EXPECT_EQ(After.Output[0], "7");
}

TEST(CopyPropTest, ChasesCopyChains) {
  Module M;
  IRBuilder B(M);
  Function *F = B.startFunction("main");
  unsigned T0 = B.emitAssign(Opcode::Copy, Operand::constInt(11));
  unsigned T1 = B.emitAssign(Opcode::Copy, Operand::temp(T0));
  unsigned T2 = B.emitAssign(Opcode::Copy, Operand::temp(T1));
  unsigned T3 = B.emitAssign(Opcode::Copy, Operand::temp(T2));
  B.emitPrint(Operand::temp(T3));
  B.setRet();
  M.function(0)->recomputeCFG();

  propagateCopies(*F);
  // Everything collapses onto T0; the chain dies.
  EXPECT_EQ(countAssigns(*F), 1u);
  auto After = interpret(M);
  EXPECT_EQ(After.Output[0], "11");
}

} // namespace
