//===- ResultCacheTest.cpp - Content-addressed result cache tests ---------===//
//
// Part of the srp-alat project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serving cache's three contracts (core/ResultCache.h):
///
///  * a hit is the cold run, byte for byte — verified over the full
///    10-workload x 3-strategy grid through ServerCore;
///  * eviction under an adversarially tiny byte budget never corrupts:
///    a lookup returns the exact inserted body or nothing;
///  * collisions are impossible by construction: the hash only routes
///    to a shard, entries compare by full key — verified differentially
///    over every fuzz-repros/ program plus 500 generated programs.
///
//===----------------------------------------------------------------------===//

#include "core/ResultCache.h"
#include "core/Serve.h"
#include "fuzz/Fuzzer.h"
#include "ir/Fingerprint.h"
#include "ir/Parser.h"
#include "support/StringUtils.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <dirent.h>
#include <map>
#include <set>
#include <string>
#include <vector>

using namespace srp;
using namespace srp::core;

namespace {

std::string runRequest(const char *Workload, const char *Strategy) {
  return formatString("{\"id\":\"r\",\"op\":\"run\",\"workload\":\"%s\","
                      "\"train_scale\":1,\"ref_scale\":2,"
                      "\"config\":{\"strategy\":\"%s\"}}",
                      Workload, Strategy);
}

/// The "result":... tail — the cache-governed part of a response frame.
std::string_view resultTail(std::string_view Response) {
  size_t At = Response.find("\"result\":");
  EXPECT_NE(At, std::string_view::npos) << Response;
  return At == std::string_view::npos ? Response : Response.substr(At);
}

ServeOptions serveOptions() {
  ServeOptions O;
  O.Threads = 1;
  O.Workloads = workloads::standardWorkloads();
  return O;
}

// A cache hit answers with the cold run's result body, byte for byte,
// across the whole evaluation grid. This is the acceptance invariant:
// the counter fingerprint inside the body is deterministic, so byte
// identity of the tail implies fingerprint identity.
TEST(ResultCacheServing, HitIsByteIdenticalToColdAcrossGrid) {
  ServerCore Core(serveOptions());
  static const char *const Strategies[] = {"conservative", "baseline",
                                           "alat"};
  std::vector<std::string> Requests;
  for (const Workload &W : workloads::standardWorkloads())
    for (const char *Strategy : Strategies)
      Requests.push_back(runRequest(W.Name.c_str(), Strategy));
  ASSERT_EQ(Requests.size(), 30u);

  std::vector<std::string> Cold;
  for (const std::string &Request : Requests) {
    Cold.push_back(Core.handle(Request));
    EXPECT_NE(Cold.back().find("\"cached\":false"), std::string::npos);
    EXPECT_NE(Cold.back().find("\"status\":0"), std::string::npos)
        << Cold.back();
  }
  ResultCache::Stats AfterCold = Core.cache().stats();
  EXPECT_EQ(AfterCold.Insertions, 30u);
  EXPECT_EQ(AfterCold.Misses, 30u);
  EXPECT_EQ(AfterCold.Hits, 0u);

  for (size_t I = 0; I < Requests.size(); ++I) {
    std::string Warm = Core.handle(Requests[I]);
    EXPECT_NE(Warm.find("\"cached\":true"), std::string::npos) << Warm;
    EXPECT_EQ(resultTail(Warm), resultTail(Cold[I]));
  }
  ResultCache::Stats AfterWarm = Core.cache().stats();
  EXPECT_EQ(AfterWarm.Hits, 30u);
  EXPECT_EQ(AfterWarm.Evictions, 0u);
}

// Under a byte budget far smaller than the working set, lookups must
// return exactly what insert stored or nothing at all — never a body
// belonging to another key, never a torn value.
TEST(ResultCacheTest, TinyBudgetEvictsWithoutCorruption) {
  ResultCacheConfig Config;
  Config.Shards = 2;
  Config.ByteBudget = 512; // 256 bytes per shard
  ResultCache Cache(Config);

  std::map<std::string, std::string> Truth;
  for (int Round = 0; Round < 400; ++Round) {
    std::string Key = formatString("key-%d", Round % 57);
    std::string Body = formatString("body-%d-%d|", Round % 57, Round) +
                       std::string(static_cast<size_t>(Round % 90), 'x');
    Cache.insert(Key, Body);
    Truth[Key] = Body;

    // Probe a sliding window of recent keys.
    for (int Probe = Round; Probe > Round - 8 && Probe >= 0; --Probe) {
      std::string ProbeKey = formatString("key-%d", Probe % 57);
      if (std::optional<std::string> Got = Cache.lookup(ProbeKey)) {
        EXPECT_EQ(*Got, Truth[ProbeKey]) << "corrupt hit for " << ProbeKey;
      }
    }
    ResultCache::Stats S = Cache.stats();
    EXPECT_LE(S.Bytes, Config.ByteBudget);
  }
  EXPECT_GT(Cache.stats().Evictions, 0u);
}

// An entry bigger than a whole shard's budget is refused outright
// rather than thrashing the shard empty.
TEST(ResultCacheTest, OversizedEntryIsUncacheable) {
  ResultCacheConfig Config;
  Config.Shards = 1;
  Config.ByteBudget = 100;
  ResultCache Cache(Config);
  Cache.insert("small", "v");
  Cache.insert("huge", std::string(200, 'x'));
  EXPECT_EQ(Cache.stats().Uncacheable, 1u);
  ASSERT_TRUE(Cache.lookup("small").has_value());
  EXPECT_FALSE(Cache.lookup("huge").has_value());
}

// Replacing an existing key keeps exactly one entry and serves the new
// body.
TEST(ResultCacheTest, ReplaceUpdatesInPlace) {
  ResultCache Cache;
  Cache.insert("k", "first");
  Cache.insert("k", "second");
  EXPECT_EQ(Cache.stats().Entries, 1u);
  ASSERT_TRUE(Cache.lookup("k").has_value());
  EXPECT_EQ(*Cache.lookup("k"), "second");
}

// Collision freedom by construction, checked differentially: canonical
// texts of every fuzz repro and 500 generated programs go into a
// single-shard cache (every key shares the one bucket table, the
// worst case for hash collisions), and each key must come back with
// its own body. Also pins canonicalization idempotence — parsing the
// canonical text and canonicalizing again is a fixpoint — since the
// canonical text *is* the cache identity.
TEST(ResultCacheTest, DistinctProgramsNeverAlias) {
  std::vector<std::string> Programs;
  std::string Dir = std::string(SRP_SOURCE_DIR) + "/fuzz-repros";
  if (DIR *D = ::opendir(Dir.c_str())) {
    std::vector<std::string> Names;
    while (dirent *E = ::readdir(D)) {
      std::string Name = E->d_name;
      if (Name.size() > 4 && Name.substr(Name.size() - 4) == ".sir")
        Names.push_back(Dir + "/" + Name);
    }
    ::closedir(D);
    std::sort(Names.begin(), Names.end());
    for (const std::string &Path : Names) {
      std::FILE *File = std::fopen(Path.c_str(), "rb");
      ASSERT_NE(File, nullptr) << Path;
      std::string Text;
      char Buf[4096];
      size_t N;
      while ((N = std::fread(Buf, 1, sizeof(Buf), File)) > 0)
        Text.append(Buf, N);
      std::fclose(File);
      Programs.push_back(std::move(Text));
    }
    EXPECT_GT(Programs.size(), 0u) << "no .sir repros under " << Dir;
  }
  for (uint64_t Seed = 0; Seed < 500; ++Seed)
    Programs.push_back(
        fuzz::generatedProgramText(/*ShapeSeed=*/Seed, /*ProgSeed=*/Seed));

  ResultCacheConfig Config;
  Config.Shards = 1; // every key in one bucket table: worst case
  ResultCache Cache(Config);
  std::map<std::string, std::string> Truth;
  std::set<uint64_t> Fingerprints;
  for (size_t I = 0; I < Programs.size(); ++I) {
    ir::Module M;
    std::string Error;
    ASSERT_TRUE(ir::parseModule(Programs[I], M, Error)) << Error;
    std::string Canonical = ir::canonicalModuleText(M);

    // Idempotence: canonical text is a fixpoint of parse+print.
    ir::Module M2;
    ASSERT_TRUE(ir::parseModule(Canonical, M2, Error)) << Error;
    EXPECT_EQ(ir::canonicalModuleText(M2), Canonical);

    Fingerprints.insert(ir::moduleFingerprint(M));
    std::string Body = formatString("body-%zu", I);
    auto [It, Inserted] = Truth.emplace(Canonical, Body);
    if (Inserted)
      Cache.insert(Canonical, Body);
  }
  // Every distinct canonical program must answer with its own body,
  // whatever its hash did.
  for (const auto &[Key, Body] : Truth) {
    std::optional<std::string> Got = Cache.lookup(Key);
    ASSERT_TRUE(Got.has_value());
    EXPECT_EQ(*Got, Body);
  }
  // Not a correctness requirement — collisions would be benign — but
  // FNV-1a over these canonical texts should in practice be injective;
  // a large dip would mean the fingerprint is broken (e.g. hashing only
  // a prefix).
  EXPECT_GT(Fingerprints.size(), Truth.size() - 3);
}

} // namespace
