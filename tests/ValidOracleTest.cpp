//===- ValidOracleTest.cpp - Differential oracle unit tests -----*- C++ -*-===//
//
// The oracle is only trustworthy if it (a) accepts correct pipelines and
// (b) notices deliberately broken ones. The negative tests here sabotage
// the promoted module through the Transform hook and assert the oracle
// reports the right MismatchKind — a regression that silences one of
// these checks would silently blind the whole fuzzing campaign.
//
//===----------------------------------------------------------------------===//

#include "valid/DiffOracle.h"

#include "ir/CFG.h"
#include "ir/Stmt.h"

#include <gtest/gtest.h>

using namespace srp;
using namespace srp::valid;

namespace {

/// A program whose final state, output, and speculation behaviour are all
/// interesting: `g` is redundantly loaded across a store through a
/// pointer the profile never sees aliasing it, so the ALAT config
/// promotes the second load into a checked reuse.
const char *SpecProgram = R"(
global g : int
global h : int
global p : int
global quiet : int
global untouched : int

func main() {
entry:
  t0 = addrof h
  st p = t0
  st quiet = 41
  st g = 3
  t1 = ld g
  st *p = 5
  t2 = ld g
  t3 = add t1, t2
  print t3
  ret
}
)";

OracleOptions optionsFor(const pre::PromotionConfig &Promotion) {
  OracleOptions Opts;
  Opts.Config = core::configFor(Promotion);
  Opts.Config.SpecVerify = core::SpecVerifyMode::Fatal;
  return Opts;
}

TEST(DiffOracle, CleanProgramPassesEveryStrategy) {
  for (const auto &Promotion :
       {pre::PromotionConfig::conservative(), pre::PromotionConfig::baselineO3(),
        pre::PromotionConfig::alat()}) {
    OracleReport R = runDiffOracleOnText(SpecProgram, optionsFor(Promotion));
    EXPECT_TRUE(R.Ok) << mismatchKindName(R.Kind) << ": " << R.Detail;
    EXPECT_EQ(R.Kind, MismatchKind::None);
  }
}

TEST(DiffOracle, AlatStrategyActuallySpeculates) {
  OracleReport R =
      runDiffOracleOnText(SpecProgram, optionsFor(pre::PromotionConfig::alat()));
  ASSERT_TRUE(R.Ok) << R.Detail;
  EXPECT_GT(R.Promotion.PromotedExprs, 0u)
      << "test program no longer triggers promotion; the negative tests "
         "below would be vacuous";
}

TEST(DiffOracle, BuilderEntryPoint) {
  OracleOptions Opts = optionsFor(pre::PromotionConfig::baselineO3());
  OracleReport R = runDiffOracle(
      [](ir::Module &M) {
        ir::Symbol *G = M.createGlobal("g", ir::TypeKind::Int);
        ir::Function *F = M.createFunction("main");
        ir::BasicBlock *BB = F->createBlock("entry");
        ir::Stmt St;
        St.Kind = ir::StmtKind::Store;
        St.Ref = ir::directRef(G);
        St.A = ir::Operand::constInt(9);
        BB->append(std::move(St));
        ir::Stmt Ld;
        Ld.Kind = ir::StmtKind::Load;
        Ld.Ref = ir::directRef(G);
        Ld.Dst = F->createTemp(ir::TypeKind::Int);
        unsigned T = Ld.Dst;
        BB->append(std::move(Ld));
        ir::Stmt Pr;
        Pr.Kind = ir::StmtKind::Print;
        Pr.A = ir::Operand::temp(T);
        BB->append(std::move(Pr));
        BB->term().Kind = ir::TermKind::Ret;
        F->recomputeCFG();
      },
      Opts);
  EXPECT_TRUE(R.Ok) << mismatchKindName(R.Kind) << ": " << R.Detail;
}

TEST(DiffOracle, ParseErrorReportsInvalidInput) {
  OracleReport R = runDiffOracleOnText(
      "global g : int\nfunc main() {\nentry:\n  t0 = frobnicate g\n  ret\n}\n",
      optionsFor(pre::PromotionConfig::conservative()));
  EXPECT_FALSE(R.Ok);
  EXPECT_EQ(R.Kind, MismatchKind::InvalidInput);
  EXPECT_NE(R.Detail.find("line"), std::string::npos) << R.Detail;
}

/// Erases the first store in main matching (base symbol name, depth).
std::string eraseStore(ir::Module &M, std::string_view Name, unsigned Depth) {
  ir::Function *Main = M.findFunction("main");
  if (!Main)
    return "no main";
  for (unsigned BI = 0; BI < Main->numBlocks(); ++BI) {
    ir::BasicBlock *BB = Main->block(BI);
    for (size_t SI = 0; SI < BB->size(); ++SI) {
      const ir::Stmt *S = BB->stmt(SI);
      if (S->isStore() && S->Ref.Base && S->Ref.Base->Name == Name &&
          S->Ref.Depth == Depth) {
        BB->erase(SI);
        return "";
      }
    }
  }
  return "store not found";
}

TEST(DiffOracle, DroppedStoreBehindPrintIsOutputDiverged) {
  // `p` may point at `a` or `b` (flow-insensitively), so promotion cannot
  // forward the `st *p` value into `ld b` — the load survives to the
  // interpreter, and deleting the store changes the printed value.
  static const char *TwoTarget = R"(
global a : int
global b : int
global p : int

func main() {
entry:
  t0 = addrof a
  st p = t0
  t1 = addrof b
  st p = t1
  st *p = 7
  t2 = ld b
  print t2
  ret
}
)";
  OracleOptions Opts = optionsFor(pre::PromotionConfig::conservative());
  Opts.Transform = [](ir::Module &M) { return eraseStore(M, "p", 1); };
  OracleReport R = runDiffOracleOnText(TwoTarget, Opts);
  EXPECT_FALSE(R.Ok);
  EXPECT_EQ(R.Kind, MismatchKind::OutputDiverged) << R.Detail;
}

TEST(DiffOracle, DroppedSilentStoreIsFinalStateDiverged) {
  // `quiet` is stored but never printed: only the final-memory sweep can
  // notice its store went missing.
  OracleOptions Opts = optionsFor(pre::PromotionConfig::conservative());
  Opts.Transform = [](ir::Module &M) { return eraseStore(M, "quiet", 0); };
  OracleReport R = runDiffOracleOnText(SpecProgram, Opts);
  EXPECT_FALSE(R.Ok);
  EXPECT_EQ(R.Kind, MismatchKind::FinalStateDiverged) << R.Detail;
}

TEST(DiffOracle, WildAdvancedLoadIsSpecLeak) {
  // An advanced load of a global the base run never touches must trip
  // the non-interference check even though it changes no visible value.
  OracleOptions Opts = optionsFor(pre::PromotionConfig::conservative());
  Opts.Transform = [](ir::Module &M) -> std::string {
    ir::Symbol *Untouched = nullptr;
    for (ir::Symbol *G : M.globals())
      if (G->Name == "untouched")
        Untouched = G;
    if (!Untouched)
      return "no untouched global";
    ir::Function *Main = M.findFunction("main");
    if (!Main)
      return "no main";
    ir::Stmt Ld;
    Ld.Kind = ir::StmtKind::Load;
    Ld.Ref = ir::directRef(Untouched);
    Ld.Flag = ir::SpecFlag::LdA;
    Ld.Dst = Main->createTemp(ir::TypeKind::Int);
    Main->entry()->insertBefore(0, std::move(Ld));
    return "";
  };
  OracleReport R = runDiffOracleOnText(SpecProgram, Opts);
  EXPECT_FALSE(R.Ok);
  EXPECT_EQ(R.Kind, MismatchKind::SpecLeak) << R.Detail;
}

TEST(DiffOracle, FaultPlansRunAndStayClean) {
  OracleOptions Opts = optionsFor(pre::PromotionConfig::alat());
  for (uint64_t Seed : {1ull, 2ull, 0xdeadbeefull})
    Opts.FaultPlans.push_back(arch::FaultPlan::fromSeed(Seed));
  OracleReport R = runDiffOracleOnText(SpecProgram, Opts);
  EXPECT_TRUE(R.Ok) << mismatchKindName(R.Kind) << ": " << R.Detail
                    << " [" << R.FaultContext << "]";
  EXPECT_EQ(R.FaultPlansRun, 3u);
}

TEST(FaultPlan, SeedsAreDeterministicAndZeroIsDisabled) {
  arch::FaultPlan A = arch::FaultPlan::fromSeed(12345);
  arch::FaultPlan B = arch::FaultPlan::fromSeed(12345);
  EXPECT_EQ(A.describe(), B.describe());
  EXPECT_TRUE(A.enabled());
  arch::FaultPlan C = arch::FaultPlan::fromSeed(54321);
  EXPECT_NE(A.describe(), C.describe());
  EXPECT_FALSE(arch::FaultPlan().enabled());
}

} // namespace
