//===- InterpreterTest.cpp - Tests for the IR interpreter --------*- C++ -*-===//

#include "interp/Interpreter.h"

#include "ir/IRBuilder.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

using namespace srp;
using namespace srp::ir;
using namespace srp::interp;

namespace {

RunResult runModule(Module &M, AliasProfile *AP = nullptr,
                    EdgeProfile *EP = nullptr, uint64_t Fuel = 1'000'000) {
  EXPECT_TRUE(verifyModule(M).empty());
  for (unsigned I = 0; I < M.numFunctions(); ++I)
    M.function(I)->recomputeCFG();
  Interpreter Interp(M);
  Interp.setAliasProfile(AP);
  Interp.setEdgeProfile(EP);
  return Interp.run(Fuel);
}

TEST(InterpreterTest, ArithmeticAndPrint) {
  Module M;
  IRBuilder B(M);
  B.startFunction("main");
  unsigned T0 = B.emitAssign(Opcode::Add, Operand::constInt(40),
                             Operand::constInt(2));
  unsigned T1 = B.emitAssign(Opcode::Mul, Operand::temp(T0),
                             Operand::constInt(-3));
  B.emitPrint(Operand::temp(T0));
  B.emitPrint(Operand::temp(T1));
  B.setRet(Operand::temp(T0));

  RunResult R = runModule(M);
  ASSERT_TRUE(R.Ok) << R.Error;
  ASSERT_EQ(R.Output.size(), 2u);
  EXPECT_EQ(R.Output[0], "42");
  EXPECT_EQ(R.Output[1], "-126");
  EXPECT_EQ(R.ExitValue, 42);
}

TEST(InterpreterTest, FloatArithmetic) {
  Module M;
  IRBuilder B(M);
  B.startFunction("main");
  unsigned T0 = B.emitAssign(Opcode::FAdd, Operand::constFloat(1.5),
                             Operand::constFloat(2.25));
  unsigned T1 = B.emitAssign(Opcode::FpToInt, Operand::temp(T0));
  B.emitPrint(Operand::temp(T0));
  B.emitPrint(Operand::temp(T1));
  B.setRet();

  RunResult R = runModule(M);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Output[0], "3.75");
  EXPECT_EQ(R.Output[1], "3");
}

TEST(InterpreterTest, DivisionByZeroIsDefined) {
  Module M;
  IRBuilder B(M);
  B.startFunction("main");
  unsigned T0 = B.emitAssign(Opcode::Div, Operand::constInt(7),
                             Operand::constInt(0));
  unsigned T1 = B.emitAssign(Opcode::Rem, Operand::constInt(7),
                             Operand::constInt(0));
  B.emitPrint(Operand::temp(T0));
  B.emitPrint(Operand::temp(T1));
  B.setRet();

  RunResult R = runModule(M);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Output[0], "0");
  EXPECT_EQ(R.Output[1], "0");
}

TEST(InterpreterTest, GlobalLoadStore) {
  Module M;
  Symbol *A = M.createGlobal("a", TypeKind::Int);
  IRBuilder B(M);
  B.startFunction("main");
  B.emitStore(directRef(A), Operand::constInt(17));
  unsigned T = B.emitLoad(directRef(A));
  B.emitPrint(Operand::temp(T));
  B.setRet();

  RunResult R = runModule(M);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Output[0], "17");
  EXPECT_EQ(R.StoresExecuted, 1u);
  EXPECT_EQ(R.LoadsExecuted, 1u);
}

TEST(InterpreterTest, UninitializedMemoryReadsZero) {
  Module M;
  Symbol *A = M.createGlobal("a", TypeKind::Int);
  IRBuilder B(M);
  B.startFunction("main");
  unsigned T = B.emitLoad(directRef(A));
  B.emitPrint(Operand::temp(T));
  B.setRet();
  RunResult R = runModule(M);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Output[0], "0");
}

TEST(InterpreterTest, ArrayIndexing) {
  Module M;
  Symbol *Arr = M.createGlobal("arr", TypeKind::Int, 10);
  IRBuilder B(M);
  B.startFunction("main");
  for (int I = 0; I < 10; ++I)
    B.emitStore(arrayRef(Arr, Operand::constInt(I)),
                Operand::constInt(I * I));
  unsigned T = B.emitLoad(arrayRef(Arr, Operand::constInt(7)));
  B.emitPrint(Operand::temp(T));
  B.setRet();
  RunResult R = runModule(M);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Output[0], "49");
}

TEST(InterpreterTest, PointerIndirection) {
  Module M;
  Symbol *A = M.createGlobal("a", TypeKind::Int);
  Symbol *P = M.createGlobal("p", TypeKind::Int);
  IRBuilder B(M);
  B.startFunction("main");
  unsigned TA = B.emitAddrOf(A);
  B.emitStore(directRef(P), Operand::temp(TA));
  B.emitStore(indirectRef(P, TypeKind::Int), Operand::constInt(55));
  unsigned T = B.emitLoad(directRef(A));
  B.emitPrint(Operand::temp(T));
  B.setRet();
  RunResult R = runModule(M);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Output[0], "55");
}

TEST(InterpreterTest, DoubleIndirection) {
  Module M;
  Symbol *A = M.createGlobal("a", TypeKind::Int);
  Symbol *P = M.createGlobal("p", TypeKind::Int);
  Symbol *Q = M.createGlobal("q", TypeKind::Int);
  IRBuilder B(M);
  B.startFunction("main");
  unsigned TA = B.emitAddrOf(A);
  B.emitStore(directRef(P), Operand::temp(TA));
  unsigned TP = B.emitAddrOf(P);
  B.emitStore(directRef(Q), Operand::temp(TP));
  B.emitStore(directRef(A), Operand::constInt(99));
  unsigned T = B.emitLoad(doubleIndirectRef(Q, TypeKind::Int));
  B.emitPrint(Operand::temp(T));
  B.setRet();
  RunResult R = runModule(M);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Output[0], "99");
}

TEST(InterpreterTest, LoopComputesSum) {
  Module M;
  Symbol *Sum = M.createGlobal("sum", TypeKind::Int);
  Symbol *I = M.createGlobal("i", TypeKind::Int);
  IRBuilder B(M);
  Function *F = B.startFunction("main");
  BasicBlock *Header = B.createBlock("header");
  BasicBlock *Body = B.createBlock("body");
  BasicBlock *Exit = B.createBlock("exit");

  B.emitStore(directRef(Sum), Operand::constInt(0));
  B.emitStore(directRef(I), Operand::constInt(0));
  B.setBr(Header);

  B.setBlock(Header);
  unsigned TI = B.emitLoad(directRef(I));
  unsigned TC = B.emitAssign(Opcode::CmpLt, Operand::temp(TI),
                             Operand::constInt(100));
  B.setCondBr(Operand::temp(TC), Body, Exit);

  B.setBlock(Body);
  unsigned TS = B.emitLoad(directRef(Sum));
  unsigned TI2 = B.emitLoad(directRef(I));
  unsigned TNew = B.emitAssign(Opcode::Add, Operand::temp(TS),
                               Operand::temp(TI2));
  B.emitStore(directRef(Sum), Operand::temp(TNew));
  unsigned TInc = B.emitAssign(Opcode::Add, Operand::temp(TI2),
                               Operand::constInt(1));
  B.emitStore(directRef(I), Operand::temp(TInc));
  B.setBr(Header);

  B.setBlock(Exit);
  unsigned TOut = B.emitLoad(directRef(Sum));
  B.emitPrint(Operand::temp(TOut));
  B.setRet();
  (void)F;

  RunResult R = runModule(M);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Output[0], "4950");
}

TEST(InterpreterTest, CallsAndRecursion) {
  Module M;
  IRBuilder B(M);
  // fib(n) = n < 2 ? n : fib(n-1) + fib(n-2)
  Function *Fib = B.startFunction("fib");
  Symbol *N = M.createLocal(Fib, "n", TypeKind::Int, 1, /*IsFormal=*/true);
  BasicBlock *Base = B.createBlock("base");
  BasicBlock *Rec = B.createBlock("rec");
  unsigned TN = B.emitLoad(directRef(N));
  unsigned TC = B.emitAssign(Opcode::CmpLt, Operand::temp(TN),
                             Operand::constInt(2));
  B.setCondBr(Operand::temp(TC), Base, Rec);
  B.setBlock(Base);
  unsigned TN2 = B.emitLoad(directRef(N));
  B.setRet(Operand::temp(TN2));
  B.setBlock(Rec);
  unsigned TN3 = B.emitLoad(directRef(N));
  unsigned TM1 = B.emitAssign(Opcode::Sub, Operand::temp(TN3),
                              Operand::constInt(1));
  unsigned TM2 = B.emitAssign(Opcode::Sub, Operand::temp(TN3),
                              Operand::constInt(2));
  unsigned TF1 = B.emitCall(Fib, {Operand::temp(TM1)});
  unsigned TF2 = B.emitCall(Fib, {Operand::temp(TM2)});
  unsigned TSum = B.emitAssign(Opcode::Add, Operand::temp(TF1),
                               Operand::temp(TF2));
  B.setRet(Operand::temp(TSum));

  B.startFunction("main");
  unsigned TR = B.emitCall(Fib, {Operand::constInt(12)});
  B.emitPrint(Operand::temp(TR));
  B.setRet();

  RunResult R = runModule(M);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Output[0], "144");
}

TEST(InterpreterTest, HeapAllocationAndLinkedList) {
  Module M;
  Symbol *Head = M.createGlobal("head", TypeKind::Int);
  Symbol *Cur = M.createGlobal("cur", TypeKind::Int);
  Symbol *I = M.createGlobal("i", TypeKind::Int);
  Symbol *Acc = M.createGlobal("acc", TypeKind::Int);
  IRBuilder B(M);
  B.startFunction("main");
  BasicBlock *BuildHdr = B.createBlock("build_hdr");
  BasicBlock *BuildBody = B.createBlock("build_body");
  BasicBlock *WalkHdr = B.createBlock("walk_hdr");
  BasicBlock *WalkBody = B.createBlock("walk_body");
  BasicBlock *Done = B.createBlock("done");

  // Build 5 nodes, each {value, next}; prepend to head.
  B.emitStore(directRef(Head), Operand::constInt(0));
  B.emitStore(directRef(I), Operand::constInt(0));
  B.setBr(BuildHdr);

  B.setBlock(BuildHdr);
  unsigned TI = B.emitLoad(directRef(I));
  unsigned TC = B.emitAssign(Opcode::CmpLt, Operand::temp(TI),
                             Operand::constInt(5));
  B.setCondBr(Operand::temp(TC), BuildBody, WalkHdr);

  B.setBlock(BuildBody);
  unsigned TNode = B.emitAlloc(Operand::constInt(2), "node");
  unsigned TI2 = B.emitLoad(directRef(I));
  // node->value = i * 10
  unsigned TV = B.emitAssign(Opcode::Mul, Operand::temp(TI2),
                             Operand::constInt(10));
  B.emitStore(directRef(Cur), Operand::temp(TNode));
  B.emitStore(indirectRef(Cur, TypeKind::Int, /*Offset=*/0),
              Operand::temp(TV));
  unsigned THead = B.emitLoad(directRef(Head));
  B.emitStore(indirectRef(Cur, TypeKind::Int, /*Offset=*/8),
              Operand::temp(THead));
  B.emitStore(directRef(Head), Operand::temp(TNode));
  unsigned TInc = B.emitAssign(Opcode::Add, Operand::temp(TI2),
                               Operand::constInt(1));
  B.emitStore(directRef(I), Operand::temp(TInc));
  B.setBr(BuildHdr);

  // Walk the list summing values.
  B.setBlock(WalkHdr);
  unsigned THd = B.emitLoad(directRef(Head));
  B.emitStore(directRef(Cur), Operand::temp(THd));
  B.emitStore(directRef(Acc), Operand::constInt(0));
  B.setBr(WalkBody);

  B.setBlock(WalkBody);
  unsigned TCur = B.emitLoad(directRef(Cur));
  unsigned TNZ = B.emitAssign(Opcode::CmpNe, Operand::temp(TCur),
                              Operand::constInt(0));
  BasicBlock *WalkStep = B.createBlock("walk_step");
  B.setCondBr(Operand::temp(TNZ), WalkStep, Done);

  B.setBlock(WalkStep);
  unsigned TVal = B.emitLoad(indirectRef(Cur, TypeKind::Int, 0));
  unsigned TAcc = B.emitLoad(directRef(Acc));
  unsigned TSum = B.emitAssign(Opcode::Add, Operand::temp(TAcc),
                               Operand::temp(TVal));
  B.emitStore(directRef(Acc), Operand::temp(TSum));
  unsigned TNext = B.emitLoad(indirectRef(Cur, TypeKind::Int, 8));
  B.emitStore(directRef(Cur), Operand::temp(TNext));
  B.setBr(WalkBody);

  B.setBlock(Done);
  unsigned TOut = B.emitLoad(directRef(Acc));
  B.emitPrint(Operand::temp(TOut));
  B.setRet();

  RunResult R = runModule(M);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Output[0], "100"); // 0+10+20+30+40
}

TEST(InterpreterTest, FuelExhaustionTraps) {
  Module M;
  IRBuilder B(M);
  B.startFunction("main");
  BasicBlock *Loop = B.createBlock("loop");
  B.setBr(Loop);
  B.setBlock(Loop);
  B.emitAssign(Opcode::Add, Operand::constInt(1), Operand::constInt(1));
  B.setBr(Loop);

  RunResult R = runModule(M, nullptr, nullptr, /*Fuel=*/1000);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("fuel"), std::string::npos);
}

TEST(InterpreterTest, AliasProfileRecordsIndirectTargets) {
  Module M;
  Symbol *A = M.createGlobal("a", TypeKind::Int);
  Symbol *C = M.createGlobal("c", TypeKind::Int);
  Symbol *P = M.createGlobal("p", TypeKind::Int);
  IRBuilder B(M);
  Function *F = B.startFunction("main");
  unsigned TA = B.emitAddrOf(A);
  B.emitStore(directRef(P), Operand::temp(TA));
  Stmt StoreStar;
  StoreStar.Kind = StmtKind::Store;
  StoreStar.Ref = indirectRef(P, TypeKind::Int);
  StoreStar.A = Operand::constInt(5);
  Stmt *S = B.block()->append(StoreStar);
  B.setRet();

  AliasProfile AP;
  RunResult R = runModule(M, &AP);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_TRUE(AP.siteExecuted(F, S->Id));
  EXPECT_TRUE(AP.observed(F, S->Id, 1, A));
  EXPECT_FALSE(AP.observed(F, S->Id, 1, C));
  const std::set<unsigned> *Targets = AP.targets(F, S->Id, 1);
  ASSERT_NE(Targets, nullptr);
  EXPECT_EQ(Targets->size(), 1u);
}

TEST(InterpreterTest, AliasProfileHeapTargetsUseSiteNames) {
  Module M;
  Symbol *P = M.createGlobal("p", TypeKind::Int);
  IRBuilder B(M);
  Function *F = B.startFunction("main");
  unsigned T = B.emitAlloc(Operand::constInt(2), "mysite");
  B.emitStore(directRef(P), Operand::temp(T));
  Stmt LoadStar;
  LoadStar.Kind = StmtKind::Load;
  LoadStar.Ref = indirectRef(P, TypeKind::Int);
  LoadStar.Dst = F->createTemp(TypeKind::Int);
  Stmt *S = B.block()->append(LoadStar);
  B.setRet();

  AliasProfile AP;
  RunResult R = runModule(M, &AP);
  ASSERT_TRUE(R.Ok) << R.Error;
  const Symbol *Site = M.heapSites()[0];
  EXPECT_TRUE(AP.observed(F, S->Id, 1, Site));
}

TEST(InterpreterTest, EdgeProfileCountsLoopIterations) {
  Module M;
  Symbol *I = M.createGlobal("i", TypeKind::Int);
  IRBuilder B(M);
  Function *F = B.startFunction("main");
  BasicBlock *Hdr = B.createBlock("hdr");
  BasicBlock *Body = B.createBlock("body");
  BasicBlock *Exit = B.createBlock("exit");
  B.emitStore(directRef(I), Operand::constInt(0));
  B.setBr(Hdr);
  B.setBlock(Hdr);
  unsigned TI = B.emitLoad(directRef(I));
  unsigned TC = B.emitAssign(Opcode::CmpLt, Operand::temp(TI),
                             Operand::constInt(10));
  B.setCondBr(Operand::temp(TC), Body, Exit);
  B.setBlock(Body);
  unsigned TI2 = B.emitLoad(directRef(I));
  unsigned TInc = B.emitAssign(Opcode::Add, Operand::temp(TI2),
                               Operand::constInt(1));
  B.emitStore(directRef(I), Operand::temp(TInc));
  B.setBr(Hdr);
  B.setBlock(Exit);
  B.setRet();
  (void)F;

  EdgeProfile EP;
  RunResult R = runModule(M, nullptr, &EP);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(EP.blockCount(Hdr), 11u);
  EXPECT_EQ(EP.blockCount(Body), 10u);
  EXPECT_EQ(EP.edgeCount(Hdr, Body), 10u);
  EXPECT_EQ(EP.edgeCount(Hdr, Exit), 1u);
}

TEST(InterpreterTest, LocalsAreFreshPerActivation) {
  Module M;
  IRBuilder B(M);
  // leaf(x): l = x; return l  -- recursion must not smash outer l.
  Function *Leaf = B.startFunction("leaf");
  Symbol *X = M.createLocal(Leaf, "x", TypeKind::Int, 1, /*IsFormal=*/true);
  Symbol *L = M.createLocal(Leaf, "l", TypeKind::Int);
  BasicBlock *RecBB = B.createBlock("rec");
  BasicBlock *Out = B.createBlock("out");
  unsigned TX = B.emitLoad(directRef(X));
  B.emitStore(directRef(L), Operand::temp(TX));
  unsigned TPos = B.emitAssign(Opcode::CmpLt, Operand::constInt(0),
                               Operand::temp(TX));
  B.setCondBr(Operand::temp(TPos), RecBB, Out);
  B.setBlock(RecBB);
  unsigned TDec = B.emitAssign(Opcode::Sub, Operand::temp(TX),
                               Operand::constInt(1));
  B.emitCall(Leaf, {Operand::temp(TDec)});
  B.setBr(Out);
  B.setBlock(Out);
  unsigned TL = B.emitLoad(directRef(L));
  B.setRet(Operand::temp(TL));

  B.startFunction("main");
  unsigned TR = B.emitCall(Leaf, {Operand::constInt(5)});
  B.emitPrint(Operand::temp(TR));
  B.setRet();

  RunResult R = runModule(M);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Output[0], "5");
}

TEST(InterpreterTest, SelectOperator) {
  Module M;
  IRBuilder B(M);
  B.startFunction("main");
  unsigned T0 = B.emitSelect(Operand::constInt(1), Operand::constInt(10),
                             Operand::constInt(20));
  unsigned T1 = B.emitSelect(Operand::constInt(0), Operand::constInt(10),
                             Operand::constInt(20));
  B.emitPrint(Operand::temp(T0));
  B.emitPrint(Operand::temp(T1));
  B.setRet();
  RunResult R = runModule(M);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Output[0], "10");
  EXPECT_EQ(R.Output[1], "20");
}

} // namespace
