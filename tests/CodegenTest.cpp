//===- CodegenTest.cpp - Lowering, regalloc and simulator tests --*- C++ -*-===//

#include "arch/Simulator.h"
#include "codegen/Lowering.h"
#include "codegen/RegAlloc.h"

#include "alias/AliasAnalysis.h"
#include "interp/Interpreter.h"
#include "ir/IRBuilder.h"
#include "ir/Verifier.h"
#include "pre/Promoter.h"

#include <gtest/gtest.h>

using namespace srp;
using namespace srp::ir;
using namespace srp::codegen;
using namespace srp::arch;

namespace {

interp::RunResult interpret(Module &M) {
  for (unsigned I = 0; I < M.numFunctions(); ++I)
    M.function(I)->recomputeCFG();
  interp::Interpreter I(M);
  return I.run();
}

SimResult compileAndRun(Module &M,
                        const RegAllocOptions &RA = RegAllocOptions(),
                        const SimConfig &SC = SimConfig()) {
  EXPECT_TRUE(verifyModule(M).empty());
  for (unsigned I = 0; I < M.numFunctions(); ++I)
    M.function(I)->recomputeCFG();
  auto MM = lowerModule(M);
  allocateRegisters(*MM, RA);
  return simulate(*MM, SC);
}

/// Differential harness: simulated output must equal interpreted output.
SimResult checkAgainstInterpreter(Module &M) {
  interp::RunResult Ref = interpret(M);
  EXPECT_TRUE(Ref.Ok) << Ref.Error;
  SimResult Sim = compileAndRun(M);
  EXPECT_TRUE(Sim.Ok) << Sim.Error;
  EXPECT_EQ(Sim.Output, Ref.Output);
  return Sim;
}

TEST(CodegenTest, ArithmeticProgram) {
  Module M;
  IRBuilder B(M);
  B.startFunction("main");
  unsigned T0 = B.emitAssign(Opcode::Add, Operand::constInt(40),
                             Operand::constInt(2));
  unsigned T1 = B.emitAssign(Opcode::Mul, Operand::temp(T0),
                             Operand::constInt(-3));
  unsigned T2 = B.emitAssign(Opcode::Div, Operand::temp(T1),
                             Operand::constInt(5));
  unsigned T3 = B.emitAssign(Opcode::Rem, Operand::temp(T1),
                             Operand::constInt(0)); // defined: 0
  B.emitPrint(Operand::temp(T0));
  B.emitPrint(Operand::temp(T1));
  B.emitPrint(Operand::temp(T2));
  B.emitPrint(Operand::temp(T3));
  B.setRet();
  checkAgainstInterpreter(M);
}

TEST(CodegenTest, FloatProgram) {
  Module M;
  IRBuilder B(M);
  B.startFunction("main");
  unsigned T0 = B.emitAssign(Opcode::FAdd, Operand::constFloat(1.5),
                             Operand::constFloat(2.25));
  unsigned T1 = B.emitAssign(Opcode::FMul, Operand::temp(T0),
                             Operand::constFloat(-2.0));
  unsigned T2 = B.emitAssign(Opcode::FpToInt, Operand::temp(T1));
  unsigned T3 = B.emitAssign(Opcode::IntToFp, Operand::temp(T2));
  B.emitPrint(Operand::temp(T0));
  B.emitPrint(Operand::temp(T1));
  B.emitPrint(Operand::temp(T2));
  B.emitPrint(Operand::temp(T3));
  B.setRet();
  checkAgainstInterpreter(M);
}

TEST(CodegenTest, GlobalsArraysAndPointers) {
  Module M;
  Symbol *Arr = M.createGlobal("arr", TypeKind::Int, 16);
  Symbol *P = M.createGlobal("p", TypeKind::Int);
  IRBuilder B(M);
  B.startFunction("main");
  for (int I = 0; I < 16; ++I)
    B.emitStore(arrayRef(Arr, Operand::constInt(I)),
                Operand::constInt(I * 3));
  unsigned TI = B.emitAssign(Opcode::Copy, Operand::constInt(5));
  unsigned T1 = B.emitLoad(arrayRef(Arr, Operand::temp(TI)));
  unsigned TAddr = B.emitAddrOf(Arr, Operand::constInt(7));
  B.emitStore(directRef(P), Operand::temp(TAddr));
  unsigned T2 = B.emitLoad(indirectRef(P, TypeKind::Int));
  B.emitPrint(Operand::temp(T1));
  B.emitPrint(Operand::temp(T2));
  B.setRet();
  SimResult R = checkAgainstInterpreter(M);
  EXPECT_EQ(R.Output[0], "15");
  EXPECT_EQ(R.Output[1], "21");
}

TEST(CodegenTest, ControlFlowLoop) {
  Module M;
  Symbol *Sum = M.createGlobal("sum", TypeKind::Int);
  Symbol *I = M.createGlobal("i", TypeKind::Int);
  IRBuilder B(M);
  B.startFunction("main");
  BasicBlock *Hdr = B.createBlock("hdr");
  BasicBlock *Body = B.createBlock("body");
  BasicBlock *Exit = B.createBlock("exit");
  B.emitStore(directRef(I), Operand::constInt(0));
  B.setBr(Hdr);
  B.setBlock(Hdr);
  unsigned TI = B.emitLoad(directRef(I));
  unsigned TC = B.emitAssign(Opcode::CmpLt, Operand::temp(TI),
                             Operand::constInt(100));
  B.setCondBr(Operand::temp(TC), Body, Exit);
  B.setBlock(Body);
  unsigned TS = B.emitLoad(directRef(Sum));
  unsigned TN = B.emitAssign(Opcode::Add, Operand::temp(TS),
                             Operand::temp(TI));
  B.emitStore(directRef(Sum), Operand::temp(TN));
  unsigned TInc = B.emitAssign(Opcode::Add, Operand::temp(TI),
                               Operand::constInt(1));
  B.emitStore(directRef(I), Operand::temp(TInc));
  B.setBr(Hdr);
  B.setBlock(Exit);
  unsigned TOut = B.emitLoad(directRef(Sum));
  B.emitPrint(Operand::temp(TOut));
  B.setRet();
  SimResult R = checkAgainstInterpreter(M);
  EXPECT_EQ(R.Output[0], "4950");
  EXPECT_GT(R.Counters.Cycles, 0u);
  EXPECT_GT(R.Counters.RetiredLoads, 0u);
}

TEST(CodegenTest, CallsAndRecursion) {
  Module M;
  IRBuilder B(M);
  Function *Fib = B.startFunction("fib");
  Symbol *N = M.createLocal(Fib, "n", TypeKind::Int, 1, /*IsFormal=*/true);
  BasicBlock *Base = B.createBlock("base");
  BasicBlock *Rec = B.createBlock("rec");
  unsigned TN = B.emitLoad(directRef(N));
  unsigned TC = B.emitAssign(Opcode::CmpLt, Operand::temp(TN),
                             Operand::constInt(2));
  B.setCondBr(Operand::temp(TC), Base, Rec);
  B.setBlock(Base);
  unsigned TN2 = B.emitLoad(directRef(N));
  B.setRet(Operand::temp(TN2));
  B.setBlock(Rec);
  unsigned TN3 = B.emitLoad(directRef(N));
  unsigned TM1 = B.emitAssign(Opcode::Sub, Operand::temp(TN3),
                              Operand::constInt(1));
  unsigned TM2 = B.emitAssign(Opcode::Sub, Operand::temp(TN3),
                              Operand::constInt(2));
  unsigned TF1 = B.emitCall(Fib, {Operand::temp(TM1)});
  unsigned TF2 = B.emitCall(Fib, {Operand::temp(TM2)});
  unsigned TSum = B.emitAssign(Opcode::Add, Operand::temp(TF1),
                               Operand::temp(TF2));
  B.setRet(Operand::temp(TSum));

  B.startFunction("main");
  unsigned TR = B.emitCall(Fib, {Operand::constInt(12)});
  B.emitPrint(Operand::temp(TR));
  B.setRet(Operand::temp(TR));

  SimResult R = checkAgainstInterpreter(M);
  EXPECT_EQ(R.Output[0], "144");
  EXPECT_EQ(R.ExitValue, 144);
}

TEST(CodegenTest, HeapAllocation) {
  Module M;
  Symbol *P = M.createGlobal("p", TypeKind::Int);
  IRBuilder B(M);
  B.startFunction("main");
  unsigned T = B.emitAlloc(Operand::constInt(4), "blk");
  B.emitStore(directRef(P), Operand::temp(T));
  B.emitStore(indirectRef(P, TypeKind::Int, 16), Operand::constInt(77));
  unsigned TV = B.emitLoad(indirectRef(P, TypeKind::Int, 16));
  B.emitPrint(Operand::temp(TV));
  B.setRet();
  SimResult R = checkAgainstInterpreter(M);
  EXPECT_EQ(R.Output[0], "77");
}

TEST(CodegenTest, SelectLowering) {
  Module M;
  IRBuilder B(M);
  B.startFunction("main");
  unsigned T0 = B.emitSelect(Operand::constInt(1), Operand::constInt(10),
                             Operand::constInt(20));
  unsigned T1 = B.emitSelect(Operand::constInt(0), Operand::constInt(10),
                             Operand::constInt(20));
  B.emitPrint(Operand::temp(T0));
  B.emitPrint(Operand::temp(T1));
  B.setRet();
  SimResult R = checkAgainstInterpreter(M);
  EXPECT_EQ(R.Output[0], "10");
  EXPECT_EQ(R.Output[1], "20");
}

TEST(CodegenTest, SpillsUnderTinyRegisterPool) {
  // Force spilling with a 4-register pool: many simultaneously live temps.
  Module M;
  IRBuilder B(M);
  B.startFunction("main");
  std::vector<unsigned> Temps;
  for (int I = 0; I < 12; ++I)
    Temps.push_back(
        B.emitAssign(Opcode::Add, Operand::constInt(I),
                     Operand::constInt(I * 7)));
  Operand Acc = Operand::temp(Temps[0]);
  for (int I = 1; I < 12; ++I) {
    unsigned T = B.emitAssign(Opcode::Add, Acc, Operand::temp(Temps[I]));
    Acc = Operand::temp(T);
  }
  B.emitPrint(Acc);
  B.setRet();

  interp::RunResult Ref = interpret(M);
  RegAllocOptions RA;
  RA.IntPoolSize = 4;
  SimResult Sim = compileAndRun(M, RA);
  ASSERT_TRUE(Sim.Ok) << Sim.Error;
  EXPECT_EQ(Sim.Output, Ref.Output);
}

//===----------------------------------------------------------------------===//
// Promoted code through the whole backend
//===----------------------------------------------------------------------===//

/// Full pipeline fixture: profile, promote with ALAT, lower, simulate, and
/// compare against the interpreter running the *original* module.
struct EndToEnd {
  static SimResult run(Module &M, pre::PromotionConfig Config,
                       std::vector<std::string> &RefOutput) {
    interp::RunResult Ref = interpret(M);
    EXPECT_TRUE(Ref.Ok) << Ref.Error;
    RefOutput = Ref.Output;

    interp::AliasProfile AP;
    interp::EdgeProfile EP;
    interp::Interpreter Train(M);
    Train.setAliasProfile(&AP);
    Train.setEdgeProfile(&EP);
    EXPECT_TRUE(Train.run().Ok);

    alias::SteensgaardAnalysis AA(M);
    pre::promoteModule(M, AA, &AP, &EP, Config);
    EXPECT_TRUE(verifyModule(M).empty());

    auto MM = lowerModule(M);
    allocateRegisters(*MM);
    return simulate(*MM, SimConfig());
  }
};

TEST(CodegenTest, PromotedSpeculativeCodeRunsCorrectly) {
  Module M;
  Symbol *A = M.createGlobal("a", TypeKind::Int);
  Symbol *B2 = M.createGlobal("b", TypeKind::Int);
  Symbol *P = M.createGlobal("p", TypeKind::Int);
  IRBuilder B(M);
  B.startFunction("main");
  unsigned TA = B.emitAddrOf(A);
  unsigned TB = B.emitAddrOf(B2);
  B.emitStore(directRef(P), Operand::temp(TA));
  B.emitStore(directRef(P), Operand::temp(TB)); // runtime p=&b
  B.emitStore(directRef(A), Operand::constInt(7));
  unsigned T1 = B.emitLoad(directRef(A));
  B.emitStore(indirectRef(P, TypeKind::Int), Operand::constInt(99));
  unsigned T2 = B.emitLoad(directRef(A));
  B.emitPrint(Operand::temp(T1));
  B.emitPrint(Operand::temp(T2));
  B.setRet();

  std::vector<std::string> Ref;
  SimResult Sim = EndToEnd::run(M, pre::PromotionConfig::alat(), Ref);
  ASSERT_TRUE(Sim.Ok) << Sim.Error;
  EXPECT_EQ(Sim.Output, Ref);
  EXPECT_GE(Sim.Counters.AlatChecks, 1u);
  EXPECT_EQ(Sim.Counters.AlatCheckFailures, 0u)
      << "p=&b at run time: the check must hit";
  EXPECT_GE(Sim.Alat.Allocations, 1u);
}

TEST(CodegenTest, PromotedLoopHoistRunsCorrectly) {
  Module M;
  Symbol *A = M.createGlobal("a", TypeKind::Int);
  Symbol *C = M.createGlobal("c", TypeKind::Int);
  Symbol *P = M.createGlobal("p", TypeKind::Int);
  Symbol *Q = M.createGlobal("q", TypeKind::Int);
  Symbol *I = M.createGlobal("i", TypeKind::Int);
  IRBuilder B(M);
  B.startFunction("main");
  BasicBlock *Hdr = B.createBlock("hdr");
  BasicBlock *Body = B.createBlock("body");
  BasicBlock *Exit = B.createBlock("exit");
  unsigned TA = B.emitAddrOf(A);
  unsigned TC = B.emitAddrOf(C);
  B.emitStore(directRef(P), Operand::temp(TC));
  B.emitStore(directRef(Q), Operand::temp(TA));
  B.emitStore(directRef(P), Operand::temp(TA));
  B.emitStore(directRef(Q), Operand::temp(TC));
  B.emitStore(directRef(A), Operand::constInt(500));
  B.emitStore(directRef(I), Operand::constInt(0));
  B.setBr(Hdr);
  B.setBlock(Hdr);
  unsigned TI = B.emitLoad(directRef(I));
  unsigned TCmp = B.emitAssign(Opcode::CmpLt, Operand::temp(TI),
                               Operand::constInt(40));
  B.setCondBr(Operand::temp(TCmp), Body, Exit);
  B.setBlock(Body);
  B.emitStore(indirectRef(Q, TypeKind::Int), Operand::temp(TI));
  unsigned TP = B.emitLoad(indirectRef(P, TypeKind::Int));
  unsigned TAdd = B.emitAssign(Opcode::Add, Operand::temp(TP),
                               Operand::temp(TI));
  B.emitPrint(Operand::temp(TAdd));
  unsigned TInc = B.emitAssign(Opcode::Add, Operand::temp(TI),
                               Operand::constInt(1));
  B.emitStore(directRef(I), Operand::temp(TInc));
  B.setBr(Hdr);
  B.setBlock(Exit);
  B.setRet();

  std::vector<std::string> Ref;
  SimResult Sim = EndToEnd::run(M, pre::PromotionConfig::alat(), Ref);
  ASSERT_TRUE(Sim.Ok) << Sim.Error;
  EXPECT_EQ(Sim.Output, Ref);
  // The hoisted load + per-iteration checks: all checks hit (no alias).
  EXPECT_GE(Sim.Counters.AlatChecks, 40u);
  EXPECT_EQ(Sim.Counters.AlatCheckFailures, 0u);
}

TEST(CodegenTest, MisSpeculatingCheckReloads) {
  // Train path p=&b, then run with p=&a: every check must fail and
  // reload, and output must still match the interpreter on the new input.
  Module M;
  Symbol *Mode = M.createGlobal("mode", TypeKind::Int);
  Symbol *A = M.createGlobal("a", TypeKind::Int);
  Symbol *B2 = M.createGlobal("b", TypeKind::Int);
  Symbol *P = M.createGlobal("p", TypeKind::Int);
  IRBuilder B(M);
  B.startFunction("main");
  BasicBlock *SetB = B.createBlock("set_b");
  BasicBlock *SetA = B.createBlock("set_a");
  BasicBlock *Body = B.createBlock("body");
  unsigned TMode = B.emitLoad(directRef(Mode));
  B.setCondBr(Operand::temp(TMode), SetA, SetB);
  B.setBlock(SetB);
  unsigned TB = B.emitAddrOf(B2);
  B.emitStore(directRef(P), Operand::temp(TB));
  B.setBr(Body);
  B.setBlock(SetA);
  unsigned TA = B.emitAddrOf(A);
  B.emitStore(directRef(P), Operand::temp(TA));
  B.setBr(Body);
  B.setBlock(Body);
  B.emitStore(directRef(A), Operand::constInt(7));
  unsigned T1 = B.emitLoad(directRef(A));
  B.emitStore(indirectRef(P, TypeKind::Int), Operand::constInt(99));
  unsigned T2 = B.emitLoad(directRef(A));
  B.emitPrint(Operand::temp(T1));
  B.emitPrint(Operand::temp(T2));
  B.setRet();

  // Train with mode = 0.
  for (unsigned I = 0; I < M.numFunctions(); ++I)
    M.function(I)->recomputeCFG();
  interp::AliasProfile AP;
  interp::Interpreter Train(M);
  Train.setAliasProfile(&AP);
  ASSERT_TRUE(Train.run().Ok);
  alias::SteensgaardAnalysis AA(M);
  pre::promoteModule(M, AA, &AP, nullptr, pre::PromotionConfig::alat());
  ASSERT_TRUE(verifyModule(M).empty());

  // Flip to the colliding input.
  Function *Main = M.findFunction("main");
  Stmt SetMode;
  SetMode.Kind = StmtKind::Store;
  SetMode.Ref = directRef(Mode);
  SetMode.A = Operand::constInt(1);
  Main->entry()->insertBefore(0, SetMode);
  Main->recomputeCFG();

  interp::RunResult Ref = interpret(M);
  ASSERT_TRUE(Ref.Ok);
  auto MM = lowerModule(M);
  allocateRegisters(*MM);
  SimResult Sim = simulate(*MM, SimConfig());
  ASSERT_TRUE(Sim.Ok) << Sim.Error;
  EXPECT_EQ(Sim.Output, Ref.Output);
  ASSERT_EQ(Sim.Output.size(), 2u);
  EXPECT_EQ(Sim.Output[1], "99");
  EXPECT_GE(Sim.Counters.AlatCheckFailures, 1u);
}

//===----------------------------------------------------------------------===//
// Timing-model sanity
//===----------------------------------------------------------------------===//

TEST(CodegenTest, FpLoadsCostMoreThanIntLoads) {
  auto Build = [](Module &M, TypeKind Ty) {
    Symbol *Arr = M.createGlobal("arr", Ty, 64);
    Symbol *I = M.createGlobal("i", TypeKind::Int);
    Symbol *SumF = M.createGlobal("sumslot", Ty);
    IRBuilder B(M);
    B.startFunction("main");
    BasicBlock *Hdr = B.createBlock("hdr");
    BasicBlock *Body = B.createBlock("body");
    BasicBlock *Exit = B.createBlock("exit");
    B.emitStore(directRef(I), Operand::constInt(0));
    B.setBr(Hdr);
    B.setBlock(Hdr);
    unsigned TI = B.emitLoad(directRef(I));
    unsigned TC = B.emitAssign(Opcode::CmpLt, Operand::temp(TI),
                               Operand::constInt(2000));
    B.setCondBr(Operand::temp(TC), Body, Exit);
    B.setBlock(Body);
    unsigned TIdx = B.emitAssign(Opcode::Rem, Operand::temp(TI),
                                 Operand::constInt(64));
    unsigned TV = B.emitLoad(arrayRef(Arr, Operand::temp(TIdx)));
    B.emitStore(directRef(SumF), Operand::temp(TV));
    unsigned TInc = B.emitAssign(Opcode::Add, Operand::temp(TI),
                                 Operand::constInt(1));
    B.emitStore(directRef(I), Operand::temp(TInc));
    B.setBr(Hdr);
    B.setBlock(Exit);
    B.setRet();
  };
  Module MInt, MFp;
  Build(MInt, TypeKind::Int);
  Build(MFp, TypeKind::Float);
  SimResult RInt = compileAndRun(MInt);
  SimResult RFp = compileAndRun(MFp);
  ASSERT_TRUE(RInt.Ok && RFp.Ok);
  // FP loads bypass L1 (9 cycles vs 2): more total cycles.
  EXPECT_GT(RFp.Counters.Cycles, RInt.Counters.Cycles);
}

TEST(CodegenTest, RseCyclesAppearOnDeepCallChains) {
  // A recursive chain deep enough to overflow 96 stacked registers.
  Module M;
  IRBuilder B(M);
  Function *Deep = B.startFunction("deep");
  Symbol *N = M.createLocal(Deep, "n", TypeKind::Int, 1, /*IsFormal=*/true);
  BasicBlock *Base = B.createBlock("base");
  BasicBlock *Rec = B.createBlock("rec");
  unsigned TN = B.emitLoad(directRef(N));
  // Keep several registers live across the call to fatten the frame.
  unsigned T1 = B.emitAssign(Opcode::Add, Operand::temp(TN),
                             Operand::constInt(1));
  unsigned T2 = B.emitAssign(Opcode::Mul, Operand::temp(TN),
                             Operand::constInt(3));
  unsigned T3 = B.emitAssign(Opcode::Xor, Operand::temp(T1),
                             Operand::temp(T2));
  unsigned TC = B.emitAssign(Opcode::CmpLt, Operand::constInt(0),
                             Operand::temp(TN));
  B.setCondBr(Operand::temp(TC), Rec, Base);
  B.setBlock(Base);
  B.setRet(Operand::temp(T3));
  B.setBlock(Rec);
  unsigned TDec = B.emitAssign(Opcode::Sub, Operand::temp(TN),
                               Operand::constInt(1));
  unsigned TR = B.emitCall(Deep, {Operand::temp(TDec)});
  unsigned TMix = B.emitAssign(Opcode::Add, Operand::temp(TR),
                               Operand::temp(T3));
  B.setRet(Operand::temp(TMix));

  B.startFunction("main");
  unsigned TOut = B.emitCall(Deep, {Operand::constInt(40)});
  B.emitPrint(Operand::temp(TOut));
  B.setRet();

  SimResult R = checkAgainstInterpreter(M);
  EXPECT_GT(R.Counters.RseCycles, 0u) << "deep chain must spill the RSE";
  EXPECT_GT(R.Counters.RseSpills, 0u);
  // Fills can lag spills: registers of the outermost frames may remain in
  // the backing store when the program exits.
  EXPECT_LE(R.Counters.RseFills, R.Counters.RseSpills);
  EXPECT_GT(R.Counters.RseFills, 0u);
}

//===----------------------------------------------------------------------===//
// ALAT unit behaviour
//===----------------------------------------------------------------------===//

TEST(AlatTest, AllocateCheckInvalidate) {
  Alat T(AlatConfig{});
  T.allocate(40, 0x1000);
  EXPECT_TRUE(T.checkRegister(40));
  EXPECT_TRUE(T.check(40, 0x1000, /*Clear=*/false));
  EXPECT_TRUE(T.check(40, 0x1000, /*Clear=*/true));
  EXPECT_FALSE(T.check(40, 0x1000, false)) << ".clr removed the entry";
}

TEST(AlatTest, StoreInvalidatesMatchingEntry) {
  Alat T(AlatConfig{});
  T.allocate(40, 0x1000);
  T.allocate(41, 0x2000);
  T.storeNotify(0x1000);
  EXPECT_FALSE(T.checkRegister(40));
  EXPECT_TRUE(T.checkRegister(41));
  EXPECT_EQ(T.stats().Invalidations, 1u);
}

TEST(AlatTest, PartialTagsCauseFalseCollisions) {
  AlatConfig C;
  C.PartialTagBits = 8; // only low 8 bits compared
  Alat T(C);
  T.allocate(40, 0x1010);
  T.storeNotify(0x2010); // different address, same low bits
  EXPECT_FALSE(T.checkRegister(40));
  EXPECT_EQ(T.stats().FalseInvalidations, 1u);
}

TEST(AlatTest, CheckRequiresAddressMatch) {
  Alat T(AlatConfig{});
  T.allocate(40, 0x1000);
  EXPECT_FALSE(T.check(40, 0x1008, false))
      << "stale entries with the wrong address must miss";
}

TEST(AlatTest, CapacityEviction) {
  AlatConfig C;
  C.Entries = 4;
  C.Ways = 2; // two sets
  Alat T(C);
  // Registers 0, 2, 4 land in set 0; the third allocation evicts.
  T.allocate(0, 0x100);
  T.allocate(2, 0x200);
  T.allocate(4, 0x300);
  EXPECT_EQ(T.stats().CapacityEvictions, 1u);
  unsigned Valid = T.numValidEntries();
  EXPECT_EQ(Valid, 2u);
}

TEST(AlatTest, InvalaEDropsOneRegister) {
  Alat T(AlatConfig{});
  T.allocate(40, 0x1000);
  T.allocate(41, 0x1100);
  T.invalidateRegister(40);
  EXPECT_FALSE(T.checkRegister(40));
  EXPECT_TRUE(T.checkRegister(41));
  T.invalidateAll();
  EXPECT_FALSE(T.checkRegister(41));
}

TEST(CacheTest, HitAfterMiss) {
  CacheLevel L(1024, 2, 64);
  EXPECT_FALSE(L.access(0x100));
  EXPECT_TRUE(L.access(0x100));
  EXPECT_TRUE(L.access(0x108)) << "same line";
  EXPECT_EQ(L.hits(), 2u);
  EXPECT_EQ(L.misses(), 1u);
}

TEST(CacheTest, LruEviction) {
  // 2-way, 64B lines, 2 sets -> addresses 0x0, 0x80, 0x100 share set 0.
  CacheLevel L(256, 2, 64);
  L.access(0x0);
  L.access(0x80);
  L.access(0x100); // evicts 0x0 (LRU)
  EXPECT_FALSE(L.access(0x0));
  EXPECT_TRUE(L.probe(0x100));
}

TEST(MemoryHierarchyTest, FpBypassesL1) {
  MemoryConfig C;
  MemoryHierarchy H(C);
  // Warm the line via an int load: L1 + L2 now hold it.
  H.loadLatency(0x1000, /*Fp=*/false);
  EXPECT_EQ(H.loadLatency(0x1000, /*Fp=*/false), C.L1Latency);
  EXPECT_EQ(H.loadLatency(0x1000, /*Fp=*/true), C.L2Latency)
      << "FP loads are served from L2 even on an L1-resident line";
}

} // namespace
