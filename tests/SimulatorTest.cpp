//===- SimulatorTest.cpp - Timing-model semantics tests ----------*- C++ -*-===//
//
// Unit tests for the ITA simulator's *timing* behaviour (functional
// behaviour is covered by the differential suites): check costs, load
// latencies, issue width, and the dependence-stall accounting.
//
//===----------------------------------------------------------------------===//

#include "arch/Simulator.h"

#include "codegen/MIR.h"

#include <gtest/gtest.h>

using namespace srp;
using namespace srp::codegen;
using namespace srp::arch;

namespace {

/// Builds a single-block main() from raw instructions (plus Ret).
std::unique_ptr<MModule> makeMain(std::vector<MInstr> Instrs) {
  auto MM = std::make_unique<MModule>();
  MFunction *F = MM->createFunction("main");
  unsigned B = F->createBlock("entry");
  for (MInstr &I : Instrs)
    F->block(B).Instrs.push_back(I);
  MInstr Ret;
  Ret.Op = MOp::Ret;
  F->block(B).Instrs.push_back(Ret);
  return MM;
}

MInstr movi(unsigned Rd, int64_t Imm) {
  MInstr I;
  I.Op = MOp::MovI;
  I.Rd = Rd;
  I.Imm = Imm;
  return I;
}

MInstr ld(MOp Op, unsigned Rd, unsigned Base, int64_t Imm,
          bool Fp = false) {
  MInstr I;
  I.Op = Op;
  I.Rd = Rd;
  I.Rs1 = Base;
  I.Imm = Imm;
  I.FpVal = Fp;
  return I;
}

MInstr st(unsigned Base, int64_t Imm, unsigned Val) {
  MInstr I;
  I.Op = MOp::St;
  I.Rs1 = Base;
  I.Imm = Imm;
  I.Rs3 = Val;
  return I;
}

MInstr add(unsigned Rd, unsigned Rs1, unsigned Rs2) {
  MInstr I;
  I.Op = MOp::Add;
  I.Rd = Rd;
  I.Rs1 = Rs1;
  I.Rs2 = Rs2;
  return I;
}

TEST(SimulatorTest, CheckHitIsFreeCheckMissIsALoad) {
  // Warm a value, advance-load it, then run N checking loads.
  SimConfig SC;
  auto Run = [&](bool Invalidate) {
    std::vector<MInstr> Is;
    Is.push_back(st(RegZero, 0x10000, RegZero));
    Is.push_back(ld(MOp::LdA, 40, RegZero, 0x10000));
    if (Invalidate) {
      MInstr Inv;
      Inv.Op = MOp::InvalaE;
      Inv.Rs1 = 40;
      Is.push_back(Inv);
    }
    Is.push_back(ld(MOp::LdCNc, 40, RegZero, 0x10000));
    auto MM = makeMain(Is);
    return simulate(*MM, SC);
  };
  SimResult Hit = Run(false);
  SimResult Miss = Run(true);
  ASSERT_TRUE(Hit.Ok && Miss.Ok);
  EXPECT_EQ(Hit.Counters.AlatChecks, 1u);
  EXPECT_EQ(Hit.Counters.AlatCheckFailures, 0u);
  EXPECT_EQ(Miss.Counters.AlatCheckFailures, 1u);
  // A miss retires an extra load; a hit does not.
  EXPECT_EQ(Miss.Counters.RetiredLoads, Hit.Counters.RetiredLoads + 1);
}

TEST(SimulatorTest, StoreInvalidatesMatchingEntry) {
  std::vector<MInstr> Is;
  Is.push_back(ld(MOp::LdA, 40, RegZero, 0x10000));
  Is.push_back(movi(33, 5));
  Is.push_back(st(RegZero, 0x10000, 33)); // collides
  Is.push_back(ld(MOp::LdCNc, 40, RegZero, 0x10000));
  auto MM = makeMain(Is);
  SimResult R = simulate(*MM, SimConfig());
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ(R.Counters.AlatCheckFailures, 1u);
}

TEST(SimulatorTest, StoreToOtherAddressKeepsEntry) {
  std::vector<MInstr> Is;
  Is.push_back(ld(MOp::LdA, 40, RegZero, 0x10000));
  Is.push_back(movi(33, 5));
  Is.push_back(st(RegZero, 0x20000, 33)); // different address
  Is.push_back(ld(MOp::LdCNc, 40, RegZero, 0x10000));
  auto MM = makeMain(Is);
  SimResult R = simulate(*MM, SimConfig());
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ(R.Counters.AlatCheckFailures, 0u);
}

TEST(SimulatorTest, DependentLoadStallsAccumulate) {
  // A chain of loads each feeding the next address: stalls pile up as
  // DataAccessCycles; an independent stream does not stall.
  auto Chain = [&](bool Dependent) {
    std::vector<MInstr> Is;
    // Build a pointer chain in memory: [a] = b, [b] = c, ...
    Is.push_back(movi(33, 0x10100));
    Is.push_back(st(RegZero, 0x10000, 33));
    Is.push_back(movi(34, 0x10200));
    Is.push_back(st(RegZero, 0x10100, 34));
    Is.push_back(movi(35, 0x10300));
    Is.push_back(st(RegZero, 0x10200, 35));
    if (Dependent) {
      Is.push_back(ld(MOp::Ld, 40, RegZero, 0x10000));
      Is.push_back(ld(MOp::Ld, 41, 40, 0));
      Is.push_back(ld(MOp::Ld, 42, 41, 0));
    } else {
      Is.push_back(ld(MOp::Ld, 40, RegZero, 0x10000));
      Is.push_back(ld(MOp::Ld, 41, RegZero, 0x10100));
      Is.push_back(ld(MOp::Ld, 42, RegZero, 0x10200));
    }
    auto MM = makeMain(Is);
    return simulate(*MM, SimConfig());
  };
  SimResult Dep = Chain(true);
  SimResult Indep = Chain(false);
  ASSERT_TRUE(Dep.Ok && Indep.Ok);
  EXPECT_GT(Dep.Counters.DataAccessCycles,
            Indep.Counters.DataAccessCycles);
  EXPECT_GT(Dep.Counters.Cycles, Indep.Counters.Cycles);
}

TEST(SimulatorTest, IssueWidthBoundsThroughput) {
  // 60 independent ALU ops: at width 6 they need >= 10 cycles; at width
  // 1, >= 60.
  auto Run = [&](unsigned Width) {
    std::vector<MInstr> Is;
    for (unsigned K = 0; K < 60; ++K)
      Is.push_back(movi(33 + (K % 8), static_cast<int64_t>(K)));
    auto MM = makeMain(Is);
    SimConfig SC;
    SC.IssueWidth = Width;
    return simulate(*MM, SC);
  };
  SimResult Wide = Run(6);
  SimResult Narrow = Run(1);
  ASSERT_TRUE(Wide.Ok && Narrow.Ok);
  EXPECT_GE(Narrow.Counters.Cycles, 60u);
  EXPECT_LT(Wide.Counters.Cycles, Narrow.Counters.Cycles);
  EXPECT_GE(Wide.Counters.Cycles, 10u);
}

TEST(SimulatorTest, FpLoadLatencyExceedsIntLatency) {
  auto Run = [&](bool Fp) {
    std::vector<MInstr> Is;
    // Warm the line so both runs hit the same level.
    Is.push_back(ld(MOp::Ld, 40, RegZero, 0x10000, false));
    Is.push_back(ld(MOp::Ld, 41, RegZero, 0x10000, Fp));
    Is.push_back(add(42, 41, 41)); // consumer: exposes the latency
    auto MM = makeMain(Is);
    return simulate(*MM, SimConfig());
  };
  SimResult Int = Run(false);
  SimResult Fp = Run(true);
  ASSERT_TRUE(Int.Ok && Fp.Ok);
  EXPECT_GT(Fp.Counters.Cycles, Int.Counters.Cycles)
      << "FP loads come from L2 (9cy) even when L1 has the line";
}

TEST(SimulatorTest, ChkAMissPaysRecoveryPenalty) {
  // chk.a with no entry: must branch to recovery and pay the penalty.
  auto MM = std::make_unique<MModule>();
  MFunction *F = MM->createFunction("main");
  unsigned Entry = F->createBlock("entry");
  unsigned Rec = F->createBlock("recover");
  unsigned Cont = F->createBlock("cont");
  F->block(Rec).IsRecovery = true;
  {
    MInstr Chk;
    Chk.Op = MOp::ChkA;
    Chk.Rs1 = 40;
    Chk.Recovery = Rec;
    Chk.Target = Cont;
    F->block(Entry).Instrs.push_back(Chk);
  }
  {
    MInstr Reload = ld(MOp::LdA, 40, RegZero, 0x10000);
    F->block(Rec).Instrs.push_back(Reload);
    MInstr Br;
    Br.Op = MOp::Br;
    Br.Target = Cont;
    F->block(Rec).Instrs.push_back(Br);
  }
  {
    MInstr Ret;
    Ret.Op = MOp::Ret;
    F->block(Cont).Instrs.push_back(Ret);
  }
  SimConfig SC;
  SC.ChkMissPenalty = 50;
  SimResult R = simulate(*MM, SC);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Counters.ChkARecoveries, 1u);
  EXPECT_GE(R.Counters.Cycles, 50u);
}

TEST(SimulatorTest, StAAllocatesEntryWhenEnabled) {
  std::vector<MInstr> Is;
  {
    MInstr S;
    S.Op = MOp::StA;
    S.Rs1 = RegZero;
    S.Imm = 0x10000;
    S.Rs3 = RegZero;
    S.Rs2 = 40; // tracked register
    Is.push_back(S);
  }
  Is.push_back(ld(MOp::LdCNc, 40, RegZero, 0x10000));
  auto MM = makeMain(Is);
  SimConfig SC;
  SC.UseStA = true;
  SimResult R = simulate(*MM, SC);
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ(R.Counters.AlatCheckFailures, 0u)
      << "the st.a entry must satisfy the check";

  SC.UseStA = false;
  SimResult Trap = simulate(*MM, SC);
  EXPECT_FALSE(Trap.Ok) << "st.a on a machine without the extension";
}

TEST(SimulatorTest, UnalignedAccessTraps) {
  std::vector<MInstr> Is;
  Is.push_back(ld(MOp::Ld, 40, RegZero, 0x10001));
  auto MM = makeMain(Is);
  SimResult R = simulate(*MM, SimConfig());
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("unaligned"), std::string::npos);
}

TEST(SimulatorTest, InstructionBudgetGuardsInfiniteLoops) {
  auto MM = std::make_unique<MModule>();
  MFunction *F = MM->createFunction("main");
  unsigned B = F->createBlock("spin");
  MInstr Br;
  Br.Op = MOp::Br;
  Br.Target = B;
  F->block(B).Instrs.push_back(Br);
  SimConfig SC;
  SC.MaxInstructions = 1000;
  SimResult R = simulate(*MM, SC);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("budget"), std::string::npos);
}

} // namespace
