//===- WorkloadTest.cpp - Workload-contract tests ----------------*- C++ -*-===//
//
// The Workload contract (Workloads.h): builders are deterministic,
// verifier-clean, terminate within the fuel budget, keep the same code
// shape across scales (only data constants may change — the pipeline
// remaps train profiles onto the ref build by statement id), and exhibit
// the static ambiguity speculation needs.
//
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

#include "alias/AliasAnalysis.h"
#include "interp/Interpreter.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

using namespace srp;
using namespace srp::ir;
using namespace srp::core;
using namespace srp::workloads;

namespace {

class WorkloadContract : public ::testing::TestWithParam<int> {
protected:
  Workload workload() const {
    return standardWorkloads()[static_cast<size_t>(GetParam())];
  }
};

TEST_P(WorkloadContract, VerifiesAtBothScales) {
  Workload W = workload();
  for (uint64_t Scale : {W.TrainScale, W.RefScale}) {
    Module M;
    W.Build(M, Scale);
    auto Errors = verifyModule(M);
    EXPECT_TRUE(Errors.empty())
        << W.Name << " scale " << Scale << ": " << Errors[0];
  }
}

TEST_P(WorkloadContract, DeterministicBuild) {
  Workload W = workload();
  Module M1, M2;
  W.Build(M1, W.TrainScale);
  W.Build(M2, W.TrainScale);
  EXPECT_EQ(moduleToString(M1), moduleToString(M2));
}

TEST_P(WorkloadContract, ShapeStableAcrossScales) {
  Workload W = workload();
  Module Train, Ref;
  W.Build(Train, W.TrainScale);
  W.Build(Ref, W.RefScale);
  ASSERT_EQ(Train.numFunctions(), Ref.numFunctions());
  for (unsigned FI = 0; FI < Train.numFunctions(); ++FI) {
    const Function *TF = Train.function(FI);
    const Function *RF = Ref.function(FI);
    ASSERT_EQ(TF->numBlocks(), RF->numBlocks()) << W.Name;
    for (unsigned BI = 0; BI < TF->numBlocks(); ++BI) {
      ASSERT_EQ(TF->block(BI)->size(), RF->block(BI)->size())
          << W.Name << " block " << TF->block(BI)->getName();
      for (size_t SI = 0; SI < TF->block(BI)->size(); ++SI) {
        const Stmt *TS = TF->block(BI)->stmt(SI);
        const Stmt *RS = RF->block(BI)->stmt(SI);
        EXPECT_EQ(TS->Kind, RS->Kind);
        EXPECT_EQ(TS->Id, RS->Id) << "statement ids must line up";
      }
    }
  }
}

TEST_P(WorkloadContract, TerminatesAndPrints) {
  Workload W = workload();
  Module M;
  W.Build(M, W.RefScale);
  for (unsigned I = 0; I < M.numFunctions(); ++I)
    M.function(I)->recomputeCFG();
  interp::Interpreter I(M);
  interp::RunResult R = I.run(400'000'000);
  ASSERT_TRUE(R.Ok) << W.Name << ": " << R.Error;
  EXPECT_FALSE(R.Output.empty()) << "workloads must print a checksum";
}

TEST_P(WorkloadContract, RefDoesMoreWorkThanTrain) {
  Workload W = workload();
  auto Stmts = [&](uint64_t Scale) {
    Module M;
    W.Build(M, Scale);
    for (unsigned I = 0; I < M.numFunctions(); ++I)
      M.function(I)->recomputeCFG();
    interp::Interpreter I(M);
    return I.run(400'000'000).StmtsExecuted;
  };
  EXPECT_GT(Stmts(W.RefScale), 2 * Stmts(W.TrainScale));
}

TEST_P(WorkloadContract, HasStaticAmbiguity) {
  // Some indirect store must may-alias some other reference per the
  // compiler — otherwise there is nothing to speculate about.
  Workload W = workload();
  Module M;
  W.Build(M, W.TrainScale);
  for (unsigned I = 0; I < M.numFunctions(); ++I)
    M.function(I)->recomputeCFG();
  alias::SteensgaardAnalysis AA(M);
  bool FoundAmbiguousStore = false;
  for (unsigned FI = 0; FI < M.numFunctions() && !FoundAmbiguousStore;
       ++FI) {
    const Function *F = M.function(FI);
    for (unsigned BI = 0; BI < F->numBlocks(); ++BI) {
      const BasicBlock *BB = F->block(BI);
      for (size_t SI = 0; SI < BB->size(); ++SI) {
        const Stmt *S = BB->stmt(SI);
        if (!S->isStore() || S->Ref.isDirect())
          continue;
        if (AA.mayPointees(S->Ref, F).size() >= 2)
          FoundAmbiguousStore = true;
      }
    }
  }
  EXPECT_TRUE(FoundAmbiguousStore)
      << W.Name << " has no ambiguous store to speculate across";
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, WorkloadContract, ::testing::Range(0, 10),
    [](const ::testing::TestParamInfo<int> &Info) {
      return standardWorkloads()[static_cast<size_t>(Info.param)].Name;
    });

TEST(WorkloadTest, TenWorkloadsWithPaperNames) {
  auto All = standardWorkloads();
  ASSERT_EQ(All.size(), 10u);
  const char *Expected[] = {"ammp",  "art",    "equake", "bzip2",
                            "gzip",  "mcf",    "parser", "twolf",
                            "vortex", "vpr"};
  for (size_t I = 0; I < 10; ++I)
    EXPECT_EQ(All[I].Name, Expected[I]);
  // The FP three are marked as such (drives the Figure 8 grouping).
  EXPECT_TRUE(All[0].FloatingPoint);
  EXPECT_TRUE(All[1].FloatingPoint);
  EXPECT_TRUE(All[2].FloatingPoint);
  EXPECT_FALSE(All[4].FloatingPoint);
}

} // namespace
