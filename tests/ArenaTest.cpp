//===- ArenaTest.cpp - Tests for the bump allocator -------------*- C++ -*-===//

#include "support/Arena.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

using namespace srp;

namespace {

TEST(ArenaTest, PointerStability) {
  // IR pointers are map keys everywhere, so addresses handed out must
  // survive arbitrary later allocation (slab growth must never move
  // existing objects). Allocate well past several slab boundaries and
  // check every earlier object through each growth step.
  Arena A;
  std::vector<uint64_t *> Ptrs;
  for (uint64_t I = 0; I < 100000; ++I) {
    auto *P = A.create<uint64_t>(I);
    Ptrs.push_back(P);
  }
  EXPECT_GT(A.numSlabs(), 1u) << "test must cross a slab boundary";
  for (uint64_t I = 0; I < Ptrs.size(); ++I)
    ASSERT_EQ(*Ptrs[I], I);
}

TEST(ArenaTest, AlignmentRespected) {
  Arena A;
  for (size_t Align : {8u, 16u, 32u, 64u}) {
    void *P = A.allocate(24, Align);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(P) % Align, 0u);
    // Interleave odd sizes so the bump pointer is rarely pre-aligned.
    A.allocate(3, 1);
  }
}

TEST(ArenaTest, ResetAndReuse) {
  Arena A;
  for (int I = 0; I < 50000; ++I)
    A.create<uint64_t>(uint64_t(I));
  size_t SlabsAfterFirstFill = A.numSlabs();
  size_t BytesAfterFirstFill = A.bytesAllocated();
  EXPECT_GE(BytesAfterFirstFill, 50000 * sizeof(uint64_t));

  A.reset();
  EXPECT_EQ(A.bytesAllocated(), 0u);
  EXPECT_EQ(A.numSlabs(), SlabsAfterFirstFill) << "reset keeps its slabs";

  // The same workload must fit in the recycled slabs: no new ones.
  for (int I = 0; I < 50000; ++I)
    A.create<uint64_t>(uint64_t(I));
  EXPECT_EQ(A.numSlabs(), SlabsAfterFirstFill)
      << "reset-and-reuse re-allocated slabs it already had";
  EXPECT_EQ(A.bytesAllocated(), BytesAfterFirstFill);
}

struct DtorProbe {
  explicit DtorProbe(std::vector<int> &Order, int Id)
      : Order(Order), Id(Id) {}
  ~DtorProbe() { Order.push_back(Id); }
  std::vector<int> &Order;
  int Id;
};

TEST(ArenaTest, ResetRunsDestructorsInReverseOrder) {
  std::vector<int> Order;
  Arena A;
  A.create<DtorProbe>(Order, 1);
  A.create<DtorProbe>(Order, 2);
  A.create<DtorProbe>(Order, 3);
  EXPECT_TRUE(Order.empty());
  A.reset();
  EXPECT_EQ(Order, (std::vector<int>{3, 2, 1}));
  // Destructors must not run a second time at arena teardown.
  Order.clear();
}

TEST(ArenaTest, InternDeduplicates) {
  Arena A;
  std::string_view V1 = A.intern("promoted");
  std::string_view V2 = A.intern(std::string("prom") + "oted");
  EXPECT_EQ(V1, "promoted");
  EXPECT_EQ(V1.data(), V2.data()) << "equal strings share storage";
  std::string_view Other = A.intern("other");
  EXPECT_NE(V1.data(), Other.data());
  EXPECT_EQ(A.intern("").size(), 0u);
}

TEST(ArenaTest, ArenaVectorGrowth) {
  Arena A;
  ArenaVector<int> V(A);
  EXPECT_TRUE(V.empty());
  for (int I = 0; I < 1000; ++I)
    V.push_back(I);
  EXPECT_EQ(V.size(), 1000u);
  for (int I = 0; I < 1000; ++I)
    ASSERT_EQ(V[size_t(I)], I);
  V.pop_back();
  EXPECT_EQ(V.size(), 999u);
  EXPECT_EQ(V.back(), 998);
  V.clear();
  EXPECT_TRUE(V.empty());
}

// Under AddressSanitizer the allocator poisons slab tails and re-poisons
// recycled memory at reset, so stale pointers trip ASan like a heap
// use-after-free. The shadow-state checks only exist under ASan; the
// test skips elsewhere rather than silently passing.
TEST(ArenaTest, AsanPoisoning) {
#ifdef SRP_ARENA_ASAN
  Arena A;
  char *P = static_cast<char *>(A.allocate(64, 8));
  EXPECT_FALSE(__asan_address_is_poisoned(P));
  EXPECT_FALSE(__asan_address_is_poisoned(P + 63));
  // The unused remainder of the slab is poisoned.
  EXPECT_TRUE(__asan_address_is_poisoned(P + 64));
  A.reset();
  EXPECT_TRUE(__asan_address_is_poisoned(P))
      << "reset must re-poison recycled memory";
#else
  GTEST_SKIP() << "requires an AddressSanitizer build";
#endif
}

} // namespace
