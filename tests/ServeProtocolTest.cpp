//===- ServeProtocolTest.cpp - Serve protocol end-to-end tests ------------===//
//
// Part of the srp-alat project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// End-to-end round-trips against an in-process ServerCore, plus a real
/// socketpair transport: well-formed requests, the whole documented
/// error taxonomy (malformed JSON, unknown fields, oversized programs,
/// out-of-range scales — all status 2, mirroring srp-run's exit codes),
/// half-closed connections, frame-decoder edge cases, counter
/// fingerprints byte-identical to direct runPipeline, and per-request
/// stats epochs. The server must answer every abuse with one JSON error
/// frame — never silence, never an abort.
///
//===----------------------------------------------------------------------===//

#include "core/Pipeline.h"
#include "core/Serve.h"
#include "support/JSONReader.h"
#include "support/StringUtils.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <thread>
#include <unistd.h>

using namespace srp;
using namespace srp::core;

namespace {

ServeOptions testOptions() {
  ServeOptions O;
  O.Threads = 2;
  O.Workloads = workloads::standardWorkloads();
  return O;
}

/// Parses a response frame and returns result.status (-1 on shape
/// violations, which EXPECT separately).
int64_t statusOf(const std::string &Response) {
  JSONValue Doc;
  std::string Error;
  if (!parseJSON(Response, Doc, Error) || !Doc.isObject())
    return -1;
  const JSONValue *Result = Doc.find("result");
  if (!Result || !Result->isObject())
    return -1;
  const JSONValue *Status = Result->find("status");
  return Status && Status->isUint() ? int64_t(Status->asUint()) : -1;
}

std::string_view resultTail(std::string_view Response) {
  size_t At = Response.find("\"result\":");
  return At == std::string_view::npos ? Response : Response.substr(At);
}

TEST(ServeProtocol, PingStatsShutdown) {
  ServerCore Core(testOptions());
  std::string Pong = Core.handle("{\"id\":\"a\",\"op\":\"ping\"}");
  EXPECT_EQ(Pong,
            "{\"id\":\"a\",\"cached\":false,\"result\":{\"status\":0,"
            "\"ok\":true,\"pong\":true}}");

  std::string Stats = Core.handle("{\"op\":\"stats\"}");
  EXPECT_EQ(statusOf(Stats), 0);
  EXPECT_NE(Stats.find("serve.requests"), std::string::npos);

  EXPECT_FALSE(Core.shutdownRequested());
  std::string Bye = Core.handle("{\"op\":\"shutdown\"}");
  EXPECT_EQ(statusOf(Bye), 0);
  EXPECT_TRUE(Core.shutdownRequested());
}

// Every documented abuse maps to a status-2 error response with the
// request id echoed when one was parseable — exactly srp-run's usage
// exit code, surfaced per request instead of per process.
TEST(ServeProtocol, ErrorTaxonomyIsStatus2) {
  ServerCore Core(testOptions());
  const char *Abuses[] = {
      "{ not json",
      "[1,2,3]",
      "\"just a string\"",
      "{\"op\":\"ping\",\"op\":\"ping\"}",          // duplicate key
      "{\"op\":\"frobnicate\"}",                    // unknown op
      "{}",                                         // missing op
      "{\"op\":12}",                                // op type
      "{\"id\":7,\"op\":\"ping\"}",                 // non-string id
      "{\"op\":\"ping\",\"extra\":1}",              // unknown field
      "{\"op\":\"run\"}",                           // no target
      "{\"op\":\"run\",\"workload\":\"gzip\",\"program\":\"x\"}",
      "{\"op\":\"run\",\"workload\":\"nope\"}",     // unknown workload
      "{\"op\":\"run\",\"workload\":12}",           // workload type
      "{\"op\":\"run\",\"workload\":\"gzip\",\"train_scale\":0}",
      "{\"op\":\"run\",\"workload\":\"gzip\",\"ref_scale\":100000}",
      "{\"op\":\"run\",\"program\":\"global x\"}",  // parse error
      "{\"op\":\"run\",\"workload\":\"gzip\",\"stats\":\"yes\"}",
      "{\"op\":\"run\",\"workload\":\"gzip\",\"config\":[]}",
      "{\"op\":\"run\",\"workload\":\"gzip\","
      "\"config\":{\"strategy\":\"turbo\"}}",
      "{\"op\":\"run\",\"workload\":\"gzip\","
      "\"config\":{\"mystery\":true}}",
      "{\"op\":\"run\",\"workload\":\"gzip\","
      "\"config\":{\"alat_entries\":0}}",           // invalid geometry
      "{\"op\":\"run\",\"workload\":\"gzip\","
      "\"config\":{\"alat_entries\":48,\"alat_ways\":5}}",
      "{\"op\":\"run\",\"workload\":\"gzip\","
      "\"config\":{\"disable_passes\":[\"warp\"]}}",
      "{\"op\":\"run\",\"program\":\"g\",\"train_scale\":2}",
  };
  for (const char *Abuse : Abuses) {
    std::string Response = Core.handle(Abuse);
    EXPECT_EQ(statusOf(Response), 2) << Abuse << " -> " << Response;
    EXPECT_NE(Response.find("\"error\":"), std::string::npos) << Response;
  }
  // Abuse never poisons the cache or the server: a good request still
  // works and nothing was cached.
  EXPECT_EQ(Core.cache().stats().Insertions, 0u);
  EXPECT_EQ(statusOf(Core.handle("{\"op\":\"ping\"}")), 0);
}

TEST(ServeProtocol, OversizedProgramRejected) {
  ServeOptions O = testOptions();
  O.MaxProgramBytes = 64;
  ServerCore Core(std::move(O));
  std::string Request = "{\"op\":\"run\",\"program\":\"";
  Request.append(200, 'g');
  Request += "\"}";
  std::string Response = Core.handle(Request);
  EXPECT_EQ(statusOf(Response), 2);
  EXPECT_NE(Response.find("exceeds"), std::string::npos) << Response;
}

// The served counter fingerprint must be byte-identical to what a
// standalone run of the same (workload, config) computes — the serving
// layer can cache and batch, but never perturb, a pipeline.
TEST(ServeProtocol, FingerprintMatchesDirectPipeline) {
  Workload W = workloads::gzipWorkload();
  W.TrainScale = 1;
  W.RefScale = 2;
  PipelineConfig Config = configFor(pre::PromotionConfig::alat());
  PipelineResult R = runPipeline(W, Config);
  ASSERT_TRUE(R.Ok) << R.Error;
  std::string Expected = formatString(
      "\"fingerprint\":\"%llu/%llu/%llu|%u-%u-%u\"",
      (unsigned long long)R.Sim.Counters.Cycles,
      (unsigned long long)R.Sim.Counters.Instructions,
      (unsigned long long)R.Sim.Counters.RetiredLoads,
      R.Promotion.PromotedExprs, R.Promotion.loadsRemoved(),
      R.Promotion.ChecksInserted + R.Promotion.CascadeChecks);

  ServerCore Core(testOptions());
  std::string Response = Core.handle(
      "{\"op\":\"run\",\"workload\":\"gzip\",\"train_scale\":1,"
      "\"ref_scale\":2,\"config\":{\"strategy\":\"alat\"}}");
  EXPECT_EQ(statusOf(Response), 0);
  EXPECT_NE(Response.find(Expected), std::string::npos)
      << "wanted " << Expected << " in " << Response;
}

// A batch of pipelined frames answers in input order, repeats served
// from cache byte-identically.
TEST(ServeProtocol, BatchKeepsOrderAndCaches) {
  ServerCore Core(testOptions());
  std::vector<std::string> Lines = {
      "{\"id\":\"0\",\"op\":\"ping\"}",
      "{\"id\":\"1\",\"op\":\"run\",\"workload\":\"vpr\",\"train_scale\":1,"
      "\"ref_scale\":2}",
      "{\"id\":\"2\",\"op\":\"run\",\"workload\":\"vpr\",\"train_scale\":1,"
      "\"ref_scale\":2}",
      "{\"id\":\"3\",\"op\":\"nope\"}",
  };
  std::vector<std::string> Responses = Core.handleBatch(Lines);
  ASSERT_EQ(Responses.size(), 4u);
  for (size_t I = 0; I < 4; ++I)
    EXPECT_EQ(Responses[I].substr(0, 9),
              formatString("{\"id\":\"%zu\"", I));
  EXPECT_EQ(resultTail(Responses[1]), resultTail(Responses[2]));
  EXPECT_EQ(statusOf(Responses[3]), 2);
  // Concurrent identical cold requests may each run the pipeline (both
  // miss), but at least one result landed in the cache and a repeat is
  // a hit.
  std::string Warm = Core.handle(Lines[1]);
  EXPECT_NE(Warm.find("\"cached\":true"), std::string::npos);
}

// Per-request stats epochs: a request's "stats" echo describes that
// request alone, not the process's cumulative registry. A cold compile
// records analysis-cache work; a cached repeat of the same request
// records none of it; and the cold epoch is identical across fresh
// servers (modulo the wall-clock pass timings, which are the one
// documented nondeterministic family).
TEST(ServeProtocol, StatsEpochIsPerRequest) {
  const char *Request =
      "{\"op\":\"run\",\"workload\":\"mcf\",\"train_scale\":1,"
      "\"ref_scale\":2,\"stats\":true}";
  auto EpochCounter = [](const std::string &Response,
                         const char *Name) -> int64_t {
    JSONValue Doc;
    std::string Error;
    if (!parseJSON(Response, Doc, Error) || !Doc.isObject())
      return -1;
    const JSONValue *Stats = Doc.find("stats");
    if (!Stats || !Stats->isObject())
      return -1;
    const JSONValue *V = Stats->find(Name);
    if (!V)
      return 0;
    return V->isUint() ? int64_t(V->asUint()) : -1;
  };

  ServerCore A(testOptions());
  std::string ColdA = A.handle(Request);
  ASSERT_EQ(statusOf(ColdA), 0);
  int64_t MissesA = EpochCounter(ColdA, "analysis.cache.misses");
  EXPECT_GT(MissesA, 0) << ColdA;

  // Same request on a fresh server: same epoch counters (determinism).
  ServerCore B(testOptions());
  std::string ColdB = B.handle(Request);
  EXPECT_EQ(MissesA, EpochCounter(ColdB, "analysis.cache.misses"));

  // The cached repeat runs no pipeline: its epoch has cache hits and no
  // analysis work, however much the process has accumulated.
  std::string Warm = A.handle(Request);
  EXPECT_NE(Warm.find("\"cached\":true"), std::string::npos);
  EXPECT_EQ(EpochCounter(Warm, "analysis.cache.misses"), 0);
  EXPECT_EQ(EpochCounter(Warm, "serve.cache.hits"), 1);
}

TEST(LineSplitterTest, SplitsAcrossChunks) {
  LineSplitter S(/*MaxLineBytes=*/64);
  std::vector<std::string> Frames;
  EXPECT_EQ(S.feed("abc", Frames), 0u);
  EXPECT_EQ(S.feed("def\nsecond\nthi", Frames), 0u);
  EXPECT_EQ(S.feed("rd\n", Frames), 0u);
  ASSERT_EQ(Frames.size(), 3u);
  EXPECT_EQ(Frames[0], "abcdef");
  EXPECT_EQ(Frames[1], "second");
  EXPECT_EQ(Frames[2], "third");
  std::string Partial;
  EXPECT_FALSE(S.finish(Partial));
}

TEST(LineSplitterTest, OversizedFrameDropsAndResyncs) {
  LineSplitter S(/*MaxLineBytes=*/8);
  std::vector<std::string> Frames;
  size_t Dropped = S.feed(std::string(100, 'x'), Frames);
  Dropped += S.feed(std::string(100, 'x'), Frames); // still same frame
  EXPECT_EQ(Dropped, 1u);
  Dropped += S.feed("tail\nok\n", Frames);
  EXPECT_EQ(Dropped, 1u);
  ASSERT_EQ(Frames.size(), 1u); // resynchronized at the newline
  EXPECT_EQ(Frames[0], "ok");
}

TEST(LineSplitterTest, UnterminatedTailIsReported) {
  LineSplitter S(/*MaxLineBytes=*/64);
  std::vector<std::string> Frames;
  S.feed("complete\npartial", Frames);
  ASSERT_EQ(Frames.size(), 1u);
  std::string Partial;
  EXPECT_TRUE(S.finish(Partial));
  EXPECT_EQ(Partial, "partial");
  // finish() resets: a fresh stream starts clean.
  EXPECT_FALSE(S.finish(Partial));
}

/// Reads everything until EOF from \p Fd.
std::string drain(int Fd) {
  std::string Out;
  char Buf[4096];
  ssize_t N;
  while ((N = ::read(Fd, Buf, sizeof(Buf))) > 0)
    Out.append(Buf, size_t(N));
  return Out;
}

// A real transport round-trip over a socketpair, including pipelined
// frames and a half-closed connection cutting the last frame short:
// the client still receives one response per complete frame plus the
// documented mid-frame error, then EOF.
TEST(ServeProtocol, SocketTransportAndHalfClose) {
  int Fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Fds), 0);
  ServerCore Core(testOptions());
  std::thread Server([&Core, &Fds] { serveConnection(Core, Fds[0]); });

  std::string Burst = "{\"id\":\"x\",\"op\":\"ping\"}\n"
                      "{\"id\":\"y\",\"op\":\"nope\"}\n"
                      "{\"id\":\"z\",\"op\":\"run\",\"workload\""; // cut
  ASSERT_EQ(::send(Fds[1], Burst.data(), Burst.size(), 0),
            ssize_t(Burst.size()));
  ::shutdown(Fds[1], SHUT_WR); // half-close mid-frame

  std::string Wire = drain(Fds[1]);
  Server.join();
  ::close(Fds[1]);

  std::vector<std::string> Responses;
  for (size_t Pos = 0; Pos < Wire.size();) {
    size_t Newline = Wire.find('\n', Pos);
    ASSERT_NE(Newline, std::string::npos);
    Responses.push_back(Wire.substr(Pos, Newline - Pos));
    Pos = Newline + 1;
  }
  ASSERT_EQ(Responses.size(), 3u) << Wire;
  EXPECT_EQ(statusOf(Responses[0]), 0);
  EXPECT_NE(Responses[0].find("\"id\":\"x\""), std::string::npos);
  EXPECT_EQ(statusOf(Responses[1]), 2);
  EXPECT_EQ(statusOf(Responses[2]), 2); // the cut frame's error
  EXPECT_NE(Responses[2].find("mid-frame"), std::string::npos)
      << Responses[2];
}

// Inline-program mode: a tiny program compiles, simulates, and caches;
// its output rides in the response.
TEST(ServeProtocol, InlineProgramRuns) {
  const char *Program = "global a : int\\n\\nfunc main() -> int {\\nentry:\\n"
                        "  st a = 7\\n  t0 = ld a\\n  t1 = add t0, 35\\n"
                        "  print t1\\n  ret t1\\n}\\n";
  ServerCore Core(testOptions());
  std::string Request =
      std::string("{\"id\":\"p\",\"op\":\"run\",\"program\":\"") + Program +
      "\"}";
  std::string Cold = Core.handle(Request);
  EXPECT_EQ(statusOf(Cold), 0) << Cold;
  EXPECT_NE(Cold.find("\"output\":[\"42\"]"), std::string::npos) << Cold;
  EXPECT_NE(Cold.find("\"exit_value\":42"), std::string::npos) << Cold;

  std::string Warm = Core.handle(Request);
  EXPECT_NE(Warm.find("\"cached\":true"), std::string::npos);
  EXPECT_EQ(resultTail(Warm), resultTail(Cold));

  // Whitespace-different but canonically identical program: same cache
  // entry (content addressing is over canonical text, not input bytes).
  std::string Spaced = Request;
  size_t At = Spaced.find("st a = 7");
  ASSERT_NE(At, std::string::npos);
  Spaced.insert(At + 8, "   ");
  std::string AlsoWarm = Core.handle(Spaced);
  EXPECT_NE(AlsoWarm.find("\"cached\":true"), std::string::npos)
      << AlsoWarm;
}

} // namespace
