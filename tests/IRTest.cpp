//===- IRTest.cpp - Tests for the IR data structures -------------*- C++ -*-===//

#include "ir/IRBuilder.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

using namespace srp;
using namespace srp::ir;

namespace {

/// Builds: main { a = 1; print a; ret }.
TEST(IRBuilderTest, BuildsMinimalModule) {
  Module M;
  Symbol *A = M.createGlobal("a", TypeKind::Int);
  IRBuilder B(M);
  B.startFunction("main");
  B.emitStore(directRef(A), Operand::constInt(1));
  unsigned T = B.emitLoad(directRef(A));
  B.emitPrint(Operand::temp(T));
  B.setRet();

  EXPECT_EQ(M.numFunctions(), 1u);
  EXPECT_EQ(M.function(0)->numBlocks(), 1u);
  EXPECT_EQ(M.function(0)->entry()->size(), 3u);
  EXPECT_TRUE(verifyModule(M).empty());
}

TEST(IRBuilderTest, TempTypesFollowOpcodes) {
  Module M;
  IRBuilder B(M);
  Function *F = B.startFunction("main");
  unsigned TI = B.emitAssign(Opcode::Add, Operand::constInt(1),
                             Operand::constInt(2));
  unsigned TF = B.emitAssign(Opcode::FAdd, Operand::constFloat(1.0),
                             Operand::constFloat(2.0));
  unsigned TC = B.emitAssign(Opcode::Copy, Operand::temp(TF));
  B.setRet();
  EXPECT_EQ(F->tempType(TI), TypeKind::Int);
  EXPECT_EQ(F->tempType(TF), TypeKind::Float);
  EXPECT_EQ(F->tempType(TC), TypeKind::Float);
}

TEST(IRBuilderTest, AddrOfMarksAddressTaken) {
  Module M;
  Symbol *A = M.createGlobal("a", TypeKind::Int);
  EXPECT_FALSE(A->AddressTaken);
  IRBuilder B(M);
  B.startFunction("main");
  B.emitAddrOf(A);
  B.setRet();
  EXPECT_TRUE(A->AddressTaken);
}

TEST(CFGTest, RecomputeCFGBuildsEdges) {
  Module M;
  IRBuilder B(M);
  Function *F = B.startFunction("main");
  BasicBlock *Entry = B.block();
  BasicBlock *Then = B.createBlock("then");
  BasicBlock *Join = B.createBlock("join");

  B.setCondBr(Operand::constInt(1), Then, Join);
  B.setBlock(Then);
  B.setBr(Join);
  B.setBlock(Join);
  B.setRet();
  F->recomputeCFG();

  ASSERT_EQ(Entry->succs().size(), 2u);
  EXPECT_EQ(Entry->succs()[0], Then);
  EXPECT_EQ(Entry->succs()[1], Join);
  ASSERT_EQ(Join->preds().size(), 2u);
  EXPECT_TRUE(Entry->preds().empty());
}

TEST(CFGTest, CondBrSameTargetSingleEdge) {
  Module M;
  IRBuilder B(M);
  Function *F = B.startFunction("main");
  BasicBlock *Next = B.createBlock("next");
  B.setCondBr(Operand::constInt(0), Next, Next);
  B.setBlock(Next);
  B.setRet();
  F->recomputeCFG();
  EXPECT_EQ(F->entry()->succs().size(), 1u);
  EXPECT_EQ(Next->preds().size(), 1u);
}

TEST(CFGTest, InsertBeforeAndErase) {
  Module M;
  Symbol *A = M.createGlobal("a", TypeKind::Int);
  IRBuilder B(M);
  B.startFunction("main");
  B.emitStore(directRef(A), Operand::constInt(1));
  B.emitStore(directRef(A), Operand::constInt(2));
  B.setRet();

  BasicBlock *BB = B.block();
  Stmt Probe;
  Probe.Kind = StmtKind::Print;
  Probe.A = Operand::constInt(9);
  Stmt *Inserted = BB->insertBefore(1, Probe);
  EXPECT_EQ(BB->size(), 3u);
  EXPECT_EQ(BB->stmt(1), Inserted);
  EXPECT_EQ(BB->positionOf(Inserted), 1u);
  BB->erase(1);
  EXPECT_EQ(BB->size(), 2u);
}

TEST(MemRefTest, LexicalIdentity) {
  Module M;
  Symbol *P = M.createGlobal("p", TypeKind::Int);
  Symbol *Q = M.createGlobal("q", TypeKind::Int);
  MemRef A = indirectRef(P, TypeKind::Int);
  MemRef B = indirectRef(P, TypeKind::Int);
  MemRef C = indirectRef(Q, TypeKind::Int);
  MemRef D = indirectRef(P, TypeKind::Int, /*Offset=*/8);
  EXPECT_TRUE(A.sameLexicalRef(B));
  EXPECT_FALSE(A.sameLexicalRef(C));
  EXPECT_FALSE(A.sameLexicalRef(D));
  EXPECT_TRUE(A.isIndirect());
  EXPECT_TRUE(directRef(P).isDirect());
}

TEST(MemRefTest, IndexedRefsDifferByOperand) {
  Module M;
  Symbol *Arr = M.createGlobal("arr", TypeKind::Int, 16);
  MemRef A = arrayRef(Arr, Operand::temp(3));
  MemRef B = arrayRef(Arr, Operand::temp(3));
  MemRef C = arrayRef(Arr, Operand::temp(4));
  MemRef D = arrayRef(Arr, Operand::constInt(3));
  EXPECT_TRUE(A.sameLexicalRef(B));
  EXPECT_FALSE(A.sameLexicalRef(C));
  EXPECT_FALSE(A.sameLexicalRef(D));
}

TEST(PrinterTest, PrintsStatements) {
  Module M;
  Symbol *P = M.createGlobal("p", TypeKind::Int);
  Symbol *Arr = M.createGlobal("arr", TypeKind::Float, 8);
  IRBuilder B(M);
  B.startFunction("main");
  unsigned T0 = B.emitLoad(indirectRef(P, TypeKind::Int));
  unsigned T1 = B.emitAssign(Opcode::Add, Operand::temp(T0),
                             Operand::constInt(1));
  B.emitStore(arrayRef(Arr, Operand::temp(T1)),
              Operand::constFloat(2.5));
  B.setRet();

  BasicBlock *BB = B.block();
  EXPECT_EQ(stmtToString(*BB->stmt(0)), "t0 = ld *p");
  EXPECT_EQ(stmtToString(*BB->stmt(1)), "t1 = add t0, 1");
  EXPECT_EQ(stmtToString(*BB->stmt(2)), "st arr[t1] = 2.5f");
}

TEST(PrinterTest, PrintsSpeculationFlags) {
  Module M;
  Symbol *A = M.createGlobal("a", TypeKind::Int);
  IRBuilder B(M);
  B.startFunction("main");
  unsigned T = B.emitLoad(directRef(A), SpecFlag::LdA);
  B.emitLoad(directRef(A), SpecFlag::LdCnc);
  B.emitInvala(T);
  B.setRet();
  BasicBlock *BB = B.block();
  EXPECT_EQ(stmtToString(*BB->stmt(0)), "t0 = ld<ld.a> a");
  EXPECT_EQ(stmtToString(*BB->stmt(1)), "t1 = ld<ld.c.nc> a");
  EXPECT_EQ(stmtToString(*BB->stmt(2)), "invala t0");
}

TEST(PrinterTest, ModulePrintIncludesGlobalsAndBlocks) {
  Module M;
  M.createGlobal("g", TypeKind::Int, 4);
  IRBuilder B(M);
  B.startFunction("main");
  B.setRet();
  std::string Text = moduleToString(M);
  EXPECT_NE(Text.find("global g : int[4]"), std::string::npos);
  EXPECT_NE(Text.find("func main()"), std::string::npos);
  EXPECT_NE(Text.find("entry:"), std::string::npos);
  EXPECT_NE(Text.find("  ret"), std::string::npos);
}

TEST(VerifierTest, AcceptsWellFormedModule) {
  Module M;
  Symbol *A = M.createGlobal("a", TypeKind::Int, 4);
  IRBuilder B(M);
  B.startFunction("main");
  unsigned T = B.emitLoad(arrayRef(A, Operand::constInt(2)));
  B.emitPrint(Operand::temp(T));
  B.setRet(Operand::temp(T));
  EXPECT_TRUE(verifyModule(M).empty());
}

TEST(VerifierTest, RejectsOutOfBoundsConstantIndex) {
  Module M;
  Symbol *A = M.createGlobal("a", TypeKind::Int, 4);
  IRBuilder B(M);
  B.startFunction("main");
  B.emitLoad(arrayRef(A, Operand::constInt(4)));
  B.setRet();
  auto Errors = verifyModule(M);
  ASSERT_FALSE(Errors.empty());
  EXPECT_NE(Errors[0].find("outside the symbol's storage"),
            std::string::npos);
}

TEST(VerifierTest, RejectsTypeMismatchedStore) {
  Module M;
  Symbol *A = M.createGlobal("a", TypeKind::Int);
  IRBuilder B(M);
  B.startFunction("main");
  B.emitStore(directRef(A), Operand::constFloat(1.0));
  B.setRet();
  EXPECT_FALSE(verifyModule(M).empty());
}

TEST(VerifierTest, RejectsMissingMain) {
  Module M;
  IRBuilder B(M);
  B.startFunction("helper");
  B.setRet();
  auto Errors = verifyModule(M);
  ASSERT_EQ(Errors.size(), 1u);
  EXPECT_NE(Errors[0].find("main"), std::string::npos);
}

TEST(VerifierTest, RejectsCallArityMismatch) {
  Module M;
  IRBuilder B(M);
  Function *Callee = B.startFunction("callee");
  M.createLocal(Callee, "x", TypeKind::Int, 1, /*IsFormal=*/true);
  B.setRet();
  B.startFunction("main");
  B.emitCall(Callee, {});
  B.setRet();
  auto Errors = verifyModule(M);
  ASSERT_FALSE(Errors.empty());
  EXPECT_NE(Errors[0].find("argument count"), std::string::npos);
}

TEST(VerifierTest, RejectsDeepDereference) {
  Module M;
  Symbol *P = M.createGlobal("p", TypeKind::Int);
  IRBuilder B(M);
  B.startFunction("main");
  MemRef Ref = indirectRef(P, TypeKind::Int);
  Ref.Depth = 3;
  B.emitLoad(Ref);
  B.setRet();
  EXPECT_FALSE(verifyModule(M).empty());
}

TEST(StmtTest, CollectUsedTemps) {
  Module M;
  Symbol *Arr = M.createGlobal("arr", TypeKind::Int, 8);
  IRBuilder B(M);
  B.startFunction("main");
  unsigned T0 = B.emitAssign(Opcode::Copy, Operand::constInt(1));
  unsigned T1 = B.emitAssign(Opcode::Add, Operand::temp(T0),
                             Operand::constInt(2));
  B.emitStore(arrayRef(Arr, Operand::temp(T1)), Operand::temp(T0));
  B.setRet();

  std::vector<unsigned> Used;
  B.block()->stmt(2)->collectUsedTemps(Used);
  ASSERT_EQ(Used.size(), 2u);
  EXPECT_EQ(Used[0], T0);
  EXPECT_EQ(Used[1], T1);
}

} // namespace
