//===- SpecVerifierTest.cpp - Speculation-safety checker tests ---*- C++ -*-===//
//
// Three layers of evidence that analysis::SpecVerifier means what it says:
//
//   1. Hand-built negatives: each invariant (E1-E4, W1) violated in the
//      smallest possible function, asserting the exact diagnostic kind.
//   2. A no-false-positives sweep: 500 random programs promoted under the
//      ALAT-family strategies must verify clean (the promoter upholds the
//      discipline by construction).
//   3. A differential run: the same promoted modules execute under
//      interp::AlatObserver, an adversarial hardware model. A module the
//      checker passes must produce zero stale check hits, and any dynamic
//      capacity eviction must have been predicted by the static W1 lint
//      at the same table size.
//
//===----------------------------------------------------------------------===//

#include "fuzz/RandomProgram.h"

#include "alias/AliasAnalysis.h"
#include "analysis/SpecVerifier.h"
#include "interp/AlatObserver.h"
#include "interp/Interpreter.h"
#include "ir/IRBuilder.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "pre/Promoter.h"

#include <gtest/gtest.h>

using namespace srp;
using namespace srp::analysis;
using namespace srp::ir;

namespace {

unsigned countKind(const std::vector<SpecDiag> &Diags, SpecDiagKind Kind) {
  unsigned N = 0;
  for (const SpecDiag &D : Diags)
    N += D.Kind == Kind;
  return N;
}

std::string dump(const std::vector<SpecDiag> &Diags) {
  std::string Out;
  for (const SpecDiag &D : Diags)
    Out += formatSpecDiag(D) + "\n";
  return Out;
}

/// A checking load re-targeting an existing temp (IRBuilder::emitLoad
/// always makes a fresh temp, but a check must write the armed one).
void appendCheck(IRBuilder &B, unsigned Dst, MemRef Ref, SpecFlag Flag,
                 unsigned AddrSrc = NoTemp) {
  Stmt S;
  S.Kind = StmtKind::Load;
  S.Dst = Dst;
  S.Ref = Ref;
  S.Flag = Flag;
  S.AddrSrc = AddrSrc;
  B.block()->append(std::move(S));
}

/// An advanced load over an indirect reference, with the chain pointer
/// saved to a fresh temp (what the promoter's cascade placement emits).
unsigned appendAdvancedIndirect(IRBuilder &B, MemRef Ref, unsigned &AddrDst) {
  Stmt S;
  S.Kind = StmtKind::Load;
  S.Flag = SpecFlag::LdSA;
  S.Ref = Ref;
  S.Dst = B.function()->createTemp(Ref.ValueType);
  S.AddrDst = AddrDst = B.function()->createTemp(TypeKind::Int);
  unsigned Dst = S.Dst;
  B.block()->append(std::move(S));
  return Dst;
}

void finish(IRBuilder &B) {
  B.setRet(Operand::constInt(0));
  for (unsigned I = 0; I < B.module().numFunctions(); ++I)
    B.module().function(I)->recomputeCFG();
}

//===----------------------------------------------------------------------===//
// Hand-built negatives
//===----------------------------------------------------------------------===//

TEST(SpecVerifierNegative, CheckWithoutDominatingAdvancedLoad) {
  Module M;
  IRBuilder B(M);
  Symbol *G = M.createGlobal("g", TypeKind::Int);
  B.startFunction("main");
  B.emitLoad(directRef(G), SpecFlag::LdC); // never armed
  finish(B);

  auto Diags = verifySpeculation(M);
  EXPECT_EQ(countKind(Diags, SpecDiagKind::UnanchoredCheck), 1u)
      << dump(Diags);
  EXPECT_TRUE(hasSpecErrors(Diags));
}

TEST(SpecVerifierNegative, AnchoredOnOnlyOnePath) {
  Module M;
  IRBuilder B(M);
  Symbol *G = M.createGlobal("g", TypeKind::Int);
  B.startFunction("main");
  unsigned TC = B.emitAssign(Opcode::Copy, Operand::constInt(0));
  BasicBlock *Then = B.createBlock("then");
  BasicBlock *Else = B.createBlock("else");
  BasicBlock *Join = B.createBlock("join");
  B.setCondBr(Operand::temp(TC), Then, Else);
  B.setBlock(Then);
  unsigned T0 = B.emitLoad(directRef(G), SpecFlag::LdA);
  B.setBr(Join);
  B.setBlock(Else); // no anchor on this path
  B.setBr(Join);
  B.setBlock(Join);
  appendCheck(B, T0, directRef(G), SpecFlag::LdC);
  finish(B);

  auto Diags = verifySpeculation(M);
  EXPECT_EQ(countKind(Diags, SpecDiagKind::UnanchoredCheck), 1u)
      << dump(Diags);
}

TEST(SpecVerifierNegative, AnchoredOnBothPathsIsClean) {
  Module M;
  IRBuilder B(M);
  Symbol *G = M.createGlobal("g", TypeKind::Int);
  B.startFunction("main");
  unsigned TC = B.emitAssign(Opcode::Copy, Operand::constInt(0));
  BasicBlock *Then = B.createBlock("then");
  BasicBlock *Else = B.createBlock("else");
  BasicBlock *Join = B.createBlock("join");
  B.setCondBr(Operand::temp(TC), Then, Else);
  B.setBlock(Then);
  unsigned T0 = B.emitLoad(directRef(G), SpecFlag::LdA);
  B.setBr(Join);
  B.setBlock(Else);
  {
    Stmt S;
    S.Kind = StmtKind::Load;
    S.Flag = SpecFlag::LdA;
    S.Ref = directRef(G);
    S.Dst = T0;
    B.block()->append(std::move(S));
  }
  B.setBr(Join);
  B.setBlock(Join);
  appendCheck(B, T0, directRef(G), SpecFlag::LdC);
  finish(B);

  auto Diags = verifySpeculation(M);
  EXPECT_TRUE(Diags.empty()) << dump(Diags);
}

TEST(SpecVerifierNegative, ClobberedBetweenArmAndCheck) {
  Module M;
  IRBuilder B(M);
  Symbol *G = M.createGlobal("g", TypeKind::Int);
  B.startFunction("main");
  unsigned T0 = B.emitLoad(directRef(G), SpecFlag::LdA);
  {
    Stmt S; // unflagged redefinition of the promoted register
    S.Kind = StmtKind::Assign;
    S.Op = Opcode::Copy;
    S.Dst = T0;
    S.A = Operand::constInt(42);
    B.block()->append(std::move(S));
  }
  appendCheck(B, T0, directRef(G), SpecFlag::LdC);
  finish(B);

  auto Diags = verifySpeculation(M);
  EXPECT_EQ(countKind(Diags, SpecDiagKind::ClobberedRegister), 1u)
      << dump(Diags);
  EXPECT_EQ(countKind(Diags, SpecDiagKind::UnanchoredCheck), 0u)
      << dump(Diags);
}

TEST(SpecVerifierNegative, GuardedSelectIsNotAClobber) {
  Module M;
  IRBuilder B(M);
  Symbol *G = M.createGlobal("g", TypeKind::Int);
  B.startFunction("main");
  unsigned T0 = B.emitLoad(directRef(G), SpecFlag::LdA);
  unsigned TC = B.emitAssign(Opcode::Copy, Operand::constInt(0));
  {
    Stmt S; // t0 = select c, fresh, t0 — the software-check idiom
    S.Kind = StmtKind::Assign;
    S.Op = Opcode::Select;
    S.Dst = T0;
    S.A = Operand::temp(TC);
    S.B = Operand::constInt(7);
    S.C = Operand::temp(T0);
    B.block()->append(std::move(S));
  }
  appendCheck(B, T0, directRef(G), SpecFlag::LdC);
  finish(B);

  auto Diags = verifySpeculation(M);
  EXPECT_TRUE(Diags.empty()) << dump(Diags);
}

TEST(SpecVerifierNegative, ChkAWithoutRecoveryPlumbing) {
  Module M;
  IRBuilder B(M);
  Symbol *P = M.createGlobal("p", TypeKind::Int);
  B.startFunction("main");
  unsigned TP = NoTemp;
  unsigned T0 = appendAdvancedIndirect(B, indirectRef(P, TypeKind::Int), TP);
  // chk.a with no saved chain pointer: recovery cannot rebuild the
  // address, lowering has no register to check.
  appendCheck(B, T0, indirectRef(P, TypeKind::Int), SpecFlag::ChkA);
  finish(B);

  auto Diags = verifySpeculation(M);
  EXPECT_EQ(countKind(Diags, SpecDiagKind::MalformedRecovery), 1u)
      << dump(Diags);
}

TEST(SpecVerifierNegative, ChkAOverNonCascadeDepth) {
  Module M;
  IRBuilder B(M);
  Symbol *G = M.createGlobal("g", TypeKind::Int);
  B.startFunction("main");
  unsigned T0 = B.emitLoad(directRef(G), SpecFlag::LdA);
  // chk.a over a direct (depth-0) reference: there is no pointer cascade
  // for recovery to re-execute.
  appendCheck(B, T0, directRef(G), SpecFlag::ChkA);
  finish(B);

  auto Diags = verifySpeculation(M);
  EXPECT_GE(countKind(Diags, SpecDiagKind::MalformedRecovery), 1u)
      << dump(Diags);
}

TEST(SpecVerifierNegative, SpeculativeStatementsDisagreeOnExpression) {
  Module M;
  IRBuilder B(M);
  Symbol *G = M.createGlobal("g", TypeKind::Int);
  Symbol *H = M.createGlobal("h", TypeKind::Int);
  B.startFunction("main");
  unsigned T0 = B.emitLoad(directRef(G), SpecFlag::LdA);
  appendCheck(B, T0, directRef(H), SpecFlag::LdC); // checks a different cell
  finish(B);

  auto Diags = verifySpeculation(M);
  EXPECT_EQ(countKind(Diags, SpecDiagKind::MalformedRecovery), 1u)
      << dump(Diags);
}

TEST(SpecVerifierNegative, StaleSavedCheckAddress) {
  Module M;
  IRBuilder B(M);
  Symbol *P = M.createGlobal("p", TypeKind::Int);
  Symbol *A = M.createGlobal("a", TypeKind::Int);
  B.startFunction("main");
  unsigned TA = B.emitAddrOf(A);
  B.emitStore(directRef(P), Operand::temp(TA));
  unsigned TP = NoTemp;
  unsigned T0 = appendAdvancedIndirect(B, indirectRef(P, TypeKind::Int), TP);
  // Retarget the pointer cell between the advanced load and the check:
  // the saved address TP no longer equals *p.
  B.emitStore(directRef(P), Operand::temp(TA));
  appendCheck(B, T0, indirectRef(P, TypeKind::Int), SpecFlag::LdCnc, TP);
  finish(B);

  alias::SteensgaardAnalysis AA(M);
  SpecVerifyConfig C;
  C.AA = &AA;
  auto Diags = verifySpeculation(M, C);
  EXPECT_EQ(countKind(Diags, SpecDiagKind::StaleCheckAddress), 1u)
      << dump(Diags);
}

TEST(SpecVerifierNegative, OverCapacityRegion) {
  Module M;
  IRBuilder B(M);
  B.startFunction("main");
  std::vector<unsigned> Temps;
  std::vector<Symbol *> Syms;
  for (int I = 0; I < 5; ++I) {
    Syms.push_back(
        M.createGlobal(std::string("g") + std::to_string(I), TypeKind::Int));
    Temps.push_back(B.emitLoad(directRef(Syms[I]), SpecFlag::LdA));
  }
  for (int I = 0; I < 5; ++I)
    appendCheck(B, Temps[I], directRef(Syms[I]), SpecFlag::LdC);
  finish(B);

  SpecVerifyConfig Small;
  Small.AlatEntries = 4; // five entries live at the fifth ld.a
  auto Diags = verifySpeculation(M, Small);
  EXPECT_EQ(countKind(Diags, SpecDiagKind::OverCapacity), 1u) << dump(Diags);
  EXPECT_FALSE(hasSpecErrors(Diags)) << dump(Diags);

  SpecVerifyConfig Fits;
  Fits.AlatEntries = 5;
  EXPECT_TRUE(verifySpeculation(M, Fits).empty());

  Small.CheckCapacity = false; // the bench escape hatch
  EXPECT_TRUE(verifySpeculation(M, Small).empty());
}

/// Diagnostics must carry the .sir line of the offending statement
/// (srp-lint's file:line output depends on the parser stamping lines).
TEST(SpecVerifierDiag, CarriesSourceLine) {
  const char *Text = "global a : int\n"
                     "\n"
                     "func main() -> int {\n"
                     "entry:\n"
                     "  t0 = ld<ld.c.clr> a\n"
                     "  ret t0\n"
                     "}\n";
  Module M;
  std::string Error;
  ASSERT_TRUE(parseModule(Text, M, Error)) << Error;
  for (unsigned I = 0; I < M.numFunctions(); ++I)
    M.function(I)->recomputeCFG();

  auto Diags = verifySpeculation(M);
  ASSERT_EQ(Diags.size(), 1u) << dump(Diags);
  EXPECT_EQ(Diags[0].Kind, SpecDiagKind::UnanchoredCheck);
  EXPECT_EQ(Diags[0].Line, 5u);
  std::string Formatted = formatSpecDiag(Diags[0], "prog.sir");
  EXPECT_NE(Formatted.find("prog.sir:5:"), std::string::npos) << Formatted;
  EXPECT_NE(Formatted.find("[unanchored-check]"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// No false positives on promoter output
//===----------------------------------------------------------------------===//

std::vector<pre::PromotionConfig> alatFamily() {
  pre::PromotionConfig Cascade = pre::PromotionConfig::alat();
  Cascade.EnableCascade = true;
  pre::PromotionConfig StA = pre::PromotionConfig::alat();
  StA.UseStA = true;
  pre::PromotionConfig AtReuse = pre::PromotionConfig::alat();
  AtReuse.ChecksAtReuse = true;
  AtReuse.EnableCascade = true;
  pre::PromotionConfig Everything = pre::PromotionConfig::alat();
  Everything.EnableCascade = true;
  Everything.UseStA = true;
  return {pre::PromotionConfig::alat(), Cascade, StA, AtReuse, Everything};
}

/// Builds, trains and promotes the random program for \p Seed under the
/// \p Seed-selected ALAT-family strategy. Returns the alias analysis the
/// promoter used so the verifier can share its verdicts.
std::unique_ptr<alias::AliasAnalysis> promoteRandom(Module &M,
                                                    uint64_t Seed) {
  srp::fuzz::buildRandomProgram(M, Seed);
  for (unsigned I = 0; I < M.numFunctions(); ++I)
    M.function(I)->recomputeCFG();
  interp::AliasProfile AP;
  interp::EdgeProfile EP;
  interp::Interpreter Train(M);
  Train.setAliasProfile(&AP);
  Train.setEdgeProfile(&EP);
  EXPECT_TRUE(Train.run(20'000'000).Ok);
  auto AA = std::make_unique<alias::SteensgaardAnalysis>(M);
  auto Family = alatFamily();
  pre::promoteModule(M, *AA, &AP, &EP, Family[Seed % Family.size()]);
  return AA;
}

TEST(SpecVerifierProperty, NoFalsePositivesOn500PromotedPrograms) {
  for (uint64_t Seed = 0; Seed < 500; ++Seed) {
    Module M;
    auto AA = promoteRandom(M, Seed * 7919 + 17);
    SpecVerifyConfig C;
    C.AA = AA.get();
    auto Diags = verifySpeculation(M, C);
    ASSERT_TRUE(Diags.empty()) << "seed " << Seed << "\n"
                               << dump(Diags) << moduleToString(M);
  }
}

//===----------------------------------------------------------------------===//
// Differential: static verdicts vs the adversarial hardware model
//===----------------------------------------------------------------------===//

class SpecDifferential : public ::testing::TestWithParam<int> {};

TEST_P(SpecDifferential, ObserverAgreesWithChecker) {
  uint64_t Seed = static_cast<uint64_t>(GetParam()) * 104729 + 41;
  Module M;
  auto AA = promoteRandom(M, Seed);

  SpecVerifyConfig C;
  C.AA = AA.get();
  C.AlatEntries = 32;
  auto Diags = verifySpeculation(M, C);
  bool StaticallyClean = !hasSpecErrors(Diags);

  // A module the checker passes must never produce a stale check hit on
  // the worst-case hardware model.
  interp::AlatObserver Obs(32);
  interp::Interpreter Interp(M);
  Interp.setAlatObserver(&Obs);
  interp::RunResult R = Interp.run(20'000'000);
  ASSERT_TRUE(R.Ok) << R.Error;
  if (StaticallyClean) {
    EXPECT_EQ(Obs.stats().StaleHits, 0u)
        << "seed " << Seed << "\n"
        << moduleToString(M);
  }

  // Any dynamic capacity eviction must have been predicted by the static
  // capacity lint at the same geometry (static may-live counts plus
  // callee peaks over-approximate the observer's table occupancy).
  interp::AlatObserver Tiny(2);
  interp::Interpreter Interp2(M);
  Interp2.setAlatObserver(&Tiny);
  ASSERT_TRUE(Interp2.run(20'000'000).Ok);
  if (Tiny.stats().CapacityEvictions > 0) {
    SpecVerifyConfig C2;
    C2.AA = AA.get();
    C2.AlatEntries = 2;
    auto D2 = verifySpeculation(M, C2);
    EXPECT_GE(countKind(D2, SpecDiagKind::OverCapacity), 1u)
        << "seed " << Seed << ": " << Tiny.stats().CapacityEvictions
        << " evictions unpredicted\n"
        << moduleToString(M);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpecDifferential, ::testing::Range(0, 120));

/// The observer itself must catch a genuine discipline violation: a
/// clobbered register kept on a check hit. This guards the differential
/// against a trivially-quiet observer.
TEST(SpecDifferential2, ObserverFlagsClobberedRegister) {
  const char *Text = "global g : int\n"
                     "\n"
                     "func main() -> int {\n"
                     "entry:\n"
                     "  t0 = ld<ld.a> g\n"
                     "  t1 = add t0, 1\n"
                     "  t0 = copy t1\n"
                     "  t2 = ld<ld.c.clr> g\n"
                     "  ret t0\n"
                     "}\n";
  Module M;
  std::string Error;
  ASSERT_TRUE(parseModule(Text, M, Error)) << Error;
  for (unsigned I = 0; I < M.numFunctions(); ++I)
    M.function(I)->recomputeCFG();
  // Rewrite the check to target t0 (the parser gives each load a fresh
  // temp; the broken program checks the clobbered register).
  BasicBlock *Entry = M.function(0)->entry();
  Stmt *Chk = Entry->stmt(Entry->size() - 1);
  ASSERT_EQ(Chk->Flag, SpecFlag::LdC);
  Chk->Dst = Entry->stmt(0)->Dst;

  auto Diags = verifySpeculation(M);
  EXPECT_EQ(countKind(Diags, SpecDiagKind::ClobberedRegister), 1u)
      << dump(Diags);

  interp::AlatObserver Obs(32);
  interp::Interpreter Interp(M);
  Interp.setAlatObserver(&Obs);
  ASSERT_TRUE(Interp.run(1000).Ok);
  // The entry is still valid (no store touched g), the register holds
  // g+1: hardware would keep the clobbered value.
  EXPECT_EQ(Obs.stats().StaleHits, 1u);
}

} // namespace
