//===- ServeStressTest.cpp - Concurrent serving stress tests --------------===//
//
// Part of the srp-alat project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hammers one ServerCore from many client threads with a mixed request
/// schedule (workload runs, inline programs, pings, malformed frames)
/// and checks that every response is byte-identical to the
/// single-threaded answer modulo the "cached" flag, and that the cache
/// counters add up. Built into the TSan CI lane (serve-stress), where
/// "zero races" is the point; under plain ASan/UBSan it still pins
/// determinism under contention.
///
//===----------------------------------------------------------------------===//

#include "core/ResultCache.h"
#include "core/Serve.h"
#include "support/StringUtils.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

using namespace srp;
using namespace srp::core;

namespace {

constexpr unsigned NumThreads = 8;
constexpr unsigned RequestsPerThread = 40;

/// A tiny inline program parameterized on \p K so distinct requests
/// exercise distinct cache keys while staying cheap to compile.
std::string tinyProgram(unsigned K) {
  return formatString(
      "global a : int\\n\\nfunc main() -> int {\\nentry:\\n"
      "  st a = %u\\n  t0 = ld a\\n  t1 = add t0, 1\\n"
      "  print t1\\n  ret t1\\n}\\n",
      K);
}

/// The deterministic mixed schedule: slot I of the global round-robin.
std::string requestFor(unsigned I) {
  switch (I % 5) {
  case 0:
    return formatString("{\"id\":\"%u\",\"op\":\"run\",\"program\":\"%s\"}",
                        I, tinyProgram(I % 7).c_str());
  case 1:
    return formatString("{\"id\":\"%u\",\"op\":\"run\",\"workload\":"
                        "\"gzip\",\"train_scale\":1,\"ref_scale\":1}",
                        I);
  case 2:
    return formatString("{\"id\":\"%u\",\"op\":\"ping\"}", I);
  case 3:
    return formatString("{\"id\":\"%u\",\"op\":\"run\",\"program\":\"%s\","
                        "\"config\":{\"strategy\":\"baseline\"}}",
                        I, tinyProgram(I % 3).c_str());
  default:
    // Malformed on purpose: unknown op. Must answer, never abort.
    return formatString("{\"id\":\"%u\",\"op\":\"bogus\"}", I);
  }
}

std::string_view resultTail(std::string_view Response) {
  size_t At = Response.find("\"result\":");
  return At == std::string_view::npos ? Response : Response.substr(At);
}

TEST(ServeStress, ConcurrentMixedScheduleIsDeterministic) {
  // Reference answers from a single-threaded core.
  constexpr unsigned Total = NumThreads * RequestsPerThread;
  std::vector<std::string> Expected(Total);
  {
    ServeOptions O;
    O.Threads = 1;
    O.Workloads = workloads::standardWorkloads();
    ServerCore Reference(std::move(O));
    for (unsigned I = 0; I < Total; ++I)
      Expected[I] = Reference.handle(requestFor(I));
  }

  ServeOptions O;
  O.Threads = NumThreads;
  O.Workloads = workloads::standardWorkloads();
  ServerCore Core(std::move(O));

  std::vector<std::string> Got(Total);
  std::atomic<unsigned> Next{0};
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&Core, &Got, &Next] {
      for (unsigned I; (I = Next.fetch_add(1)) < Total;)
        Got[I] = Core.handle(requestFor(I));
    });
  for (std::thread &T : Threads)
    T.join();

  for (unsigned I = 0; I < Total; ++I) {
    // The result body must match the single-threaded run exactly; only
    // the "cached" flag may differ (who computed it first is racy).
    EXPECT_EQ(resultTail(Got[I]), resultTail(Expected[I]))
        << "request " << I << ": " << requestFor(I);
    EXPECT_EQ(Got[I].substr(0, Got[I].find("\"cached\":")),
              Expected[I].substr(0, Expected[I].find("\"cached\":")));
  }

  // Counter bookkeeping survives contention: every cacheable request is
  // either a hit or a miss, and hits plus insertions cover them all.
  // (Duplicate concurrent misses may both run and insert; insertions
  // can therefore exceed distinct keys but never misses.)
  ResultCache::Stats S = Core.cache().stats();
  constexpr unsigned Cacheable = Total / 5 * 3; // cases 0, 1, 3
  EXPECT_EQ(S.Hits + S.Misses, Cacheable);
  EXPECT_LE(S.Insertions, S.Misses);
  EXPECT_GT(S.Hits, 0u);
}

// Concurrent batches interleaved with cache churn under a small budget:
// responses stay well-formed while eviction runs hot.
TEST(ServeStress, TinyCacheUnderConcurrencyStaysConsistent) {
  ServeOptions O;
  O.Threads = 4;
  O.Workloads = workloads::standardWorkloads();
  O.Cache.Shards = 2;
  O.Cache.ByteBudget = 4096; // forces steady eviction
  ServerCore Core(std::move(O));

  std::atomic<unsigned> Failures{0};
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < 4; ++T)
    Threads.emplace_back([&Core, &Failures, T] {
      for (unsigned I = 0; I < 30; ++I) {
        std::string Response = Core.handle(formatString(
            "{\"op\":\"run\",\"program\":\"%s\"}",
            tinyProgram(T * 100 + I % 11).c_str()));
        if (Response.find("\"status\":0") == std::string::npos)
          Failures.fetch_add(1);
      }
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Failures.load(), 0u);
  EXPECT_LE(Core.cache().stats().Bytes, 4096u);
}

} // namespace
