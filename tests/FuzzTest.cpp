//===- FuzzTest.cpp - Fuzzer, minimizer and repro-replay tests --*- C++ -*-===//
//
// Three layers of confidence in the robustness harness: the campaign
// itself is deterministic and clean on a small budget, the ddmin
// minimizer shrinks a seeded failure to a handful of statements, and
// every checked-in repro under fuzz-repros/ stays green across the whole
// strategy sweep (the regression-replay job the issue asked for).
//
//===----------------------------------------------------------------------===//

#include "fuzz/Fuzzer.h"
#include "fuzz/Minimizer.h"

#include "ir/CFG.h"
#include "ir/Stmt.h"

#include <filesystem>
#include <fstream>
#include <gtest/gtest.h>
#include <sstream>

using namespace srp;
using namespace srp::fuzz;

namespace {

TEST(Fuzzer, SmallCleanSweep) {
  FuzzOptions Opts;
  Opts.Iterations = 30;
  Opts.Seed = 7;
  Opts.Minimize = false;
  FuzzResult R = runFuzzer(Opts);
  EXPECT_EQ(R.ProgramsRun, 30u);
  EXPECT_GT(R.CoverageFeatures, 0u);
  EXPECT_GT(R.FaultRuns, 0u);
  for (const Finding &F : R.Findings)
    ADD_FAILURE() << F.ConfigName << ": " << F.Detail
                  << " (replay: " << F.replayArg() << ")";
}

TEST(Fuzzer, ThreadCountDoesNotChangeResults) {
  FuzzOptions Opts;
  Opts.Iterations = 24;
  Opts.Seed = 11;
  Opts.Minimize = false;
  Opts.Threads = 1;
  FuzzResult One = runFuzzer(Opts);
  Opts.Threads = 4;
  FuzzResult Four = runFuzzer(Opts);
  EXPECT_EQ(One.ProgramsRun, Four.ProgramsRun);
  EXPECT_EQ(One.FaultRuns, Four.FaultRuns);
  EXPECT_EQ(One.Findings.size(), Four.Findings.size());
}

TEST(Fuzzer, GeneratedProgramTextIsStable) {
  std::string A = generatedProgramText(42, 99);
  std::string B = generatedProgramText(42, 99);
  EXPECT_EQ(A, B);
  EXPECT_NE(A, generatedProgramText(42, 100));
  EXPECT_GT(countStatements(A), 0u);
}

TEST(Fuzzer, ReplayTripleIsDeterministic) {
  valid::OracleReport A = replayTriple(42, 99, 3, 1234);
  valid::OracleReport B = replayTriple(42, 99, 3, 1234);
  EXPECT_EQ(A.Ok, B.Ok);
  EXPECT_EQ(A.Kind, B.Kind);
  EXPECT_EQ(A.Detail, B.Detail);
  EXPECT_EQ(A.FaultPlansRun, B.FaultPlansRun);
}

TEST(Fuzzer, ParseReplayArg) {
  uint64_t S, P, F;
  unsigned C;
  EXPECT_TRUE(parseReplayArg("1:2:3:4", S, P, C, F));
  EXPECT_EQ(S, 1u);
  EXPECT_EQ(P, 2u);
  EXPECT_EQ(C, 3u);
  EXPECT_EQ(F, 4u);
  EXPECT_TRUE(parseReplayArg("0x10:0x20:1:0", S, P, C, F));
  EXPECT_EQ(S, 16u);
  EXPECT_FALSE(parseReplayArg("1:2:3", S, P, C, F));
  EXPECT_FALSE(parseReplayArg("a:b:c:d", S, P, C, F));
  EXPECT_FALSE(parseReplayArg("", S, P, C, F));
}

/// The acceptance bar from the issue: seed a synthetic mismatch into a
/// generated program and require ddmin to land at <= 10 statements.
TEST(Minimizer, ReducesSyntheticMismatchToTenStatements) {
  std::string Text = generatedProgramText(3, 5);
  ASSERT_GT(countStatements(Text), 10u)
      << "pick a bigger generator seed; the bar would be vacuous";
  // The "failure": the program still parses and still prints something.
  // Every generated program satisfies it, so ddmin is free to shrink all
  // the way down to one print statement — the predicate models a
  // mismatch that survives reduction, as DiffOracle predicates do in the
  // campaign.
  auto StillFails = [](const std::string &Candidate) {
    valid::OracleOptions Opts;
    Opts.Config = core::configFor(pre::PromotionConfig::conservative());
    valid::OracleReport R = valid::runDiffOracleOnText(Candidate, Opts);
    return R.Ok; // valid program; "fails" as long as it stays runnable
  };
  ASSERT_TRUE(StillFails(Text));
  std::string Reduced = minimizeModuleText(Text, StillFails);
  EXPECT_LE(countStatements(Reduced), 10u)
      << "minimizer stalled at " << countStatements(Reduced)
      << " statements:\n"
      << Reduced;
  EXPECT_TRUE(StillFails(Reduced));
}

TEST(Minimizer, CountStatements) {
  EXPECT_EQ(countStatements("global g : int\n"
                            "func main() {\n"
                            "entry:\n"
                            "  st g = 1\n"
                            "  t0 = ld g\n"
                            "  print t0\n"
                            "  ret\n"
                            "}\n"),
            3u);
}

TEST(Minimizer, InputNotFailingIsReturnedUnchanged) {
  std::string Text = "global g : int\nfunc main() {\nentry:\n  ret\n}\n";
  std::string Out =
      minimizeModuleText(Text, [](const std::string &) { return false; });
  EXPECT_EQ(Out, Text);
}

/// Replays every checked-in repro under fuzz-repros/ through the full
/// strategy sweep. These files are minimized fuzzer findings from fixed
/// promoter bugs; a regression re-introducing one fails here long before
/// a fuzzing campaign would stumble on it again.
TEST(ReproCorpus, AllReprosPassEveryConfig) {
  namespace fs = std::filesystem;
  fs::path Dir = fs::path(SRP_SOURCE_DIR) / "fuzz-repros";
  ASSERT_TRUE(fs::exists(Dir)) << Dir << " missing";
  unsigned Replayed = 0;
  for (const auto &Entry : fs::directory_iterator(Dir)) {
    if (Entry.path().extension() != ".sir")
      continue;
    std::ifstream In(Entry.path());
    ASSERT_TRUE(In) << "cannot read " << Entry.path();
    std::stringstream Buf;
    Buf << In.rdbuf();
    std::string Text = Buf.str();
    for (const FuzzConfig &FC : fuzzConfigs()) {
      SCOPED_TRACE(Entry.path().filename().string() + " / " + FC.Name);
      valid::OracleOptions Opts;
      Opts.Config = FC.Config;
      for (uint64_t Seed : {1ull, 99ull})
        Opts.FaultPlans.push_back(arch::FaultPlan::fromSeed(Seed));
      valid::OracleReport R = valid::runDiffOracleOnText(Text, Opts);
      EXPECT_TRUE(R.Ok) << valid::mismatchKindName(R.Kind) << ": " << R.Detail
                        << " [" << R.FaultContext << "]";
    }
    ++Replayed;
  }
  EXPECT_GT(Replayed, 0u) << "corpus is empty";
}

} // namespace
