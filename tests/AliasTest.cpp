//===- AliasTest.cpp - Tests for Steensgaard alias analysis ------*- C++ -*-===//

#include "alias/AliasAnalysis.h"
#include "ir/IRBuilder.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace srp;
using namespace srp::ir;
using namespace srp::alias;

namespace {

bool contains(const std::vector<const Symbol *> &Set, const Symbol *Sym) {
  return std::find(Set.begin(), Set.end(), Sym) != Set.end();
}

/// p = &a; *p aliases a, not b.
TEST(SteensgaardTest, AddrOfCreatesPointsTo) {
  Module M;
  Symbol *A = M.createGlobal("a", TypeKind::Int);
  Symbol *B2 = M.createGlobal("b", TypeKind::Int);
  Symbol *P = M.createGlobal("p", TypeKind::Int);
  IRBuilder B(M);
  Function *F = B.startFunction("main");
  unsigned T = B.emitAddrOf(A);
  B.emitStore(directRef(P), Operand::temp(T));
  B.setRet();

  SteensgaardAnalysis AA(M);
  MemRef StarP = indirectRef(P, TypeKind::Int);
  EXPECT_TRUE(AA.mayAlias(StarP, F, directRef(A), F));
  EXPECT_FALSE(AA.mayAlias(StarP, F, directRef(B2), F));
  auto Pointees = AA.mayPointees(StarP, F);
  EXPECT_TRUE(contains(Pointees, A));
  EXPECT_FALSE(contains(Pointees, B2));
}

/// p may point to a or b; Steensgaard unifies both into *p's class.
TEST(SteensgaardTest, TwoTargetsUnify) {
  Module M;
  Symbol *A = M.createGlobal("a", TypeKind::Int);
  Symbol *C = M.createGlobal("c", TypeKind::Int);
  Symbol *P = M.createGlobal("p", TypeKind::Int);
  IRBuilder B(M);
  Function *F = B.startFunction("main");
  unsigned TA = B.emitAddrOf(A);
  unsigned TC = B.emitAddrOf(C);
  B.emitStore(directRef(P), Operand::temp(TA));
  B.emitStore(directRef(P), Operand::temp(TC));
  B.setRet();

  SteensgaardAnalysis AA(M);
  auto Pointees = AA.mayPointees(indirectRef(P, TypeKind::Int), F);
  EXPECT_TRUE(contains(Pointees, A));
  EXPECT_TRUE(contains(Pointees, C));
}

/// Copy propagation: q = p makes *q alias *p's targets.
TEST(SteensgaardTest, CopyUnifiesPointees) {
  Module M;
  Symbol *A = M.createGlobal("a", TypeKind::Int);
  Symbol *P = M.createGlobal("p", TypeKind::Int);
  Symbol *Q = M.createGlobal("q", TypeKind::Int);
  IRBuilder B(M);
  Function *F = B.startFunction("main");
  unsigned TA = B.emitAddrOf(A);
  B.emitStore(directRef(P), Operand::temp(TA));
  unsigned TP = B.emitLoad(directRef(P));
  B.emitStore(directRef(Q), Operand::temp(TP));
  B.setRet();

  SteensgaardAnalysis AA(M);
  MemRef StarQ = indirectRef(Q, TypeKind::Int);
  EXPECT_TRUE(AA.mayAlias(StarQ, F, directRef(A), F));
  EXPECT_TRUE(
      AA.mayAlias(StarQ, F, indirectRef(P, TypeKind::Int), F));
}

/// Pointer arithmetic keeps the points-to class (t = p + 8).
TEST(SteensgaardTest, PointerArithmeticPreservesTargets) {
  Module M;
  Symbol *Arr = M.createGlobal("arr", TypeKind::Int, 8);
  Symbol *P = M.createGlobal("p", TypeKind::Int);
  IRBuilder B(M);
  Function *F = B.startFunction("main");
  unsigned TBase = B.emitAddrOf(Arr);
  unsigned TAdj = B.emitAssign(Opcode::Add, Operand::temp(TBase),
                               Operand::constInt(8));
  B.emitStore(directRef(P), Operand::temp(TAdj));
  B.setRet();

  SteensgaardAnalysis AA(M);
  EXPECT_TRUE(AA.mayAlias(indirectRef(P, TypeKind::Int), F,
                          arrayRef(Arr, Operand::constInt(0)), F));
}

/// Allocation sites name heap objects; distinct sites do not alias.
TEST(SteensgaardTest, HeapSitesAreDistinct) {
  Module M;
  Symbol *P = M.createGlobal("p", TypeKind::Int);
  Symbol *Q = M.createGlobal("q", TypeKind::Int);
  IRBuilder B(M);
  Function *F = B.startFunction("main");
  unsigned T1 = B.emitAlloc(Operand::constInt(4), "site1");
  unsigned T2 = B.emitAlloc(Operand::constInt(4), "site2");
  B.emitStore(directRef(P), Operand::temp(T1));
  B.emitStore(directRef(Q), Operand::temp(T2));
  B.setRet();

  SteensgaardAnalysis AA(M);
  MemRef StarP = indirectRef(P, TypeKind::Int);
  MemRef StarQ = indirectRef(Q, TypeKind::Int);
  EXPECT_FALSE(AA.mayAlias(StarP, F, StarQ, F));
  EXPECT_TRUE(AA.mayAlias(StarP, F, StarP, F));
}

/// A never-address-taken local cannot be reached through any pointer.
TEST(SteensgaardTest, UnreachableLocalNeverAliasesIndirect) {
  Module M;
  Symbol *G = M.createGlobal("g", TypeKind::Int);
  Symbol *P = M.createGlobal("p", TypeKind::Int);
  IRBuilder B(M);
  Function *F = B.startFunction("main");
  Symbol *L = M.createLocal(F, "l", TypeKind::Int);
  unsigned T = B.emitAddrOf(G);
  B.emitStore(directRef(P), Operand::temp(T));
  B.emitStore(directRef(L), Operand::constInt(3));
  B.setRet();

  SteensgaardAnalysis AA(M);
  EXPECT_FALSE(
      AA.mayAlias(indirectRef(P, TypeKind::Int), F, directRef(L), F));
}

/// Direct refs with distinct constant indices never alias; symbolic
/// indices conservatively may.
TEST(SteensgaardTest, DirectIndexDisambiguation) {
  Module M;
  Symbol *Arr = M.createGlobal("arr", TypeKind::Int, 8);
  IRBuilder B(M);
  Function *F = B.startFunction("main");
  B.setRet();

  SteensgaardAnalysis AA(M);
  MemRef I2 = arrayRef(Arr, Operand::constInt(2));
  MemRef I3 = arrayRef(Arr, Operand::constInt(3));
  MemRef IT = arrayRef(Arr, Operand::temp(0));
  EXPECT_FALSE(AA.mayAlias(I2, F, I3, F));
  EXPECT_TRUE(AA.mayAlias(I2, F, I2, F));
  EXPECT_TRUE(AA.mayAlias(I2, F, IT, F));
}

/// Arguments flow into formals: callee's *fp sees caller's target.
TEST(SteensgaardTest, CallArgumentFlow) {
  Module M;
  Symbol *A = M.createGlobal("a", TypeKind::Int);
  IRBuilder B(M);
  Function *Callee = B.startFunction("callee");
  Symbol *FP = M.createLocal(Callee, "fp", TypeKind::Int, 1,
                             /*IsFormal=*/true);
  B.emitStore(indirectRef(FP, TypeKind::Int), Operand::constInt(1));
  B.setRet();

  Function *Main = B.startFunction("main");
  unsigned T = B.emitAddrOf(A);
  B.emitCall(Callee, {Operand::temp(T)});
  B.setRet();

  SteensgaardAnalysis AA(M);
  EXPECT_TRUE(AA.mayAlias(indirectRef(FP, TypeKind::Int), Callee,
                          directRef(A), Main));
}

/// Return values flow back to call results.
TEST(SteensgaardTest, ReturnValueFlow) {
  Module M;
  Symbol *A = M.createGlobal("a", TypeKind::Int);
  Symbol *P = M.createGlobal("p", TypeKind::Int);
  IRBuilder B(M);
  Function *Callee = B.startFunction("getp");
  unsigned TA = B.emitAddrOf(A);
  B.setRet(Operand::temp(TA));

  Function *F = B.startFunction("main");
  unsigned TR = B.emitCall(Callee, {});
  B.emitStore(directRef(P), Operand::temp(TR));
  B.setRet();

  SteensgaardAnalysis AA(M);
  EXPECT_TRUE(
      AA.mayAlias(indirectRef(P, TypeKind::Int), F, directRef(A), F));
}

/// Double indirection chains through two dereference levels.
TEST(SteensgaardTest, DoubleIndirection) {
  Module M;
  Symbol *A = M.createGlobal("a", TypeKind::Int);
  Symbol *P = M.createGlobal("p", TypeKind::Int);
  Symbol *Q = M.createGlobal("q", TypeKind::Int);
  IRBuilder B(M);
  Function *F = B.startFunction("main");
  unsigned TA = B.emitAddrOf(A);
  B.emitStore(directRef(P), Operand::temp(TA));
  unsigned TP = B.emitAddrOf(P);
  B.emitStore(directRef(Q), Operand::temp(TP));
  B.setRet();

  SteensgaardAnalysis AA(M);
  MemRef StarStarQ = doubleIndirectRef(Q, TypeKind::Int);
  MemRef StarQ = indirectRef(Q, TypeKind::Int);
  EXPECT_TRUE(AA.mayAlias(StarStarQ, F, directRef(A), F));
  EXPECT_TRUE(AA.mayAlias(StarQ, F, directRef(P), F));
  EXPECT_FALSE(AA.mayAlias(StarQ, F, directRef(A), F));
}

/// A dereference no address ever flowed into has an empty target set and
/// aliases nothing.
TEST(SteensgaardTest, DanglingDerefHasNoTargets) {
  Module M;
  Symbol *P = M.createGlobal("p", TypeKind::Int);
  Symbol *A = M.createGlobal("a", TypeKind::Int);
  IRBuilder B(M);
  Function *F = B.startFunction("main");
  B.setRet();

  SteensgaardAnalysis AA(M);
  MemRef StarP = indirectRef(P, TypeKind::Int);
  EXPECT_TRUE(AA.mayPointees(StarP, F).empty());
  EXPECT_FALSE(AA.mayAlias(StarP, F, directRef(A), F));
}

TEST(SteensgaardTest, CallClobberClassification) {
  Module M;
  Symbol *G = M.createGlobal("g", TypeKind::Int);
  IRBuilder B(M);
  Function *F = B.startFunction("main");
  Symbol *L = M.createLocal(F, "l", TypeKind::Int);
  Symbol *LA = M.createLocal(F, "la", TypeKind::Int);
  B.emitAddrOf(LA);
  B.setRet();
  Symbol *H = M.createHeapSite("h", TypeKind::Int);

  SteensgaardAnalysis AA(M);
  EXPECT_TRUE(AA.isCallClobbered(G));
  EXPECT_TRUE(AA.isCallClobbered(H));
  EXPECT_TRUE(AA.isCallClobbered(LA));
  EXPECT_FALSE(AA.isCallClobbered(L));
}

/// Locals of another function with no escaping address are filtered from
/// points-to answers.
TEST(SteensgaardTest, PointeeFilteringByScope) {
  Module M;
  Symbol *P = M.createGlobal("p", TypeKind::Int);
  IRBuilder B(M);
  Function *Helper = B.startFunction("helper");
  Symbol *HL = M.createLocal(Helper, "hl", TypeKind::Int);
  unsigned T = B.emitAddrOf(HL);
  B.emitStore(directRef(P), Operand::temp(T));
  B.setRet();
  Function *Main = B.startFunction("main");
  B.setRet();

  SteensgaardAnalysis AA(M);
  // hl escapes via p (address taken), so it stays visible even in main.
  auto Pointees = AA.mayPointees(indirectRef(P, TypeKind::Int), Main);
  EXPECT_TRUE(contains(Pointees, HL));
}

TEST(SteensgaardTest, LocationClassCountReflectsUnification) {
  Module M;
  M.createGlobal("a", TypeKind::Int);
  M.createGlobal("b", TypeKind::Int);
  IRBuilder B(M);
  B.startFunction("main");
  B.setRet();
  SteensgaardAnalysis AA(M);
  // No pointers: every symbol is its own class.
  EXPECT_EQ(AA.numLocationClasses(), 2u);
}

} // namespace
