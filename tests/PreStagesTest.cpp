//===- PreStagesTest.cpp - Per-stage tests for the SSAPRE split ----------------===//
//
// Drives the promotion stages (src/pre/PromotionContext.h) individually:
// builds a function, prepares a PromotionContext exactly the way the
// orchestrator does, then runs PhiInsertion → Rename → DownSafety →
// WillBeAvail and asserts on the intermediate Φ/version webs instead of
// the final IR. PromoterTest covers the end-to-end behaviour; these tests
// pin the stage contracts the split introduced.
//
//===----------------------------------------------------------------------===//

#include "pre/PromotionContext.h"

#include "alias/AliasAnalysis.h"
#include "interp/Interpreter.h"
#include "ir/IRBuilder.h"
#include "pre/Promoter.h"

#include <gtest/gtest.h>

#include <optional>

using namespace srp;
using namespace srp::ir;
using namespace srp::pre;
using namespace srp::pre::detail;

namespace {

/// Builds the analysis state for function 0 of \p M the way
/// promoteFunction does, up to and including candidate collection, and
/// exposes the stages on top of it.
struct StageHarness {
  Module &M;
  PromotionConfig Config;
  interp::AliasProfile AP;
  interp::EdgeProfile EP;
  std::optional<alias::SteensgaardAnalysis> AA;
  std::optional<ssa::DominatorTree> DT;
  std::optional<ssa::LoopInfo> LI;
  std::optional<PromotionContext> Ctx;

  StageHarness(Module &M, const PromotionConfig &Config, bool UseProfile)
      : M(M), Config(Config) {
    for (unsigned I = 0; I < M.numFunctions(); ++I)
      M.function(I)->recomputeCFG();
    if (UseProfile) {
      interp::Interpreter Train(M);
      Train.setAliasProfile(&AP);
      Train.setEdgeProfile(&EP);
      interp::RunResult R = Train.run();
      EXPECT_TRUE(R.Ok) << R.Error;
    }
    AA.emplace(M);
    Function &F = *M.function(0);
    DT.emplace(F);
    LI.emplace(*DT);
    Ctx.emplace(F, *AA, UseProfile ? &AP : nullptr,
                UseProfile ? &EP : nullptr, this->Config, *DT, *LI);
    Ctx->CanonData = Ctx->H.canonicalMap([this](const ssa::ChiRecord &Chi) {
      return Ctx->chiCollapsibleData(Chi);
    });
    Ctx->CanonAddr = Ctx->H.canonicalMap([this](const ssa::ChiRecord &Chi) {
      return Ctx->chiCollapsibleAddr(Chi);
    });
    computeTempDefs(*Ctx);
    collectExpressions(*Ctx);
  }

  /// The candidate for direct loads/stores of \p S; null if none.
  ExprInfo *exprFor(const Symbol *S) {
    for (auto &[Key, E] : Ctx->Exprs)
      if (Key.BaseId == S->Id)
        return &E;
    return nullptr;
  }

  /// Runs PhiInsertion's Φ placement and Rename for \p E.
  ExprWork renameOf(ExprInfo &E) {
    EXPECT_TRUE(exprEligible(*Ctx, E));
    ExprWork W;
    insertPhis(*Ctx, E, W);
    renameExpression(*Ctx, E, W);
    return W;
  }

  /// The Φ of \p W placed in \p BB, or null.
  ExprPhi *phiIn(ExprWork &W, const BasicBlock *BB) {
    for (ExprPhi &Phi : W.Phis)
      if (Phi.BB == BB)
        return &Phi;
    return nullptr;
  }
};

//===----------------------------------------------------------------------===//
// Rename
//===----------------------------------------------------------------------===//

/// a = 1; x = a; y = a — one version for all three occurrences; both
/// loads are redundant (store-load and load-load reuse).
TEST(PreStagesTest, RenameStraightLineReuse) {
  Module M;
  Symbol *A = M.createGlobal("a", TypeKind::Int);
  IRBuilder B(M);
  B.startFunction("main");
  B.emitStore(directRef(A), Operand::constInt(1));
  unsigned T1 = B.emitLoad(directRef(A));
  unsigned T2 = B.emitLoad(directRef(A));
  unsigned TS = B.emitAssign(Opcode::Add, Operand::temp(T1),
                             Operand::temp(T2));
  B.emitPrint(Operand::temp(TS));
  B.setRet();

  StageHarness H(M, PromotionConfig::conservative(), /*UseProfile=*/false);
  ExprInfo *E = H.exprFor(A);
  ASSERT_NE(E, nullptr);
  ASSERT_EQ(E->Occs.size(), 3u);
  ExprWork W = H.renameOf(*E);
  EXPECT_TRUE(W.Phis.empty()) << "straight line needs no expression phi";
  EXPECT_TRUE(E->Occs[0].IsStore);
  EXPECT_TRUE(E->Occs[1].Redundant) << "load after the defining store";
  EXPECT_TRUE(E->Occs[2].Redundant) << "load after an identical load";
  EXPECT_EQ(E->Occs[0].Version, E->Occs[1].Version);
  EXPECT_EQ(E->Occs[1].Version, E->Occs[2].Version);
}

/// a = 1; x = a; a = 2; y = a — the second store starts a new version;
/// each load is redundant with its dominating store, and the two loads
/// carry distinct versions.
TEST(PreStagesTest, RenameStoreStartsNewVersion) {
  Module M;
  Symbol *A = M.createGlobal("a", TypeKind::Int);
  IRBuilder B(M);
  B.startFunction("main");
  B.emitStore(directRef(A), Operand::constInt(1));
  unsigned T1 = B.emitLoad(directRef(A));
  B.emitStore(directRef(A), Operand::constInt(2));
  unsigned T2 = B.emitLoad(directRef(A));
  unsigned TS = B.emitAssign(Opcode::Add, Operand::temp(T1),
                             Operand::temp(T2));
  B.emitPrint(Operand::temp(TS));
  B.setRet();

  StageHarness H(M, PromotionConfig::conservative(), /*UseProfile=*/false);
  ExprInfo *E = H.exprFor(A);
  ASSERT_NE(E, nullptr);
  ASSERT_EQ(E->Occs.size(), 4u);
  ExprWork W = H.renameOf(*E);
  (void)W;
  EXPECT_TRUE(E->Occs[1].Redundant);
  EXPECT_TRUE(E->Occs[3].Redundant);
  EXPECT_EQ(E->Occs[0].Version, E->Occs[1].Version);
  EXPECT_EQ(E->Occs[2].Version, E->Occs[3].Version);
  EXPECT_NE(E->Occs[1].Version, E->Occs[3].Version)
      << "the intervening store must kill the first version";
}

/// Figure 1(a) shape: x = a; *p = ...; y = a with p really pointing
/// elsewhere. Conservatively the χ kills the reuse; with the alias
/// profile and the ALAT strategy, Rename's canonical collapse makes the
/// second load redundant (the speculative reuse the paper promotes).
TEST(PreStagesTest, RenameSpeculativeCollapseAcrossChi) {
  auto BuildFig1a = [](Module &M, Symbol *&A) {
    A = M.createGlobal("a", TypeKind::Int);
    Symbol *B2 = M.createGlobal("b", TypeKind::Int);
    Symbol *P = M.createGlobal("p", TypeKind::Int);
    IRBuilder B(M);
    B.startFunction("main");
    unsigned TA = B.emitAddrOf(A);
    unsigned TB = B.emitAddrOf(B2);
    B.emitStore(directRef(P), Operand::temp(TA));
    B.emitStore(directRef(P), Operand::temp(TB)); // runtime: p = &b
    B.emitStore(directRef(A), Operand::constInt(7));
    unsigned T1 = B.emitLoad(directRef(A));
    B.emitStore(indirectRef(P, TypeKind::Int), Operand::constInt(99));
    unsigned T2 = B.emitLoad(directRef(A));
    unsigned TS = B.emitAssign(Opcode::Add, Operand::temp(T1),
                               Operand::temp(T2));
    B.emitPrint(Operand::temp(TS));
    B.setRet();
  };

  // Conservative: the may-aliasing store breaks the version.
  {
    Module M;
    Symbol *A = nullptr;
    BuildFig1a(M, A);
    StageHarness H(M, PromotionConfig::conservative(), /*UseProfile=*/true);
    ExprInfo *E = H.exprFor(A);
    ASSERT_NE(E, nullptr);
    ASSERT_EQ(E->Occs.size(), 3u); // store a, load, load
    H.renameOf(*E);
    EXPECT_TRUE(E->Occs[1].Redundant);
    EXPECT_FALSE(E->Occs[2].Redundant)
        << "conservative rename must respect the chi";
  }
  // ALAT + profile: the chi is speculatively collapsed.
  {
    Module M;
    Symbol *A = nullptr;
    BuildFig1a(M, A);
    StageHarness H(M, PromotionConfig::alat(), /*UseProfile=*/true);
    ExprInfo *E = H.exprFor(A);
    ASSERT_NE(E, nullptr);
    H.renameOf(*E);
    EXPECT_TRUE(E->Occs[1].Redundant);
    EXPECT_TRUE(E->Occs[2].Redundant)
        << "speculative rename collapses the profiled-cold chi";
    EXPECT_EQ(E->Occs[1].Version, E->Occs[2].Version);
  }
}

//===----------------------------------------------------------------------===//
// DownSafety
//===----------------------------------------------------------------------===//

/// Builds a diamond with a load of `a` in the left arm. \p LoadInJoin
/// adds a load right at the join (Φ down-safe) versus only on one path
/// past a second branch (Φ not down-safe).
struct Diamond {
  Module M;
  Symbol *A = nullptr;
  BasicBlock *Join = nullptr;

  explicit Diamond(bool LoadInJoin) {
    A = M.createGlobal("a", TypeKind::Int);
    Symbol *C = M.createGlobal("c", TypeKind::Int);
    IRBuilder B(M);
    B.startFunction("main");
    B.emitStore(directRef(A), Operand::constInt(3));
    BasicBlock *L = B.createBlock("left");
    BasicBlock *R = B.createBlock("right");
    Join = B.createBlock("join");
    unsigned TC = B.emitLoad(directRef(C));
    B.setCondBr(Operand::temp(TC), L, R);
    B.setBlock(L);
    unsigned T1 = B.emitLoad(directRef(A));
    B.emitPrint(Operand::temp(T1));
    B.setBr(Join);
    B.setBlock(R);
    B.setBr(Join);
    B.setBlock(Join);
    if (LoadInJoin) {
      unsigned T2 = B.emitLoad(directRef(A));
      B.emitPrint(Operand::temp(T2));
      B.setRet();
    } else {
      BasicBlock *K = B.createBlock("cold");
      BasicBlock *X = B.createBlock("exit");
      unsigned TC2 = B.emitLoad(directRef(C));
      B.setCondBr(Operand::temp(TC2), K, X);
      B.setBlock(K);
      unsigned T2 = B.emitLoad(directRef(A));
      B.emitPrint(Operand::temp(T2));
      B.setBr(X);
      B.setBlock(X);
      B.setRet();
    }
  }
};

TEST(PreStagesTest, DownSafeWhenAnticipatedOnAllPaths) {
  Diamond D(/*LoadInJoin=*/true);
  StageHarness H(D.M, PromotionConfig::conservative(), /*UseProfile=*/false);
  ExprInfo *E = H.exprFor(D.A);
  ASSERT_NE(E, nullptr);
  ExprWork W = H.renameOf(*E);
  ExprPhi *Phi = H.phiIn(W, D.Join);
  ASSERT_NE(Phi, nullptr) << "expression phi expected at the join";
  computeDownSafety(*H.Ctx, *E, W);
  EXPECT_TRUE(Phi->DownSafe)
      << "a real occurrence in the phi block anticipates on every path";

  // And the full availability answer: inserting on the right edge makes
  // the join load redundant, so the phi will be available.
  computeWillBeAvail(*H.Ctx, *E, W);
  EXPECT_TRUE(Phi->willBeAvail());
}

TEST(PreStagesTest, NotDownSafeWhenAPathSkipsTheReload) {
  Diamond D(/*LoadInJoin=*/false);
  StageHarness H(D.M, PromotionConfig::conservative(), /*UseProfile=*/false);
  ExprInfo *E = H.exprFor(D.A);
  ASSERT_NE(E, nullptr);
  ExprWork W = H.renameOf(*E);
  ExprPhi *Phi = H.phiIn(W, D.Join);
  ASSERT_NE(Phi, nullptr);
  computeDownSafety(*H.Ctx, *E, W);
  EXPECT_FALSE(Phi->DownSafe)
      << "the join->exit path never evaluates the expression, and "
         "conservative promotion must not speculate an insertion";
}

} // namespace
