//===- AnalysisCacheTest.cpp - Tests for cached analyses --------*- C++ -*-===//

#include "ssa/AnalysisCache.h"

#include "ir/IRBuilder.h"

#include <gtest/gtest.h>

using namespace srp;
using namespace srp::ir;
using namespace srp::ssa;

namespace {

/// entry -> {left, right} -> join -> ret: enough CFG for the dominator
/// tree and loop finder to do real work.
Function *buildDiamond(IRBuilder &B, const char *Name) {
  Function *F = B.startFunction(Name);
  BasicBlock *Left = B.createBlock("left");
  BasicBlock *Right = B.createBlock("right");
  BasicBlock *Join = B.createBlock("join");
  B.setCondBr(Operand::constInt(1), Left, Right);
  B.setBlock(Left);
  B.setBr(Join);
  B.setBlock(Right);
  B.setBr(Join);
  B.setBlock(Join);
  B.setRet();
  return F;
}

TEST(AnalysisCacheTest, HitsAndMisses) {
  Module M;
  IRBuilder B(M);
  Function *F = buildDiamond(B, "main");

  AnalysisCache AC;
  EXPECT_EQ(AC.stats().Hits, 0u);
  EXPECT_EQ(AC.stats().Misses, 0u);

  DominatorTree &DT1 = AC.dominators(*F);
  EXPECT_EQ(AC.stats().Misses, 1u);
  DominatorTree &DT2 = AC.dominators(*F);
  EXPECT_EQ(AC.stats().Hits, 1u);
  EXPECT_EQ(&DT1, &DT2) << "cached analysis must be the same object";

  // Loops piggyback on the cached tree: one more miss, no recompute of
  // the dominator tree.
  AC.loops(*F);
  EXPECT_EQ(AC.stats().Misses, 2u);
  // Each loops() request first hits the cached dominator tree, so a
  // fully cached request counts two hits.
  AC.loops(*F);
  EXPECT_EQ(AC.stats().Hits, 4u);
}

TEST(AnalysisCacheTest, SingleFunctionInvalidation) {
  Module M;
  IRBuilder B(M);
  Function *F = buildDiamond(B, "main");
  Function *G = buildDiamond(B, "helper");

  AnalysisCache AC;
  DominatorTree &FDom = AC.dominators(*F);
  DominatorTree &GDom = AC.dominators(*G);
  EXPECT_EQ(AC.stats().Misses, 2u);
  EXPECT_EQ(AC.generation(*F), 0u);

  // Invalidate F only: G's analysis survives, F's is recomputed.
  AC.invalidate(*F);
  EXPECT_EQ(AC.stats().Invalidations, 1u);
  EXPECT_EQ(AC.generation(*F), 1u);
  EXPECT_EQ(AC.generation(*G), 0u);

  EXPECT_EQ(&AC.dominators(*G), &GDom) << "sibling cache entry dropped";
  EXPECT_EQ(AC.stats().Hits, 1u);

  DominatorTree &FDom2 = AC.dominators(*F);
  EXPECT_EQ(AC.stats().Misses, 3u) << "invalidated entry must recompute";
  (void)FDom;
  (void)FDom2;

  // Per-function attribution for the registry report.
  auto It = AC.invalidationsByFunction().find("main");
  ASSERT_NE(It, AC.invalidationsByFunction().end());
  EXPECT_EQ(It->second, 1u);
  EXPECT_EQ(AC.invalidationsByFunction().count("helper"), 0u);
}

TEST(AnalysisCacheTest, InvalidateAllCountsEachCachedFunction) {
  Module M;
  IRBuilder B(M);
  Function *F = buildDiamond(B, "f");
  Function *G = buildDiamond(B, "g");

  AnalysisCache AC;
  AC.dominators(*F);
  AC.dominators(*G);
  AC.invalidateAll();
  EXPECT_EQ(AC.stats().Invalidations, 2u);
  EXPECT_EQ(AC.generation(*F), 1u);
  EXPECT_EQ(AC.generation(*G), 1u);

  AC.dominators(*F);
  EXPECT_EQ(AC.stats().Misses, 3u);
}

TEST(AnalysisCacheTest, ClearIsSilent) {
  Module M;
  IRBuilder B(M);
  Function *F = buildDiamond(B, "f");

  AnalysisCache AC;
  AC.dominators(*F);
  AC.clear();
  EXPECT_EQ(AC.stats().Invalidations, 0u) << "clear() must not count";
  AC.dominators(*F);
  EXPECT_EQ(AC.stats().Misses, 2u);
}

} // namespace
