//===- TaintFlowTest.cpp - Speculative secret-taint analysis tests -------------===//
//
// The static taint dataflow (analysis/TaintFlow.h), the interpreter's
// shadow-taint mode, and the proof witnesses (analysis/Witness.h): leaky
// programs are flagged with the right sink kind, checked promotions over
// secrets stay clean, the static verdict over-approximates the dynamic
// one, and witness JSON is byte-identical across independent runs.
//
//===----------------------------------------------------------------------===//

#include "analysis/SpecVerifier.h"
#include "analysis/TaintFlow.h"
#include "analysis/Witness.h"

#include "interp/Interpreter.h"
#include "ir/CFG.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "support/OStream.h"

#include <gtest/gtest.h>

using namespace srp;
using namespace srp::analysis;

namespace {

/// Parses \p Text or fails the test.
void parse(std::string_view Text, ir::Module &M) {
  std::string Error;
  ASSERT_TRUE(ir::parseModule(Text, M, Error)) << Error;
}

/// A correct speculative promotion over a secret: the check commits
/// before any use, so no speculative secret ever reaches a sink.
const char *CleanSrc = R"(
global key : int secret
global q : int
global i : int
global acc : int

func main() -> int {
entry:
  t0 = addrof key
  st q = t0
  st key = 7
  st i = 0
  st acc = 0
  t1 = ld<ld.a> key
  br hdr
hdr:
  t2 = ld i
  t3 = cmplt t2, 10
  condbr t3, body, exit
body:
  st *q = 7
  t1 = ld<ld.c.clr> key
  t4 = ld acc
  t5 = add t4, t1
  st acc = t5
  t6 = add t2, 1
  st i = t6
  br hdr
exit:
  t7 = ld acc
  print t7
  ret t7
}
)";

/// The secret indexes an array access before its check commits.
const char *LeakSrc = R"(
global key : int secret
global arr : int[8]
global acc : int

func main() -> int {
entry:
  st arr[3] = 11
  t0 = ld<ld.a> key
  t1 = ld arr[t0]
  t0 = ld<ld.c.clr> key
  t2 = add t1, 1
  st acc = t2
  t3 = ld acc
  ret t3
}
)";

/// The secret is laundered through memory (a chi on *p's pointees) and
/// re-emerges under a different symbol inside the speculative window.
const char *LaunderSrc = R"(
global key : int secret
global slot : int
global p : int
global arr : int[8]
global out : int

func main() -> int {
entry:
  t0 = addrof slot
  st p = t0
  t1 = ld<ld.a> key
  st *p = t1
  t2 = ld slot
  t3 = ld arr[t2]
  t1 = ld<ld.c.clr> key
  st out = t3
  t4 = ld out
  ret t4
}
)";

TEST(TaintFlowTest, SecretAnnotationRoundTrips) {
  ir::Module M;
  parse("global key : int secret\n"
        "global pub : int\n"
        "func main() -> int {\n"
        "entry:\n"
        "  t0 = ld key\n"
        "  ret t0\n"
        "}\n",
        M);
  ASSERT_EQ(M.globals().size(), 2u);
  EXPECT_TRUE(M.globals()[0]->Secret);
  EXPECT_FALSE(M.globals()[1]->Secret);

  std::string Printed = ir::moduleToString(M);
  EXPECT_NE(Printed.find("global key : int secret"), std::string::npos)
      << Printed;
  EXPECT_NE(Printed.find("global pub : int\n"), std::string::npos) << Printed;

  ir::Module M2;
  parse(Printed, M2);
  EXPECT_TRUE(M2.globals()[0]->Secret);
  EXPECT_FALSE(M2.globals()[1]->Secret);
  EXPECT_EQ(ir::moduleToString(M2), Printed) << "print/parse must fixpoint";
}

TEST(TaintFlowTest, NoSecretsIsANoOp) {
  ir::Module M;
  parse("global a : int\n"
        "func main() -> int {\n"
        "entry:\n"
        "  t0 = ld<ld.a> a\n"
        "  t1 = ld a[t0]\n"
        "  t0 = ld<ld.c.clr> a\n"
        "  ret t1\n"
        "}\n",
        M);
  TaintFlow TF(M);
  EXPECT_FALSE(TF.hasSecrets());
  EXPECT_TRUE(TF.diags().empty());
}

TEST(TaintFlowTest, CleanCheckedPromotionHasNoDiags) {
  ir::Module M;
  parse(CleanSrc, M);
  TaintFlow TF(M);
  EXPECT_TRUE(TF.hasSecrets());
  EXPECT_TRUE(TF.diags().empty())
      << formatTaintDiag(TF.diags().front());
}

TEST(TaintFlowTest, SpeculativeSecretAddressFlagged) {
  ir::Module M;
  parse(LeakSrc, M);
  TaintFlow TF(M);
  ASSERT_FALSE(TF.diags().empty());
  const TaintDiag &D = TF.diags().front();
  EXPECT_EQ(D.Kind, TaintDiagKind::SpecSecretAddress);
  EXPECT_EQ(D.FunctionName, "main");
  EXPECT_NE(D.Line, 0u) << "diagnostic must carry a source line";
  EXPECT_NE(D.SpecMask, 0u) << "diagnostic must name the advanced-load site";
  EXPECT_NE(D.StmtText.find("arr[t0]"), std::string::npos) << D.StmtText;
  // file:line rendering for lint output.
  std::string Formatted = formatTaintDiag(D, "leak.sir");
  EXPECT_NE(Formatted.find("leak.sir:"), std::string::npos) << Formatted;
  EXPECT_NE(Formatted.find("[spec-secret-address]"), std::string::npos)
      << Formatted;
}

TEST(TaintFlowTest, ChiMergeLaunderingFlagged) {
  ir::Module M;
  parse(LaunderSrc, M);
  TaintFlow TF(M);
  ASSERT_FALSE(TF.diags().empty());
  EXPECT_EQ(TF.diags().front().Kind, TaintDiagKind::SpecSecretAddress);
  EXPECT_NE(TF.diags().front().StmtText.find("arr[t2]"), std::string::npos)
      << TF.diags().front().StmtText;
}

TEST(TaintFlowTest, SpeculativeSecretBranchFlagged) {
  ir::Module M;
  parse("global key : int secret\n"
        "global acc : int\n"
        "func main() -> int {\n"
        "entry:\n"
        "  t0 = ld<ld.a> key\n"
        "  condbr t0, a, b\n"
        "a:\n"
        "  st acc = 1\n"
        "  br b\n"
        "b:\n"
        "  t0 = ld<ld.c.clr> key\n"
        "  t1 = ld acc\n"
        "  ret t1\n"
        "}\n",
        M);
  TaintFlow TF(M);
  ASSERT_FALSE(TF.diags().empty());
  EXPECT_EQ(TF.diags().front().Kind, TaintDiagKind::SpecSecretBranch);
}

TEST(TaintFlowTest, SpeculativeSecretOutputFlagged) {
  ir::Module M;
  parse("global key : int secret\n"
        "func main() -> int {\n"
        "entry:\n"
        "  t0 = ld<ld.a> key\n"
        "  print t0\n"
        "  t0 = ld<ld.c.clr> key\n"
        "  ret t0\n"
        "}\n",
        M);
  TaintFlow TF(M);
  ASSERT_FALSE(TF.diags().empty());
  EXPECT_EQ(TF.diags().front().Kind, TaintDiagKind::SpecSecretOutput);
}

TEST(TaintFlowTest, CheckedSecretAtSinkIsClean) {
  // The same sinks, but after the check commits: printing a secret is
  // only a finding inside a speculative window.
  ir::Module M;
  parse("global key : int secret\n"
        "func main() -> int {\n"
        "entry:\n"
        "  t0 = ld<ld.a> key\n"
        "  t0 = ld<ld.c.clr> key\n"
        "  print t0\n"
        "  condbr t0, a, b\n"
        "a:\n"
        "  br b\n"
        "b:\n"
        "  ret t0\n"
        "}\n",
        M);
  TaintFlow TF(M);
  EXPECT_TRUE(TF.diags().empty())
      << formatTaintDiag(TF.diags().front());
}

/// Runs the interpreter's shadow-taint mode; requires a successful run.
interp::TaintTrace dynamicTrace(ir::Module &M) {
  interp::TaintTrace TT;
  interp::Interpreter I(M);
  I.setTaintTrace(&TT);
  interp::RunResult R = I.run();
  EXPECT_TRUE(R.Ok) << R.Error;
  return TT;
}

TEST(TaintFlowTest, DynamicOracleAgreesOnLeakAndClean) {
  {
    ir::Module M;
    parse(LeakSrc, M);
    interp::TaintTrace TT = dynamicTrace(M);
    ASSERT_FALSE(TT.Leaks.empty());
    EXPECT_EQ(TT.Leaks.front().S, interp::TaintTrace::Sink::Address);
    EXPECT_NE(TT.Leaks.front().SpecMask, 0u);
  }
  {
    ir::Module M;
    parse(CleanSrc, M);
    interp::TaintTrace TT = dynamicTrace(M);
    EXPECT_TRUE(TT.Leaks.empty());
  }
}

TEST(TaintFlowTest, StaticOverapproximatesDynamic) {
  // The soundness contract the fuzzer enforces at scale: any program the
  // dynamic shadow run flags must also be flagged statically.
  for (const char *Src : {CleanSrc, LeakSrc, LaunderSrc}) {
    ir::Module M;
    parse(Src, M);
    TaintFlow TF(M);
    interp::TaintTrace TT = dynamicTrace(M);
    if (!TT.Leaks.empty()) {
      EXPECT_FALSE(TF.diags().empty())
          << "dynamic leak without a static finding in:\n"
          << Src;
    }
  }
}

/// Full lint-mode witness pipeline on \p Src, serialized to a string.
std::string witnessJSON(const char *Src, bool *Refuted = nullptr) {
  ir::Module M;
  std::string Error;
  if (!ir::parseModule(Src, M, Error)) {
    ADD_FAILURE() << Error;
    return {};
  }
  TaintFlow TF(M);
  std::vector<SpecDiag> SpecDiags = verifySpeculation(M);
  interp::TaintTrace TT;
  interp::Interpreter I(M);
  I.setTaintTrace(&TT);
  interp::RunResult R = I.run();
  EXPECT_TRUE(R.Ok) << R.Error;
  std::vector<Witness> Ws = buildWitnesses(M, TF, SpecDiags, &TT);
  EXPECT_FALSE(Ws.empty()) << "every checking load gets a witness";
  if (Refuted)
    *Refuted = hasRefutedWitness(Ws);
  std::string JSON;
  StringOStream OS(JSON);
  writeWitnesses(Ws, M, TF, OS);
  return JSON;
}

TEST(TaintFlowTest, WitnessCrossValidation) {
  bool Refuted = true;
  std::string Leak = witnessJSON(LeakSrc, &Refuted);
  // Static and dynamic both flag the leak: CONFIRMED, not REFUTED.
  EXPECT_FALSE(Refuted);
  EXPECT_NE(Leak.find("\"status\": \"CONFIRMED\""), std::string::npos) << Leak;
  EXPECT_NE(Leak.find("\"staticLeak\": true"), std::string::npos) << Leak;
  EXPECT_NE(Leak.find("\"dynamicLeak\": true"), std::string::npos) << Leak;

  std::string Clean = witnessJSON(CleanSrc, &Refuted);
  EXPECT_FALSE(Refuted);
  EXPECT_NE(Clean.find("\"staticLeak\": false"), std::string::npos) << Clean;
  EXPECT_NE(Clean.find("\"dynamicLeak\": false"), std::string::npos) << Clean;
  EXPECT_NE(Clean.find("\"invariant\": \"anchored-check\""),
            std::string::npos)
      << Clean;
}

TEST(TaintFlowTest, WitnessJSONIsDeterministic) {
  // Two fully independent runs (fresh module, analysis, interpreter)
  // must serialize byte-identically — the witness files are diffed in CI
  // and across thread counts.
  for (const char *Src : {CleanSrc, LeakSrc, LaunderSrc}) {
    std::string First = witnessJSON(Src);
    std::string Second = witnessJSON(Src);
    EXPECT_FALSE(First.empty());
    EXPECT_EQ(First, Second);
  }
}

TEST(TaintFlowTest, DiagnosticsAreDeterministic) {
  ir::Module M1, M2;
  parse(LaunderSrc, M1);
  parse(LaunderSrc, M2);
  TaintFlow TF1(M1), TF2(M2);
  ASSERT_EQ(TF1.diags().size(), TF2.diags().size());
  for (size_t I = 0; I < TF1.diags().size(); ++I)
    EXPECT_EQ(formatTaintDiag(TF1.diags()[I]), formatTaintDiag(TF2.diags()[I]));
}

} // namespace
