//===- AndersenTest.cpp - Tests for the inclusion-based analysis -*- C++ -*-===//

#include "alias/Andersen.h"

#include "alias/AliasAnalysis.h"
#include "fuzz/RandomProgram.h"
#include "ir/IRBuilder.h"
#include "ir/Parser.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

using namespace srp;
using namespace srp::ir;
using namespace srp::alias;

namespace {

bool contains(const std::vector<const Symbol *> &Set, const Symbol *Sym) {
  return std::find(Set.begin(), Set.end(), Sym) != Set.end();
}

/// The precision case Steensgaard loses: p = &a; q = &b; r = p.
/// Unification merges {a,b} into one class through r; inclusion keeps
/// pts(q) = {b} separate.
TEST(AndersenTest, MorePreciseThanSteensgaard) {
  Module M;
  Symbol *A = M.createGlobal("a", TypeKind::Int);
  Symbol *B2 = M.createGlobal("b", TypeKind::Int);
  Symbol *P = M.createGlobal("p", TypeKind::Int);
  Symbol *Q = M.createGlobal("q", TypeKind::Int);
  Symbol *R = M.createGlobal("r", TypeKind::Int);
  IRBuilder B(M);
  Function *F = B.startFunction("main");
  unsigned TA = B.emitAddrOf(A);
  unsigned TB = B.emitAddrOf(B2);
  B.emitStore(directRef(P), Operand::temp(TA));
  B.emitStore(directRef(Q), Operand::temp(TB));
  unsigned TP = B.emitLoad(directRef(P));
  B.emitStore(directRef(R), Operand::temp(TP)); // r = p
  // The unifier must also see q flow somewhere to merge classes; store
  // q's value into r on a (statically possible) path.
  unsigned TQ = B.emitLoad(directRef(Q));
  B.emitStore(directRef(R), Operand::temp(TQ)); // r = q
  B.setRet();

  AndersenAnalysis AA(M);
  MemRef StarQ = indirectRef(Q, TypeKind::Int);
  auto QPointees = AA.mayPointees(StarQ, F);
  EXPECT_TRUE(contains(QPointees, B2));
  EXPECT_FALSE(contains(QPointees, A))
      << "inclusion keeps q's targets separate from p's";
  // r, fed from both, sees both.
  auto RPointees = AA.mayPointees(indirectRef(R, TypeKind::Int), F);
  EXPECT_TRUE(contains(RPointees, A));
  EXPECT_TRUE(contains(RPointees, B2));

  // Steensgaard, by contrast, merges a and b into q's class.
  SteensgaardAnalysis SA(M);
  auto QSteens = SA.mayPointees(StarQ, F);
  EXPECT_TRUE(contains(QSteens, A))
      << "the unifier's characteristic imprecision";
}

TEST(AndersenTest, BasicAddressFlow) {
  Module M;
  Symbol *A = M.createGlobal("a", TypeKind::Int);
  Symbol *C = M.createGlobal("c", TypeKind::Int);
  Symbol *P = M.createGlobal("p", TypeKind::Int);
  IRBuilder B(M);
  Function *F = B.startFunction("main");
  unsigned TA = B.emitAddrOf(A);
  B.emitStore(directRef(P), Operand::temp(TA));
  B.setRet();

  AndersenAnalysis AA(M);
  MemRef StarP = indirectRef(P, TypeKind::Int);
  EXPECT_TRUE(AA.mayAlias(StarP, F, directRef(A), F));
  EXPECT_FALSE(AA.mayAlias(StarP, F, directRef(C), F));
}

TEST(AndersenTest, IndirectStoreFlow) {
  // *p = &a with p -> q makes *q point at a.
  Module M;
  Symbol *A = M.createGlobal("a", TypeKind::Int);
  Symbol *P = M.createGlobal("p", TypeKind::Int);
  Symbol *Q = M.createGlobal("q", TypeKind::Int);
  IRBuilder B(M);
  Function *F = B.startFunction("main");
  unsigned TQ = B.emitAddrOf(Q);
  B.emitStore(directRef(P), Operand::temp(TQ)); // p = &q
  unsigned TA = B.emitAddrOf(A);
  B.emitStore(indirectRef(P, TypeKind::Int), Operand::temp(TA)); // *p = &a
  B.setRet();

  AndersenAnalysis AA(M);
  EXPECT_TRUE(
      AA.mayAlias(indirectRef(Q, TypeKind::Int), F, directRef(A), F));
  // And through the double indirection **p ~ a.
  EXPECT_TRUE(AA.mayAlias(doubleIndirectRef(P, TypeKind::Int), F,
                          directRef(A), F));
}

TEST(AndersenTest, CallAndReturnFlow) {
  Module M;
  Symbol *A = M.createGlobal("a", TypeKind::Int);
  Symbol *P = M.createGlobal("p", TypeKind::Int);
  IRBuilder B(M);
  Function *Id = B.startFunction("id");
  Symbol *X = M.createLocal(Id, "x", TypeKind::Int, 1, /*IsFormal=*/true);
  unsigned TX = B.emitLoad(directRef(X));
  B.setRet(Operand::temp(TX));

  Function *F = B.startFunction("main");
  unsigned TA = B.emitAddrOf(A);
  unsigned TR = B.emitCall(Id, {Operand::temp(TA)});
  B.emitStore(directRef(P), Operand::temp(TR));
  B.setRet();

  AndersenAnalysis AA(M);
  EXPECT_TRUE(
      AA.mayAlias(indirectRef(P, TypeKind::Int), F, directRef(A), F));
}

TEST(AndersenTest, HeapSitesStayDistinct) {
  Module M;
  Symbol *P = M.createGlobal("p", TypeKind::Int);
  Symbol *Q = M.createGlobal("q", TypeKind::Int);
  IRBuilder B(M);
  Function *F = B.startFunction("main");
  unsigned T1 = B.emitAlloc(Operand::constInt(2), "s1");
  unsigned T2 = B.emitAlloc(Operand::constInt(2), "s2");
  B.emitStore(directRef(P), Operand::temp(T1));
  B.emitStore(directRef(Q), Operand::temp(T2));
  B.setRet();

  AndersenAnalysis AA(M);
  EXPECT_FALSE(AA.mayAlias(indirectRef(P, TypeKind::Int), F,
                           indirectRef(Q, TypeKind::Int), F));
}

/// Soundness envelope: Andersen's answer sets must be subsets of
/// Steensgaard's (both overapproximate the truth; inclusion refines
/// unification).
TEST(AndersenTest, SubsetOfSteensgaard) {
  Module M;
  Symbol *A = M.createGlobal("a", TypeKind::Int);
  Symbol *B2 = M.createGlobal("b", TypeKind::Int);
  Symbol *C = M.createGlobal("c", TypeKind::Int);
  Symbol *P = M.createGlobal("p", TypeKind::Int);
  Symbol *Q = M.createGlobal("q", TypeKind::Int);
  IRBuilder B(M);
  Function *F = B.startFunction("main");
  unsigned TA = B.emitAddrOf(A);
  unsigned TB = B.emitAddrOf(B2);
  unsigned TC = B.emitAddrOf(C);
  B.emitStore(directRef(P), Operand::temp(TA));
  B.emitStore(directRef(P), Operand::temp(TB));
  B.emitStore(directRef(Q), Operand::temp(TC));
  unsigned TP = B.emitLoad(directRef(P));
  B.emitStore(directRef(Q), Operand::temp(TP));
  B.setRet();

  AndersenAnalysis AA(M);
  SteensgaardAnalysis SA(M);
  for (Symbol *Ptr : {P, Q}) {
    MemRef Star = indirectRef(Ptr, TypeKind::Int);
    auto Fine = AA.mayPointees(Star, F);
    auto Coarse = SA.mayPointees(Star, F);
    for (const Symbol *S : Fine)
      EXPECT_TRUE(contains(Coarse, S))
          << Ptr->Name << " -> " << S->Name
          << " found by Andersen but not Steensgaard";
  }
}

//===----------------------------------------------------------------------===//
// Demand-vs-exhaustive differential
//
// The demand solver (Heintze/Tardieu style, used by the lint paths) must
// compute the identical least solution to the exhaustive fixpoint for
// every query. Two layers of checking per program: the external
// EXPECT_EQs below compare the two instances' answers for every symbol
// reference at both dereference depths in every function context, and
// the demand instance runs with CrossCheck so any divergence at *any*
// node solved along the way aborts with a diagnostic even if no external
// query would surface it.
//===----------------------------------------------------------------------===//

void diffDemandVsExhaustive(ir::Module &M, const std::string &Context) {
  AndersenAnalysis Ex(M, AndersenAnalysis::SolveMode::Exhaustive);
  AndersenAnalysis Dm(M, AndersenAnalysis::SolveMode::Demand,
                      /*CrossCheck=*/true);

  std::vector<const Function *> Contexts{nullptr};
  for (unsigned FI = 0; FI < M.numFunctions(); ++FI)
    Contexts.push_back(M.function(FI));

  for (unsigned Id = 0; Id < M.numSymbols(); ++Id) {
    Symbol *S = M.symbol(Id);
    for (unsigned Depth : {1u, 2u}) {
      MemRef Ref = indirectRef(S, TypeKind::Int);
      Ref.Depth = Depth;
      for (const Function *F : Contexts) {
        EXPECT_EQ(Ex.mayPointees(Ref, F), Dm.mayPointees(Ref, F))
            << Context << ": *" << std::string(Depth - 1, '*') << S->Name
            << " in " << (F ? F->getName() : "<global>");
        EXPECT_EQ(Ex.pointsToSetOf(Ref, F), Dm.pointsToSetOf(Ref, F))
            << Context << ": points-to set of " << S->Name;
      }
    }
    EXPECT_EQ(Ex.isCallClobbered(S), Dm.isCallClobbered(S))
        << Context << ": clobber verdict for " << S->Name;
  }
}

TEST(AndersenDifferential, ReproCorpus) {
  namespace fs = std::filesystem;
  fs::path Dir = fs::path(SRP_SOURCE_DIR) / "fuzz-repros";
  ASSERT_TRUE(fs::exists(Dir)) << Dir << " missing";
  unsigned Checked = 0;
  for (const auto &Entry : fs::directory_iterator(Dir)) {
    if (Entry.path().extension() != ".sir")
      continue;
    std::ifstream In(Entry.path());
    ASSERT_TRUE(In) << "cannot read " << Entry.path();
    std::stringstream Buf;
    Buf << In.rdbuf();
    Module M;
    std::string Error;
    ASSERT_TRUE(ir::parseModule(Buf.str(), M, Error))
        << Entry.path() << ": " << Error;
    diffDemandVsExhaustive(M, Entry.path().filename().string());
    ++Checked;
  }
  EXPECT_GT(Checked, 0u) << "corpus is empty";
}

TEST(AndersenDifferential, RandomPrograms) {
  // Seeded, so one failing seed is a stable repro; widen the range when
  // hunting rather than re-rolling these.
  for (uint64_t Seed = 1; Seed <= 500; ++Seed) {
    Module M;
    fuzz::buildRandomProgram(M, Seed);
    diffDemandVsExhaustive(M, "seed " + std::to_string(Seed));
    if (HasFailure())
      FAIL() << "stopping at first failing seed " << Seed;
  }
}

} // namespace
