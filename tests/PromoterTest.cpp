//===- PromoterTest.cpp - Tests for speculative register promotion -*- C++ -===//

#include "pre/Promoter.h"

#include "alias/AliasAnalysis.h"
#include "interp/Interpreter.h"
#include "ir/IRBuilder.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

using namespace srp;
using namespace srp::ir;
using namespace srp::interp;
using namespace srp::pre;

namespace {

RunResult interpret(Module &M) {
  for (unsigned I = 0; I < M.numFunctions(); ++I)
    M.function(I)->recomputeCFG();
  Interpreter Interp(M);
  return Interp.run();
}

/// Runs train profiling, promotes with \p Config, verifies, and checks the
/// output against \p Expected.
PromotionStats promoteAndCheck(Module &M, const PromotionConfig &Config,
                               const RunResult &Expected,
                               bool UseProfile = true) {
  for (unsigned I = 0; I < M.numFunctions(); ++I)
    M.function(I)->recomputeCFG();
  AliasProfile AP;
  EdgeProfile EP;
  Interpreter Train(M);
  Train.setAliasProfile(&AP);
  Train.setEdgeProfile(&EP);
  RunResult TrainResult = Train.run();
  EXPECT_TRUE(TrainResult.Ok) << TrainResult.Error;

  alias::SteensgaardAnalysis AA(M);
  PromotionStats Stats = promoteModule(
      M, AA, UseProfile ? &AP : nullptr, &EP, Config);

  auto Errors = verifyModule(M);
  EXPECT_TRUE(Errors.empty()) << (Errors.empty() ? "" : Errors[0]);
  RunResult After = interpret(M);
  EXPECT_TRUE(After.Ok) << After.Error;
  EXPECT_EQ(After.Output, Expected.Output);
  EXPECT_EQ(After.ExitValue, Expected.ExitValue);
  return Stats;
}

/// Counts statements matching a predicate across the module.
template <typename Pred> unsigned countStmts(Module &M, Pred P) {
  unsigned N = 0;
  for (unsigned FI = 0; FI < M.numFunctions(); ++FI) {
    Function *F = M.function(FI);
    for (unsigned BI = 0; BI < F->numBlocks(); ++BI)
      for (size_t SI = 0; SI < F->block(BI)->size(); ++SI)
        if (P(*F->block(BI)->stmt(SI)))
          ++N;
  }
  return N;
}

unsigned countLoads(Module &M) {
  return countStmts(M, [](const Stmt &S) { return S.isLoad(); });
}

unsigned countFlagged(Module &M, SpecFlag Flag) {
  return countStmts(M, [Flag](const Stmt &S) { return S.Flag == Flag; });
}

//===----------------------------------------------------------------------===//
// Pure redundancy (no aliases at all)
//===----------------------------------------------------------------------===//

/// a = 1; x = a; y = a; print x+y — the second load is fully redundant
/// even conservatively.
TEST(PromoterTest, PureRedundancyEliminatedConservatively) {
  Module M;
  Symbol *A = M.createGlobal("a", TypeKind::Int);
  IRBuilder B(M);
  B.startFunction("main");
  B.emitStore(directRef(A), Operand::constInt(21));
  unsigned T1 = B.emitLoad(directRef(A));
  unsigned T2 = B.emitLoad(directRef(A));
  unsigned TS = B.emitAssign(Opcode::Add, Operand::temp(T1),
                             Operand::temp(T2));
  B.emitPrint(Operand::temp(TS));
  B.setRet();

  RunResult Expected = interpret(M);
  ASSERT_TRUE(Expected.Ok);
  ASSERT_EQ(Expected.Output[0], "42");

  PromotionStats Stats =
      promoteAndCheck(M, PromotionConfig::conservative(), Expected);
  EXPECT_GE(Stats.loadsRemoved(), 2u) << "store-load and load-load reuse";
  EXPECT_EQ(countLoads(M), 0u) << "both loads forwarded from the store";
  EXPECT_EQ(Stats.ChecksInserted, 0u);
}

//===----------------------------------------------------------------------===//
// Figure 1(a): read after read with a may-aliased store in between
//===----------------------------------------------------------------------===//

struct Fig1a {
  Module M;
  Symbol *A, *B2, *P;

  /// Compiler sees p ∈ {&a, &b}; at run time p = &b, so loads of a can be
  /// speculated across *q = ....
  Fig1a() {
    A = M.createGlobal("a", TypeKind::Int);
    B2 = M.createGlobal("b", TypeKind::Int);
    P = M.createGlobal("p", TypeKind::Int);
    IRBuilder B(M);
    B.startFunction("main");
    unsigned TA = B.emitAddrOf(A);
    unsigned TB = B.emitAddrOf(B2);
    B.emitStore(directRef(P), Operand::temp(TA));
    B.emitStore(directRef(P), Operand::temp(TB)); // runtime: p = &b
    B.emitStore(directRef(A), Operand::constInt(7));
    unsigned T1 = B.emitLoad(directRef(A)); // = a + 1
    unsigned U1 = B.emitAssign(Opcode::Add, Operand::temp(T1),
                               Operand::constInt(1));
    B.emitStore(indirectRef(P, TypeKind::Int), Operand::constInt(99));
    unsigned T2 = B.emitLoad(directRef(A)); // = a + 3
    unsigned U2 = B.emitAssign(Opcode::Add, Operand::temp(T2),
                               Operand::constInt(3));
    B.emitPrint(Operand::temp(U1));
    B.emitPrint(Operand::temp(U2));
    B.setRet();
  }
};

TEST(PromoterTest, Fig1aConservativeKeepsBothLoads) {
  Fig1a Fix;
  RunResult Expected = interpret(Fix.M);
  unsigned LoadsBefore = countLoads(Fix.M);
  PromotionStats Stats =
      promoteAndCheck(Fix.M, PromotionConfig::conservative(), Expected);
  // The may-aliased store blocks conservative promotion of the second
  // load of a (the store-load pair before it is still promotable).
  EXPECT_EQ(countFlagged(Fix.M, SpecFlag::LdCnc), 0u);
  EXPECT_EQ(Stats.ChecksInserted, 0u);
  EXPECT_GE(countLoads(Fix.M), LoadsBefore - 2);
}

TEST(PromoterTest, Fig1aAlatSpeculatesAcrossStore) {
  Fig1a Fix;
  RunResult Expected = interpret(Fix.M);
  ASSERT_EQ(Expected.Output[0], "8");
  ASSERT_EQ(Expected.Output[1], "10");
  PromotionStats Stats =
      promoteAndCheck(Fix.M, PromotionConfig::alat(), Expected);
  EXPECT_GE(Stats.LoadsRemovedDirect, 1u);
  // A check statement (ld.c) must sit after the *p store.
  EXPECT_GE(Stats.ChecksInserted, 1u);
  EXPECT_GE(countFlagged(Fix.M, SpecFlag::LdCnc), 1u);
}

/// Same shape but at run time p = &a: the profile reports a collision, so
/// the χ on a is real and ALAT does NOT speculate; the software check can
/// still forward the stored value.
TEST(PromoterTest, Fig1aCollidingProfileUsesForwarding) {
  Module M;
  Symbol *A = M.createGlobal("a", TypeKind::Int);
  Symbol *B2 = M.createGlobal("b", TypeKind::Int);
  Symbol *P = M.createGlobal("p", TypeKind::Int);
  IRBuilder B(M);
  B.startFunction("main");
  unsigned TA = B.emitAddrOf(A);
  unsigned TB = B.emitAddrOf(B2);
  B.emitStore(directRef(P), Operand::temp(TB));
  B.emitStore(directRef(P), Operand::temp(TA)); // runtime: p = &a!
  B.emitStore(directRef(A), Operand::constInt(7));
  unsigned T1 = B.emitLoad(directRef(A));
  B.emitStore(indirectRef(P, TypeKind::Int), Operand::constInt(99));
  unsigned T2 = B.emitLoad(directRef(A));
  B.emitPrint(Operand::temp(T1));
  B.emitPrint(Operand::temp(T2));
  B.setRet();

  RunResult Expected = interpret(M);
  ASSERT_EQ(Expected.Output[0], "7");
  ASSERT_EQ(Expected.Output[1], "99") << "the store really hit a";

  PromotionConfig C = PromotionConfig::alat();
  C.SoftwareCheckIntExprs = true;
  PromotionStats Stats = promoteAndCheck(M, C, Expected);
  // The colliding store cannot be ALAT-speculated (real χ); software
  // forwarding still promotes and keeps the output right.
  EXPECT_GE(Stats.SoftwareChecks, 1u);
}

//===----------------------------------------------------------------------===//
// Figure 1(b): read after write
//===----------------------------------------------------------------------===//

TEST(PromoterTest, Fig1bStoreLoadReuseAcrossAliasedStore) {
  Module M;
  Symbol *A = M.createGlobal("a", TypeKind::Int);
  Symbol *B2 = M.createGlobal("b", TypeKind::Int);
  Symbol *P = M.createGlobal("p", TypeKind::Int);
  IRBuilder B(M);
  B.startFunction("main");
  unsigned TA = B.emitAddrOf(A);
  unsigned TB = B.emitAddrOf(B2);
  B.emitStore(directRef(P), Operand::temp(TA));
  B.emitStore(directRef(P), Operand::temp(TB)); // runtime: p = &b
  B.emitStore(directRef(A), Operand::constInt(5)); // a = 5 (leading write)
  B.emitStore(indirectRef(P, TypeKind::Int), Operand::constInt(99));
  unsigned T = B.emitLoad(directRef(A)); // reuse after aliased store
  B.emitPrint(Operand::temp(T));
  B.setRet();

  RunResult Expected = interpret(M);
  ASSERT_EQ(Expected.Output[0], "5");
  PromotionStats Stats =
      promoteAndCheck(M, PromotionConfig::alat(), Expected);
  EXPECT_GE(Stats.LoadsRemovedDirect, 1u);
  // Figure 1(b): a ld.a after the store secures the ALAT entry.
  EXPECT_GE(Stats.AdvancedLoads, 1u);
  EXPECT_GE(countFlagged(M, SpecFlag::LdA), 1u);
}

TEST(PromoterTest, Fig1bWithStAExtension) {
  Module M;
  Symbol *A = M.createGlobal("a", TypeKind::Int);
  Symbol *B2 = M.createGlobal("b", TypeKind::Int);
  Symbol *P = M.createGlobal("p", TypeKind::Int);
  IRBuilder B(M);
  B.startFunction("main");
  unsigned TA = B.emitAddrOf(A);
  unsigned TB = B.emitAddrOf(B2);
  B.emitStore(directRef(P), Operand::temp(TA));
  B.emitStore(directRef(P), Operand::temp(TB));
  B.emitStore(directRef(A), Operand::constInt(5));
  B.emitStore(indirectRef(P, TypeKind::Int), Operand::constInt(99));
  unsigned T = B.emitLoad(directRef(A));
  B.emitPrint(Operand::temp(T));
  B.setRet();

  RunResult Expected = interpret(M);
  PromotionConfig C = PromotionConfig::alat();
  C.UseStA = true;
  PromotionStats Stats = promoteAndCheck(M, C, Expected);
  EXPECT_GE(Stats.StAStores, 1u);
  // With st.a, no extra ld.a after the store is needed.
  EXPECT_EQ(countFlagged(M, SpecFlag::LdA), 0u);
  EXPECT_EQ(countStmts(M, [](const Stmt &S) { return S.StA; }), 1u);
}

//===----------------------------------------------------------------------===//
// Figure 1(c): multiple reuses
//===----------------------------------------------------------------------===//

TEST(PromoterTest, Fig1cMultipleReusesShareOneTemp) {
  Module M;
  Symbol *A = M.createGlobal("a", TypeKind::Int);
  Symbol *B2 = M.createGlobal("b", TypeKind::Int);
  Symbol *P = M.createGlobal("p", TypeKind::Int);
  Symbol *Q = M.createGlobal("q", TypeKind::Int);
  IRBuilder B(M);
  B.startFunction("main");
  unsigned TA = B.emitAddrOf(A);
  unsigned TB = B.emitAddrOf(B2);
  B.emitStore(directRef(P), Operand::temp(TA));
  B.emitStore(directRef(P), Operand::temp(TB));
  B.emitStore(directRef(Q), Operand::temp(TA));
  B.emitStore(directRef(Q), Operand::temp(TB));
  B.emitStore(directRef(A), Operand::constInt(10));
  unsigned T1 = B.emitLoad(directRef(A));
  B.emitStore(indirectRef(P, TypeKind::Int), Operand::constInt(1));
  unsigned T2 = B.emitLoad(directRef(A));
  B.emitStore(indirectRef(Q, TypeKind::Int), Operand::constInt(2));
  unsigned T3 = B.emitLoad(directRef(A));
  unsigned TS1 = B.emitAssign(Opcode::Add, Operand::temp(T1),
                              Operand::temp(T2));
  unsigned TS2 = B.emitAssign(Opcode::Add, Operand::temp(TS1),
                              Operand::temp(T3));
  B.emitPrint(Operand::temp(TS2));
  B.setRet();

  RunResult Expected = interpret(M);
  ASSERT_EQ(Expected.Output[0], "30");
  PromotionStats Stats =
      promoteAndCheck(M, PromotionConfig::alat(), Expected);
  EXPECT_GE(Stats.LoadsRemovedDirect, 2u);
  // One check after each speculatively ignored store.
  EXPECT_EQ(Stats.ChecksInserted, 2u);
}

TEST(PromoterTest, ChecksAtReusePlacement) {
  // Figure 1's form: the reuse load itself becomes ld.c.nc; no check
  // statement follows the store.
  Fig1a Fix;
  RunResult Expected = interpret(Fix.M);
  PromotionConfig C = PromotionConfig::alat();
  C.ChecksAtReuse = true;
  PromotionStats Stats = promoteAndCheck(Fix.M, C, Expected);
  // The speculative reuse is converted in place (kept as a load with a
  // checking flag), not removed-and-checked-after-the-store: exactly one
  // ld.c.nc, one ld.a, and only the pure store-load reuse counts as a
  // removed load.
  EXPECT_EQ(Stats.ChecksInserted, 1u);
  EXPECT_EQ(countFlagged(Fix.M, SpecFlag::LdCnc), 1u);
  EXPECT_EQ(countFlagged(Fix.M, SpecFlag::LdA), 1u);
  EXPECT_EQ(Stats.LoadsRemovedDirect, 1u);
}

//===----------------------------------------------------------------------===//
// Mis-speculation correctness: train says no alias, ref collides
//===----------------------------------------------------------------------===//

/// The module branches on `mode`: mode=0 (train path) never collides;
/// mode=1 (exercised after promotion) collides. The check must reload.
TEST(PromoterTest, MisSpeculationReloadsCorrectValue) {
  Module M;
  Symbol *Mode = M.createGlobal("mode", TypeKind::Int);
  Symbol *A = M.createGlobal("a", TypeKind::Int);
  Symbol *B2 = M.createGlobal("b", TypeKind::Int);
  Symbol *P = M.createGlobal("p", TypeKind::Int);

  auto Build = [&](Module &Mod, Symbol *SMode, Symbol *SA, Symbol *SB,
                   Symbol *SP) {
    IRBuilder B(Mod);
    B.startFunction("main");
    BasicBlock *SetB = B.createBlock("set_b");
    BasicBlock *SetA = B.createBlock("set_a");
    BasicBlock *Body = B.createBlock("body");
    unsigned TMode = B.emitLoad(directRef(SMode));
    B.setCondBr(Operand::temp(TMode), SetA, SetB);
    B.setBlock(SetB);
    unsigned TB = B.emitAddrOf(SB);
    B.emitStore(directRef(SP), Operand::temp(TB));
    B.setBr(Body);
    B.setBlock(SetA);
    unsigned TA = B.emitAddrOf(SA);
    B.emitStore(directRef(SP), Operand::temp(TA));
    B.setBr(Body);
    B.setBlock(Body);
    B.emitStore(directRef(SA), Operand::constInt(7));
    unsigned T1 = B.emitLoad(directRef(SA));
    B.emitStore(indirectRef(SP, TypeKind::Int), Operand::constInt(99));
    unsigned T2 = B.emitLoad(directRef(SA));
    B.emitPrint(Operand::temp(T1));
    B.emitPrint(Operand::temp(T2));
    B.setRet();
  };
  Build(M, Mode, A, B2, P);

  // Train with mode=0 (no collision): profile says *p only hits b.
  for (unsigned I = 0; I < M.numFunctions(); ++I)
    M.function(I)->recomputeCFG();
  AliasProfile AP;
  Interpreter Train(M);
  Train.setAliasProfile(&AP);
  RunResult TrainR = Train.run();
  ASSERT_TRUE(TrainR.Ok);
  ASSERT_EQ(TrainR.Output[1], "7") << "no collision on the train path";

  alias::SteensgaardAnalysis AA(M);
  PromotionStats Stats =
      promoteModule(M, AA, &AP, nullptr, PromotionConfig::alat());
  EXPECT_GE(Stats.ChecksInserted + Stats.LoadsRemovedDirect, 1u);
  ASSERT_TRUE(verifyModule(M).empty());

  // Now run the promoted code on the colliding path (mode=1 via a=...?).
  // mode lives in memory and is 0-initialized; flip it by prepending a
  // store in entry.
  Function *Main = M.findFunction("main");
  Stmt SetMode;
  SetMode.Kind = StmtKind::Store;
  SetMode.Ref = directRef(Mode);
  SetMode.A = Operand::constInt(1);
  Main->entry()->insertBefore(0, SetMode);
  Main->recomputeCFG();

  RunResult After = interpret(M);
  ASSERT_TRUE(After.Ok) << After.Error;
  ASSERT_EQ(After.Output.size(), 2u);
  EXPECT_EQ(After.Output[0], "7");
  EXPECT_EQ(After.Output[1], "99")
      << "mis-speculated check must reload the clobbered value";
}

//===----------------------------------------------------------------------===//
// Figure 3: speculative loop-invariant promotion
//===----------------------------------------------------------------------===//

struct Fig3 {
  Module M;
  Symbol *A, *C, *P, *Q, *I;
  BasicBlock *Body = nullptr;

  Fig3() {
    A = M.createGlobal("a", TypeKind::Int);
    C = M.createGlobal("c", TypeKind::Int);
    P = M.createGlobal("p", TypeKind::Int);
    Q = M.createGlobal("q", TypeKind::Int);
    I = M.createGlobal("i", TypeKind::Int);
    IRBuilder B(M);
    B.startFunction("main");
    BasicBlock *Hdr = B.createBlock("hdr");
    Body = B.createBlock("body");
    BasicBlock *Exit = B.createBlock("exit");
    unsigned TA = B.emitAddrOf(A);
    unsigned TC = B.emitAddrOf(C);
    // Ambiguity: both pointers may hold both addresses...
    B.emitStore(directRef(P), Operand::temp(TC));
    B.emitStore(directRef(Q), Operand::temp(TA));
    // ...but at run time p=&a, q=&c.
    B.emitStore(directRef(P), Operand::temp(TA));
    B.emitStore(directRef(Q), Operand::temp(TC));
    B.emitStore(directRef(A), Operand::constInt(1000));
    B.emitStore(directRef(I), Operand::constInt(0));
    B.setBr(Hdr);
    B.setBlock(Hdr);
    unsigned TI = B.emitLoad(directRef(I));
    unsigned TCmp = B.emitAssign(Opcode::CmpLt, Operand::temp(TI),
                                 Operand::constInt(50));
    B.setCondBr(Operand::temp(TCmp), Body, Exit);
    B.setBlock(Body);
    // *q = i (possible alias with *p per the compiler)
    B.emitStore(indirectRef(Q, TypeKind::Int), Operand::temp(TI));
    // t = *p + 1, accumulate into c via direct store to keep it simple
    unsigned TP = B.emitLoad(indirectRef(P, TypeKind::Int));
    unsigned TAdd = B.emitAssign(Opcode::Add, Operand::temp(TP),
                                 Operand::temp(TI));
    B.emitPrint(Operand::temp(TAdd));
    unsigned TInc = B.emitAssign(Opcode::Add, Operand::temp(TI),
                                 Operand::constInt(1));
    B.emitStore(directRef(I), Operand::temp(TInc));
    B.setBr(Hdr);
    B.setBlock(Exit);
    B.setRet();
  }
};

TEST(PromoterTest, Fig3LoopInvariantHoistedWithLdSa) {
  Fig3 Fix;
  RunResult Expected = interpret(Fix.M);
  ASSERT_TRUE(Expected.Ok);
  ASSERT_EQ(Expected.Output.size(), 50u);
  ASSERT_EQ(Expected.Output[0], "1000");
  ASSERT_EQ(Expected.Output[49], "1049");

  PromotionStats Stats =
      promoteAndCheck(Fix.M, PromotionConfig::alat(), Expected);
  EXPECT_GE(Stats.LoadsRemovedIndirect, 1u)
      << "the in-loop load of *p must be gone";
  EXPECT_GE(Stats.InsertedLoads, 1u) << "hoisted to the preheader";
  EXPECT_EQ(countFlagged(Fix.M, SpecFlag::LdSA), 1u)
      << "the hoisted load is control+data speculative";
  EXPECT_GE(Stats.ChecksInserted, 1u) << "check after *q = ...";
}

TEST(PromoterTest, Fig3ConservativeDoesNotHoist) {
  Fig3 Fix;
  RunResult Expected = interpret(Fix.M);
  promoteAndCheck(Fix.M, PromotionConfig::conservative(), Expected);
  EXPECT_EQ(countFlagged(Fix.M, SpecFlag::LdSA), 0u);
  EXPECT_EQ(countFlagged(Fix.M, SpecFlag::LdCnc), 0u);
}

//===----------------------------------------------------------------------===//
// Figure 2: partial redundancy under ifs — invala strategy
//===----------------------------------------------------------------------===//

TEST(PromoterTest, Fig2InvalaModeForNonDownSafeReuse) {
  // The Figure 2 diamond lives in a helper called 100 times. Inserting a
  // load on the first if's else edge would execute ~93 times to save ~13
  // reuses — unprofitable — so the pass must use the invala.e strategy:
  // ld.a at the first occurrence, checking load at the second, invala.e
  // at a dominating point.
  Module M;
  Symbol *A = M.createGlobal("a", TypeKind::Int);
  Symbol *B2 = M.createGlobal("b", TypeKind::Int);
  Symbol *P = M.createGlobal("p", TypeKind::Int);
  Symbol *I = M.createGlobal("i", TypeKind::Int);
  Symbol *Acc = M.createGlobal("acc", TypeKind::Int);
  IRBuilder B(M);

  Function *Work = B.startFunction("work");
  {
    BasicBlock *Then1 = B.createBlock("then1");
    BasicBlock *Join1 = B.createBlock("join1");
    BasicBlock *Then2 = B.createBlock("then2");
    BasicBlock *Join2 = B.createBlock("join2");
    unsigned TI = B.emitLoad(directRef(I));
    unsigned TM1 = B.emitAssign(Opcode::Rem, Operand::temp(TI),
                                Operand::constInt(16));
    unsigned TC1 = B.emitAssign(Opcode::CmpEq, Operand::temp(TM1),
                                Operand::constInt(0));
    B.setCondBr(Operand::temp(TC1), Then1, Join1);
    B.setBlock(Then1);
    unsigned T1 = B.emitLoad(directRef(A)); // first occurrence (rare)
    unsigned TAcc = B.emitLoad(directRef(Acc));
    unsigned TS1 = B.emitAssign(Opcode::Add, Operand::temp(TAcc),
                                Operand::temp(T1));
    B.emitStore(directRef(Acc), Operand::temp(TS1));
    B.setBr(Join1);
    B.setBlock(Join1);
    B.emitStore(indirectRef(P, TypeKind::Int), Operand::constInt(77));
    unsigned TI2 = B.emitLoad(directRef(I));
    unsigned TM2 = B.emitAssign(Opcode::Rem, Operand::temp(TI2),
                                Operand::constInt(8));
    unsigned TC2 = B.emitAssign(Opcode::CmpEq, Operand::temp(TM2),
                                Operand::constInt(0));
    B.setCondBr(Operand::temp(TC2), Then2, Join2);
    B.setBlock(Then2);
    unsigned T2 = B.emitLoad(directRef(A)); // partially redundant (rare)
    unsigned TAcc2 = B.emitLoad(directRef(Acc));
    unsigned TS2 = B.emitAssign(Opcode::Add, Operand::temp(TAcc2),
                                Operand::temp(T2));
    B.emitStore(directRef(Acc), Operand::temp(TS2));
    B.setBr(Join2);
    B.setBlock(Join2);
    B.setRet();
  }

  B.startFunction("main");
  {
    BasicBlock *Hdr = B.createBlock("hdr");
    BasicBlock *Body = B.createBlock("body");
    BasicBlock *Exit = B.createBlock("exit");
    unsigned TA = B.emitAddrOf(A);
    unsigned TB = B.emitAddrOf(B2);
    B.emitStore(directRef(P), Operand::temp(TA));
    B.emitStore(directRef(P), Operand::temp(TB)); // runtime p=&b
    B.emitStore(directRef(I), Operand::constInt(0));
    B.setBr(Hdr);
    B.setBlock(Hdr);
    unsigned TI = B.emitLoad(directRef(I));
    unsigned TCmp = B.emitAssign(Opcode::CmpLt, Operand::temp(TI),
                                 Operand::constInt(100));
    B.setCondBr(Operand::temp(TCmp), Body, Exit);
    B.setBlock(Body);
    B.emitCall(Work, {});
    unsigned TI2 = B.emitLoad(directRef(I));
    unsigned TInc = B.emitAssign(Opcode::Add, Operand::temp(TI2),
                                 Operand::constInt(1));
    B.emitStore(directRef(I), Operand::temp(TInc));
    B.setBr(Hdr);
    B.setBlock(Exit);
    unsigned TOut = B.emitLoad(directRef(Acc));
    B.emitPrint(Operand::temp(TOut));
    B.setRet();
  }

  RunResult Expected = interpret(M);
  ASSERT_EQ(Expected.Output.size(), 1u);
  PromotionStats Stats =
      promoteAndCheck(M, PromotionConfig::alat(), Expected);
  EXPECT_GE(Stats.InvalaModeLoads, 1u);
  EXPECT_GE(Stats.InvalaInserted, 1u);
  EXPECT_GE(countStmts(M, [](const Stmt &S) {
              return S.Kind == StmtKind::Invala;
            }),
            1u);
  EXPECT_GE(countFlagged(M, SpecFlag::LdA), 1u)
      << "the first occurrence must allocate the ALAT entry";
}

//===----------------------------------------------------------------------===//
// Cascade (Figure 4): *p with p itself possibly modified
//===----------------------------------------------------------------------===//

struct Fig4 {
  Module M;
  Symbol *A, *B2, *P, *Q;

  Fig4() {
    A = M.createGlobal("a", TypeKind::Int);
    B2 = M.createGlobal("b", TypeKind::Int);
    P = M.createGlobal("p", TypeKind::Int);
    Q = M.createGlobal("q", TypeKind::Int);
    IRBuilder B(M);
    B.startFunction("main");
    unsigned TA = B.emitAddrOf(A);
    unsigned TP = B.emitAddrOf(P);
    unsigned TB = B.emitAddrOf(B2);
    // Compiler: q may point to p or b => *q may modify p (the address).
    B.emitStore(directRef(Q), Operand::temp(TP));
    B.emitStore(directRef(Q), Operand::temp(TB)); // runtime: q = &b
    B.emitStore(directRef(P), Operand::temp(TA));
    B.emitStore(directRef(A), Operand::constInt(11));
    unsigned T1 = B.emitLoad(indirectRef(P, TypeKind::Int)); // = *p + 1
    unsigned U1 = B.emitAssign(Opcode::Add, Operand::temp(T1),
                               Operand::constInt(1));
    B.emitStore(indirectRef(Q, TypeKind::Int), Operand::constInt(1234));
    unsigned T2 = B.emitLoad(indirectRef(P, TypeKind::Int)); // = *p + 3
    unsigned U2 = B.emitAssign(Opcode::Add, Operand::temp(T2),
                               Operand::constInt(3));
    B.emitPrint(Operand::temp(U1));
    B.emitPrint(Operand::temp(U2));
    B.setRet();
  }
};

TEST(PromoterTest, Fig4NoCascadeWithoutFlag) {
  Fig4 Fix;
  RunResult Expected = interpret(Fix.M);
  ASSERT_EQ(Expected.Output[0], "12");
  ASSERT_EQ(Expected.Output[1], "14");
  PromotionConfig C = PromotionConfig::alat();
  C.EnableCascade = false;
  PromotionStats Stats = promoteAndCheck(Fix.M, C, Expected);
  EXPECT_EQ(Stats.CascadeChecks, 0u)
      << "cascade speculation must stay off (paper's implementation)";
  EXPECT_EQ(Stats.LoadsRemovedIndirect, 0u);
}

TEST(PromoterTest, Fig4CascadeUsesChkA) {
  Fig4 Fix;
  RunResult Expected = interpret(Fix.M);
  PromotionConfig C = PromotionConfig::alat();
  C.EnableCascade = true;
  PromotionStats Stats = promoteAndCheck(Fix.M, C, Expected);
  EXPECT_GE(Stats.LoadsRemovedIndirect, 1u);
  EXPECT_GE(Stats.CascadeChecks, 1u);
  EXPECT_GE(countFlagged(Fix.M, SpecFlag::ChkAnc), 1u);
}

/// Cascade mis-speculation: train path doesn't touch p, but the promoted
/// binary runs a path where *q overwrites p; chk.a must recover.
TEST(PromoterTest, CascadeMisSpeculationRecovers) {
  Module M;
  Symbol *Mode = M.createGlobal("mode", TypeKind::Int);
  Symbol *A = M.createGlobal("a", TypeKind::Int);
  Symbol *B2 = M.createGlobal("b", TypeKind::Int);
  Symbol *P = M.createGlobal("p", TypeKind::Int);
  Symbol *Q = M.createGlobal("q", TypeKind::Int);
  IRBuilder B(M);
  B.startFunction("main");
  BasicBlock *QToB = B.createBlock("q_to_b");
  BasicBlock *QToP = B.createBlock("q_to_p");
  BasicBlock *Body = B.createBlock("body");
  unsigned TMode = B.emitLoad(directRef(Mode));
  B.setCondBr(Operand::temp(TMode), QToP, QToB);
  B.setBlock(QToB);
  unsigned TB = B.emitAddrOf(B2);
  B.emitStore(directRef(Q), Operand::temp(TB));
  B.setBr(Body);
  B.setBlock(QToP);
  unsigned TP = B.emitAddrOf(P);
  B.emitStore(directRef(Q), Operand::temp(TP));
  B.setBr(Body);
  B.setBlock(Body);
  unsigned TA = B.emitAddrOf(A);
  B.emitStore(directRef(P), Operand::temp(TA));
  B.emitStore(directRef(A), Operand::constInt(50));
  B.emitStore(directRef(B2), Operand::constInt(60));
  unsigned T1 = B.emitLoad(indirectRef(P, TypeKind::Int));
  // *q = &b: if q==&p this redirects p to b!
  unsigned TB2 = B.emitAddrOf(B2);
  B.emitStore(indirectRef(Q, TypeKind::Int), Operand::temp(TB2));
  unsigned T2 = B.emitLoad(indirectRef(P, TypeKind::Int));
  B.emitPrint(Operand::temp(T1));
  B.emitPrint(Operand::temp(T2));
  B.setRet();

  for (unsigned I = 0; I < M.numFunctions(); ++I)
    M.function(I)->recomputeCFG();
  AliasProfile AP;
  Interpreter Train(M);
  Train.setAliasProfile(&AP);
  ASSERT_TRUE(Train.run().Ok);

  alias::SteensgaardAnalysis AA(M);
  PromotionConfig C = PromotionConfig::alat();
  C.EnableCascade = true;
  promoteModule(M, AA, &AP, nullptr, C);
  ASSERT_TRUE(verifyModule(M).empty());

  // Flip to the colliding path.
  Function *Main = M.findFunction("main");
  Stmt SetMode;
  SetMode.Kind = StmtKind::Store;
  SetMode.Ref = directRef(Mode);
  SetMode.A = Operand::constInt(1);
  Main->entry()->insertBefore(0, SetMode);
  Main->recomputeCFG();

  RunResult After = interpret(M);
  ASSERT_TRUE(After.Ok) << After.Error;
  EXPECT_EQ(After.Output[0], "50");
  EXPECT_EQ(After.Output[1], "60")
      << "after *q redirects p to b, the reuse must see b";
}

//===----------------------------------------------------------------------===//
// Calls are barriers
//===----------------------------------------------------------------------===//

TEST(PromoterTest, CallBlocksPromotionOfGlobals) {
  Module M;
  Symbol *G = M.createGlobal("g", TypeKind::Int);
  IRBuilder B(M);
  Function *Callee = B.startFunction("bump");
  unsigned TG = B.emitLoad(directRef(G));
  unsigned TInc = B.emitAssign(Opcode::Add, Operand::temp(TG),
                               Operand::constInt(1));
  B.emitStore(directRef(G), Operand::temp(TInc));
  B.setRet();

  B.startFunction("main");
  B.emitStore(directRef(G), Operand::constInt(1));
  unsigned T1 = B.emitLoad(directRef(G));
  B.emitCall(Callee, {});
  unsigned T2 = B.emitLoad(directRef(G));
  B.emitPrint(Operand::temp(T1));
  B.emitPrint(Operand::temp(T2));
  B.setRet();

  RunResult Expected = interpret(M);
  ASSERT_EQ(Expected.Output[0], "1");
  ASSERT_EQ(Expected.Output[1], "2");
  promoteAndCheck(M, PromotionConfig::alat(), Expected);
}

//===----------------------------------------------------------------------===//
// Indexed references
//===----------------------------------------------------------------------===//

TEST(PromoterTest, ArrayElementReuseWithSymbolicIndex) {
  Module M;
  Symbol *Arr = M.createGlobal("arr", TypeKind::Int, 16);
  Symbol *Idx = M.createGlobal("idx", TypeKind::Int);
  IRBuilder B(M);
  B.startFunction("main");
  B.emitStore(directRef(Idx), Operand::constInt(3));
  B.emitStore(arrayRef(Arr, Operand::constInt(3)), Operand::constInt(30));
  unsigned TI = B.emitLoad(directRef(Idx));
  unsigned T1 = B.emitLoad(arrayRef(Arr, Operand::temp(TI)));
  unsigned T2 = B.emitLoad(arrayRef(Arr, Operand::temp(TI)));
  unsigned TS = B.emitAssign(Opcode::Add, Operand::temp(T1),
                             Operand::temp(T2));
  B.emitPrint(Operand::temp(TS));
  B.setRet();

  RunResult Expected = interpret(M);
  ASSERT_EQ(Expected.Output[0], "60");
  PromotionStats Stats =
      promoteAndCheck(M, PromotionConfig::conservative(), Expected);
  EXPECT_GE(Stats.LoadsRemovedDirect, 1u);
}

TEST(PromoterTest, ArrayStoreKillsOtherIndices) {
  Module M;
  Symbol *Arr = M.createGlobal("arr", TypeKind::Int, 16);
  Symbol *I = M.createGlobal("i", TypeKind::Int);
  Symbol *J = M.createGlobal("j", TypeKind::Int);
  IRBuilder B(M);
  B.startFunction("main");
  B.emitStore(directRef(I), Operand::constInt(2));
  B.emitStore(directRef(J), Operand::constInt(2));
  unsigned TI = B.emitLoad(directRef(I));
  unsigned TJ = B.emitLoad(directRef(J));
  B.emitStore(arrayRef(Arr, Operand::temp(TI)), Operand::constInt(5));
  unsigned T1 = B.emitLoad(arrayRef(Arr, Operand::temp(TI)));
  // A store through a different index expression: must kill the reuse
  // conservatively (same array), unless checked.
  B.emitStore(arrayRef(Arr, Operand::temp(TJ)), Operand::constInt(9));
  unsigned T2 = B.emitLoad(arrayRef(Arr, Operand::temp(TI)));
  B.emitPrint(Operand::temp(T1));
  B.emitPrint(Operand::temp(T2));
  B.setRet();

  RunResult Expected = interpret(M);
  ASSERT_EQ(Expected.Output[0], "5");
  ASSERT_EQ(Expected.Output[1], "9") << "i == j at run time: collision";
  // Under ALAT the profile sees the collision (real χ), so the reuse is
  // handled by software forwarding or not promoted — output must hold.
  promoteAndCheck(M, PromotionConfig::alat(), Expected);
}

//===----------------------------------------------------------------------===//
// Software strategy alone (baseline O3)
//===----------------------------------------------------------------------===//

TEST(PromoterTest, SoftwareForwardingWithoutProfile) {
  Fig1a Fix;
  RunResult Expected = interpret(Fix.M);
  // No profile at all: software checks still work (they are not
  // speculative — the compare catches both outcomes).
  PromotionConfig C = PromotionConfig::baselineO3();
  C.SoftwareCheckIntExprs = true;
  PromotionStats Stats =
      promoteAndCheck(Fix.M, C, Expected, /*UseProfile=*/false);
  EXPECT_GE(Stats.SoftwareChecks, 1u);
  EXPECT_GE(Stats.LoadsRemovedDirect, 1u);
  EXPECT_EQ(Stats.ChecksInserted, 0u) << "no ALAT in the baseline";
}

TEST(PromoterTest, SoftwareMaxChecksLimit) {
  // Four aliasing stores between def and reuse: beyond the default limit
  // of 2, promotion must decline.
  Module M;
  Symbol *A = M.createGlobal("a", TypeKind::Int);
  Symbol *B2 = M.createGlobal("b", TypeKind::Int);
  Symbol *P = M.createGlobal("p", TypeKind::Int);
  IRBuilder B(M);
  B.startFunction("main");
  unsigned TA = B.emitAddrOf(A);
  unsigned TB = B.emitAddrOf(B2);
  B.emitStore(directRef(P), Operand::temp(TA));
  B.emitStore(directRef(P), Operand::temp(TB));
  B.emitStore(directRef(A), Operand::constInt(5));
  unsigned T1 = B.emitLoad(directRef(A));
  for (int I = 0; I < 4; ++I)
    B.emitStore(indirectRef(P, TypeKind::Int), Operand::constInt(I));
  unsigned T2 = B.emitLoad(directRef(A));
  B.emitPrint(Operand::temp(T1));
  B.emitPrint(Operand::temp(T2));
  B.setRet();

  RunResult Expected = interpret(M);
  PromotionConfig C = PromotionConfig::baselineO3();
  C.SoftwareCheckIntExprs = true;
  PromotionStats Stats =
      promoteAndCheck(M, C, Expected, /*UseProfile=*/false);
  EXPECT_EQ(Stats.SoftwareChecks, 0u);
}

//===----------------------------------------------------------------------===//
// Configuration corners
//===----------------------------------------------------------------------===//

TEST(PromoterTest, DisabledInsertionStillPromotesStraightLine) {
  Fig1a Fix;
  RunResult Expected = interpret(Fix.M);
  PromotionConfig C = PromotionConfig::alat();
  C.EnableInsertion = false;
  PromotionStats Stats = promoteAndCheck(Fix.M, C, Expected);
  // Straight-line redundancy needs no insertions; it must still promote.
  EXPECT_GE(Stats.LoadsRemovedDirect, 1u);
  EXPECT_EQ(Stats.InsertedLoads, 0u);
}

TEST(PromoterTest, DisabledInvalaLeavesPartialRedundancyAlone) {
  // The Fig2 economics with UseInvala off: no invala statements, no
  // in-place checking loads, still correct.
  Module M;
  Symbol *A = M.createGlobal("a", TypeKind::Int);
  Symbol *B2 = M.createGlobal("b", TypeKind::Int);
  Symbol *P = M.createGlobal("p", TypeKind::Int);
  IRBuilder B(M);
  B.startFunction("main");
  BasicBlock *Then = B.createBlock("then");
  BasicBlock *Join = B.createBlock("join");
  BasicBlock *Then2 = B.createBlock("then2");
  BasicBlock *Join2 = B.createBlock("join2");
  unsigned TA = B.emitAddrOf(A);
  unsigned TB = B.emitAddrOf(B2);
  B.emitStore(directRef(P), Operand::temp(TA));
  B.emitStore(directRef(P), Operand::temp(TB));
  unsigned TZ = B.emitLoad(directRef(B2)); // 0: both ifs untaken
  B.setCondBr(Operand::temp(TZ), Then, Join);
  B.setBlock(Then);
  unsigned T1 = B.emitLoad(directRef(A));
  B.emitPrint(Operand::temp(T1));
  B.setBr(Join);
  B.setBlock(Join);
  B.emitStore(indirectRef(P, TypeKind::Int), Operand::constInt(9));
  B.setCondBr(Operand::temp(TZ), Then2, Join2);
  B.setBlock(Then2);
  unsigned T2 = B.emitLoad(directRef(A));
  B.emitPrint(Operand::temp(T2));
  B.setBr(Join2);
  B.setBlock(Join2);
  B.setRet();

  RunResult Expected = interpret(M);
  PromotionConfig C = PromotionConfig::alat();
  C.UseInvala = false;
  C.EnableInsertion = false;
  PromotionStats Stats = promoteAndCheck(M, C, Expected);
  EXPECT_EQ(Stats.InvalaInserted, 0u);
  EXPECT_EQ(Stats.InvalaModeLoads, 0u);
  EXPECT_EQ(countStmts(M, [](const Stmt &S) {
              return S.Kind == StmtKind::Invala;
            }),
            0u);
}

TEST(PromoterTest, CheckCleanupRemovesUnreachedChecks) {
  // A speculated store sits on a path that never reaches the promoted
  // reuse; its check must be cleaned up (no use can observe it).
  Module M;
  Symbol *A = M.createGlobal("a", TypeKind::Int);
  Symbol *B2 = M.createGlobal("b", TypeKind::Int);
  Symbol *P = M.createGlobal("p", TypeKind::Int);
  Symbol *C1 = M.createGlobal("c1", TypeKind::Int);
  IRBuilder B(M);
  B.startFunction("main");
  BasicBlock *Hot = B.createBlock("hot");
  BasicBlock *Cold = B.createBlock("cold");
  BasicBlock *Done = B.createBlock("done");
  unsigned TA = B.emitAddrOf(A);
  unsigned TB = B.emitAddrOf(B2);
  B.emitStore(directRef(P), Operand::temp(TA));
  B.emitStore(directRef(P), Operand::temp(TB));
  B.emitStore(directRef(A), Operand::constInt(4));
  unsigned TC = B.emitLoad(directRef(C1)); // 0 -> cold branch untaken
  B.setCondBr(Operand::temp(TC), Cold, Hot);
  B.setBlock(Hot);
  unsigned T1 = B.emitLoad(directRef(A));
  B.emitStore(indirectRef(P, TypeKind::Int), Operand::constInt(7));
  unsigned T2 = B.emitLoad(directRef(A));
  unsigned TS = B.emitAssign(Opcode::Add, Operand::temp(T1),
                             Operand::temp(T2));
  B.emitPrint(Operand::temp(TS));
  B.setBr(Done);
  B.setBlock(Cold);
  // A store the reuse never follows: any check placed here would be
  // dead (no def of the promoted temp reaches it on this path).
  B.emitStore(indirectRef(P, TypeKind::Int), Operand::constInt(8));
  B.setBr(Done);
  B.setBlock(Done);
  B.setRet();

  RunResult Expected = interpret(M);
  PromotionStats Stats =
      promoteAndCheck(M, PromotionConfig::alat(), Expected);
  EXPECT_GE(Stats.LoadsRemovedDirect, 1u);
  // Either the cold check was never planned (it is not on any reuse's
  // collapse chain) or it was cleaned; either way none survives there.
  const Function *F = M.function(0);
  for (unsigned BI = 0; BI < F->numBlocks(); ++BI) {
    const BasicBlock *BB = F->block(BI);
    if (BB->getName() != "cold")
      continue;
    for (size_t SI = 0; SI < BB->size(); ++SI)
      EXPECT_FALSE(BB->stmt(SI)->isLoad() &&
                   isCheckFlag(BB->stmt(SI)->Flag))
          << "dead check survived on the cold path";
  }
}

TEST(PromoterTest, ConservativeNeverAddsSpeculationMachinery) {
  // Property over a handful of workload-like builds: conservative output
  // contains no flags, no st.a, no invala, no checks at all.
  Fig3 Fix;
  RunResult Expected = interpret(Fix.M);
  promoteAndCheck(Fix.M, PromotionConfig::conservative(), Expected);
  EXPECT_EQ(countStmts(Fix.M, [](const Stmt &S) {
              return S.Flag != SpecFlag::None || S.StA ||
                     S.Kind == StmtKind::Invala;
            }),
            0u);
}

//===----------------------------------------------------------------------===//
// Float expressions
//===----------------------------------------------------------------------===//

TEST(PromoterTest, FloatLoadPromotion) {
  Module M;
  Symbol *X = M.createGlobal("x", TypeKind::Float);
  Symbol *B2 = M.createGlobal("b", TypeKind::Float);
  Symbol *P = M.createGlobal("p", TypeKind::Int);
  IRBuilder B(M);
  B.startFunction("main");
  unsigned TX = B.emitAddrOf(X);
  unsigned TB = B.emitAddrOf(B2);
  B.emitStore(directRef(P), Operand::temp(TX));
  B.emitStore(directRef(P), Operand::temp(TB)); // runtime p=&b
  B.emitStore(directRef(X), Operand::constFloat(1.5));
  unsigned T1 = B.emitLoad(directRef(X));
  MemRef StarP = indirectRef(P, TypeKind::Float);
  B.emitStore(StarP, Operand::constFloat(9.0));
  unsigned T2 = B.emitLoad(directRef(X));
  unsigned TS = B.emitAssign(Opcode::FAdd, Operand::temp(T1),
                             Operand::temp(T2));
  B.emitPrint(Operand::temp(TS));
  B.setRet();

  RunResult Expected = interpret(M);
  ASSERT_EQ(Expected.Output[0], "3");
  PromotionStats Stats =
      promoteAndCheck(M, PromotionConfig::alat(), Expected);
  EXPECT_GE(Stats.LoadsRemovedDirect, 1u);
}

} // namespace
