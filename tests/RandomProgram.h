//===- RandomProgram.h - Random IR program generator -------------*- C++ -*-===//
//
// Part of the srp-alat project (test support).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic random program generator for differential testing. The
/// programs are pointer-heavy by construction: pointer cells are
/// retargeted at random program points (including under branches), so
/// alias profiles genuinely diverge from the static points-to sets, and
/// speculative promotion gets real collisions to survive.
///
/// Guarantees: programs terminate (loops have constant trip counts), pass
/// the verifier (indices are masked, offsets stay in bounds), and print
/// enough state to make any miscompilation observable.
///
//===----------------------------------------------------------------------===//

#ifndef SRP_TESTS_RANDOMPROGRAM_H
#define SRP_TESTS_RANDOMPROGRAM_H

#include "ir/IRBuilder.h"
#include "support/RNG.h"

#include <string>
#include <vector>

namespace srp::testing {

class RandomProgramBuilder {
public:
  RandomProgramBuilder(ir::Module &M, uint64_t Seed)
      : M(M), B(M), Rng(Seed) {}

  void build() {
    using namespace ir;
    for (int I = 0; I < 4; ++I)
      IntScalars.push_back(
          M.createGlobal("g" + std::to_string(I), TypeKind::Int));
    for (int I = 0; I < 2; ++I)
      FloatScalars.push_back(
          M.createGlobal("f" + std::to_string(I), TypeKind::Float));
    Arr = M.createGlobal("arr", TypeKind::Int, 16);
    for (int I = 0; I < 3; ++I)
      Pointers.push_back(
          M.createGlobal("p" + std::to_string(I), TypeKind::Int));

    // Optional helper function exercising the call barrier.
    Helper = B.startFunction("helper");
    Symbol *HArg = M.createLocal(Helper, "x", TypeKind::Int, 1,
                                 /*IsFormal=*/true);
    {
      unsigned TX = B.emitLoad(directRef(HArg));
      unsigned TG = B.emitLoad(directRef(IntScalars[0]));
      unsigned TS = B.emitAssign(Opcode::Add, Operand::temp(TX),
                                 Operand::temp(TG));
      B.emitStore(directRef(IntScalars[1]), Operand::temp(TS));
      B.setRet(Operand::temp(TS));
    }

    B.startFunction("main");
    // Seed every pointer (so dereferences always land somewhere).
    for (Symbol *P : Pointers)
      retargetPointer(P);
    IntTemps.push_back(B.emitAssign(Opcode::Copy, Operand::constInt(1)));
    FloatTemps.push_back(
        B.emitAssign(Opcode::Copy, Operand::constFloat(1.0)));

    genStatements(14 + Rng.nextBelow(10), /*Depth=*/0);

    // Observability tail: print every scalar.
    for (Symbol *G : IntScalars) {
      unsigned T = B.emitLoad(directRef(G));
      B.emitPrint(Operand::temp(T));
    }
    for (Symbol *F : FloatScalars) {
      unsigned T = B.emitLoad(directRef(F));
      B.emitPrint(Operand::temp(T));
    }
    for (int I = 0; I < 16; I += 5) {
      unsigned T =
          B.emitLoad(arrayRef(Arr, ir::Operand::constInt(I)));
      B.emitPrint(Operand::temp(T));
    }
    B.setRet();
  }

private:
  ir::Operand randomIntOperand() {
    if (!IntTemps.empty() && Rng.nextBool(0.7))
      return ir::Operand::temp(
          IntTemps[Rng.nextBelow(IntTemps.size())]);
    return ir::Operand::constInt(Rng.nextInRange(-20, 20));
  }

  ir::Operand randomFloatOperand() {
    if (!FloatTemps.empty() && Rng.nextBool(0.7))
      return ir::Operand::temp(
          FloatTemps[Rng.nextBelow(FloatTemps.size())]);
    return ir::Operand::constFloat(
        static_cast<double>(Rng.nextInRange(-8, 8)) * 0.5);
  }

  /// A random memory reference over the int universe.
  ir::MemRef randomIntRef() {
    using namespace ir;
    switch (Rng.nextBelow(5)) {
    case 0:
      return directRef(IntScalars[Rng.nextBelow(IntScalars.size())]);
    case 1:
      return arrayRef(Arr, Operand::constInt(Rng.nextBelow(16)));
    case 2: {
      // Masked dynamic index.
      unsigned TIdx = B.emitAssign(Opcode::And, randomIntOperand(),
                                   Operand::constInt(15));
      return arrayRef(Arr, Operand::temp(TIdx));
    }
    default:
      return indirectRef(Pointers[Rng.nextBelow(Pointers.size())],
                         TypeKind::Int);
    }
  }

  void retargetPointer(ir::Symbol *P) {
    using namespace ir;
    unsigned TAddr;
    if (Rng.nextBool(0.7)) {
      TAddr =
          B.emitAddrOf(IntScalars[Rng.nextBelow(IntScalars.size())]);
    } else {
      TAddr = B.emitAddrOf(Arr, Operand::constInt(Rng.nextBelow(16)));
    }
    B.emitStore(directRef(P), Operand::temp(TAddr));
  }

  void genStatements(uint64_t Count, unsigned Depth) {
    for (uint64_t I = 0; I < Count; ++I)
      genStatement(Depth);
  }

  void genStatement(unsigned Depth) {
    using namespace ir;
    switch (Rng.nextBelow(12)) {
    case 0: { // int arithmetic
      static const Opcode Ops[] = {Opcode::Add, Opcode::Sub, Opcode::Mul,
                                   Opcode::And, Opcode::Xor,
                                   Opcode::CmpLt};
      IntTemps.push_back(B.emitAssign(Ops[Rng.nextBelow(6)],
                                      randomIntOperand(),
                                      randomIntOperand()));
      break;
    }
    case 1: { // float arithmetic
      static const Opcode Ops[] = {Opcode::FAdd, Opcode::FSub,
                                   Opcode::FMul};
      FloatTemps.push_back(B.emitAssign(Ops[Rng.nextBelow(3)],
                                        randomFloatOperand(),
                                        randomFloatOperand()));
      break;
    }
    case 2: // int load
    case 3:
      IntTemps.push_back(B.emitLoad(randomIntRef()));
      break;
    case 4: // float scalar traffic
      if (Rng.nextBool(0.5))
        FloatTemps.push_back(B.emitLoad(directRef(
            FloatScalars[Rng.nextBelow(FloatScalars.size())])));
      else
        B.emitStore(directRef(FloatScalars[Rng.nextBelow(
                        FloatScalars.size())]),
                    randomFloatOperand());
      break;
    case 5: // int store
    case 6:
      B.emitStore(randomIntRef(), randomIntOperand());
      break;
    case 7: // pointer retarget
      retargetPointer(Pointers[Rng.nextBelow(Pointers.size())]);
      break;
    case 8: // call
      IntTemps.push_back(B.emitCall(Helper, {randomIntOperand()}));
      break;
    case 9: { // if
      if (Depth >= 3) {
        genStatement(Depth); // too deep: substitute something simple
        break;
      }
      unsigned TCond = B.emitAssign(Opcode::And, randomIntOperand(),
                                    Operand::constInt(1));
      BasicBlock *Then = B.createBlock("then" + std::to_string(Counter));
      BasicBlock *Else = B.createBlock("else" + std::to_string(Counter));
      BasicBlock *Join = B.createBlock("join" + std::to_string(Counter));
      ++Counter;
      B.setCondBr(Operand::temp(TCond), Then, Else);
      size_t SavedInt = IntTemps.size(), SavedFloat = FloatTemps.size();
      B.setBlock(Then);
      genStatements(1 + Rng.nextBelow(4), Depth + 1);
      B.setBr(Join);
      // Temps defined inside a branch do not dominate the join.
      IntTemps.resize(SavedInt);
      FloatTemps.resize(SavedFloat);
      B.setBlock(Else);
      genStatements(1 + Rng.nextBelow(3), Depth + 1);
      B.setBr(Join);
      IntTemps.resize(SavedInt);
      FloatTemps.resize(SavedFloat);
      B.setBlock(Join);
      break;
    }
    case 10: { // bounded loop
      if (Depth >= 2) {
        genStatement(Depth);
        break;
      }
      ir::Symbol *IVar = M.createGlobal(
          "li" + std::to_string(Counter), TypeKind::Int);
      BasicBlock *Hdr = B.createBlock("lh" + std::to_string(Counter));
      BasicBlock *Body = B.createBlock("lb" + std::to_string(Counter));
      BasicBlock *Exit = B.createBlock("lx" + std::to_string(Counter));
      ++Counter;
      int64_t Trips = 3 + static_cast<int64_t>(Rng.nextBelow(6));
      B.emitStore(directRef(IVar), Operand::constInt(0));
      B.setBr(Hdr);
      B.setBlock(Hdr);
      unsigned TI = B.emitLoad(directRef(IVar));
      unsigned TC = B.emitAssign(Opcode::CmpLt, Operand::temp(TI),
                                 Operand::constInt(Trips));
      B.setCondBr(Operand::temp(TC), Body, Exit);
      size_t SavedInt = IntTemps.size(), SavedFloat = FloatTemps.size();
      B.setBlock(Body);
      IntTemps.push_back(TI);
      genStatements(2 + Rng.nextBelow(5), Depth + 1);
      unsigned TI2 = B.emitLoad(directRef(IVar));
      unsigned TInc = B.emitAssign(Opcode::Add, Operand::temp(TI2),
                                   Operand::constInt(1));
      B.emitStore(directRef(IVar), Operand::temp(TInc));
      B.setBr(Hdr);
      IntTemps.resize(SavedInt);
      FloatTemps.resize(SavedFloat);
      B.setBlock(Exit);
      break;
    }
    default: // print something
      if (Rng.nextBool(0.5) && !IntTemps.empty())
        B.emitPrint(
            Operand::temp(IntTemps[Rng.nextBelow(IntTemps.size())]));
      else if (!FloatTemps.empty())
        B.emitPrint(Operand::temp(
            FloatTemps[Rng.nextBelow(FloatTemps.size())]));
      break;
    }
  }

  ir::Module &M;
  ir::IRBuilder B;
  RNG Rng;
  std::vector<ir::Symbol *> IntScalars, FloatScalars, Pointers;
  ir::Symbol *Arr = nullptr;
  ir::Function *Helper = nullptr;
  std::vector<unsigned> IntTemps, FloatTemps;
  unsigned Counter = 0;
};

/// Builds a random, terminating, verifier-clean program from \p Seed.
inline void buildRandomProgram(ir::Module &M, uint64_t Seed) {
  RandomProgramBuilder(M, Seed).build();
}

} // namespace srp::testing

#endif // SRP_TESTS_RANDOMPROGRAM_H
