//===- ParserTest.cpp - Tests for the textual IR parser ----------*- C++ -*-===//

#include "ir/Parser.h"

#include "interp/Interpreter.h"
#include "ir/CFG.h"
#include "ir/IRBuilder.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

using namespace srp;
using namespace srp::ir;

namespace {

void parseOrDie(const char *Text, Module &M) {
  std::string Error;
  ASSERT_TRUE(parseModule(Text, M, Error)) << Error;
}

std::vector<std::string> runText(const char *Text) {
  Module M;
  std::string Error;
  EXPECT_TRUE(parseModule(Text, M, Error)) << Error;
  EXPECT_TRUE(verifyModule(M).empty());
  interp::Interpreter I(M);
  auto R = I.run();
  EXPECT_TRUE(R.Ok) << R.Error;
  return R.Output;
}

TEST(ParserTest, MinimalProgram) {
  auto Out = runText(R"(
global a : int
func main() {
entry:
  st a = 41
  t0 = ld a
  t1 = add t0, 1
  print t1
  ret
}
)");
  ASSERT_EQ(Out.size(), 1u);
  EXPECT_EQ(Out[0], "42");
}

TEST(ParserTest, CommentsAndBlanksIgnored) {
  auto Out = runText(R"(
# a comment line
global a : int   # trailing comment

func main() {
entry:
  st a = 5       # store
  t0 = ld a
  print t0
  ret
}
)");
  EXPECT_EQ(Out[0], "5");
}

TEST(ParserTest, ControlFlowAndLoops) {
  auto Out = runText(R"(
global i : int
global sum : int
func main() {
entry:
  st i = 0
  br hdr
hdr:
  t0 = ld i
  t1 = cmplt t0, 10
  condbr t1, body, exit
body:
  t2 = ld sum
  t3 = ld i
  t4 = add t2, t3
  st sum = t4
  t5 = add t3, 1
  st i = t5
  br hdr
exit:
  t6 = ld sum
  print t6
  ret t6
}
)");
  EXPECT_EQ(Out[0], "45");
}

TEST(ParserTest, PointersArraysOffsets) {
  auto Out = runText(R"(
global arr : int[8]
global p : int
func main() {
entry:
  t0 = addrof arr[2]
  st p = t0
  st *p = 7
  st *p{+8} = 9
  t1 = ld arr[2]
  t2 = ld arr[3]
  t3 = add t1, t2
  print t3
  ret
}
)");
  EXPECT_EQ(Out[0], "16");
}

TEST(ParserTest, FloatsAndConversion) {
  auto Out = runText(R"(
global x : float
func main() {
entry:
  st x = 1.5f
  t0 = ld x
  t1 = fmul t0, 4f
  t2 = fptoint t1
  print t2
  ret
}
)");
  EXPECT_EQ(Out[0], "6");
}

TEST(ParserTest, CallsAndFormals) {
  auto Out = runText(R"(
func double(n : int) -> int {
entry:
  t0 = ld n
  t1 = mul t0, 2
  ret t1
}
func main() {
entry:
  t0 = call double(21)
  print t0
  ret
}
)");
  EXPECT_EQ(Out[0], "42");
}

TEST(ParserTest, AllocAndHeap) {
  auto Out = runText(R"(
global p : int
func main() {
entry:
  t0 = alloc 4 @mysite
  st p = t0
  st *p{+16} = 77
  t1 = ld *p{+16}
  print t1
  ret
}
)");
  EXPECT_EQ(Out[0], "77");
}

TEST(ParserTest, SpeculationFlagsRoundTrip) {
  Module M;
  parseOrDie(R"(
global a : int
func main() {
entry:
  invala t0
  t0 = ld<ld.a> a
  t1 = ld<ld.c.nc> a
  print t1
  ret
}
)",
             M);
  const BasicBlock *BB = M.function(0)->entry();
  EXPECT_EQ(BB->stmt(0)->Kind, StmtKind::Invala);
  EXPECT_EQ(BB->stmt(1)->Flag, SpecFlag::LdA);
  EXPECT_EQ(BB->stmt(2)->Flag, SpecFlag::LdCnc);
}

TEST(ParserTest, PrintParseRoundTrip) {
  // Build with the IRBuilder, print, re-parse, and compare outputs.
  Module M;
  Symbol *A = M.createGlobal("a", TypeKind::Int);
  Symbol *Arr = M.createGlobal("arr", TypeKind::Float, 4);
  IRBuilder B(M);
  B.startFunction("main");
  BasicBlock *Then = B.createBlock("then");
  BasicBlock *Join = B.createBlock("join");
  B.emitStore(directRef(A), Operand::constInt(3));
  unsigned T0 = B.emitLoad(directRef(A));
  B.emitStore(arrayRef(Arr, Operand::temp(T0)),
              Operand::constFloat(2.5));
  unsigned TC = B.emitAssign(Opcode::CmpLt, Operand::temp(T0),
                             Operand::constInt(10));
  B.setCondBr(Operand::temp(TC), Then, Join);
  B.setBlock(Then);
  B.emitPrint(Operand::temp(T0));
  B.setBr(Join);
  B.setBlock(Join);
  unsigned TF = B.emitLoad(arrayRef(Arr, Operand::temp(T0)));
  B.emitPrint(Operand::temp(TF));
  B.setRet();
  M.function(0)->recomputeCFG();

  interp::Interpreter I1(M);
  auto Ref = I1.run();
  ASSERT_TRUE(Ref.Ok);

  std::string Text = moduleToString(M);
  Module M2;
  std::string Error;
  ASSERT_TRUE(parseModule(Text, M2, Error)) << Error << "\n" << Text;
  ASSERT_TRUE(verifyModule(M2).empty());
  interp::Interpreter I2(M2);
  auto Out = I2.run();
  ASSERT_TRUE(Out.Ok) << Out.Error;
  EXPECT_EQ(Out.Output, Ref.Output);
}

TEST(ParserTest, ErrorsCarryLineNumbers) {
  Module M;
  std::string Error;
  EXPECT_FALSE(parseModule(R"(
global a : int
func main() {
entry:
  t0 = frobnicate 1, 2
  ret
}
)",
                           M, Error));
  EXPECT_NE(Error.find("line 5"), std::string::npos) << Error;
  EXPECT_NE(Error.find("frobnicate"), std::string::npos);
}

TEST(ParserTest, RejectsUnknownSymbol) {
  Module M;
  std::string Error;
  EXPECT_FALSE(parseModule(R"(
func main() {
entry:
  t0 = ld nothere
  ret
}
)",
                           M, Error));
  EXPECT_NE(Error.find("nothere"), std::string::npos);
}

TEST(ParserTest, RejectsBranchToUnknownLabel) {
  Module M;
  std::string Error;
  EXPECT_FALSE(parseModule(R"(
func main() {
entry:
  br nowhere
}
)",
                           M, Error));
  EXPECT_NE(Error.find("nowhere"), std::string::npos);
}

TEST(ParserTest, RejectsStatementAfterTerminator) {
  Module M;
  std::string Error;
  EXPECT_FALSE(parseModule(R"(
global a : int
func main() {
entry:
  ret
  st a = 1
}
)",
                           M, Error));
  EXPECT_NE(Error.find("after the block terminator"), std::string::npos);
}

} // namespace
