//===- MIRTest.cpp - Machine IR, lowering and regalloc unit tests -*- C++ -===//

#include "codegen/Lowering.h"
#include "codegen/MIR.h"
#include "codegen/RegAlloc.h"

#include "arch/Simulator.h"
#include "interp/Interpreter.h"
#include "ir/IRBuilder.h"

#include <gtest/gtest.h>

using namespace srp;
using namespace srp::ir;
using namespace srp::codegen;

namespace {

TEST(MIRTest, RegisterClassPredicates) {
  EXPECT_TRUE(isFpReg(FpRegBase));
  EXPECT_TRUE(isFpReg(RegRetFp));
  EXPECT_FALSE(isFpReg(RegSP));
  EXPECT_FALSE(isFpReg(FirstVirtualReg));
  EXPECT_TRUE(isVirtualReg(FirstVirtualReg));
  EXPECT_FALSE(isVirtualReg(RegRetInt));
  EXPECT_FALSE(isVirtualReg(NoReg));
}

TEST(MIRTest, InstructionPrinting) {
  MInstr I;
  I.Op = MOp::Add;
  I.Rd = 33;
  I.Rs1 = 34;
  I.HasImm = true;
  I.Imm = -8;
  EXPECT_EQ(minstrToString(I), "add r33 = r34, -8");

  MInstr L;
  L.Op = MOp::LdCNc;
  L.Rd = 40;
  L.Rs1 = 41;
  L.Imm = 16;
  EXPECT_EQ(minstrToString(L), "ld8.c.nc r40 = [r41+16]");

  MInstr S;
  S.Op = MOp::StA;
  S.Rs1 = RegSP;
  S.Imm = -8;
  S.Rs3 = 35;
  S.Rs2 = 36;
  EXPECT_EQ(minstrToString(S), "st8.a [r1-8] = r35, alat(r36)");

  MInstr C;
  C.Op = MOp::ChkA;
  C.Rs1 = 50;
  C.Recovery = 3;
  C.Target = 4;
  EXPECT_EQ(minstrToString(C), "chk.a.nc r50, recover=b3, resume=b4");
}

TEST(MIRTest, SourcesEnumeration) {
  MInstr St;
  St.Op = MOp::St;
  St.Rs1 = 10;
  St.Rs3 = 11;
  unsigned Srcs[3];
  unsigned Count;
  St.sources(Srcs, Count);
  ASSERT_EQ(Count, 2u);
  EXPECT_EQ(Srcs[0], 10u);
  EXPECT_EQ(Srcs[1], 11u);

  MInstr Sel;
  Sel.Op = MOp::Sel;
  Sel.Rs1 = 1;
  Sel.Rs2 = 2;
  Sel.Rs3 = 3;
  Sel.sources(Srcs, Count);
  EXPECT_EQ(Count, 3u);

  MInstr AddImm;
  AddImm.Op = MOp::Add;
  AddImm.Rs1 = 5;
  AddImm.Rs2 = 6;
  AddImm.HasImm = true;
  AddImm.sources(Srcs, Count);
  EXPECT_EQ(Count, 1u) << "immediate form reads only Rs1";
}

/// Lowering sanity: every block of the lowered module ends with a
/// terminator, and virtual registers are gone after allocation.
TEST(MIRTest, LoweringProducesTerminatedBlocks) {
  Module M;
  Symbol *A = M.createGlobal("a", TypeKind::Int);
  IRBuilder B(M);
  B.startFunction("main");
  BasicBlock *Then = B.createBlock("then");
  BasicBlock *Join = B.createBlock("join");
  unsigned T = B.emitLoad(directRef(A));
  B.setCondBr(Operand::temp(T), Then, Join);
  B.setBlock(Then);
  B.emitStore(directRef(A), Operand::constInt(1));
  B.setBr(Join);
  B.setBlock(Join);
  B.emitPrint(Operand::temp(T));
  B.setRet();
  M.function(0)->recomputeCFG();

  auto MM = lowerModule(M);
  for (unsigned FI = 0; FI < MM->numFunctions(); ++FI) {
    const MFunction *F = MM->function(FI);
    for (unsigned BI = 0; BI < F->numBlocks(); ++BI) {
      const MBlock &BB = F->block(BI);
      ASSERT_FALSE(BB.Instrs.empty());
      EXPECT_TRUE(isTerminator(BB.Instrs.back().Op) ||
                  BB.Instrs.back().Op == MOp::Call)
          << "block " << BI << " not terminated";
    }
  }

  allocateRegisters(*MM);
  for (unsigned FI = 0; FI < MM->numFunctions(); ++FI) {
    const MFunction *F = MM->function(FI);
    for (unsigned BI = 0; BI < F->numBlocks(); ++BI)
      for (const MInstr &I : F->block(BI).Instrs) {
        EXPECT_FALSE(isVirtualReg(I.Rd));
        EXPECT_FALSE(isVirtualReg(I.Rs1));
        if (!I.HasImm) {
          EXPECT_FALSE(isVirtualReg(I.Rs2));
        }
        EXPECT_FALSE(isVirtualReg(I.Rs3));
      }
  }
}

TEST(MIRTest, FrameOpenPatchedAfterAllocation) {
  Module M;
  IRBuilder B(M);
  Function *F = B.startFunction("main");
  M.createLocal(F, "x", TypeKind::Int, 10);
  B.setRet();
  M.function(0)->recomputeCFG();

  auto MM = lowerModule(M);
  allocateRegisters(*MM);
  const MFunction *MF = MM->function(0);
  // Prologue: save FP, set FP, open frame.
  const MBlock &Entry = MF->block(0);
  ASSERT_GE(Entry.Instrs.size(), 3u);
  const MInstr &Open = Entry.Instrs[2];
  EXPECT_EQ(Open.Op, MOp::Add);
  EXPECT_EQ(Open.Rd, RegSP);
  EXPECT_EQ(Open.Imm, -static_cast<int64_t>(MF->frameSize()));
  EXPECT_GE(MF->frameSize(), 80u) << "10-element local plus save slot";
}

/// Loop-carried liveness: a value defined before a loop and used inside
/// must survive allocation even with heavy pressure.
TEST(MIRTest, LoopCarriedValueSurvivesTinyPool) {
  Module M;
  Symbol *I = M.createGlobal("i", TypeKind::Int);
  IRBuilder B(M);
  B.startFunction("main");
  BasicBlock *Hdr = B.createBlock("hdr");
  BasicBlock *Body = B.createBlock("body");
  BasicBlock *Exit = B.createBlock("exit");
  unsigned TInvariant = B.emitAssign(Opcode::Copy, Operand::constInt(7));
  B.emitStore(directRef(I), Operand::constInt(0));
  B.setBr(Hdr);
  B.setBlock(Hdr);
  unsigned TI = B.emitLoad(directRef(I));
  unsigned TC = B.emitAssign(Opcode::CmpLt, Operand::temp(TI),
                             Operand::constInt(5));
  B.setCondBr(Operand::temp(TC), Body, Exit);
  B.setBlock(Body);
  // Eight simultaneously live temps to exhaust a 5-register pool.
  std::vector<unsigned> Vals;
  for (int K = 0; K < 8; ++K)
    Vals.push_back(B.emitAssign(Opcode::Add, Operand::temp(TI),
                                Operand::constInt(K * 13)));
  Operand Acc = Operand::temp(Vals[0]);
  for (int K = 1; K < 8; ++K) {
    unsigned T = B.emitAssign(Opcode::Add, Acc, Operand::temp(Vals[K]));
    Acc = Operand::temp(T);
  }
  B.emitPrint(Acc);
  B.emitPrint(Operand::temp(TInvariant)); // must still be 7
  unsigned TInc = B.emitAssign(Opcode::Add, Operand::temp(TI),
                               Operand::constInt(1));
  B.emitStore(directRef(I), Operand::temp(TInc));
  B.setBr(Hdr);
  B.setBlock(Exit);
  B.setRet();
  M.function(0)->recomputeCFG();

  interp::Interpreter Ref(M);
  auto Expected = Ref.run();
  ASSERT_TRUE(Expected.Ok);

  auto MM = lowerModule(M);
  RegAllocOptions RA;
  RA.IntPoolSize = 5;
  RegAllocStats Stats = allocateRegisters(*MM, RA);
  EXPECT_GT(Stats.SpilledRegs, 0u) << "the test should force spills";
  auto Sim = arch::simulate(*MM, arch::SimConfig());
  ASSERT_TRUE(Sim.Ok) << Sim.Error;
  EXPECT_EQ(Sim.Output, Expected.Output);
}

TEST(MIRTest, MaxPressureReported) {
  Module M;
  IRBuilder B(M);
  B.startFunction("main");
  std::vector<unsigned> Temps;
  for (int K = 0; K < 6; ++K)
    Temps.push_back(
        B.emitAssign(Opcode::Copy, Operand::constInt(K)));
  Operand Acc = Operand::temp(Temps[0]);
  for (int K = 1; K < 6; ++K) {
    unsigned T = B.emitAssign(Opcode::Add, Acc, Operand::temp(Temps[K]));
    Acc = Operand::temp(T);
  }
  B.emitPrint(Acc);
  B.setRet();
  M.function(0)->recomputeCFG();

  auto MM = lowerModule(M);
  RegAllocStats Stats = allocateRegisters(*MM);
  EXPECT_GE(Stats.MaxIntPressure, 6u);
  EXPECT_EQ(Stats.SpilledRegs, 0u);
}

} // namespace
