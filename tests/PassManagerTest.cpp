//===- PassManagerTest.cpp - Pass manager and analysis cache tests -------------===//
//
// The pass-composition contract of runPipeline: the standard pass list,
// per-pass timing in PipelineResult::Timings, --disable-pass semantics
// (graceful diagnostics when a dependency is missing), and the analysis
// cache's hit/invalidation behaviour.
//
//===----------------------------------------------------------------------===//

#include "core/Pass.h"

#include "ir/IRBuilder.h"
#include "ssa/AnalysisCache.h"
#include "workloads/LoopHelper.h"

#include <gtest/gtest.h>

using namespace srp;
using namespace srp::core;
using namespace srp::ir;

namespace {

/// A loop-invariant load kernel — small, but enough for every pass to do
/// real work.
Workload tinyWorkload() {
  Workload W;
  W.Name = "tiny";
  W.TrainScale = 1;
  W.RefScale = 2;
  W.Build = [](Module &M, uint64_t Scale) {
    const int64_t N = static_cast<int64_t>(50 * Scale);
    Symbol *Cell = M.createGlobal("cell", TypeKind::Int);
    Symbol *I = M.createGlobal("i", TypeKind::Int);
    Symbol *Acc = M.createGlobal("acc", TypeKind::Int);
    IRBuilder B(M);
    B.startFunction("main");
    B.emitStore(directRef(Cell), Operand::constInt(5));
    workloads::LoopCtx L =
        workloads::beginLoop(B, I, Operand::constInt(N));
    {
      unsigned T = B.emitLoad(directRef(Cell));
      unsigned TAcc = B.emitLoad(directRef(Acc));
      unsigned TNew = B.emitAssign(Opcode::Add, Operand::temp(TAcc),
                                   Operand::temp(T));
      B.emitStore(directRef(Acc), Operand::temp(TNew));
    }
    workloads::endLoop(B, L);
    unsigned TOut = B.emitLoad(directRef(Acc));
    B.emitPrint(Operand::temp(TOut));
    B.setRet(Operand::temp(TOut));
  };
  return W;
}

TEST(PassManagerTest, StandardPassList) {
  std::vector<std::string> Names = standardPassNames();
  std::vector<std::string> Expected = {"build",     "profile",
                                       "promote",   "specverify",
                                       "taintflow", "lower",
                                       "regalloc",  "simulate"};
  EXPECT_EQ(Names, Expected);

  PassManager PM;
  addStandardPasses(PM);
  for (const std::string &Name : Names) {
    const Pass *P = PM.find(Name);
    ASSERT_NE(P, nullptr) << Name;
    EXPECT_FALSE(P->description().empty()) << Name;
  }
  EXPECT_EQ(PM.find("nonexistent"), nullptr);
}

TEST(PassManagerTest, TimingsCoverEveryPassThatRan) {
  Workload W = tinyWorkload();
  PipelineResult R = runPipeline(W, configFor(pre::PromotionConfig::alat()));
  ASSERT_TRUE(R.Ok) << R.Error;
  std::vector<std::string> Expected = standardPassNames();
  ASSERT_EQ(R.Timings.size(), Expected.size());
  for (size_t I = 0; I < Expected.size(); ++I)
    EXPECT_EQ(R.Timings[I].Name, Expected[I]);
}

TEST(PassManagerTest, DisabledPassIsSkipped) {
  Workload W = tinyWorkload();
  PipelineConfig C = configFor(pre::PromotionConfig::alat());
  C.DisabledPasses = {"promote"};
  PipelineResult R = runPipeline(W, C);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Promotion.PromotedExprs, 0u);
  for (const PipelineResult::PassTiming &T : R.Timings)
    EXPECT_NE(T.Name, "promote");
  // The unpromoted program still simulates correctly.
  EXPECT_EQ(R.Output, oracleOutput(W));
}

TEST(PassManagerTest, DisablingADependencyFailsGracefully) {
  Workload W = tinyWorkload();
  PipelineConfig C = configFor(pre::PromotionConfig::alat());
  C.DisabledPasses = {"lower"};
  PipelineResult R = runPipeline(W, C);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("lower disabled"), std::string::npos) << R.Error;
}

TEST(PassManagerTest, DisablingSimulateLeavesNoOutput) {
  Workload W = tinyWorkload();
  PipelineConfig C = configFor(pre::PromotionConfig::alat());
  C.DisabledPasses = {"simulate"};
  PipelineResult R = runPipeline(W, C);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_TRUE(R.Output.empty());
}

TEST(PassManagerTest, AnalysisCacheHitsAndInvalidation) {
  Module M;
  Symbol *A = M.createGlobal("a", TypeKind::Int);
  IRBuilder B(M);
  B.startFunction("main");
  unsigned T = B.emitLoad(directRef(A));
  B.emitPrint(Operand::temp(T));
  B.setRet();
  Function &F = *M.function(0);
  F.recomputeCFG();

  ssa::AnalysisCache Cache;
  const ssa::DominatorTree &DT1 = Cache.dominators(F);
  const ssa::DominatorTree &DT2 = Cache.dominators(F);
  EXPECT_EQ(&DT1, &DT2) << "second query must hit the cache";
  Cache.loops(F);
  ssa::AnalysisCache::CacheStats S = Cache.stats();
  EXPECT_EQ(S.Misses, 2u) << "one dominator build, one loop build";
  EXPECT_GE(S.Hits, 1u);

  Cache.invalidate(F);
  const ssa::DominatorTree &DT3 = Cache.dominators(F);
  (void)DT3;
  S = Cache.stats();
  EXPECT_EQ(S.Invalidations, 1u);
  EXPECT_EQ(S.Misses, 3u) << "invalidation forces a rebuild";
}

} // namespace
