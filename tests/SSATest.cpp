//===- SSATest.cpp - Tests for dominators, loops and HSSA --------*- C++ -*-===//

#include "ssa/Dominators.h"
#include "ssa/HSSA.h"

#include "alias/AliasAnalysis.h"
#include "interp/Interpreter.h"
#include "ir/IRBuilder.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

using namespace srp;
using namespace srp::ir;
using namespace srp::ssa;

namespace {

/// Diamond CFG: entry -> {left, right} -> join.
struct Diamond {
  Module M;
  Function *F;
  BasicBlock *Entry, *Left, *Right, *Join;

  Diamond() {
    IRBuilder B(M);
    F = B.startFunction("main");
    Entry = B.block();
    Left = B.createBlock("left");
    Right = B.createBlock("right");
    Join = B.createBlock("join");
    B.setCondBr(Operand::constInt(1), Left, Right);
    B.setBlock(Left);
    B.setBr(Join);
    B.setBlock(Right);
    B.setBr(Join);
    B.setBlock(Join);
    B.setRet();
    F->recomputeCFG();
  }
};

TEST(DominatorTest, DiamondIdoms) {
  Diamond D;
  DominatorTree DT(*D.F);
  EXPECT_EQ(DT.idom(D.Entry), nullptr);
  EXPECT_EQ(DT.idom(D.Left), D.Entry);
  EXPECT_EQ(DT.idom(D.Right), D.Entry);
  EXPECT_EQ(DT.idom(D.Join), D.Entry);
  EXPECT_TRUE(DT.dominates(D.Entry, D.Join));
  EXPECT_TRUE(DT.dominates(D.Join, D.Join));
  EXPECT_FALSE(DT.dominates(D.Left, D.Join));
}

TEST(DominatorTest, DiamondFrontiers) {
  Diamond D;
  DominatorTree DT(*D.F);
  ASSERT_EQ(DT.frontier(D.Left).size(), 1u);
  EXPECT_EQ(DT.frontier(D.Left)[0], D.Join);
  ASSERT_EQ(DT.frontier(D.Right).size(), 1u);
  EXPECT_TRUE(DT.frontier(D.Entry).empty());
  EXPECT_TRUE(DT.frontier(D.Join).empty());
}

TEST(DominatorTest, IteratedFrontier) {
  Diamond D;
  DominatorTree DT(*D.F);
  auto IDF = DT.iteratedFrontier({D.Left});
  ASSERT_EQ(IDF.size(), 1u);
  EXPECT_EQ(IDF[0], D.Join);
}

TEST(DominatorTest, RpoStartsAtEntry) {
  Diamond D;
  DominatorTree DT(*D.F);
  ASSERT_EQ(DT.rpo().size(), 4u);
  EXPECT_EQ(DT.rpo().front(), D.Entry);
  EXPECT_EQ(DT.rpo().back(), D.Join);
}

TEST(DominatorTest, UnreachableBlockDetected) {
  Module M;
  IRBuilder B(M);
  Function *F = B.startFunction("main");
  BasicBlock *Dead = B.createBlock("dead");
  B.setRet();
  B.setBlock(Dead);
  B.setRet();
  F->recomputeCFG();
  DominatorTree DT(*F);
  EXPECT_TRUE(DT.isReachable(F->entry()));
  EXPECT_FALSE(DT.isReachable(Dead));
}

/// Simple while loop: entry -> hdr; hdr -> {body, exit}; body -> hdr.
struct SimpleLoop {
  Module M;
  Function *F;
  BasicBlock *Entry, *Hdr, *Body, *Exit;
  Symbol *I;

  SimpleLoop() {
    I = M.createGlobal("i", TypeKind::Int);
    IRBuilder B(M);
    F = B.startFunction("main");
    Entry = B.block();
    Hdr = B.createBlock("hdr");
    Body = B.createBlock("body");
    Exit = B.createBlock("exit");
    B.emitStore(directRef(I), Operand::constInt(0));
    B.setBr(Hdr);
    B.setBlock(Hdr);
    unsigned TI = B.emitLoad(directRef(I));
    unsigned TC = B.emitAssign(Opcode::CmpLt, Operand::temp(TI),
                               Operand::constInt(10));
    B.setCondBr(Operand::temp(TC), Body, Exit);
    B.setBlock(Body);
    unsigned TI2 = B.emitLoad(directRef(I));
    unsigned TInc = B.emitAssign(Opcode::Add, Operand::temp(TI2),
                                 Operand::constInt(1));
    B.emitStore(directRef(I), Operand::temp(TInc));
    B.setBr(Hdr);
    B.setBlock(Exit);
    B.setRet();
    F->recomputeCFG();
  }
};

TEST(LoopInfoTest, FindsNaturalLoop) {
  SimpleLoop L;
  DominatorTree DT(*L.F);
  LoopInfo LI(DT);
  ASSERT_EQ(LI.loops().size(), 1u);
  const LoopInfo::Loop *Loop = LI.loopFor(L.Body);
  ASSERT_NE(Loop, nullptr);
  EXPECT_EQ(Loop->Header, L.Hdr);
  EXPECT_EQ(Loop->Depth, 1u);
  EXPECT_TRUE(Loop->contains(L.Hdr));
  EXPECT_TRUE(Loop->contains(L.Body));
  EXPECT_FALSE(Loop->contains(L.Exit));
  EXPECT_EQ(LI.loopFor(L.Exit), nullptr);
  EXPECT_EQ(LI.preheader(*Loop), L.Entry);
}

TEST(LoopInfoTest, NestedLoopDepths) {
  Module M;
  IRBuilder B(M);
  Function *F = B.startFunction("main");
  BasicBlock *OuterHdr = B.createBlock("outer");
  BasicBlock *InnerHdr = B.createBlock("inner");
  BasicBlock *InnerBody = B.createBlock("ibody");
  BasicBlock *OuterLatch = B.createBlock("olatch");
  BasicBlock *Exit = B.createBlock("exit");
  B.setBr(OuterHdr);
  B.setBlock(OuterHdr);
  B.setBr(InnerHdr);
  B.setBlock(InnerHdr);
  B.setCondBr(Operand::constInt(1), InnerBody, OuterLatch);
  B.setBlock(InnerBody);
  B.setBr(InnerHdr);
  B.setBlock(OuterLatch);
  B.setCondBr(Operand::constInt(1), OuterHdr, Exit);
  B.setBlock(Exit);
  B.setRet();
  F->recomputeCFG();

  DominatorTree DT(*F);
  LoopInfo LI(DT);
  ASSERT_EQ(LI.loops().size(), 2u);
  const LoopInfo::Loop *Inner = LI.loopFor(InnerBody);
  ASSERT_NE(Inner, nullptr);
  EXPECT_EQ(Inner->Header, InnerHdr);
  EXPECT_EQ(Inner->Depth, 2u);
  ASSERT_NE(Inner->Parent, nullptr);
  EXPECT_EQ(Inner->Parent->Header, OuterHdr);
}

//===----------------------------------------------------------------------===//
// HSSA
//===----------------------------------------------------------------------===//

/// Fixture: a = ...; *p = ...; ... = a, with p possibly pointing to a.
/// This is exactly Figure 6's shape.
struct Fig6 {
  Module M;
  Function *F = nullptr;
  Symbol *A, *B2, *P;
  Stmt *StoreA = nullptr, *StoreStarP = nullptr;
  Stmt *Load1 = nullptr, *Load2 = nullptr;

  /// \p PointeeOfP decides which symbol p actually holds at run time.
  explicit Fig6(bool PToA) {
    A = M.createGlobal("a", TypeKind::Int);
    B2 = M.createGlobal("b", TypeKind::Int);
    P = M.createGlobal("p", TypeKind::Int);
    IRBuilder B(M);
    F = B.startFunction("main");
    // p = &a or &b (compiler sees both: store both, overwrite).
    unsigned TA = B.emitAddrOf(A);
    unsigned TB = B.emitAddrOf(B2);
    B.emitStore(directRef(P), Operand::temp(TA));
    B.emitStore(directRef(P), Operand::temp(TB));
    if (PToA)
      B.emitStore(directRef(P), Operand::temp(TA));
    else
      B.emitStore(directRef(P), Operand::temp(TB));
    // a = 5
    Stmt SA;
    SA.Kind = StmtKind::Store;
    SA.Ref = directRef(A);
    SA.A = Operand::constInt(5);
    StoreA = B.block()->append(SA);
    // t1 = a  (first occurrence)
    unsigned T1 = B.emitLoad(directRef(A));
    Load1 = B.block()->stmt(B.block()->size() - 1);
    // *p = 7
    Stmt SP;
    SP.Kind = StmtKind::Store;
    SP.Ref = indirectRef(P, TypeKind::Int);
    SP.A = Operand::constInt(7);
    StoreStarP = B.block()->append(SP);
    // t2 = a  (second occurrence)
    unsigned T2 = B.emitLoad(directRef(A));
    Load2 = B.block()->stmt(B.block()->size() - 1);
    B.emitPrint(Operand::temp(T1));
    B.emitPrint(Operand::temp(T2));
    B.setRet();
    F->recomputeCFG();
  }
};

TEST(HSSATest, ChiInsertedForMayAliasedStore) {
  Fig6 Fix(/*PToA=*/true);
  DominatorTree DT(*Fix.F);
  alias::SteensgaardAnalysis AA(Fix.M);
  HSSA H(*Fix.F, DT, AA, /*Profile=*/nullptr);

  // The indirect store must carry χs on a and b (may-pointees).
  const auto &ChiIdx = H.chiIndicesOf(Fix.StoreStarP);
  ObjectId ObjA = H.symbolObject(Fix.A);
  ObjectId ObjB = H.symbolObject(Fix.B2);
  ASSERT_NE(ObjA, InvalidObject);
  bool SawA = false, SawB = false;
  for (unsigned I : ChiIdx) {
    const ChiRecord &Chi = H.chi(I);
    SawA |= Chi.Obj == ObjA;
    SawB |= Chi.Obj == ObjB;
    EXPECT_FALSE(Chi.Spec) << "no profile: every chi is real";
  }
  EXPECT_TRUE(SawA);
  EXPECT_TRUE(SawB);
}

TEST(HSSATest, VersionsChangeAcrossAliasedStore) {
  Fig6 Fix(/*PToA=*/true);
  DominatorTree DT(*Fix.F);
  alias::SteensgaardAnalysis AA(Fix.M);
  HSSA H(*Fix.F, DT, AA, nullptr);

  const StmtAccess *Acc1 = H.accessInfo(Fix.Load1);
  const StmtAccess *Acc2 = H.accessInfo(Fix.Load2);
  ASSERT_NE(Acc1, nullptr);
  ASSERT_NE(Acc2, nullptr);
  // Without a profile the two loads of `a` see different versions
  // (killed by the χ at *p = ...).
  EXPECT_NE(Acc1->dataVer(), Acc2->dataVer());
  // And canonicalization must not collapse them.
  ObjectId ObjA = H.symbolObject(Fix.A);
  EXPECT_NE(H.specCanonicalVersion(ObjA, Acc1->dataVer()),
            H.specCanonicalVersion(ObjA, Acc2->dataVer()));
}

/// Runs the train input through the interpreter to collect the profile.
interp::AliasProfile profileOf(Module &M) {
  interp::AliasProfile AP;
  interp::Interpreter I(M);
  I.setAliasProfile(&AP);
  auto R = I.run();
  EXPECT_TRUE(R.Ok) << R.Error;
  return AP;
}

TEST(HSSATest, SpeculativeChiWhenProfileDisagrees) {
  // At run time p points to b, so the χ on a at `*p = ...` is marked
  // speculative and the two loads of `a` become speculatively identical
  // (Figure 6(b)).
  Fig6 Fix(/*PToA=*/false);
  interp::AliasProfile AP = profileOf(Fix.M);
  DominatorTree DT(*Fix.F);
  alias::SteensgaardAnalysis AA(Fix.M);
  HSSA H(*Fix.F, DT, AA, &AP);

  ObjectId ObjA = H.symbolObject(Fix.A);
  ObjectId ObjB = H.symbolObject(Fix.B2);
  bool FoundSpecA = false;
  for (unsigned I : H.chiIndicesOf(Fix.StoreStarP)) {
    const ChiRecord &Chi = H.chi(I);
    if (Chi.Obj == ObjA) {
      EXPECT_TRUE(Chi.Spec);
      FoundSpecA = true;
    }
    if (Chi.Obj == ObjB) {
      EXPECT_FALSE(Chi.Spec) << "b was actually written";
    }
  }
  EXPECT_TRUE(FoundSpecA);

  const StmtAccess *Acc1 = H.accessInfo(Fix.Load1);
  const StmtAccess *Acc2 = H.accessInfo(Fix.Load2);
  EXPECT_NE(Acc1->dataVer(), Acc2->dataVer());
  EXPECT_EQ(H.specCanonicalVersion(ObjA, Acc1->dataVer()),
            H.specCanonicalVersion(ObjA, Acc2->dataVer()));
}

TEST(HSSATest, SpeculatedChisListsIgnoredStores) {
  Fig6 Fix(/*PToA=*/false);
  interp::AliasProfile AP = profileOf(Fix.M);
  DominatorTree DT(*Fix.F);
  alias::SteensgaardAnalysis AA(Fix.M);
  HSSA H(*Fix.F, DT, AA, &AP);

  ObjectId ObjA = H.symbolObject(Fix.A);
  const StmtAccess *Acc2 = H.accessInfo(Fix.Load2);
  unsigned Canon = H.specCanonicalVersion(ObjA, Acc2->dataVer());
  auto Spec = H.speculatedChis(ObjA, Canon);
  ASSERT_EQ(Spec.size(), 1u);
  EXPECT_EQ(Spec[0]->S, Fix.StoreStarP);
}

TEST(HSSATest, StoreDefinesNewVersionUsedByLoad) {
  Module M;
  Symbol *A = M.createGlobal("a", TypeKind::Int);
  IRBuilder B(M);
  Function *F = B.startFunction("main");
  Stmt SA;
  SA.Kind = StmtKind::Store;
  SA.Ref = directRef(A);
  SA.A = Operand::constInt(1);
  Stmt *Store = B.block()->append(SA);
  unsigned T = B.emitLoad(directRef(A));
  (void)T;
  Stmt *Load = B.block()->stmt(1);
  B.setRet();
  F->recomputeCFG();

  DominatorTree DT(*F);
  alias::SteensgaardAnalysis AA(M);
  HSSA H(*F, DT, AA, nullptr);
  const StmtAccess *SAcc = H.accessInfo(Store);
  const StmtAccess *LAcc = H.accessInfo(Load);
  ASSERT_NE(SAcc, nullptr);
  ASSERT_NE(LAcc, nullptr);
  EXPECT_EQ(SAcc->DefVer, LAcc->dataVer());
  EXPECT_NE(SAcc->dataVer(), SAcc->DefVer);
}

TEST(HSSATest, PhiInsertedAtJoinForStoredSymbol) {
  // Store to a on one side of a diamond only: join needs a φ.
  Module M;
  Symbol *A = M.createGlobal("a", TypeKind::Int);
  IRBuilder B(M);
  Function *F = B.startFunction("main");
  BasicBlock *Left = B.createBlock("left");
  BasicBlock *Right = B.createBlock("right");
  BasicBlock *Join = B.createBlock("join");
  B.setCondBr(Operand::constInt(1), Left, Right);
  B.setBlock(Left);
  B.emitStore(directRef(A), Operand::constInt(1));
  B.setBr(Join);
  B.setBlock(Right);
  B.setBr(Join);
  B.setBlock(Join);
  unsigned T = B.emitLoad(directRef(A));
  (void)T;
  B.setRet();
  F->recomputeCFG();

  DominatorTree DT(*F);
  alias::SteensgaardAnalysis AA(M);
  HSSA H(*F, DT, AA, nullptr);
  ObjectId ObjA = H.symbolObject(A);
  const auto &Phis = H.phisOf(Join);
  bool Found = false;
  for (const PhiRecord &Phi : Phis) {
    if (Phi.Obj != ObjA)
      continue;
    Found = true;
    ASSERT_EQ(Phi.Args.size(), 2u);
    EXPECT_NE(Phi.Args[0], Phi.Args[1]);
    // The φ merges two really-different versions: canonical is itself.
    EXPECT_EQ(H.specCanonicalVersion(ObjA, Phi.DefVer), Phi.DefVer);
  }
  EXPECT_TRUE(Found);
}

TEST(HSSATest, CallClobbersGlobalsNonSpeculatively) {
  Module M;
  Symbol *G = M.createGlobal("g", TypeKind::Int);
  IRBuilder B(M);
  Function *Callee = B.startFunction("callee");
  B.emitStore(directRef(G), Operand::constInt(1));
  B.setRet();
  Function *F = B.startFunction("main");
  unsigned T1 = B.emitLoad(directRef(G));
  Stmt *Call = nullptr;
  {
    Stmt SC;
    SC.Kind = StmtKind::Call;
    SC.Callee = Callee;
    Call = B.block()->append(SC);
  }
  unsigned T2 = B.emitLoad(directRef(G));
  B.emitPrint(Operand::temp(T1));
  B.emitPrint(Operand::temp(T2));
  B.setRet();
  F->recomputeCFG();

  interp::AliasProfile AP = profileOf(M);
  DominatorTree DT(*F);
  alias::SteensgaardAnalysis AA(M);
  HSSA H(*F, DT, AA, &AP);
  ObjectId ObjG = H.symbolObject(G);
  bool Found = false;
  for (unsigned I : H.chiIndicesOf(Call)) {
    if (H.chi(I).Obj == ObjG) {
      Found = true;
      EXPECT_FALSE(H.chi(I).Spec) << "call chis are never speculative";
    }
  }
  EXPECT_TRUE(Found);
}

TEST(HSSATest, LoopPhiCollapsesUnderSpeculation) {
  // while (...) { *q = ...; t = *p + 1 }  where p and q never actually
  // alias: the loop-header φ of v(*p) must collapse to the preheader
  // version (Figure 3's enabling condition).
  Module M;
  Symbol *A = M.createGlobal("a", TypeKind::Int);
  Symbol *C = M.createGlobal("c", TypeKind::Int);
  Symbol *P = M.createGlobal("p", TypeKind::Int);
  Symbol *Q = M.createGlobal("q", TypeKind::Int);
  Symbol *I = M.createGlobal("i", TypeKind::Int);
  IRBuilder B(M);
  Function *F = B.startFunction("main");
  BasicBlock *Hdr = B.createBlock("hdr");
  BasicBlock *Body = B.createBlock("body");
  BasicBlock *Exit = B.createBlock("exit");
  // Compiler must think p,q can alias: both get &a and &c.
  unsigned TA = B.emitAddrOf(A);
  unsigned TC = B.emitAddrOf(C);
  B.emitStore(directRef(P), Operand::temp(TA));
  B.emitStore(directRef(Q), Operand::temp(TC));
  B.emitStore(directRef(P), Operand::temp(TA)); // runtime: p=&a
  B.emitStore(directRef(Q), Operand::temp(TC)); // runtime: q=&c
  B.emitStore(directRef(I), Operand::constInt(0));
  B.setBr(Hdr);
  B.setBlock(Hdr);
  unsigned TI = B.emitLoad(directRef(I));
  unsigned TCmp = B.emitAssign(Opcode::CmpLt, Operand::temp(TI),
                               Operand::constInt(4));
  B.setCondBr(Operand::temp(TCmp), Body, Exit);
  B.setBlock(Body);
  B.emitStore(indirectRef(Q, TypeKind::Int), Operand::temp(TI));
  unsigned TP = B.emitLoad(indirectRef(P, TypeKind::Int));
  Stmt *LoadStarP = B.block()->stmt(B.block()->size() - 1);
  unsigned TAdd = B.emitAssign(Opcode::Add, Operand::temp(TP),
                               Operand::constInt(1));
  B.emitStore(directRef(A), Operand::temp(TAdd)); // feeds *p next iter
  unsigned TInc = B.emitAssign(Opcode::Add, Operand::temp(TI),
                               Operand::constInt(1));
  B.emitStore(directRef(I), Operand::temp(TInc));
  B.setBr(Hdr);
  B.setBlock(Exit);
  B.setRet();
  F->recomputeCFG();

  // Note: a IS written in the loop (feeds *p), so v(*p) has a real χ from
  // the direct store to a; only the *q store's χ is speculative. The φ
  // therefore does NOT collapse here. Rebuild without the store to a:
  // simpler scenario below.
  Module M2;
  Symbol *A2 = M2.createGlobal("a", TypeKind::Int);
  Symbol *C2 = M2.createGlobal("c", TypeKind::Int);
  Symbol *P2 = M2.createGlobal("p", TypeKind::Int);
  Symbol *Q2 = M2.createGlobal("q", TypeKind::Int);
  Symbol *I2 = M2.createGlobal("i", TypeKind::Int);
  IRBuilder B2(M2);
  Function *F2 = B2.startFunction("main");
  BasicBlock *Hdr2 = B2.createBlock("hdr");
  BasicBlock *Body2 = B2.createBlock("body");
  BasicBlock *Exit2 = B2.createBlock("exit");
  unsigned TA2 = B2.emitAddrOf(A2);
  unsigned TC2 = B2.emitAddrOf(C2);
  // Static ambiguity: both pointers see both addresses...
  B2.emitStore(directRef(P2), Operand::temp(TC2));
  B2.emitStore(directRef(Q2), Operand::temp(TA2));
  // ...but at run time p = &a and q = &c, so they never collide.
  B2.emitStore(directRef(P2), Operand::temp(TA2));
  B2.emitStore(directRef(Q2), Operand::temp(TC2));
  B2.emitStore(directRef(I2), Operand::constInt(0));
  B2.setBr(Hdr2);
  B2.setBlock(Hdr2);
  unsigned TI2 = B2.emitLoad(directRef(I2));
  unsigned TCmp2 = B2.emitAssign(Opcode::CmpLt, Operand::temp(TI2),
                                 Operand::constInt(4));
  B2.setCondBr(Operand::temp(TCmp2), Body2, Exit2);
  B2.setBlock(Body2);
  B2.emitStore(indirectRef(Q2, TypeKind::Int), Operand::temp(TI2));
  unsigned TP2 = B2.emitLoad(indirectRef(P2, TypeKind::Int));
  Stmt *LoadStarP2 = B2.block()->stmt(B2.block()->size() - 1);
  B2.emitPrint(Operand::temp(TP2));
  unsigned TInc2 = B2.emitAssign(Opcode::Add, Operand::temp(TI2),
                                 Operand::constInt(1));
  B2.emitStore(directRef(I2), Operand::temp(TInc2));
  B2.setBr(Hdr2);
  B2.setBlock(Exit2);
  B2.setRet();
  F2->recomputeCFG();

  interp::AliasProfile AP = profileOf(M2);
  DominatorTree DT2(*F2);
  alias::SteensgaardAnalysis AA2(M2);
  HSSA H(*F2, DT2, AA2, &AP);

  const StmtAccess *Acc = H.accessInfo(LoadStarP2);
  ASSERT_NE(Acc, nullptr);
  ObjectId VV = Acc->dataObj();
  EXPECT_TRUE(H.object(VV).isVirtual());
  unsigned VerInLoop = Acc->dataVer();
  unsigned VerPrehdr = H.versionAtExit(F2->entry(), VV);
  EXPECT_NE(VerInLoop, VerPrehdr);
  EXPECT_EQ(H.specCanonicalVersion(VV, VerInLoop),
            H.specCanonicalVersion(VV, VerPrehdr));
  (void)LoadStarP;
  (void)F;
}

TEST(HSSATest, CanonicalMapPredicateControlsCollapse) {
  // The parameterizable collapse: with a collapse-nothing predicate the
  // map is the identity; with collapse-everything even real χs vanish.
  Fig6 Fix(/*PToA=*/false);
  interp::AliasProfile AP = profileOf(Fix.M);
  DominatorTree DT(*Fix.F);
  alias::SteensgaardAnalysis AA(Fix.M);
  HSSA H(*Fix.F, DT, AA, &AP);

  ObjectId ObjA = H.symbolObject(Fix.A);
  ObjectId ObjB = H.symbolObject(Fix.B2);
  const StmtAccess *Acc1 = H.accessInfo(Fix.Load1);
  const StmtAccess *Acc2 = H.accessInfo(Fix.Load2);

  auto None = H.canonicalMap([](const ChiRecord &) { return false; });
  for (ObjectId Obj = 0; Obj < H.numObjects(); ++Obj)
    for (unsigned V = 0; V < H.numVersions(Obj); ++V)
      if (H.origin(Obj, V).K != VersionOrigin::Kind::Phi) {
        EXPECT_EQ(None[Obj][V], V);
      }
  EXPECT_NE(None[ObjA][Acc1->dataVer()], None[ObjA][Acc2->dataVer()]);

  auto All = H.canonicalMap([](const ChiRecord &Chi) {
    return Chi.S && Chi.S->isStore();
  });
  EXPECT_EQ(All[ObjA][Acc1->dataVer()], All[ObjA][Acc2->dataVer()]);
  // b was really written, but writes through *p are store-χs on b too,
  // so the collapse-all map folds b's χ version as well.
  (void)ObjB;

  // The built-in speculative map must agree with an explicit Spec
  // predicate.
  auto Spec = H.canonicalMap(
      [](const ChiRecord &Chi) { return Chi.Spec; });
  for (ObjectId Obj = 0; Obj < H.numObjects(); ++Obj)
    for (unsigned V = 0; V < H.numVersions(Obj); ++V)
      EXPECT_EQ(Spec[Obj][V], H.specCanonicalVersion(Obj, V));
}

TEST(HSSATest, SpeculatedChisEmptyWithoutProfile) {
  Fig6 Fix(/*PToA=*/false);
  DominatorTree DT(*Fix.F);
  alias::SteensgaardAnalysis AA(Fix.M);
  HSSA H(*Fix.F, DT, AA, /*Profile=*/nullptr);
  ObjectId ObjA = H.symbolObject(Fix.A);
  for (unsigned V = 0; V < H.numVersions(ObjA); ++V)
    EXPECT_TRUE(H.speculatedChis(ObjA, V).empty())
        << "no profile means no speculative chis anywhere";
}

TEST(HSSATest, DoubleIndirectionLevels) {
  Module M;
  Symbol *A = M.createGlobal("a", TypeKind::Int);
  Symbol *P = M.createGlobal("p", TypeKind::Int);
  Symbol *Q = M.createGlobal("q", TypeKind::Int);
  IRBuilder B(M);
  Function *F = B.startFunction("main");
  unsigned TA = B.emitAddrOf(A);
  B.emitStore(directRef(P), Operand::temp(TA));
  unsigned TP = B.emitAddrOf(P);
  B.emitStore(directRef(Q), Operand::temp(TP));
  unsigned T = B.emitLoad(doubleIndirectRef(Q, TypeKind::Int));
  (void)T;
  Stmt *Load = B.block()->stmt(B.block()->size() - 1);
  B.setRet();
  F->recomputeCFG();

  DominatorTree DT(*F);
  alias::SteensgaardAnalysis AA(M);
  HSSA H(*F, DT, AA, nullptr);
  const StmtAccess *Acc = H.accessInfo(Load);
  ASSERT_NE(Acc, nullptr);
  ASSERT_EQ(Acc->LevelObjs.size(), 3u);
  EXPECT_EQ(Acc->LevelObjs[0], H.symbolObject(Q));
  EXPECT_TRUE(H.object(Acc->LevelObjs[1]).isVirtual());
  EXPECT_TRUE(H.object(Acc->LevelObjs[2]).isVirtual());
  EXPECT_NE(Acc->LevelObjs[1], Acc->LevelObjs[2]);
}

} // namespace
