//===- Parser.cpp - Textual IR parser ----------------------------------------===//

#include "ir/Parser.h"

#include "ir/CFG.h"
#include "support/StringUtils.h"

#include <cctype>
#include <cstdlib>
#include <map>
#include <vector>

using namespace srp;
using namespace srp::ir;

namespace {

/// Line-oriented recursive-descent parser. Each construct occupies one
/// line; a small cursor-based tokenizer handles the line contents.
class ModuleParser {
public:
  ModuleParser(std::string_view Text, Module &M, std::string &Error)
      : M(M), Error(Error) {
    size_t Begin = 0;
    while (Begin <= Text.size()) {
      size_t End = Text.find('\n', Begin);
      if (End == std::string_view::npos)
        End = Text.size();
      Lines.push_back(Text.substr(Begin, End - Begin));
      Begin = End + 1;
    }
  }

  bool run() {
    while (!atEnd()) {
      std::string_view L = currentLine();
      if (L.empty()) {
        advance();
        continue;
      }
      if (startsWith(L, "global ")) {
        if (!parseGlobal(L.substr(7)))
          return false;
        advance();
        continue;
      }
      if (startsWith(L, "func ")) {
        if (!parseFunction())
          return false;
        continue;
      }
      return fail("expected 'global' or 'func'");
    }
    // Resolve branch targets now that every block exists.
    return resolveBranches();
  }

private:
  //===------------------------------------------------------------===//
  // Line handling
  //===------------------------------------------------------------===//

  bool atEnd() const { return LineNo >= Lines.size(); }

  std::string_view currentLine() {
    std::string_view L = Lines[LineNo];
    size_t Hash = L.find('#');
    if (Hash != std::string_view::npos)
      L = L.substr(0, Hash);
    return trimString(L);
  }

  void advance() { ++LineNo; }

  bool fail(const std::string &Message) {
    Error = formatString("line %u: %s", static_cast<unsigned>(LineNo + 1),
                         Message.c_str());
    return false;
  }

  //===------------------------------------------------------------===//
  // Token cursor over one line
  //===------------------------------------------------------------===//

  struct Cursor {
    std::string_view S;
    size_t Pos = 0;

    void skipSpace() {
      while (Pos < S.size() && (S[Pos] == ' ' || S[Pos] == '\t'))
        ++Pos;
    }
    bool eat(std::string_view Tok) {
      skipSpace();
      if (S.substr(Pos, Tok.size()) != Tok)
        return false;
      Pos += Tok.size();
      return true;
    }
    bool peek(std::string_view Tok) {
      skipSpace();
      return S.substr(Pos, Tok.size()) == Tok;
    }
    std::string_view ident() {
      skipSpace();
      size_t Start = Pos;
      while (Pos < S.size() &&
             (std::isalnum(static_cast<unsigned char>(S[Pos])) ||
              S[Pos] == '_' || S[Pos] == '.'))
        ++Pos;
      return S.substr(Start, Pos - Start);
    }
    bool integer(int64_t &Out) {
      skipSpace();
      size_t Start = Pos;
      if (Pos < S.size() && (S[Pos] == '-' || S[Pos] == '+'))
        ++Pos;
      size_t DigitsStart = Pos;
      while (Pos < S.size() &&
             std::isdigit(static_cast<unsigned char>(S[Pos])))
        ++Pos;
      if (Pos == DigitsStart) {
        Pos = Start;
        return false;
      }
      Out = std::strtoll(std::string(S.substr(Start, Pos - Start)).c_str(),
                         nullptr, 10);
      return true;
    }
    bool done() {
      skipSpace();
      return Pos >= S.size();
    }
  };

  //===------------------------------------------------------------===//
  // Declarations
  //===------------------------------------------------------------===//

  bool parseTypeDecl(Cursor &C, TypeKind &Type, unsigned &NumElems) {
    if (!C.eat(":"))
      return fail("expected ':' in declaration");
    std::string_view T = C.ident();
    if (T == "int")
      Type = TypeKind::Int;
    else if (T == "float")
      Type = TypeKind::Float;
    else
      return fail("unknown type '" + std::string(T) + "'");
    NumElems = 1;
    if (C.eat("[")) {
      int64_t N;
      if (!C.integer(N) || N < 1 || !C.eat("]"))
        return fail("malformed array extent");
      NumElems = static_cast<unsigned>(N);
    }
    return true;
  }

  /// Consumes an optional trailing `secret` taint annotation (globals,
  /// formals, locals). The keyword is only reserved in this position.
  static bool parseSecretSuffix(Cursor &C) {
    Cursor Saved = C;
    if (C.ident() == "secret")
      return true;
    C = Saved;
    return false;
  }

  bool parseGlobal(std::string_view Rest) {
    Cursor C{Rest};
    std::string Name(C.ident());
    if (Name.empty())
      return fail("global without a name");
    TypeKind Type;
    unsigned NumElems;
    if (!parseTypeDecl(C, Type, NumElems))
      return false;
    Symbol *Sym = M.createGlobal(Name, Type, NumElems);
    Sym->Secret = parseSecretSuffix(C);
    Symbols[Name] = Sym;
    return true;
  }

  //===------------------------------------------------------------===//
  // Functions
  //===------------------------------------------------------------===//

  bool parseFunction() {
    Cursor C{currentLine()};
    C.eat("func");
    std::string Name(C.ident());
    if (Name.empty() || !C.eat("("))
      return fail("malformed function header");
    F = M.createFunction(Name);
    FuncByName[Name] = F;
    LocalSymbols.clear();
    Temps.clear();
    Blocks.clear();
    CurBB = nullptr;

    if (!C.eat(")")) {
      while (true) {
        std::string PName(C.ident());
        TypeKind Type;
        unsigned NumElems;
        if (PName.empty() || !parseTypeDecl(C, Type, NumElems))
          return fail("malformed parameter list");
        Symbol *Formal =
            M.createLocal(F, PName, Type, NumElems, /*IsFormal=*/true);
        Formal->Secret = parseSecretSuffix(C);
        LocalSymbols[PName] = Formal;
        if (C.eat(")"))
          break;
        if (!C.eat(","))
          return fail("expected ',' or ')' in parameter list");
      }
    }
    if (C.eat("->")) {
      std::string_view T = C.ident();
      F->HasReturnValue = true;
      F->ReturnType = T == "float" ? TypeKind::Float : TypeKind::Int;
    }
    if (!C.eat("{"))
      return fail("expected '{' after function header");
    advance();

    while (!atEnd()) {
      std::string_view L = currentLine();
      if (L.empty()) {
        advance();
        continue;
      }
      if (L == "}") {
        advance();
        // CFG edges are recomputed after branch resolution.
        return true;
      }
      if (startsWith(L, "local ")) {
        Cursor LC{L.substr(6)};
        std::string LName(LC.ident());
        TypeKind Type;
        unsigned NumElems;
        if (LName.empty() || !parseTypeDecl(LC, Type, NumElems))
          return false;
        Symbol *Local = M.createLocal(F, LName, Type, NumElems);
        Local->Secret = parseSecretSuffix(LC);
        LocalSymbols[LName] = Local;
        advance();
        continue;
      }
      if (L.back() == ':') {
        std::string Label(L.substr(0, L.size() - 1));
        CurBB = F->createBlock(Label);
        Blocks[Label] = CurBB;
        HasTerm = false;
        advance();
        continue;
      }
      if (!CurBB)
        return fail("statement before the first block label");
      if (!parseStatement(L))
        return false;
      advance();
    }
    return fail("missing '}' at end of function");
  }

  //===------------------------------------------------------------===//
  // Operands, refs, temps
  //===------------------------------------------------------------===//

  Symbol *lookupSymbol(const std::string &Name) {
    auto It = LocalSymbols.find(Name);
    if (It != LocalSymbols.end())
      return It->second;
    auto GIt = Symbols.find(Name);
    return GIt == Symbols.end() ? nullptr : GIt->second;
  }

  /// Temps are created on first mention with a provisional Int type; the
  /// defining statement patches the type (uses can precede defs in
  /// promoted code, e.g. invala).
  unsigned tempFor(int64_t TextId) {
    auto It = Temps.find(TextId);
    if (It != Temps.end())
      return It->second;
    unsigned Id = F->createTemp(TypeKind::Int);
    Temps[TextId] = Id;
    return Id;
  }

  bool parseTempRef(Cursor &C, unsigned &Out) {
    if (!C.eat("t"))
      return false;
    int64_t N;
    if (!C.integer(N))
      return false;
    Out = tempFor(N);
    return true;
  }

  bool parseOperand(Cursor &C, Operand &Out) {
    C.skipSpace();
    unsigned Temp;
    size_t Saved = C.Pos;
    if (C.peek("t") && parseTempRef(C, Temp)) {
      Out = Operand::temp(Temp);
      return true;
    }
    C.Pos = Saved;
    // Number: integer or float with a trailing 'f'. Scan ahead for '.',
    // 'e' or the suffix to decide.
    size_t Start = C.Pos;
    size_t P = C.Pos;
    if (P < C.S.size() && (C.S[P] == '-' || C.S[P] == '+'))
      ++P;
    bool SawDigit = false, SawFloaty = false;
    while (P < C.S.size()) {
      char Ch = C.S[P];
      if (std::isdigit(static_cast<unsigned char>(Ch))) {
        SawDigit = true;
        ++P;
      } else if (Ch == '.' || Ch == 'e' || Ch == '+' || Ch == '-') {
        SawFloaty = true;
        ++P;
      } else {
        break;
      }
    }
    if (!SawDigit)
      return false;
    bool FloatSuffix = P < C.S.size() && C.S[P] == 'f';
    std::string Num(C.S.substr(Start, P - Start));
    if (FloatSuffix || SawFloaty) {
      Out = Operand::constFloat(std::strtod(Num.c_str(), nullptr));
      C.Pos = P + (FloatSuffix ? 1 : 0);
    } else {
      Out = Operand::constInt(std::strtoll(Num.c_str(), nullptr, 10));
      C.Pos = P;
    }
    return true;
  }

  bool parseMemRef(Cursor &C, MemRef &Ref) {
    C.skipSpace();
    Ref = MemRef();
    while (C.eat("*"))
      ++Ref.Depth;
    std::string Name(C.ident());
    Ref.Base = lookupSymbol(Name);
    if (!Ref.Base)
      return fail("unknown symbol '" + Name + "'");
    if (C.eat("[")) {
      if (!parseOperand(C, Ref.Index) || !C.eat("]"))
        return fail("malformed index");
    }
    if (C.eat("{")) {
      int64_t Off;
      if (!C.integer(Off) || !C.eat("}"))
        return fail("malformed offset");
      Ref.Offset = Off;
    }
    if (C.eat(":flt"))
      Ref.ValueType = TypeKind::Float;
    else if (Ref.Depth == 0)
      Ref.ValueType = Ref.Base->ElemType;
    else
      Ref.ValueType = TypeKind::Int;
    return true;
  }

  void setTempType(unsigned Temp, TypeKind Type) {
    F->setTempType(Temp, Type);
  }

  //===------------------------------------------------------------===//
  // Statements
  //===------------------------------------------------------------===//

  /// Appends \p S to the current block, stamping the source line so
  /// later diagnostics (srp-lint) can point back into the .sir file.
  void appendStmt(Stmt S) {
    S.Line = static_cast<unsigned>(LineNo + 1);
    CurBB->append(std::move(S));
  }

  bool parseStatement(std::string_view L) {
    Cursor C{L};
    if (HasTerm)
      return fail("statement after the block terminator");

    // Terminators.
    if (C.eat("br ") || (C.peek("br") && L == "br"))
      return parseBr(L);
    if (startsWith(L, "condbr "))
      return parseCondBr(L);
    if (L == "ret" || startsWith(L, "ret "))
      return parseRet(L);
    if (startsWith(L, "st"))
      return parseStore(L);
    if (startsWith(L, "invala ")) {
      Cursor IC{L.substr(7)};
      unsigned Temp;
      if (!parseTempRef(IC, Temp))
        return fail("invala needs a temp");
      Stmt S;
      S.Kind = StmtKind::Invala;
      S.Dst = Temp;
      appendStmt(std::move(S));
      return true;
    }
    if (startsWith(L, "print ")) {
      Cursor PC{L.substr(6)};
      Stmt S;
      S.Kind = StmtKind::Print;
      if (!parseOperand(PC, S.A))
        return fail("print needs an operand");
      appendStmt(std::move(S));
      return true;
    }
    if (startsWith(L, "call "))
      return parseCall(L, /*Dst=*/NoTemp);

    // tN = ...
    unsigned Dst;
    if (!parseTempRef(C, Dst) || !C.eat("="))
      return fail("unrecognized statement");
    C.skipSpace();
    if (C.peek("ld"))
      return parseLoad(C, Dst);
    if (C.eat("addrof")) {
      Stmt S;
      S.Kind = StmtKind::AddrOf;
      if (!parseMemRef(C, S.Ref))
        return false;
      S.Ref.Base->AddressTaken = true;
      S.Dst = Dst;
      setTempType(Dst, TypeKind::Int);
      appendStmt(std::move(S));
      return true;
    }
    if (C.eat("alloc")) {
      Stmt S;
      S.Kind = StmtKind::Alloc;
      if (!parseOperand(C, S.A) || !C.eat("@"))
        return fail("malformed alloc");
      std::string Site(C.ident());
      S.HeapSym = M.createHeapSite(Site, TypeKind::Int);
      S.Dst = Dst;
      setTempType(Dst, TypeKind::Int);
      appendStmt(std::move(S));
      return true;
    }
    if (C.peek("call")) {
      std::string_view Rest = C.S.substr(C.Pos);
      return parseCall(Rest, Dst);
    }
    return parseAssign(C, Dst);
  }

  bool parseLoad(Cursor &C, unsigned Dst) {
    C.eat("ld");
    Stmt S;
    S.Kind = StmtKind::Load;
    S.Dst = Dst;
    if (C.eat("<")) {
      static const std::pair<const char *, SpecFlag> Flags[] = {
          {"ld.a", SpecFlag::LdA},        {"ld.sa", SpecFlag::LdSA},
          {"ld.c.clr", SpecFlag::LdC},    {"ld.c.nc", SpecFlag::LdCnc},
          {"chk.a.clr", SpecFlag::ChkA},  {"chk.a.nc", SpecFlag::ChkAnc},
      };
      std::string_view FlagName = C.ident();
      bool Found = false;
      for (auto &[N, FlagV] : Flags)
        if (FlagName == N) {
          S.Flag = FlagV;
          Found = true;
        }
      if (!Found || !C.eat(">"))
        return fail("unknown load flag");
    }
    if (!parseMemRef(C, S.Ref))
      return false;
    if (C.eat("@addr(")) {
      if (!parseTempRef(C, S.AddrSrc) || !C.eat(")"))
        return fail("malformed @addr()");
    }
    if (C.eat("addr->")) {
      if (!parseTempRef(C, S.AddrDst))
        return fail("malformed addr->");
      setTempType(S.AddrDst, TypeKind::Int);
    }
    setTempType(Dst, S.Ref.ValueType);
    appendStmt(std::move(S));
    return true;
  }

  bool parseStore(std::string_view L) {
    Cursor C{L};
    C.eat("st");
    Stmt S;
    S.Kind = StmtKind::Store;
    if (C.eat("<st.a>"))
      S.StA = true;
    if (!parseMemRef(C, S.Ref))
      return false;
    if (!C.eat("="))
      return fail("store without '='");
    if (!parseOperand(C, S.A))
      return fail("store without a value");
    if (C.eat("addr->")) {
      if (!parseTempRef(C, S.AddrDst))
        return fail("malformed addr->");
      setTempType(S.AddrDst, TypeKind::Int);
    }
    if (C.eat("alat->")) {
      if (!parseTempRef(C, S.AlatDst))
        return fail("malformed alat->");
    }
    appendStmt(std::move(S));
    return true;
  }

  bool parseAssign(Cursor &C, unsigned Dst) {
    std::string OpName(C.ident());
    Stmt S;
    S.Kind = StmtKind::Assign;
    bool Found = false;
    for (int Op = 0; Op <= static_cast<int>(Opcode::Select); ++Op) {
      if (OpName == opcodeName(static_cast<Opcode>(Op))) {
        S.Op = static_cast<Opcode>(Op);
        Found = true;
        break;
      }
    }
    if (!Found)
      return fail("unknown opcode '" + OpName + "'");
    if (!parseOperand(C, S.A))
      return fail("assign without operands");
    if (C.eat(",")) {
      if (!parseOperand(C, S.B))
        return fail("malformed second operand");
      if (C.eat(",") && !parseOperand(C, S.C))
        return fail("malformed third operand");
    }
    S.Dst = Dst;
    TypeKind Result =
        opcodeProducesFloat(S.Op) ? TypeKind::Float : TypeKind::Int;
    if (S.Op == Opcode::Copy || S.Op == Opcode::Select) {
      const Operand &Src = S.Op == Opcode::Select ? S.B : S.A;
      Result = Src.K == Operand::Kind::ConstFloat ||
                       (Src.isTemp() &&
                        F->tempType(Src.getTemp()) == TypeKind::Float)
                   ? TypeKind::Float
                   : TypeKind::Int;
    }
    setTempType(Dst, Result);
    appendStmt(std::move(S));
    return true;
  }

  bool parseCall(std::string_view L, unsigned Dst) {
    Cursor C{L};
    C.eat("call");
    std::string Name(C.ident());
    auto It = FuncByName.find(Name);
    if (It == FuncByName.end())
      return fail("call to unknown function '" + Name + "'");
    Stmt S;
    S.Kind = StmtKind::Call;
    S.Callee = It->second;
    S.Dst = Dst;
    if (!C.eat("("))
      return fail("call without '('");
    if (!C.eat(")")) {
      while (true) {
        Operand Arg;
        if (!parseOperand(C, Arg))
          return fail("malformed call argument");
        S.Args.push_back(Arg);
        if (C.eat(")"))
          break;
        if (!C.eat(","))
          return fail("expected ',' or ')' in call");
      }
    }
    if (Dst != NoTemp)
      setTempType(Dst, S.Callee->HasReturnValue ? S.Callee->ReturnType
                                                : TypeKind::Int);
    appendStmt(std::move(S));
    return true;
  }

  //===------------------------------------------------------------===//
  // Terminators (targets resolved after all blocks exist)
  //===------------------------------------------------------------===//

  bool parseBr(std::string_view L) {
    Cursor C{L};
    C.eat("br");
    std::string Label(C.ident());
    if (Label.empty())
      return fail("br without a target");
    CurBB->term().Kind = TermKind::Br;
    Pending.push_back({CurBB, Label, "", LineNo});
    HasTerm = true;
    return true;
  }

  bool parseCondBr(std::string_view L) {
    Cursor C{L};
    C.eat("condbr");
    Terminator &T = CurBB->term();
    T.Kind = TermKind::CondBr;
    if (!parseOperand(C, T.Cond) || !C.eat(","))
      return fail("malformed condbr");
    std::string True(C.ident());
    if (!C.eat(","))
      return fail("condbr needs two targets");
    std::string False(C.ident());
    Pending.push_back({CurBB, True, False, LineNo});
    HasTerm = true;
    return true;
  }

  bool parseRet(std::string_view L) {
    Cursor C{L};
    C.eat("ret");
    Terminator &T = CurBB->term();
    T.Kind = TermKind::Ret;
    if (!C.done())
      if (!parseOperand(C, T.RetVal))
        return fail("malformed return value");
    HasTerm = true;
    return true;
  }

  bool resolveBranches() {
    for (const PendingBranch &P : Pending) {
      auto Find = [&](const std::string &Label) -> BasicBlock * {
        // Labels are function-local; search the owning function.
        Function *Owner = P.BB->getParent();
        for (unsigned I = 0; I < Owner->numBlocks(); ++I)
          if (Owner->block(I)->getName() == Label)
            return Owner->block(I);
        return nullptr;
      };
      BasicBlock *T = Find(P.TrueLabel);
      if (!T) {
        LineNo = P.Line;
        return fail("unknown block label '" + P.TrueLabel + "'");
      }
      P.BB->term().Target = T;
      if (!P.FalseLabel.empty()) {
        BasicBlock *FT = Find(P.FalseLabel);
        if (!FT) {
          LineNo = P.Line;
          return fail("unknown block label '" + P.FalseLabel + "'");
        }
        P.BB->term().FalseTarget = FT;
      }
    }
    for (unsigned I = 0; I < M.numFunctions(); ++I)
      M.function(I)->recomputeCFG();
    return true;
  }

  struct PendingBranch {
    BasicBlock *BB;
    std::string TrueLabel, FalseLabel;
    size_t Line;
  };

  Module &M;
  std::string &Error;
  std::vector<std::string_view> Lines;
  size_t LineNo = 0;

  std::map<std::string, Symbol *> Symbols;      ///< globals
  std::map<std::string, Symbol *> LocalSymbols; ///< current function
  std::map<std::string, Function *> FuncByName;
  std::map<int64_t, unsigned> Temps; ///< text id -> temp id
  std::map<std::string, BasicBlock *> Blocks;
  Function *F = nullptr;
  BasicBlock *CurBB = nullptr;
  bool HasTerm = false;
  std::vector<PendingBranch> Pending;
};

} // namespace

bool srp::ir::parseModule(std::string_view Text, Module &M,
                          std::string &Error) {
  return ModuleParser(Text, M, Error).run();
}
