//===- Type.cpp - IR enums ------------------------------------------------===//

#include "ir/Type.h"

#include "support/Error.h"

using namespace srp;
using namespace srp::ir;

const char *srp::ir::typeName(TypeKind Kind) {
  switch (Kind) {
  case TypeKind::Int:
    return "int";
  case TypeKind::Float:
    return "float";
  }
  SRP_UNREACHABLE("invalid TypeKind");
}

const char *srp::ir::opcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::Copy:
    return "copy";
  case Opcode::Add:
    return "add";
  case Opcode::Sub:
    return "sub";
  case Opcode::Mul:
    return "mul";
  case Opcode::Div:
    return "div";
  case Opcode::Rem:
    return "rem";
  case Opcode::And:
    return "and";
  case Opcode::Or:
    return "or";
  case Opcode::Xor:
    return "xor";
  case Opcode::Shl:
    return "shl";
  case Opcode::Shr:
    return "shr";
  case Opcode::CmpEq:
    return "cmpeq";
  case Opcode::CmpNe:
    return "cmpne";
  case Opcode::CmpLt:
    return "cmplt";
  case Opcode::CmpLe:
    return "cmple";
  case Opcode::FAdd:
    return "fadd";
  case Opcode::FSub:
    return "fsub";
  case Opcode::FMul:
    return "fmul";
  case Opcode::FDiv:
    return "fdiv";
  case Opcode::FCmpLt:
    return "fcmplt";
  case Opcode::IntToFp:
    return "inttofp";
  case Opcode::FpToInt:
    return "fptoint";
  case Opcode::Select:
    return "select";
  }
  SRP_UNREACHABLE("invalid Opcode");
}

bool srp::ir::opcodeProducesFloat(Opcode Op) {
  switch (Op) {
  case Opcode::FAdd:
  case Opcode::FSub:
  case Opcode::FMul:
  case Opcode::FDiv:
  case Opcode::IntToFp:
    return true;
  default:
    return false;
  }
}

const char *srp::ir::specFlagName(SpecFlag Flag) {
  switch (Flag) {
  case SpecFlag::None:
    return "";
  case SpecFlag::LdA:
    return "ld.a";
  case SpecFlag::LdSA:
    return "ld.sa";
  case SpecFlag::LdC:
    return "ld.c.clr";
  case SpecFlag::LdCnc:
    return "ld.c.nc";
  case SpecFlag::ChkA:
    return "chk.a.clr";
  case SpecFlag::ChkAnc:
    return "chk.a.nc";
  }
  SRP_UNREACHABLE("invalid SpecFlag");
}

bool srp::ir::isCheckFlag(SpecFlag Flag) {
  switch (Flag) {
  case SpecFlag::LdC:
  case SpecFlag::LdCnc:
  case SpecFlag::ChkA:
  case SpecFlag::ChkAnc:
    return true;
  default:
    return false;
  }
}

bool srp::ir::isAdvancedFlag(SpecFlag Flag) {
  return Flag == SpecFlag::LdA || Flag == SpecFlag::LdSA;
}
