//===- Value.h - Operands and memory references -----------------*- C++ -*-===//
//
// Part of the srp-alat project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Operand (temp or constant) and MemRef, the lexical memory reference the
/// whole promotion machinery revolves around. A MemRef describes an access
/// path anchored at a symbol:
///
///   address(0)  = &Base
///   address(i)  = mem[address(i-1)]            for i in 1..Depth
///   final       = address(Depth) + Index*8 + Offset
///
/// so Depth=0 covers `a` and `a[i]`, Depth=1 covers `*p`, `p[i]` and
/// `p->f`, Depth=2 covers `**q`. Two MemRefs with equal (Base, Depth,
/// Index, Offset) are the same *lexical expression* for PRE purposes.
///
//===----------------------------------------------------------------------===//

#ifndef SRP_IR_VALUE_H
#define SRP_IR_VALUE_H

#include "ir/Symbol.h"

#include <cassert>
#include <cstdint>

namespace srp::ir {

/// Sentinel for "no temp".
inline constexpr unsigned NoTemp = ~0u;

/// A statement operand: a temp reference or an immediate constant.
struct Operand {
  enum class Kind : uint8_t { None, Temp, ConstInt, ConstFloat };

  Kind K = Kind::None;
  unsigned TempId = NoTemp;
  int64_t IntVal = 0;
  double FloatVal = 0.0;

  Operand() = default;

  static Operand temp(unsigned Id) {
    Operand Op;
    Op.K = Kind::Temp;
    Op.TempId = Id;
    return Op;
  }

  static Operand constInt(int64_t Value) {
    Operand Op;
    Op.K = Kind::ConstInt;
    Op.IntVal = Value;
    return Op;
  }

  static Operand constFloat(double Value) {
    Operand Op;
    Op.K = Kind::ConstFloat;
    Op.FloatVal = Value;
    return Op;
  }

  bool isNone() const { return K == Kind::None; }
  bool isTemp() const { return K == Kind::Temp; }
  bool isConst() const {
    return K == Kind::ConstInt || K == Kind::ConstFloat;
  }

  unsigned getTemp() const {
    assert(isTemp() && "not a temp operand");
    return TempId;
  }

  friend bool operator==(const Operand &L, const Operand &R) {
    if (L.K != R.K)
      return false;
    switch (L.K) {
    case Kind::None:
      return true;
    case Kind::Temp:
      return L.TempId == R.TempId;
    case Kind::ConstInt:
      return L.IntVal == R.IntVal;
    case Kind::ConstFloat:
      return L.FloatVal == R.FloatVal;
    }
    return false;
  }
};

/// A lexical memory reference (access path). See the file comment for the
/// address computation.
struct MemRef {
  Symbol *Base = nullptr;
  unsigned Depth = 0;  ///< Number of dereferences through memory.
  Operand Index;       ///< Optional; scaled by the 8-byte element size.
  int64_t Offset = 0;  ///< Constant byte offset on the final address.
  TypeKind ValueType = TypeKind::Int; ///< Type of the accessed element.

  /// True for plain named-variable accesses (`a`, `a[i]`).
  bool isDirect() const { return Depth == 0; }

  /// True if the access goes through at least one loaded pointer.
  bool isIndirect() const { return Depth > 0; }

  bool hasIndex() const { return !Index.isNone(); }

  /// True if two references are the same lexical expression (same base,
  /// same dereference depth, identical index operand and offset). This is
  /// the occurrence-grouping key of SSAPRE.
  bool sameLexicalRef(const MemRef &Other) const {
    return Base == Other.Base && Depth == Other.Depth &&
           Index == Other.Index && Offset == Other.Offset;
  }
};

/// Returns a direct scalar reference to \p Sym.
inline MemRef directRef(Symbol *Sym) {
  MemRef Ref;
  Ref.Base = Sym;
  Ref.ValueType = Sym->ElemType;
  return Ref;
}

/// Returns `Sym[Index]`.
inline MemRef arrayRef(Symbol *Sym, Operand Index) {
  MemRef Ref = directRef(Sym);
  Ref.Index = Index;
  return Ref;
}

/// Returns `*Sym` (+ optional constant byte offset), accessing \p ValueType.
inline MemRef indirectRef(Symbol *Sym, TypeKind ValueType,
                          int64_t Offset = 0) {
  MemRef Ref;
  Ref.Base = Sym;
  Ref.Depth = 1;
  Ref.Offset = Offset;
  Ref.ValueType = ValueType;
  return Ref;
}

/// Returns `Sym[Index]` where Sym holds a pointer (p[i] style).
inline MemRef indirectIndexRef(Symbol *Sym, Operand Index,
                               TypeKind ValueType) {
  MemRef Ref = indirectRef(Sym, ValueType);
  Ref.Index = Index;
  return Ref;
}

/// Returns `**Sym`.
inline MemRef doubleIndirectRef(Symbol *Sym, TypeKind ValueType) {
  MemRef Ref = indirectRef(Sym, ValueType);
  Ref.Depth = 2;
  return Ref;
}

} // namespace srp::ir

#endif // SRP_IR_VALUE_H
