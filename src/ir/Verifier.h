//===- Verifier.h - IR structural checks ------------------------*- C++ -*-===//
//
// Part of the srp-alat project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural and type checks over a Module. Passes run the verifier after
/// transforming; tests assert on the collected messages.
///
//===----------------------------------------------------------------------===//

#ifndef SRP_IR_VERIFIER_H
#define SRP_IR_VERIFIER_H

#include <string>
#include <vector>

namespace srp::ir {

class Module;
class Function;

/// Verifies \p M; returns all diagnostics (empty means well-formed).
///
/// Checks include: every block is terminated with in-function targets;
/// temps are in range and used with their declared type; MemRef bases are
/// present, dereference depths go through scalar integer symbols, and
/// direct references stay within declared array extents for constant
/// indices; call argument counts match the callee's formals; alloc
/// statements carry a heap-site symbol.
std::vector<std::string> verifyModule(const Module &M);

/// Verifies one function, appending diagnostics to \p Errors.
void verifyFunction(const Function &F, std::vector<std::string> &Errors);

/// Aborts via fatalError if \p M fails verification, printing the first
/// few diagnostics. Convenience for pipeline code and examples.
void verifyOrDie(const Module &M, const char *When);

/// Per-function variant: aborts if \p F fails verification. The fatal
/// message names the failing function alongside \p When, so a pass that
/// verifies each function it touches produces attributable diagnostics
/// ("verifier failed after promotion in function 'walk': ...").
void verifyOrDie(const Function &F, const char *When);

} // namespace srp::ir

#endif // SRP_IR_VERIFIER_H
