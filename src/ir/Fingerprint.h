//===- Fingerprint.h - Deterministic module fingerprinting ------*- C++ -*-===//
//
// Part of the srp-alat project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Content addressing for modules. The canonical form of a module is its
/// printed text (ir/Printer.h): parsing normalizes away whitespace,
/// comments and formatting, and the printer emits functions, blocks,
/// symbols and statements in their defined order with one fixed
/// spelling, so two inputs that parse to the same program have
/// byte-identical canonical text. The fingerprint is the FNV-1a hash of
/// that text — stable across builds and platforms (support/Hash.h), and
/// usable as a cache shard index or a report field.
///
/// The canonical text, not the fingerprint, is the identity: consumers
/// keying storage by module (core::ResultCache) store the canonical text
/// and compare it on lookup, so a hash collision can cost a shard-bucket
/// neighbour at most — never a wrong answer.
///
//===----------------------------------------------------------------------===//

#ifndef SRP_IR_FINGERPRINT_H
#define SRP_IR_FINGERPRINT_H

#include <cstdint>
#include <string>

namespace srp::ir {

class Module;

/// The canonical textual form of \p M (see file comment). Idempotent:
/// parsing the result and canonicalizing again reproduces it byte for
/// byte — pinned by ResultCacheTest over the fuzz-repro corpus.
std::string canonicalModuleText(const Module &M);

/// FNV-1a64 of canonicalModuleText(M).
uint64_t moduleFingerprint(const Module &M);

} // namespace srp::ir

#endif // SRP_IR_FINGERPRINT_H
