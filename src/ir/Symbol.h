//===- Symbol.h - Named memory objects --------------------------*- C++ -*-===//
//
// Part of the srp-alat project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Symbols are the named memory objects of the IR: globals, locals, formals
/// and heap allocation sites. All memory state lives in symbols; temps are
/// pure SSA-like values. Register promotion is precisely the act of keeping
/// a symbol's (or pointee's) content in a temp across statements that might
/// alias it.
///
//===----------------------------------------------------------------------===//

#ifndef SRP_IR_SYMBOL_H
#define SRP_IR_SYMBOL_H

#include "ir/Type.h"

#include <string>

namespace srp::ir {

class Function;

/// Storage class of a symbol.
enum class SymbolKind : uint8_t {
  Global,   ///< Module-scope object, fixed address.
  Local,    ///< Function-scope object on the stack frame.
  Formal,   ///< Incoming parameter (also stack-frame resident).
  HeapSite, ///< Abstract name for all objects created by one alloc site.
};

/// Returns a printable name for \p Kind.
const char *symbolKindName(SymbolKind Kind);

/// A named memory object.
///
/// A symbol of \c NumElems == 1 is a scalar; larger values declare an array
/// of 8-byte elements of \c ElemType. HeapSite symbols do not occupy
/// storage themselves; they name the family of runtime objects a given
/// alloc statement creates, which is the granularity the alias analysis and
/// the alias profiler agree on (heap naming per Chen et al. [7]).
struct Symbol {
  unsigned Id = 0;             ///< Unique within the Module.
  std::string Name;            ///< Unique within its scope.
  SymbolKind Kind = SymbolKind::Global;
  TypeKind ElemType = TypeKind::Int;
  unsigned NumElems = 1;       ///< Scalar if 1; array extent otherwise.
  bool AddressTaken = false;   ///< Some AddrOf statement names this symbol.
  /// The object's contents are confidential (`secret` in .sir). The
  /// taint analyses (analysis::TaintFlow, the interpreter's shadow
  /// propagation) treat every value derived from it as tainted; a tainted
  /// value reaching an address, branch or output while speculative is a
  /// leak. Promotion and codegen ignore the label entirely.
  bool Secret = false;
  Function *Parent = nullptr;  ///< Owning function; null for globals/heap.

  bool isScalar() const { return NumElems == 1; }
  bool isHeapSite() const { return Kind == SymbolKind::HeapSite; }

  /// Size in bytes of the object's storage (elements are 8 bytes).
  uint64_t sizeInBytes() const { return uint64_t(NumElems) * 8; }
};

} // namespace srp::ir

#endif // SRP_IR_SYMBOL_H
