//===- CFG.cpp - Basic blocks, functions, modules --------------------------===//

#include "ir/CFG.h"

#include "support/Error.h"

#include <cassert>

using namespace srp;
using namespace srp::ir;

const char *srp::ir::stmtKindName(StmtKind Kind) {
  switch (Kind) {
  case StmtKind::Assign:
    return "assign";
  case StmtKind::Load:
    return "load";
  case StmtKind::Store:
    return "store";
  case StmtKind::AddrOf:
    return "addrof";
  case StmtKind::Alloc:
    return "alloc";
  case StmtKind::Call:
    return "call";
  case StmtKind::Invala:
    return "invala";
  case StmtKind::Print:
    return "print";
  }
  SRP_UNREACHABLE("invalid StmtKind");
}

//===----------------------------------------------------------------------===//
// BasicBlock
//===----------------------------------------------------------------------===//

Stmt *BasicBlock::append(Stmt S) {
  S.Id = Parent->nextStmtId();
  Stmts.push_back(
      Parent->getParent()->arena().create<Stmt>(std::move(S)));
  return Stmts.back();
}

Stmt *BasicBlock::insertBefore(size_t Pos, Stmt S) {
  assert(Pos <= Stmts.size() && "insert position out of range");
  S.Id = Parent->nextStmtId();
  Stmt *P = Parent->getParent()->arena().create<Stmt>(std::move(S));
  Stmts.insert(Stmts.begin() + static_cast<ptrdiff_t>(Pos), P);
  return P;
}

void BasicBlock::erase(size_t Pos) {
  assert(Pos < Stmts.size() && "erase position out of range");
  Stmts.erase(Stmts.begin() + static_cast<ptrdiff_t>(Pos));
}

size_t BasicBlock::positionOf(const Stmt *S) const {
  for (size_t I = 0, E = Stmts.size(); I != E; ++I)
    if (Stmts[I] == S)
      return I;
  SRP_UNREACHABLE("statement not in block");
}

//===----------------------------------------------------------------------===//
// Function
//===----------------------------------------------------------------------===//

BasicBlock *Function::createBlock(std::string Name) {
  unsigned Id = static_cast<unsigned>(Blocks.size());
  Blocks.push_back(
      Parent->arena().create<BasicBlock>(Id, std::move(Name), this));
  return Blocks.back();
}

unsigned Function::createTemp(TypeKind Type) {
  TempTypes.push_back(Type);
  return static_cast<unsigned>(TempTypes.size()) - 1;
}

void Function::recomputeCFG() {
  for (BasicBlock *BB : Blocks) {
    BB->Preds.clear();
    BB->Succs.clear();
  }
  for (BasicBlock *BB : Blocks) {
    Terminator &T = BB->Term;
    switch (T.Kind) {
    case TermKind::Br:
      assert(T.Target && "br without target");
      BB->Succs.push_back(T.Target);
      break;
    case TermKind::CondBr:
      assert(T.Target && T.FalseTarget && "condbr without targets");
      BB->Succs.push_back(T.Target);
      if (T.FalseTarget != T.Target)
        BB->Succs.push_back(T.FalseTarget);
      break;
    case TermKind::Ret:
      break;
    }
    for (BasicBlock *Succ : BB->Succs)
      Succ->Preds.push_back(BB);
  }
}

//===----------------------------------------------------------------------===//
// Module
//===----------------------------------------------------------------------===//

Symbol *Module::allocateSymbol(std::string Name, SymbolKind Kind,
                               TypeKind ElemType, unsigned NumElems,
                               Function *Parent) {
  assert(NumElems >= 1 && "symbol must have at least one element");
  Symbol Sym;
  Sym.Id = static_cast<unsigned>(Symbols.size());
  Sym.Name = std::move(Name);
  Sym.Kind = Kind;
  Sym.ElemType = ElemType;
  Sym.NumElems = NumElems;
  Sym.Parent = Parent;
  Symbols.push_back(std::move(Sym));
  return &Symbols.back();
}

Symbol *Module::createGlobal(std::string Name, TypeKind ElemType,
                             unsigned NumElems) {
  Symbol *Sym = allocateSymbol(std::move(Name), SymbolKind::Global, ElemType,
                               NumElems, nullptr);
  Globals.push_back(Sym);
  return Sym;
}

Symbol *Module::createLocal(Function *Parent, std::string Name,
                            TypeKind ElemType, unsigned NumElems,
                            bool IsFormal) {
  assert(Parent && "local symbol needs a parent function");
  Symbol *Sym = allocateSymbol(
      std::move(Name), IsFormal ? SymbolKind::Formal : SymbolKind::Local,
      ElemType, NumElems, Parent);
  if (IsFormal)
    Parent->addFormal(Sym);
  else
    Parent->addLocal(Sym);
  return Sym;
}

Symbol *Module::createHeapSite(std::string Name, TypeKind ElemType) {
  Symbol *Sym = allocateSymbol(std::move(Name), SymbolKind::HeapSite,
                               ElemType, 1, nullptr);
  // Heap objects escape by construction: their address is the alloc result.
  Sym->AddressTaken = true;
  HeapSites.push_back(Sym);
  return Sym;
}

Function *Module::createFunction(std::string Name) {
  Functions.push_back(IRArena.create<Function>(std::move(Name), this));
  return Functions.back();
}

Function *Module::findFunction(std::string_view Name) {
  for (Function *F : Functions)
    if (F->getName() == Name)
      return F;
  return nullptr;
}

void Module::reset() {
  Functions.clear();
  Globals.clear();
  HeapSites.clear();
  Symbols.clear();
  IRArena.reset();
}

const char *srp::ir::symbolKindName(SymbolKind Kind) {
  switch (Kind) {
  case SymbolKind::Global:
    return "global";
  case SymbolKind::Local:
    return "local";
  case SymbolKind::Formal:
    return "formal";
  case SymbolKind::HeapSite:
    return "heapsite";
  }
  SRP_UNREACHABLE("invalid SymbolKind");
}
