//===- Stmt.h - IR statements and terminators -------------------*- C++ -*-===//
//
// Part of the srp-alat project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Statements of the mid-level IR. A statement is a tagged record rather
/// than a class hierarchy: there are only eight kinds and the promotion
/// passes want to pattern-match and rewrite them freely.
///
//===----------------------------------------------------------------------===//

#ifndef SRP_IR_STMT_H
#define SRP_IR_STMT_H

#include "ir/Value.h"

#include <vector>

namespace srp::ir {

class Function;

/// Discriminator for Stmt.
enum class StmtKind : uint8_t {
  Assign, ///< Dst = Op(A, B[, C for Select])
  Load,   ///< Dst = load Ref, possibly flagged ld.a/ld.c/chk.a/...
  Store,  ///< store Ref = A, possibly flagged st.a (ISA extension)
  AddrOf, ///< Dst = &Base + Index*8 + Offset (Ref.Depth must be 0)
  Alloc,  ///< Dst = address of a fresh heap object of A elements
  Call,   ///< [Dst =] Callee(Args...)
  Invala, ///< Invalidate the ALAT entry backing temp Dst (invala.e)
  Print,  ///< Emit A to the program's observable output stream
};

/// Returns a printable name for \p Kind.
const char *stmtKindName(StmtKind Kind);

/// One IR statement. Field use by kind:
///   Assign: Dst, Op, A, B (C for Select's false value)
///   Load:   Dst, Ref, Flag
///   Store:  Ref, A (value), StA
///   AddrOf: Dst, Ref (Base/Index/Offset; Depth 0)
///   Alloc:  Dst, A (element count), HeapSym, ElemType via HeapSym
///   Call:   Dst (NoTemp if none), Callee, Args
///   Invala: Dst (the promoted temp whose entry to clear)
///   Print:  A
struct Stmt {
  StmtKind Kind = StmtKind::Assign;
  Opcode Op = Opcode::Copy;
  unsigned Dst = NoTemp;
  Operand A;
  Operand B;
  Operand C;
  MemRef Ref;
  SpecFlag Flag = SpecFlag::None;
  bool StA = false;
  /// Loads/Stores: if set, the statement also writes the final computed
  /// access address into this temp (free in codegen: the address is in a
  /// register anyway). The promotion pass uses it for software
  /// runtime-disambiguation checks and to anchor ALAT entries.
  unsigned AddrDst = NoTemp;
  /// Checking loads (ld.c family): if set, the load takes its address
  /// from this temp instead of re-walking the reference chain. Only the
  /// promotion pass emits this, and only when the address part of the
  /// reference is provably unchanged since the advanced load.
  unsigned AddrSrc = NoTemp;
  /// Stores with StA: the temp whose ALAT entry the st.a allocates.
  unsigned AlatDst = NoTemp;
  Function *Callee = nullptr;
  std::vector<Operand> Args;
  Symbol *HeapSym = nullptr;
  unsigned Id = 0; ///< Unique within the function; stable across edits.
  /// Source line in the .sir file the statement was parsed from, or 0
  /// for statements synthesised by a pass. Diagnostics only.
  unsigned Line = 0;

  bool isLoad() const { return Kind == StmtKind::Load; }
  bool isStore() const { return Kind == StmtKind::Store; }

  /// True if the statement reads or writes memory through \c Ref.
  bool accessesMemory() const { return isLoad() || isStore(); }

  /// True if a checking load draws its address from AddrSrc.
  bool hasAddrSrc() const { return isLoad() && AddrSrc != NoTemp; }

  /// True if the statement defines \c Dst.
  bool definesTemp() const {
    switch (Kind) {
    case StmtKind::Assign:
    case StmtKind::Load:
    case StmtKind::AddrOf:
    case StmtKind::Alloc:
      return true;
    case StmtKind::Call:
      return Dst != NoTemp;
    default:
      return false;
    }
  }

  /// Appends every temp the statement reads to \p Temps.
  void collectUsedTemps(std::vector<unsigned> &Temps) const {
    auto AddOperand = [&Temps](const Operand &Op) {
      if (Op.isTemp())
        Temps.push_back(Op.getTemp());
    };
    AddOperand(A);
    AddOperand(B);
    AddOperand(C);
    if (hasAddrSrc())
      Temps.push_back(AddrSrc);
    else if (accessesMemory() || Kind == StmtKind::AddrOf)
      AddOperand(Ref.Index);
    for (const Operand &Arg : Args)
      AddOperand(Arg);
  }
};

/// Kind of block terminator.
enum class TermKind : uint8_t {
  Br,     ///< Unconditional branch to Target.
  CondBr, ///< Branch to Target if Cond != 0, else FalseTarget.
  Ret,    ///< Return RetVal (may be None).
};

class BasicBlock;

/// Terminator of a basic block.
struct Terminator {
  TermKind Kind = TermKind::Ret;
  Operand Cond;
  BasicBlock *Target = nullptr;
  BasicBlock *FalseTarget = nullptr;
  Operand RetVal;
};

} // namespace srp::ir

#endif // SRP_IR_STMT_H
