//===- CFG.h - Basic blocks, functions, modules -----------------*- C++ -*-===//
//
// Part of the srp-alat project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The container types of the IR: BasicBlock (a statement list plus a
/// terminator), Function (a CFG plus symbol/temp tables) and Module (the
/// translation unit: globals, heap sites and functions).
///
//===----------------------------------------------------------------------===//

#ifndef SRP_IR_CFG_H
#define SRP_IR_CFG_H

#include "ir/Stmt.h"

#include "support/Arena.h"

#include <deque>
#include <string>
#include <vector>

namespace srp::ir {

class Module;

/// A straight-line statement list ending in one terminator.
class BasicBlock {
public:
  BasicBlock(unsigned Id, std::string Name, Function *Parent)
      : Id(Id), Name(std::move(Name)), Parent(Parent) {}

  unsigned getId() const { return Id; }
  const std::string &getName() const { return Name; }
  Function *getParent() const { return Parent; }

  /// Appends a statement and returns it.
  Stmt *append(Stmt S);

  /// Inserts a statement before position \p Pos and returns it.
  Stmt *insertBefore(size_t Pos, Stmt S);

  /// Inserts a statement after position \p Pos and returns it.
  Stmt *insertAfter(size_t Pos, Stmt S) { return insertBefore(Pos + 1, S); }

  /// Removes the statement at position \p Pos.
  void erase(size_t Pos);

  /// Returns the position of \p S; asserts if absent.
  size_t positionOf(const Stmt *S) const;

  size_t size() const { return Stmts.size(); }
  Stmt *stmt(size_t I) { return Stmts[I]; }
  const Stmt *stmt(size_t I) const { return Stmts[I]; }

  Terminator &term() { return Term; }
  const Terminator &term() const { return Term; }

  /// CFG edges; valid after Function::recomputeCFG().
  const std::vector<BasicBlock *> &preds() const { return Preds; }
  const std::vector<BasicBlock *> &succs() const { return Succs; }

private:
  friend class Function;

  unsigned Id;
  std::string Name;
  Function *Parent;
  /// Statement order; the Stmt objects live in the module's arena.
  /// erase() only unlinks — the object is reclaimed at arena teardown.
  std::vector<Stmt *> Stmts;
  Terminator Term;
  std::vector<BasicBlock *> Preds;
  std::vector<BasicBlock *> Succs;
};

/// A function: formals, locals, temps and a CFG whose first block is the
/// entry.
class Function {
public:
  Function(std::string Name, Module *Parent)
      : Name(std::move(Name)), Parent(Parent) {}

  const std::string &getName() const { return Name; }
  Module *getParent() const { return Parent; }

  /// Creates and appends a new block.
  BasicBlock *createBlock(std::string Name);

  unsigned numBlocks() const { return static_cast<unsigned>(Blocks.size()); }
  BasicBlock *block(unsigned I) { return Blocks[I]; }
  const BasicBlock *block(unsigned I) const { return Blocks[I]; }
  BasicBlock *entry() { return Blocks.front(); }
  const BasicBlock *entry() const { return Blocks.front(); }

  /// Creates a fresh temp of \p Type and returns its id.
  unsigned createTemp(TypeKind Type);

  unsigned numTemps() const { return static_cast<unsigned>(TempTypes.size()); }
  TypeKind tempType(unsigned Id) const { return TempTypes[Id]; }

  /// Re-types a temp. Only the text parser uses this: a use can mention a
  /// temp before its defining statement fixes the type.
  void setTempType(unsigned Id, TypeKind Type) { TempTypes[Id] = Type; }

  /// Registers a local or formal symbol (owned by the Module's table).
  void addLocal(Symbol *Sym) { Locals.push_back(Sym); }
  void addFormal(Symbol *Sym) { Formals.push_back(Sym); }

  const std::vector<Symbol *> &locals() const { return Locals; }
  const std::vector<Symbol *> &formals() const { return Formals; }

  /// Recomputes pred/succ edges from the terminators and renumbers
  /// statement ids. Must be called after structural edits and before any
  /// analysis.
  void recomputeCFG();

  /// Returns a fresh statement id (used by passes inserting statements).
  unsigned nextStmtId() { return NextStmtId++; }

  /// Whether the function returns a value, and its type.
  bool HasReturnValue = false;
  TypeKind ReturnType = TypeKind::Int;

private:
  std::string Name;
  Module *Parent;
  std::vector<BasicBlock *> Blocks; ///< Objects live in the module arena.
  std::vector<TypeKind> TempTypes;
  std::vector<Symbol *> Locals;
  std::vector<Symbol *> Formals;
  unsigned NextStmtId = 0;
};

/// A whole program: globals, heap-site names and functions. The function
/// named "main" is the entry point for the interpreter and the simulator.
class Module {
public:
  Module() = default;
  Module(const Module &) = delete;
  Module &operator=(const Module &) = delete;

  /// The allocator behind every Stmt, BasicBlock and Function of this
  /// module; their addresses are stable until reset() or destruction.
  Arena &arena() { return IRArena; }

  /// Drops all IR and recycles the arena slabs, returning the module to
  /// its freshly-constructed state. Lets a pipeline state be reused
  /// across runs without paying slab allocation again; every pointer
  /// into the module is dead afterwards.
  void reset();

  /// Creates a global symbol.
  Symbol *createGlobal(std::string Name, TypeKind ElemType,
                       unsigned NumElems = 1);

  /// Creates a local/formal symbol owned by \p Parent.
  Symbol *createLocal(Function *Parent, std::string Name, TypeKind ElemType,
                      unsigned NumElems = 1, bool IsFormal = false);

  /// Creates the abstract heap-site symbol for one alloc statement.
  Symbol *createHeapSite(std::string Name, TypeKind ElemType);

  /// Creates a function.
  Function *createFunction(std::string Name);

  /// Returns the function named \p Name, or null.
  Function *findFunction(std::string_view Name);
  const Function *findFunction(std::string_view Name) const {
    return const_cast<Module *>(this)->findFunction(Name);
  }

  unsigned numFunctions() const {
    return static_cast<unsigned>(Functions.size());
  }
  Function *function(unsigned I) { return Functions[I]; }
  const Function *function(unsigned I) const { return Functions[I]; }

  const std::vector<Symbol *> &globals() const { return Globals; }
  const std::vector<Symbol *> &heapSites() const { return HeapSites; }

  unsigned numSymbols() const {
    return static_cast<unsigned>(Symbols.size());
  }
  Symbol *symbol(unsigned Id) { return &Symbols[Id]; }
  const Symbol *symbol(unsigned Id) const { return &Symbols[Id]; }

private:
  Symbol *allocateSymbol(std::string Name, SymbolKind Kind, TypeKind ElemType,
                         unsigned NumElems, Function *Parent);

  /// Declared first so it is destroyed last: the arena teardown runs
  /// Function/BasicBlock/Stmt destructors, which must not outlive it.
  Arena IRArena;
  std::deque<Symbol> Symbols; ///< Stable storage for all symbols.
  std::vector<Symbol *> Globals;
  std::vector<Symbol *> HeapSites;
  std::vector<Function *> Functions; ///< Objects live in the arena.
};

} // namespace srp::ir

#endif // SRP_IR_CFG_H
