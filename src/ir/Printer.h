//===- Printer.h - Textual IR output ----------------------------*- C++ -*-===//
//
// Part of the srp-alat project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Prints modules, functions and statements in the project's textual IR
/// format (the same format ir::Parser reads back).
///
//===----------------------------------------------------------------------===//

#ifndef SRP_IR_PRINTER_H
#define SRP_IR_PRINTER_H

#include <string>

namespace srp {
class OStream;
} // namespace srp

namespace srp::ir {

class Module;
class Function;
struct Stmt;
struct MemRef;
struct Operand;

/// Prints \p M to \p OS.
void printModule(const Module &M, OStream &OS);

/// Prints \p F to \p OS.
void printFunction(const Function &F, OStream &OS);

/// Prints one statement (no trailing newline).
void printStmt(const Stmt &S, OStream &OS);

/// Returns the statement as a string (handy in tests and traces).
std::string stmtToString(const Stmt &S);

/// Returns the memory reference as a string, e.g. "*p", "buf[t3]".
std::string memRefToString(const MemRef &Ref);

/// Returns the operand as a string, e.g. "t7", "42", "1.5f".
std::string operandToString(const Operand &Op);

/// Returns the whole module as a string.
std::string moduleToString(const Module &M);

} // namespace srp::ir

#endif // SRP_IR_PRINTER_H
