//===- Fingerprint.cpp - Deterministic module fingerprinting -------------------===//

#include "ir/Fingerprint.h"

#include "ir/Printer.h"
#include "support/Hash.h"

using namespace srp;

std::string ir::canonicalModuleText(const Module &M) {
  return moduleToString(M);
}

uint64_t ir::moduleFingerprint(const Module &M) {
  return fnv1a64(canonicalModuleText(M));
}
