//===- Verifier.cpp - IR structural checks ----------------------------------===//

#include "ir/Verifier.h"

#include "ir/CFG.h"
#include "ir/Printer.h"
#include "support/Error.h"
#include "support/StringUtils.h"

using namespace srp;
using namespace srp::ir;

namespace {

/// Collects diagnostics for one function.
class FunctionVerifier {
public:
  FunctionVerifier(const Function &F, std::vector<std::string> &Errors)
      : F(F), Errors(Errors) {}

  void run() {
    if (F.numBlocks() == 0) {
      error("function has no blocks");
      return;
    }
    for (unsigned I = 0, E = F.numBlocks(); I != E; ++I)
      verifyBlock(*F.block(I));
  }

private:
  void error(std::string Message) {
    Errors.push_back(formatString("%s: %s", F.getName().c_str(),
                                  Message.c_str()));
  }

  void stmtError(const Stmt &S, const char *Message) {
    error(formatString("'%s': %s", stmtToString(S).c_str(), Message));
  }

  bool checkTemp(const Stmt &S, unsigned Id, TypeKind Expected) {
    if (Id >= F.numTemps()) {
      stmtError(S, "temp id out of range");
      return false;
    }
    if (F.tempType(Id) != Expected) {
      stmtError(S, "temp type mismatch");
      return false;
    }
    return true;
  }

  bool checkOperand(const Stmt &S, const Operand &Op, TypeKind Expected) {
    switch (Op.K) {
    case Operand::Kind::None:
      stmtError(S, "missing operand");
      return false;
    case Operand::Kind::Temp:
      return checkTemp(S, Op.TempId, Expected);
    case Operand::Kind::ConstInt:
      if (Expected != TypeKind::Int) {
        stmtError(S, "integer constant where float expected");
        return false;
      }
      return true;
    case Operand::Kind::ConstFloat:
      if (Expected != TypeKind::Float) {
        stmtError(S, "float constant where integer expected");
        return false;
      }
      return true;
    }
    return false;
  }

  TypeKind operandTypeOf(const Operand &Op) {
    if (Op.isTemp() && Op.TempId < F.numTemps())
      return F.tempType(Op.TempId);
    return Op.K == Operand::Kind::ConstFloat ? TypeKind::Float
                                             : TypeKind::Int;
  }

  void verifyMemRef(const Stmt &S, const MemRef &Ref) {
    if (!Ref.Base) {
      stmtError(S, "memory reference without base symbol");
      return;
    }
    if (Ref.Depth > 2) {
      stmtError(S, "dereference depth beyond 2 is unsupported");
      return;
    }
    if (Ref.Depth > 0) {
      // The pointer chain starts at a scalar integer slot.
      if (!Ref.Base->isScalar() && !Ref.Base->isHeapSite())
        stmtError(S, "indirect reference through a non-scalar base");
      if (Ref.Base->ElemType != TypeKind::Int)
        stmtError(S, "indirect reference through a float symbol");
    }
    if (Ref.hasIndex())
      checkOperand(S, Ref.Index, TypeKind::Int);
    if (Ref.Offset % 8 != 0)
      stmtError(S, "reference offset is not 8-byte aligned");
    if (Ref.isDirect()) {
      // Constant direct indices must be in bounds.
      int64_t Index =
          Ref.Index.K == Operand::Kind::ConstInt ? Ref.Index.IntVal : 0;
      int64_t Last = Index * 8 + Ref.Offset;
      if (Last < 0 ||
          static_cast<uint64_t>(Last) + 8 > Ref.Base->sizeInBytes())
        if (!Ref.hasIndex() || Ref.Index.K == Operand::Kind::ConstInt)
          stmtError(S, "direct reference outside the symbol's storage");
      if (!Ref.hasIndex() && Ref.Offset == 0 &&
          Ref.ValueType != Ref.Base->ElemType)
        stmtError(S, "scalar reference type differs from symbol type");
    }
  }

  void verifyStmt(const Stmt &S) {
    switch (S.Kind) {
    case StmtKind::Assign:
      verifyAssign(S);
      break;
    case StmtKind::Load:
      verifyMemRef(S, S.Ref);
      checkTemp(S, S.Dst, S.Ref.ValueType);
      break;
    case StmtKind::Store:
      verifyMemRef(S, S.Ref);
      checkOperand(S, S.A, S.Ref.ValueType);
      break;
    case StmtKind::AddrOf:
      if (S.Ref.Depth != 0)
        stmtError(S, "addrof must not dereference");
      verifyMemRef(S, S.Ref);
      checkTemp(S, S.Dst, TypeKind::Int);
      if (S.Ref.Base && !S.Ref.Base->AddressTaken)
        stmtError(S, "addrof of a symbol not marked address-taken");
      break;
    case StmtKind::Alloc:
      if (!S.HeapSym || !S.HeapSym->isHeapSite())
        stmtError(S, "alloc without heap-site symbol");
      checkOperand(S, S.A, TypeKind::Int);
      checkTemp(S, S.Dst, TypeKind::Int);
      break;
    case StmtKind::Call:
      verifyCall(S);
      break;
    case StmtKind::Invala:
      if (S.Dst >= F.numTemps())
        stmtError(S, "invala of an unknown temp");
      break;
    case StmtKind::Print:
      if (S.A.isNone())
        stmtError(S, "print without operand");
      break;
    }
  }

  void verifyAssign(const Stmt &S) {
    switch (S.Op) {
    case Opcode::Copy: {
      TypeKind Ty = operandTypeOf(S.A);
      checkOperand(S, S.A, Ty);
      checkTemp(S, S.Dst, Ty);
      break;
    }
    case Opcode::Select: {
      checkOperand(S, S.A, TypeKind::Int);
      TypeKind Ty = operandTypeOf(S.B);
      checkOperand(S, S.B, Ty);
      checkOperand(S, S.C, Ty);
      checkTemp(S, S.Dst, Ty);
      break;
    }
    case Opcode::FAdd:
    case Opcode::FSub:
    case Opcode::FMul:
    case Opcode::FDiv:
      checkOperand(S, S.A, TypeKind::Float);
      checkOperand(S, S.B, TypeKind::Float);
      checkTemp(S, S.Dst, TypeKind::Float);
      break;
    case Opcode::FCmpLt:
      checkOperand(S, S.A, TypeKind::Float);
      checkOperand(S, S.B, TypeKind::Float);
      checkTemp(S, S.Dst, TypeKind::Int);
      break;
    case Opcode::IntToFp:
      checkOperand(S, S.A, TypeKind::Int);
      checkTemp(S, S.Dst, TypeKind::Float);
      break;
    case Opcode::FpToInt:
      checkOperand(S, S.A, TypeKind::Float);
      checkTemp(S, S.Dst, TypeKind::Int);
      break;
    default:
      checkOperand(S, S.A, TypeKind::Int);
      checkOperand(S, S.B, TypeKind::Int);
      checkTemp(S, S.Dst, TypeKind::Int);
      break;
    }
  }

  void verifyCall(const Stmt &S) {
    if (!S.Callee) {
      stmtError(S, "call without callee");
      return;
    }
    if (S.Args.size() != S.Callee->formals().size()) {
      stmtError(S, "argument count differs from formal count");
      return;
    }
    for (size_t I = 0; I < S.Args.size(); ++I)
      checkOperand(S, S.Args[I], S.Callee->formals()[I]->ElemType);
    if (S.Dst != NoTemp) {
      if (!S.Callee->HasReturnValue)
        stmtError(S, "result temp for a void callee");
      else
        checkTemp(S, S.Dst, S.Callee->ReturnType);
    }
  }

  void verifyBlock(const BasicBlock &BB) {
    for (size_t I = 0, E = BB.size(); I != E; ++I)
      verifyStmt(*BB.stmt(I));
    const Terminator &T = BB.term();
    auto CheckTarget = [&](const BasicBlock *Target) {
      if (!Target) {
        error(formatString("block %s: missing branch target",
                           BB.getName().c_str()));
        return;
      }
      if (Target->getParent() != &F)
        error(formatString("block %s: branch leaves the function",
                           BB.getName().c_str()));
    };
    switch (T.Kind) {
    case TermKind::Br:
      CheckTarget(T.Target);
      break;
    case TermKind::CondBr:
      CheckTarget(T.Target);
      CheckTarget(T.FalseTarget);
      if (!T.Cond.isTemp() && T.Cond.K != Operand::Kind::ConstInt)
        error(formatString("block %s: condbr needs an integer condition",
                           BB.getName().c_str()));
      break;
    case TermKind::Ret:
      if (F.HasReturnValue && T.RetVal.isNone())
        error(formatString("block %s: missing return value",
                           BB.getName().c_str()));
      break;
    }
  }

  const Function &F;
  std::vector<std::string> &Errors;
};

} // namespace

void srp::ir::verifyFunction(const Function &F,
                             std::vector<std::string> &Errors) {
  FunctionVerifier(F, Errors).run();
}

std::vector<std::string> srp::ir::verifyModule(const Module &M) {
  std::vector<std::string> Errors;
  for (unsigned I = 0, E = M.numFunctions(); I != E; ++I)
    verifyFunction(*M.function(I), Errors);
  if (!M.findFunction("main"))
    Errors.push_back("module has no 'main' function");
  return Errors;
}

namespace {

/// Shared tail of the two verifyOrDie overloads.
[[noreturn]] void dieWithErrors(std::string Message,
                                const std::vector<std::string> &Errors) {
  for (size_t I = 0; I < Errors.size() && I < 8; ++I)
    Message += "\n  " + Errors[I];
  fatalError(Message);
}

} // namespace

void srp::ir::verifyOrDie(const Module &M, const char *When) {
  std::vector<std::string> Errors = verifyModule(M);
  if (Errors.empty())
    return;
  // Individual diagnostics carry their function prefix; name the first
  // failing function in the headline too so truncated logs still say
  // where to look. (Module-level diagnostics have no such prefix.)
  size_t Sep = Errors[0].find(':');
  std::string Headline =
      Sep == std::string::npos
          ? formatString("verifier failed %s:", When)
          : formatString("verifier failed %s in function '%s':", When,
                         Errors[0].substr(0, Sep).c_str());
  dieWithErrors(std::move(Headline), Errors);
}

void srp::ir::verifyOrDie(const Function &F, const char *When) {
  std::vector<std::string> Errors;
  verifyFunction(F, Errors);
  if (Errors.empty())
    return;
  dieWithErrors(formatString("verifier failed %s in function '%s':", When,
                             F.getName().c_str()),
                Errors);
}
