//===- Printer.cpp - Textual IR output -------------------------------------===//

#include "ir/Printer.h"

#include "ir/CFG.h"
#include "support/OStream.h"
#include "support/StringUtils.h"

using namespace srp;
using namespace srp::ir;

std::string srp::ir::operandToString(const Operand &Op) {
  switch (Op.K) {
  case Operand::Kind::None:
    return "<none>";
  case Operand::Kind::Temp:
    return formatString("t%u", Op.TempId);
  case Operand::Kind::ConstInt:
    return formatString("%lld", static_cast<long long>(Op.IntVal));
  case Operand::Kind::ConstFloat:
    return formatString("%gf", Op.FloatVal);
  }
  return "<invalid>";
}

std::string srp::ir::memRefToString(const MemRef &Ref) {
  std::string Out;
  for (unsigned I = 0; I < Ref.Depth; ++I)
    Out += '*';
  Out += Ref.Base ? Ref.Base->Name : "<null>";
  if (Ref.hasIndex())
    Out += '[' + operandToString(Ref.Index) + ']';
  if (Ref.Offset != 0)
    Out += formatString("{%+lld}", static_cast<long long>(Ref.Offset));
  if (Ref.ValueType == TypeKind::Float && Ref.isIndirect())
    Out += ":flt";
  return Out;
}

void srp::ir::printStmt(const Stmt &S, OStream &OS) {
  auto Temp = [](unsigned Id) { return formatString("t%u", Id); };
  switch (S.Kind) {
  case StmtKind::Assign:
    OS << Temp(S.Dst) << " = " << opcodeName(S.Op) << ' '
       << operandToString(S.A);
    if (!S.B.isNone())
      OS << ", " << operandToString(S.B);
    if (!S.C.isNone())
      OS << ", " << operandToString(S.C);
    break;
  case StmtKind::Load:
    OS << Temp(S.Dst) << " = ld";
    if (S.Flag != SpecFlag::None)
      OS << '<' << specFlagName(S.Flag) << '>';
    OS << ' ' << memRefToString(S.Ref);
    if (S.AddrSrc != NoTemp)
      OS << " @addr(" << Temp(S.AddrSrc) << ')';
    if (S.AddrDst != NoTemp)
      OS << " addr->" << Temp(S.AddrDst);
    break;
  case StmtKind::Store:
    OS << (S.StA ? "st<st.a> " : "st ") << memRefToString(S.Ref) << " = "
       << operandToString(S.A);
    if (S.AddrDst != NoTemp)
      OS << " addr->" << Temp(S.AddrDst);
    if (S.AlatDst != NoTemp)
      OS << " alat->" << Temp(S.AlatDst);
    break;
  case StmtKind::AddrOf:
    OS << Temp(S.Dst) << " = addrof " << memRefToString(S.Ref);
    break;
  case StmtKind::Alloc:
    OS << Temp(S.Dst) << " = alloc " << operandToString(S.A) << " @"
       << (S.HeapSym ? S.HeapSym->Name : "<null>");
    break;
  case StmtKind::Call:
    if (S.Dst != NoTemp)
      OS << Temp(S.Dst) << " = ";
    OS << "call " << (S.Callee ? S.Callee->getName() : "<null>") << '(';
    for (size_t I = 0; I < S.Args.size(); ++I) {
      if (I)
        OS << ", ";
      OS << operandToString(S.Args[I]);
    }
    OS << ')';
    break;
  case StmtKind::Invala:
    OS << "invala " << Temp(S.Dst);
    break;
  case StmtKind::Print:
    OS << "print " << operandToString(S.A);
    break;
  }
}

std::string srp::ir::stmtToString(const Stmt &S) {
  std::string Buffer;
  StringOStream OS(Buffer);
  printStmt(S, OS);
  return Buffer;
}

static void printSymbolDecl(const Symbol &Sym, OStream &OS) {
  OS << Sym.Name << " : " << typeName(Sym.ElemType);
  if (!Sym.isScalar())
    OS << '[' << Sym.NumElems << ']';
  if (Sym.Secret)
    OS << " secret";
}

static void printTerminator(const Terminator &T, OStream &OS) {
  switch (T.Kind) {
  case TermKind::Br:
    OS << "br " << T.Target->getName();
    break;
  case TermKind::CondBr:
    OS << "condbr " << operandToString(T.Cond) << ", "
       << T.Target->getName() << ", " << T.FalseTarget->getName();
    break;
  case TermKind::Ret:
    OS << "ret";
    if (!T.RetVal.isNone())
      OS << ' ' << operandToString(T.RetVal);
    break;
  }
}

void srp::ir::printFunction(const Function &F, OStream &OS) {
  OS << "func " << F.getName() << '(';
  for (size_t I = 0; I < F.formals().size(); ++I) {
    if (I)
      OS << ", ";
    printSymbolDecl(*F.formals()[I], OS);
  }
  OS << ')';
  if (F.HasReturnValue)
    OS << " -> " << typeName(F.ReturnType);
  OS << " {\n";
  for (const Symbol *Local : F.locals()) {
    OS << "  local ";
    printSymbolDecl(*Local, OS);
    OS << '\n';
  }
  for (unsigned I = 0, E = F.numBlocks(); I != E; ++I) {
    const BasicBlock *BB = F.block(I);
    OS << BB->getName() << ":\n";
    for (size_t J = 0, SE = BB->size(); J != SE; ++J) {
      OS << "  ";
      printStmt(*BB->stmt(J), OS);
      OS << '\n';
    }
    OS << "  ";
    printTerminator(BB->term(), OS);
    OS << '\n';
  }
  OS << "}\n";
}

void srp::ir::printModule(const Module &M, OStream &OS) {
  for (const Symbol *Global : M.globals()) {
    OS << "global ";
    printSymbolDecl(*Global, OS);
    OS << '\n';
  }
  for (unsigned I = 0, E = M.numFunctions(); I != E; ++I) {
    OS << '\n';
    printFunction(*M.function(I), OS);
  }
}

std::string srp::ir::moduleToString(const Module &M) {
  std::string Buffer;
  StringOStream OS(Buffer);
  printModule(M, OS);
  return Buffer;
}
