//===- IRBuilder.h - Convenience IR construction ----------------*- C++ -*-===//
//
// Part of the srp-alat project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Appends statements to a current block and manufactures temps, so tests,
/// examples and the synthetic SPEC-like workloads can build IR tersely.
///
//===----------------------------------------------------------------------===//

#ifndef SRP_IR_IRBUILDER_H
#define SRP_IR_IRBUILDER_H

#include "ir/CFG.h"

#include <cassert>

namespace srp::ir {

/// Statement-appending helper bound to a Module and a current insertion
/// block. All emit* functions append to the current block and return the
/// defined temp id (where one exists).
class IRBuilder {
public:
  explicit IRBuilder(Module &M) : M(M) {}

  Module &module() { return M; }
  Function *function() { return F; }
  BasicBlock *block() { return BB; }

  /// Creates a function and positions the builder at a fresh entry block.
  Function *startFunction(std::string Name) {
    F = M.createFunction(std::move(Name));
    BB = F->createBlock("entry");
    return F;
  }

  void setFunction(Function *Fn) { F = Fn; }
  void setBlock(BasicBlock *Block) { BB = Block; }

  BasicBlock *createBlock(std::string Name) {
    assert(F && "no current function");
    return F->createBlock(std::move(Name));
  }

  unsigned emitLoad(MemRef Ref, SpecFlag Flag = SpecFlag::None) {
    Stmt S;
    S.Kind = StmtKind::Load;
    S.Ref = Ref;
    S.Flag = Flag;
    unsigned Dst = S.Dst = F->createTemp(Ref.ValueType);
    BB->append(std::move(S));
    return Dst;
  }

  void emitStore(MemRef Ref, Operand Val) {
    Stmt S;
    S.Kind = StmtKind::Store;
    S.Ref = Ref;
    S.A = Val;
    BB->append(std::move(S));
  }

  unsigned emitAssign(Opcode Op, Operand A, Operand B = Operand()) {
    Stmt S;
    S.Kind = StmtKind::Assign;
    S.Op = Op;
    S.A = A;
    S.B = B;
    TypeKind ResultType =
        opcodeProducesFloat(Op) ? TypeKind::Float : TypeKind::Int;
    if (Op == Opcode::Copy || Op == Opcode::Select)
      ResultType = operandType(Op == Opcode::Select ? B : A);
    unsigned Dst = S.Dst = F->createTemp(ResultType);
    BB->append(std::move(S));
    return Dst;
  }

  unsigned emitSelect(Operand Cond, Operand TrueVal, Operand FalseVal) {
    Stmt S;
    S.Kind = StmtKind::Assign;
    S.Op = Opcode::Select;
    S.A = Cond;
    S.B = TrueVal;
    S.C = FalseVal;
    unsigned Dst = S.Dst = F->createTemp(operandType(TrueVal));
    BB->append(std::move(S));
    return Dst;
  }

  unsigned emitAddrOf(Symbol *Sym, Operand Index = Operand(),
                      int64_t Offset = 0) {
    Stmt S;
    S.Kind = StmtKind::AddrOf;
    S.Ref.Base = Sym;
    S.Ref.Index = Index;
    S.Ref.Offset = Offset;
    S.Ref.ValueType = Sym->ElemType;
    unsigned Dst = S.Dst = F->createTemp(TypeKind::Int);
    Sym->AddressTaken = true;
    BB->append(std::move(S));
    return Dst;
  }

  /// Allocates a heap object of \p Count 8-byte elements; creates (or
  /// reuses) the named allocation-site symbol.
  unsigned emitAlloc(Operand Count, std::string SiteName,
                     TypeKind ElemType = TypeKind::Int) {
    Stmt S;
    S.Kind = StmtKind::Alloc;
    S.A = Count;
    S.HeapSym = M.createHeapSite(std::move(SiteName), ElemType);
    unsigned Dst = S.Dst = F->createTemp(TypeKind::Int);
    BB->append(std::move(S));
    return Dst;
  }

  /// Emits a call; returns the result temp or NoTemp for void calls.
  unsigned emitCall(Function *Callee, std::vector<Operand> Args) {
    Stmt S;
    S.Kind = StmtKind::Call;
    S.Callee = Callee;
    S.Args = std::move(Args);
    unsigned Dst = S.Dst = Callee->HasReturnValue
                               ? F->createTemp(Callee->ReturnType)
                               : NoTemp;
    BB->append(std::move(S));
    return Dst;
  }

  void emitPrint(Operand Val) {
    Stmt S;
    S.Kind = StmtKind::Print;
    S.A = Val;
    BB->append(std::move(S));
  }

  void emitInvala(unsigned TempId) {
    Stmt S;
    S.Kind = StmtKind::Invala;
    S.Dst = TempId;
    BB->append(std::move(S));
  }

  void setBr(BasicBlock *Target) {
    BB->term() = Terminator();
    BB->term().Kind = TermKind::Br;
    BB->term().Target = Target;
  }

  void setCondBr(Operand Cond, BasicBlock *TrueBB, BasicBlock *FalseBB) {
    BB->term() = Terminator();
    BB->term().Kind = TermKind::CondBr;
    BB->term().Cond = Cond;
    BB->term().Target = TrueBB;
    BB->term().FalseTarget = FalseBB;
  }

  void setRet(Operand Val = Operand()) {
    BB->term() = Terminator();
    BB->term().Kind = TermKind::Ret;
    BB->term().RetVal = Val;
    if (!Val.isNone()) {
      F->HasReturnValue = true;
      F->ReturnType = operandType(Val);
    }
  }

  /// Type of an operand in the current function.
  TypeKind operandType(const Operand &Op) const {
    switch (Op.K) {
    case Operand::Kind::Temp:
      return F->tempType(Op.getTemp());
    case Operand::Kind::ConstFloat:
      return TypeKind::Float;
    default:
      return TypeKind::Int;
    }
  }

private:
  Module &M;
  Function *F = nullptr;
  BasicBlock *BB = nullptr;
};

} // namespace srp::ir

#endif // SRP_IR_IRBUILDER_H
