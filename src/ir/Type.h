//===- Type.h - IR enums: types, opcodes, speculation flags -----*- C++ -*-===//
//
// Part of the srp-alat project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Scalar value types, arithmetic opcodes and data-speculation flags of the
/// mid-level IR. All values are 64-bit; pointers are integer-typed
/// addresses. Float is separate because Itanium floating-point loads bypass
/// the L1 data cache (9-cycle latency vs 2), which is one of the performance
/// effects the paper's evaluation hinges on.
///
//===----------------------------------------------------------------------===//

#ifndef SRP_IR_TYPE_H
#define SRP_IR_TYPE_H

#include <cstdint>

namespace srp::ir {

/// Scalar type of a value or memory element.
enum class TypeKind : uint8_t {
  Int,   ///< 64-bit integer; also used for addresses/pointers.
  Float, ///< 64-bit IEEE double.
};

/// Returns a printable name ("int" / "float").
const char *typeName(TypeKind Kind);

/// Operation performed by an Assign statement.
enum class Opcode : uint8_t {
  Copy,
  // Integer arithmetic / logic.
  Add,
  Sub,
  Mul,
  Div, ///< Signed division; division by zero yields 0 (defined for testing).
  Rem, ///< Signed remainder; zero divisor yields 0.
  And,
  Or,
  Xor,
  Shl, ///< Shift amount is masked to 6 bits.
  Shr, ///< Logical right shift; amount masked to 6 bits.
  // Integer comparisons, producing 0/1.
  CmpEq,
  CmpNe,
  CmpLt,
  CmpLe,
  // Floating point.
  FAdd,
  FSub,
  FMul,
  FDiv,
  FCmpLt, ///< Produces integer 0/1.
  // Conversions.
  IntToFp,
  FpToInt,
  // Ternary: Dst = A != 0 ? B : C is modeled as two statements; Select
  // keeps the IR small: Dst = (A != 0) ? B : B2 where B2 rides in C.
  Select,
};

/// Returns the mnemonic for \p Op (e.g. "add").
const char *opcodeName(Opcode Op);

/// Returns true if \p Op produces a Float result.
bool opcodeProducesFloat(Opcode Op);

/// Data-speculation flag attached to a Load statement by the speculative
/// register promotion pass. Guides lowering to the IA-64-style ISA.
enum class SpecFlag : uint8_t {
  None,   ///< Plain load.
  LdA,    ///< Advanced load: allocates an ALAT entry (ld.a).
  LdSA,   ///< Speculative advanced load hoisted out of a loop (ld.sa).
  LdC,    ///< Checking load, clears the ALAT entry on success (ld.c.clr).
  LdCnc,  ///< Checking load, keeps the ALAT entry (ld.c.nc).
  ChkA,   ///< Check with recovery branch, clearing completer (chk.a.clr).
  ChkAnc, ///< Check with recovery branch, non-clearing (chk.a.nc).
};

/// Returns the assembly-style mnemonic suffix for \p Flag ("" for None).
const char *specFlagName(SpecFlag Flag);

/// Returns true if \p Flag marks a check (ld.c / chk.a family).
bool isCheckFlag(SpecFlag Flag);

/// Returns true if \p Flag marks an advanced load (ld.a / ld.sa).
bool isAdvancedFlag(SpecFlag Flag);

} // namespace srp::ir

#endif // SRP_IR_TYPE_H
