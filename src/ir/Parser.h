//===- Parser.h - Textual IR parser -----------------------------*- C++ -*-===//
//
// Part of the srp-alat project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses the textual IR format ir::Printer emits, so programs can be
/// written as text in tests and tools and printed IR round-trips.
///
/// Grammar sketch (one construct per line, '#' comments):
///
///   global NAME : TYPE[N]?
///   func NAME(NAME : TYPE, ...) -> TYPE? {
///     local NAME : TYPE[N]?
///   LABEL:
///     tN = ld<flag>? MEMREF (@addr(tM))? (addr->tM)?
///     st<st.a>? MEMREF = OPERAND (addr->tM)? (alat->tM)?
///     tN = OPCODE OPERAND (, OPERAND)*
///     tN = addrof MEMREF
///     tN = alloc OPERAND @SITE
///     tN = call NAME(OPERANDS) | call NAME(OPERANDS)
///     invala tN
///     print OPERAND
///     br LABEL | condbr OPERAND, LABEL, LABEL | ret OPERAND?
///   }
///
///   MEMREF  := '*'* NAME ('[' OPERAND ']')? ('{' ±INT '}')? (':flt')?
///   OPERAND := tN | INT | FLOATf
///
//===----------------------------------------------------------------------===//

#ifndef SRP_IR_PARSER_H
#define SRP_IR_PARSER_H

#include <string>
#include <string_view>

namespace srp::ir {

class Module;

/// Parses \p Text into \p M. Returns true on success; on failure returns
/// false and sets \p Error to a "line N: message" diagnostic. The module
/// may be partially populated on failure.
bool parseModule(std::string_view Text, Module &M, std::string &Error);

} // namespace srp::ir

#endif // SRP_IR_PARSER_H
