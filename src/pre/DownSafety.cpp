//===- DownSafety.cpp - Anticipation-based down-safety ------------------------===//
//
// Stage 3 of the staged SSAPRE pass (see PromotionContext.h): DownSafety
// via all-paths anticipation, the index-temp dominance pin, and the §2.3
// control-speculation override that lets a profitable non-down-safe Φ
// insert anyway (the Figure 3 ld.sa pattern).
//
//===----------------------------------------------------------------------===//

#include "pre/PromotionContext.h"

using namespace srp;
using namespace srp::ir;
using namespace srp::ssa;
using namespace srp::pre;
using namespace srp::pre::detail;

void detail::computeDownSafety(PromotionContext &Ctx, const ExprInfo &E,
                               ExprWork &W) {
  Function &F = Ctx.F;
  // TRANSP(B): no constituent changes canonically inside B, and the index
  // temp is not defined in B. ANTLOC(B): a load occurrence whose canonical
  // signature equals the block-entry signature.
  unsigned NumBlocks = F.numBlocks();
  std::vector<char> Transp(NumBlocks, 0), Antloc(NumBlocks, 0);
  for (unsigned BI = 0; BI < NumBlocks; ++BI) {
    BasicBlock *BB = F.block(BI);
    if (!Ctx.DT.isReachable(BB))
      continue;
    std::vector<unsigned> EntryCanon =
        Ctx.canonSigAt(E, Ctx.rawSigAtEntry(E, BB));
    std::vector<unsigned> ExitCanon =
        Ctx.canonSigAt(E, Ctx.rawSigAtExit(E, BB));
    bool IndexDefHere =
        E.IndexTemp != NoTemp && Ctx.TempDefBlock[E.IndexTemp] == BB;
    Transp[BI] = EntryCanon == ExitCanon && !IndexDefHere;
    auto OccIt = W.BlockOccs.find(BB);
    if (OccIt != W.BlockOccs.end())
      for (unsigned OI : OccIt->second) {
        const Occurrence &O = E.Occs[OI];
        if (O.IsStore)
          continue;
        // An occurrence below the index temp's definition cannot be
        // anticipated at block entry (the index is not yet computed).
        if (IndexDefHere) {
          bool DefSeen = false;
          for (unsigned P = 0; P < O.OrderInBlock && P < BB->size(); ++P)
            if (BB->stmt(P)->definesTemp() &&
                BB->stmt(P)->Dst == E.IndexTemp)
              DefSeen = true;
          if (DefSeen)
            continue;
        }
        if (Ctx.canonSigAt(E, Ctx.rawSigOfOcc(E, O)) == EntryCanon) {
          Antloc[BI] = 1;
          break;
        }
      }
  }
  std::vector<char> Antic(NumBlocks, 1);
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (unsigned BI = 0; BI < NumBlocks; ++BI) {
      BasicBlock *BB = F.block(BI);
      if (!Ctx.DT.isReachable(BB))
        continue;
      char Out = BB->succs().empty() ? 0 : 1;
      for (BasicBlock *Succ : BB->succs())
        Out = Out && Antic[Succ->getId()];
      char In = Antloc[BI] || (Transp[BI] && Out);
      if (In != Antic[BI]) {
        Antic[BI] = In;
        Changed = true;
      }
    }
  }
  for (ExprPhi &Phi : W.Phis)
    Phi.DownSafe = Antic[Phi.BB->getId()];
  // Insertions driven by a Φ outside the index temp's dominance region
  // would load through an undefined index; forbid them. Dominating every
  // insertion edge needs *strict* dominance: a Φ in the def's own block
  // evaluates at block entry, before the def runs.
  std::vector<char> PhiPinned(W.Phis.size(), 0);
  if (E.IndexTemp != NoTemp && Ctx.TempDefBlock[E.IndexTemp])
    for (size_t PhiI = 0; PhiI < W.Phis.size(); ++PhiI)
      if (Ctx.TempDefBlock[E.IndexTemp] == W.Phis[PhiI].BB ||
          !Ctx.DT.dominates(Ctx.TempDefBlock[E.IndexTemp],
                            W.Phis[PhiI].BB)) {
        W.Phis[PhiI].DownSafe = false;
        W.Phis[PhiI].CanBeAvail = false;
        PhiPinned[PhiI] = 1;
      }

  // Control speculation (§2.3): a non-down-safe Φ may still be allowed to
  // insert (the Figure 3 ld.sa pattern) when the profile says the reuses
  // outweigh the inserted executions, or — without a profile — when the Φ
  // heads a loop that contains every reuse (classic invariant hoisting).
  if (Ctx.Config.EnableInsertion &&
      (Ctx.Config.EnableAlat || Ctx.Config.EnableSoftwareCheck)) {
    for (size_t PhiI = 0; PhiI < W.Phis.size(); ++PhiI) {
      ExprPhi &Phi = W.Phis[PhiI];
      if (Phi.DownSafe || PhiPinned[PhiI])
        continue;
      uint64_t Benefit = 0, Cost = 0;
      bool AllUsesInLoop = true;
      const LoopInfo::Loop *L = Ctx.LI.loopFor(Phi.BB);
      bool IsHeader = L && L->Header == Phi.BB;
      unsigned Reuses = 0;
      for (const Occurrence &O : E.Occs) {
        if (!O.Redundant || O.Version != Phi.Version)
          continue;
        ++Reuses;
        if (Ctx.Edges)
          Benefit += Ctx.Edges->blockCount(O.BB);
        if (!IsHeader || !L->contains(O.BB))
          AllUsesInLoop = false;
      }
      if (Reuses == 0)
        continue;
      if (Ctx.Edges) {
        for (size_t PI = 0; PI < Phi.Operands.size(); ++PI)
          if (Phi.Operands[PI] == ~0u)
            Cost += Ctx.Edges->edgeCount(Phi.BB->preds()[PI], Phi.BB);
        if (Benefit > Cost)
          Phi.DownSafe = true;
      } else if (IsHeader && AllUsesInLoop) {
        Phi.DownSafe = true;
      }
    }
  }
}
