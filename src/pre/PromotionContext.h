//===- PromotionContext.h - Shared state of the SSAPRE stages ---*- C++ -*-===//
//
// Part of the srp-alat project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The working state shared by the staged SSAPRE promotion pass. The
/// algorithm (see Promoter.h for the paper mapping) is split into one
/// translation unit per stage:
///
///   PhiInsertion.cpp  — candidate collection and Φ-insertion at the
///                       iterated dominance frontier;
///   Rename.cpp        — the speculative Rename dominator walk;
///   DownSafety.cpp    — all-paths anticipation + control speculation;
///   WillBeAvail.cpp   — CanBeAvail ∧ ¬Later with profitability gates;
///   CodeMotion.cpp    — crossed-χ analysis and mutation planning;
///   ApplyPlan.cpp     — the batched IR mutations;
///   CheckCleanup.cpp  — erasure of unobservable checks;
///   Promoter.cpp      — the per-function orchestrator.
///
/// Stages communicate through PromotionContext (per-function state) and
/// ExprWork (the per-expression Φ/version web). Everything here lives in
/// srp::pre::detail: it is internal to the pass but deliberately linkable
/// so the per-stage unit tests (tests/PreStagesTest.cpp) can drive each
/// stage in isolation.
///
//===----------------------------------------------------------------------===//

#ifndef SRP_PRE_PROMOTIONCONTEXT_H
#define SRP_PRE_PROMOTIONCONTEXT_H

#include "interp/Profile.h"
#include "pre/Promotion.h"
#include "ssa/HSSA.h"
#include "support/Error.h"

#include <cstdint>
#include <map>
#include <set>
#include <tuple>
#include <vector>

namespace srp::pre::detail {

/// Grouping key of a lexical expression (one promotion candidate).
struct ExprKey {
  unsigned BaseId;
  unsigned Depth;
  int IndexKind; // 0 none, 1 temp, 2 const
  uint64_t IndexVal;
  int64_t Offset;
  uint8_t ValueType;

  static ExprKey of(const ir::MemRef &Ref) {
    ExprKey K;
    K.BaseId = Ref.Base->Id;
    K.Depth = Ref.Depth;
    switch (Ref.Index.K) {
    case ir::Operand::Kind::None:
      K.IndexKind = 0;
      K.IndexVal = 0;
      break;
    case ir::Operand::Kind::Temp:
      K.IndexKind = 1;
      K.IndexVal = Ref.Index.TempId;
      break;
    case ir::Operand::Kind::ConstInt:
      K.IndexKind = 2;
      K.IndexVal = static_cast<uint64_t>(Ref.Index.IntVal);
      break;
    case ir::Operand::Kind::ConstFloat:
      SRP_UNREACHABLE("float index");
    }
    K.Offset = Ref.Offset;
    K.ValueType = static_cast<uint8_t>(Ref.ValueType);
    return K;
  }

  bool operator<(const ExprKey &O) const {
    return std::tie(BaseId, Depth, IndexKind, IndexVal, Offset, ValueType) <
           std::tie(O.BaseId, O.Depth, O.IndexKind, O.IndexVal, O.Offset,
                    O.ValueType);
  }
};

/// One real occurrence (a load or store of the expression).
struct Occurrence {
  ir::Stmt *S = nullptr;
  ir::BasicBlock *BB = nullptr;
  unsigned OrderInBlock = 0; ///< statement position at analysis time
  bool IsStore = false;

  // Filled by Rename:
  unsigned Version = ~0u; ///< ExprVer id this occurrence uses/defines.
  bool Redundant = false; ///< uses an existing version
  bool RawEqual = false;  ///< redundant with identical raw versions
};

/// Expression version created by Rename (a "hypothetical temporary"
/// version in the paper's terms).
struct ExprVer {
  enum class DefKind : uint8_t { Real, Phi };
  DefKind Kind = DefKind::Real;
  unsigned DefOcc = ~0u;          ///< Real: index into Occs.
  unsigned PhiId = ~0u;           ///< Phi: index into Phis.
  std::vector<unsigned> CanonSig; ///< canonical constituent versions
  std::vector<unsigned> RawSig;   ///< raw constituent versions
  bool HasRealUse = false;
  /// Real versions created by a load that matched a Φ version: when the
  /// Φ cannot be materialized, this occurrence anchors later reuses
  /// (SSAPRE's reload-from-first-occurrence behaviour).
  unsigned RefinesVer = ~0u;
};

/// Expression Φ (capital-Φ in SSAPRE).
struct ExprPhi {
  ir::BasicBlock *BB = nullptr;
  unsigned Version = ~0u;         ///< ExprVer id it defines.
  std::vector<unsigned> Operands; ///< ExprVer id or ~0u (⊥); by pred.
  bool DownSafe = false;
  bool CanBeAvail = true;
  bool Later = true;
  bool Unprofitable = false;

  bool willBeAvail() const { return CanBeAvail && !Later && !Unprofitable; }
};

/// A planned mutation, applied after all analysis.
struct MutationPlan {
  // Edge insertions: load of the expression at the end of From (or a
  // split block) on edge From->To.
  struct EdgeInsert {
    ir::BasicBlock *From;
    ir::BasicBlock *To;
    ir::MemRef Ref;
    unsigned Temp;
    unsigned AddrTemp; ///< NoTemp if unused
    ir::SpecFlag Flag;
  };
  // Rewrites of defining loads: retarget Dst to Temp, set flag/addr, and
  // add `<oldDst> = copy Temp` after.
  struct DefLoadRewrite {
    ir::Stmt *S;
    unsigned Temp;
    unsigned AddrTemp;
    ir::SpecFlag Flag;
  };
  // After a defining store: st.a marking or an extra ld.a / plain copy.
  struct DefStoreRewrite {
    ir::Stmt *S;
    ir::MemRef Ref;
    unsigned Temp;
    unsigned AddrTemp;
    bool UseStA;
    bool NeedAlat; ///< otherwise a plain copy of the stored value
  };
  // Redundant load elimination: erase S, map Dst to Temp.
  struct ReuseRewrite {
    ir::Stmt *S;
    unsigned Temp;
  };
  // In-place checking reuse: keep the load but turn it into a checking
  // load writing Temp (invala mode and the ChecksAtReuse placement).
  struct InvalaReuse {
    ir::Stmt *S;
    unsigned Temp;
    ir::SpecFlag Flag = ir::SpecFlag::LdCnc;
    unsigned AddrSrc = ir::NoTemp;
  };
  // ALAT check statement after a store.
  struct CheckInsert {
    ir::Stmt *After;
    ir::MemRef Ref;
    unsigned Temp;
    unsigned AddrTemp; ///< address source; NoTemp to re-walk the chain
    bool Cascade;      ///< chk.a (recovery) instead of ld.c
  };
  // Software compare+forward after a store.
  struct SoftwareCheckInsert {
    ir::Stmt *After;       ///< the aliasing store
    unsigned Temp;         ///< promoted temp to conditionally overwrite
    unsigned ExprAddrTemp; ///< temp holding the expression's address
    bool ExprAddrIsChainPtr = false; ///< indirect: holds chain pointer
    int64_t ExtraOffset = 0;         ///< constant index*8 + offset
  };
  struct InvalaInsert {
    ir::BasicBlock *BB; ///< inserted at block start
    unsigned Temp;
  };
  // Direct-ref expressions needing an address temp materialized at entry.
  struct AddrMaterialize {
    ir::MemRef Ref;
    unsigned Temp;
  };

  std::vector<EdgeInsert> EdgeInserts;
  std::vector<DefLoadRewrite> DefLoads;
  std::vector<DefStoreRewrite> DefStores;
  std::vector<ReuseRewrite> Reuses;
  std::vector<InvalaReuse> InvalaReuses;
  std::vector<CheckInsert> Checks;
  std::vector<SoftwareCheckInsert> SoftwareChecks;
  std::vector<InvalaInsert> Invalas;
  std::vector<AddrMaterialize> AddrMats;
};

/// One candidate expression of the current function.
struct ExprInfo {
  ir::MemRef Ref;
  std::vector<Occurrence> Occs;            ///< dominator-preorder sorted
  std::vector<ssa::ObjectId> Constituents; ///< level objects, base first
  unsigned IndexTemp = ir::NoTemp;
};

/// The per-expression Φ/version web the stages hand to each other.
struct ExprWork {
  std::vector<ExprPhi> Phis;
  std::vector<ExprVer> Vers;
  std::vector<unsigned> PhiAtBlock; ///< by block id; ~0u if none
  /// Occurrence indices grouped by block, in block order (filled by
  /// Rename, reused by DownSafety).
  std::map<ir::BasicBlock *, std::vector<unsigned>> BlockOccs;
};

/// Wall time spent per stage (microseconds), recorded by the orchestrator
/// into StatsRegistry under "pre.<stage>.us".
struct StageTimings {
  uint64_t PhiInsertion = 0;
  uint64_t Rename = 0;
  uint64_t DownSafety = 0;
  uint64_t WillBeAvail = 0;
  uint64_t CodeMotion = 0;
  uint64_t Apply = 0;
  uint64_t Cleanup = 0;
};

/// Analysis and planning state for one function. Holds the inputs (alias
/// analysis, profiles, config), the cached analyses (dominators, loops —
/// owned by the caller, typically the pass manager's AnalysisCache), the
/// HSSA form, and the accumulated mutation plan.
class PromotionContext {
public:
  PromotionContext(ir::Function &F, const alias::AliasAnalysis &AA,
                   const interp::AliasProfile *Profile,
                   const interp::EdgeProfile *Edges,
                   const PromotionConfig &Config,
                   const ssa::DominatorTree &DT, const ssa::LoopInfo &LI)
      : F(F), AA(AA), Profile(Profile), Edges(Edges), Config(Config),
        DT(DT), LI(LI), H(F, DT, AA, Profile) {}

  PromotionContext(const PromotionContext &) = delete;
  PromotionContext &operator=(const PromotionContext &) = delete;

  ir::Function &F;
  const alias::AliasAnalysis &AA;
  const interp::AliasProfile *Profile;
  const interp::EdgeProfile *Edges;
  const PromotionConfig &Config;
  const ssa::DominatorTree &DT;
  const ssa::LoopInfo &LI;
  ssa::HSSA H;

  std::vector<std::vector<unsigned>> CanonData; ///< strategy collapse
  std::vector<std::vector<unsigned>> CanonAddr; ///< cascade collapse
  std::map<ExprKey, ExprInfo> Exprs;
  std::vector<ir::BasicBlock *> TempDefBlock; ///< by temp id; null if none
  std::vector<unsigned> TempDefCount;         ///< defs per temp
  MutationPlan Plan;
  PromotionStats Stats;
  std::map<std::pair<ir::BasicBlock *, ir::BasicBlock *>, ir::BasicBlock *>
      SplitBlocks;
  /// Promoted temps with their expression ref, for the cleanup pass.
  std::vector<std::pair<unsigned, bool>> PromotedTemps; ///< (temp, indirect)

  /// Whether the active strategy can speculate across this χ on the data
  /// level (ALAT χ_s or a software-checkable store χ).
  bool chiCollapsibleData(const ssa::ChiRecord &Chi) const;
  /// ... and on an address level (chk.a cascade recovery only, §2.4).
  bool chiCollapsibleAddr(const ssa::ChiRecord &Chi) const;

  /// Canonical constituent signature of raw versions \p Raw.
  std::vector<unsigned> canonSigAt(const ExprInfo &E,
                                   const std::vector<unsigned> &Raw) const;
  std::vector<unsigned> rawSigAtEntry(const ExprInfo &E,
                                      ir::BasicBlock *BB) const;
  std::vector<unsigned> rawSigAtExit(const ExprInfo &E,
                                     ir::BasicBlock *BB) const;
  std::vector<unsigned> rawSigOfOcc(const ExprInfo &E,
                                    const Occurrence &O) const;
};

//===----------------------------------------------------------------------===//
// Stage entry points (one translation unit each; see file comment)
//===----------------------------------------------------------------------===//

/// PhiInsertion.cpp: records every temp's defining block (promotion input
/// IR is single-assignment; earlier promotion passes may have broken
/// that, which eligibility checks catch).
void computeTempDefs(PromotionContext &Ctx);

/// PhiInsertion.cpp: gathers promotion candidates into Ctx.Exprs in
/// dominator preorder.
void collectExpressions(PromotionContext &Ctx);

/// PhiInsertion.cpp: true if \p E can be processed at all (has a load,
/// all constituents known, single-def index temp).
bool exprEligible(const PromotionContext &Ctx, const ExprInfo &E);

/// PhiInsertion.cpp: places expression Φs at the iterated dominance
/// frontier of occurrences and constituent definitions.
void insertPhis(PromotionContext &Ctx, const ExprInfo &E, ExprWork &W);

/// Rename.cpp: the speculative Rename walk — assigns versions to
/// occurrences and Φ operands by canonical-signature comparison.
void renameExpression(PromotionContext &Ctx, ExprInfo &E, ExprWork &W);

/// DownSafety.cpp: all-paths anticipation plus the §2.3 control-
/// speculation override for profitable non-down-safe Φs.
void computeDownSafety(PromotionContext &Ctx, const ExprInfo &E,
                       ExprWork &W);

/// WillBeAvail.cpp: CanBeAvail ∧ ¬Later with the edge-profile
/// profitability gate on insertions.
void computeWillBeAvail(PromotionContext &Ctx, const ExprInfo &E,
                        ExprWork &W);

/// CodeMotion.cpp: capture points, crossed-χ feasibility, and the
/// mutation plan for \p E (appends to Ctx.Plan).
void planCodeMotion(PromotionContext &Ctx, ExprInfo &E, ExprWork &W);

/// ApplyPlan.cpp: applies Ctx.Plan to the IR in one batch.
void applyPlan(PromotionContext &Ctx);

/// CheckCleanup.cpp: erases checks whose promoted temp has no reaching
/// definition or no observable use afterwards.
void cleanupChecks(PromotionContext &Ctx);

/// Promoter.cpp: runs all stages for one function and returns the stats.
/// \p Timings, when given, receives the per-stage wall time.
PromotionStats runPromotion(PromotionContext &Ctx,
                            StageTimings *Timings = nullptr);

} // namespace srp::pre::detail

#endif // SRP_PRE_PROMOTIONCONTEXT_H
