//===- Rename.cpp - The speculative SSAPRE Rename walk ------------------------===//
//
// Stage 2 of the staged SSAPRE pass (see PromotionContext.h): a dominator-
// tree walk assigning expression versions to occurrences and Φ operands.
// The version comparison uses *canonical* constituent versions — the
// speculative Rename of §3.3: χs the active strategy can check at run
// time do not end a version, which is what creates speculative
// redundancy.
//
//===----------------------------------------------------------------------===//

#include "pre/PromotionContext.h"

using namespace srp;
using namespace srp::ir;
using namespace srp::pre;
using namespace srp::pre::detail;

void detail::renameExpression(PromotionContext &Ctx, ExprInfo &E,
                              ExprWork &W) {
  // Occurrences grouped by block, in block order.
  W.BlockOccs.clear();
  for (unsigned OI = 0; OI < E.Occs.size(); ++OI)
    W.BlockOccs[E.Occs[OI].BB].push_back(OI);

  struct StackEntry {
    unsigned Ver;
  };
  std::vector<StackEntry> Stack;

  // Recursive dominator walk (explicit stack of work items).
  struct WalkFrame {
    BasicBlock *BB;
    size_t ChildIdx;
    size_t StackMark;
  };
  std::vector<WalkFrame> Walk;
  Walk.push_back({Ctx.F.entry(), 0, 0});

  bool EnteringNew = true;
  while (!Walk.empty()) {
    WalkFrame &Frame = Walk.back();
    BasicBlock *BB = Frame.BB;
    if (EnteringNew) {
      Frame.StackMark = Stack.size();
      // Φ definition.
      unsigned PhiIdx = W.PhiAtBlock[BB->getId()];
      if (PhiIdx != ~0u) {
        ExprPhi &Phi = W.Phis[PhiIdx];
        ExprVer &V = W.Vers[Phi.Version];
        V.RawSig = Ctx.rawSigAtEntry(E, BB);
        V.CanonSig = Ctx.canonSigAt(E, V.RawSig);
        Stack.push_back({Phi.Version});
      }
      // Real occurrences in block order.
      auto OccIt = W.BlockOccs.find(BB);
      if (OccIt != W.BlockOccs.end()) {
        for (unsigned OI : OccIt->second) {
          Occurrence &O = E.Occs[OI];
          std::vector<unsigned> Raw = Ctx.rawSigOfOcc(E, O);
          std::vector<unsigned> Canon = Ctx.canonSigAt(E, Raw);
          if (!O.IsStore && !Stack.empty() &&
              W.Vers[Stack.back().Ver].CanonSig == Canon) {
            // Redundant (possibly speculatively).
            unsigned TopVer = Stack.back().Ver;
            O.Version = TopVer;
            O.Redundant = true;
            O.RawEqual = W.Vers[TopVer].RawSig == Raw;
            W.Vers[TopVer].HasRealUse = true;
            if (W.Vers[TopVer].Kind == ExprVer::DefKind::Phi) {
              // Refinement: if the Φ cannot be materialized, this load
              // stays and anchors the reuses after it.
              ExprVer R;
              R.Kind = ExprVer::DefKind::Real;
              R.DefOcc = OI;
              R.RawSig = std::move(Raw);
              R.CanonSig = std::move(Canon);
              R.RefinesVer = TopVer;
              Stack.push_back({static_cast<unsigned>(W.Vers.size())});
              W.Vers.push_back(std::move(R));
            }
            continue;
          }
          // New version defined by this occurrence.
          ExprVer V;
          V.Kind = ExprVer::DefKind::Real;
          V.DefOcc = OI;
          V.RawSig = std::move(Raw);
          V.CanonSig = std::move(Canon);
          O.Version = static_cast<unsigned>(W.Vers.size());
          W.Vers.push_back(std::move(V));
          Stack.push_back({O.Version});
        }
      }
      // Fill successor Φ operands.
      std::vector<unsigned> ExitRaw = Ctx.rawSigAtExit(E, BB);
      std::vector<unsigned> ExitCanon = Ctx.canonSigAt(E, ExitRaw);
      for (BasicBlock *Succ : BB->succs()) {
        unsigned SuccPhi = W.PhiAtBlock[Succ->getId()];
        if (SuccPhi == ~0u)
          continue;
        ExprPhi &Phi = W.Phis[SuccPhi];
        for (size_t PI = 0; PI < Succ->preds().size(); ++PI) {
          if (Succ->preds()[PI] != BB)
            continue;
          if (!Stack.empty() &&
              W.Vers[Stack.back().Ver].CanonSig == ExitCanon)
            Phi.Operands[PI] = Stack.back().Ver;
        }
      }
    }
    // Descend into dominator-tree children.
    const auto &Kids = Ctx.DT.children(BB);
    if (Frame.ChildIdx < Kids.size()) {
      BasicBlock *Kid = Kids[Frame.ChildIdx++];
      Walk.push_back({Kid, 0, 0});
      EnteringNew = true;
      continue;
    }
    Stack.resize(Frame.StackMark);
    Walk.pop_back();
    EnteringNew = false;
  }
}
