//===- ApplyPlan.cpp - Batch IR mutation -------------------------------------===//
//
// Stage 6 of the staged SSAPRE pass (see PromotionContext.h): executes
// the MutationPlan accumulated by CodeMotion.cpp in one batch — edge
// insertions (splitting critical edges), def rewrites, check statements,
// software compare+select pairs, and reuse→copy rewrites — then
// recomputes the CFG.
//
//===----------------------------------------------------------------------===//

#include "pre/PromotionContext.h"

using namespace srp;
using namespace srp::ir;
using namespace srp::pre;
using namespace srp::pre::detail;

namespace {

BasicBlock *insertionBlockFor(PromotionContext &Ctx, BasicBlock *From,
                              BasicBlock *To) {
  if (From->succs().size() == 1)
    return From;
  auto Key = std::make_pair(From, To);
  auto It = Ctx.SplitBlocks.find(Key);
  if (It != Ctx.SplitBlocks.end())
    return It->second;
  BasicBlock *Split =
      Ctx.F.createBlock(From->getName() + "." + To->getName() + ".split");
  Split->term().Kind = TermKind::Br;
  Split->term().Target = To;
  Terminator &T = From->term();
  if (T.Target == To)
    T.Target = Split;
  if (T.Kind == TermKind::CondBr && T.FalseTarget == To)
    T.FalseTarget = Split;
  Ctx.SplitBlocks[Key] = Split;
  return Split;
}

} // namespace

void detail::applyPlan(PromotionContext &Ctx) {
  Function &F = Ctx.F;
  MutationPlan &Plan = Ctx.Plan;
  // Edge insertions first (they create blocks; nothing else refers to
  // statement positions in them).
  for (const auto &Ins : Plan.EdgeInserts) {
    BasicBlock *BB = insertionBlockFor(Ctx, Ins.From, Ins.To);
    Stmt S;
    S.Kind = StmtKind::Load;
    S.Ref = Ins.Ref;
    S.Flag = Ins.Flag;
    S.Dst = Ins.Temp;
    S.AddrDst = Ins.AddrTemp;
    BB->append(std::move(S));
  }
  // Address materializations for software compares on direct refs.
  for (const auto &Mat : Plan.AddrMats) {
    Stmt S;
    S.Kind = StmtKind::AddrOf;
    S.Ref = Mat.Ref;
    S.Ref.Depth = 0;
    S.Ref.ValueType = Mat.Ref.Base->ElemType;
    S.Dst = Mat.Temp;
    Mat.Ref.Base->AddressTaken = true;
    F.entry()->insertBefore(0, std::move(S));
  }
  for (const auto &Inv : Plan.Invalas) {
    Stmt S;
    S.Kind = StmtKind::Invala;
    S.Dst = Inv.Temp;
    Inv.BB->insertBefore(0, std::move(S));
  }
  // Defining loads: retarget to the promoted temp, preserve the old temp
  // via a copy.
  for (const auto &R : Plan.DefLoads) {
    unsigned OldDst = R.S->Dst;
    R.S->Dst = R.Temp;
    R.S->Flag = R.Flag;
    R.S->AddrDst = R.AddrTemp;
    Stmt Copy;
    Copy.Kind = StmtKind::Assign;
    Copy.Op = Opcode::Copy;
    Copy.Dst = OldDst;
    Copy.A = Operand::temp(R.Temp);
    for (unsigned BI = 0; BI < F.numBlocks(); ++BI) {
      BasicBlock *Blk = F.block(BI);
      for (size_t SI = 0; SI < Blk->size(); ++SI) {
        if (Blk->stmt(SI) == R.S) {
          Blk->insertAfter(SI, std::move(Copy));
          BI = F.numBlocks();
          break;
        }
      }
    }
  }
  // Defining stores.
  for (const auto &R : Plan.DefStores) {
    for (unsigned BI = 0; BI < F.numBlocks(); ++BI) {
      BasicBlock *Blk = F.block(BI);
      for (size_t SI = 0; SI < Blk->size(); ++SI) {
        if (Blk->stmt(SI) != R.S)
          continue;
        // st.a only applies when the chain pointer coincides with the
        // final store address (no index/offset): the store's exposed
        // address then doubles as the checks' chain pointer.
        bool StAApplicable =
            R.Ref.isDirect() ||
            (!R.Ref.hasIndex() && R.Ref.Offset == 0);
        if (R.UseStA && R.NeedAlat && StAApplicable) {
          R.S->StA = true;
          R.S->AlatDst = R.Temp;
          if (R.AddrTemp != NoTemp)
            R.S->AddrDst = R.AddrTemp;
          ++Ctx.Stats.StAStores;
          Stmt Copy;
          Copy.Kind = StmtKind::Assign;
          Copy.Op = Opcode::Copy;
          Copy.Dst = R.Temp;
          Copy.A = R.S->A;
          Blk->insertAfter(SI, std::move(Copy));
        } else if (R.NeedAlat) {
          // The paper's read-after-write form: an explicit ld.a after the
          // store secures the ALAT entry (Figure 1(b)). It re-walks the
          // reference chain and exposes the chain pointer for the checks.
          Stmt Ld;
          Ld.Kind = StmtKind::Load;
          Ld.Ref = R.Ref;
          Ld.Flag = SpecFlag::LdA;
          Ld.Dst = R.Temp;
          Ld.AddrDst = R.AddrTemp;
          Blk->insertAfter(SI, std::move(Ld));
          ++Ctx.Stats.AdvancedLoads;
        } else {
          // No ALAT entry wanted, but software compares still need the
          // web's address temp live: expose the store's address so the
          // pairs after later ambiguous stores compare against it.
          if (R.AddrTemp != NoTemp)
            R.S->AddrDst = R.AddrTemp;
          Stmt Copy;
          Copy.Kind = StmtKind::Assign;
          Copy.Op = Opcode::Copy;
          Copy.Dst = R.Temp;
          Copy.A = R.S->A;
          Blk->insertAfter(SI, std::move(Copy));
        }
        BI = F.numBlocks();
        break;
      }
    }
  }
  // ALAT checks after speculatively ignored stores.
  for (const auto &C : Plan.Checks) {
    for (unsigned BI = 0; BI < F.numBlocks(); ++BI) {
      BasicBlock *Blk = F.block(BI);
      for (size_t SI = 0; SI < Blk->size(); ++SI) {
        if (Blk->stmt(SI) != C.After)
          continue;
        Stmt S;
        S.Kind = StmtKind::Load;
        S.Ref = C.Ref;
        S.Flag = C.Cascade ? SpecFlag::ChkAnc : SpecFlag::LdCnc;
        S.Dst = C.Temp;
        S.AddrSrc = C.AddrTemp;
        Blk->insertAfter(SI, std::move(S));
        BI = F.numBlocks();
        break;
      }
    }
  }
  // Software compare+forward pairs. For indirect expressions the saved
  // chain pointer needs the constant offset re-applied to give the final
  // address (symbolic indices were excluded at planning time).
  for (const auto &C : Plan.SoftwareChecks) {
    for (unsigned BI = 0; BI < F.numBlocks(); ++BI) {
      BasicBlock *Blk = F.block(BI);
      for (size_t SI = 0; SI < Blk->size(); ++SI) {
        Stmt *Store = Blk->stmt(SI);
        if (Store != C.After)
          continue;
        if (Store->AddrDst == NoTemp)
          Store->AddrDst = F.createTemp(TypeKind::Int);
        size_t Pos = SI;
        unsigned ExprAddr = C.ExprAddrTemp;
        if (C.ExprAddrIsChainPtr && C.ExtraOffset != 0) {
          Stmt AddExtra;
          AddExtra.Kind = StmtKind::Assign;
          AddExtra.Op = Opcode::Add;
          AddExtra.Dst = F.createTemp(TypeKind::Int);
          AddExtra.A = Operand::temp(C.ExprAddrTemp);
          AddExtra.B = Operand::constInt(C.ExtraOffset);
          ExprAddr = AddExtra.Dst;
          Blk->insertAfter(Pos++, std::move(AddExtra));
        }
        Stmt Cmp;
        Cmp.Kind = StmtKind::Assign;
        Cmp.Op = Opcode::CmpEq;
        Cmp.Dst = F.createTemp(TypeKind::Int);
        Cmp.A = Operand::temp(Store->AddrDst);
        Cmp.B = Operand::temp(ExprAddr);
        unsigned CmpDst = Cmp.Dst;
        Operand StoredVal = Store->A;
        Blk->insertAfter(Pos++, std::move(Cmp));
        Stmt Sel;
        Sel.Kind = StmtKind::Assign;
        Sel.Op = Opcode::Select;
        Sel.Dst = C.Temp;
        Sel.A = Operand::temp(CmpDst);
        Sel.B = StoredVal;
        Sel.C = Operand::temp(C.Temp);
        Blk->insertAfter(Pos, std::move(Sel));
        BI = F.numBlocks();
        break;
      }
    }
  }
  // Invala-mode reuses: keep the load, retarget to the promoted temp with
  // a checking flag, preserve the old temp via a copy.
  for (const auto &R : Plan.InvalaReuses) {
    unsigned OldDst = R.S->Dst;
    R.S->Dst = R.Temp;
    R.S->Flag = R.Flag;
    R.S->AddrSrc = R.AddrSrc;
    Stmt Copy;
    Copy.Kind = StmtKind::Assign;
    Copy.Op = Opcode::Copy;
    Copy.Dst = OldDst;
    Copy.A = Operand::temp(R.Temp);
    for (unsigned BI = 0; BI < F.numBlocks(); ++BI) {
      BasicBlock *Blk = F.block(BI);
      for (size_t SI = 0; SI < Blk->size(); ++SI) {
        if (Blk->stmt(SI) == R.S) {
          Blk->insertAfter(SI, std::move(Copy));
          BI = F.numBlocks();
          break;
        }
      }
    }
  }
  // Redundant loads become register copies in place: the promoted temp
  // holds the version's value exactly here (checks may redefine it later,
  // so uses must snapshot it at the original load point).
  for (const auto &R : Plan.Reuses) {
    Stmt *S = R.S;
    S->Kind = StmtKind::Assign;
    S->Op = Opcode::Copy;
    S->A = Operand::temp(R.Temp);
    S->B = Operand();
    S->Ref = MemRef();
    S->Flag = SpecFlag::None;
    S->AddrDst = NoTemp;
    S->AddrSrc = NoTemp;
  }
  F.recomputeCFG();
}
