//===- Promoter.h - SSAPRE-based speculative register promotion -*- C++ -*-===//
//
// Part of the srp-alat project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's compiler algorithm (§3): register promotion of loads based
/// on SSAPRE (Kennedy et al., TOPLAS'99) over the HSSA form, extended with
/// alias speculation. Per lexical memory expression the pass runs:
///
///   1. Φ-insertion at the iterated dominance frontier of occurrences and
///      constituent definitions;
///   2. a Rename step whose version comparison uses *canonical* constituent
///      versions — the speculative Rename of §3.3: χs the active strategy
///      can check at run time (speculative χs for ALAT, store χs for the
///      software baseline) do not end a version;
///   3. DownSafety via all-paths anticipation;
///   4. WillBeAvail (CanBeAvail ∧ ¬Later) with an edge-profile
///      profitability gate on insertions;
///   5. CodeMotion (§3.4): defining occurrences become ld.a (or the loop
///      form ld.sa for insertions; st.a or an extra ld.a after store
///      occurrences), redundant loads collapse onto the promoted temp,
///      check statements (ld.c / chk.a for cascades) are placed after each
///      speculatively ignored store, software compare+forward pairs after
///      non-speculative aliasing stores, and invala.e + checking loads
///      implement the Figure 2 strategy where insertion was rejected;
///   6. a cleanup pass that erases checks no use can observe.
///
/// All decisions are made against the pristine CFG; mutations (including
/// critical-edge splits) are applied afterwards in one batch.
///
//===----------------------------------------------------------------------===//

#ifndef SRP_PRE_PROMOTER_H
#define SRP_PRE_PROMOTER_H

#include "interp/Profile.h"
#include "pre/Promotion.h"
#include "ssa/HSSA.h"

namespace srp::ssa {
class AnalysisCache;
} // namespace srp::ssa

namespace srp::pre {

/// Runs promotion on one function. \p Profile supplies the alias profile
/// (may be null: no data speculation) and \p Edges the block/edge counts
/// for profitability (may be null: structural heuristics only).
/// \p Cache, when given, supplies dominators and loop info and is
/// invalidated for \p F after mutation; without one the analyses are
/// computed locally.
PromotionStats promoteFunction(ir::Function &F,
                               const alias::AliasAnalysis &AA,
                               const interp::AliasProfile *Profile,
                               const interp::EdgeProfile *Edges,
                               const PromotionConfig &Config,
                               ssa::AnalysisCache *Cache = nullptr);

/// Runs promotion on every function of \p M and returns aggregate stats.
/// Recomputes each function's CFG afterwards.
PromotionStats promoteModule(ir::Module &M, const alias::AliasAnalysis &AA,
                             const interp::AliasProfile *Profile,
                             const interp::EdgeProfile *Edges,
                             const PromotionConfig &Config,
                             ssa::AnalysisCache *Cache = nullptr);

} // namespace srp::pre

#endif // SRP_PRE_PROMOTER_H
