//===- WillBeAvail.cpp - Availability of expression Φs ------------------------===//
//
// Stage 4 of the staged SSAPRE pass (see PromotionContext.h): the
// classic WillBeAvail = CanBeAvail ∧ ¬Later computation, plus the
// edge-profile profitability gate that rejects insertions executing more
// often than the loads they save.
//
//===----------------------------------------------------------------------===//

#include "pre/PromotionContext.h"

using namespace srp;
using namespace srp::pre;
using namespace srp::pre::detail;

void detail::computeWillBeAvail(PromotionContext &Ctx, const ExprInfo &E,
                                ExprWork &W) {
  auto OperandCBA = [&](unsigned Op) {
    if (Op == ~0u)
      return false;
    const ExprVer &V = W.Vers[Op];
    if (V.Kind == ExprVer::DefKind::Phi)
      return W.Phis[V.PhiId].CanBeAvail;
    return true;
  };
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (ExprPhi &Phi : W.Phis) {
      if (!Phi.CanBeAvail)
        continue;
      if (Phi.DownSafe)
        continue;
      for (unsigned Op : Phi.Operands) {
        if (Op == ~0u || !OperandCBA(Op)) {
          Phi.CanBeAvail = false;
          Changed = true;
          break;
        }
      }
    }
  }
  // Later: an insertion is postponable unless some operand already carries
  // a real value.
  for (ExprPhi &Phi : W.Phis)
    Phi.Later = Phi.CanBeAvail;
  Changed = true;
  while (Changed) {
    Changed = false;
    for (ExprPhi &Phi : W.Phis) {
      if (!Phi.Later)
        continue;
      for (unsigned Op : Phi.Operands) {
        if (Op == ~0u)
          continue;
        const ExprVer &V = W.Vers[Op];
        bool CarriesRealValue =
            V.Kind == ExprVer::DefKind::Real || V.HasRealUse ||
            (V.Kind == ExprVer::DefKind::Phi && !W.Phis[V.PhiId].Later);
        if (CarriesRealValue) {
          Phi.Later = false;
          Changed = true;
          break;
        }
      }
    }
  }
  // Insertion disabled entirely?
  if (!Ctx.Config.EnableInsertion)
    for (ExprPhi &Phi : W.Phis)
      Phi.Unprofitable = true;
  // Edge-profile profitability: an insertion that would execute more often
  // than the loads it saves is rejected.
  if (Ctx.Edges && Ctx.Config.EnableInsertion) {
    for (ExprPhi &Phi : W.Phis) {
      if (!Phi.willBeAvail())
        continue;
      uint64_t InsertCost = 0;
      for (size_t PI = 0; PI < Phi.Operands.size(); ++PI) {
        unsigned Op = Phi.Operands[PI];
        bool NeedsInsert =
            Op == ~0u || (W.Vers[Op].Kind == ExprVer::DefKind::Phi &&
                          !W.Phis[W.Vers[Op].PhiId].willBeAvail());
        if (NeedsInsert)
          InsertCost += Ctx.Edges->edgeCount(Phi.BB->preds()[PI], Phi.BB);
      }
      uint64_t Benefit = 0;
      for (const Occurrence &O : E.Occs)
        if (O.Redundant && O.Version == Phi.Version)
          Benefit += Ctx.Edges->blockCount(O.BB);
      // Benefit through transitive Φs is ignored; this under-approximates
      // but only ever rejects insertions, never miscompiles.
      if (InsertCost > Benefit)
        Phi.Unprofitable = true;
    }
  }
}
