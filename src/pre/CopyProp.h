//===- CopyProp.h - Local copy propagation ----------------------*- C++ -*-===//
//
// Part of the srp-alat project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Block-local copy propagation and dead-assignment elimination. The
/// promotion pass rewrites redundant loads into `tOld = copy tPromoted`
/// snapshots; whenever the promoted temp is not redefined (by a check)
/// between the copy and a use in the same block, the use can read the
/// promoted temp directly and the copy usually dies. Real compilers
/// coalesce these moves during register allocation; doing it here keeps
/// the simulated instruction stream honest.
///
//===----------------------------------------------------------------------===//

#ifndef SRP_PRE_COPYPROP_H
#define SRP_PRE_COPYPROP_H

#include "ir/CFG.h"

namespace srp::pre {

struct CopyPropStats {
  unsigned UsesRewritten = 0;
  unsigned AssignsRemoved = 0;
};

/// Runs local copy propagation followed by dead pure-assignment removal
/// (to a fixpoint) on \p F.
CopyPropStats propagateCopies(ir::Function &F);

} // namespace srp::pre

#endif // SRP_PRE_COPYPROP_H
