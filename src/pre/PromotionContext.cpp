//===- PromotionContext.cpp - Shared helpers of the SSAPRE stages -------------===//

#include "pre/PromotionContext.h"

#include <cassert>

using namespace srp;
using namespace srp::ir;
using namespace srp::ssa;
using namespace srp::pre;
using namespace srp::pre::detail;

bool PromotionContext::chiCollapsibleData(const ChiRecord &Chi) const {
  if (!Chi.S || !Chi.S->isStore())
    return false; // Calls always end a version.
  if (Config.EnableAlat && Chi.Spec)
    return true;
  return Config.EnableSoftwareCheck;
}

bool PromotionContext::chiCollapsibleAddr(const ChiRecord &Chi) const {
  // Address parts may only be speculated with chk.a recovery (§2.4).
  return Config.EnableAlat && Config.EnableCascade && Chi.S &&
         Chi.S->isStore() && Chi.Spec;
}

std::vector<unsigned>
PromotionContext::canonSigAt(const ExprInfo &E,
                             const std::vector<unsigned> &Raw) const {
  std::vector<unsigned> Sig(Raw.size());
  for (size_t L = 0; L < Raw.size(); ++L) {
    ObjectId Obj = E.Constituents[L];
    bool IsData = L + 1 == Raw.size();
    Sig[L] = IsData ? CanonData[Obj][Raw[L]] : CanonAddr[Obj][Raw[L]];
  }
  return Sig;
}

std::vector<unsigned>
PromotionContext::rawSigAtEntry(const ExprInfo &E, BasicBlock *BB) const {
  std::vector<unsigned> Raw;
  Raw.reserve(E.Constituents.size());
  for (ObjectId Obj : E.Constituents)
    Raw.push_back(H.versionAtEntry(BB, Obj));
  return Raw;
}

std::vector<unsigned>
PromotionContext::rawSigAtExit(const ExprInfo &E, BasicBlock *BB) const {
  std::vector<unsigned> Raw;
  Raw.reserve(E.Constituents.size());
  for (ObjectId Obj : E.Constituents)
    Raw.push_back(H.versionAtExit(BB, Obj));
  return Raw;
}

std::vector<unsigned>
PromotionContext::rawSigOfOcc(const ExprInfo &E, const Occurrence &O) const {
  const StmtAccess *Acc = H.accessInfo(O.S);
  assert(Acc && "occurrence without access info");
  std::vector<unsigned> Raw = Acc->LevelVers;
  if (O.IsStore)
    Raw.back() = Acc->DefVer; // A store provides the version it defines.
  return Raw;
}
