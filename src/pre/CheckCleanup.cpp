//===- CheckCleanup.cpp - Dead check elimination -------------------------------===//
//
// Stage 7 of the staged SSAPRE pass (see PromotionContext.h): erases
// checks (the ld.c family inserted after stores) whose promoted temp
// either has no reaching definition or no observable use afterwards.
// Runs two cheap per-temp bit-vector dataflows (reaching-def forward,
// liveness backward) instead of rebuilding SSA.
//
//===----------------------------------------------------------------------===//

#include "pre/PromotionContext.h"

#include <algorithm>

using namespace srp;
using namespace srp::ir;
using namespace srp::pre;
using namespace srp::pre::detail;

void detail::cleanupChecks(PromotionContext &Ctx) {
  Function &F = Ctx.F;
  std::set<const Stmt *> Protected;
  for (const auto &R : Ctx.Plan.InvalaReuses)
    Protected.insert(R.S);
  for (const auto &TI : Ctx.PromotedTemps) {
    unsigned Temp = TI.first;
    unsigned NumBlocks = F.numBlocks();
    // A "definition" is any statement writing Temp that is not itself a
    // check; a "use" is any read of Temp by a non-check statement.
    auto IsCheck = [&](const Stmt *S) {
      return S->isLoad() && isCheckFlag(S->Flag) && S->Dst == Temp &&
             !Protected.count(S);
    };
    auto Defines = [&](const Stmt *S) {
      return (S->definesTemp() && S->Dst == Temp) ||
             (S->isStore() && S->AlatDst == Temp);
    };
    auto Uses = [&](const Stmt *S) {
      std::vector<unsigned> Used;
      S->collectUsedTemps(Used);
      if (std::find(Used.begin(), Used.end(), Temp) != Used.end())
        return true;
      return false;
    };
    auto TermUses = [&](const Terminator &T) {
      return (T.Cond.isTemp() && T.Cond.TempId == Temp) ||
             (T.RetVal.isTemp() && T.RetVal.TempId == Temp);
    };

    // Forward "some def reaches" per block entry.
    std::vector<char> DefReachIn(NumBlocks, 0), DefReachOut(NumBlocks, 0);
    // Backward "some use is ahead before any def" per block exit.
    std::vector<char> LiveIn(NumBlocks, 0), LiveOut(NumBlocks, 0);
    // Per-block summaries.
    std::vector<char> HasDef(NumBlocks, 0), UseBeforeDef(NumBlocks, 0);
    for (unsigned BI = 0; BI < NumBlocks; ++BI) {
      BasicBlock *BB = F.block(BI);
      bool SeenDef = false;
      for (size_t SI = 0; SI < BB->size(); ++SI) {
        const Stmt *S = BB->stmt(SI);
        if (Uses(S) && !SeenDef && !IsCheck(S))
          UseBeforeDef[BI] = 1;
        if (Defines(S) && !IsCheck(S))
          SeenDef = true;
      }
      if (TermUses(BB->term()) && !SeenDef)
        UseBeforeDef[BI] = 1;
      HasDef[BI] = SeenDef;
    }
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (unsigned BI = 0; BI < NumBlocks; ++BI) {
        BasicBlock *BB = F.block(BI);
        char In = 0;
        for (BasicBlock *Pred : BB->preds())
          In |= DefReachOut[Pred->getId()];
        char Out = HasDef[BI] | In;
        if (In != DefReachIn[BI] || Out != DefReachOut[BI]) {
          DefReachIn[BI] = In;
          DefReachOut[BI] = Out;
          Changed = true;
        }
      }
    }
    Changed = true;
    while (Changed) {
      Changed = false;
      for (unsigned BI = 0; BI < NumBlocks; ++BI) {
        BasicBlock *BB = F.block(BI);
        char Out = 0;
        for (BasicBlock *Succ : BB->succs())
          Out |= LiveIn[Succ->getId()];
        char In = UseBeforeDef[BI] | Out; // Checks don't kill liveness.
        if (In != LiveIn[BI] || Out != LiveOut[BI]) {
          LiveIn[BI] = In;
          LiveOut[BI] = Out;
          Changed = true;
        }
      }
    }

    // Scan each block and erase dead checks.
    for (unsigned BI = 0; BI < NumBlocks; ++BI) {
      BasicBlock *BB = F.block(BI);
      for (size_t SI = 0; SI < BB->size();) {
        Stmt *S = BB->stmt(SI);
        if (!IsCheck(S)) {
          ++SI;
          continue;
        }
        // Def available before this check?
        bool DefBefore = DefReachIn[BI];
        for (size_t SJ = 0; SJ < SI; ++SJ)
          if (Defines(BB->stmt(SJ)) && !IsCheck(BB->stmt(SJ)))
            DefBefore = true;
        // Use after this check before a non-check def?
        bool UseAfter = false;
        bool Killed = false;
        for (size_t SJ = SI + 1; SJ < BB->size() && !Killed; ++SJ) {
          const Stmt *S2 = BB->stmt(SJ);
          if (Uses(S2)) {
            UseAfter = true;
            break;
          }
          if (Defines(S2) && !IsCheck(S2))
            Killed = true;
        }
        if (!Killed && !UseAfter)
          UseAfter = TermUses(BB->term()) || LiveOut[BI];
        if (DefBefore && UseAfter) {
          ++SI;
          continue;
        }
        BB->erase(SI);
        ++Ctx.Stats.ChecksRemovedByCleanup;
      }
    }
  }
}
