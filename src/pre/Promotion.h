//===- Promotion.h - Register promotion configuration ------------*- C++ -*-===//
//
// Part of the srp-alat project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Configuration and statistics of the PRE-based register promotion pass.
/// The three strategies the paper's evaluation compares:
///
///  * conservative() — PRE-based promotion that respects every may-alias
///    (what plain -O2-style promotion can do);
///  * baselineO3()   — adds the software run-time disambiguation of
///    Nicolau [30]: an address compare plus conditional register forwarding
///    after each possibly-aliasing store (ORC enables this at -O3, and the
///    paper's baseline includes it);
///  * alat()         — the paper: adds profile-guided data speculation
///    with ALAT advanced loads and checks on top of the baseline.
///
//===----------------------------------------------------------------------===//

#ifndef SRP_PRE_PROMOTION_H
#define SRP_PRE_PROMOTION_H

#include <cstdint>

namespace srp::pre {

/// Knobs of the promotion pass.
struct PromotionConfig {
  /// Software compare+forward checks after aliasing stores [30].
  bool EnableSoftwareCheck = false;
  /// ALAT data speculation (requires an alias profile to find χ_s).
  bool EnableAlat = false;
  /// Allow speculating the address part of indirect references; failed
  /// checks then need chk.a recovery (§2.4). Off by default, matching the
  /// paper's implementation ("limited to expressions that will not cause
  /// cascaded failure").
  bool EnableCascade = false;
  /// Use the proposed st.a store (§2.5) instead of an extra ld.a after
  /// store occurrences.
  bool UseStA = false;
  /// Use invala.e + checking loads for partially redundant loads whose
  /// PRE insertion is rejected (Figure 2). Direct references only.
  bool UseInvala = true;
  /// Allow PRE insertions on incoming edges (control speculation).
  bool EnableInsertion = true;
  /// Place ALAT checks at the reuse site (the checking load itself is
  /// the reuse, Figure 1's form) instead of §3.4's check statement after
  /// each speculatively ignored store. After-store placement lets one
  /// check cover several later reuses; at-reuse placement keeps exactly
  /// one check per former load. Sound here without invala.e because the
  /// modeled ALAT verifies the full address on check hits.
  bool ChecksAtReuse = false;
  /// Apply software compare+forward to integer-typed expressions too.
  /// Off by default: an L1-hit integer load costs about what the
  /// compare+predicated-move pair does, so forwarding only clearly pays
  /// for floating-point loads (9 cycles on Itanium). The paper's ORC
  /// baseline gates the transformation with similar profitability
  /// heuristics.
  bool SoftwareCheckIntExprs = false;
  /// Maximum number of compare+forward pairs a software-checked reuse
  /// chain may need before promotion is considered unprofitable. The
  /// run-time disambiguation of [30] is pairwise (one compare and one
  /// predicated move per store), so the default allows a single pair —
  /// reuse chains crossing several ambiguous stores are exactly where
  /// the ALAT's single free check wins (§5).
  unsigned SoftwareMaxChecks = 1;

  static PromotionConfig conservative() { return {}; }

  static PromotionConfig baselineO3() {
    PromotionConfig C;
    C.EnableSoftwareCheck = true;
    return C;
  }

  static PromotionConfig alat() {
    PromotionConfig C;
    C.EnableSoftwareCheck = true;
    C.EnableAlat = true;
    return C;
  }
};

/// What the pass did (aggregated per module by the pipeline).
struct PromotionStats {
  unsigned PromotedExprs = 0;      ///< Expressions with at least one rewrite.
  unsigned LoadsRemovedDirect = 0; ///< Reuse loads of direct refs removed.
  unsigned LoadsRemovedIndirect = 0; ///< ... of indirect refs.
  unsigned AdvancedLoads = 0;      ///< ld.a / ld.sa flags placed.
  unsigned InsertedLoads = 0;      ///< PRE insertions on edges.
  unsigned ChecksInserted = 0;     ///< ld.c check statements placed.
  unsigned CascadeChecks = 0;      ///< chk.a check statements placed.
  unsigned InvalaInserted = 0;     ///< invala.e statements placed.
  unsigned InvalaModeLoads = 0;    ///< reuses turned into checking loads.
  unsigned SoftwareChecks = 0;     ///< compare+forward pairs placed.
  unsigned StAStores = 0;          ///< st.a completers placed.
  unsigned ChecksRemovedByCleanup = 0;
  /// Profile-weighted (dynamic) removal estimates: each removed load
  /// counted by its block's train execution count. Figure 9's
  /// direct/indirect split uses these.
  uint64_t DynLoadsRemovedDirect = 0;
  uint64_t DynLoadsRemovedIndirect = 0;

  PromotionStats &operator+=(const PromotionStats &O) {
    PromotedExprs += O.PromotedExprs;
    LoadsRemovedDirect += O.LoadsRemovedDirect;
    LoadsRemovedIndirect += O.LoadsRemovedIndirect;
    AdvancedLoads += O.AdvancedLoads;
    InsertedLoads += O.InsertedLoads;
    ChecksInserted += O.ChecksInserted;
    CascadeChecks += O.CascadeChecks;
    InvalaInserted += O.InvalaInserted;
    InvalaModeLoads += O.InvalaModeLoads;
    SoftwareChecks += O.SoftwareChecks;
    StAStores += O.StAStores;
    ChecksRemovedByCleanup += O.ChecksRemovedByCleanup;
    DynLoadsRemovedDirect += O.DynLoadsRemovedDirect;
    DynLoadsRemovedIndirect += O.DynLoadsRemovedIndirect;
    return *this;
  }

  unsigned loadsRemoved() const {
    return LoadsRemovedDirect + LoadsRemovedIndirect;
  }
};

} // namespace srp::pre

#endif // SRP_PRE_PROMOTION_H
