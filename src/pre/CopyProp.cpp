//===- CopyProp.cpp - Local copy propagation ----------------------------------===//

#include "pre/CopyProp.h"

#include <map>
#include <vector>

using namespace srp;
using namespace srp::ir;
using namespace srp::pre;

namespace {

/// Chases a temp through the currently-valid copy map.
unsigned chase(const std::map<unsigned, unsigned> &CopyOf, unsigned Temp) {
  auto It = CopyOf.find(Temp);
  while (It != CopyOf.end()) {
    Temp = It->second;
    It = CopyOf.find(Temp);
  }
  return Temp;
}

} // namespace

CopyPropStats srp::pre::propagateCopies(ir::Function &F) {
  CopyPropStats Stats;

  // Pass 1: block-local propagation.
  for (unsigned BI = 0; BI < F.numBlocks(); ++BI) {
    BasicBlock *BB = F.block(BI);
    std::map<unsigned, unsigned> CopyOf;
    auto Rewrite = [&](Operand &Op) {
      if (!Op.isTemp())
        return;
      unsigned To = chase(CopyOf, Op.TempId);
      if (To != Op.TempId) {
        Op.TempId = To;
        ++Stats.UsesRewritten;
      }
    };
    auto Invalidate = [&](unsigned Redefined) {
      CopyOf.erase(Redefined);
      for (auto It = CopyOf.begin(); It != CopyOf.end();) {
        if (It->second == Redefined)
          It = CopyOf.erase(It);
        else
          ++It;
      }
    };
    for (size_t SI = 0; SI < BB->size(); ++SI) {
      Stmt *S = BB->stmt(SI);
      Rewrite(S->A);
      Rewrite(S->B);
      Rewrite(S->C);
      Rewrite(S->Ref.Index);
      for (Operand &Arg : S->Args)
        Rewrite(Arg);
      if (S->AddrSrc != NoTemp) {
        unsigned To = chase(CopyOf, S->AddrSrc);
        if (To != S->AddrSrc) {
          S->AddrSrc = To;
          ++Stats.UsesRewritten;
        }
      }
      if (S->definesTemp())
        Invalidate(S->Dst);
      if (S->AddrDst != NoTemp)
        Invalidate(S->AddrDst);
      if (S->Kind == StmtKind::Store && S->AlatDst != NoTemp)
        Invalidate(S->AlatDst);
      // Skip self-copies (a rewritten `t = copy t`): recording t->t would
      // put a cycle in the map and send chase() spinning.
      if (S->Kind == StmtKind::Assign && S->Op == Opcode::Copy &&
          S->A.isTemp() && S->A.TempId != S->Dst)
        CopyOf[S->Dst] = S->A.TempId;
    }
    Rewrite(BB->term().Cond);
    Rewrite(BB->term().RetVal);
  }

  // Pass 2: dead pure-assignment elimination to a fixpoint.
  bool Changed = true;
  while (Changed) {
    Changed = false;
    std::vector<unsigned> UseCount(F.numTemps(), 0);
    auto Count = [&](const Operand &Op) {
      if (Op.isTemp())
        ++UseCount[Op.TempId];
    };
    for (unsigned BI = 0; BI < F.numBlocks(); ++BI) {
      BasicBlock *BB = F.block(BI);
      for (size_t SI = 0; SI < BB->size(); ++SI) {
        const Stmt *S = BB->stmt(SI);
        Count(S->A);
        Count(S->B);
        Count(S->C);
        Count(S->Ref.Index);
        for (const Operand &Arg : S->Args)
          Count(Arg);
        if (S->AddrSrc != NoTemp)
          ++UseCount[S->AddrSrc];
        if (S->Kind == StmtKind::Invala)
          ++UseCount[S->Dst]; // invala.e names the temp's register
        if (S->Kind == StmtKind::Store && S->AlatDst != NoTemp)
          ++UseCount[S->AlatDst];
      }
      Count(BB->term().Cond);
      Count(BB->term().RetVal);
    }
    for (unsigned BI = 0; BI < F.numBlocks(); ++BI) {
      BasicBlock *BB = F.block(BI);
      for (size_t SI = 0; SI < BB->size();) {
        const Stmt *S = BB->stmt(SI);
        if (S->Kind == StmtKind::Assign && UseCount[S->Dst] == 0) {
          BB->erase(SI);
          ++Stats.AssignsRemoved;
          Changed = true;
          continue;
        }
        ++SI;
      }
    }
  }
  return Stats;
}
