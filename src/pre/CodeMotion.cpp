//===- CodeMotion.cpp - Mutation planning (§3.4) -------------------------------===//
//
// Stage 5 of the staged SSAPRE pass (see PromotionContext.h): decides,
// per expression, which reuses become register copies or checking loads,
// where PRE insertions and check statements go, and records everything in
// the shared MutationPlan. Purely analytical — ApplyPlan.cpp performs the
// IR mutations afterwards in one batch.
//
//===----------------------------------------------------------------------===//

#include "pre/PromotionContext.h"

#include <algorithm>

using namespace srp;
using namespace srp::ir;
using namespace srp::ssa;
using namespace srp::pre;
using namespace srp::pre::detail;

namespace {

/// Collects every collapsible χ on the version chain from \p FromVer
/// down to the nearest *capture points* (\p StopVers: raw versions at
/// saved defs and edge insertions) of \p Obj — these are exactly the
/// stores the reuse is speculated across and therefore the places check
/// statements must follow. φs fan out into all arguments: a pinned φ (a
/// real merge) still feeds the reuse through every arm, so each arm's
/// stores need checks just like an in-web arm's. Returns false when some
/// chain ends anywhere other than a capture point — a value reaches the
/// reuse that the promoted temp never captured, so no set of checks can
/// make the rewrite sound and the caller must drop the reuse.
bool collectCrossedChis(const PromotionContext &Ctx, ObjectId Obj,
                        unsigned FromVer,
                        const std::set<unsigned> &StopVers, bool DataLevel,
                        std::vector<const ChiRecord *> &Out) {
  std::set<unsigned> Visited;
  std::vector<unsigned> Work{FromVer};
  bool AllCaptured = true;
  while (!Work.empty()) {
    unsigned Ver = Work.back();
    Work.pop_back();
    if (!Visited.insert(Ver).second)
      continue;
    // A capture point ends the chain: the promoted temp was (re)written
    // with the expression's value at a program point carrying this raw
    // version, so χs at or above it are not between capture and reuse.
    if (StopVers.count(Ver))
      continue;
    const VersionOrigin &O = Ctx.H.origin(Obj, Ver);
    switch (O.K) {
    case VersionOrigin::Kind::Chi: {
      const ChiRecord &Chi = Ctx.H.chi(O.ChiIndex);
      bool Collapsible = DataLevel ? Ctx.chiCollapsibleData(Chi)
                                   : Ctx.chiCollapsibleAddr(Chi);
      if (!Collapsible) {
        // The reuse would read through a may-def no check can cover.
        AllCaptured = false;
        break;
      }
      if (std::find(Out.begin(), Out.end(), &Chi) == Out.end())
        Out.push_back(&Chi);
      Work.push_back(Chi.UseVer);
      break;
    }
    case VersionOrigin::Kind::Phi: {
      const auto &Phis2 = Ctx.H.phisOf(O.BB);
      if (O.PhiIndex < Phis2.size())
        for (unsigned Arg : Phis2[O.PhiIndex].Args)
          Work.push_back(Arg);
      break;
    }
    case VersionOrigin::Kind::LiveIn:
    case VersionOrigin::Kind::RealDef:
      // An uncaptured value source: on this path the temp was never
      // written with the expression's current value.
      AllCaptured = false;
      break;
    }
  }
  return AllCaptured;
}

} // namespace

void detail::planCodeMotion(PromotionContext &Ctx, ExprInfo &E,
                            ExprWork &W) {
  Function &F = Ctx.F;
  MutationPlan &Plan = Ctx.Plan;
  bool Indirect = E.Ref.isIndirect();

  // Which versions are available (def real, or def Φ that will be avail)?
  auto VersionAvailable = [&](unsigned Ver) {
    const ExprVer &V = W.Vers[Ver];
    if (V.Kind == ExprVer::DefKind::Real)
      return true;
    return W.Phis[V.PhiId].willBeAvail();
  };

  //===--------------------------------------------------------------===//
  // Phase A: tentative rewrites and capture points.
  //===--------------------------------------------------------------===//
  // A redundant load whose version is available will be rewritten; one
  // that is not may still become an invala-mode checking load (Figure 2).
  std::vector<unsigned> AvailReuses;
  std::vector<unsigned> InvalaOccs;
  std::set<unsigned> InvalaPhiVers;
  std::set<unsigned> SavedVersions;
  for (unsigned OI = 0; OI < E.Occs.size(); ++OI) {
    Occurrence &O = E.Occs[OI];
    if (!O.Redundant)
      continue;
    if (VersionAvailable(O.Version)) {
      AvailReuses.push_back(OI);
      SavedVersions.insert(O.Version);
      continue;
    }
    // Figure 2 strategy: only for scalar refs — the checking load's
    // address must be the same at every execution for the ALAT entry to
    // mean anything.
    if (Ctx.Config.EnableAlat && Ctx.Config.UseInvala && !Indirect &&
        !O.IsStore && !E.Ref.hasIndex()) {
      InvalaOccs.push_back(OI);
      InvalaPhiVers.insert(O.Version);
      SavedVersions.insert(O.Version);
    }
  }
  if (AvailReuses.empty() && InvalaOccs.empty())
    return;

  // Transitive closure: a saved Φ version saves its operands (invala-mode
  // Φs included, so their defining loads get ld.a flags).
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (const ExprPhi &Phi : W.Phis) {
      if (!SavedVersions.count(Phi.Version))
        continue;
      if (!Phi.willBeAvail() && !InvalaPhiVers.count(Phi.Version))
        continue;
      for (unsigned Op : Phi.Operands)
        if (Op != ~0u && SavedVersions.insert(Op).second)
          Changed = true;
    }
  }

  // Planned edge insertions (needed now: they are capture points too).
  struct PlannedInsert {
    const ExprPhi *Phi;
    size_t OperandIdx;
  };
  std::vector<PlannedInsert> Inserts;
  for (const ExprPhi &Phi : W.Phis) {
    if (!Phi.willBeAvail())
      continue;
    if (!SavedVersions.count(Phi.Version) &&
        !W.Vers[Phi.Version].HasRealUse)
      continue;
    for (size_t PI = 0; PI < Phi.Operands.size(); ++PI) {
      unsigned Op = Phi.Operands[PI];
      bool NeedsInsert =
          Op == ~0u || (W.Vers[Op].Kind == ExprVer::DefKind::Phi &&
                        !W.Phis[W.Vers[Op].PhiId].willBeAvail());
      if (NeedsInsert)
        Inserts.push_back({&Phi, PI});
    }
  }

  // A refinement version whose Φ materializes is superseded: the promoted
  // temp already carries the value there, so its defining occurrence is
  // an ordinary reuse, not a capture point.
  auto RefinementSuperseded = [&](const ExprVer &V) {
    return V.RefinesVer != ~0u &&
           W.Vers[V.RefinesVer].Kind == ExprVer::DefKind::Phi &&
           W.Phis[W.Vers[V.RefinesVer].PhiId].willBeAvail();
  };

  // Capture points per reuse *version*: the raw signatures at which the
  // promoted temp is (re)written on the paths that define that version —
  // its real def, or recursively its Φ's operand defs and the planned
  // edge insertions. A flat per-expression stop set would be wrong: a
  // capture somewhere below the reuse can carry the same raw version at
  // one level and mask the χs the reuse actually crosses.
  std::map<unsigned, std::vector<std::set<unsigned>>> CaptureStops;
  auto captureStopsFor =
      [&](unsigned RootVer) -> const std::vector<std::set<unsigned>> & {
    auto It = CaptureStops.find(RootVer);
    if (It != CaptureStops.end())
      return It->second;
    std::vector<std::set<unsigned>> Stops(E.Constituents.size());
    auto Add = [&](const std::vector<unsigned> &Raw) {
      for (size_t L = 0; L < Raw.size() && L < Stops.size(); ++L)
        Stops[L].insert(Raw[L]);
    };
    std::set<unsigned> Seen{RootVer};
    std::vector<unsigned> Pending{RootVer};
    while (!Pending.empty()) {
      unsigned Ver = Pending.back();
      Pending.pop_back();
      const ExprVer &V = W.Vers[Ver];
      if (V.Kind == ExprVer::DefKind::Real) {
        // A superseded refinement is an ordinary reuse, not a capture;
        // the temp's value there comes from the Φ it refines.
        if (RefinementSuperseded(V)) {
          if (Seen.insert(V.RefinesVer).second)
            Pending.push_back(V.RefinesVer);
        } else {
          Add(V.RawSig);
        }
        continue;
      }
      const ExprPhi &Phi = W.Phis[V.PhiId];
      for (size_t PI = 0; PI < Phi.Operands.size(); ++PI) {
        unsigned Op = Phi.Operands[PI];
        bool Inserted =
            Op == ~0u || (W.Vers[Op].Kind == ExprVer::DefKind::Phi &&
                          !W.Phis[W.Vers[Op].PhiId].willBeAvail());
        if (Inserted)
          Add(Ctx.rawSigAtExit(E, Phi.BB->preds()[PI]));
        else if (Seen.insert(Op).second)
          Pending.push_back(Op);
      }
    }
    return CaptureStops.emplace(RootVer, std::move(Stops)).first->second;
  };

  //===--------------------------------------------------------------===//
  // Phase B: per-reuse crossed-χ analysis and check planning.
  //===--------------------------------------------------------------===//
  std::vector<const ChiRecord *> AlatChecks, SoftChecks;
  std::vector<char> RewriteOcc(E.Occs.size(), 0);
  struct CheckReuseOcc {
    unsigned OI;
    SpecFlag Flag;
  };
  std::vector<CheckReuseOcc> CheckReuseOccs;
  bool NeedCascadeAny = false;
  for (unsigned OI : AvailReuses) {
    Occurrence &O = E.Occs[OI];
    std::vector<unsigned> ReuseRaw = Ctx.rawSigOfOcc(E, O);
    const std::vector<std::set<unsigned>> &StopVers =
        captureStopsFor(O.Version);
    std::vector<const ChiRecord *> OccAlat, OccSoft;
    bool OccCascade = false;
    bool Feasible = true;
    for (size_t L = 0; L < ReuseRaw.size() && Feasible; ++L) {
      bool IsData = L + 1 == ReuseRaw.size();
      ObjectId Obj = E.Constituents[L];
      std::vector<const ChiRecord *> Crossed;
      if (!collectCrossedChis(Ctx, Obj, ReuseRaw[L], StopVers[L], IsData,
                              Crossed)) {
        Feasible = false;
        break;
      }
      for (const ChiRecord *Chi : Crossed) {
        if (!IsData) {
          OccCascade = true;
          OccAlat.push_back(Chi);
          continue;
        }
        if (Ctx.Config.EnableAlat && Chi->Spec) {
          OccAlat.push_back(Chi);
        } else if (Ctx.Config.EnableSoftwareCheck &&
                   (E.Ref.ValueType == TypeKind::Float ||
                    Ctx.Config.SoftwareCheckIntExprs) &&
                   Chi->S->Ref.ValueType == E.Ref.ValueType &&
                   !OccCascade && !E.Ref.Index.isTemp()) {
          OccSoft.push_back(Chi);
        } else if (Ctx.Config.EnableAlat) {
          // The profile predicts this store aliases (or never saw it), so
          // the speculation is not expected to be free — but a chk.a is
          // still *correct*: the ALAT validates the address at run time
          // and the recovery reload repairs any actual collision. Paying
          // a possible recovery beats abandoning the whole reuse web.
          OccAlat.push_back(Chi);
        } else {
          Feasible = false;
          break;
        }
      }
    }
    if (OccSoft.size() > Ctx.Config.SoftwareMaxChecks)
      Feasible = false;
    // Cascade recovery reloads one chain pointer plus the data (Figure
    // 4); deeper chains would need nested recoveries.
    if (OccCascade && (!Ctx.Config.EnableCascade || E.Ref.Depth != 1))
      Feasible = false;
    if (!Feasible)
      continue;
    // Figure-1-style placement: the reuse load itself becomes the check;
    // no after-store statements are needed for its ALAT χs. Software
    // pairs remain after-store (the compare needs the store's address).
    if (Ctx.Config.ChecksAtReuse && !OccAlat.empty() && OccSoft.empty() &&
        !O.IsStore) {
      CheckReuseOccs.push_back(
          {OI, OccCascade ? SpecFlag::ChkAnc : SpecFlag::LdCnc});
      NeedCascadeAny |= OccCascade;
      continue;
    }
    RewriteOcc[OI] = 1;
    NeedCascadeAny |= OccCascade;
    for (const ChiRecord *Chi : OccAlat)
      if (std::find(AlatChecks.begin(), AlatChecks.end(), Chi) ==
          AlatChecks.end())
        AlatChecks.push_back(Chi);
    for (const ChiRecord *Chi : OccSoft)
      if (std::find(SoftChecks.begin(), SoftChecks.end(), Chi) ==
          SoftChecks.end())
        SoftChecks.push_back(Chi);
  }

  bool AnyRewrite = !InvalaOccs.empty() || !CheckReuseOccs.empty();
  for (unsigned OI : AvailReuses)
    AnyRewrite |= RewriteOcc[OI] != 0;
  if (!AnyRewrite)
    return;

  // Feasibility may have dropped every reuse of some version web; the
  // insertions and def rewrites planned for those webs would be pure
  // cost (inserted loads nobody consumes). A web is identified by the
  // canonical signature. Crossed-χ walks leave a web only through a
  // pinned heap φ, whose arms correspond to expression-Φ operand edges —
  // and the Φ-operand closure below keeps those webs — so dropping the
  // remaining unused webs cannot invalidate the capture analysis above.
  std::set<std::vector<unsigned>> UsedWebs;
  for (unsigned OI : AvailReuses)
    if (RewriteOcc[OI])
      UsedWebs.insert(W.Vers[E.Occs[OI].Version].CanonSig);
  for (unsigned OI : InvalaOccs)
    UsedWebs.insert(W.Vers[E.Occs[OI].Version].CanonSig);
  for (const CheckReuseOcc &CR : CheckReuseOccs)
    UsedWebs.insert(W.Vers[E.Occs[CR.OI].Version].CanonSig);
  // Close over Φ operand edges: a kept Φ draws its value from operand
  // versions whose canonical signatures can differ (the operand web is
  // what the defining loads and insertions belong to).
  Changed = true;
  while (Changed) {
    Changed = false;
    for (const ExprPhi &Phi : W.Phis) {
      if (!UsedWebs.count(W.Vers[Phi.Version].CanonSig))
        continue;
      if (!Phi.willBeAvail() && !InvalaPhiVers.count(Phi.Version))
        continue;
      for (unsigned Op : Phi.Operands)
        if (Op != ~0u && UsedWebs.insert(W.Vers[Op].CanonSig).second)
          Changed = true;
    }
  }
  {
    std::vector<PlannedInsert> Kept;
    for (const PlannedInsert &PI : Inserts)
      if (UsedWebs.count(W.Vers[PI.Phi->Version].CanonSig))
        Kept.push_back(PI);
    Inserts = std::move(Kept);
  }
  {
    std::set<unsigned> KeptSaved;
    for (unsigned Ver : SavedVersions)
      if (UsedWebs.count(W.Vers[Ver].CanonSig))
        KeptSaved.insert(Ver);
    SavedVersions = std::move(KeptSaved);
  }

  std::set<unsigned> InvalaOccSet(InvalaOccs.begin(), InvalaOccs.end());

  ++Ctx.Stats.PromotedExprs;
  unsigned Temp = F.createTemp(E.Ref.ValueType);
  unsigned AddrTemp = NoTemp;
  bool NeedAlatAnywhere =
      !AlatChecks.empty() || !InvalaOccs.empty() || !CheckReuseOccs.empty();
  bool NeedSoftAnywhere = !SoftChecks.empty();
  if (Indirect && (NeedAlatAnywhere || NeedSoftAnywhere))
    AddrTemp = F.createTemp(TypeKind::Int);
  unsigned ExprAddrTemp = NoTemp; // for software compares
  if (NeedSoftAnywhere) {
    if (Indirect) {
      ExprAddrTemp = AddrTemp;
    } else {
      ExprAddrTemp = F.createTemp(TypeKind::Int);
      Plan.AddrMats.push_back({E.Ref, ExprAddrTemp});
    }
  }
  Ctx.PromotedTemps.push_back({Temp, Indirect});

  SpecFlag DefFlag = NeedAlatAnywhere ? SpecFlag::LdA : SpecFlag::None;
  for (unsigned Ver : SavedVersions) {
    const ExprVer &V = W.Vers[Ver];
    if (V.Kind != ExprVer::DefKind::Real)
      continue;
    if (RefinementSuperseded(V))
      continue;
    // A refinement whose defining load was itself rewritten (as a reuse
    // or an invala-mode check) already writes the temp.
    if (V.RefinesVer != ~0u &&
        (RewriteOcc[V.DefOcc] || InvalaOccSet.count(V.DefOcc)))
      continue;
    Occurrence &O = E.Occs[V.DefOcc];
    if (O.IsStore) {
      MutationPlan::DefStoreRewrite R;
      R.S = O.S;
      R.Ref = E.Ref;
      R.Temp = Temp;
      R.AddrTemp = AddrTemp;
      R.UseStA = Ctx.Config.UseStA && NeedAlatAnywhere;
      R.NeedAlat = NeedAlatAnywhere;
      Plan.DefStores.push_back(R);
    } else {
      MutationPlan::DefLoadRewrite R;
      R.S = O.S;
      R.Temp = Temp;
      R.AddrTemp = AddrTemp;
      R.Flag = DefFlag;
      Plan.DefLoads.push_back(R);
      if (DefFlag != SpecFlag::None)
        ++Ctx.Stats.AdvancedLoads;
    }
  }

  // Φ-driven insertions (planned in Phase A as capture points).
  for (const PlannedInsert &PI : Inserts) {
    MutationPlan::EdgeInsert Ins;
    Ins.From = PI.Phi->BB->preds()[PI.OperandIdx];
    Ins.To = PI.Phi->BB;
    Ins.Ref = E.Ref;
    Ins.Temp = Temp;
    Ins.AddrTemp = AddrTemp;
    // Inserted loads are control-speculative; when the expression is
    // also data-speculative this is the combined ld.sa (§2.3).
    Ins.Flag = NeedAlatAnywhere ? SpecFlag::LdSA : SpecFlag::None;
    Plan.EdgeInserts.push_back(Ins);
    ++Ctx.Stats.InsertedLoads;
    if (Ins.Flag != SpecFlag::None)
      ++Ctx.Stats.AdvancedLoads;
  }

  // Reuse rewrites.
  for (unsigned OI : AvailReuses) {
    if (!RewriteOcc[OI])
      continue;
    Plan.Reuses.push_back({E.Occs[OI].S, Temp});
    uint64_t Weight = Ctx.Edges ? Ctx.Edges->blockCount(E.Occs[OI].BB) : 1;
    if (Indirect) {
      ++Ctx.Stats.LoadsRemovedIndirect;
      Ctx.Stats.DynLoadsRemovedIndirect += Weight;
    } else {
      ++Ctx.Stats.LoadsRemovedDirect;
      Ctx.Stats.DynLoadsRemovedDirect += Weight;
    }
  }
  for (const CheckReuseOcc &CR : CheckReuseOccs) {
    MutationPlan::InvalaReuse R;
    R.S = E.Occs[CR.OI].S;
    R.Temp = Temp;
    R.Flag = CR.Flag;
    R.AddrSrc = Indirect ? AddrTemp : NoTemp;
    Plan.InvalaReuses.push_back(R);
    if (CR.Flag == SpecFlag::ChkAnc)
      ++Ctx.Stats.CascadeChecks;
    else
      ++Ctx.Stats.ChecksInserted;
  }
  bool InvalaPlaced = false;
  for (unsigned OI : InvalaOccs) {
    MutationPlan::InvalaReuse R;
    R.S = E.Occs[OI].S;
    R.Temp = Temp;
    Plan.InvalaReuses.push_back(R);
    ++Ctx.Stats.InvalaModeLoads;
    if (!InvalaPlaced) {
      // One invala.e at a point dominating the whole expression region
      // (the entry block start always qualifies; see §2.3).
      Plan.Invalas.push_back({F.entry(), Temp});
      ++Ctx.Stats.InvalaInserted;
      InvalaPlaced = true;
    }
  }

  // Check statements after the crossed stores.
  std::set<const Stmt *> CheckAfterPlanned;
  for (const ChiRecord *Chi : AlatChecks) {
    if (!CheckAfterPlanned.insert(Chi->S).second)
      continue;
    MutationPlan::CheckInsert C;
    C.After = const_cast<Stmt *>(Chi->S);
    C.Ref = E.Ref;
    C.Temp = Temp;
    C.AddrTemp = AddrTemp;
    C.Cascade = NeedCascadeAny;
    Plan.Checks.push_back(C);
    if (NeedCascadeAny)
      ++Ctx.Stats.CascadeChecks;
    else
      ++Ctx.Stats.ChecksInserted;
  }
  for (const ChiRecord *Chi : SoftChecks) {
    if (!CheckAfterPlanned.insert(Chi->S).second)
      continue;
    MutationPlan::SoftwareCheckInsert C;
    C.After = const_cast<Stmt *>(Chi->S);
    C.Temp = Temp;
    C.ExprAddrTemp = ExprAddrTemp;
    C.ExprAddrIsChainPtr = Indirect;
    int64_t Extra = E.Ref.Offset;
    if (E.Ref.Index.K == Operand::Kind::ConstInt)
      Extra += E.Ref.Index.IntVal * 8;
    C.ExtraOffset = Indirect ? Extra : 0;
    Plan.SoftwareChecks.push_back(C);
    ++Ctx.Stats.SoftwareChecks;
  }
}
