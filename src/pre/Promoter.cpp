//===- Promoter.cpp - SSAPRE-based speculative register promotion ----------===//

#include "pre/Promoter.h"

#include "pre/CopyProp.h"

#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "support/Error.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <set>

using namespace srp;
using namespace srp::ir;
using namespace srp::ssa;
using namespace srp::pre;

namespace {

/// Grouping key of a lexical expression (one promotion candidate).
struct ExprKey {
  unsigned BaseId;
  unsigned Depth;
  int IndexKind; // 0 none, 1 temp, 2 const
  uint64_t IndexVal;
  int64_t Offset;
  uint8_t ValueType;

  static ExprKey of(const MemRef &Ref) {
    ExprKey K;
    K.BaseId = Ref.Base->Id;
    K.Depth = Ref.Depth;
    switch (Ref.Index.K) {
    case Operand::Kind::None:
      K.IndexKind = 0;
      K.IndexVal = 0;
      break;
    case Operand::Kind::Temp:
      K.IndexKind = 1;
      K.IndexVal = Ref.Index.TempId;
      break;
    case Operand::Kind::ConstInt:
      K.IndexKind = 2;
      K.IndexVal = static_cast<uint64_t>(Ref.Index.IntVal);
      break;
    case Operand::Kind::ConstFloat:
      SRP_UNREACHABLE("float index");
    }
    K.Offset = Ref.Offset;
    K.ValueType = static_cast<uint8_t>(Ref.ValueType);
    return K;
  }

  bool operator<(const ExprKey &O) const {
    return std::tie(BaseId, Depth, IndexKind, IndexVal, Offset, ValueType) <
           std::tie(O.BaseId, O.Depth, O.IndexKind, O.IndexVal, O.Offset,
                    O.ValueType);
  }
};

/// One real occurrence (a load or store of the expression).
struct Occurrence {
  Stmt *S = nullptr;
  BasicBlock *BB = nullptr;
  unsigned OrderInBlock = 0; ///< statement position at analysis time
  bool IsStore = false;

  // Filled by Rename:
  unsigned Version = ~0u;      ///< ExprVer id this occurrence uses/defines.
  bool Redundant = false;      ///< uses an existing version
  bool RawEqual = false;       ///< redundant with identical raw versions
};

/// Expression version created by Rename (a "hypothetical temporary"
/// version in the paper's terms).
struct ExprVer {
  enum class DefKind : uint8_t { Real, Phi };
  DefKind Kind = DefKind::Real;
  unsigned DefOcc = ~0u;  ///< Real: index into Occs.
  unsigned PhiId = ~0u;   ///< Phi: index into Phis.
  std::vector<unsigned> CanonSig; ///< canonical constituent versions
  std::vector<unsigned> RawSig;   ///< raw constituent versions
  bool HasRealUse = false;
  /// Real versions created by a load that matched a Φ version: when the
  /// Φ cannot be materialized, this occurrence anchors later reuses
  /// (SSAPRE's reload-from-first-occurrence behaviour).
  unsigned RefinesVer = ~0u;
};

/// Expression Φ (capital-Φ in SSAPRE).
struct ExprPhi {
  BasicBlock *BB = nullptr;
  unsigned Version = ~0u;             ///< ExprVer id it defines.
  std::vector<unsigned> Operands;     ///< ExprVer id or ~0u (⊥); by pred.
  bool DownSafe = false;
  bool CanBeAvail = true;
  bool Later = true;
  bool Unprofitable = false;

  bool willBeAvail() const { return CanBeAvail && !Later && !Unprofitable; }
};

/// A planned mutation, applied after all analysis.
struct MutationPlan {
  // Edge insertions: load of the expression at the end of From (or a
  // split block) on edge From->To.
  struct EdgeInsert {
    BasicBlock *From;
    BasicBlock *To;
    MemRef Ref;
    unsigned Temp;
    unsigned AddrTemp; ///< NoTemp if unused
    SpecFlag Flag;
  };
  // Rewrites of defining loads: retarget Dst to Temp, set flag/addr, and
  // add `<oldDst> = copy Temp` after.
  struct DefLoadRewrite {
    Stmt *S;
    unsigned Temp;
    unsigned AddrTemp;
    SpecFlag Flag;
  };
  // After a defining store: st.a marking or an extra ld.a / plain copy.
  struct DefStoreRewrite {
    Stmt *S;
    MemRef Ref;
    unsigned Temp;
    unsigned AddrTemp;
    bool UseStA;
    bool NeedAlat; ///< otherwise a plain copy of the stored value
  };
  // Redundant load elimination: erase S, map Dst to Temp.
  struct ReuseRewrite {
    Stmt *S;
    unsigned Temp;
  };
  // In-place checking reuse: keep the load but turn it into a checking
  // load writing Temp (invala mode and the ChecksAtReuse placement).
  struct InvalaReuse {
    Stmt *S;
    unsigned Temp;
    SpecFlag Flag = SpecFlag::LdCnc;
    unsigned AddrSrc = NoTemp;
  };
  // ALAT check statement after a store.
  struct CheckInsert {
    Stmt *After;
    MemRef Ref;
    unsigned Temp;
    unsigned AddrTemp; ///< address source; NoTemp to re-walk the chain
    bool Cascade;      ///< chk.a (recovery) instead of ld.c
  };
  // Software compare+forward after a store.
  struct SoftwareCheckInsert {
    Stmt *After;       ///< the aliasing store
    unsigned Temp;     ///< promoted temp to conditionally overwrite
    unsigned ExprAddrTemp; ///< temp holding the expression's address
    bool ExprAddrIsChainPtr = false; ///< indirect: holds chain pointer
    int64_t ExtraOffset = 0;         ///< constant index*8 + offset
  };
  struct InvalaInsert {
    BasicBlock *BB; ///< inserted at block start
    unsigned Temp;
  };

  std::vector<EdgeInsert> EdgeInserts;
  std::vector<DefLoadRewrite> DefLoads;
  std::vector<DefStoreRewrite> DefStores;
  std::vector<ReuseRewrite> Reuses;
  std::vector<InvalaReuse> InvalaReuses;
  std::vector<CheckInsert> Checks;
  std::vector<SoftwareCheckInsert> SoftwareChecks;
  std::vector<InvalaInsert> Invalas;
  // Direct-ref expressions needing an address temp materialized at entry.
  struct AddrMaterialize {
    MemRef Ref;
    unsigned Temp;
  };
  std::vector<AddrMaterialize> AddrMats;
};

/// Analysis and planning for one function.
class FunctionPromoter {
public:
  FunctionPromoter(Function &F, const alias::AliasAnalysis &AA,
                   const interp::AliasProfile *Profile,
                   const interp::EdgeProfile *Edges,
                   const PromotionConfig &Config)
      : F(F), AA(AA), Profile(Profile), Edges(Edges), Config(Config),
        DT(F), LI(DT), H(F, DT, AA, Profile) {}

  PromotionStats run();

private:
  struct ExprInfo {
    MemRef Ref;
    std::vector<Occurrence> Occs; ///< dominator-preorder sorted
    std::vector<ObjectId> Constituents; ///< level objects, base first
    unsigned IndexTemp = NoTemp;
  };

  bool chiCollapsibleData(const ChiRecord &Chi) const;
  bool chiCollapsibleAddr(const ChiRecord &Chi) const;

  void collectExpressions();
  void computeTempDefs();
  void processExpression(ExprInfo &E);

  std::vector<unsigned> canonSigAt(const ExprInfo &E,
                                   const std::vector<unsigned> &Raw) const;
  std::vector<unsigned> rawSigAtEntry(const ExprInfo &E,
                                      BasicBlock *BB) const;
  std::vector<unsigned> rawSigAtExit(const ExprInfo &E,
                                     BasicBlock *BB) const;
  std::vector<unsigned> rawSigOfOcc(const ExprInfo &E,
                                    const Occurrence &O) const;

  /// Collects every collapsible χ on the version-collapse chain from
  /// \p FromVer down to the nearest *capture points* (\p StopVers: raw
  /// versions at saved defs and edge insertions) of \p Obj — these are
  /// exactly the stores the reuse is speculated across and therefore the
  /// places check statements must follow. φs fan out into all arguments;
  /// φs pinned to themselves (real merges) and non-collapsible χs end a
  /// chain.
  void collectCrossedChis(ssa::ObjectId Obj, unsigned FromVer,
                          const std::set<unsigned> &StopVers,
                          bool DataLevel,
                          std::vector<const ssa::ChiRecord *> &Out) const;

  void applyPlan();
  BasicBlock *insertionBlockFor(BasicBlock *From, BasicBlock *To);
  void cleanupChecks();

  Function &F;
  const alias::AliasAnalysis &AA;
  const interp::AliasProfile *Profile;
  const interp::EdgeProfile *Edges;
  const PromotionConfig &Config;
  DominatorTree DT;
  LoopInfo LI;
  HSSA H;

  std::vector<std::vector<unsigned>> CanonData; ///< strategy collapse
  std::vector<std::vector<unsigned>> CanonAddr; ///< cascade collapse
  std::map<ExprKey, ExprInfo> Exprs;
  std::vector<BasicBlock *> TempDefBlock; ///< by temp id; null if no def
  std::vector<unsigned> TempDefCount;     ///< defs per temp
  MutationPlan Plan;
  PromotionStats Stats;
  std::map<std::pair<BasicBlock *, BasicBlock *>, BasicBlock *> SplitBlocks;
  /// Promoted temps with their expression ref, for the cleanup pass.
  std::vector<std::pair<unsigned, bool>> PromotedTemps; ///< (temp, indirect)
};

bool FunctionPromoter::chiCollapsibleData(const ChiRecord &Chi) const {
  if (!Chi.S || !Chi.S->isStore())
    return false; // Calls always end a version.
  if (Config.EnableAlat && Chi.Spec)
    return true;
  return Config.EnableSoftwareCheck;
}

bool FunctionPromoter::chiCollapsibleAddr(const ChiRecord &Chi) const {
  // Address parts may only be speculated with chk.a recovery (§2.4).
  return Config.EnableAlat && Config.EnableCascade && Chi.S &&
         Chi.S->isStore() && Chi.Spec;
}

void FunctionPromoter::collectExpressions() {
  // Dominator-preorder statement order: walk dom tree, number statements.
  std::map<const Stmt *, unsigned> Preorder;
  unsigned Counter = 0;
  std::vector<BasicBlock *> Stack{F.entry()};
  std::vector<BasicBlock *> Order;
  while (!Stack.empty()) {
    BasicBlock *BB = Stack.back();
    Stack.pop_back();
    Order.push_back(BB);
    for (size_t SI = 0; SI < BB->size(); ++SI)
      Preorder[BB->stmt(SI)] = Counter++;
    auto Kids = DT.children(BB);
    for (auto It = Kids.rbegin(); It != Kids.rend(); ++It)
      Stack.push_back(*It);
  }

  for (BasicBlock *BB : Order) {
    for (size_t SI = 0; SI < BB->size(); ++SI) {
      Stmt *S = BB->stmt(SI);
      if (!S->accessesMemory())
        continue;
      // Statements carrying speculation machinery from an earlier
      // promotion pass (flags, st.a, saved chain pointers) are not
      // occurrence candidates; the cleanup pass must leave them alone.
      if (S->Flag != SpecFlag::None || S->StA || S->AddrSrc != NoTemp)
        continue;
      ExprInfo &E = Exprs[ExprKey::of(S->Ref)];
      if (E.Occs.empty()) {
        E.Ref = S->Ref;
        E.Constituents = H.refObjects(S->Ref);
        if (S->Ref.Index.isTemp())
          E.IndexTemp = S->Ref.Index.getTemp();
      }
      Occurrence O;
      O.S = S;
      O.BB = BB;
      O.OrderInBlock = static_cast<unsigned>(SI);
      O.IsStore = S->isStore();
      E.Occs.push_back(O);
    }
  }
  // Occurrences are already in dominator preorder by construction.
}

void FunctionPromoter::computeTempDefs() {
  TempDefBlock.assign(F.numTemps(), nullptr);
  TempDefCount.assign(F.numTemps(), 0);
  for (unsigned BI = 0; BI < F.numBlocks(); ++BI) {
    BasicBlock *BB = F.block(BI);
    for (size_t SI = 0; SI < BB->size(); ++SI) {
      Stmt *S = BB->stmt(SI);
      if (S->definesTemp()) {
        TempDefBlock[S->Dst] = BB;
        ++TempDefCount[S->Dst];
      }
    }
  }
}

std::vector<unsigned>
FunctionPromoter::canonSigAt(const ExprInfo &E,
                             const std::vector<unsigned> &Raw) const {
  std::vector<unsigned> Sig(Raw.size());
  for (size_t L = 0; L < Raw.size(); ++L) {
    ObjectId Obj = E.Constituents[L];
    bool IsData = L + 1 == Raw.size();
    Sig[L] = IsData ? CanonData[Obj][Raw[L]] : CanonAddr[Obj][Raw[L]];
  }
  return Sig;
}

std::vector<unsigned> FunctionPromoter::rawSigAtEntry(const ExprInfo &E,
                                                      BasicBlock *BB) const {
  std::vector<unsigned> Raw;
  Raw.reserve(E.Constituents.size());
  for (ObjectId Obj : E.Constituents)
    Raw.push_back(H.versionAtEntry(BB, Obj));
  return Raw;
}

std::vector<unsigned> FunctionPromoter::rawSigAtExit(const ExprInfo &E,
                                                     BasicBlock *BB) const {
  std::vector<unsigned> Raw;
  Raw.reserve(E.Constituents.size());
  for (ObjectId Obj : E.Constituents)
    Raw.push_back(H.versionAtExit(BB, Obj));
  return Raw;
}

std::vector<unsigned>
FunctionPromoter::rawSigOfOcc(const ExprInfo &E, const Occurrence &O) const {
  const StmtAccess *Acc = H.accessInfo(O.S);
  assert(Acc && "occurrence without access info");
  std::vector<unsigned> Raw = Acc->LevelVers;
  if (O.IsStore)
    Raw.back() = Acc->DefVer; // A store provides the version it defines.
  return Raw;
}

void FunctionPromoter::processExpression(ExprInfo &E) {
  bool HasLoad = false;
  for (const Occurrence &O : E.Occs)
    HasLoad |= !O.IsStore;
  if (!HasLoad)
    return; // Only stores: nothing to promote (loads only, §5).
  for (ObjectId Obj : E.Constituents)
    if (Obj == InvalidObject)
      return;
  // After a previous promotion pass, a temp can have several defining
  // statements; expressions indexed by such a temp are skipped (the
  // single-def assumption underlies the index-kill analysis below).
  if (E.IndexTemp != NoTemp && TempDefCount[E.IndexTemp] > 1)
    return;

  //===--------------------------------------------------------------===//
  // Step 1: Φ-insertion.
  //===--------------------------------------------------------------===//
  std::vector<BasicBlock *> Seeds;
  auto AddSeed = [&](BasicBlock *BB) {
    if (BB && DT.isReachable(BB) &&
        std::find(Seeds.begin(), Seeds.end(), BB) == Seeds.end())
      Seeds.push_back(BB);
  };
  for (const Occurrence &O : E.Occs)
    AddSeed(O.BB);
  for (size_t L = 0; L < E.Constituents.size(); ++L) {
    ObjectId Obj = E.Constituents[L];
    for (unsigned Ver = 0; Ver < H.numVersions(Obj); ++Ver) {
      const VersionOrigin &VO = H.origin(Obj, Ver);
      if (VO.K == VersionOrigin::Kind::RealDef ||
          VO.K == VersionOrigin::Kind::Chi)
        AddSeed(VO.BB);
    }
  }
  if (E.IndexTemp != NoTemp && E.IndexTemp < TempDefBlock.size())
    AddSeed(TempDefBlock[E.IndexTemp]);

  std::vector<ExprPhi> Phis;
  std::vector<unsigned> PhiAtBlock(F.numBlocks(), ~0u);
  std::vector<ExprVer> Vers;
  for (BasicBlock *BB : DT.iteratedFrontier(Seeds)) {
    ExprPhi Phi;
    Phi.BB = BB;
    Phi.Operands.assign(BB->preds().size(), ~0u);
    Phi.Version = static_cast<unsigned>(Vers.size());
    ExprVer V;
    V.Kind = ExprVer::DefKind::Phi;
    V.PhiId = static_cast<unsigned>(Phis.size());
    Vers.push_back(V);
    PhiAtBlock[BB->getId()] = static_cast<unsigned>(Phis.size());
    Phis.push_back(Phi);
  }

  //===--------------------------------------------------------------===//
  // Step 2: Rename (speculative: canonical-version comparison).
  //===--------------------------------------------------------------===//
  // Occurrences grouped by block, in block order.
  std::map<BasicBlock *, std::vector<unsigned>> BlockOccs;
  for (unsigned OI = 0; OI < E.Occs.size(); ++OI)
    BlockOccs[E.Occs[OI].BB].push_back(OI);

  struct StackEntry {
    unsigned Ver;
  };
  std::vector<StackEntry> Stack;

  // Recursive dominator walk (explicit stack of work items).
  struct WalkFrame {
    BasicBlock *BB;
    size_t ChildIdx;
    size_t StackMark;
  };
  std::vector<WalkFrame> Walk;
  Walk.push_back({F.entry(), 0, 0});

  bool EnteringNew = true;
  while (!Walk.empty()) {
    WalkFrame &Frame = Walk.back();
    BasicBlock *BB = Frame.BB;
    if (EnteringNew) {
      Frame.StackMark = Stack.size();
      // Φ definition.
      unsigned PhiIdx = PhiAtBlock[BB->getId()];
      if (PhiIdx != ~0u) {
        ExprPhi &Phi = Phis[PhiIdx];
        ExprVer &V = Vers[Phi.Version];
        V.RawSig = rawSigAtEntry(E, BB);
        V.CanonSig = canonSigAt(E, V.RawSig);
        Stack.push_back({Phi.Version});
      }
      // Real occurrences in block order.
      auto OccIt = BlockOccs.find(BB);
      if (OccIt != BlockOccs.end()) {
        for (unsigned OI : OccIt->second) {
          Occurrence &O = E.Occs[OI];
          std::vector<unsigned> Raw = rawSigOfOcc(E, O);
          std::vector<unsigned> Canon = canonSigAt(E, Raw);
          if (!O.IsStore && !Stack.empty() &&
              Vers[Stack.back().Ver].CanonSig == Canon) {
            // Redundant (possibly speculatively).
            unsigned TopVer = Stack.back().Ver;
            O.Version = TopVer;
            O.Redundant = true;
            O.RawEqual = Vers[TopVer].RawSig == Raw;
            Vers[TopVer].HasRealUse = true;
            if (Vers[TopVer].Kind == ExprVer::DefKind::Phi) {
              // Refinement: if the Φ cannot be materialized, this load
              // stays and anchors the reuses after it.
              ExprVer R;
              R.Kind = ExprVer::DefKind::Real;
              R.DefOcc = OI;
              R.RawSig = std::move(Raw);
              R.CanonSig = std::move(Canon);
              R.RefinesVer = TopVer;
              Stack.push_back({static_cast<unsigned>(Vers.size())});
              Vers.push_back(std::move(R));
            }
            continue;
          }
          // New version defined by this occurrence.
          ExprVer V;
          V.Kind = ExprVer::DefKind::Real;
          V.DefOcc = OI;
          V.RawSig = std::move(Raw);
          V.CanonSig = std::move(Canon);
          O.Version = static_cast<unsigned>(Vers.size());
          Vers.push_back(std::move(V));
          Stack.push_back({O.Version});
        }
      }
      // Fill successor Φ operands.
      std::vector<unsigned> ExitRaw = rawSigAtExit(E, BB);
      std::vector<unsigned> ExitCanon = canonSigAt(E, ExitRaw);
      for (BasicBlock *Succ : BB->succs()) {
        unsigned SuccPhi = PhiAtBlock[Succ->getId()];
        if (SuccPhi == ~0u)
          continue;
        ExprPhi &Phi = Phis[SuccPhi];
        for (size_t PI = 0; PI < Succ->preds().size(); ++PI) {
          if (Succ->preds()[PI] != BB)
            continue;
          if (!Stack.empty() &&
              Vers[Stack.back().Ver].CanonSig == ExitCanon)
            Phi.Operands[PI] = Stack.back().Ver;
        }
      }
    }
    // Descend into dominator-tree children.
    const auto &Kids = DT.children(BB);
    if (Frame.ChildIdx < Kids.size()) {
      BasicBlock *Kid = Kids[Frame.ChildIdx++];
      Walk.push_back({Kid, 0, 0});
      EnteringNew = true;
      continue;
    }
    Stack.resize(Frame.StackMark);
    Walk.pop_back();
    EnteringNew = false;
  }



  //===--------------------------------------------------------------===//
  // Step 3: DownSafety via all-paths anticipation.
  //===--------------------------------------------------------------===//
  // TRANSP(B): no constituent changes canonically inside B, and the index
  // temp is not defined in B. ANTLOC(B): a load occurrence whose canonical
  // signature equals the block-entry signature.
  unsigned NumBlocks = F.numBlocks();
  std::vector<char> Transp(NumBlocks, 0), Antloc(NumBlocks, 0);
  for (unsigned BI = 0; BI < NumBlocks; ++BI) {
    BasicBlock *BB = F.block(BI);
    if (!DT.isReachable(BB))
      continue;
    std::vector<unsigned> EntryCanon = canonSigAt(E, rawSigAtEntry(E, BB));
    std::vector<unsigned> ExitCanon = canonSigAt(E, rawSigAtExit(E, BB));
    bool IndexDefHere =
        E.IndexTemp != NoTemp && TempDefBlock[E.IndexTemp] == BB;
    Transp[BI] = EntryCanon == ExitCanon && !IndexDefHere;
    auto OccIt = BlockOccs.find(BB);
    if (OccIt != BlockOccs.end())
      for (unsigned OI : OccIt->second) {
        const Occurrence &O = E.Occs[OI];
        if (O.IsStore)
          continue;
        // An occurrence below the index temp's definition cannot be
        // anticipated at block entry (the index is not yet computed).
        if (IndexDefHere) {
          bool DefSeen = false;
          for (unsigned P = 0; P < O.OrderInBlock && P < BB->size(); ++P)
            if (BB->stmt(P)->definesTemp() &&
                BB->stmt(P)->Dst == E.IndexTemp)
              DefSeen = true;
          if (DefSeen)
            continue;
        }
        if (canonSigAt(E, rawSigOfOcc(E, O)) == EntryCanon) {
          Antloc[BI] = 1;
          break;
        }
      }
  }
  std::vector<char> Antic(NumBlocks, 1);
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (unsigned BI = 0; BI < NumBlocks; ++BI) {
      BasicBlock *BB = F.block(BI);
      if (!DT.isReachable(BB))
        continue;
      char Out = BB->succs().empty() ? 0 : 1;
      for (BasicBlock *Succ : BB->succs())
        Out = Out && Antic[Succ->getId()];
      char In = Antloc[BI] || (Transp[BI] && Out);
      if (In != Antic[BI]) {
        Antic[BI] = In;
        Changed = true;
      }
    }
  }
  for (ExprPhi &Phi : Phis)
    Phi.DownSafe = Antic[Phi.BB->getId()];
  // Insertions driven by a Φ outside the index temp's dominance region
  // would load through an undefined index; forbid them.
  std::vector<char> PhiPinned(Phis.size(), 0);
  if (E.IndexTemp != NoTemp && TempDefBlock[E.IndexTemp])
    for (size_t PhiI = 0; PhiI < Phis.size(); ++PhiI)
      if (!DT.dominates(TempDefBlock[E.IndexTemp], Phis[PhiI].BB)) {
        Phis[PhiI].DownSafe = false;
        Phis[PhiI].CanBeAvail = false;
        PhiPinned[PhiI] = 1;
      }

  // Control speculation (§2.3): a non-down-safe Φ may still be allowed to
  // insert (the Figure 3 ld.sa pattern) when the profile says the reuses
  // outweigh the inserted executions, or — without a profile — when the Φ
  // heads a loop that contains every reuse (classic invariant hoisting).
  if (Config.EnableInsertion &&
      (Config.EnableAlat || Config.EnableSoftwareCheck)) {
    for (size_t PhiI = 0; PhiI < Phis.size(); ++PhiI) {
      ExprPhi &Phi = Phis[PhiI];
      if (Phi.DownSafe || PhiPinned[PhiI])
        continue;
      uint64_t Benefit = 0, Cost = 0;
      bool AllUsesInLoop = true;
      const LoopInfo::Loop *L = LI.loopFor(Phi.BB);
      bool IsHeader = L && L->Header == Phi.BB;
      unsigned Reuses = 0;
      for (const Occurrence &O : E.Occs) {
        if (!O.Redundant || O.Version != Phi.Version)
          continue;
        ++Reuses;
        if (Edges)
          Benefit += Edges->blockCount(O.BB);
        if (!IsHeader || !L->contains(O.BB))
          AllUsesInLoop = false;
      }
      if (Reuses == 0)
        continue;
      if (Edges) {
        for (size_t PI = 0; PI < Phi.Operands.size(); ++PI)
          if (Phi.Operands[PI] == ~0u)
            Cost += Edges->edgeCount(Phi.BB->preds()[PI], Phi.BB);
        if (Benefit > Cost)
          Phi.DownSafe = true;
      } else if (IsHeader && AllUsesInLoop) {
        Phi.DownSafe = true;
      }
    }
  }

  //===--------------------------------------------------------------===//
  // Step 4: WillBeAvail.
  //===--------------------------------------------------------------===//
  auto OperandCBA = [&](unsigned Op) {
    if (Op == ~0u)
      return false;
    const ExprVer &V = Vers[Op];
    if (V.Kind == ExprVer::DefKind::Phi)
      return Phis[V.PhiId].CanBeAvail;
    return true;
  };
  Changed = true;
  while (Changed) {
    Changed = false;
    for (ExprPhi &Phi : Phis) {
      if (!Phi.CanBeAvail)
        continue;
      if (Phi.DownSafe)
        continue;
      for (unsigned Op : Phi.Operands) {
        if (Op == ~0u || !OperandCBA(Op)) {
          Phi.CanBeAvail = false;
          Changed = true;
          break;
        }
      }
    }
  }
  // Later: an insertion is postponable unless some operand already carries
  // a real value.
  for (ExprPhi &Phi : Phis)
    Phi.Later = Phi.CanBeAvail;
  Changed = true;
  while (Changed) {
    Changed = false;
    for (ExprPhi &Phi : Phis) {
      if (!Phi.Later)
        continue;
      for (unsigned Op : Phi.Operands) {
        if (Op == ~0u)
          continue;
        const ExprVer &V = Vers[Op];
        bool CarriesRealValue =
            V.Kind == ExprVer::DefKind::Real || V.HasRealUse ||
            (V.Kind == ExprVer::DefKind::Phi && !Phis[V.PhiId].Later);
        if (CarriesRealValue) {
          Phi.Later = false;
          Changed = true;
          break;
        }
      }
    }
  }
  // Insertion disabled entirely?
  if (!Config.EnableInsertion)
    for (ExprPhi &Phi : Phis)
      Phi.Unprofitable = true;
  // Edge-profile profitability: an insertion that would execute more often
  // than the loads it saves is rejected.
  if (Edges && Config.EnableInsertion) {
    for (ExprPhi &Phi : Phis) {
      if (!Phi.willBeAvail())
        continue;
      uint64_t InsertCost = 0;
      for (size_t PI = 0; PI < Phi.Operands.size(); ++PI) {
        unsigned Op = Phi.Operands[PI];
        bool NeedsInsert =
            Op == ~0u || (Vers[Op].Kind == ExprVer::DefKind::Phi &&
                          !Phis[Vers[Op].PhiId].willBeAvail());
        if (NeedsInsert)
          InsertCost += Edges->edgeCount(Phi.BB->preds()[PI], Phi.BB);
      }
      uint64_t Benefit = 0;
      for (const Occurrence &O : E.Occs)
        if (O.Redundant && O.Version == Phi.Version)
          Benefit += Edges->blockCount(O.BB);
      // Benefit through transitive Φs is ignored; this under-approximates
      // but only ever rejects insertions, never miscompiles.
      if (InsertCost > Benefit)
        Phi.Unprofitable = true;
    }
  }

  //===--------------------------------------------------------------===//
  // Step 5: CodeMotion planning.
  //===--------------------------------------------------------------===//
  bool Indirect = E.Ref.isIndirect();

  // Which versions are available (def real, or def Φ that will be avail)?
  auto VersionAvailable = [&](unsigned Ver) {
    const ExprVer &V = Vers[Ver];
    if (V.Kind == ExprVer::DefKind::Real)
      return true;
    return Phis[V.PhiId].willBeAvail();
  };

  //===--------------------------------------------------------------===//
  // Phase A: tentative rewrites and capture points.
  //===--------------------------------------------------------------===//
  // A redundant load whose version is available will be rewritten; one
  // that is not may still become an invala-mode checking load (Figure 2).
  std::vector<unsigned> AvailReuses;
  std::vector<unsigned> InvalaOccs;
  std::set<unsigned> InvalaPhiVers;
  std::set<unsigned> SavedVersions;
  for (unsigned OI = 0; OI < E.Occs.size(); ++OI) {
    Occurrence &O = E.Occs[OI];
    if (!O.Redundant)
      continue;
    if (VersionAvailable(O.Version)) {
      AvailReuses.push_back(OI);
      SavedVersions.insert(O.Version);
      continue;
    }
    // Figure 2 strategy: only for scalar refs — the checking load's
    // address must be the same at every execution for the ALAT entry to
    // mean anything.
    if (Config.EnableAlat && Config.UseInvala && !Indirect &&
        !O.IsStore && !E.Ref.hasIndex()) {
      InvalaOccs.push_back(OI);
      InvalaPhiVers.insert(O.Version);
      SavedVersions.insert(O.Version);
    }
  }
  if (AvailReuses.empty() && InvalaOccs.empty())
    return;

  // Transitive closure: a saved Φ version saves its operands (invala-mode
  // Φs included, so their defining loads get ld.a flags).
  Changed = true;
  while (Changed) {
    Changed = false;
    for (const ExprPhi &Phi : Phis) {
      if (!SavedVersions.count(Phi.Version))
        continue;
      if (!Phi.willBeAvail() && !InvalaPhiVers.count(Phi.Version))
        continue;
      for (unsigned Op : Phi.Operands)
        if (Op != ~0u && SavedVersions.insert(Op).second)
          Changed = true;
    }
  }

  // Planned edge insertions (needed now: they are capture points too).
  struct PlannedInsert {
    const ExprPhi *Phi;
    size_t OperandIdx;
  };
  std::vector<PlannedInsert> Inserts;
  for (const ExprPhi &Phi : Phis) {
    if (!Phi.willBeAvail())
      continue;
    if (!SavedVersions.count(Phi.Version) && !Vers[Phi.Version].HasRealUse)
      continue;
    for (size_t PI = 0; PI < Phi.Operands.size(); ++PI) {
      unsigned Op = Phi.Operands[PI];
      bool NeedsInsert =
          Op == ~0u || (Vers[Op].Kind == ExprVer::DefKind::Phi &&
                        !Phis[Vers[Op].PhiId].willBeAvail());
      if (NeedsInsert)
        Inserts.push_back({&Phi, PI});
    }
  }

  // A refinement version whose Φ materializes is superseded: the promoted
  // temp already carries the value there, so its defining occurrence is
  // an ordinary reuse, not a capture point.
  auto RefinementSuperseded = [&](const ExprVer &V) {
    return V.RefinesVer != ~0u &&
           Vers[V.RefinesVer].Kind == ExprVer::DefKind::Phi &&
           Phis[Vers[V.RefinesVer].PhiId].willBeAvail();
  };

  // Capture points per level: raw versions at which the promoted temp is
  // (re)written with the expression's value — saved real defs (not
  // superseded refinements), edge insertions, and invala-mode checking
  // loads.
  std::vector<std::set<unsigned>> StopVers(E.Constituents.size());
  auto AddStops = [&](const std::vector<unsigned> &Raw) {
    for (size_t L = 0; L < Raw.size(); ++L)
      StopVers[L].insert(Raw[L]);
  };
  for (unsigned Ver : SavedVersions)
    if (Vers[Ver].Kind == ExprVer::DefKind::Real &&
        !RefinementSuperseded(Vers[Ver]))
      AddStops(Vers[Ver].RawSig);
  for (const PlannedInsert &PI : Inserts)
    AddStops(rawSigAtExit(E, PI.Phi->BB->preds()[PI.OperandIdx]));
  for (unsigned OI : InvalaOccs)
    AddStops(rawSigOfOcc(E, E.Occs[OI]));

  //===--------------------------------------------------------------===//
  // Phase B: per-reuse crossed-χ analysis and check planning.
  //===--------------------------------------------------------------===//
  std::vector<const ChiRecord *> AlatChecks, SoftChecks;
  std::vector<char> RewriteOcc(E.Occs.size(), 0);
  struct CheckReuseOcc {
    unsigned OI;
    SpecFlag Flag;
  };
  std::vector<CheckReuseOcc> CheckReuseOccs;
  bool NeedCascadeAny = false;
  for (unsigned OI : AvailReuses) {
    Occurrence &O = E.Occs[OI];
    std::vector<unsigned> ReuseRaw = rawSigOfOcc(E, O);
    std::vector<const ChiRecord *> OccAlat, OccSoft;
    bool OccCascade = false;
    bool Feasible = true;
    for (size_t L = 0; L < ReuseRaw.size() && Feasible; ++L) {
      bool IsData = L + 1 == ReuseRaw.size();
      ObjectId Obj = E.Constituents[L];
      std::vector<const ChiRecord *> Crossed;
      collectCrossedChis(Obj, ReuseRaw[L], StopVers[L], IsData, Crossed);
      for (const ChiRecord *Chi : Crossed) {
        if (!IsData) {
          OccCascade = true;
          OccAlat.push_back(Chi);
          continue;
        }
        if (Config.EnableAlat && Chi->Spec) {
          OccAlat.push_back(Chi);
        } else if (Config.EnableSoftwareCheck &&
                   (E.Ref.ValueType == TypeKind::Float ||
                    Config.SoftwareCheckIntExprs) &&
                   Chi->S->Ref.ValueType == E.Ref.ValueType &&
                   !OccCascade && !E.Ref.Index.isTemp()) {
          OccSoft.push_back(Chi);
        } else {
          Feasible = false;
          break;
        }
      }
    }
    if (OccSoft.size() > Config.SoftwareMaxChecks)
      Feasible = false;
    // Cascade recovery reloads one chain pointer plus the data (Figure
    // 4); deeper chains would need nested recoveries.
    if (OccCascade && (!Config.EnableCascade || E.Ref.Depth != 1))
      Feasible = false;
    if (!Feasible)
      continue;
    // Figure-1-style placement: the reuse load itself becomes the check;
    // no after-store statements are needed for its ALAT χs. Software
    // pairs remain after-store (the compare needs the store's address).
    if (Config.ChecksAtReuse && !OccAlat.empty() && OccSoft.empty() &&
        !O.IsStore) {
      CheckReuseOccs.push_back(
          {OI, OccCascade ? SpecFlag::ChkAnc : SpecFlag::LdCnc});
      NeedCascadeAny |= OccCascade;
      continue;
    }
    RewriteOcc[OI] = 1;
    NeedCascadeAny |= OccCascade;
    for (const ChiRecord *Chi : OccAlat)
      if (std::find(AlatChecks.begin(), AlatChecks.end(), Chi) ==
          AlatChecks.end())
        AlatChecks.push_back(Chi);
    for (const ChiRecord *Chi : OccSoft)
      if (std::find(SoftChecks.begin(), SoftChecks.end(), Chi) ==
          SoftChecks.end())
        SoftChecks.push_back(Chi);
  }

  bool AnyRewrite = !InvalaOccs.empty() || !CheckReuseOccs.empty();
  for (unsigned OI : AvailReuses)
    AnyRewrite |= RewriteOcc[OI] != 0;
  if (!AnyRewrite)
    return;

  // Feasibility may have dropped every reuse of some version web; the
  // insertions and def rewrites planned for those webs would be pure
  // cost (inserted loads nobody consumes). A web is identified by the
  // canonical signature, which crossed-χ walks never leave, so dropping
  // whole unused webs cannot invalidate the capture analysis above.
  std::set<std::vector<unsigned>> UsedWebs;
  for (unsigned OI : AvailReuses)
    if (RewriteOcc[OI])
      UsedWebs.insert(Vers[E.Occs[OI].Version].CanonSig);
  for (unsigned OI : InvalaOccs)
    UsedWebs.insert(Vers[E.Occs[OI].Version].CanonSig);
  for (const CheckReuseOcc &CR : CheckReuseOccs)
    UsedWebs.insert(Vers[E.Occs[CR.OI].Version].CanonSig);
  // Close over Φ operand edges: a kept Φ draws its value from operand
  // versions whose canonical signatures can differ (the operand web is
  // what the defining loads and insertions belong to).
  Changed = true;
  while (Changed) {
    Changed = false;
    for (const ExprPhi &Phi : Phis) {
      if (!UsedWebs.count(Vers[Phi.Version].CanonSig))
        continue;
      if (!Phi.willBeAvail() && !InvalaPhiVers.count(Phi.Version))
        continue;
      for (unsigned Op : Phi.Operands)
        if (Op != ~0u &&
            UsedWebs.insert(Vers[Op].CanonSig).second)
          Changed = true;
    }
  }
  {
    std::vector<PlannedInsert> Kept;
    for (const PlannedInsert &PI : Inserts)
      if (UsedWebs.count(Vers[PI.Phi->Version].CanonSig))
        Kept.push_back(PI);
    Inserts = std::move(Kept);
  }
  {
    std::set<unsigned> KeptSaved;
    for (unsigned Ver : SavedVersions)
      if (UsedWebs.count(Vers[Ver].CanonSig))
        KeptSaved.insert(Ver);
    SavedVersions = std::move(KeptSaved);
  }

  std::set<unsigned> InvalaOccSet(InvalaOccs.begin(), InvalaOccs.end());

  ++Stats.PromotedExprs;
  unsigned Temp = F.createTemp(E.Ref.ValueType);
  unsigned AddrTemp = NoTemp;
  bool NeedAlatAnywhere =
      !AlatChecks.empty() || !InvalaOccs.empty() || !CheckReuseOccs.empty();
  bool NeedSoftAnywhere = !SoftChecks.empty();
  if (Indirect && (NeedAlatAnywhere || NeedSoftAnywhere))
    AddrTemp = F.createTemp(TypeKind::Int);
  unsigned ExprAddrTemp = NoTemp; // for software compares
  if (NeedSoftAnywhere) {
    if (Indirect) {
      ExprAddrTemp = AddrTemp;
    } else {
      ExprAddrTemp = F.createTemp(TypeKind::Int);
      Plan.AddrMats.push_back({E.Ref, ExprAddrTemp});
    }
  }
  PromotedTemps.push_back({Temp, Indirect});

  SpecFlag DefFlag = NeedAlatAnywhere ? SpecFlag::LdA : SpecFlag::None;
  for (unsigned Ver : SavedVersions) {
    const ExprVer &V = Vers[Ver];
    if (V.Kind != ExprVer::DefKind::Real)
      continue;
    if (RefinementSuperseded(V))
      continue;
    // A refinement whose defining load was itself rewritten (as a reuse
    // or an invala-mode check) already writes the temp.
    if (V.RefinesVer != ~0u &&
        (RewriteOcc[V.DefOcc] || InvalaOccSet.count(V.DefOcc)))
      continue;
    Occurrence &O = E.Occs[V.DefOcc];
    if (O.IsStore) {
      MutationPlan::DefStoreRewrite R;
      R.S = O.S;
      R.Ref = E.Ref;
      R.Temp = Temp;
      R.AddrTemp = AddrTemp;
      R.UseStA = Config.UseStA && NeedAlatAnywhere;
      R.NeedAlat = NeedAlatAnywhere;
      Plan.DefStores.push_back(R);
    } else {
      MutationPlan::DefLoadRewrite R;
      R.S = O.S;
      R.Temp = Temp;
      R.AddrTemp = AddrTemp;
      R.Flag = DefFlag;
      Plan.DefLoads.push_back(R);
      if (DefFlag != SpecFlag::None)
        ++Stats.AdvancedLoads;
    }
  }

  // Φ-driven insertions (planned in Phase A as capture points).
  for (const PlannedInsert &PI : Inserts) {
    MutationPlan::EdgeInsert Ins;
    Ins.From = PI.Phi->BB->preds()[PI.OperandIdx];
    Ins.To = PI.Phi->BB;
    Ins.Ref = E.Ref;
    Ins.Temp = Temp;
    Ins.AddrTemp = AddrTemp;
    // Inserted loads are control-speculative; when the expression is
    // also data-speculative this is the combined ld.sa (§2.3).
    Ins.Flag = NeedAlatAnywhere ? SpecFlag::LdSA : SpecFlag::None;
    Plan.EdgeInserts.push_back(Ins);
    ++Stats.InsertedLoads;
    if (Ins.Flag != SpecFlag::None)
      ++Stats.AdvancedLoads;
  }

  // Reuse rewrites.
  for (unsigned OI : AvailReuses) {
    if (!RewriteOcc[OI])
      continue;
    Plan.Reuses.push_back({E.Occs[OI].S, Temp});
    uint64_t Weight = Edges ? Edges->blockCount(E.Occs[OI].BB) : 1;
    if (Indirect) {
      ++Stats.LoadsRemovedIndirect;
      Stats.DynLoadsRemovedIndirect += Weight;
    } else {
      ++Stats.LoadsRemovedDirect;
      Stats.DynLoadsRemovedDirect += Weight;
    }
  }
  for (const CheckReuseOcc &CR : CheckReuseOccs) {
    MutationPlan::InvalaReuse R;
    R.S = E.Occs[CR.OI].S;
    R.Temp = Temp;
    R.Flag = CR.Flag;
    R.AddrSrc = Indirect ? AddrTemp : NoTemp;
    Plan.InvalaReuses.push_back(R);
    if (CR.Flag == SpecFlag::ChkAnc)
      ++Stats.CascadeChecks;
    else
      ++Stats.ChecksInserted;
  }
  bool InvalaPlaced = false;
  for (unsigned OI : InvalaOccs) {
    MutationPlan::InvalaReuse R;
    R.S = E.Occs[OI].S;
    R.Temp = Temp;
    Plan.InvalaReuses.push_back(R);
    ++Stats.InvalaModeLoads;
    if (!InvalaPlaced) {
      // One invala.e at a point dominating the whole expression region
      // (the entry block start always qualifies; see §2.3).
      Plan.Invalas.push_back({F.entry(), Temp});
      ++Stats.InvalaInserted;
      InvalaPlaced = true;
    }
  }

  // Check statements after the crossed stores.
  std::set<const Stmt *> CheckAfterPlanned;
  for (const ChiRecord *Chi : AlatChecks) {
    if (!CheckAfterPlanned.insert(Chi->S).second)
      continue;
    MutationPlan::CheckInsert C;
    C.After = const_cast<Stmt *>(Chi->S);
    C.Ref = E.Ref;
    C.Temp = Temp;
    C.AddrTemp = AddrTemp;
    C.Cascade = NeedCascadeAny;
    Plan.Checks.push_back(C);
    if (NeedCascadeAny)
      ++Stats.CascadeChecks;
    else
      ++Stats.ChecksInserted;
  }
  for (const ChiRecord *Chi : SoftChecks) {
    if (!CheckAfterPlanned.insert(Chi->S).second)
      continue;
    MutationPlan::SoftwareCheckInsert C;
    C.After = const_cast<Stmt *>(Chi->S);
    C.Temp = Temp;
    C.ExprAddrTemp = ExprAddrTemp;
    C.ExprAddrIsChainPtr = Indirect;
    int64_t Extra = E.Ref.Offset;
    if (E.Ref.Index.K == Operand::Kind::ConstInt)
      Extra += E.Ref.Index.IntVal * 8;
    C.ExtraOffset = Indirect ? Extra : 0;
    Plan.SoftwareChecks.push_back(C);
    ++Stats.SoftwareChecks;
  }
}

//===----------------------------------------------------------------------===//
// Mutation application
//===----------------------------------------------------------------------===//

void FunctionPromoter::collectCrossedChis(
    ssa::ObjectId Obj, unsigned FromVer,
    const std::set<unsigned> &StopVers, bool DataLevel,
    std::vector<const ssa::ChiRecord *> &Out) const {
  const auto &Canon = DataLevel ? CanonData[Obj] : CanonAddr[Obj];
  std::set<unsigned> Visited;
  std::vector<unsigned> Work{FromVer};
  while (!Work.empty()) {
    unsigned Ver = Work.back();
    Work.pop_back();
    if (!Visited.insert(Ver).second)
      continue;
    // A capture point ends the chain: the promoted temp was (re)written
    // with the expression's value at a program point carrying this raw
    // version, so χs at or above it are not between capture and reuse.
    if (StopVers.count(Ver))
      continue;
    const VersionOrigin &O = H.origin(Obj, Ver);
    switch (O.K) {
    case VersionOrigin::Kind::Chi: {
      const ChiRecord &Chi = H.chi(O.ChiIndex);
      bool Collapsible =
          DataLevel ? chiCollapsibleData(Chi) : chiCollapsibleAddr(Chi);
      if (!Collapsible)
        break; // Chain broken; nothing to speculate across here.
      if (std::find(Out.begin(), Out.end(), &Chi) == Out.end())
        Out.push_back(&Chi);
      Work.push_back(Chi.UseVer);
      break;
    }
    case VersionOrigin::Kind::Phi: {
      // A φ pinned to itself is a real merge: values arriving here differ
      // and the merge is not part of this version's collapse web.
      if (Canon[Ver] == Ver)
        break;
      const auto &Phis2 = H.phisOf(O.BB);
      if (O.PhiIndex < Phis2.size())
        for (unsigned Arg : Phis2[O.PhiIndex].Args)
          Work.push_back(Arg);
      break;
    }
    case VersionOrigin::Kind::LiveIn:
    case VersionOrigin::Kind::RealDef:
      break;
    }
  }
}

BasicBlock *FunctionPromoter::insertionBlockFor(BasicBlock *From,
                                                BasicBlock *To) {
  if (From->succs().size() == 1)
    return From;
  auto Key = std::make_pair(From, To);
  auto It = SplitBlocks.find(Key);
  if (It != SplitBlocks.end())
    return It->second;
  BasicBlock *Split =
      F.createBlock(From->getName() + "." + To->getName() + ".split");
  Split->term().Kind = TermKind::Br;
  Split->term().Target = To;
  Terminator &T = From->term();
  if (T.Target == To)
    T.Target = Split;
  if (T.Kind == TermKind::CondBr && T.FalseTarget == To)
    T.FalseTarget = Split;
  SplitBlocks[Key] = Split;
  return Split;
}


void FunctionPromoter::applyPlan() {
  // Edge insertions first (they create blocks; nothing else refers to
  // statement positions in them).
  for (const auto &Ins : Plan.EdgeInserts) {
    BasicBlock *BB = insertionBlockFor(Ins.From, Ins.To);
    Stmt S;
    S.Kind = StmtKind::Load;
    S.Ref = Ins.Ref;
    S.Flag = Ins.Flag;
    S.Dst = Ins.Temp;
    S.AddrDst = Ins.AddrTemp;
    BB->append(std::move(S));
  }
  // Address materializations for software compares on direct refs.
  for (const auto &Mat : Plan.AddrMats) {
    Stmt S;
    S.Kind = StmtKind::AddrOf;
    S.Ref = Mat.Ref;
    S.Ref.Depth = 0;
    S.Ref.ValueType = Mat.Ref.Base->ElemType;
    S.Dst = Mat.Temp;
    Mat.Ref.Base->AddressTaken = true;
    F.entry()->insertBefore(0, std::move(S));
  }
  for (const auto &Inv : Plan.Invalas) {
    Stmt S;
    S.Kind = StmtKind::Invala;
    S.Dst = Inv.Temp;
    Inv.BB->insertBefore(0, std::move(S));
  }
  // Defining loads: retarget to the promoted temp, preserve the old temp
  // via a copy.
  for (const auto &R : Plan.DefLoads) {
    unsigned OldDst = R.S->Dst;
    R.S->Dst = R.Temp;
    R.S->Flag = R.Flag;
    R.S->AddrDst = R.AddrTemp;
    Stmt Copy;
    Copy.Kind = StmtKind::Assign;
    Copy.Op = Opcode::Copy;
    Copy.Dst = OldDst;
    Copy.A = Operand::temp(R.Temp);
    for (unsigned BI = 0; BI < F.numBlocks(); ++BI) {
      BasicBlock *Blk = F.block(BI);
      for (size_t SI = 0; SI < Blk->size(); ++SI) {
        if (Blk->stmt(SI) == R.S) {
          Blk->insertAfter(SI, std::move(Copy));
          BI = F.numBlocks();
          break;
        }
      }
    }
  }
  // Defining stores.
  for (const auto &R : Plan.DefStores) {
    for (unsigned BI = 0; BI < F.numBlocks(); ++BI) {
      BasicBlock *Blk = F.block(BI);
      for (size_t SI = 0; SI < Blk->size(); ++SI) {
        if (Blk->stmt(SI) != R.S)
          continue;
        // st.a only applies when the chain pointer coincides with the
        // final store address (no index/offset): the store's exposed
        // address then doubles as the checks' chain pointer.
        bool StAApplicable =
            R.Ref.isDirect() ||
            (!R.Ref.hasIndex() && R.Ref.Offset == 0);
        if (R.UseStA && R.NeedAlat && StAApplicable) {
          R.S->StA = true;
          R.S->AlatDst = R.Temp;
          if (R.AddrTemp != NoTemp)
            R.S->AddrDst = R.AddrTemp;
          ++Stats.StAStores;
          Stmt Copy;
          Copy.Kind = StmtKind::Assign;
          Copy.Op = Opcode::Copy;
          Copy.Dst = R.Temp;
          Copy.A = R.S->A;
          Blk->insertAfter(SI, std::move(Copy));
        } else if (R.NeedAlat) {
          // The paper's read-after-write form: an explicit ld.a after the
          // store secures the ALAT entry (Figure 1(b)). It re-walks the
          // reference chain and exposes the chain pointer for the checks.
          Stmt Ld;
          Ld.Kind = StmtKind::Load;
          Ld.Ref = R.Ref;
          Ld.Flag = SpecFlag::LdA;
          Ld.Dst = R.Temp;
          Ld.AddrDst = R.AddrTemp;
          Blk->insertAfter(SI, std::move(Ld));
          ++Stats.AdvancedLoads;
        } else {
          Stmt Copy;
          Copy.Kind = StmtKind::Assign;
          Copy.Op = Opcode::Copy;
          Copy.Dst = R.Temp;
          Copy.A = R.S->A;
          Blk->insertAfter(SI, std::move(Copy));
        }
        BI = F.numBlocks();
        break;
      }
    }
  }
  // ALAT checks after speculatively ignored stores.
  for (const auto &C : Plan.Checks) {
    for (unsigned BI = 0; BI < F.numBlocks(); ++BI) {
      BasicBlock *Blk = F.block(BI);
      for (size_t SI = 0; SI < Blk->size(); ++SI) {
        if (Blk->stmt(SI) != C.After)
          continue;
        Stmt S;
        S.Kind = StmtKind::Load;
        S.Ref = C.Ref;
        S.Flag = C.Cascade ? SpecFlag::ChkAnc : SpecFlag::LdCnc;
        S.Dst = C.Temp;
        S.AddrSrc = C.AddrTemp;
        Blk->insertAfter(SI, std::move(S));
        BI = F.numBlocks();
        break;
      }
    }
  }
  // Software compare+forward pairs. For indirect expressions the saved
  // chain pointer needs the constant offset re-applied to give the final
  // address (symbolic indices were excluded at planning time).
  for (const auto &C : Plan.SoftwareChecks) {
    for (unsigned BI = 0; BI < F.numBlocks(); ++BI) {
      BasicBlock *Blk = F.block(BI);
      for (size_t SI = 0; SI < Blk->size(); ++SI) {
        Stmt *Store = Blk->stmt(SI);
        if (Store != C.After)
          continue;
        if (Store->AddrDst == NoTemp)
          Store->AddrDst = F.createTemp(TypeKind::Int);
        size_t Pos = SI;
        unsigned ExprAddr = C.ExprAddrTemp;
        if (C.ExprAddrIsChainPtr && C.ExtraOffset != 0) {
          Stmt AddExtra;
          AddExtra.Kind = StmtKind::Assign;
          AddExtra.Op = Opcode::Add;
          AddExtra.Dst = F.createTemp(TypeKind::Int);
          AddExtra.A = Operand::temp(C.ExprAddrTemp);
          AddExtra.B = Operand::constInt(C.ExtraOffset);
          ExprAddr = AddExtra.Dst;
          Blk->insertAfter(Pos++, std::move(AddExtra));
        }
        Stmt Cmp;
        Cmp.Kind = StmtKind::Assign;
        Cmp.Op = Opcode::CmpEq;
        Cmp.Dst = F.createTemp(TypeKind::Int);
        Cmp.A = Operand::temp(Store->AddrDst);
        Cmp.B = Operand::temp(ExprAddr);
        unsigned CmpDst = Cmp.Dst;
        Operand StoredVal = Store->A;
        Blk->insertAfter(Pos++, std::move(Cmp));
        Stmt Sel;
        Sel.Kind = StmtKind::Assign;
        Sel.Op = Opcode::Select;
        Sel.Dst = C.Temp;
        Sel.A = Operand::temp(CmpDst);
        Sel.B = StoredVal;
        Sel.C = Operand::temp(C.Temp);
        Blk->insertAfter(Pos, std::move(Sel));
        BI = F.numBlocks();
        break;
      }
    }
  }
  // Invala-mode reuses: keep the load, retarget to the promoted temp with
  // a checking flag, preserve the old temp via a copy.
  for (const auto &R : Plan.InvalaReuses) {
    unsigned OldDst = R.S->Dst;
    R.S->Dst = R.Temp;
    R.S->Flag = R.Flag;
    R.S->AddrSrc = R.AddrSrc;
    Stmt Copy;
    Copy.Kind = StmtKind::Assign;
    Copy.Op = Opcode::Copy;
    Copy.Dst = OldDst;
    Copy.A = Operand::temp(R.Temp);
    for (unsigned BI = 0; BI < F.numBlocks(); ++BI) {
      BasicBlock *Blk = F.block(BI);
      for (size_t SI = 0; SI < Blk->size(); ++SI) {
        if (Blk->stmt(SI) == R.S) {
          Blk->insertAfter(SI, std::move(Copy));
          BI = F.numBlocks();
          break;
        }
      }
    }
  }
  // Redundant loads become register copies in place: the promoted temp
  // holds the version's value exactly here (checks may redefine it later,
  // so uses must snapshot it at the original load point).
  for (const auto &R : Plan.Reuses) {
    Stmt *S = R.S;
    S->Kind = StmtKind::Assign;
    S->Op = Opcode::Copy;
    S->A = Operand::temp(R.Temp);
    S->B = Operand();
    S->Ref = MemRef();
    S->Flag = SpecFlag::None;
    S->AddrDst = NoTemp;
    S->AddrSrc = NoTemp;
  }
  F.recomputeCFG();
}

//===----------------------------------------------------------------------===//
// Check cleanup
//===----------------------------------------------------------------------===//

/// Erases checks (ld.c family inserted after stores) whose promoted temp
/// either has no reaching definition or no observable use afterwards.
void FunctionPromoter::cleanupChecks() {
  std::set<const Stmt *> Protected;
  for (const auto &R : Plan.InvalaReuses)
    Protected.insert(R.S);
  for (const auto &TI : PromotedTemps) {
    unsigned Temp = TI.first;
    unsigned NumBlocks = F.numBlocks();
    // A "definition" is any statement writing Temp that is not itself a
    // check; a "use" is any read of Temp by a non-check statement.
    auto IsCheck = [&](const Stmt *S) {
      return S->isLoad() && isCheckFlag(S->Flag) && S->Dst == Temp &&
             !Protected.count(S);
    };
    auto Defines = [&](const Stmt *S) {
      return (S->definesTemp() && S->Dst == Temp) ||
             (S->isStore() && S->AlatDst == Temp);
    };
    auto Uses = [&](const Stmt *S) {
      std::vector<unsigned> Used;
      S->collectUsedTemps(Used);
      if (std::find(Used.begin(), Used.end(), Temp) != Used.end())
        return true;
      return false;
    };
    auto TermUses = [&](const Terminator &T) {
      return (T.Cond.isTemp() && T.Cond.TempId == Temp) ||
             (T.RetVal.isTemp() && T.RetVal.TempId == Temp);
    };

    // Forward "some def reaches" per block entry.
    std::vector<char> DefReachIn(NumBlocks, 0), DefReachOut(NumBlocks, 0);
    // Backward "some use is ahead before any def" per block exit.
    std::vector<char> LiveIn(NumBlocks, 0), LiveOut(NumBlocks, 0);
    // Per-block summaries.
    std::vector<char> HasDef(NumBlocks, 0), UseBeforeDef(NumBlocks, 0);
    for (unsigned BI = 0; BI < NumBlocks; ++BI) {
      BasicBlock *BB = F.block(BI);
      bool SeenDef = false;
      for (size_t SI = 0; SI < BB->size(); ++SI) {
        const Stmt *S = BB->stmt(SI);
        if (Uses(S) && !SeenDef && !IsCheck(S))
          UseBeforeDef[BI] = 1;
        if (Defines(S) && !IsCheck(S))
          SeenDef = true;
      }
      if (TermUses(BB->term()) && !SeenDef)
        UseBeforeDef[BI] = 1;
      HasDef[BI] = SeenDef;
    }
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (unsigned BI = 0; BI < NumBlocks; ++BI) {
        BasicBlock *BB = F.block(BI);
        char In = 0;
        for (BasicBlock *Pred : BB->preds())
          In |= DefReachOut[Pred->getId()];
        char Out = HasDef[BI] | In;
        if (In != DefReachIn[BI] || Out != DefReachOut[BI]) {
          DefReachIn[BI] = In;
          DefReachOut[BI] = Out;
          Changed = true;
        }
      }
    }
    Changed = true;
    while (Changed) {
      Changed = false;
      for (unsigned BI = 0; BI < NumBlocks; ++BI) {
        BasicBlock *BB = F.block(BI);
        char Out = 0;
        for (BasicBlock *Succ : BB->succs())
          Out |= LiveIn[Succ->getId()];
        char In = UseBeforeDef[BI] | Out; // Checks don't kill liveness.
        if (In != LiveIn[BI] || Out != LiveOut[BI]) {
          LiveIn[BI] = In;
          LiveOut[BI] = Out;
          Changed = true;
        }
      }
    }

    // Scan each block and erase dead checks.
    for (unsigned BI = 0; BI < NumBlocks; ++BI) {
      BasicBlock *BB = F.block(BI);
      for (size_t SI = 0; SI < BB->size();) {
        Stmt *S = BB->stmt(SI);
        if (!IsCheck(S)) {
          ++SI;
          continue;
        }
        // Def available before this check?
        bool DefBefore = DefReachIn[BI];
        for (size_t SJ = 0; SJ < SI; ++SJ)
          if (Defines(BB->stmt(SJ)) && !IsCheck(BB->stmt(SJ)))
            DefBefore = true;
        // Use after this check before a non-check def?
        bool UseAfter = false;
        bool Killed = false;
        for (size_t SJ = SI + 1; SJ < BB->size() && !Killed; ++SJ) {
          const Stmt *S2 = BB->stmt(SJ);
          if (Uses(S2)) {
            UseAfter = true;
            break;
          }
          if (Defines(S2) && !IsCheck(S2))
            Killed = true;
        }
        if (!Killed && !UseAfter)
          UseAfter = TermUses(BB->term()) || LiveOut[BI];
        if (DefBefore && UseAfter) {
          ++SI;
          continue;
        }
        BB->erase(SI);
        ++Stats.ChecksRemovedByCleanup;
      }
    }
  }
}

PromotionStats FunctionPromoter::run() {
  CanonData = H.canonicalMap(
      [this](const ChiRecord &Chi) { return chiCollapsibleData(Chi); });
  CanonAddr = H.canonicalMap(
      [this](const ChiRecord &Chi) { return chiCollapsibleAddr(Chi); });
  computeTempDefs();
  collectExpressions();
  for (auto &[Key, E] : Exprs)
    processExpression(E);
  applyPlan();
  cleanupChecks();
  return Stats;
}

} // namespace

PromotionStats srp::pre::promoteFunction(ir::Function &F,
                                         const alias::AliasAnalysis &AA,
                                         const interp::AliasProfile *Profile,
                                         const interp::EdgeProfile *Edges,
                                         const PromotionConfig &Config) {
  F.recomputeCFG();
  PromotionStats Stats;
  {
    FunctionPromoter P(F, AA, Profile, Edges, Config);
    Stats = P.run();
  }
  propagateCopies(F);
  F.recomputeCFG();
  // The strategy's optimistic canonical collapse can hide plain
  // (non-speculative) PRE arrangements when the run-time check mechanism
  // turns out infeasible for a reuse. A conservative cleanup pass picks
  // those up; it never speculates, so running it after any strategy is
  // sound.
  if (Config.EnableAlat || Config.EnableSoftwareCheck) {
    // Materialised into a local: FunctionPromoter keeps a reference to
    // its config, so a temporary here would dangle once run() executes.
    const PromotionConfig Conservative = PromotionConfig::conservative();
    FunctionPromoter Cleanup(F, AA, Profile, Edges, Conservative);
    Stats += Cleanup.run();
    // Coalesce the snapshot copies CodeMotion introduced (register
    // allocators do this via coalescing; the simulated instruction
    // stream should not pay for pseudo moves).
    propagateCopies(F);
    F.recomputeCFG();
  }
  // Promotion must leave well-formed IR behind; dying here (with the
  // function named) pins a verifier regression to the pass and function
  // that produced it instead of a later whole-module sweep.
  ir::verifyOrDie(F, "after promotion");
  return Stats;
}

PromotionStats srp::pre::promoteModule(ir::Module &M,
                                       const alias::AliasAnalysis &AA,
                                       const interp::AliasProfile *Profile,
                                       const interp::EdgeProfile *Edges,
                                       const PromotionConfig &Config) {
  PromotionStats Total;
  for (unsigned I = 0; I < M.numFunctions(); ++I)
    Total += promoteFunction(*M.function(I), AA, Profile, Edges, Config);
  return Total;
}
