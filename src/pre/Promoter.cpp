//===- Promoter.cpp - SSAPRE promotion orchestrator ---------------------------===//
//
// The per-function driver of the staged SSAPRE pass. The stages
// themselves live in their own translation units (see PromotionContext.h
// for the map); this file only sequences them, accumulates per-stage wall
// time, and wires the optional AnalysisCache so dominators and loops are
// computed once per function per pipeline instead of per promotion run.
//
//===----------------------------------------------------------------------===//

#include "pre/Promoter.h"

#include "pre/CopyProp.h"
#include "pre/PromotionContext.h"

#include "ir/Verifier.h"
#include "ssa/AnalysisCache.h"
#include "support/Stats.h"
#include "support/Timer.h"

#include <optional>

using namespace srp;
using namespace srp::ir;
using namespace srp::ssa;
using namespace srp::pre;
using namespace srp::pre::detail;

PromotionStats detail::runPromotion(PromotionContext &Ctx,
                                    StageTimings *Timings) {
  StageTimings Local;
  StageTimings &T = Timings ? *Timings : Local;
  {
    ScopedTimer ST(T.PhiInsertion);
    Ctx.CanonData = Ctx.H.canonicalMap(
        [&Ctx](const ChiRecord &Chi) { return Ctx.chiCollapsibleData(Chi); });
    Ctx.CanonAddr = Ctx.H.canonicalMap(
        [&Ctx](const ChiRecord &Chi) { return Ctx.chiCollapsibleAddr(Chi); });
    computeTempDefs(Ctx);
    collectExpressions(Ctx);
  }
  for (auto &[Key, E] : Ctx.Exprs) {
    if (!exprEligible(Ctx, E))
      continue;
    ExprWork W;
    {
      ScopedTimer ST(T.PhiInsertion);
      insertPhis(Ctx, E, W);
    }
    {
      ScopedTimer ST(T.Rename);
      renameExpression(Ctx, E, W);
    }
    {
      ScopedTimer ST(T.DownSafety);
      computeDownSafety(Ctx, E, W);
    }
    {
      ScopedTimer ST(T.WillBeAvail);
      computeWillBeAvail(Ctx, E, W);
    }
    {
      ScopedTimer ST(T.CodeMotion);
      planCodeMotion(Ctx, E, W);
    }
  }
  {
    ScopedTimer ST(T.Apply);
    applyPlan(Ctx);
  }
  {
    ScopedTimer ST(T.Cleanup);
    cleanupChecks(Ctx);
  }
  return Ctx.Stats;
}

namespace {

/// Records the per-stage wall time into the process-wide registry so
/// `--stats` shows where promotion time goes across a whole run.
void recordStageTimes(const StageTimings &T) {
  StatsRegistry &R = StatsRegistry::current();
  R.add("pre.phiinsertion.us", T.PhiInsertion);
  R.add("pre.rename.us", T.Rename);
  R.add("pre.downsafety.us", T.DownSafety);
  R.add("pre.willbeavail.us", T.WillBeAvail);
  R.add("pre.codemotion.us", T.CodeMotion);
  R.add("pre.apply.us", T.Apply);
  R.add("pre.cleanup.us", T.Cleanup);
}

} // namespace

PromotionStats srp::pre::promoteFunction(ir::Function &F,
                                         const alias::AliasAnalysis &AA,
                                         const interp::AliasProfile *Profile,
                                         const interp::EdgeProfile *Edges,
                                         const PromotionConfig &Config,
                                         ssa::AnalysisCache *Cache) {
  // Earlier mutating passes are contractually required to have
  // invalidated F already (AnalysisCache.h), so a cached dominator tree
  // here is still valid; recomputing the edge lists is idempotent.
  F.recomputeCFG();
  StageTimings Times;

  auto PlanEmpty = [](const MutationPlan &P) {
    return P.EdgeInserts.empty() && P.DefLoads.empty() &&
           P.DefStores.empty() && P.Reuses.empty() &&
           P.InvalaReuses.empty() && P.Checks.empty() &&
           P.SoftwareChecks.empty() && P.Invalas.empty() &&
           P.AddrMats.empty();
  };

  // One promotion run with the given config, drawing dominators and loops
  // from the cache when the caller provides one.
  auto RunOnce = [&](const PromotionConfig &Cfg) {
    std::optional<DominatorTree> LocalDT;
    std::optional<LoopInfo> LocalLI;
    const DominatorTree *DT;
    const LoopInfo *LI;
    if (Cache) {
      DT = &Cache->dominators(F);
      LI = &Cache->loops(F);
    } else {
      LocalDT.emplace(F);
      LocalLI.emplace(*LocalDT);
      DT = &*LocalDT;
      LI = &*LocalLI;
    }
    PromotionContext Ctx(F, AA, Profile, Edges, Cfg, *DT, *LI);
    PromotionStats S = runPromotion(Ctx, &Times);
    // The run mutated F iff the plan applied anything or cleanup erased
    // a check; copy propagation below may rewrite further. Invalidate
    // only then — an empty run leaves the cached dominators and loops
    // live for the second (conservative) run and the verifier passes.
    bool Mutated = !PlanEmpty(Ctx.Plan) || S.ChecksRemovedByCleanup != 0;
    CopyPropStats CP = propagateCopies(F);
    Mutated |= CP.UsesRewritten != 0 || CP.AssignsRemoved != 0;
    if (Mutated) {
      if (Cache)
        Cache->invalidate(F);
      F.recomputeCFG();
    }
    return S;
  };

  PromotionStats Stats = RunOnce(Config);
  // The strategy's optimistic canonical collapse can hide plain
  // (non-speculative) PRE arrangements when the run-time check mechanism
  // turns out infeasible for a reuse. A conservative cleanup pass picks
  // those up; it never speculates, so running it after any strategy is
  // sound. (Coalescing the snapshot copies afterwards keeps the simulated
  // instruction stream free of pseudo moves.)
  if (Config.EnableAlat || Config.EnableSoftwareCheck)
    Stats += RunOnce(PromotionConfig::conservative());

  recordStageTimes(Times);
  // Promotion must leave well-formed IR behind; dying here (with the
  // function named) pins a verifier regression to the pass and function
  // that produced it instead of a later whole-module sweep.
  ir::verifyOrDie(F, "after promotion");
  return Stats;
}

PromotionStats srp::pre::promoteModule(ir::Module &M,
                                       const alias::AliasAnalysis &AA,
                                       const interp::AliasProfile *Profile,
                                       const interp::EdgeProfile *Edges,
                                       const PromotionConfig &Config,
                                       ssa::AnalysisCache *Cache) {
  PromotionStats Total;
  for (unsigned I = 0; I < M.numFunctions(); ++I)
    Total += promoteFunction(*M.function(I), AA, Profile, Edges, Config,
                             Cache);
  return Total;
}
