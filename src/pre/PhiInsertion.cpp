//===- PhiInsertion.cpp - Candidate collection and Φ-insertion ----------------===//
//
// Stage 1 of the staged SSAPRE pass (see PromotionContext.h): gather the
// lexical promotion candidates in dominator preorder, record temp
// definition sites, and place expression Φs at the iterated dominance
// frontier of occurrences and constituent definitions.
//
//===----------------------------------------------------------------------===//

#include "pre/PromotionContext.h"

#include <algorithm>

using namespace srp;
using namespace srp::ir;
using namespace srp::ssa;
using namespace srp::pre;
using namespace srp::pre::detail;

void detail::computeTempDefs(PromotionContext &Ctx) {
  Function &F = Ctx.F;
  Ctx.TempDefBlock.assign(F.numTemps(), nullptr);
  Ctx.TempDefCount.assign(F.numTemps(), 0);
  for (unsigned BI = 0; BI < F.numBlocks(); ++BI) {
    BasicBlock *BB = F.block(BI);
    for (size_t SI = 0; SI < BB->size(); ++SI) {
      Stmt *S = BB->stmt(SI);
      if (S->definesTemp()) {
        Ctx.TempDefBlock[S->Dst] = BB;
        ++Ctx.TempDefCount[S->Dst];
      }
    }
  }
}

void detail::collectExpressions(PromotionContext &Ctx) {
  Function &F = Ctx.F;
  // Dominator-preorder statement order: walk dom tree, number statements.
  std::vector<BasicBlock *> Stack{F.entry()};
  std::vector<BasicBlock *> Order;
  while (!Stack.empty()) {
    BasicBlock *BB = Stack.back();
    Stack.pop_back();
    Order.push_back(BB);
    auto Kids = Ctx.DT.children(BB);
    for (auto It = Kids.rbegin(); It != Kids.rend(); ++It)
      Stack.push_back(*It);
  }

  for (BasicBlock *BB : Order) {
    for (size_t SI = 0; SI < BB->size(); ++SI) {
      Stmt *S = BB->stmt(SI);
      if (!S->accessesMemory())
        continue;
      // Statements carrying speculation machinery from an earlier
      // promotion pass (flags, st.a, saved chain pointers) are not
      // occurrence candidates; the cleanup pass must leave them alone.
      if (S->Flag != SpecFlag::None || S->StA || S->AddrSrc != NoTemp)
        continue;
      ExprInfo &E = Ctx.Exprs[ExprKey::of(S->Ref)];
      if (E.Occs.empty()) {
        E.Ref = S->Ref;
        E.Constituents = Ctx.H.refObjects(S->Ref);
        if (S->Ref.Index.isTemp())
          E.IndexTemp = S->Ref.Index.getTemp();
      }
      Occurrence O;
      O.S = S;
      O.BB = BB;
      O.OrderInBlock = static_cast<unsigned>(SI);
      O.IsStore = S->isStore();
      E.Occs.push_back(O);
    }
  }
  // Occurrences are already in dominator preorder by construction.
}

bool detail::exprEligible(const PromotionContext &Ctx, const ExprInfo &E) {
  bool HasLoad = false;
  for (const Occurrence &O : E.Occs)
    HasLoad |= !O.IsStore;
  if (!HasLoad)
    return false; // Only stores: nothing to promote (loads only, §5).
  for (ObjectId Obj : E.Constituents)
    if (Obj == InvalidObject)
      return false;
  // After a previous promotion pass, a temp can have several defining
  // statements; expressions indexed by such a temp are skipped (the
  // single-def assumption underlies the index-kill analysis in Rename
  // and DownSafety).
  if (E.IndexTemp != NoTemp && Ctx.TempDefCount[E.IndexTemp] > 1)
    return false;
  return true;
}

void detail::insertPhis(PromotionContext &Ctx, const ExprInfo &E,
                        ExprWork &W) {
  const DominatorTree &DT = Ctx.DT;
  std::vector<BasicBlock *> Seeds;
  auto AddSeed = [&](BasicBlock *BB) {
    if (BB && DT.isReachable(BB) &&
        std::find(Seeds.begin(), Seeds.end(), BB) == Seeds.end())
      Seeds.push_back(BB);
  };
  for (const Occurrence &O : E.Occs)
    AddSeed(O.BB);
  for (size_t L = 0; L < E.Constituents.size(); ++L) {
    ObjectId Obj = E.Constituents[L];
    for (unsigned Ver = 0; Ver < Ctx.H.numVersions(Obj); ++Ver) {
      const VersionOrigin &VO = Ctx.H.origin(Obj, Ver);
      if (VO.K == VersionOrigin::Kind::RealDef ||
          VO.K == VersionOrigin::Kind::Chi)
        AddSeed(VO.BB);
    }
  }
  if (E.IndexTemp != NoTemp && E.IndexTemp < Ctx.TempDefBlock.size())
    AddSeed(Ctx.TempDefBlock[E.IndexTemp]);

  W.PhiAtBlock.assign(Ctx.F.numBlocks(), ~0u);
  for (BasicBlock *BB : DT.iteratedFrontier(Seeds)) {
    ExprPhi Phi;
    Phi.BB = BB;
    Phi.Operands.assign(BB->preds().size(), ~0u);
    Phi.Version = static_cast<unsigned>(W.Vers.size());
    ExprVer V;
    V.Kind = ExprVer::DefKind::Phi;
    V.PhiId = static_cast<unsigned>(W.Phis.size());
    W.Vers.push_back(V);
    W.PhiAtBlock[BB->getId()] = static_cast<unsigned>(W.Phis.size());
    W.Phis.push_back(Phi);
  }
}
