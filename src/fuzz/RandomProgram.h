//===- RandomProgram.h - Random IR program generator -------------*- C++ -*-===//
//
// Part of the srp-alat project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic random program generator for differential testing and
/// fuzzing. The programs are pointer-heavy by construction: pointer cells
/// are retargeted at random program points (including under branches), so
/// alias profiles genuinely diverge from the static points-to sets, and
/// speculative promotion gets real collisions to survive.
///
/// Guarantees: programs terminate (loops have constant trip counts), pass
/// the verifier (indices are masked, offsets stay in bounds), and print
/// enough state to make any miscompilation observable.
///
/// A program is a pure function of (GenOptions, Seed). The fuzzer
/// (fuzz::runFuzzer) derives the options themselves from a second seed
/// via GenOptions::fromSeed, so one (ShapeSeed, ProgSeed) pair replays a
/// generated program exactly; the defaults reproduce the generator the
/// property tests have always used.
///
//===----------------------------------------------------------------------===//

#ifndef SRP_FUZZ_RANDOMPROGRAM_H
#define SRP_FUZZ_RANDOMPROGRAM_H

#include "ir/IRBuilder.h"
#include "support/RNG.h"
#include "support/StringUtils.h"

#include <string>
#include <vector>

namespace srp::fuzz {

/// Shape of the generated program. Every knob is clamped into a safe
/// range by normalize(), so arbitrary fuzz-derived values cannot produce
/// an unverifiable program (e.g. an array the masking trick can't index).
struct GenOptions {
  unsigned IntScalars = 4;   ///< >= 2 (the helper uses the first two).
  unsigned FloatScalars = 2; ///< >= 1.
  unsigned Pointers = 3;     ///< >= 1.
  unsigned ArrayElems = 16;  ///< Power of two (indices are masked).
  unsigned MinStmts = 14;    ///< Top-level statement floor.
  unsigned ExtraStmts = 10;  ///< Random extra statements in [0, Extra).
  unsigned MaxIfDepth = 3;   ///< Nesting cap for if statements.
  unsigned MaxLoopDepth = 2; ///< Nesting cap for bounded loops.
  bool UseHelperCalls = true;

  /// Derives a valid shape from \p Seed (the fuzzer's ShapeSeed).
  static GenOptions fromSeed(uint64_t Seed) {
    GenOptions O;
    RNG R(Seed * 0x9e3779b97f4a7c15ULL + 0x5eed);
    O.IntScalars = 2 + static_cast<unsigned>(R.nextBelow(5));
    O.FloatScalars = 1 + static_cast<unsigned>(R.nextBelow(3));
    O.Pointers = 1 + static_cast<unsigned>(R.nextBelow(4));
    static const unsigned Elems[] = {8, 16, 32};
    O.ArrayElems = Elems[R.nextBelow(3)];
    O.MinStmts = 6 + static_cast<unsigned>(R.nextBelow(24));
    O.ExtraStmts = 4 + static_cast<unsigned>(R.nextBelow(16));
    O.MaxIfDepth = 1 + static_cast<unsigned>(R.nextBelow(3));
    O.MaxLoopDepth = static_cast<unsigned>(R.nextBelow(3));
    O.UseHelperCalls = R.nextBool(0.8);
    return O;
  }

  /// Clamps every knob into its documented range.
  GenOptions normalized() const {
    GenOptions O = *this;
    if (O.IntScalars < 2)
      O.IntScalars = 2;
    if (O.FloatScalars < 1)
      O.FloatScalars = 1;
    if (O.Pointers < 1)
      O.Pointers = 1;
    // Round down to a power of two in [4, 64].
    unsigned E = O.ArrayElems < 4 ? 4 : (O.ArrayElems > 64 ? 64 : O.ArrayElems);
    while (E & (E - 1))
      E &= E - 1;
    O.ArrayElems = E;
    if (O.MinStmts < 1)
      O.MinStmts = 1;
    if (O.ExtraStmts < 1)
      O.ExtraStmts = 1;
    return O;
  }
};

class RandomProgramBuilder {
public:
  RandomProgramBuilder(ir::Module &M, uint64_t Seed,
                       const GenOptions &Options = GenOptions())
      : M(M), B(M), Rng(Seed), Opts(Options.normalized()) {}

  void build() {
    using namespace ir;
    for (unsigned I = 0; I < Opts.IntScalars; ++I)
      IntScalars.push_back(
          M.createGlobal(formatString("g%u", I), TypeKind::Int));
    for (unsigned I = 0; I < Opts.FloatScalars; ++I)
      FloatScalars.push_back(
          M.createGlobal(formatString("f%u", I), TypeKind::Float));
    Arr = M.createGlobal("arr", TypeKind::Int, Opts.ArrayElems);
    for (unsigned I = 0; I < Opts.Pointers; ++I)
      Pointers.push_back(
          M.createGlobal(formatString("p%u", I), TypeKind::Int));

    // Optional helper function exercising the call barrier.
    Helper = B.startFunction("helper");
    Symbol *HArg = M.createLocal(Helper, "x", TypeKind::Int, 1,
                                 /*IsFormal=*/true);
    {
      unsigned TX = B.emitLoad(directRef(HArg));
      unsigned TG = B.emitLoad(directRef(IntScalars[0]));
      unsigned TS = B.emitAssign(Opcode::Add, Operand::temp(TX),
                                 Operand::temp(TG));
      B.emitStore(directRef(IntScalars[1]), Operand::temp(TS));
      B.setRet(Operand::temp(TS));
    }

    B.startFunction("main");
    // Seed every pointer (so dereferences always land somewhere).
    for (Symbol *P : Pointers)
      retargetPointer(P);
    IntTemps.push_back(B.emitAssign(Opcode::Copy, Operand::constInt(1)));
    FloatTemps.push_back(
        B.emitAssign(Opcode::Copy, Operand::constFloat(1.0)));

    genStatements(Opts.MinStmts + Rng.nextBelow(Opts.ExtraStmts),
                  /*IfDepth=*/0, /*LoopDepth=*/0);

    // Observability tail: print every scalar.
    for (Symbol *G : IntScalars) {
      unsigned T = B.emitLoad(directRef(G));
      B.emitPrint(Operand::temp(T));
    }
    for (Symbol *F : FloatScalars) {
      unsigned T = B.emitLoad(directRef(F));
      B.emitPrint(Operand::temp(T));
    }
    for (unsigned I = 0; I < Opts.ArrayElems; I += 5) {
      unsigned T = B.emitLoad(arrayRef(Arr, ir::Operand::constInt(I)));
      B.emitPrint(Operand::temp(T));
    }
    B.setRet();
  }

private:
  ir::Operand randomIntOperand() {
    if (!IntTemps.empty() && Rng.nextBool(0.7))
      return ir::Operand::temp(
          IntTemps[Rng.nextBelow(IntTemps.size())]);
    return ir::Operand::constInt(Rng.nextInRange(-20, 20));
  }

  ir::Operand randomFloatOperand() {
    if (!FloatTemps.empty() && Rng.nextBool(0.7))
      return ir::Operand::temp(
          FloatTemps[Rng.nextBelow(FloatTemps.size())]);
    return ir::Operand::constFloat(
        static_cast<double>(Rng.nextInRange(-8, 8)) * 0.5);
  }

  /// A random memory reference over the int universe.
  ir::MemRef randomIntRef() {
    using namespace ir;
    switch (Rng.nextBelow(5)) {
    case 0:
      return directRef(IntScalars[Rng.nextBelow(IntScalars.size())]);
    case 1:
      return arrayRef(Arr, Operand::constInt(Rng.nextBelow(Opts.ArrayElems)));
    case 2: {
      // Masked dynamic index.
      unsigned TIdx = B.emitAssign(Opcode::And, randomIntOperand(),
                                   Operand::constInt(Opts.ArrayElems - 1));
      return arrayRef(Arr, Operand::temp(TIdx));
    }
    default:
      return indirectRef(Pointers[Rng.nextBelow(Pointers.size())],
                         TypeKind::Int);
    }
  }

  void retargetPointer(ir::Symbol *P) {
    using namespace ir;
    unsigned TAddr;
    if (Rng.nextBool(0.7)) {
      TAddr =
          B.emitAddrOf(IntScalars[Rng.nextBelow(IntScalars.size())]);
    } else {
      TAddr = B.emitAddrOf(Arr,
                           Operand::constInt(Rng.nextBelow(Opts.ArrayElems)));
    }
    B.emitStore(directRef(P), Operand::temp(TAddr));
  }

  void genStatements(uint64_t Count, unsigned IfDepth, unsigned LoopDepth) {
    for (uint64_t I = 0; I < Count; ++I)
      genStatement(IfDepth, LoopDepth);
  }

  void genStatement(unsigned IfDepth, unsigned LoopDepth) {
    using namespace ir;
    switch (Rng.nextBelow(12)) {
    case 0: { // int arithmetic
      static const Opcode Ops[] = {Opcode::Add, Opcode::Sub, Opcode::Mul,
                                   Opcode::And, Opcode::Xor,
                                   Opcode::CmpLt};
      IntTemps.push_back(B.emitAssign(Ops[Rng.nextBelow(6)],
                                      randomIntOperand(),
                                      randomIntOperand()));
      break;
    }
    case 1: { // float arithmetic
      static const Opcode Ops[] = {Opcode::FAdd, Opcode::FSub,
                                   Opcode::FMul};
      FloatTemps.push_back(B.emitAssign(Ops[Rng.nextBelow(3)],
                                        randomFloatOperand(),
                                        randomFloatOperand()));
      break;
    }
    case 2: // int load
    case 3:
      IntTemps.push_back(B.emitLoad(randomIntRef()));
      break;
    case 4: // float scalar traffic
      if (Rng.nextBool(0.5))
        FloatTemps.push_back(B.emitLoad(directRef(
            FloatScalars[Rng.nextBelow(FloatScalars.size())])));
      else
        B.emitStore(directRef(FloatScalars[Rng.nextBelow(
                        FloatScalars.size())]),
                    randomFloatOperand());
      break;
    case 5: // int store
    case 6:
      B.emitStore(randomIntRef(), randomIntOperand());
      break;
    case 7: // pointer retarget
      retargetPointer(Pointers[Rng.nextBelow(Pointers.size())]);
      break;
    case 8: // call (or plain load when the shape disables calls)
      if (Opts.UseHelperCalls)
        IntTemps.push_back(B.emitCall(Helper, {randomIntOperand()}));
      else
        IntTemps.push_back(B.emitLoad(randomIntRef()));
      break;
    case 9: { // if
      if (IfDepth >= Opts.MaxIfDepth) {
        genStatement(IfDepth, LoopDepth); // too deep: substitute
        break;
      }
      unsigned TCond = B.emitAssign(Opcode::And, randomIntOperand(),
                                    Operand::constInt(1));
      BasicBlock *Then = B.createBlock(formatString("then%u", Counter));
      BasicBlock *Else = B.createBlock(formatString("else%u", Counter));
      BasicBlock *Join = B.createBlock(formatString("join%u", Counter));
      ++Counter;
      B.setCondBr(Operand::temp(TCond), Then, Else);
      size_t SavedInt = IntTemps.size(), SavedFloat = FloatTemps.size();
      B.setBlock(Then);
      genStatements(1 + Rng.nextBelow(4), IfDepth + 1, LoopDepth);
      B.setBr(Join);
      // Temps defined inside a branch do not dominate the join.
      IntTemps.resize(SavedInt);
      FloatTemps.resize(SavedFloat);
      B.setBlock(Else);
      genStatements(1 + Rng.nextBelow(3), IfDepth + 1, LoopDepth);
      B.setBr(Join);
      IntTemps.resize(SavedInt);
      FloatTemps.resize(SavedFloat);
      B.setBlock(Join);
      break;
    }
    case 10: { // bounded loop
      if (LoopDepth >= Opts.MaxLoopDepth) {
        genStatement(IfDepth, LoopDepth);
        break;
      }
      ir::Symbol *IVar = M.createGlobal(
          formatString("li%u", Counter), TypeKind::Int);
      BasicBlock *Hdr = B.createBlock(formatString("lh%u", Counter));
      BasicBlock *Body = B.createBlock(formatString("lb%u", Counter));
      BasicBlock *Exit = B.createBlock(formatString("lx%u", Counter));
      ++Counter;
      int64_t Trips = 3 + static_cast<int64_t>(Rng.nextBelow(6));
      B.emitStore(directRef(IVar), Operand::constInt(0));
      B.setBr(Hdr);
      B.setBlock(Hdr);
      unsigned TI = B.emitLoad(directRef(IVar));
      unsigned TC = B.emitAssign(Opcode::CmpLt, Operand::temp(TI),
                                 Operand::constInt(Trips));
      B.setCondBr(Operand::temp(TC), Body, Exit);
      size_t SavedInt = IntTemps.size(), SavedFloat = FloatTemps.size();
      B.setBlock(Body);
      IntTemps.push_back(TI);
      genStatements(2 + Rng.nextBelow(5), IfDepth, LoopDepth + 1);
      unsigned TI2 = B.emitLoad(directRef(IVar));
      unsigned TInc = B.emitAssign(Opcode::Add, Operand::temp(TI2),
                                   Operand::constInt(1));
      B.emitStore(directRef(IVar), Operand::temp(TInc));
      B.setBr(Hdr);
      IntTemps.resize(SavedInt);
      FloatTemps.resize(SavedFloat);
      B.setBlock(Exit);
      break;
    }
    default: // print something
      if (Rng.nextBool(0.5) && !IntTemps.empty())
        B.emitPrint(
            Operand::temp(IntTemps[Rng.nextBelow(IntTemps.size())]));
      else if (!FloatTemps.empty())
        B.emitPrint(Operand::temp(
            FloatTemps[Rng.nextBelow(FloatTemps.size())]));
      break;
    }
  }

  ir::Module &M;
  ir::IRBuilder B;
  RNG Rng;
  GenOptions Opts;
  std::vector<ir::Symbol *> IntScalars, FloatScalars, Pointers;
  ir::Symbol *Arr = nullptr;
  ir::Function *Helper = nullptr;
  std::vector<unsigned> IntTemps, FloatTemps;
  unsigned Counter = 0;
};

/// Builds a random, terminating, verifier-clean program from \p Seed
/// with the default shape (the historic test-suite generator).
inline void buildRandomProgram(ir::Module &M, uint64_t Seed) {
  RandomProgramBuilder(M, Seed).build();
}

/// Builds a program from an explicit (shape, program seed) pair.
inline void buildRandomProgram(ir::Module &M, uint64_t Seed,
                               const GenOptions &Opts) {
  RandomProgramBuilder(M, Seed, Opts).build();
}

} // namespace srp::fuzz

#endif // SRP_FUZZ_RANDOMPROGRAM_H
