//===- Fuzzer.h - Coverage-guided differential fuzzing loop -----*- C++ -*-===//
//
// Part of the srp-alat project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fuzzing loop behind tools/srp-fuzz. Each iteration is one
/// *replayable triple*:
///
///   (ShapeSeed:ProgSeed, ConfigIndex, FaultSeed)
///
/// ShapeSeed derives the generator's shape (GenOptions::fromSeed),
/// ProgSeed drives the generator itself, ConfigIndex picks a promotion
/// strategy from fuzzConfigs(), and FaultSeed derives the ALAT fault
/// schedules the compiled binary is re-simulated under. Every random
/// decision is a pure function of these seeds, so a finding's triple —
/// printed on failure and replayable with `srp-fuzz --replay` — is a
/// complete repro, independent of thread count and corpus history.
///
/// Guidance: runs whose oracle features (Coverage.h) were new push their
/// ShapeSeed into a corpus; later iterations re-fuzz corpus shapes with
/// fresh program seeds. Batches execute on core::parallelFor and results
/// are folded in input order, keeping coverage, corpus, and findings
/// deterministic for a given (Seed, Iterations, config set).
///
//===----------------------------------------------------------------------===//

#ifndef SRP_FUZZ_FUZZER_H
#define SRP_FUZZ_FUZZER_H

#include "valid/DiffOracle.h"

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace srp::fuzz {

struct FuzzOptions {
  uint64_t Iterations = 1000; ///< Oracle runs (0: until Seconds expires).
  uint64_t Seconds = 0;       ///< Wall-clock budget (0: no limit).
  unsigned Threads = 1;
  uint64_t Seed = 1;          ///< Master seed for the whole campaign.
  bool WithFaults = true;     ///< Derive fault schedules per iteration.
  unsigned FaultPlansPerProgram = 2;
  /// Label a deterministic subset of each generated program's globals
  /// `secret` (a pure function of the iteration's seeds), turning every
  /// oracle run into a static-vs-dynamic taint cross-check: a program the
  /// TaintFlow analysis passes but whose shadow interpretation leaks is a
  /// TaintDisagree finding (an analysis soundness bug).
  bool Taint = false;
  bool Minimize = true;       ///< Delta-debug findings before reporting.
  std::string ReproDir;       ///< Write minimized .sir repros here ("": off).
  size_t MaxFindings = 10;    ///< Stop collecting (not running) past this.
  std::function<void(const std::string &)> Log; ///< Progress sink (may be
                                                ///< null; called from the
                                                ///< coordinator thread).
};

/// One oracle disagreement, with everything needed to reproduce it.
struct Finding {
  valid::MismatchKind Kind = valid::MismatchKind::None;
  std::string Detail;
  std::string FaultContext;
  uint64_t ShapeSeed = 0;
  uint64_t ProgSeed = 0;
  unsigned ConfigIndex = 0;
  std::string ConfigName;
  uint64_t FaultSeed = 0; ///< 0: no faults in this run.
  std::string ModuleText; ///< Minimized when FuzzOptions::Minimize.
  unsigned Statements = 0;
  std::string ReproPath; ///< File written under ReproDir, if any.

  /// The triple as `--replay` accepts it: SHAPE:PROG:CFG:FAULT.
  std::string replayArg() const;
};

struct FuzzResult {
  uint64_t ProgramsRun = 0;
  uint64_t FaultRuns = 0;
  uint64_t NewCoverageEvents = 0; ///< Iterations that found new features.
  size_t CoverageFeatures = 0;    ///< Distinct features at exit.
  std::vector<Finding> Findings;
};

/// The strategy sweep the fuzzer cycles through: every promotion family
/// (conservative, software-checked baseline, ALAT with and without
/// cascade/st.a/at-reuse) plus a capacity-starved ALAT geometry.
struct FuzzConfig {
  std::string Name;
  core::PipelineConfig Config;
};
const std::vector<FuzzConfig> &fuzzConfigs();

/// Runs the campaign.
FuzzResult runFuzzer(const FuzzOptions &Opts);

/// Re-runs one triple exactly as the campaign would have. Pass the same
/// \p Taint the campaign ran with — secret labels are part of the
/// program, so a --taint finding replays only under --taint.
valid::OracleReport replayTriple(uint64_t ShapeSeed, uint64_t ProgSeed,
                                 unsigned ConfigIndex, uint64_t FaultSeed,
                                 unsigned FaultPlansPerProgram = 2,
                                 bool Taint = false);

/// Parses "SHAPE:PROG:CFG:FAULT" (decimal or 0x hex). Returns false on
/// malformed input.
bool parseReplayArg(const std::string &Arg, uint64_t &ShapeSeed,
                    uint64_t &ProgSeed, unsigned &ConfigIndex,
                    uint64_t &FaultSeed);

/// The generated program of a (shape, prog) pair, as .sir text (with the
/// deterministic secret labels when \p Taint is set — the printer
/// round-trips them, so repro files reproduce taint findings).
std::string generatedProgramText(uint64_t ShapeSeed, uint64_t ProgSeed,
                                 bool Taint = false);

/// Marks a deterministic subset of \p M's globals secret (each with
/// probability 1/4, at least one when any global exists), as a pure
/// function of \p Seed. The fuzzer's --taint mode applies this to every
/// generated program.
void labelRandomSecrets(ir::Module &M, uint64_t Seed);

} // namespace srp::fuzz

#endif // SRP_FUZZ_FUZZER_H
