//===- Coverage.cpp - Feedback signal for the generative fuzzer --------------===//

#include "fuzz/Coverage.h"

using namespace srp;
using namespace srp::fuzz;

namespace {

/// log2-ish magnitude bucket: 0 for 0, else 1 + floor(log2(V)), capped
/// so the feature space stays small and saturating counters don't mint
/// endless "new" features.
unsigned bucketOf(uint64_t V) {
  unsigned B = 0;
  while (V) {
    ++B;
    V >>= 1;
    if (B >= 16)
      break;
  }
  return B;
}

} // namespace

std::vector<uint64_t> srp::fuzz::extractFeatures(const valid::OracleReport &R,
                                                 unsigned ConfigIndex) {
  const uint64_t Counters[] = {
      R.Promotion.PromotedExprs,
      R.Promotion.LoadsRemovedDirect,
      R.Promotion.LoadsRemovedIndirect,
      R.Promotion.AdvancedLoads,
      R.Promotion.InsertedLoads,
      R.Promotion.ChecksInserted,
      R.Promotion.CascadeChecks,
      R.Promotion.InvalaInserted,
      R.Promotion.InvalaModeLoads,
      R.Promotion.SoftwareChecks,
      R.Promotion.StAStores,
      R.Promotion.ChecksRemovedByCleanup,
      R.Alat.Allocations,
      R.Alat.Invalidations,
      R.Alat.FalseInvalidations,
      R.Alat.CapacityEvictions,
      R.Alat.CheckHits,
      R.Alat.CheckMisses,
      R.SpeculativeAccesses,
  };
  std::vector<uint64_t> Features;
  Features.reserve(std::size(Counters));
  for (size_t I = 0; I < std::size(Counters); ++I)
    Features.push_back(static_cast<uint64_t>(ConfigIndex) * 4096 + I * 64 +
                       bucketOf(Counters[I]));
  return Features;
}
