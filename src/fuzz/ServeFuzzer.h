//===- ServeFuzzer.h - Serve protocol decoder fuzzing -----------*- C++ -*-===//
//
// Part of the srp-alat project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `srp-fuzz --serve` campaign: fuzzes the NDJSON protocol stack
/// behind srp-serve (core::LineSplitter + core::ServerCore) with
/// seed-derived byte streams — mutated valid requests, truncated frames,
/// interleaved pipelined requests, garbage bytes — and checks the
/// serving contract on every input:
///
///   * framing is chunking-independent: splitting the same bytes at
///     arbitrary read(2) boundaries yields the identical frame sequence
///     and oversized-drop count (differential LineSplitter check);
///   * the server is total: every frame gets exactly one response, the
///     response parses as a JSON object of the documented shape, its
///     result.status is 0, 1 or 2, ok == (status == 0), and a request
///     id (when the request carried a parseable one) is echoed;
///   * repeat determinism: feeding the whole input a second time to a
///     fresh server yields byte-identical responses.
///
/// Every input is a pure function of its iteration seed, so a finding
/// replays with `srp-fuzz --serve --replay-serve=SEED`. Findings are
/// byte-minimized (greedy chunk removal preserving the violation) and
/// written under the repro directory as serve-<seed>.in.
///
//===----------------------------------------------------------------------===//

#ifndef SRP_FUZZ_SERVEFUZZER_H
#define SRP_FUZZ_SERVEFUZZER_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace srp::fuzz {

struct ServeFuzzOptions {
  uint64_t Iterations = 1000;
  unsigned Threads = 1;
  uint64_t Seed = 1; ///< Campaign seed; iteration seeds derive from it.
  bool Minimize = true;
  std::string ReproDir;    ///< Write minimized inputs here ("": off).
  size_t MaxFindings = 10; ///< Stop collecting (not running) past this.
  std::function<void(const std::string &)> Log;
};

/// One serving-contract violation, with everything needed to reproduce.
struct ServeFinding {
  std::string Detail;   ///< Which invariant broke, and how.
  uint64_t Seed = 0;    ///< Iteration seed (replays the original input).
  std::string Input;    ///< Offending bytes (minimized when enabled).
  std::string ReproPath;

  /// The argument `--replay-serve` accepts.
  std::string replayArg() const;
};

struct ServeFuzzResult {
  uint64_t Iterations = 0;
  std::vector<ServeFinding> Findings;
};

/// The deterministic input stream of one iteration seed.
std::string serveInputFromSeed(uint64_t Seed);

/// Runs the serving contract over \p Input. Returns false with \p Detail
/// set on the first violation. This is the fuzzing oracle; tests call it
/// directly on regression inputs.
bool checkServeInput(const std::string &Input, std::string &Detail);

/// Runs a campaign. Deterministic for a given (Seed, Iterations).
ServeFuzzResult runServeFuzz(const ServeFuzzOptions &Options);

} // namespace srp::fuzz

#endif // SRP_FUZZ_SERVEFUZZER_H
