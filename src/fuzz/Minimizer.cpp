//===- Minimizer.cpp - Delta-debugging reducer for .sir repros ---------------===//

#include "fuzz/Minimizer.h"

#include <string_view>
#include <vector>

using namespace srp;
using namespace srp::fuzz;

namespace {

std::string_view trimmed(std::string_view Line) {
  while (!Line.empty() && (Line.front() == ' ' || Line.front() == '\t'))
    Line.remove_prefix(1);
  while (!Line.empty() &&
         (Line.back() == ' ' || Line.back() == '\t' || Line.back() == '\r'))
    Line.remove_suffix(1);
  return Line;
}

/// True for lines the minimizer may delete outright: ordinary statements.
/// Structure (globals, function headers, locals, labels, terminators,
/// braces) must stay so candidates remain parseable without the
/// minimizer understanding control flow.
bool isStatementLine(std::string_view Line) {
  std::string_view T = trimmed(Line);
  if (T.empty() || T.front() == '#')
    return false;
  if (T.starts_with("global ") || T.starts_with("func ") ||
      T.starts_with("local ") || T.front() == '}')
    return false;
  if (T.back() == ':')
    return false;
  if (T.starts_with("br ") || T == "br" || T.starts_with("condbr ") ||
      T == "ret" || T.starts_with("ret "))
    return false;
  return true;
}

std::vector<std::string> splitLines(const std::string &Text) {
  std::vector<std::string> Lines;
  size_t Pos = 0;
  while (Pos <= Text.size()) {
    size_t Nl = Text.find('\n', Pos);
    if (Nl == std::string::npos) {
      if (Pos < Text.size())
        Lines.push_back(Text.substr(Pos));
      break;
    }
    Lines.push_back(Text.substr(Pos, Nl - Pos));
    Pos = Nl + 1;
  }
  return Lines;
}

std::string joinLines(const std::vector<std::string> &Lines) {
  std::string Text;
  for (const std::string &L : Lines) {
    Text += L;
    Text += '\n';
  }
  return Text;
}

std::vector<size_t> statementIndices(const std::vector<std::string> &Lines) {
  std::vector<size_t> Idx;
  for (size_t I = 0; I < Lines.size(); ++I)
    if (isStatementLine(Lines[I]))
      Idx.push_back(I);
  return Idx;
}

/// One ddmin sweep: removes chunks of statement lines, halving the chunk
/// size down to 1. Returns true if anything was removed.
bool removeStatements(std::vector<std::string> &Lines,
                      const FailPredicate &StillFails) {
  bool Changed = false;
  std::vector<size_t> Idx = statementIndices(Lines);
  size_t Chunk = std::max<size_t>(1, Idx.size() / 2);
  for (;;) {
    bool RemovedAtThisSize = false;
    size_t Start = 0;
    while (Start < Idx.size()) {
      size_t End = std::min(Start + Chunk, Idx.size());
      std::vector<std::string> Candidate;
      Candidate.reserve(Lines.size());
      size_t Next = Start;
      for (size_t I = 0; I < Lines.size(); ++I) {
        if (Next < End && I == Idx[Next])
          ++Next; // drop this statement line
        else
          Candidate.push_back(Lines[I]);
      }
      if (StillFails(joinLines(Candidate))) {
        Lines = std::move(Candidate);
        Idx = statementIndices(Lines);
        Changed = RemovedAtThisSize = true;
        // Same Start now addresses the next unexamined chunk.
      } else {
        Start += Chunk;
      }
    }
    if (Chunk == 1) {
      if (!RemovedAtThisSize)
        break;
      continue; // one more singleton sweep until a clean pass
    }
    Chunk = (Chunk + 1) / 2;
  }
  return Changed;
}

/// Tries rewriting each `condbr c, A, B` to `br A` / `br B`.
bool simplifyBranches(std::vector<std::string> &Lines,
                      const FailPredicate &StillFails) {
  bool Changed = false;
  for (size_t I = 0; I < Lines.size(); ++I) {
    std::string_view T = trimmed(Lines[I]);
    if (!T.starts_with("condbr "))
      continue;
    // condbr OPERAND, LABEL, LABEL
    size_t C1 = T.find(',');
    if (C1 == std::string_view::npos)
      continue;
    size_t C2 = T.find(',', C1 + 1);
    if (C2 == std::string_view::npos)
      continue;
    std::string Indent(Lines[I], 0, Lines[I].find_first_not_of(" \t"));
    std::string TargetA(trimmed(T.substr(C1 + 1, C2 - C1 - 1)));
    std::string TargetB(trimmed(T.substr(C2 + 1)));
    for (const std::string &Target : {TargetA, TargetB}) {
      std::string Saved = Lines[I];
      Lines[I] = Indent + "br " + Target;
      if (StillFails(joinLines(Lines))) {
        Changed = true;
        break;
      }
      Lines[I] = std::move(Saved);
    }
  }
  return Changed;
}

} // namespace

std::string srp::fuzz::minimizeModuleText(const std::string &Text,
                                          const FailPredicate &StillFails,
                                          const MinimizeOptions &Opts) {
  if (!StillFails(Text))
    return Text;
  std::vector<std::string> Lines = splitLines(Text);
  for (unsigned Round = 0; Round < Opts.MaxRounds; ++Round) {
    bool Changed = removeStatements(Lines, StillFails);
    Changed |= simplifyBranches(Lines, StillFails);
    if (!Changed)
      break;
  }
  return joinLines(Lines);
}

unsigned srp::fuzz::countStatements(const std::string &Text) {
  unsigned N = 0;
  for (const std::string &L : splitLines(Text))
    N += isStatementLine(L) ? 1 : 0;
  return N;
}
