//===- Coverage.h - Feedback signal for the generative fuzzer ---*- C++ -*-===//
//
// Part of the srp-alat project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Coverage for a *generative* fuzzer. There is no instrumented binary to
/// collect edges from; what distinguishes interesting inputs here is what
/// the compiler and the machine model did with them. Each oracle run is
/// summarized as a set of features: one per (config, counter,
/// log2-bucket) triple over the promotion statistics, the ALAT
/// statistics, and the oracle's own speculation counters. A program that
/// first reaches "8+ cascade checks under alat+cascade" or "first false
/// ALAT invalidation under tiny-alat" contributes new features and earns
/// a place in the corpus; shapes drawn from the corpus then bias future
/// generation toward the behaviours that were hard to reach.
///
//===----------------------------------------------------------------------===//

#ifndef SRP_FUZZ_COVERAGE_H
#define SRP_FUZZ_COVERAGE_H

#include "valid/DiffOracle.h"

#include <cstdint>
#include <unordered_set>
#include <vector>

namespace srp::fuzz {

/// Extracts the feature set of one oracle run. \p ConfigIndex salts the
/// features so the same behaviour under a different strategy counts as
/// new coverage (strategies take different code paths in the promoter).
std::vector<uint64_t> extractFeatures(const valid::OracleReport &R,
                                      unsigned ConfigIndex);

/// The fuzzer's global seen-feature set.
class CoverageMap {
public:
  /// Merges \p Features; returns how many were previously unseen.
  size_t addAll(const std::vector<uint64_t> &Features) {
    size_t Fresh = 0;
    for (uint64_t F : Features)
      Fresh += Seen.insert(F).second ? 1 : 0;
    return Fresh;
  }

  size_t size() const { return Seen.size(); }

private:
  std::unordered_set<uint64_t> Seen;
};

} // namespace srp::fuzz

#endif // SRP_FUZZ_COVERAGE_H
