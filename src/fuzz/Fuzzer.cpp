//===- Fuzzer.cpp - Coverage-guided differential fuzzing loop ----------------===//

#include "fuzz/Fuzzer.h"

#include "core/Experiment.h"
#include "fuzz/Coverage.h"
#include "fuzz/Minimizer.h"
#include "fuzz/RandomProgram.h"
#include "ir/Printer.h"
#include "support/RNG.h"
#include "support/StringUtils.h"

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>

using namespace srp;
using namespace srp::fuzz;

std::string Finding::replayArg() const {
  return formatString("%llu:%llu:%u:%llu",
                      static_cast<unsigned long long>(ShapeSeed),
                      static_cast<unsigned long long>(ProgSeed), ConfigIndex,
                      static_cast<unsigned long long>(FaultSeed));
}

const std::vector<FuzzConfig> &srp::fuzz::fuzzConfigs() {
  static const std::vector<FuzzConfig> Configs = [] {
    auto Make = [](std::string Name, pre::PromotionConfig P) {
      FuzzConfig C;
      C.Name = std::move(Name);
      C.Config = core::configFor(P);
      // Static discipline violations must surface as pipeline errors.
      C.Config.SpecVerify = core::SpecVerifyMode::Fatal;
      // Generated programs terminate within a few thousand steps (loop
      // trips are 3-8, nesting <= 2); a tight budget makes minimizer-created
      // infinite loops fail fast instead of burning the default 400M-step
      // allowance on every delta-debugging predicate call.
      C.Config.InterpFuel = 200'000;
      C.Config.Sim.MaxInstructions = 200'000;
      return C;
    };
    pre::PromotionConfig Cascade = pre::PromotionConfig::alat();
    Cascade.EnableCascade = true;
    pre::PromotionConfig StA = pre::PromotionConfig::alat();
    StA.UseStA = true;
    pre::PromotionConfig AtReuse = pre::PromotionConfig::alat();
    AtReuse.ChecksAtReuse = true;
    AtReuse.EnableCascade = true;
    pre::PromotionConfig SwInt = pre::PromotionConfig::baselineO3();
    SwInt.SoftwareCheckIntExprs = true;
    SwInt.SoftwareMaxChecks = 4;

    std::vector<FuzzConfig> V;
    V.push_back(Make("conservative", pre::PromotionConfig::conservative()));
    V.push_back(Make("baselineO3", pre::PromotionConfig::baselineO3()));
    V.push_back(Make("baselineO3+intfwd", SwInt));
    V.push_back(Make("alat", pre::PromotionConfig::alat()));
    V.push_back(Make("alat+cascade", Cascade));
    V.push_back(Make("alat+sta", StA));
    V.push_back(Make("alat+at-reuse", AtReuse));
    // Capacity-starved geometry: every eviction path gets exercised.
    FuzzConfig Tiny = Make("alat+cascade-tiny4", Cascade);
    Tiny.Config.Sim.Alat.Entries = 4;
    Tiny.Config.Sim.Alat.Ways = 2;
    V.push_back(std::move(Tiny));
    return V;
  }();
  return Configs;
}

namespace {

/// Fault schedules of one iteration: FaultPlansPerProgram consecutive
/// derivations from the iteration's fault seed.
std::vector<arch::FaultPlan> plansFor(uint64_t FaultSeed, unsigned Count) {
  std::vector<arch::FaultPlan> Plans;
  if (FaultSeed == 0)
    return Plans;
  for (unsigned K = 0; K < Count; ++K)
    Plans.push_back(arch::FaultPlan::fromSeed(FaultSeed + K));
  return Plans;
}

valid::OracleOptions optionsFor(unsigned ConfigIndex, uint64_t FaultSeed,
                                unsigned FaultPlansPerProgram) {
  valid::OracleOptions Opts;
  Opts.Config = fuzzConfigs()[ConfigIndex % fuzzConfigs().size()].Config;
  Opts.FaultPlans = plansFor(FaultSeed, FaultPlansPerProgram);
  return Opts;
}

valid::ModuleBuilder builderFor(uint64_t ShapeSeed, uint64_t ProgSeed,
                                bool Taint) {
  return [ShapeSeed, ProgSeed, Taint](ir::Module &M) {
    buildRandomProgram(M, ProgSeed, GenOptions::fromSeed(ShapeSeed));
    if (Taint)
      labelRandomSecrets(M, ShapeSeed ^ (ProgSeed * 0x9e3779b97f4a7c15ULL));
  };
}

struct Job {
  uint64_t ShapeSeed = 0;
  uint64_t ProgSeed = 0;
  unsigned ConfigIndex = 0;
  uint64_t FaultSeed = 0;
};

} // namespace

void srp::fuzz::labelRandomSecrets(ir::Module &M, uint64_t Seed) {
  RNG R(Seed | 1);
  bool Any = false;
  for (ir::Symbol *Sym : M.globals()) {
    Sym->Secret = R.nextBool(0.25);
    Any |= Sym->Secret;
  }
  if (!Any && !M.globals().empty())
    M.globals().front()->Secret = true;
}

std::string srp::fuzz::generatedProgramText(uint64_t ShapeSeed,
                                            uint64_t ProgSeed, bool Taint) {
  ir::Module M;
  builderFor(ShapeSeed, ProgSeed, Taint)(M);
  return ir::moduleToString(M);
}

valid::OracleReport srp::fuzz::replayTriple(uint64_t ShapeSeed,
                                            uint64_t ProgSeed,
                                            unsigned ConfigIndex,
                                            uint64_t FaultSeed,
                                            unsigned FaultPlansPerProgram,
                                            bool Taint) {
  return valid::runDiffOracle(
      builderFor(ShapeSeed, ProgSeed, Taint),
      optionsFor(ConfigIndex, FaultSeed, FaultPlansPerProgram));
}

bool srp::fuzz::parseReplayArg(const std::string &Arg, uint64_t &ShapeSeed,
                               uint64_t &ProgSeed, unsigned &ConfigIndex,
                               uint64_t &FaultSeed) {
  uint64_t Parts[4] = {0, 0, 0, 0};
  size_t Pos = 0;
  for (int I = 0; I < 4; ++I) {
    size_t Colon = I == 3 ? Arg.size() : Arg.find(':', Pos);
    if (Colon == std::string::npos)
      return false;
    std::string Piece = Arg.substr(Pos, Colon - Pos);
    if (Piece.empty())
      return false;
    char *End = nullptr;
    Parts[I] = std::strtoull(Piece.c_str(), &End, 0);
    if (End == nullptr || *End != '\0')
      return false;
    Pos = Colon + 1;
  }
  ShapeSeed = Parts[0];
  ProgSeed = Parts[1];
  if (Parts[2] >= fuzzConfigs().size())
    return false;
  ConfigIndex = static_cast<unsigned>(Parts[2]);
  FaultSeed = Parts[3];
  return true;
}

FuzzResult srp::fuzz::runFuzzer(const FuzzOptions &Opts) {
  using Clock = std::chrono::steady_clock;
  const Clock::time_point Start = Clock::now();
  auto Elapsed = [&Start] {
    return std::chrono::duration_cast<std::chrono::seconds>(Clock::now() -
                                                            Start)
        .count();
  };
  auto LogLine = [&Opts](const std::string &Line) {
    if (Opts.Log)
      Opts.Log(Line);
  };

  FuzzResult Result;
  CoverageMap Coverage;
  std::vector<uint64_t> Corpus;
  RNG Master(Opts.Seed ? Opts.Seed : 1);
  const size_t NumConfigs = fuzzConfigs().size();
  const size_t BatchSize = std::max<size_t>(32, size_t(Opts.Threads) * 8);

  while (true) {
    if (Opts.Iterations && Result.ProgramsRun >= Opts.Iterations)
      break;
    if (Opts.Seconds &&
        static_cast<uint64_t>(Elapsed()) >= Opts.Seconds)
      break;
    if (!Opts.Iterations && !Opts.Seconds)
      break; // no budget at all: nothing to do

    size_t B = BatchSize;
    if (Opts.Iterations)
      B = std::min<size_t>(B, Opts.Iterations - Result.ProgramsRun);

    // Draw the batch sequentially from the master RNG and the current
    // corpus, so the schedule is a pure function of the seed.
    std::vector<Job> Jobs(B);
    for (Job &J : Jobs) {
      bool FromCorpus = !Corpus.empty() && Master.nextBool(0.5);
      J.ShapeSeed =
          FromCorpus ? Corpus[Master.nextBelow(Corpus.size())] : Master.next();
      J.ProgSeed = Master.next();
      J.ConfigIndex = static_cast<unsigned>(Master.nextBelow(NumConfigs));
      J.FaultSeed = Opts.WithFaults ? (Master.next() | 1) : 0;
    }

    std::vector<valid::OracleReport> Reports(B);
    core::parallelFor(Opts.Threads, B, [&Jobs, &Reports, &Opts](size_t I) {
      const Job &J = Jobs[I];
      Reports[I] = valid::runDiffOracle(
          builderFor(J.ShapeSeed, J.ProgSeed, Opts.Taint),
          optionsFor(J.ConfigIndex, J.FaultSeed,
                     Opts.FaultPlansPerProgram));
    });

    // Fold in input order: coverage, corpus, findings all deterministic.
    for (size_t I = 0; I < B; ++I) {
      const Job &J = Jobs[I];
      const valid::OracleReport &R = Reports[I];
      ++Result.ProgramsRun;
      Result.FaultRuns += R.FaultPlansRun;
      size_t Fresh = Coverage.addAll(extractFeatures(R, J.ConfigIndex));
      if (Fresh) {
        ++Result.NewCoverageEvents;
        Corpus.push_back(J.ShapeSeed);
      }
      if (R.Ok || Result.Findings.size() >= Opts.MaxFindings)
        continue;

      Finding F;
      F.Kind = R.Kind;
      F.Detail = R.Detail;
      F.FaultContext = R.FaultContext;
      F.ShapeSeed = J.ShapeSeed;
      F.ProgSeed = J.ProgSeed;
      F.ConfigIndex = J.ConfigIndex;
      F.ConfigName = fuzzConfigs()[J.ConfigIndex].Name;
      F.FaultSeed = J.FaultSeed;
      F.ModuleText = generatedProgramText(J.ShapeSeed, J.ProgSeed, Opts.Taint);
      LogLine(formatString(
          "FINDING %s (%s) replay=%s", valid::mismatchKindName(F.Kind),
          F.Detail.c_str(), F.replayArg().c_str()));

      if (Opts.Minimize) {
        valid::OracleOptions OOpts = optionsFor(J.ConfigIndex, J.FaultSeed,
                                                Opts.FaultPlansPerProgram);
        valid::MismatchKind Kind = F.Kind;
        F.ModuleText = minimizeModuleText(
            F.ModuleText, [&OOpts, Kind](const std::string &Text) {
              valid::OracleReport RR = valid::runDiffOracleOnText(Text, OOpts);
              return !RR.Ok && RR.Kind == Kind;
            });
      }
      F.Statements = countStatements(F.ModuleText);

      if (!Opts.ReproDir.empty()) {
        std::error_code EC;
        std::filesystem::create_directories(Opts.ReproDir, EC);
        std::string Name = formatString(
            "%s-s%llu-p%llu-c%u-f%llu.sir", valid::mismatchKindName(F.Kind),
            static_cast<unsigned long long>(F.ShapeSeed),
            static_cast<unsigned long long>(F.ProgSeed), F.ConfigIndex,
            static_cast<unsigned long long>(F.FaultSeed));
        std::filesystem::path Path =
            std::filesystem::path(Opts.ReproDir) / Name;
        std::ofstream Out(Path);
        if (Out) {
          Out << "# srp-fuzz finding: " << valid::mismatchKindName(F.Kind)
              << "\n";
          Out << "# detail: " << F.Detail << "\n";
          if (!F.FaultContext.empty())
            Out << "# fault: " << F.FaultContext << "\n";
          Out << "# config: " << F.ConfigName << "\n";
          Out << "# replay: srp-fuzz --replay=" << F.replayArg() << "\n";
          Out << F.ModuleText;
          F.ReproPath = Path.string();
        }
      }
      Result.Findings.push_back(std::move(F));
    }

    LogLine(formatString(
        "%llu programs, %llu fault runs, %zu features, corpus %zu, "
        "%zu findings (%llds elapsed)",
        static_cast<unsigned long long>(Result.ProgramsRun),
        static_cast<unsigned long long>(Result.FaultRuns), Coverage.size(),
        Corpus.size(), Result.Findings.size(),
        static_cast<long long>(Elapsed())));
  }

  Result.CoverageFeatures = Coverage.size();
  return Result;
}
