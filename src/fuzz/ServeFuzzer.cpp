//===- ServeFuzzer.cpp - Serve protocol decoder fuzzing ------------------------===//

#include "fuzz/ServeFuzzer.h"

#include "core/Experiment.h"
#include "core/Serve.h"
#include "ir/Parser.h"
#include "support/Hash.h"
#include "support/JSON.h"
#include "support/JSONReader.h"
#include "support/OStream.h"
#include "support/RNG.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cstdio>

#include <sys/stat.h>

using namespace srp;
using namespace srp::fuzz;

namespace {

/// The canned program valid frames carry: tiny (a handful of simulated
/// instructions) so a fuzz campaign's occasional real pipeline runs cost
/// microseconds, not milliseconds.
constexpr const char *TinyProgram = R"(global a : int
global i : int

func main() -> int {
entry:
  st a = 7
  t0 = ld a
  t1 = add t0, 35
  print t1
  ret t1
}
)";

/// The server every oracle run fuzzes: deliberately tight limits so
/// seed-derived inputs actually reach the oversized-frame, oversized-
/// program, and cache-eviction paths.
core::ServeOptions fuzzServeOptions() {
  core::ServeOptions O;
  O.Threads = 1;
  O.MaxLineBytes = 2048;
  O.MaxProgramBytes = 1024;
  O.MaxScale = 4;
  O.InterpFuel = 1'000'000;
  O.Cache.Shards = 4;
  O.Cache.ByteBudget = 64u << 10;
  core::Workload Tiny;
  Tiny.Name = "tiny";
  Tiny.Build = [](ir::Module &M, uint64_t) {
    std::string Error;
    bool Ok = ir::parseModule(TinyProgram, M, Error);
    (void)Ok;
  };
  Tiny.TrainScale = 1;
  Tiny.RefScale = 2;
  O.Workloads.push_back(std::move(Tiny));
  return O;
}

std::string jsonQuoted(std::string_view S) {
  std::string Out;
  StringOStream OS(Out);
  JSONWriter W(OS, /*Compact=*/true);
  W.value(S);
  return Out;
}

std::string validFrame(RNG &R) {
  switch (R.nextBelow(8)) {
  case 0:
    return "{\"id\":\"p\",\"op\":\"ping\"}";
  case 1:
    return "{\"op\":\"stats\"}";
  case 2:
    return formatString("{\"id\":\"w%llu\",\"op\":\"run\",\"workload\":"
                        "\"tiny\",\"config\":{\"strategy\":\"%s\"}}",
                        (unsigned long long)R.nextBelow(3),
                        R.nextBool(0.5) ? "alat" : "baseline");
  case 3:
    return "{\"op\":\"run\",\"workload\":\"tiny\",\"stats\":true}";
  case 4:
    return "{\"op\":\"run\",\"program\":" + jsonQuoted(TinyProgram) + "}";
  case 5:
    return "{\"op\":\"run\",\"workload\":\"no-such\"}";
  case 6:
    return formatString("{\"op\":\"run\",\"workload\":\"tiny\","
                        "\"train_scale\":%llu,\"ref_scale\":%llu}",
                        (unsigned long long)R.nextBelow(6),
                        (unsigned long long)R.nextBelow(6));
  default:
    return "{\"id\":\"s\",\"op\":\"shutdown\"}";
  }
}

std::string malformedFrame(RNG &R) {
  switch (R.nextBelow(8)) {
  case 0:
    return "{ not json at all";
  case 1:
    return "[1,2,3]";
  case 2:
    return "{\"op\":\"ping\",\"op\":\"ping\"}"; // duplicate key
  case 3:
    return std::string(R.nextBelow(120), '['); // deep nesting
  case 4:
    return "{\"op\":\"run\",\"workload\":\"tiny\",\"bogus\":null}";
  case 5:
    return "{\"id\":12,\"op\":\"ping\"}"; // non-string id
  case 6:
    return "{\"op\":\"run\",\"program\":\"global x :\"}"; // parse error
  default: {
    // An oversized frame: longer than the fuzz server's 2048-byte line
    // limit, exercising drop-and-resync.
    std::string Out = "{\"op\":\"ping\",\"pad\":\"";
    Out.append(2100 + R.nextBelow(400), 'x');
    return Out + "\"}";
  }
  }
}

std::string garbageBytes(RNG &R) {
  size_t N = 1 + R.nextBelow(160);
  std::string Out;
  Out.reserve(N);
  for (size_t I = 0; I < N; ++I)
    Out.push_back(static_cast<char>(R.nextBelow(256)));
  return Out;
}

} // namespace

std::string fuzz::serveInputFromSeed(uint64_t Seed) {
  RNG R(Seed * 0x9e3779b97f4a7c15ULL + 0x5e12e);
  std::string Out;
  unsigned Frames = 1 + static_cast<unsigned>(R.nextBelow(6));
  for (unsigned I = 0; I < Frames; ++I) {
    switch (R.nextBelow(4)) {
    case 0:
    case 1:
      Out += validFrame(R);
      break;
    case 2:
      Out += malformedFrame(R);
      break;
    default:
      Out += garbageBytes(R);
      break;
    }
    // Mostly terminated frames; an unterminated tail (truncated frame)
    // now and then.
    if (I + 1 < Frames || R.nextBool(0.85))
      Out += '\n';
  }
  // Whole-stream mutations: truncation, byte flips, garbage splices —
  // the raw-socket abuse the decoder must shrug off.
  if (!Out.empty() && R.nextBool(0.25))
    Out.resize(1 + R.nextBelow(Out.size()));
  if (!Out.empty() && R.nextBool(0.35))
    Out[R.nextBelow(Out.size())] = static_cast<char>(R.nextBelow(256));
  if (R.nextBool(0.2)) {
    std::string Splice = garbageBytes(R);
    Out.insert(R.nextBelow(Out.size() + 1), Splice);
  }
  return Out;
}

namespace {

/// Validates the documented response shape. Returns false with \p Detail
/// set when the frame violates it.
bool responseShapeOk(const std::string &Response, std::string &Detail) {
  JSONValue Doc;
  std::string Error;
  if (!parseJSON(Response, Doc, Error)) {
    Detail = "response is not valid JSON (" + Error + "): " + Response;
    return false;
  }
  if (!Doc.isObject()) {
    Detail = "response is not an object: " + Response;
    return false;
  }
  const JSONValue *Id = Doc.find("id");
  const JSONValue *Cached = Doc.find("cached");
  const JSONValue *Result = Doc.find("result");
  if (!Id || (!Id->isNull() && !Id->isString())) {
    Detail = "response id missing or not string/null: " + Response;
    return false;
  }
  if (!Cached || !Cached->isBool()) {
    Detail = "response cached missing or not bool: " + Response;
    return false;
  }
  if (!Result || !Result->isObject()) {
    Detail = "response result missing or not object: " + Response;
    return false;
  }
  for (const auto &[Name, Value] : Doc.members())
    if (Name != "id" && Name != "cached" && Name != "result" &&
        Name != "stats") {
      Detail = "unexpected response field '" + Name + "': " + Response;
      return false;
    }
  const JSONValue *Status = Result->find("status");
  const JSONValue *Ok = Result->find("ok");
  if (!Status || !Status->isUint() || Status->asUint() > 2) {
    Detail = "result.status missing or not in {0,1,2}: " + Response;
    return false;
  }
  if (!Ok || !Ok->isBool() || Ok->asBool() != (Status->asUint() == 0)) {
    Detail = "result.ok inconsistent with result.status: " + Response;
    return false;
  }
  if (Status->asUint() != 0) {
    const JSONValue *ErrorV = Result->find("error");
    if (!ErrorV || !ErrorV->isString()) {
      Detail = "failed result carries no error string: " + Response;
      return false;
    }
  }
  return true;
}

/// The id the server must echo for \p Frame, when the frame parses and
/// carries a legal string id; nullopt when anything goes.
std::optional<std::string> expectedId(const std::string &Frame) {
  JSONValue Doc;
  std::string Error;
  if (!parseJSON(Frame, Doc, Error) || !Doc.isObject())
    return std::nullopt;
  const JSONValue *Id = Doc.find("id");
  if (!Id || !Id->isString() || Id->asString().size() > 256)
    return std::nullopt;
  return Id->asString();
}

bool containsStatsEcho(const std::string &Response) {
  return Response.find(",\"stats\":{") != std::string::npos;
}

} // namespace

bool fuzz::checkServeInput(const std::string &Input, std::string &Detail) {
  // -- Invariant 1: framing is chunking-independent -----------------------
  core::ServeOptions Opts = fuzzServeOptions();
  core::LineSplitter Whole(Opts.MaxLineBytes);
  std::vector<std::string> Frames;
  size_t Dropped = Whole.feed(Input, Frames);
  std::string Partial;
  bool Unterminated = Whole.finish(Partial);

  core::LineSplitter Chunked(Opts.MaxLineBytes);
  std::vector<std::string> FramesB;
  size_t DroppedB = 0;
  RNG ChunkRng(fnv1a64(Input) ^ 0xc4c4c4c4ULL);
  for (size_t Pos = 0; Pos < Input.size();) {
    size_t N = 1 + ChunkRng.nextBelow(
                       std::min<size_t>(Input.size() - Pos, 97));
    DroppedB += Chunked.feed(std::string_view(Input).substr(Pos, N), FramesB);
    Pos += N;
  }
  std::string PartialB;
  bool UnterminatedB = Chunked.finish(PartialB);
  if (Frames != FramesB || Dropped != DroppedB ||
      Unterminated != UnterminatedB || Partial != PartialB) {
    Detail = formatString(
        "frame decoding depends on chunking: whole=(%zu frames, %zu "
        "dropped, tail=%d) chunked=(%zu frames, %zu dropped, tail=%d)",
        Frames.size(), Dropped, int(Unterminated), FramesB.size(), DroppedB,
        int(UnterminatedB));
    return false;
  }

  // -- Invariants 2+3: total server, deterministic responses --------------
  core::ServerCore A(fuzzServeOptions());
  core::ServerCore B(fuzzServeOptions());
  for (const std::string &Frame : Frames) {
    std::string RespA, RespB;
    try {
      RespA = A.handle(Frame);
      RespB = B.handle(Frame);
    } catch (const std::exception &E) {
      Detail = formatString("handle() threw (%s) on frame: ", E.what()) +
               Frame;
      return false;
    }
    if (!responseShapeOk(RespA, Detail))
      return false;
    if (std::optional<std::string> Id = expectedId(Frame)) {
      std::string Expect = "{\"id\":" + jsonQuoted(*Id) + ",";
      if (RespA.compare(0, Expect.size(), Expect) != 0) {
        Detail = "request id not echoed (wanted " + jsonQuoted(*Id) +
                 "): " + RespA;
        return false;
      }
    }
    // Stats epochs carry wall-clock pass timings — the one documented
    // nondeterministic field — so frames that requested stats are
    // exempt from the byte-identity check (shape was still validated).
    if (!containsStatsEcho(RespA) && !containsStatsEcho(RespB) &&
        RespA != RespB) {
      Detail = "nondeterministic response for frame '" + Frame +
               "': " + RespA + " vs " + RespB;
      return false;
    }
  }

  // Dropped and unterminated frames owe the client a well-formed
  // status-2 error frame too.
  for (size_t I = 0; I < Dropped + (Unterminated ? 1 : 0); ++I) {
    std::string Resp = A.protocolErrorResponse("fuzz: dropped frame");
    if (!responseShapeOk(Resp, Detail))
      return false;
  }
  return true;
}

std::string ServeFinding::replayArg() const {
  return formatString("0x%llx", (unsigned long long)Seed);
}

namespace {

/// Greedy chunk-removal minimization: repeatedly delete byte ranges
/// while the input still violates the contract. Detail may shift to a
/// different violation while shrinking — any violation is a finding.
std::string minimizeInput(std::string Input, std::string &Detail,
                          size_t MaxOracleRuns = 3000) {
  size_t Runs = 0;
  for (size_t Chunk = std::max<size_t>(1, Input.size() / 2); Chunk >= 1;) {
    bool Shrunk = false;
    for (size_t Pos = 0; Pos + Chunk <= Input.size() && Runs < MaxOracleRuns;
         ) {
      std::string Candidate =
          Input.substr(0, Pos) + Input.substr(Pos + Chunk);
      std::string CandidateDetail;
      ++Runs;
      if (!checkServeInput(Candidate, CandidateDetail)) {
        Input = std::move(Candidate);
        Detail = std::move(CandidateDetail);
        Shrunk = true;
        // Same Pos again: the next chunk slid into place.
      } else {
        Pos += Chunk;
      }
    }
    if (Runs >= MaxOracleRuns)
      break;
    if (!Shrunk) {
      if (Chunk == 1)
        break;
      Chunk /= 2;
    }
  }
  return Input;
}

std::string writeRepro(const std::string &Dir, uint64_t Seed,
                       const std::string &Input) {
  ::mkdir(Dir.c_str(), 0755); // EEXIST is fine
  std::string Path = Dir + formatString("/serve-%016llx.in",
                                        (unsigned long long)Seed);
  std::FILE *File = std::fopen(Path.c_str(), "wb");
  if (!File)
    return {};
  std::fwrite(Input.data(), 1, Input.size(), File);
  std::fclose(File);
  return Path;
}

} // namespace

ServeFuzzResult fuzz::runServeFuzz(const ServeFuzzOptions &Options) {
  ServeFuzzResult Result;
  const uint64_t Base = fnv1a64(Options.Seed, 0x5eedf00dULL);
  constexpr uint64_t BatchSize = 64;

  for (uint64_t Done = 0; Done < Options.Iterations &&
                          Result.Findings.size() < Options.MaxFindings;
       Done += BatchSize) {
    uint64_t Batch = std::min<uint64_t>(BatchSize, Options.Iterations - Done);
    std::vector<std::string> Details(Batch);
    std::vector<uint64_t> Seeds(Batch);
    core::parallelFor(Options.Threads, Batch, [&](size_t I) {
      // The iteration seed is what --replay-serve takes: the input is a
      // pure function of it, independent of campaign seed bookkeeping.
      Seeds[I] = fnv1a64(Done + I, Base);
      std::string Input = serveInputFromSeed(Seeds[I]);
      std::string Detail;
      if (!checkServeInput(Input, Detail))
        Details[I] = Detail;
    });
    Result.Iterations += Batch;
    for (uint64_t I = 0; I < Batch; ++I) {
      if (Details[I].empty() ||
          Result.Findings.size() >= Options.MaxFindings)
        continue;
      ServeFinding F;
      F.Seed = Seeds[I];
      F.Detail = Details[I];
      F.Input = serveInputFromSeed(Seeds[I]);
      if (Options.Minimize)
        F.Input = minimizeInput(std::move(F.Input), F.Detail);
      if (!Options.ReproDir.empty())
        F.ReproPath = writeRepro(Options.ReproDir, F.Seed, F.Input);
      Result.Findings.push_back(std::move(F));
    }
    if (Options.Log)
      Options.Log(formatString("serve-fuzz: %llu/%llu inputs, %zu finding(s)",
                               (unsigned long long)Result.Iterations,
                               (unsigned long long)Options.Iterations,
                               Result.Findings.size()));
  }
  return Result;
}
