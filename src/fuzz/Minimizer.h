//===- Minimizer.h - Delta-debugging reducer for .sir repros ----*- C++ -*-===//
//
// Part of the srp-alat project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reduces a failing textual IR module to a small repro, ddmin-style:
/// remove shrinking chunks of statement lines, and simplify condbr
/// terminators to unconditional branches, keeping every change for which
/// the caller's predicate says the program still fails. The predicate
/// owns validity: candidate text that no longer parses, verifies, or
/// fails the same way must make it return false, and the removal is
/// rejected. That keeps the minimizer a pure text transform with no
/// knowledge of IR semantics beyond the line grammar.
///
//===----------------------------------------------------------------------===//

#ifndef SRP_FUZZ_MINIMIZER_H
#define SRP_FUZZ_MINIMIZER_H

#include <functional>
#include <string>

namespace srp::fuzz {

/// Returns true when \p ModuleText still exhibits the failure being
/// minimized (and is otherwise valid input).
using FailPredicate = std::function<bool(const std::string &ModuleText)>;

struct MinimizeOptions {
  /// Full remove-and-simplify sweeps before giving up on reaching a
  /// fixpoint (each sweep is itself iterated to exhaustion per chunk
  /// size, so the default is rarely hit).
  unsigned MaxRounds = 6;
};

/// Minimizes \p Text under \p StillFails. Returns the reduced text; if
/// the input does not satisfy the predicate it is returned unchanged.
std::string minimizeModuleText(const std::string &Text,
                               const FailPredicate &StillFails,
                               const MinimizeOptions &Opts = {});

/// Number of statement lines (loads, stores, assigns, calls, prints, ...)
/// in \p Text — structural lines (global/func/local/labels/terminators/
/// braces) excluded. The fuzzer reports this as the repro's size.
unsigned countStatements(const std::string &Text);

} // namespace srp::fuzz

#endif // SRP_FUZZ_MINIMIZER_H
