//===- AliasAnalysis.cpp - Steensgaard points-to ----------------------------===//

#include "alias/AliasAnalysis.h"

#include "support/Error.h"

#include <algorithm>
#include <map>
#include <cassert>

using namespace srp;
using namespace srp::ir;
using namespace srp::alias;

AliasAnalysis::~AliasAnalysis() = default;

namespace srp::alias {

/// Builds the unification constraints for one module.
///
/// Node universe: one location per symbol (ids [0, numSymbols)), one
/// location per (function, temp), and fresh cells invented on demand as
/// dereference targets. Each representative has at most one points-to
/// successor; unifying two representatives recursively unifies their
/// successors, which is what makes the analysis almost-linear.
class SteensgaardSolver {
public:
  SteensgaardSolver(const ir::Module &M, SteensgaardAnalysis &Result)
      : M(M), R(Result) {}

  void run() {
    R.Parent.clear();
    for (unsigned I = 0, E = M.numSymbols(); I != E; ++I)
      newNode();
    // Temp locations, per function.
    TempBase.resize(M.numFunctions());
    RetLoc.resize(M.numFunctions(), ~0u);
    for (unsigned FI = 0, FE = M.numFunctions(); FI != FE; ++FI) {
      const Function *F = M.function(FI);
      TempBase[FI] = static_cast<unsigned>(R.Parent.size());
      for (unsigned T = 0, TE = F->numTemps(); T != TE; ++T)
        newNode();
      RetLoc[FI] = newNode();
      FuncIndex[F] = FI;
    }
    for (unsigned FI = 0, FE = M.numFunctions(); FI != FE; ++FI)
      processFunction(*M.function(FI), FI);
    collectClasses();
  }

private:
  unsigned newNode() {
    unsigned Id = static_cast<unsigned>(R.Parent.size());
    R.Parent.push_back(Id);
    R.Pts.push_back(~0u);
    return Id;
  }

  unsigned find(unsigned Node) { return R.find(Node); }

  /// Returns the pointee cell of \p Node, creating one if absent.
  unsigned pointee(unsigned Node) {
    Node = find(Node);
    if (R.Pts[Node] == ~0u) {
      unsigned Fresh = newNode();
      // Re-find: newNode may have invalidated nothing, but Node stays rep.
      R.Pts[find(Node)] = Fresh;
      return Fresh;
    }
    return find(R.Pts[Node]);
  }

  /// Unifies the classes of \p A and \p B (and, recursively, pointees).
  void unify(unsigned A, unsigned B) {
    A = find(A);
    B = find(B);
    if (A == B)
      return;
    unsigned PtsA = R.Pts[A];
    unsigned PtsB = R.Pts[B];
    R.Parent[B] = A;
    if (PtsB == ~0u)
      return;
    if (PtsA == ~0u) {
      R.Pts[A] = PtsB;
      return;
    }
    unify(PtsA, PtsB);
  }

  unsigned tempLoc(unsigned FuncIdx, unsigned TempId) {
    return TempBase[FuncIdx] + TempId;
  }

  unsigned operandLoc(unsigned FuncIdx, const Operand &Op) {
    if (Op.isTemp())
      return tempLoc(FuncIdx, Op.getTemp());
    return ~0u; // Constants carry no pointer.
  }

  /// Location class of the cell accessed by \p Ref (creating dereference
  /// cells as needed during solving).
  unsigned cellOf(const MemRef &Ref) {
    unsigned Cell = Ref.Base->Id;
    for (unsigned I = 0; I < Ref.Depth; ++I)
      Cell = pointee(Cell);
    return Cell;
  }

  /// Value flow: contents of \p FromLoc flow into contents of \p IntoLoc.
  void flowContents(unsigned IntoLoc, unsigned FromLoc) {
    if (IntoLoc == ~0u || FromLoc == ~0u)
      return;
    unify(pointee(IntoLoc), pointee(FromLoc));
  }

  void processFunction(const Function &F, unsigned FuncIdx) {
    for (unsigned BI = 0, BE = F.numBlocks(); BI != BE; ++BI) {
      const BasicBlock *BB = F.block(BI);
      for (size_t SI = 0, SE = BB->size(); SI != SE; ++SI)
        processStmt(*BB->stmt(SI), FuncIdx);
      const Terminator &T = BB->term();
      if (T.Kind == TermKind::Ret && !T.RetVal.isNone())
        flowContents(RetLoc[FuncIdx], operandLoc(FuncIdx, T.RetVal));
    }
  }

  void processStmt(const Stmt &S, unsigned FuncIdx) {
    switch (S.Kind) {
    case StmtKind::Assign:
      processAssign(S, FuncIdx);
      break;
    case StmtKind::Load:
      // Dst's value gets whatever the accessed cell contains.
      unify(pointee(tempLoc(FuncIdx, S.Dst)), pointee(cellOf(S.Ref)));
      break;
    case StmtKind::Store: {
      unsigned ValueLoc = operandLoc(FuncIdx, S.A);
      if (ValueLoc != ~0u)
        unify(pointee(cellOf(S.Ref)), pointee(ValueLoc));
      break;
    }
    case StmtKind::AddrOf:
      // Dst points at the base symbol's cell.
      unify(pointee(tempLoc(FuncIdx, S.Dst)), find(S.Ref.Base->Id));
      break;
    case StmtKind::Alloc:
      unify(pointee(tempLoc(FuncIdx, S.Dst)), find(S.HeapSym->Id));
      break;
    case StmtKind::Call: {
      auto It = FuncIndex.find(S.Callee);
      assert(It != FuncIndex.end() && "call to unknown function");
      unsigned CalleeIdx = It->second;
      const auto &Formals = S.Callee->formals();
      for (size_t I = 0; I < S.Args.size() && I < Formals.size(); ++I)
        flowContents(Formals[I]->Id, operandLoc(FuncIdx, S.Args[I]));
      if (S.Dst != NoTemp)
        flowContents(tempLoc(FuncIdx, S.Dst), RetLoc[CalleeIdx]);
      break;
    }
    case StmtKind::Invala:
    case StmtKind::Print:
      break;
    }
  }

  void processAssign(const Stmt &S, unsigned FuncIdx) {
    unsigned DstLoc = tempLoc(FuncIdx, S.Dst);
    switch (S.Op) {
    case Opcode::Copy:
    case Opcode::Add:
    case Opcode::Sub:
      // Pointer values survive copies and pointer arithmetic.
      flowContents(DstLoc, operandLoc(FuncIdx, S.A));
      flowContents(DstLoc, operandLoc(FuncIdx, S.B));
      break;
    case Opcode::Select:
      flowContents(DstLoc, operandLoc(FuncIdx, S.B));
      flowContents(DstLoc, operandLoc(FuncIdx, S.C));
      break;
    default:
      // Multiplications, comparisons, float ops etc. do not manufacture
      // dereferenceable pointers in well-defined programs.
      break;
    }
  }

  void collectClasses() {
    R.ClassSymbols.assign(R.Parent.size(), {});
    for (unsigned I = 0, E = M.numSymbols(); I != E; ++I)
      R.ClassSymbols[find(I)].push_back(M.symbol(I));
    for (auto &Class : R.ClassSymbols)
      std::sort(Class.begin(), Class.end(),
                [](const Symbol *L, const Symbol *R2) {
                  return L->Id < R2->Id;
                });
  }

  const ir::Module &M;
  SteensgaardAnalysis &R;
  std::vector<unsigned> TempBase;
  std::vector<unsigned> RetLoc;
  std::map<const Function *, unsigned> FuncIndex;
};

} // namespace srp::alias

SteensgaardAnalysis::SteensgaardAnalysis(const ir::Module &M) : M(M) {
  SteensgaardSolver Solver(M, *this);
  Solver.run();
}

unsigned SteensgaardAnalysis::find(unsigned Node) const {
  assert(Node < Parent.size() && "node out of range");
  unsigned Root = Node;
  while (Parent[Root] != Root)
    Root = Parent[Root];
  while (Parent[Node] != Root) {
    unsigned Next = Parent[Node];
    Parent[Node] = Root;
    Node = Next;
  }
  return Root;
}

unsigned SteensgaardAnalysis::cellClassOf(const ir::MemRef &Ref) const {
  assert(Ref.Base && "reference without base");
  unsigned Cell = find(Ref.Base->Id);
  for (unsigned I = 0; I < Ref.Depth; ++I) {
    if (Pts[Cell] == ~0u)
      return ~0u;
    Cell = find(Pts[Cell]);
  }
  return Cell;
}

/// Refined direct-direct disambiguation: same symbol, and constant
/// index/offset ranges must overlap.
static bool directRefsMayOverlap(const MemRef &A, const MemRef &B) {
  if (A.Base != B.Base)
    return false;
  auto ConstAddr = [](const MemRef &Ref, int64_t &Addr) {
    if (Ref.hasIndex() && Ref.Index.K != Operand::Kind::ConstInt)
      return false;
    int64_t Index =
        Ref.hasIndex() && Ref.Index.K == Operand::Kind::ConstInt
            ? Ref.Index.IntVal
            : 0;
    Addr = Index * 8 + Ref.Offset;
    return true;
  };
  int64_t AddrA = 0, AddrB = 0;
  if (ConstAddr(A, AddrA) && ConstAddr(B, AddrB))
    return AddrA == AddrB;
  return true; // Symbolic index: assume overlap.
}

bool SteensgaardAnalysis::mayAlias(const ir::MemRef &A,
                                   const ir::Function *FA,
                                   const ir::MemRef &B,
                                   const ir::Function *FB) const {
  if (A.isDirect() && B.isDirect())
    return directRefsMayOverlap(A, B);
  unsigned CellA = cellClassOf(A);
  unsigned CellB = cellClassOf(B);
  if (CellA == ~0u || CellB == ~0u)
    return false;
  if (CellA != CellB)
    return false;
  // Same class. If one side is a direct reference to a symbol that never
  // had its address taken and is not a global, no pointer can actually
  // reach it; the unification merely merged value classes.
  auto DirectlyUnreachable = [](const MemRef &Ref) {
    return Ref.isDirect() && !Ref.Base->AddressTaken &&
           Ref.Base->Kind == SymbolKind::Local;
  };
  if (A.isDirect() != B.isDirect())
    if (DirectlyUnreachable(A.isDirect() ? A : B))
      return false;
  return true;
}

std::vector<const ir::Symbol *>
SteensgaardAnalysis::mayPointees(const ir::MemRef &Ref,
                                 const ir::Function *F) const {
  if (Ref.isDirect())
    return {Ref.Base};
  unsigned Cell = cellClassOf(Ref);
  if (Cell == ~0u)
    return {};
  std::vector<const Symbol *> Result;
  for (const Symbol *Sym : ClassSymbols[Cell]) {
    // Locals of other functions are out of scope for an access in F.
    if (Sym->Parent && F && Sym->Parent != F && !Sym->AddressTaken)
      continue;
    Result.push_back(Sym);
  }
  return Result;
}

bool SteensgaardAnalysis::isCallClobbered(const ir::Symbol *S) const {
  switch (S->Kind) {
  case SymbolKind::Global:
  case SymbolKind::HeapSite:
    return true;
  case SymbolKind::Local:
  case SymbolKind::Formal:
    return S->AddressTaken;
  }
  SRP_UNREACHABLE("invalid SymbolKind");
}

unsigned SteensgaardAnalysis::numLocationClasses() const {
  unsigned Count = 0;
  for (unsigned I = 0, E = static_cast<unsigned>(ClassSymbols.size()); I != E;
       ++I)
    if (find(I) == I && !ClassSymbols[I].empty())
      ++Count;
  return Count;
}
