//===- Andersen.h - Inclusion-based points-to analysis ----------*- C++ -*-===//
//
// Part of the srp-alat project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Andersen-style inclusion-based points-to analysis: assignments become
/// subset constraints instead of Steensgaard's unifications, so `p = &a;
/// q = &b; r = p;` keeps pts(q) = {b} separate from pts(p) = pts(r) =
/// {a}. Cubic in the worst case but far more precise — the ablation
/// question it answers (paper §5: "the alias analysis could be
/// improved...") is how much of the speculation win a better static
/// analysis would already capture.
///
//===----------------------------------------------------------------------===//

#ifndef SRP_ALIAS_ANDERSEN_H
#define SRP_ALIAS_ANDERSEN_H

#include "alias/AliasAnalysis.h"

#include <map>
#include <set>

namespace srp::alias {

/// Inclusion-based points-to analysis over the same node universe as the
/// Steensgaard solver (symbol locations and per-function temp values).
class AndersenAnalysis final : public AliasAnalysis {
public:
  explicit AndersenAnalysis(const ir::Module &M);

  bool mayAlias(const ir::MemRef &A, const ir::Function *FA,
                const ir::MemRef &B, const ir::Function *FB) const override;

  std::vector<const ir::Symbol *>
  mayPointees(const ir::MemRef &Ref, const ir::Function *F) const override;

  bool isCallClobbered(const ir::Symbol *S) const override;

  const char *name() const override { return "andersen"; }

  /// Points-to set (symbol ids) of the cell chain of \p Ref at its final
  /// dereference level; empty for direct refs.
  const std::set<unsigned> &pointsToSetOf(const ir::MemRef &Ref,
                                          const ir::Function *F) const;

private:
  friend class AndersenSolver;

  unsigned nodeOfSymbol(unsigned SymbolId) const { return SymbolId; }
  unsigned nodeOfTemp(const ir::Function *F, unsigned TempId) const;

  /// Points-to set of the *contents* of node N (what a value loaded from
  /// N may point to).
  const std::set<unsigned> &pts(unsigned Node) const;

  const ir::Module &M;
  std::vector<std::set<unsigned>> Pts; ///< per node: pointee symbol ids.
  std::map<const ir::Function *, unsigned> TempBase;
  static const std::set<unsigned> Empty;
};

} // namespace srp::alias

#endif // SRP_ALIAS_ANDERSEN_H
