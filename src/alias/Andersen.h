//===- Andersen.h - Inclusion-based points-to analysis ----------*- C++ -*-===//
//
// Part of the srp-alat project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Andersen-style inclusion-based points-to analysis: assignments become
/// subset constraints instead of Steensgaard's unifications, so `p = &a;
/// q = &b; r = p;` keeps pts(q) = {b} separate from pts(p) = pts(r) =
/// {a}. Cubic in the worst case but far more precise — the ablation
/// question it answers (paper §5: "the alias analysis could be
/// improved...") is how much of the speculation win a better static
/// analysis would already capture.
///
//===----------------------------------------------------------------------===//

#ifndef SRP_ALIAS_ANDERSEN_H
#define SRP_ALIAS_ANDERSEN_H

#include "alias/AliasAnalysis.h"

#include <map>
#include <memory>
#include <set>

namespace srp::alias {

/// Inclusion-based points-to analysis over the same node universe as the
/// Steensgaard solver (symbol locations and per-function temp values).
///
/// Two solving modes. Exhaustive runs the whole-program fixpoint in the
/// constructor — what the promote pass wants, since it queries nearly
/// every node. Demand keeps the constraint graph and solves per query
/// root (Heintze/Tardieu style): the backward copy/load closure of the
/// root plus, conservatively, every store endpoint is solved to a local
/// fixpoint, memoized, and marked final — so lint paths that ask about a
/// handful of references (SpecVerifier, TaintFlow) never pay for the
/// whole program. Both modes compute the same least solution, so any
/// query answers byte-identically (asserted when CrossCheck is set,
/// which additionally runs the exhaustive solve as a reference — tests
/// and the fuzz differential use it). A Demand instance memoizes under
/// const queries and must not be shared across threads.
class AndersenAnalysis final : public AliasAnalysis {
public:
  enum class SolveMode : uint8_t { Exhaustive, Demand };

  explicit AndersenAnalysis(const ir::Module &M,
                            SolveMode Mode = SolveMode::Exhaustive,
                            bool CrossCheck = false);
  ~AndersenAnalysis();

  bool mayAlias(const ir::MemRef &A, const ir::Function *FA,
                const ir::MemRef &B, const ir::Function *FB) const override;

  std::vector<const ir::Symbol *>
  mayPointees(const ir::MemRef &Ref, const ir::Function *F) const override;

  bool isCallClobbered(const ir::Symbol *S) const override;

  const char *name() const override { return "andersen"; }

  /// Points-to set (symbol ids) of the cell chain of \p Ref at its final
  /// dereference level; empty for direct refs.
  const std::set<unsigned> &pointsToSetOf(const ir::MemRef &Ref,
                                          const ir::Function *F) const;

  /// Demand mode: solves the closures of \p Temps (temp ids of \p F) now
  /// so later queries rooted at them are pure lookups. Memoized; no-op
  /// in exhaustive mode (everything is already solved).
  void solveFor(const ir::Function *F, const std::vector<unsigned> &Temps);

  SolveMode mode() const { return Mode; }

  /// How many constraint nodes exist / have final (solved) closures —
  /// demand-mode observability for tests and stats.
  size_t numNodes() const { return Pts.size(); }
  size_t numSolvedNodes() const;

private:
  friend class AndersenSolver;

  unsigned nodeOfSymbol(unsigned SymbolId) const { return SymbolId; }
  unsigned nodeOfTemp(const ir::Function *F, unsigned TempId) const;

  /// Points-to set of the *contents* of node N (what a value loaded from
  /// N may point to). Demand mode solves N's closure first.
  const std::set<unsigned> &pts(unsigned Node) const;

  /// Demand machinery: solves node's closure to its final value (see
  /// class comment). Const because queries memoize.
  void ensureSolved(unsigned Node) const;

  /// Constraint graph retained by demand mode after collection.
  struct DemandState;

  const ir::Module &M;
  SolveMode Mode;
  bool CrossCheck;
  /// Per node: pointee symbol ids. Mutable: demand queries fill it in.
  mutable std::vector<std::set<unsigned>> Pts;
  mutable std::unique_ptr<DemandState> DS;
  /// CrossCheck only: the exhaustive solution to compare against.
  std::vector<std::set<unsigned>> RefPts;
  std::map<const ir::Function *, unsigned> TempBase;
  static const std::set<unsigned> Empty;
};

} // namespace srp::alias

#endif // SRP_ALIAS_ANDERSEN_H
