//===- Andersen.cpp - Inclusion-based points-to analysis ----------------------===//

#include "alias/Andersen.h"

#include "support/Error.h"

#include <algorithm>
#include <map>

using namespace srp;
using namespace srp::ir;
using namespace srp::alias;

const std::set<unsigned> AndersenAnalysis::Empty;

namespace srp::alias {

/// The constraint graph a Demand-mode analysis keeps after collection
/// (exhaustive mode discards it — everything is already solved).
struct AndersenAnalysis::DemandState {
  std::vector<std::vector<unsigned>> RevCopy;    ///< dst -> copy sources
  std::vector<std::vector<unsigned>> LoadsByDst; ///< dst -> deref'd ptrs
  std::vector<std::pair<unsigned, unsigned>> StoreCons; ///< (ptr, src)
  std::vector<char> Solved; ///< node closure is final
};

/// Constraint solver: worklist over subset edges. Node ids: symbols
/// first, then per-function temps, then one return node per function.
class AndersenSolver {
public:
  AndersenSolver(const ir::Module &M, AndersenAnalysis &R) : M(M), R(R) {}

  void run(bool SolveNow) {
    unsigned N = M.numSymbols();
    for (unsigned FI = 0; FI < M.numFunctions(); ++FI) {
      const Function *F = M.function(FI);
      R.TempBase[F] = N;
      N += F->numTemps();
      RetNode[F] = N++;
    }
    NumNodes = N;
    R.Pts.assign(N, {});
    CopyEdges.assign(N, {});
    LoadCons.clear();
    StoreCons.clear();

    for (unsigned FI = 0; FI < M.numFunctions(); ++FI)
      collect(*M.function(FI));
    if (SolveNow) {
      solve();
      return;
    }
    // Demand mode: seed the address-of facts and hand the graph over.
    for (auto &[Node, Sym] : InitialPts)
      R.Pts[Node].insert(Sym);
    auto D = std::make_unique<AndersenAnalysis::DemandState>();
    D->RevCopy.assign(NumNodes, {});
    for (unsigned Src = 0; Src < NumNodes; ++Src)
      for (unsigned Dst : CopyEdges[Src])
        D->RevCopy[Dst].push_back(Src);
    D->LoadsByDst.assign(NumNodes, {});
    for (auto &[Ptr, Dst] : LoadCons)
      D->LoadsByDst[Dst].push_back(Ptr);
    D->StoreCons = StoreCons;
    D->Solved.assign(NumNodes, 0);
    R.DS = std::move(D);
  }

private:
  unsigned tempNode(const Function *F, unsigned Temp) const {
    return R.TempBase.at(F) + Temp;
  }

  unsigned operandNode(const Function *F, const Operand &Op) const {
    return Op.isTemp() ? tempNode(F, Op.getTemp()) : ~0u;
  }

  void addAddressOf(unsigned Dst, unsigned SymbolId) {
    if (Dst != ~0u)
      InitialPts.push_back({Dst, SymbolId});
  }

  void addCopy(unsigned Dst, unsigned Src) {
    if (Dst != ~0u && Src != ~0u)
      CopyEdges[Src].push_back(Dst);
  }

  /// Dst ⊇ *(Chain) — a load through a pointer node.
  void addLoad(unsigned Dst, unsigned Ptr) {
    if (Dst != ~0u && Ptr != ~0u)
      LoadCons.push_back({Ptr, Dst});
  }

  /// *(Ptr) ⊇ Src — a store through a pointer node.
  void addStore(unsigned Ptr, unsigned Src) {
    if (Ptr != ~0u && Src != ~0u)
      StoreCons.push_back({Ptr, Src});
  }

  /// Node whose *contents* address the cell accessed by \p Ref at the
  /// last dereference step (the pointer being dereferenced), or ~0u for
  /// direct refs. For Depth=2 an intermediate load constraint is added.
  unsigned pointerNodeOf(const Function *F, const MemRef &Ref) {
    if (Ref.Depth == 0)
      return ~0u;
    unsigned Ptr = Ref.Base->Id;
    for (unsigned L = 2; L <= Ref.Depth; ++L) {
      // tmp = *Ptr, then deref tmp. Model with a synthetic node.
      unsigned Mid = makeNode();
      addLoad(Mid, Ptr);
      Ptr = Mid;
    }
    return Ptr;
  }

  unsigned makeNode() {
    R.Pts.push_back({});
    CopyEdges.push_back({});
    return NumNodes++;
  }

  void collect(const Function &F) {
    for (unsigned BI = 0; BI < F.numBlocks(); ++BI) {
      const BasicBlock *BB = F.block(BI);
      for (size_t SI = 0; SI < BB->size(); ++SI)
        collectStmt(F, *BB->stmt(SI));
      const Terminator &T = BB->term();
      if (T.Kind == TermKind::Ret && T.RetVal.isNone() == false)
        addCopy(RetNode.at(&F), operandNode(&F, T.RetVal));
    }
  }

  void collectStmt(const Function &F, const Stmt &S) {
    switch (S.Kind) {
    case StmtKind::Assign:
      switch (S.Op) {
      case Opcode::Copy:
      case Opcode::Add:
      case Opcode::Sub:
        addCopy(tempNode(&F, S.Dst), operandNode(&F, S.A));
        addCopy(tempNode(&F, S.Dst), operandNode(&F, S.B));
        break;
      case Opcode::Select:
        addCopy(tempNode(&F, S.Dst), operandNode(&F, S.B));
        addCopy(tempNode(&F, S.Dst), operandNode(&F, S.C));
        break;
      default:
        break;
      }
      break;
    case StmtKind::Load: {
      if (S.Ref.isDirect())
        addCopy(tempNode(&F, S.Dst), S.Ref.Base->Id);
      else
        addLoad(tempNode(&F, S.Dst), pointerNodeOf(&F, S.Ref));
      break;
    }
    case StmtKind::Store: {
      if (S.Ref.isDirect())
        addCopy(S.Ref.Base->Id, operandNode(&F, S.A));
      else
        addStore(pointerNodeOf(&F, S.Ref), operandNode(&F, S.A));
      break;
    }
    case StmtKind::AddrOf:
      addAddressOf(tempNode(&F, S.Dst), S.Ref.Base->Id);
      break;
    case StmtKind::Alloc:
      addAddressOf(tempNode(&F, S.Dst), S.HeapSym->Id);
      break;
    case StmtKind::Call: {
      const auto &Formals = S.Callee->formals();
      for (size_t I = 0; I < S.Args.size() && I < Formals.size(); ++I)
        addCopy(Formals[I]->Id, operandNode(&F, S.Args[I]));
      if (S.Dst != NoTemp)
        addCopy(tempNode(&F, S.Dst), RetNode.at(S.Callee));
      break;
    }
    case StmtKind::Invala:
    case StmtKind::Print:
      break;
    }
  }

  void solve() {
    for (auto &[Node, Sym] : InitialPts)
      R.Pts[Node].insert(Sym);
    bool Changed = true;
    while (Changed) {
      Changed = false;
      // Copy edges: pts(dst) ⊇ pts(src).
      for (unsigned Src = 0; Src < NumNodes; ++Src) {
        for (unsigned Dst : CopyEdges[Src])
          for (unsigned P : R.Pts[Src])
            Changed |= R.Pts[Dst].insert(P).second;
      }
      // Load constraints: pts(dst) ⊇ pts(p) for each p in pts(ptr).
      for (auto &[Ptr, Dst] : LoadCons)
        for (unsigned P : R.Pts[Ptr])
          for (unsigned Q : R.Pts[P])
            Changed |= R.Pts[Dst].insert(Q).second;
      // Store constraints: pts(p) ⊇ pts(src) for each p in pts(ptr).
      for (auto &[Ptr, Src] : StoreCons)
        for (unsigned P : R.Pts[Ptr])
          for (unsigned Q : R.Pts[Src])
            Changed |= R.Pts[P].insert(Q).second;
    }
  }

  const ir::Module &M;
  AndersenAnalysis &R;
  unsigned NumNodes = 0;
  std::vector<std::vector<unsigned>> CopyEdges;
  std::vector<std::pair<unsigned, unsigned>> LoadCons;  ///< (ptr, dst)
  std::vector<std::pair<unsigned, unsigned>> StoreCons; ///< (ptr, src)
  std::vector<std::pair<unsigned, unsigned>> InitialPts;
  std::map<const Function *, unsigned> RetNode;
};

} // namespace srp::alias

AndersenAnalysis::AndersenAnalysis(const ir::Module &M, SolveMode Mode,
                                   bool CrossCheck)
    : M(M), Mode(Mode), CrossCheck(CrossCheck && Mode == SolveMode::Demand) {
  AndersenSolver Solver(M, *this);
  Solver.run(/*SolveNow=*/Mode == SolveMode::Exhaustive);
  if (this->CrossCheck) {
    // Reference solution for the demand/exhaustive differential: solve
    // the same module exhaustively and compare every answered node.
    AndersenAnalysis Ref(M, SolveMode::Exhaustive);
    RefPts = std::move(Ref.Pts);
  }
}

AndersenAnalysis::~AndersenAnalysis() = default;

unsigned AndersenAnalysis::nodeOfTemp(const ir::Function *F,
                                      unsigned TempId) const {
  return TempBase.at(F) + TempId;
}

const std::set<unsigned> &AndersenAnalysis::pts(unsigned Node) const {
  if (Node >= Pts.size())
    return Empty;
  ensureSolved(Node);
  return Pts[Node];
}

size_t AndersenAnalysis::numSolvedNodes() const {
  if (Mode == SolveMode::Exhaustive)
    return Pts.size();
  size_t N = 0;
  for (char S : DS->Solved)
    N += S != 0;
  return N;
}

void AndersenAnalysis::solveFor(const ir::Function *F,
                                const std::vector<unsigned> &Temps) {
  if (Mode == SolveMode::Exhaustive)
    return;
  for (unsigned T : Temps)
    ensureSolved(nodeOfTemp(F, T));
}

void AndersenAnalysis::ensureSolved(unsigned Node) const {
  if (Mode == SolveMode::Exhaustive)
    return;
  DemandState &D = *DS;
  if (D.Solved[Node])
    return;

  // Restricted node set R of this query, in discovery order. Solved
  // nodes never re-enter: their sets are final and are read as
  // constants below.
  std::vector<unsigned> R, Work;
  std::vector<char> InR(Pts.size(), 0);
  auto AddToR = [&](unsigned V) {
    if (V >= Pts.size() || InR[V] || D.Solved[V])
      return;
    InR[V] = 1;
    R.push_back(V);
    Work.push_back(V);
  };
  // Backward closure: everything that can flow into a member of R —
  // copy sources and, for load constraints, the dereferenced pointer
  // (its pointees join during the fixpoint once discovered).
  auto Close = [&] {
    while (!Work.empty()) {
      unsigned V = Work.back();
      Work.pop_back();
      for (unsigned U : D.RevCopy[V])
        AddToR(U);
      for (unsigned Ptr : D.LoadsByDst[V])
        AddToR(Ptr);
    }
  };
  AddToR(Node);
  // A store *p = q can route values into any node of R depending on
  // pts(p), which is only known mid-solve — include every store
  // endpoint up front (they memoize as Solved, so only the first query
  // pays for the store subgraph).
  for (auto &[Ptr, Src] : D.StoreCons) {
    AddToR(Ptr);
    AddToR(Src);
  }
  Close();

  // Fixpoint over the restricted system. Loads discovering a new
  // pointee expand R with its backward closure and re-iterate, so the
  // final sets on R equal the whole-program least solution there.
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (size_t RI = 0; RI < R.size(); ++RI) { // R may grow mid-loop
      unsigned V = R[RI];
      for (unsigned U : D.RevCopy[V])
        for (unsigned P : Pts[U])
          Changed |= Pts[V].insert(P).second;
      for (unsigned Ptr : D.LoadsByDst[V])
        for (unsigned P : Pts[Ptr]) {
          if (P < InR.size() && !InR[P] && !D.Solved[P]) {
            AddToR(P);
            Close();
            Changed = true;
          }
          for (unsigned Q : Pts[P])
            Changed |= Pts[V].insert(Q).second;
        }
    }
    for (auto &[Ptr, Src] : D.StoreCons)
      for (unsigned P : Pts[Ptr])
        if (P < InR.size() && InR[P])
          for (unsigned Q : Pts[Src])
            Changed |= Pts[P].insert(Q).second;
  }
  for (unsigned V : R)
    D.Solved[V] = 1;

  if (CrossCheck)
    for (unsigned V : R)
      if (Pts[V] != RefPts[V])
        fatalError("andersen demand/exhaustive mismatch at node " +
                   std::to_string(V));
}

const std::set<unsigned> &
AndersenAnalysis::pointsToSetOf(const ir::MemRef &Ref,
                                const ir::Function *F) const {
  if (Ref.Depth == 0)
    return Empty;
  // Depth 1: contents of the base symbol's cell. Depth 2: union over the
  // level-1 pointees — conservatively precomputed during solving via the
  // synthetic mid node; re-derive here by unioning (cached per query via
  // a scratch set would be an optimization; call sites are cold).
  if (Ref.Depth == 1)
    return pts(Ref.Base->Id);
  // thread_local: concurrent pipelines (core::runExperiments) query their
  // own analyses in parallel; the returned reference is only valid until
  // the same thread's next depth-2 query, which every caller consumes
  // immediately.
  static thread_local std::set<unsigned> Scratch;
  Scratch.clear();
  for (unsigned P : pts(Ref.Base->Id))
    for (unsigned Q : pts(P))
      Scratch.insert(Q);
  return Scratch;
}

std::vector<const ir::Symbol *>
AndersenAnalysis::mayPointees(const ir::MemRef &Ref,
                              const ir::Function *F) const {
  if (Ref.isDirect())
    return {Ref.Base};
  std::vector<const Symbol *> Out;
  for (unsigned Sym : pointsToSetOf(Ref, F)) {
    const Symbol *S = M.symbol(Sym);
    if (S->Parent && F && S->Parent != F && !S->AddressTaken)
      continue;
    Out.push_back(S);
  }
  return Out;
}

/// Direct-direct refinement shared with the Steensgaard implementation.
static bool directRefsMayOverlap(const MemRef &A, const MemRef &B) {
  if (A.Base != B.Base)
    return false;
  auto ConstAddr = [](const MemRef &Ref, int64_t &Addr) {
    if (Ref.hasIndex() && Ref.Index.K != Operand::Kind::ConstInt)
      return false;
    int64_t Index =
        Ref.hasIndex() && Ref.Index.K == Operand::Kind::ConstInt
            ? Ref.Index.IntVal
            : 0;
    Addr = Index * 8 + Ref.Offset;
    return true;
  };
  int64_t AddrA = 0, AddrB = 0;
  if (ConstAddr(A, AddrA) && ConstAddr(B, AddrB))
    return AddrA == AddrB;
  return true;
}

bool AndersenAnalysis::mayAlias(const ir::MemRef &A, const ir::Function *FA,
                                const ir::MemRef &B,
                                const ir::Function *FB) const {
  if (A.isDirect() && B.isDirect())
    return directRefsMayOverlap(A, B);
  if (A.isDirect())
    return pointsToSetOf(B, FB).count(A.Base->Id) != 0;
  if (B.isDirect()) {
    // Evaluate B's set first into a copy: pointsToSetOf may reuse a
    // shared scratch buffer for depth-2 queries.
    std::set<unsigned> SetA = pointsToSetOf(A, FA);
    return SetA.count(B.Base->Id) != 0;
  }
  std::set<unsigned> SetA = pointsToSetOf(A, FA);
  for (unsigned Sym : pointsToSetOf(B, FB))
    if (SetA.count(Sym))
      return true;
  return false;
}

bool AndersenAnalysis::isCallClobbered(const ir::Symbol *S) const {
  switch (S->Kind) {
  case SymbolKind::Global:
  case SymbolKind::HeapSite:
    return true;
  case SymbolKind::Local:
  case SymbolKind::Formal:
    return S->AddressTaken;
  }
  SRP_UNREACHABLE("invalid SymbolKind");
}
