//===- ResultCache.h - Content-addressed pipeline result cache --*- C++ -*-===//
//
// Part of the srp-alat project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serving-path result cache: canonical request key (canonicalized
/// workload IR + pipeline configuration, see core/Serve.h) → serialized
/// PipelineResult. A pipeline run is a pure function of that key (the
/// PR-3 invariant the whole serve architecture stands on), so a cached
/// body may be returned for any repeat request, byte for byte.
///
/// Concurrency: the table is sharded by key hash with one mutex per
/// shard, so concurrent requests touching different shards never
/// contend. Each shard is an independent LRU list under a per-shard
/// slice of the byte budget; an insert that would overflow its shard
/// evicts least-recently-used entries first.
///
/// Correctness under collision: the shard index comes from the key's
/// FNV-1a hash, but entries are stored and compared by the *full* key
/// string. Two canonicalized-but-distinct requests can therefore never
/// alias — a hash collision only means two entries share a bucket.
///
/// Counters (StatsRegistry::current()): serve.cache.hits / .misses /
/// .evictions / .insertions / .uncacheable.
///
//===----------------------------------------------------------------------===//

#ifndef SRP_CORE_RESULTCACHE_H
#define SRP_CORE_RESULTCACHE_H

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace srp::core {

struct ResultCacheConfig {
  /// Shard count (rounded up to at least 1). 16 keeps per-shard mutex
  /// contention negligible at the thread counts the daemon runs.
  unsigned Shards = 16;
  /// Total byte budget across all shards, counting keys and bodies.
  /// Each shard enforces ByteBudget / Shards.
  size_t ByteBudget = 256u << 20;
};

/// Sharded, byte-budgeted, LRU result cache (see file comment). All
/// public methods are thread-safe.
class ResultCache {
public:
  explicit ResultCache(const ResultCacheConfig &Config = {});

  /// The body stored for \p Key, refreshing its LRU position; nullopt on
  /// miss. Counts serve.cache.hits / serve.cache.misses.
  std::optional<std::string> lookup(std::string_view Key);

  /// Stores \p Body under \p Key, evicting LRU entries of the shard as
  /// needed. An entry bigger than a whole shard's budget is not cached
  /// (counted serve.cache.uncacheable); re-inserting an existing key
  /// replaces its body. Values are immutable once stored — the serve
  /// path only ever inserts the deterministic result of a cold run.
  void insert(std::string_view Key, std::string Body);

  struct Stats {
    uint64_t Hits = 0;
    uint64_t Misses = 0;
    uint64_t Evictions = 0;
    uint64_t Insertions = 0;
    uint64_t Uncacheable = 0;
    size_t Bytes = 0;   ///< Resident key+body bytes, all shards.
    size_t Entries = 0; ///< Resident entries, all shards.
  };
  Stats stats() const;

  /// Drops every entry (counters keep their totals).
  void clear();

private:
  struct Entry {
    std::string Key;
    std::string Body;
    size_t bytes() const { return Key.size() + Body.size(); }
  };
  struct Shard {
    std::mutex Mutex;
    /// Front = most recently used.
    std::list<Entry> Lru;
    std::unordered_map<std::string_view, std::list<Entry>::iterator> Index;
    size_t Bytes = 0;
    uint64_t Hits = 0, Misses = 0, Evictions = 0, Insertions = 0,
             Uncacheable = 0;
  };

  Shard &shardFor(std::string_view Key);

  size_t ShardBudget;
  /// unique_ptr: Shard holds a mutex and must not move when the vector
  /// is built.
  std::vector<std::unique_ptr<Shard>> Shards;
};

} // namespace srp::core

#endif // SRP_CORE_RESULTCACHE_H
