//===- Serve.cpp - Promotion-as-a-service server core --------------------------===//

#include "core/Serve.h"

#include "core/Experiment.h"
#include "core/Pass.h"
#include "ir/Fingerprint.h"
#include "support/Hash.h"
#include "ir/Parser.h"
#include "ir/Verifier.h"
#include "support/JSON.h"
#include "support/JSONReader.h"
#include "support/OStream.h"
#include "support/Stats.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <iterator>
#include <thread>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace srp;
using namespace srp::core;

//===----------------------------------------------------------------------===//
// LineSplitter
//===----------------------------------------------------------------------===//

size_t LineSplitter::feed(std::string_view Chunk,
                          std::vector<std::string> &Out) {
  size_t Dropped = 0;
  while (!Chunk.empty()) {
    size_t Newline = Chunk.find('\n');
    if (Newline == std::string_view::npos) {
      if (Discarding)
        return Dropped; // still inside the oversized frame
      Buffer.append(Chunk);
      if (Buffer.size() > MaxLineBytes) {
        Buffer.clear();
        Discarding = true;
        ++Dropped;
      }
      return Dropped;
    }
    std::string_view Rest = Chunk.substr(Newline + 1);
    if (Discarding) {
      // The newline ends the frame being discarded; already counted.
      Discarding = false;
    } else if (Buffer.size() + Newline > MaxLineBytes) {
      Buffer.clear();
      ++Dropped;
    } else {
      Buffer.append(Chunk.substr(0, Newline));
      Out.push_back(std::move(Buffer));
      Buffer.clear();
    }
    Chunk = Rest;
  }
  return Dropped;
}

bool LineSplitter::finish(std::string &Partial) {
  Partial.clear();
  if (Discarding) {
    Discarding = false;
    return true;
  }
  if (Buffer.empty())
    return false;
  Partial = std::move(Buffer);
  Buffer.clear();
  return true;
}

//===----------------------------------------------------------------------===//
// Response construction
//===----------------------------------------------------------------------===//

namespace {

/// \p S as a JSON string literal (quoted, escaped).
std::string jsonQuoted(std::string_view S) {
  std::string Out;
  StringOStream OS(Out);
  JSONWriter W(OS, /*Compact=*/true);
  W.value(S);
  return Out;
}

/// A result body object: {"status":N,"ok":false,"error":MSG}.
std::string errorBody(int Status, std::string_view Message) {
  std::string Out;
  StringOStream OS(Out);
  JSONWriter W(OS, /*Compact=*/true);
  W.beginObject();
  W.key("status").value(static_cast<int64_t>(Status));
  W.key("ok").value(false);
  W.key("error").value(Message);
  W.endObject();
  return Out;
}

/// Assembles the response frame around a prebuilt result body. Key
/// order is fixed (id, cached, [stats,] result) so identical requests
/// get byte-identical frames up to the non-result fields.
std::string makeResponse(const std::string &IdJson, bool Cached,
                         const std::string *StatsJson,
                         const std::string &Body) {
  std::string Out = "{\"id\":" + IdJson;
  Out += Cached ? ",\"cached\":true" : ",\"cached\":false";
  if (StatsJson)
    Out += ",\"stats\":" + *StatsJson;
  Out += ",\"result\":" + Body + "}";
  return Out;
}

/// The deterministic counter fingerprint of one result, in the
/// cycles/instructions/loads | promotion triple form the bench reports
/// use. Byte-identical between a served response and a standalone run
/// of the same (workload, config) — the acceptance invariant.
std::string fingerprintOf(const PipelineResult &R) {
  return formatString(
      "%llu/%llu/%llu|%u-%u-%u",
      (unsigned long long)R.Sim.Counters.Cycles,
      (unsigned long long)R.Sim.Counters.Instructions,
      (unsigned long long)R.Sim.Counters.RetiredLoads, R.Promotion.PromotedExprs,
      R.Promotion.loadsRemoved(),
      R.Promotion.ChecksInserted + R.Promotion.CascadeChecks);
}

/// Serializes a successful run into the cacheable result body. Every
/// field is deterministic for the request's canonical key: wall-clock
/// pass timings deliberately do not appear (PipelineResult::Timings is
/// documented nondeterministic), so a cache hit is byte-identical to
/// the cold run that produced it.
std::string runBody(const PipelineResult &R) {
  std::string Out;
  StringOStream OS(Out);
  JSONWriter W(OS, /*Compact=*/true);
  W.beginObject();
  W.key("status").value(0);
  W.key("ok").value(true);
  W.key("fingerprint").value(fingerprintOf(R));
  const arch::PerfCounters &C = R.Sim.Counters;
  W.key("counters");
  W.beginObject();
  W.key("cycles").value(C.Cycles);
  W.key("instructions").value(C.Instructions);
  W.key("retired_loads").value(C.RetiredLoads);
  W.key("retired_stores").value(C.RetiredStores);
  W.key("data_access_cycles").value(C.DataAccessCycles);
  W.key("alat_checks").value(C.AlatChecks);
  W.key("alat_check_failures").value(C.AlatCheckFailures);
  W.key("chk_a_recoveries").value(C.ChkARecoveries);
  W.key("rse_cycles").value(C.RseCycles);
  W.key("taken_branches").value(C.TakenBranches);
  W.endObject();
  const pre::PromotionStats &P = R.Promotion;
  W.key("promotion");
  W.beginObject();
  W.key("exprs").value(P.PromotedExprs);
  W.key("loads_removed_direct").value(P.LoadsRemovedDirect);
  W.key("loads_removed_indirect").value(P.LoadsRemovedIndirect);
  W.key("advanced_loads").value(P.AdvancedLoads);
  W.key("checks_inserted").value(P.ChecksInserted);
  W.key("cascade_checks").value(P.CascadeChecks);
  W.key("software_checks").value(P.SoftwareChecks);
  W.key("sta_stores").value(P.StAStores);
  W.endObject();
  W.key("regalloc");
  W.beginObject();
  W.key("spilled_regs").value(R.RegAlloc.SpilledRegs);
  W.key("max_int_pressure").value(R.RegAlloc.MaxIntPressure);
  W.key("max_fp_pressure").value(R.RegAlloc.MaxFpPressure);
  W.endObject();
  W.key("max_stacked_regs").value(R.MaxStackedRegs);
  W.key("spec_diags").value(static_cast<uint64_t>(R.SpecDiags.size()));
  W.key("taint_diags").value(static_cast<uint64_t>(R.TaintDiags.size()));
  W.key("exit_value").value(static_cast<int64_t>(R.Sim.ExitValue));
  W.key("output");
  W.beginArray();
  for (const std::string &Line : R.Output)
    W.value(Line);
  W.endArray();
  W.endObject();
  return Out;
}

/// Sorted name=value serialization of a stats registry snapshot.
std::string statsJson(const StatsRegistry &SR) {
  std::string Out;
  StringOStream OS(Out);
  JSONWriter W(OS, /*Compact=*/true);
  W.beginObject();
  for (const auto &[Name, Value] : SR.snapshot())
    W.key(Name).value(Value);
  W.endObject();
  return Out;
}

bool promotionForStrategy(std::string_view Name, pre::PromotionConfig &Out) {
  if (Name == "conservative")
    Out = pre::PromotionConfig::conservative();
  else if (Name == "baseline")
    Out = pre::PromotionConfig::baselineO3();
  else if (Name == "alat")
    Out = pre::PromotionConfig::alat();
  else
    return false;
  return true;
}

} // namespace

//===----------------------------------------------------------------------===//
// Request parsing and canonicalization
//===----------------------------------------------------------------------===//

/// A fully validated run request. CanonicalKey is the cache identity:
/// a fixed-order rendering of everything the pipeline result depends
/// on. For inline programs that includes the complete canonical module
/// text — the fingerprint only routes to a shard, so two distinct
/// canonicalized programs can never share a cache entry (DESIGN.md §8).
struct ServerCore::RunRequest {
  std::string IdJson = "null"; ///< Echoed request id, already JSON.
  bool IsProgram = false;
  std::string WorkloadName;
  uint64_t TrainScale = 0, RefScale = 0;
  std::string CanonicalProgram; ///< ir::canonicalModuleText of the input.
  PipelineConfig Config;
  std::string ConfigKey;
  std::string CanonicalKey;
};

namespace {

/// Fails with a status-2 body unless \p V (when present) is a boolean;
/// writes it through \p Out.
bool takeBool(const JSONValue &V, bool &Out) {
  if (!V.isBool())
    return false;
  Out = V.asBool();
  return true;
}

bool takeUint(const JSONValue &V, uint64_t &Out) {
  if (!V.isUint())
    return false;
  Out = V.asUint();
  return true;
}

} // namespace

ServerCore::ServerCore(ServeOptions O) : Opts(std::move(O)), Cache(Opts.Cache) {
  if (Opts.Threads == 0) {
    Opts.Threads = std::thread::hardware_concurrency();
    if (Opts.Threads == 0)
      Opts.Threads = 1;
  }
  FreeSlots = Opts.Threads;
}

std::string ServerCore::protocolErrorResponse(std::string_view Message) {
  StatsRegistry::current().add("serve.errors", 1);
  return makeResponse("null", false, nullptr, errorBody(2, Message));
}

std::vector<std::string>
ServerCore::handleBatch(const std::vector<std::string> &Lines) {
  std::vector<std::string> Responses(Lines.size());
  parallelFor(Opts.Threads, Lines.size(), [this, &Lines, &Responses](size_t I) {
    Responses[I] = handle(Lines[I]);
  });
  return Responses;
}

std::string ServerCore::handle(const std::string &Line) {
  StatsRegistry::current().add("serve.requests", 1);
  std::string Response = handleParsed(Line);
  return Response;
}

std::string ServerCore::handleParsed(const std::string &Line) {
  if (Line.size() > Opts.MaxLineBytes)
    return protocolErrorResponse(
        formatString("frame exceeds %zu bytes", Opts.MaxLineBytes));

  JSONValue Doc;
  std::string ParseError;
  if (!parseJSON(Line, Doc, ParseError))
    return protocolErrorResponse("malformed JSON: " + ParseError);
  if (!Doc.isObject())
    return protocolErrorResponse("request must be a JSON object");

  // The id is echoed even on errors found later, so extract it first.
  std::string IdJson = "null";
  if (const JSONValue *Id = Doc.find("id")) {
    if (!Id->isString() || Id->asString().size() > 256)
      return protocolErrorResponse("'id' must be a string of at most "
                                   "256 bytes");
    IdJson = jsonQuoted(Id->asString());
  }
  auto Fail = [&IdJson](int Status, const std::string &Message) {
    StatsRegistry::current().add("serve.errors", 1);
    return makeResponse(IdJson, false, nullptr, errorBody(Status, Message));
  };

  const JSONValue *Op = Doc.find("op");
  if (!Op)
    return Fail(2, "missing 'op'");
  if (!Op->isString())
    return Fail(2, "'op' must be a string");
  const std::string &OpName = Op->asString();

  // Field discipline: every member must be known for the op. Unknown
  // fields are errors, not ignored — a typoed "stratgy" silently
  // falling back to defaults would cache the wrong result under the
  // user's intended meaning.
  static constexpr std::string_view RunFields[] = {
      "id", "op", "workload", "program", "train_scale",
      "ref_scale", "config", "stats"};
  static constexpr std::string_view BareFields[] = {"id", "op"};
  bool IsRun = OpName == "run";
  for (const auto &[Name, Value] : Doc.members()) {
    const auto *Begin = IsRun ? std::begin(RunFields) : std::begin(BareFields);
    const auto *End = IsRun ? std::end(RunFields) : std::end(BareFields);
    if (std::find(Begin, End, std::string_view(Name)) == End)
      return Fail(2, "unknown field '" + Name + "' for op '" + OpName + "'");
  }

  if (OpName == "ping")
    return makeResponse(IdJson, false, nullptr,
                        "{\"status\":0,\"ok\":true,\"pong\":true}");

  if (OpName == "shutdown") {
    requestShutdown();
    return makeResponse(IdJson, false, nullptr,
                        "{\"status\":0,\"ok\":true,\"shutting_down\":true}");
  }

  if (OpName == "stats") {
    // Process-wide totals plus the cache's resident footprint.
    StatsRegistry Combined;
    Combined.merge(StatsRegistry::get());
    ResultCache::Stats CS = Cache.stats();
    Combined.add("serve.cache.resident_bytes", CS.Bytes);
    Combined.add("serve.cache.resident_entries", CS.Entries);
    std::string Body = "{\"status\":0,\"ok\":true,\"stats\":" +
                       statsJson(Combined) + "}";
    return makeResponse(IdJson, false, nullptr, Body);
  }

  if (OpName != "run")
    return Fail(2, "unknown op '" + OpName + "'");

  bool WantStats = false;
  if (const JSONValue *S = Doc.find("stats"))
    if (!takeBool(*S, WantStats))
      return Fail(2, "'stats' must be a boolean");

  RunRequest Req;
  const JSONValue *WorkloadV = Doc.find("workload");
  const JSONValue *ProgramV = Doc.find("program");
  if ((WorkloadV == nullptr) == (ProgramV == nullptr))
    return Fail(2, "exactly one of 'workload' and 'program' is required");

  // -- Configuration ------------------------------------------------------
  std::string Strategy = "alat";
  bool Cascade = false, StA = false, UseProfile = true, Andersen = false;
  uint64_t AlatEntries = 32, AlatWays = 2, AlatTagBits = 20;
  std::vector<std::string> Disabled;
  if (const JSONValue *Cfg = Doc.find("config")) {
    if (!Cfg->isObject())
      return Fail(2, "'config' must be an object");
    for (const auto &[Name, Value] : Cfg->members()) {
      if (Name == "strategy") {
        if (!Value.isString())
          return Fail(2, "'config.strategy' must be a string");
        Strategy = Value.asString();
      } else if (Name == "cascade") {
        if (!takeBool(Value, Cascade))
          return Fail(2, "'config.cascade' must be a boolean");
      } else if (Name == "sta") {
        if (!takeBool(Value, StA))
          return Fail(2, "'config.sta' must be a boolean");
      } else if (Name == "use_profile") {
        if (!takeBool(Value, UseProfile))
          return Fail(2, "'config.use_profile' must be a boolean");
      } else if (Name == "andersen") {
        if (!takeBool(Value, Andersen))
          return Fail(2, "'config.andersen' must be a boolean");
      } else if (Name == "alat_entries") {
        if (!takeUint(Value, AlatEntries) || AlatEntries > 4096)
          return Fail(2, "'config.alat_entries' must be an integer in "
                         "[0, 4096]");
      } else if (Name == "alat_ways") {
        if (!takeUint(Value, AlatWays) || AlatWays > 4096)
          return Fail(2, "'config.alat_ways' must be an integer in "
                         "[0, 4096]");
      } else if (Name == "alat_tag_bits") {
        if (!takeUint(Value, AlatTagBits) || AlatTagBits > 64)
          return Fail(2, "'config.alat_tag_bits' must be an integer in "
                         "[0, 64]");
      } else if (Name == "disable_passes") {
        if (!Value.isArray())
          return Fail(2, "'config.disable_passes' must be an array");
        for (size_t I = 0; I < Value.size(); ++I) {
          if (!Value.at(I).isString())
            return Fail(2, "'config.disable_passes' entries must be strings");
          Disabled.push_back(Value.at(I).asString());
        }
      } else {
        return Fail(2, "unknown field 'config." + Name + "'");
      }
    }
  }

  pre::PromotionConfig Promotion;
  if (!promotionForStrategy(Strategy, Promotion))
    return Fail(2, "unknown strategy '" + Strategy +
                       "' (conservative|baseline|alat)");
  Promotion.EnableCascade = Cascade;
  Promotion.UseStA = StA;

  std::vector<std::string> KnownPasses = standardPassNames();
  std::sort(Disabled.begin(), Disabled.end());
  Disabled.erase(std::unique(Disabled.begin(), Disabled.end()),
                 Disabled.end());
  for (const std::string &Name : Disabled)
    if (std::find(KnownPasses.begin(), KnownPasses.end(), Name) ==
        KnownPasses.end())
      return Fail(2, "unknown pass '" + Name + "' in disable_passes");

  Req.Config = configFor(Promotion);
  Req.Config.Sim.Alat.Entries = static_cast<unsigned>(AlatEntries);
  Req.Config.Sim.Alat.Ways = static_cast<unsigned>(AlatWays);
  Req.Config.Sim.Alat.PartialTagBits = static_cast<unsigned>(AlatTagBits);
  Req.Config.UseAliasProfile = UseProfile;
  Req.Config.UseAndersen = Andersen;
  Req.Config.DisabledPasses = Disabled;
  Req.Config.InterpFuel = Opts.InterpFuel;
  if (std::string Bad = validatePipelineConfig(Req.Config); !Bad.empty())
    return Fail(2, "invalid config: " + Bad);

  // Canonical config key: fixed order, every semantic field. DESIGN.md
  // §8 pins this format — changing it invalidates (not corrupts) every
  // cached entry.
  std::string DisabledJoined;
  for (const std::string &Name : Disabled) {
    if (!DisabledJoined.empty())
      DisabledJoined += '+';
    DisabledJoined += Name;
  }
  Req.ConfigKey = formatString(
      "strategy=%s,cascade=%u,sta=%u,profile=%u,andersen=%u,ae=%llu,aw=%llu,"
      "atb=%llu,fuel=%llu,disable=%s",
      Strategy.c_str(), Cascade ? 1 : 0, StA ? 1 : 0, UseProfile ? 1 : 0,
      Andersen ? 1 : 0, (unsigned long long)AlatEntries,
      (unsigned long long)AlatWays, (unsigned long long)AlatTagBits,
      (unsigned long long)Opts.InterpFuel, DisabledJoined.c_str());

  // -- Target -------------------------------------------------------------
  if (WorkloadV) {
    if (!WorkloadV->isString())
      return Fail(2, "'workload' must be a string");
    Req.WorkloadName = WorkloadV->asString();
    const Workload *Found = nullptr;
    for (const Workload &W : Opts.Workloads)
      if (W.Name == Req.WorkloadName)
        Found = &W;
    if (!Found)
      return Fail(2, "unknown workload '" + Req.WorkloadName + "'");
    Req.TrainScale = Found->TrainScale;
    Req.RefScale = Found->RefScale;
    if (const JSONValue *V = Doc.find("train_scale"))
      if (!takeUint(*V, Req.TrainScale))
        return Fail(2, "'train_scale' must be an unsigned integer");
    if (const JSONValue *V = Doc.find("ref_scale"))
      if (!takeUint(*V, Req.RefScale))
        return Fail(2, "'ref_scale' must be an unsigned integer");
    for (uint64_t Scale : {Req.TrainScale, Req.RefScale})
      if (Scale == 0 || Scale > Opts.MaxScale)
        return Fail(2, formatString("scales must be in [1, %llu]",
                                    (unsigned long long)Opts.MaxScale));
    Req.CanonicalKey =
        formatString("w/%s@%llu:%llu|", Req.WorkloadName.c_str(),
                     (unsigned long long)Req.TrainScale,
                     (unsigned long long)Req.RefScale) +
        Req.ConfigKey;
  } else {
    if (Doc.find("train_scale") || Doc.find("ref_scale"))
      return Fail(2, "scales apply to named workloads, not inline programs");
    if (!ProgramV->isString())
      return Fail(2, "'program' must be a string");
    const std::string &Text = ProgramV->asString();
    if (Text.size() > Opts.MaxProgramBytes)
      return Fail(2, formatString("program exceeds %zu bytes",
                                  Opts.MaxProgramBytes));
    ir::Module M;
    std::string Error;
    if (!ir::parseModule(Text, M, Error))
      return Fail(2, "program parse error: " + Error);
    std::vector<std::string> Errors = ir::verifyModule(M);
    if (!Errors.empty())
      return Fail(2, "program verify error: " + Errors.front());
    Req.IsProgram = true;
    Req.CanonicalProgram = ir::canonicalModuleText(M);
    // The full canonical text rides in the key (after the routing
    // fingerprint) — collision freedom by construction.
    Req.CanonicalKey =
        formatString("p/%016llx|",
                     (unsigned long long)fnv1a64(Req.CanonicalProgram)) +
        Req.ConfigKey + "\n" + Req.CanonicalProgram;
  }

  Req.IdJson = IdJson;
  return runOp(Req, WantStats);
}

std::string ServerCore::runOp(const RunRequest &Req, bool WantStats) {
  // The request's stats epoch: cache probes and (on a miss) the whole
  // pipeline run record into this thread's capture, which merges back
  // into the process totals when it dies. A pipeline runs entirely on
  // the calling thread, so the epoch is exact even while other requests
  // execute concurrently.
  ScopedStatsCapture Capture;

  if (std::optional<std::string> Body = Cache.lookup(Req.CanonicalKey)) {
    std::string Stats;
    if (WantStats)
      Stats = statsJson(Capture.captured());
    return makeResponse(Req.IdJson, /*Cached=*/true,
                        WantStats ? &Stats : nullptr, *Body);
  }

  // Bound in-flight pipeline runs; cache hits above never wait here.
  {
    std::unique_lock<std::mutex> Lock(SlotMutex);
    SlotCv.wait(Lock, [this] { return FreeSlots > 0; });
    --FreeSlots;
  }
  std::string Error;
  int ErrorStatus = 1;
  PipelineResult R = executeRun(Req, Error, ErrorStatus);
  {
    std::lock_guard<std::mutex> Lock(SlotMutex);
    ++FreeSlots;
  }
  SlotCv.notify_one();

  std::string Body;
  if (!Error.empty()) {
    // Failures are answered but never cached: a transient resource
    // condition must not poison repeats of the same key.
    StatsRegistry::current().add("serve.errors", 1);
    Body = errorBody(ErrorStatus, Error);
  } else {
    Body = runBody(R);
    Cache.insert(Req.CanonicalKey, Body);
  }
  std::string Stats;
  if (WantStats)
    Stats = statsJson(Capture.captured());
  return makeResponse(Req.IdJson, /*Cached=*/false,
                      WantStats ? &Stats : nullptr, Body);
}

PipelineResult ServerCore::executeRun(const RunRequest &Req,
                                      std::string &Error, int &ErrorStatus) {
  if (!Req.IsProgram) {
    const Workload *Found = nullptr;
    for (const Workload &W : Opts.Workloads)
      if (W.Name == Req.WorkloadName)
        Found = &W;
    if (!Found) { // validated at parse time; defensive
      ErrorStatus = 2;
      Error = "unknown workload '" + Req.WorkloadName + "'";
      return {};
    }
    Workload W = *Found;
    W.TrainScale = Req.TrainScale;
    W.RefScale = Req.RefScale;
    PipelineResult R = runPipeline(W, Req.Config);
    if (!R.Ok) {
      ErrorStatus = 1;
      Error = R.Error.empty() ? "pipeline failed" : R.Error;
    }
    return R;
  }

  // Inline-program mode mirrors srp-run on a .sir file: the module is
  // profiled and transformed in place, and the train run doubles as the
  // correctness oracle.
  ir::Module M;
  std::string ParseError;
  if (!ir::parseModule(Req.CanonicalProgram, M, ParseError)) {
    ErrorStatus = 2; // canonical text round-trips; defensive
    Error = "program parse error: " + ParseError;
    return {};
  }
  PipelineState S;
  S.External = &M;
  S.Config = Req.Config;
  PassManager PM;
  addStandardPasses(PM);
  if (!PM.run(S)) {
    ErrorStatus = 1;
    Error = S.Result.Error.empty() ? "pipeline failed" : S.Result.Error;
    return std::move(S.Result);
  }
  if (S.HasProfile && S.Result.Output != S.OracleOutput) {
    ErrorStatus = 1;
    Error = "MISCOMPILE: simulated output diverges from the interpreter";
  }
  return std::move(S.Result);
}

//===----------------------------------------------------------------------===//
// Daemon plumbing
//===----------------------------------------------------------------------===//

namespace {

/// Writes all of \p Data to \p Fd; MSG_NOSIGNAL so a client that went
/// away surfaces as EPIPE, not SIGPIPE.
bool sendAll(int Fd, std::string_view Data) {
  while (!Data.empty()) {
    ssize_t N = ::send(Fd, Data.data(), Data.size(), MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Data.remove_prefix(static_cast<size_t>(N));
  }
  return true;
}

int connectTcpOnce(uint16_t Port, std::string &Error) {
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0) {
    Error = formatString("socket: %s", std::strerror(errno));
    return -1;
  }
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(Port);
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    Error = formatString("connect 127.0.0.1:%u: %s", unsigned(Port),
                         std::strerror(errno));
    ::close(Fd);
    return -1;
  }
  return Fd;
}

int connectUnixOnce(const std::string &Path, std::string &Error) {
  sockaddr_un Addr{};
  if (Path.empty() || Path.size() >= sizeof(Addr.sun_path)) {
    Error = "unix socket path empty or too long";
    return -1;
  }
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    Error = formatString("socket: %s", std::strerror(errno));
    return -1;
  }
  Addr.sun_family = AF_UNIX;
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    Error = formatString("connect %s: %s", Path.c_str(), std::strerror(errno));
    ::close(Fd);
    return -1;
  }
  return Fd;
}

} // namespace

int srp::core::listenTcp(uint16_t Port, std::string &Error) {
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0) {
    Error = formatString("socket: %s", std::strerror(errno));
    return -1;
  }
  int One = 1;
  ::setsockopt(Fd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(Port);
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0 ||
      ::listen(Fd, 64) < 0) {
    Error = formatString("bind/listen 127.0.0.1:%u: %s", unsigned(Port),
                         std::strerror(errno));
    ::close(Fd);
    return -1;
  }
  return Fd;
}

int srp::core::listenUnix(const std::string &Path, std::string &Error) {
  sockaddr_un Addr{};
  if (Path.empty() || Path.size() >= sizeof(Addr.sun_path)) {
    Error = "unix socket path empty or too long";
    return -1;
  }
  ::unlink(Path.c_str()); // replace a stale socket file
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    Error = formatString("socket: %s", std::strerror(errno));
    return -1;
  }
  Addr.sun_family = AF_UNIX;
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0 ||
      ::listen(Fd, 64) < 0) {
    Error = formatString("bind/listen %s: %s", Path.c_str(),
                         std::strerror(errno));
    ::close(Fd);
    return -1;
  }
  return Fd;
}

int srp::core::connectToServer(const std::string &Spec, unsigned RetryMs,
                               std::string &Error) {
  bool IsUnix = Spec.rfind("unix:", 0) == 0;
  bool IsTcp = Spec.rfind("tcp:", 0) == 0;
  uint16_t Port = 0;
  std::string Path;
  if (IsUnix) {
    Path = Spec.substr(5);
  } else if (IsTcp) {
    unsigned long Value = 0;
    const std::string Digits = Spec.substr(4);
    if (Digits.empty() ||
        Digits.find_first_not_of("0123456789") != std::string::npos ||
        (Value = std::stoul(Digits)) == 0 || Value > 65535) {
      Error = "tcp port must be in [1, 65535]: " + Spec;
      return -1;
    }
    Port = static_cast<uint16_t>(Value);
  } else {
    Error = "endpoint must be unix:PATH or tcp:PORT, got '" + Spec + "'";
    return -1;
  }

  for (unsigned WaitedMs = 0;; WaitedMs += 10) {
    std::string Attempt;
    int Fd = IsUnix ? connectUnixOnce(Path, Attempt)
                    : connectTcpOnce(Port, Attempt);
    if (Fd >= 0)
      return Fd;
    if (WaitedMs >= RetryMs) {
      Error = Attempt;
      return -1;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

void srp::core::serveConnection(ServerCore &Core, int Fd) {
  LineSplitter Splitter(Core.options().MaxLineBytes);
  std::vector<char> Buf(64u << 10);
  while (!Core.shutdownRequested()) {
    ssize_t N = ::recv(Fd, Buf.data(), Buf.size(), 0);
    if (N < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)
        continue; // SO_RCVTIMEO tick: recheck shutdown
      break;
    }

    std::vector<std::string> Responses;
    if (N > 0) {
      std::vector<std::string> Frames;
      size_t Dropped =
          Splitter.feed(std::string_view(Buf.data(), size_t(N)), Frames);
      Responses = Core.handleBatch(Frames);
      // Dropped frames carried no parseable id; their error responses
      // follow the batch.
      for (size_t I = 0; I < Dropped; ++I)
        Responses.push_back(Core.protocolErrorResponse(formatString(
            "frame exceeds %zu bytes", Core.options().MaxLineBytes)));
    } else {
      // Peer half-closed. A frame cut short still gets its documented
      // error response before we close.
      std::string Partial;
      if (Splitter.finish(Partial))
        Responses.push_back(Core.protocolErrorResponse(
            "connection closed mid-frame (missing final newline)"));
    }

    bool WriteOk = true;
    for (std::string &R : Responses) {
      R += '\n';
      if (!sendAll(Fd, R)) {
        WriteOk = false;
        break;
      }
    }
    if (N == 0 || !WriteOk)
      break;
  }
  ::close(Fd);
}

int srp::core::runSocketServer(ServerCore &Core, int ListenFd) {
  std::vector<std::thread> Connections;
  int Ret = 0;
  while (!Core.shutdownRequested()) {
    pollfd P{ListenFd, POLLIN, 0};
    int R = ::poll(&P, 1, /*timeout ms=*/200);
    if (R < 0) {
      if (errno == EINTR)
        continue;
      Ret = 1;
      break;
    }
    if (R == 0)
      continue; // timeout tick: recheck shutdown
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED)
        continue;
      Ret = 1;
      break;
    }
    // A receive timeout turns blocked connection threads into 200ms
    // pollers of the shutdown flag, so join() below always returns.
    timeval Tv{};
    Tv.tv_usec = 200'000;
    ::setsockopt(Fd, SOL_SOCKET, SO_RCVTIMEO, &Tv, sizeof(Tv));
    Connections.emplace_back([&Core, Fd] { serveConnection(Core, Fd); });
  }
  ::close(ListenFd);
  for (std::thread &T : Connections)
    T.join();
  return Ret;
}

int srp::core::runStdioServer(ServerCore &Core, std::FILE *In,
                              std::FILE *Out) {
  LineSplitter Splitter(Core.options().MaxLineBytes);
  std::vector<char> Buf(256u << 10);
  int InFd = fileno(In);
  while (!Core.shutdownRequested()) {
    // read(2), not fread: deliver whatever is available so pipelined
    // frames batch onto the pool instead of trickling one at a time.
    ssize_t N = ::read(InFd, Buf.data(), Buf.size());
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return 1;
    }

    std::vector<std::string> Responses;
    if (N > 0) {
      std::vector<std::string> Frames;
      size_t Dropped =
          Splitter.feed(std::string_view(Buf.data(), size_t(N)), Frames);
      Responses = Core.handleBatch(Frames);
      for (size_t I = 0; I < Dropped; ++I)
        Responses.push_back(Core.protocolErrorResponse(formatString(
            "frame exceeds %zu bytes", Core.options().MaxLineBytes)));
    } else {
      std::string Partial;
      if (Splitter.finish(Partial))
        Responses.push_back(Core.protocolErrorResponse(
            "input ended mid-frame (missing final newline)"));
    }

    for (const std::string &R : Responses) {
      std::fwrite(R.data(), 1, R.size(), Out);
      std::fputc('\n', Out);
    }
    std::fflush(Out);
    if (N == 0)
      break;
  }
  return 0;
}
