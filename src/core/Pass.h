//===- Pass.h - Pass interface and pass manager -----------------*- C++ -*-===//
//
// Part of the srp-alat project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The pipeline as an explicit pass composition. A Pass is one named,
/// individually timeable and disableable step of the paper's flow
/// (profile → promote → verify → lower → allocate → simulate); the
/// PassManager runs a sequence of them over a PipelineState, recording
/// per-pass wall time into PipelineResult::Timings and the process-wide
/// StatsRegistry, and honouring PipelineConfig::DisabledPasses.
///
/// PipelineState carries everything the passes hand to each other:
/// the modules, the profiles, the alias analysis, the machine module,
/// and — via ssa::AnalysisCache — the per-function analyses (dominators,
/// loop info) that non-mutating passes share. The cache, like the whole
/// state, is per-pipeline: the parallel experiment driver
/// (core::runExperiments) runs one PipelineState per worker with no
/// shared mutable data, which is what makes its results independent of
/// the thread count.
///
/// Two input modes, selected by which field of PipelineState is set:
///  * workload mode (W): the evaluation flow — build the train module,
///    profile it, rebuild at ref scale, remap the profiles, promote,
///    simulate (used by runPipeline and the benches);
///  * module mode (External): an existing module is profiled and
///    transformed in place, and the train run doubles as the oracle
///    (used by srp-run on .sir files).
///
//===----------------------------------------------------------------------===//

#ifndef SRP_CORE_PASS_H
#define SRP_CORE_PASS_H

#include "core/Pipeline.h"
#include "core/ProfileCache.h"

#include "alias/AliasAnalysis.h"
#include "codegen/MIR.h"
#include "interp/Profile.h"
#include "ir/CFG.h"
#include "ssa/AnalysisCache.h"

#include <functional>
#include <memory>
#include <string_view>

namespace srp::core {

/// The state a pipeline run threads through its passes. Self-contained:
/// holds its own modules, profiles, and analysis cache, so concurrent
/// pipelines never share mutable data.
struct PipelineState {
  // Inputs — exactly one of W (workload mode) / External (module mode).
  const Workload *W = nullptr;
  ir::Module *External = nullptr;
  PipelineConfig Config;
  /// Optional, workload mode: memoized train-run profiles shared across
  /// the pipelines of one experiment grid (see ProfileCache.h). Null
  /// runs the train interpretation unconditionally.
  ProfileCache *ProfCache = nullptr;

  // Intermediate products, owned here. In workload mode RefModule is the
  // module being compiled; module mode transforms *External in place.
  ir::Module TrainModule;
  ir::Module RefModule;
  /// Profiles keyed to module()'s functions (the profile pass remaps
  /// train-module keys in workload mode).
  interp::AliasProfile AliasProf;
  interp::EdgeProfile EdgeProf;
  bool HasProfile = false; ///< profile pass ran (it may be disabled)
  std::unique_ptr<alias::AliasAnalysis> AA;
  ssa::AnalysisCache Analyses;
  std::unique_ptr<codegen::MModule> MM;
  /// Module mode only: the train run's output (the correctness oracle).
  std::vector<std::string> OracleOutput;

  PipelineResult Result;

  /// The module the compiling passes operate on.
  ir::Module &module() { return External ? *External : RefModule; }
};

/// One named step of the pipeline.
class Pass {
public:
  virtual ~Pass() = default;

  /// Stable identifier, used by --disable-pass, --timing and the
  /// `srp-run passes` listing.
  virtual std::string_view name() const = 0;

  /// One-line description for the `srp-run passes` listing.
  virtual std::string_view description() const = 0;

  /// Whether the pass transforms IR. Mutating passes own precise cache
  /// maintenance: they must call S.Analyses.invalidate(F) for every
  /// function they change (the manager no longer flushes the cache on
  /// this boundary — sibling functions stay cached).
  virtual bool mutatesIR() const { return false; }

  /// Runs the pass. On failure returns false with
  /// \p S.Result.Error set to a diagnostic.
  virtual bool run(PipelineState &S) = 0;
};

/// Runs an ordered pass sequence over one PipelineState.
class PassManager {
public:
  /// Called after each pass that ran (not after disabled ones); lets
  /// drivers attach reporting such as srp-run's --print-ir.
  using PassCallback = std::function<void(const Pass &, PipelineState &)>;

  void add(std::unique_ptr<Pass> P) { Passes.push_back(std::move(P)); }

  /// Registered pass names, in run order.
  std::vector<std::string> passNames() const;

  /// The pass named \p Name, or null.
  const Pass *find(std::string_view Name) const;

  /// Runs every pass not listed in S.Config.DisabledPasses, in order.
  /// Each pass's wall time is appended to S.Result.Timings and added to
  /// StatsRegistry under "pass.<name>.us". Stops at the first failing
  /// pass (S.Result.Error names it); on success sets S.Result.Ok.
  bool run(PipelineState &S, const PassCallback &AfterPass = nullptr);

private:
  std::vector<std::unique_ptr<Pass>> Passes;
};

/// Registers the standard pipeline (see DESIGN.md §3a):
/// build, profile, promote, specverify, lower, regalloc, simulate.
void addStandardPasses(PassManager &PM);

/// Names of the standard passes, in run order.
std::vector<std::string> standardPassNames();

} // namespace srp::core

#endif // SRP_CORE_PASS_H
