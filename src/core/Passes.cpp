//===- Passes.cpp - The standard pipeline passes -------------------------------===//
//
// The paper's evaluation flow (§4) as individual passes. Each pass is the
// verbatim successor of one phase of the old monolithic runPipeline; the
// behavioural contract (verification points, error messages, profile
// remapping) is unchanged.
//
//===----------------------------------------------------------------------===//

#include "core/Pass.h"

#include "alias/AliasAnalysis.h"
#include "alias/Andersen.h"
#include "codegen/Lowering.h"
#include "interp/Interpreter.h"
#include "ir/Verifier.h"
#include "pre/Promoter.h"

#include <algorithm>

using namespace srp;
using namespace srp::core;

namespace {

/// Builds (workload mode) or adopts (module mode) the modules and
/// verifies them. Workload mode also checks the documented contract that
/// the train and ref builds have the same code shape.
class BuildPass final : public Pass {
public:
  std::string_view name() const override { return "build"; }
  std::string_view description() const override {
    return "construct and verify the train and ref modules";
  }
  bool run(PipelineState &S) override {
    std::string ConfigError = validatePipelineConfig(S.Config);
    if (!ConfigError.empty()) {
      S.Result.Error = "invalid pipeline config: " + ConfigError;
      return false;
    }
    if (S.External) {
      for (unsigned I = 0; I < S.External->numFunctions(); ++I)
        S.External->function(I)->recomputeCFG();
      std::vector<std::string> Errors = ir::verifyModule(*S.External);
      if (!Errors.empty()) {
        S.Result.Error = "module verification failed: " + Errors[0];
        return false;
      }
      return true;
    }
    const Workload &W = *S.W;
    W.Build(S.TrainModule, W.TrainScale);
    for (unsigned I = 0; I < S.TrainModule.numFunctions(); ++I)
      S.TrainModule.function(I)->recomputeCFG();
    {
      std::vector<std::string> Errors = ir::verifyModule(S.TrainModule);
      if (!Errors.empty()) {
        S.Result.Error = "train module verification failed: " + Errors[0];
        return false;
      }
    }
    // The paper compiles one binary with train feedback and measures the
    // ref input. Build(M, Scale) bakes the input scale into the program
    // as data, so the ref module is a fresh build whose *code shape* is
    // identical (a documented Workload contract, checked here and per
    // function by the profile pass).
    W.Build(S.RefModule, W.RefScale);
    for (unsigned I = 0; I < S.RefModule.numFunctions(); ++I)
      S.RefModule.function(I)->recomputeCFG();
    std::vector<std::string> Errors = ir::verifyModule(S.RefModule);
    if (!Errors.empty()) {
      S.Result.Error = "ref module verification failed: " + Errors[0];
      return false;
    }
    if (S.RefModule.numFunctions() != S.TrainModule.numFunctions()) {
      S.Result.Error = "workload changes shape across scales";
      return false;
    }
    return true;
  }
};

/// Runs the interpreter on the train input collecting alias and edge
/// profiles. Workload mode remaps the profile keys onto the ref module
/// (same function index, same statement ids); module mode profiles the
/// module in place and keeps the run's output as the correctness oracle.
class ProfilePass final : public Pass {
public:
  std::string_view name() const override { return "profile"; }
  std::string_view description() const override {
    return "interpret the train input, collect alias and edge profiles";
  }
  bool run(PipelineState &S) override {
    if (S.External) {
      interp::Interpreter Interp(*S.External);
      Interp.setAliasProfile(&S.AliasProf);
      Interp.setEdgeProfile(&S.EdgeProf);
      interp::RunResult R = Interp.run(S.Config.InterpFuel);
      if (!R.Ok) {
        S.Result.Error = "train run failed: " + R.Error;
        return false;
      }
      S.OracleOutput = std::move(R.Output);
      S.HasProfile = true;
      return true;
    }
    // The train run depends only on (workload, train scale, fuel) — the
    // promotion config has not entered the pipeline yet — so the grid's
    // configs of one workload share a memoized id-space snapshot of it
    // (ProfileCache.h) when the driver provides a cache.
    std::shared_ptr<const ProfileSnapshot> Snap;
    std::string Key;
    if (S.ProfCache) {
      Key = std::string(S.W->Name) + "#" + std::to_string(S.W->TrainScale) +
            "#" + std::to_string(S.Config.InterpFuel);
      Snap = S.ProfCache->lookup(Key);
    }
    if (!Snap) {
      interp::AliasProfile TrainAP;
      interp::EdgeProfile TrainEP;
      {
        interp::Interpreter Interp(S.TrainModule);
        Interp.setAliasProfile(&TrainAP);
        Interp.setEdgeProfile(&TrainEP);
        interp::RunResult R = Interp.run(S.Config.InterpFuel);
        if (!R.Ok) {
          S.Result.Error = "train run failed: " + R.Error;
          return false;
        }
      }
      auto NewSnap = std::make_shared<ProfileSnapshot>();
      for (unsigned FI = 0; FI < S.TrainModule.numFunctions(); ++FI) {
        const ir::Function *TrainF = S.TrainModule.function(FI);
        NewSnap->FuncNumBlocks.push_back(TrainF->numBlocks());
        for (unsigned BI = 0; BI < TrainF->numBlocks(); ++BI) {
          const ir::BasicBlock *TB = TrainF->block(BI);
          ProfileSnapshot::BlockEntry BE{FI, BI, TrainEP.blockCount(TB), {}};
          for (size_t SI = 0; SI < TB->succs().size(); ++SI)
            BE.SuccCounts.push_back(TrainEP.edgeCount(TB, TB->succs()[SI]));
          NewSnap->Blocks.push_back(std::move(BE));
          for (size_t SI = 0; SI < TB->size(); ++SI) {
            const ir::Stmt *TS = TB->stmt(SI);
            for (unsigned Level = 1; Level <= TS->Ref.Depth; ++Level) {
              const std::set<unsigned> *Targets =
                  TrainAP.targets(TrainF, TS->Id, Level);
              if (!Targets)
                continue;
              NewSnap->Alias.push_back(
                  {FI, BI, static_cast<unsigned>(SI), Level,
                   std::vector<unsigned>(Targets->begin(), Targets->end())});
            }
          }
        }
      }
      if (S.ProfCache)
        Snap = S.ProfCache->insert(Key, std::move(NewSnap));
      else
        Snap = std::move(NewSnap);
    }
    // Rebind the snapshot onto the ref module (same function index, same
    // block index, same statement position — exactly what the previous
    // pointer-space remap transferred).
    for (unsigned FI = 0; FI < S.RefModule.numFunctions(); ++FI)
      if (FI >= Snap->FuncNumBlocks.size() ||
          Snap->FuncNumBlocks[FI] != S.RefModule.function(FI)->numBlocks()) {
        S.Result.Error = "workload changes CFG shape across scales";
        return false;
      }
    for (const ProfileSnapshot::BlockEntry &BE : Snap->Blocks) {
      const ir::Function *RefF = S.RefModule.function(BE.FuncIdx);
      const ir::BasicBlock *RB = RefF->block(BE.BlockIdx);
      S.EdgeProf.addBlockCount(RB, BE.Count);
      for (size_t SI = 0;
           SI < BE.SuccCounts.size() && SI < RB->succs().size(); ++SI)
        S.EdgeProf.addEdgeCount(RB, RB->succs()[SI], BE.SuccCounts[SI]);
    }
    for (const ProfileSnapshot::AliasEntry &AE : Snap->Alias) {
      const ir::Function *RefF = S.RefModule.function(AE.FuncIdx);
      const ir::BasicBlock *RB = RefF->block(AE.BlockIdx);
      if (AE.StmtPos >= RB->size())
        continue;
      unsigned StmtId = RB->stmt(AE.StmtPos)->Id;
      for (unsigned Sym : AE.Symbols)
        S.AliasProf.recordTarget(RefF, StmtId, AE.Level, Sym);
    }
    S.HasProfile = true;
    return true;
  }
};

/// Constructs the alias analysis and runs SSAPRE-based promotion under
/// the configured strategy, drawing dominators and loops from the
/// pipeline's analysis cache.
class PromotePass final : public Pass {
public:
  std::string_view name() const override { return "promote"; }
  std::string_view description() const override {
    return "speculative register promotion (SSAPRE over HSSA)";
  }
  bool mutatesIR() const override { return true; }
  bool run(PipelineState &S) override {
    ir::Module &M = S.module();
    if (S.Config.UseAndersen)
      S.AA = std::make_unique<alias::AndersenAnalysis>(M);
    else
      S.AA = std::make_unique<alias::SteensgaardAnalysis>(M);
    const interp::AliasProfile *AP =
        (S.HasProfile && S.Config.UseAliasProfile) ? &S.AliasProf : nullptr;
    const interp::EdgeProfile *EP =
        (S.HasProfile && S.Config.UseEdgeProfile) ? &S.EdgeProf : nullptr;
    S.Result.Promotion = pre::promoteModule(M, *S.AA, AP, EP,
                                            S.Config.Promotion, &S.Analyses);
    std::vector<std::string> Errors = ir::verifyModule(M);
    if (!Errors.empty()) {
      S.Result.Error = "post-promotion verification failed: " + Errors[0];
      return false;
    }
    return true;
  }
};

/// Statically checks the speculation discipline of the (promoted) IR.
class SpecVerifyPass final : public Pass {
public:
  std::string_view name() const override { return "specverify"; }
  std::string_view description() const override {
    return "static speculation-safety verification";
  }
  bool run(PipelineState &S) override {
    if (S.Config.SpecVerify == SpecVerifyMode::Off)
      return true;
    ir::Module &M = S.module();
    // The promoter's analysis is reused when available (promotion adds no
    // memory objects, so the verdicts agree); with the promote pass
    // disabled a fresh Steensgaard result serves.
    if (!S.AA)
      S.AA = std::make_unique<alias::SteensgaardAnalysis>(M);
    analysis::SpecVerifyConfig SVC;
    SVC.AlatEntries = S.Config.Sim.Alat.Entries;
    SVC.AA = S.AA.get();
    S.Result.SpecDiags = analysis::verifySpeculation(M, SVC);
    if (S.Config.SpecVerify == SpecVerifyMode::Fatal &&
        analysis::hasSpecErrors(S.Result.SpecDiags)) {
      for (const analysis::SpecDiag &D : S.Result.SpecDiags)
        if (D.Severity == analysis::SpecDiagSeverity::Error) {
          S.Result.Error = "speculation verification failed: " +
                           analysis::formatSpecDiag(D);
          return false;
        }
    }
    return true;
  }
};

/// Secret-taint dataflow over the (promoted) IR: flags speculative paths
/// where a secret-derived value reaches an address computation, branch
/// condition or output before its check commits. Free when the module
/// declares no secret symbols.
class TaintFlowPass final : public Pass {
public:
  std::string_view name() const override { return "taintflow"; }
  std::string_view description() const override {
    return "speculative secret-taint dataflow";
  }
  bool run(PipelineState &S) override {
    if (S.Config.TaintCheck == SpecVerifyMode::Off)
      return true;
    ir::Module &M = S.module();
    bool AnySecret = false;
    for (unsigned I = 0, E = M.numSymbols(); I != E; ++I)
      AnySecret |= M.symbol(I)->Secret;
    if (!AnySecret)
      return true;
    if (!S.AA)
      S.AA = std::make_unique<alias::SteensgaardAnalysis>(M);
    analysis::TaintFlowConfig TFC;
    TFC.AA = S.AA.get();
    TFC.Cache = &S.Analyses;
    analysis::TaintFlow TF(M, TFC);
    S.Result.TaintDiags = TF.diags();
    if (S.Config.TaintCheck == SpecVerifyMode::Fatal &&
        !S.Result.TaintDiags.empty()) {
      S.Result.Error = "taint verification failed: " +
                       analysis::formatTaintDiag(S.Result.TaintDiags[0]);
      return false;
    }
    return true;
  }
};

/// Lowers the promoted IR to ITA machine code (virtual registers).
class LowerPass final : public Pass {
public:
  std::string_view name() const override { return "lower"; }
  std::string_view description() const override {
    return "lower IR to ITA machine code";
  }
  bool run(PipelineState &S) override {
    S.MM = codegen::lowerModule(S.module());
    return true;
  }
};

/// Register allocation over the machine module.
class RegAllocPass final : public Pass {
public:
  std::string_view name() const override { return "regalloc"; }
  std::string_view description() const override {
    return "allocate stacked registers, record frame sizes";
  }
  bool run(PipelineState &S) override {
    if (!S.MM) {
      S.Result.Error = "regalloc: no machine module (lower disabled?)";
      return false;
    }
    S.Result.RegAlloc = codegen::allocateRegisters(*S.MM, S.Config.RegAlloc);
    for (unsigned FI = 0; FI < S.MM->numFunctions(); ++FI)
      S.Result.MaxStackedRegs = std::max(
          S.Result.MaxStackedRegs, S.MM->function(FI)->StackedRegsUsed);
    return true;
  }
};

/// Runs the ITA simulator on the ref input and records the counters.
class SimulatePass final : public Pass {
public:
  std::string_view name() const override { return "simulate"; }
  std::string_view description() const override {
    return "simulate the ref input on the ITA model";
  }
  bool run(PipelineState &S) override {
    if (!S.MM) {
      S.Result.Error = "simulate: no machine module (lower disabled?)";
      return false;
    }
    S.Result.Sim = arch::simulate(*S.MM, S.Config.Sim);
    if (!S.Result.Sim.Ok) {
      S.Result.Error = "simulation failed: " + S.Result.Sim.Error;
      return false;
    }
    S.Result.Output = S.Result.Sim.Output;
    return true;
  }
};

} // namespace

void srp::core::addStandardPasses(PassManager &PM) {
  PM.add(std::make_unique<BuildPass>());
  PM.add(std::make_unique<ProfilePass>());
  PM.add(std::make_unique<PromotePass>());
  PM.add(std::make_unique<SpecVerifyPass>());
  PM.add(std::make_unique<TaintFlowPass>());
  PM.add(std::make_unique<LowerPass>());
  PM.add(std::make_unique<RegAllocPass>());
  PM.add(std::make_unique<SimulatePass>());
}

std::vector<std::string> srp::core::standardPassNames() {
  PassManager PM;
  addStandardPasses(PM);
  return PM.passNames();
}
