//===- ResultCache.cpp - Content-addressed pipeline result cache ---------------===//

#include "core/ResultCache.h"

#include "support/Hash.h"
#include "support/Stats.h"

#include <algorithm>

using namespace srp;
using namespace srp::core;

ResultCache::ResultCache(const ResultCacheConfig &Config) {
  unsigned NumShards = std::max(1u, Config.Shards);
  ShardBudget = std::max<size_t>(1, Config.ByteBudget / NumShards);
  Shards.reserve(NumShards);
  for (unsigned I = 0; I < NumShards; ++I)
    Shards.push_back(std::make_unique<Shard>());
}

ResultCache::Shard &ResultCache::shardFor(std::string_view Key) {
  return *Shards[fnv1a64(Key) % Shards.size()];
}

std::optional<std::string> ResultCache::lookup(std::string_view Key) {
  Shard &S = shardFor(Key);
  std::lock_guard<std::mutex> Lock(S.Mutex);
  auto It = S.Index.find(Key);
  if (It == S.Index.end()) {
    ++S.Misses;
    StatsRegistry::current().add("serve.cache.misses", 1);
    return std::nullopt;
  }
  // Full-key equality is the map's own contract (string_view keys over
  // the stored Entry::Key), so a hash collision can only have put two
  // entries in one shard — never returned the wrong one.
  S.Lru.splice(S.Lru.begin(), S.Lru, It->second);
  ++S.Hits;
  StatsRegistry::current().add("serve.cache.hits", 1);
  return It->second->Body;
}

void ResultCache::insert(std::string_view Key, std::string Body) {
  Shard &S = shardFor(Key);
  std::lock_guard<std::mutex> Lock(S.Mutex);

  auto It = S.Index.find(Key);
  if (It != S.Index.end()) {
    S.Bytes -= It->second->bytes();
    It->second->Body = std::move(Body);
    S.Bytes += It->second->bytes();
    S.Lru.splice(S.Lru.begin(), S.Lru, It->second);
  } else {
    if (Key.size() + Body.size() > ShardBudget) {
      ++S.Uncacheable;
      StatsRegistry::current().add("serve.cache.uncacheable", 1);
      return;
    }
    S.Lru.push_front(Entry{std::string(Key), std::move(Body)});
    S.Bytes += S.Lru.front().bytes();
    S.Index.emplace(std::string_view(S.Lru.front().Key), S.Lru.begin());
    ++S.Insertions;
    StatsRegistry::current().add("serve.cache.insertions", 1);
  }

  while (S.Bytes > ShardBudget && !S.Lru.empty()) {
    // Fresh inserts fit the budget alone (checked above), so eviction
    // stops before reaching the front; a replace that grew an entry past
    // the whole budget may evict everything, itself included.
    Entry &Victim = S.Lru.back();
    S.Bytes -= Victim.bytes();
    S.Index.erase(std::string_view(Victim.Key));
    S.Lru.pop_back();
    ++S.Evictions;
    StatsRegistry::current().add("serve.cache.evictions", 1);
  }
}

ResultCache::Stats ResultCache::stats() const {
  Stats Total;
  for (const std::unique_ptr<Shard> &S : Shards) {
    std::lock_guard<std::mutex> Lock(S->Mutex);
    Total.Hits += S->Hits;
    Total.Misses += S->Misses;
    Total.Evictions += S->Evictions;
    Total.Insertions += S->Insertions;
    Total.Uncacheable += S->Uncacheable;
    Total.Bytes += S->Bytes;
    Total.Entries += S->Lru.size();
  }
  return Total;
}

void ResultCache::clear() {
  for (const std::unique_ptr<Shard> &S : Shards) {
    std::lock_guard<std::mutex> Lock(S->Mutex);
    S->Index.clear();
    S->Lru.clear();
    S->Bytes = 0;
  }
}
