//===- Pipeline.h - The speculative register promotion pipeline -*- C++ -*-===//
//
// Part of the srp-alat project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The end-to-end flow of the paper's evaluation (§4): run a module on
/// its *train* input collecting alias and edge profiles, apply PRE-based
/// register promotion under a chosen strategy, lower to ITA machine code,
/// and simulate the *ref* input, reporting the pfmon-style counters.
///
/// The usual experiment runs the same workload under two or more
/// strategies and compares counters — runExperiment() packages that.
///
//===----------------------------------------------------------------------===//

#ifndef SRP_CORE_PIPELINE_H
#define SRP_CORE_PIPELINE_H

#include "analysis/SpecVerifier.h"
#include "analysis/TaintFlow.h"
#include "arch/Simulator.h"
#include "codegen/RegAlloc.h"
#include "pre/Promotion.h"

#include <functional>
#include <string>
#include <vector>

namespace srp::ir {
class Module;
} // namespace srp::ir

namespace srp::core {

/// A workload is a builder producing a fresh module for a given input
/// scale (the pipeline compiles the train build and the ref build
/// separately, exactly like a profile-feedback compiler would).
struct Workload {
  std::string Name;
  /// Builds the program; \p Scale selects the input size.
  std::function<void(ir::Module &, uint64_t Scale)> Build;
  uint64_t TrainScale = 1;
  uint64_t RefScale = 4;
  bool FloatingPoint = false; ///< FP-dominated (ammp/art/equake class).
};

/// How the pipeline treats analysis::SpecVerifier findings on the
/// promoted IR. Warn collects them in PipelineResult::SpecDiags; Fatal
/// additionally fails the pipeline on any error-severity finding (tests
/// run Fatal; benches keep Warn so geometry ablations that provoke the
/// capacity lint still measure).
enum class SpecVerifyMode : uint8_t { Off, Warn, Fatal };

/// Everything the pipeline can be configured with.
struct PipelineConfig {
  pre::PromotionConfig Promotion;
  arch::SimConfig Sim;
  codegen::RegAllocOptions RegAlloc;
  SpecVerifyMode SpecVerify = SpecVerifyMode::Warn;
  /// How the taintflow pass treats analysis::TaintFlow findings on the
  /// promoted IR of a secret-labeled module (same scale as SpecVerify;
  /// the pass is a cheap no-op when the module declares no secrets).
  SpecVerifyMode TaintCheck = SpecVerifyMode::Warn;
  bool UseAliasProfile = true; ///< Feed the train alias profile back.
  bool UseEdgeProfile = true;
  /// Use the inclusion-based Andersen analysis instead of Steensgaard
  /// (the precision ablation: how much would a better static analysis
  /// already buy without speculation?).
  bool UseAndersen = false;
  uint64_t InterpFuel = 400'000'000;
  /// Pass names the manager skips (srp-run --disable-pass plumbing; see
  /// core/Pass.h for the standard names). Disabling a pass a later pass
  /// depends on fails that later pass with a diagnostic, not a crash.
  std::vector<std::string> DisabledPasses;
};

/// One compiled-and-simulated run.
struct PipelineResult {
  bool Ok = false;
  std::string Error;
  std::vector<std::string> Output;   ///< Simulated program output.
  arch::SimResult Sim;               ///< Counters etc.
  pre::PromotionStats Promotion;     ///< What the compiler did.
  codegen::RegAllocStats RegAlloc;
  unsigned MaxStackedRegs = 0;       ///< Largest register-stack frame.
  /// SpecVerifier findings on the promoted IR (empty when SpecVerify is
  /// Off or the discipline holds).
  std::vector<analysis::SpecDiag> SpecDiags;
  /// TaintFlow findings on the promoted IR (empty when TaintCheck is Off
  /// or no speculative secret reaches a sink).
  std::vector<analysis::TaintDiag> TaintDiags;
  /// Wall time of each pass that ran, in run order (--timing reporting).
  /// Not a counter: timings vary run to run, so determinism comparisons
  /// must ignore this field.
  struct PassTiming {
    std::string Name;
    uint64_t Micros = 0;
  };
  std::vector<PassTiming> Timings;
};

class ProfileCache; // ProfileCache.h

/// Compiles \p W with \p Config and simulates the ref input. The module
/// is rebuilt from scratch for both the train and ref phases. \p PC, if
/// given, memoizes the train-run profile across pipelines of the same
/// workload (ProfileCache.h).
PipelineResult runPipeline(const Workload &W, const PipelineConfig &Config,
                           ProfileCache *PC = nullptr);

/// Runs the interpreter directly on the ref build (the oracle).
std::vector<std::string> oracleOutput(const Workload &W, uint64_t Fuel =
                                                             400'000'000);

/// Convenience: builds a PipelineConfig for one of the paper's three
/// strategies with everything else at defaults.
PipelineConfig configFor(const pre::PromotionConfig &Promotion);

/// Checks \p Config for values the pipeline cannot run with (zero-entry
/// ALAT, more ways than entries, degenerate tag widths, zero fuel, ...).
/// Returns an empty string when valid, else a diagnostic. BuildPass runs
/// this first, so a bad config fails the pipeline with
/// PipelineResult::Error instead of tripping an assert deep in the
/// simulator — user-facing tools (srp-run, srp-fuzz) rely on that.
std::string validatePipelineConfig(const PipelineConfig &Config);

} // namespace srp::core

#endif // SRP_CORE_PIPELINE_H
