//===- Experiment.cpp - Parallel workload×strategy driver ---------------------===//

#include "core/Experiment.h"

#include "core/ProfileCache.h"

#include <atomic>
#include <thread>
#include <vector>

using namespace srp;
using namespace srp::core;

// Work-stealing by atomic index: the schedule (which worker runs which
// index) is nondeterministic; determinism is the callback's contract —
// each invocation owns all its state and deposits into its own slot.
void srp::core::parallelFor(unsigned Threads, size_t N,
                            const std::function<void(size_t)> &Fn) {
  std::atomic<size_t> Next{0};
  auto Worker = [&Next, &Fn, N] {
    for (;;) {
      size_t I = Next.fetch_add(1, std::memory_order_relaxed);
      if (I >= N)
        return;
      Fn(I);
    }
  };

  size_t NumWorkers = Threads > 1 ? std::min<size_t>(Threads, N) : 1;
  if (NumWorkers <= 1) {
    Worker();
    return;
  }
  std::vector<std::thread> Pool;
  Pool.reserve(NumWorkers);
  for (size_t T = 0; T < NumWorkers; ++T)
    Pool.emplace_back(Worker);
  for (std::thread &T : Pool)
    T.join();
}

std::vector<PipelineResult>
srp::core::runExperiments(const std::vector<Experiment> &Exps,
                          const ExperimentOptions &Opts) {
  std::vector<PipelineResult> Results(Exps.size());
  // One profile cache for the whole grid: every config of a workload
  // shares the memoized train run (deterministic at any thread count,
  // see ProfileCache.h).
  ProfileCache PC;
  parallelFor(Opts.Threads, Exps.size(), [&Exps, &Results, &Opts, &PC](size_t I) {
    const Experiment &E = Exps[I];
    PipelineResult R = runPipeline(*E.W, E.Config, &PC);
    if (Opts.CheckOracle && R.Ok &&
        R.Output != oracleOutput(*E.W, E.Config.InterpFuel)) {
      R.Ok = false;
      R.Error = "simulated output diverges from the interpreter oracle";
    }
    Results[I] = std::move(R);
  });
  return Results;
}
