//===- Experiment.cpp - Parallel workload×strategy driver ---------------------===//

#include "core/Experiment.h"

#include <atomic>
#include <thread>
#include <vector>

using namespace srp;
using namespace srp::core;

std::vector<PipelineResult>
srp::core::runExperiments(const std::vector<Experiment> &Exps,
                          const ExperimentOptions &Opts) {
  std::vector<PipelineResult> Results(Exps.size());
  std::atomic<size_t> Next{0};

  // Work-stealing by atomic index: the schedule (which worker runs which
  // experiment) is nondeterministic, the results are not — each pipeline
  // owns all its state and deposits into its own slot.
  auto Worker = [&Exps, &Results, &Next, &Opts] {
    for (;;) {
      size_t I = Next.fetch_add(1, std::memory_order_relaxed);
      if (I >= Exps.size())
        return;
      const Experiment &E = Exps[I];
      PipelineResult R = runPipeline(*E.W, E.Config);
      if (Opts.CheckOracle && R.Ok &&
          R.Output != oracleOutput(*E.W, E.Config.InterpFuel)) {
        R.Ok = false;
        R.Error = "simulated output diverges from the interpreter oracle";
      }
      Results[I] = std::move(R);
    }
  };

  size_t NumWorkers = Opts.Threads > 1
                          ? std::min<size_t>(Opts.Threads, Exps.size())
                          : 1;
  if (NumWorkers <= 1) {
    Worker();
    return Results;
  }
  std::vector<std::thread> Pool;
  Pool.reserve(NumWorkers);
  for (size_t T = 0; T < NumWorkers; ++T)
    Pool.emplace_back(Worker);
  for (std::thread &T : Pool)
    T.join();
  return Results;
}
