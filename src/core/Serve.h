//===- Serve.h - Promotion-as-a-service server core -------------*- C++ -*-===//
//
// Part of the srp-alat project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serving layer behind tools/srp-serve (DESIGN.md §8). A request is
/// one line of JSON (newline-delimited frames); the server compiles and
/// simulates the named workload or inline .sir program under the
/// requested pipeline configuration and answers with one JSON line.
/// Because a pipeline run is a pure function of (workload, config),
/// every successful result is stored in a content-addressed ResultCache
/// under the request's *canonical key* — canonicalized module text plus
/// a fixed-order serialization of the configuration — and repeat
/// requests are answered byte-identically from the cache.
///
/// Layering: ServerCore is transport-free (a string-in/string-out
/// request processor, thread-safe, never aborting on malformed input) so
/// tests and the protocol fuzzer drive it in-process; LineSplitter is
/// the NDJSON frame decoder shared by every transport; the stdio and
/// socket servers at the bottom are the daemon plumbing. Batches of
/// pipelined frames are fanned out over core::parallelFor — the same
/// pool discipline as runExperiments — and a semaphore bounds the
/// process-wide number of in-flight pipeline runs to ServeOptions::
/// Threads, whatever the number of connections.
///
/// The protocol grammar, canonicalization rules, cache keying and error
/// taxonomy (result.status mirroring srp-run's 0/1/2 exit convention)
/// are specified in DESIGN.md §8.
///
//===----------------------------------------------------------------------===//

#ifndef SRP_CORE_SERVE_H
#define SRP_CORE_SERVE_H

#include "core/Pipeline.h"
#include "core/ResultCache.h"

#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace srp::core {

struct ServeOptions {
  /// Concurrent pipeline executions (and handleBatch fan-out width);
  /// 0 uses the hardware concurrency.
  unsigned Threads = 0;
  /// Frame limit: a request line longer than this is dropped (the
  /// splitter resynchronizes at the next newline) and answered with a
  /// status-2 error frame.
  size_t MaxLineBytes = 4u << 20;
  /// Inline `program` texts larger than this are rejected (status 2).
  size_t MaxProgramBytes = 1u << 20;
  /// Largest accepted train/ref scale for named-workload requests.
  uint64_t MaxScale = 64;
  /// Interpreter fuel for train runs and oracles (part of the canonical
  /// key — servers with different fuel answer from different cache
  /// entries).
  uint64_t InterpFuel = 400'000'000;
  ResultCacheConfig Cache;
  /// Workloads requests may name. The daemon passes
  /// workloads::standardWorkloads(); the default (empty) answers every
  /// named-workload request with an unknown-workload error. Injected
  /// rather than looked up so srp_core never depends on srp_workloads.
  std::vector<Workload> Workloads;
};

/// NDJSON frame decoder: feed arbitrary chunks (whatever read(2)
/// returned), collect complete newline-terminated frames. Oversized
/// frames are dropped with resynchronization at the next newline, so one
/// abusive or corrupt frame costs itself, not the connection.
class LineSplitter {
public:
  explicit LineSplitter(size_t MaxLineBytes) : MaxLineBytes(MaxLineBytes) {}

  /// Scans \p Chunk, appending each complete frame (newline stripped) to
  /// \p Out. Returns the number of oversized frames dropped during this
  /// call — the caller owes each one an error response.
  size_t feed(std::string_view Chunk, std::vector<std::string> &Out);

  /// End of stream. Returns true when unterminated bytes remain — a
  /// half-closed connection cut a frame short (also true when the tail
  /// was an oversized frame still being discarded); the caller owes a
  /// final error response. \p Partial receives the unterminated bytes
  /// (empty for an oversized tail).
  bool finish(std::string &Partial);

private:
  size_t MaxLineBytes;
  std::string Buffer;
  bool Discarding = false; ///< Inside an oversized frame, seeking '\n'.
};

/// The transport-free request processor (see file comment). All public
/// methods are thread-safe.
class ServerCore {
public:
  explicit ServerCore(ServeOptions Opts = {});

  /// Processes one request frame and returns the response frame (no
  /// trailing newline). Total: malformed input of any kind produces a
  /// status-2 error response, never an abort.
  std::string handle(const std::string &Line);

  /// Processes a batch of pipelined frames on the parallelFor pool,
  /// returning responses in input order.
  std::vector<std::string> handleBatch(const std::vector<std::string> &Lines);

  /// A status-2 error frame for input the frame decoder dropped before
  /// it could carry an id (oversized / unterminated frames).
  std::string protocolErrorResponse(std::string_view Message);

  /// True once a shutdown request has been accepted; transports drain
  /// and exit.
  bool shutdownRequested() const { return Shutdown.load(); }
  void requestShutdown() { Shutdown.store(true); }

  ResultCache &cache() { return Cache; }
  const ServeOptions &options() const { return Opts; }

private:
  struct RunRequest;

  std::string handleParsed(const std::string &Line);
  std::string runOp(const RunRequest &Req, bool WantStats);
  PipelineResult executeRun(const RunRequest &Req, std::string &Error,
                            int &ErrorStatus);

  ServeOptions Opts;
  ResultCache Cache;
  std::atomic<bool> Shutdown{false};

  /// Counting semaphore bounding in-flight pipeline runs to
  /// Opts.Threads (cache hits bypass it, so a warm request never waits
  /// behind cold compiles).
  std::mutex SlotMutex;
  std::condition_variable SlotCv;
  unsigned FreeSlots;
};

/// -- Daemon plumbing ------------------------------------------------------
///
/// The returned file descriptors are plain POSIX fds; -1 with \p Error
/// set on failure.

/// Listening TCP socket on 127.0.0.1:\p Port.
int listenTcp(uint16_t Port, std::string &Error);

/// Listening Unix-domain socket at \p Path (an existing socket file is
/// replaced).
int listenUnix(const std::string &Path, std::string &Error);

/// Client side: connects to "unix:PATH" or "tcp:PORT" (loopback),
/// retrying for up to \p RetryMs while the endpoint does not exist yet
/// (lets a load generator start alongside the daemon).
int connectToServer(const std::string &Spec, unsigned RetryMs,
                    std::string &Error);

/// Serves one established connection until EOF or shutdown: reads
/// frames, fans each read's worth of pipelined requests through
/// ServerCore::handleBatch, writes responses in request order. Closes
/// \p Fd. Safe to run on many threads against one core.
void serveConnection(ServerCore &Core, int Fd);

/// Accept loop: one serveConnection thread per client until shutdown.
/// Closes \p ListenFd. Returns 0 on clean shutdown, 1 on accept-loop
/// failure.
int runSocketServer(ServerCore &Core, int ListenFd);

/// Stdin/stdout transport: batches of pipelined frames from \p In,
/// responses in input order to \p Out. Returns 0 at EOF or clean
/// shutdown.
int runStdioServer(ServerCore &Core, std::FILE *In, std::FILE *Out);

} // namespace srp::core

#endif // SRP_CORE_SERVE_H
