//===- ProfileCache.h - Shared train-profile snapshots ----------*- C++ -*-===//
//
// Part of the srp-alat project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The experiment grid crosses workloads with promotion configs, and the
/// train run (interpret the train-scale build, collect alias and edge
/// profiles) depends only on the workload — every config of a workload
/// interprets the identical program and collects the identical profile.
/// ProfileCache memoizes that run as an id-space snapshot (function
/// index, block index, statement position), which a later pipeline
/// rebinds onto its own ref module's pointers in one cheap sweep.
///
/// Determinism: a snapshot's content is a pure function of the cache key
/// (workload, train scale, interpreter fuel), so which worker computes
/// it — or whether two compute it racing and one insert wins — cannot
/// change any pipeline's result. core::runExperiments stays byte-
/// identical at any thread count.
///
//===----------------------------------------------------------------------===//

#ifndef SRP_CORE_PROFILECACHE_H
#define SRP_CORE_PROFILECACHE_H

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace srp::core {

/// One workload's train-run profiles with every module pointer replaced
/// by its positional id, exactly mirroring what ProfilePass's remap
/// transfers (same function index, same block index, same statement
/// position).
struct ProfileSnapshot {
  /// Observed alias targets of one (statement, dereference level) site.
  struct AliasEntry {
    unsigned FuncIdx;
    unsigned BlockIdx;
    unsigned StmtPos;
    unsigned Level;
    std::vector<unsigned> Symbols; ///< sorted (harvested from a std::set)
  };
  /// One block's execution count and per-successor edge counts.
  struct BlockEntry {
    unsigned FuncIdx;
    unsigned BlockIdx;
    uint64_t Count;
    std::vector<uint64_t> SuccCounts; ///< by successor position
  };

  /// Block count per function at snapshot time; the rebind re-checks the
  /// ref module against these so the "workload changes CFG shape across
  /// scales" diagnostic still fires.
  std::vector<unsigned> FuncNumBlocks;
  std::vector<BlockEntry> Blocks;
  std::vector<AliasEntry> Alias;
};

/// Keyed snapshot store shared by all pipelines of one experiment run.
class ProfileCache {
public:
  std::shared_ptr<const ProfileSnapshot>
  lookup(const std::string &Key) const {
    std::lock_guard<std::mutex> L(M);
    auto It = Map.find(Key);
    return It == Map.end() ? nullptr : It->second;
  }

  /// First insert for a key wins; returns the snapshot that is in the
  /// cache after the call (losing duplicates are discarded — they are
  /// byte-identical by construction).
  std::shared_ptr<const ProfileSnapshot>
  insert(const std::string &Key, std::shared_ptr<const ProfileSnapshot> S) {
    std::lock_guard<std::mutex> L(M);
    auto [It, Inserted] = Map.emplace(Key, std::move(S));
    (void)Inserted;
    return It->second;
  }

private:
  mutable std::mutex M;
  std::map<std::string, std::shared_ptr<const ProfileSnapshot>> Map;
};

} // namespace srp::core

#endif // SRP_CORE_PROFILECACHE_H
