//===- Pipeline.cpp - The speculative register promotion pipeline ------------===//
//
// runPipeline is a pass composition now: the phases of the old monolithic
// implementation live as named passes in Passes.cpp, sequenced by the
// PassManager (core/Pass.h) with per-pass timing and disable plumbing.
//
//===----------------------------------------------------------------------===//

#include "core/Pipeline.h"

#include "core/Pass.h"
#include "interp/Interpreter.h"
#include "support/StringUtils.h"

using namespace srp;
using namespace srp::core;

std::string srp::core::validatePipelineConfig(const PipelineConfig &Config) {
  const arch::AlatConfig &A = Config.Sim.Alat;
  if (A.Entries == 0)
    return "ALAT must have at least one entry (--alat-entries)";
  if (A.Ways == 0)
    return "ALAT associativity must be at least 1 (--alat-ways)";
  if (A.Ways > A.Entries)
    return formatString("ALAT associativity (%u) exceeds entry count (%u)",
                        A.Ways, A.Entries);
  if (A.Entries % A.Ways != 0)
    return formatString("ALAT entry count (%u) is not a multiple of the "
                        "associativity (%u)",
                        A.Entries, A.Ways);
  if (A.PartialTagBits == 0 || A.PartialTagBits > 63)
    return formatString("ALAT partial tag width (%u) must be in [1, 63]",
                        A.PartialTagBits);
  if (Config.Sim.IssueWidth == 0)
    return "issue width must be at least 1";
  if (Config.Sim.MaxInstructions == 0)
    return "simulator instruction budget must be positive";
  if (Config.InterpFuel == 0)
    return "interpreter fuel must be positive";
  return "";
}

PipelineConfig srp::core::configFor(const pre::PromotionConfig &Promotion) {
  PipelineConfig C;
  C.Promotion = Promotion;
  return C;
}

std::vector<std::string> srp::core::oracleOutput(const Workload &W,
                                                 uint64_t Fuel) {
  ir::Module M;
  W.Build(M, W.RefScale);
  for (unsigned I = 0; I < M.numFunctions(); ++I)
    M.function(I)->recomputeCFG();
  interp::Interpreter Interp(M);
  interp::RunResult R = Interp.run(Fuel);
  return R.Output;
}

PipelineResult srp::core::runPipeline(const Workload &W,
                                      const PipelineConfig &Config,
                                      ProfileCache *PC) {
  PipelineState S;
  S.W = &W;
  S.Config = Config;
  S.ProfCache = PC;
  PassManager PM;
  addStandardPasses(PM);
  PM.run(S);
  return std::move(S.Result);
}
