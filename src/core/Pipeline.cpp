//===- Pipeline.cpp - The speculative register promotion pipeline ------------===//

#include "core/Pipeline.h"

#include "alias/AliasAnalysis.h"
#include "alias/Andersen.h"
#include "codegen/Lowering.h"
#include "interp/Interpreter.h"
#include "ir/CFG.h"
#include "ir/Verifier.h"
#include "pre/Promoter.h"

#include <algorithm>
#include <memory>

using namespace srp;
using namespace srp::core;

PipelineConfig srp::core::configFor(const pre::PromotionConfig &Promotion) {
  PipelineConfig C;
  C.Promotion = Promotion;
  return C;
}

std::vector<std::string> srp::core::oracleOutput(const Workload &W,
                                                 uint64_t Fuel) {
  ir::Module M;
  W.Build(M, W.RefScale);
  for (unsigned I = 0; I < M.numFunctions(); ++I)
    M.function(I)->recomputeCFG();
  interp::Interpreter Interp(M);
  interp::RunResult R = Interp.run(Fuel);
  return R.Output;
}

PipelineResult srp::core::runPipeline(const Workload &W,
                                      const PipelineConfig &Config) {
  PipelineResult Result;

  // Phase 1: collect alias and edge profiles on the train build.
  ir::Module M;
  W.Build(M, W.TrainScale);
  for (unsigned I = 0; I < M.numFunctions(); ++I)
    M.function(I)->recomputeCFG();
  {
    std::vector<std::string> Errors = ir::verifyModule(M);
    if (!Errors.empty()) {
      Result.Error = "train module verification failed: " + Errors[0];
      return Result;
    }
  }
  interp::AliasProfile AP2;
  interp::EdgeProfile EP2;
  {
    interp::Interpreter Interp(M);
    Interp.setAliasProfile(&AP2);
    Interp.setEdgeProfile(&EP2);
    interp::RunResult R = Interp.run(Config.InterpFuel);
    if (!R.Ok) {
      Result.Error = "train run failed: " + R.Error;
      return Result;
    }
  }

  // The paper compiles one binary with train feedback and measures the
  // ref input. Build(M, Scale) bakes the input scale into the program as
  // data, so the ref module is a fresh build whose *code shape* is
  // identical (a documented Workload contract, checked below); profile
  // keys remap by function index and statement id.
  ir::Module RefModule;
  W.Build(RefModule, W.RefScale);
  for (unsigned I = 0; I < RefModule.numFunctions(); ++I)
    RefModule.function(I)->recomputeCFG();
  std::vector<std::string> Errors = ir::verifyModule(RefModule);
  if (!Errors.empty()) {
    Result.Error = "ref module verification failed: " + Errors[0];
    return Result;
  }
  if (RefModule.numFunctions() != M.numFunctions()) {
    Result.Error = "workload changes shape across scales";
    return Result;
  }

  // Remap profile keys from the train module's functions to the ref
  // module's (same index, same statement ids).
  interp::AliasProfile RefAP;
  interp::EdgeProfile RefEP;
  for (unsigned FI = 0; FI < M.numFunctions(); ++FI) {
    const ir::Function *TrainF = M.function(FI);
    const ir::Function *RefF = RefModule.function(FI);
    if (TrainF->numBlocks() != RefF->numBlocks()) {
      Result.Error = "workload changes CFG shape across scales";
      return Result;
    }
    for (unsigned BI = 0; BI < TrainF->numBlocks(); ++BI) {
      const ir::BasicBlock *TB = TrainF->block(BI);
      const ir::BasicBlock *RB = RefF->block(BI);
      // Edge profile remap (successors match by position).
      RefEP.addBlockCount(RB, EP2.blockCount(TB));
      for (size_t SI = 0; SI < TB->succs().size(); ++SI)
        RefEP.addEdgeCount(RB, RB->succs()[SI],
                           EP2.edgeCount(TB, TB->succs()[SI]));
      // Alias profile remap (statement ids are stable).
      for (size_t SI = 0; SI < TB->size() && SI < RB->size(); ++SI) {
        const ir::Stmt *TS = TB->stmt(SI);
        const ir::Stmt *RS = RB->stmt(SI);
        for (unsigned Level = 1; Level <= TS->Ref.Depth; ++Level) {
          const std::set<unsigned> *Targets =
              AP2.targets(TrainF, TS->Id, Level);
          if (!Targets)
            continue;
          for (unsigned Sym : *Targets)
            RefAP.recordTarget(RefF, RS->Id, Level, Sym);
        }
      }
    }
  }

  // Phase 2: promote.
  std::unique_ptr<alias::AliasAnalysis> AA;
  if (Config.UseAndersen)
    AA = std::make_unique<alias::AndersenAnalysis>(RefModule);
  else
    AA = std::make_unique<alias::SteensgaardAnalysis>(RefModule);
  Result.Promotion = pre::promoteModule(
      RefModule, *AA, Config.UseAliasProfile ? &RefAP : nullptr,
      Config.UseEdgeProfile ? &RefEP : nullptr, Config.Promotion);
  Errors = ir::verifyModule(RefModule);
  if (!Errors.empty()) {
    Result.Error = "post-promotion verification failed: " + Errors[0];
    return Result;
  }
  if (Config.SpecVerify != SpecVerifyMode::Off) {
    analysis::SpecVerifyConfig SVC;
    SVC.AlatEntries = Config.Sim.Alat.Entries;
    SVC.AA = AA.get();
    Result.SpecDiags = analysis::verifySpeculation(RefModule, SVC);
    if (Config.SpecVerify == SpecVerifyMode::Fatal &&
        analysis::hasSpecErrors(Result.SpecDiags)) {
      for (const analysis::SpecDiag &D : Result.SpecDiags)
        if (D.Severity == analysis::SpecDiagSeverity::Error) {
          Result.Error =
              "speculation verification failed: " + analysis::formatSpecDiag(D);
          return Result;
        }
    }
  }

  // Phase 3: lower, allocate, simulate.
  auto MM = codegen::lowerModule(RefModule);
  Result.RegAlloc = codegen::allocateRegisters(*MM, Config.RegAlloc);
  for (unsigned FI = 0; FI < MM->numFunctions(); ++FI)
    Result.MaxStackedRegs =
        std::max(Result.MaxStackedRegs, MM->function(FI)->StackedRegsUsed);
  Result.Sim = arch::simulate(*MM, Config.Sim);
  if (!Result.Sim.Ok) {
    Result.Error = "simulation failed: " + Result.Sim.Error;
    return Result;
  }
  Result.Output = Result.Sim.Output;
  Result.Ok = true;
  return Result;
}
