//===- Pipeline.cpp - The speculative register promotion pipeline ------------===//
//
// runPipeline is a pass composition now: the phases of the old monolithic
// implementation live as named passes in Passes.cpp, sequenced by the
// PassManager (core/Pass.h) with per-pass timing and disable plumbing.
//
//===----------------------------------------------------------------------===//

#include "core/Pipeline.h"

#include "core/Pass.h"
#include "interp/Interpreter.h"

using namespace srp;
using namespace srp::core;

PipelineConfig srp::core::configFor(const pre::PromotionConfig &Promotion) {
  PipelineConfig C;
  C.Promotion = Promotion;
  return C;
}

std::vector<std::string> srp::core::oracleOutput(const Workload &W,
                                                 uint64_t Fuel) {
  ir::Module M;
  W.Build(M, W.RefScale);
  for (unsigned I = 0; I < M.numFunctions(); ++I)
    M.function(I)->recomputeCFG();
  interp::Interpreter Interp(M);
  interp::RunResult R = Interp.run(Fuel);
  return R.Output;
}

PipelineResult srp::core::runPipeline(const Workload &W,
                                      const PipelineConfig &Config) {
  PipelineState S;
  S.W = &W;
  S.Config = Config;
  PassManager PM;
  addStandardPasses(PM);
  PM.run(S);
  return std::move(S.Result);
}
