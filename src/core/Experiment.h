//===- Experiment.h - Parallel workload×strategy driver ---------*- C++ -*-===//
//
// Part of the srp-alat project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The experiment driver behind the bench fleet. Every figure and
/// ablation runs the same shape of job — a list of workload×config
/// pipelines — so the driver takes that list and runs each entry as an
/// independent pipeline on a std::thread pool.
///
/// Determinism: a pipeline run is a pure function of (workload, config) —
/// each worker owns its PipelineState (modules, profiles, analysis
/// cache; see core/Pass.h), and results are deposited by input index.
/// The returned counters are therefore byte-identical for any thread
/// count, including 1 (asserted by tests/ExperimentTest.cpp). Wall-clock
/// Timings inside each result are the only nondeterministic field.
///
//===----------------------------------------------------------------------===//

#ifndef SRP_CORE_EXPERIMENT_H
#define SRP_CORE_EXPERIMENT_H

#include "core/Pipeline.h"

#include <functional>

namespace srp::core {

/// Runs Fn(0..N-1) on up to \p Threads workers (1 or 0 runs serially in
/// the calling thread). Same work-stealing pool as runExperiments: the
/// schedule is nondeterministic, so Fn must own all its state apart from
/// depositing into an index-addressed slot. Blocks until every index has
/// run. The fuzzing driver (fuzz::runFuzzer) and the differential oracle
/// batches are built on this.
void parallelFor(unsigned Threads, size_t N,
                 const std::function<void(size_t)> &Fn);

/// One workload×config pipeline to run.
struct Experiment {
  const Workload *W = nullptr;
  PipelineConfig Config;
  /// Free-form tag for reporting (strategy name, ablation point, ...).
  std::string Label;
};

struct ExperimentOptions {
  /// Worker threads; 1 (or 0) runs serially in the calling thread. More
  /// workers than experiments are not spawned.
  unsigned Threads = 1;
  /// Additionally interpret the ref build and mark results whose
  /// simulated output diverges as failed (the bench-fleet correctness
  /// gate; costs one interpreter run per experiment).
  bool CheckOracle = false;
};

/// Runs every experiment and returns the results in input order,
/// independent of Threads.
std::vector<PipelineResult> runExperiments(const std::vector<Experiment> &Exps,
                                           const ExperimentOptions &Opts = {});

} // namespace srp::core

#endif // SRP_CORE_EXPERIMENT_H
