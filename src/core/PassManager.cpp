//===- PassManager.cpp - Pass sequencing, timing, disabling -------------------===//

#include "core/Pass.h"

#include "support/Stats.h"
#include "support/Timer.h"

#include <algorithm>

using namespace srp;
using namespace srp::core;

std::vector<std::string> PassManager::passNames() const {
  std::vector<std::string> Names;
  Names.reserve(Passes.size());
  for (const auto &P : Passes)
    Names.emplace_back(P->name());
  return Names;
}

const Pass *PassManager::find(std::string_view Name) const {
  for (const auto &P : Passes)
    if (P->name() == Name)
      return P.get();
  return nullptr;
}

bool PassManager::run(PipelineState &S, const PassCallback &AfterPass) {
  const std::vector<std::string> &Disabled = S.Config.DisabledPasses;
  for (const auto &P : Passes) {
    if (std::find(Disabled.begin(), Disabled.end(), P->name()) !=
        Disabled.end())
      continue;
    uint64_t Micros = 0;
    bool Ok;
    {
      ScopedTimer T(Micros);
      Ok = P->run(S);
    }
    S.Result.Timings.push_back({std::string(P->name()), Micros});
    StatsRegistry::current().add("pass." + std::string(P->name()) + ".us",
                             Micros);
    // No pipeline-wide cache flush here: mutating passes invalidate
    // exactly the functions they changed (see AnalysisCache.h), so
    // sibling functions stay cached across the promote boundary.
    if (!Ok) {
      if (S.Result.Error.empty())
        S.Result.Error = "pass '" + std::string(P->name()) + "' failed";
      return false;
    }
    if (AfterPass)
      AfterPass(*P, S);
  }
  S.Analyses.publishStats();
  S.Result.Ok = true;
  return true;
}
