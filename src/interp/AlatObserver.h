//===- AlatObserver.h - IR-level ALAT observation ---------------*- C++ -*-===//
//
// Part of the srp-alat project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An ALAT model the interpreter can carry alongside a run (attach with
/// Interpreter::setAlatObserver). The interpreter's functional semantics
/// make every check reload from memory, so a run can succeed even when
/// the speculation discipline is broken; the observer replays the run
/// against an adversarial ALAT and records what *hardware* would have
/// done. Its headline statistic is StaleHits: check hits where the
/// register disagreed with memory — on a real machine the stale register
/// would have been kept. analysis::SpecVerifier proves the discipline
/// statically; the differential tests cross-check the two.
///
/// The model is deliberately the worst case for the compiler:
///   - fully associative with a configurable capacity, so no conflict
///     misses hide discipline bugs behind lucky evictions;
///   - stores invalidate by full 8-byte-cell address (no partial-tag
///     false invalidations that would mask a missing check);
///   - entries are keyed by (owning function, temp) and dropped when the
///     owning activation returns — a promoted temp is never checkable
///     from another function, and dropping the residue keeps dynamic
///     entry pressure within SpecVerifier's static per-function +
///     callee-peak capacity bound.
///
//===----------------------------------------------------------------------===//

#ifndef SRP_INTERP_ALATOBSERVER_H
#define SRP_INTERP_ALATOBSERVER_H

#include <cstdint>
#include <map>
#include <utility>

namespace srp::interp {

/// Counters filled during an observed run.
struct AlatObserverStats {
  uint64_t Allocations = 0;
  uint64_t StoreInvalidations = 0;
  uint64_t CapacityEvictions = 0;
  uint64_t CheckHits = 0;
  uint64_t CheckMisses = 0;
  /// Check hits with register != memory: would-be miscompiles on real
  /// hardware. Zero for any module SpecVerifier passes without errors.
  uint64_t StaleHits = 0;
};

/// The observing table. Owners are opaque pointers (the interpreter
/// passes the executing ir::Function) so the model stays IR-agnostic.
class AlatObserver {
public:
  /// \p Entries mirrors arch::AlatConfig::Entries (Itanium: 32).
  explicit AlatObserver(unsigned Entries = 32)
      : Capacity(Entries ? Entries : 1) {}

  void reset() {
    Table.clear();
    Stats = AlatObserverStats();
    Stamp = 0;
  }

  const AlatObserverStats &stats() const { return Stats; }
  unsigned numValidEntries() const {
    return static_cast<unsigned>(Table.size());
  }

  /// An advanced load (ld.a / ld.sa / st.a / recovery) allocates or
  /// refreshes the entry for (\p Owner, \p Reg) covering \p Addr.
  void onAllocate(const void *Owner, unsigned Reg, uint64_t Addr);

  /// A store to \p Addr invalidates every entry covering that cell.
  void onStore(uint64_t Addr);

  /// A check of (\p Owner, \p Reg) against \p Addr. \p RegValue is the
  /// register before the check's reload, \p MemValue the current memory
  /// at \p Addr. \p Clear models the .clr completer (drop on hit; a
  /// non-clearing check re-allocates on a miss, mirroring ld.c.nc).
  /// Returns true on a hit.
  bool onCheck(const void *Owner, unsigned Reg, uint64_t Addr, bool Clear,
               uint64_t RegValue, uint64_t MemValue);

  /// invala.e drops (\p Owner, \p Reg)'s entry.
  void onInvala(const void *Owner, unsigned Reg);

  /// The activation of \p Owner returned: drop its entries (see file
  /// comment for why this is sound and desirable).
  void onReturn(const void *Owner);

private:
  struct Entry {
    uint64_t Addr = 0;
    uint64_t Stamp = 0; ///< Allocation order; smallest is evicted first.
  };
  using Key = std::pair<const void *, unsigned>;

  void insert(const void *Owner, unsigned Reg, uint64_t Addr);

  unsigned Capacity;
  uint64_t Stamp = 0;
  std::map<Key, Entry> Table;
  AlatObserverStats Stats;
};

} // namespace srp::interp

#endif // SRP_INTERP_ALATOBSERVER_H
