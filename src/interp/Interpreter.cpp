//===- Interpreter.cpp - IR execution and profiling -------------------------===//

#include "interp/Interpreter.h"

#include "interp/AlatObserver.h"
#include "support/Error.h"
#include "support/PagedMemory.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <map>
#include <tuple>

using namespace srp;
using namespace srp::ir;
using namespace srp::interp;

namespace srp::interp {

/// One run's mutable state: memory, the object registry for reverse
/// address-to-symbol lookup, and the recursive statement executor.
class Execution {
public:
  Execution(const ir::Module &M, AliasProfile *AP, EdgeProfile *EP,
            AlatObserver *AO, MemTrace *MT, TaintTrace *TT, uint64_t Fuel)
      : M(M), AP(AP), EP(EP), AO(AO), MT(MT), TT(TT), FuelLeft(Fuel) {
    if (TT)
      for (const auto &[S, Index] : specSiteIndex(M))
        SpecSiteBit[S] = 1ULL << Index;
  }

  RunResult run() {
    RunResult Result;
    const Function *Main = M.findFunction("main");
    if (!Main) {
      Result.Error = "module has no main function";
      return Result;
    }
    if (MT)
      *MT = MemTrace();
    if (TT)
      *TT = TaintTrace();
    layoutGlobals();
    uint64_t RetBits = 0;
    if (!callFunction(*Main, {}, RetBits)) {
      Result.Error = TrapMessage;
      Result.Output = std::move(Output);
      return Result;
    }
    if (MT)
      for (const Symbol *Global : M.globals()) {
        uint64_t Base = GlobalAddr[Global];
        for (unsigned I = 0; I < Global->NumElems; ++I)
          MT->FinalGlobals.push_back(read64(Base + 8 * I));
      }
    Result.Ok = true;
    Result.Output = std::move(Output);
    Result.StmtsExecuted = StmtsExecuted;
    Result.LoadsExecuted = LoadsExecuted;
    Result.StoresExecuted = StoresExecuted;
    Result.ExitValue = static_cast<int64_t>(RetBits);
    return Result;
  }

private:
  struct ObjectInfo {
    uint64_t End;       ///< One past the last byte.
    unsigned SymbolId;  ///< Declared symbol or heap-site symbol.
  };

  struct Frame {
    const Function *F = nullptr;
    std::vector<uint64_t> Temps;
    std::map<const Symbol *, uint64_t> SlotAddr;
    uint64_t SavedStackTop = 0;
    /// Taint mode only: shadow of each temp, parallel to Temps, plus the
    /// shadow of the value the frame returned.
    std::vector<Shadow> TempTaint;
    Shadow RetShadow;
  };

  void trap(std::string Message);
  bool consumeFuel();

  void layoutGlobals();
  uint64_t allocateObject(const Symbol &Sym, uint64_t Bytes, bool OnStack);

  uint64_t read64(uint64_t Addr);
  void write64(uint64_t Addr, uint64_t Bits);
  unsigned symbolAt(uint64_t Addr) const;

  uint64_t evalOperand(Frame &Fr, const Operand &Op);
  uint64_t evalAssign(Frame &Fr, const Stmt &S);
  /// Returns the final access address; \p ChainPtr receives the value of
  /// the last chain pointer (the address before index/offset are applied),
  /// which is what Load.AddrDst exposes. In taint mode \p WalkShadow (if
  /// non-null) accumulates the shadow of every chain cell read — plus the
  /// advanced load's own site bit, since chain values an ld.a walks are
  /// themselves speculative.
  uint64_t computeAccessAddress(Frame &Fr, const Stmt &S, const MemRef &Ref,
                                uint64_t &ChainPtr,
                                Shadow *WalkShadow = nullptr);
  uint64_t symbolAddress(Frame &Fr, const Symbol *Sym);

  bool callFunction(const Function &F, const std::vector<uint64_t> &Args,
                    uint64_t &RetBits,
                    const std::vector<Shadow> *ArgShadows = nullptr,
                    Shadow *RetShadow = nullptr);
  /// Executes one block's statements; returns the successor block, or null
  /// on return (RetBits filled).
  const BasicBlock *execBlock(Frame &Fr, const BasicBlock *BB,
                              uint64_t &RetBits);

  void recordAccess(uint64_t Addr, bool IsLoad, bool Speculative) {
    if (MT)
      MT->Accesses.push_back(
          MemTrace::Access{Addr, symbolAt(Addr), IsLoad, Speculative});
  }

  //===------------------------------------------------------------===//
  // Taint-mode shadow propagation (all no-ops unless TT is attached)
  //===------------------------------------------------------------===//

  Shadow shadowOf(Frame &Fr, const Operand &Op) const {
    if (Op.isTemp() && Op.TempId < Fr.TempTaint.size())
      return Fr.TempTaint[Op.TempId];
    return Shadow();
  }

  Shadow memShadow(uint64_t Addr) const {
    auto It = MemTaint.find(Addr >> 3);
    return It == MemTaint.end() ? Shadow() : It->second;
  }

  void setTempShadow(Frame &Fr, unsigned Temp, const Shadow &Sh) {
    if (Temp < Fr.TempTaint.size())
      Fr.TempTaint[Temp] = Sh;
  }

  /// Shadow of the index operand of \p Ref (the part of the address the
  /// program computes, as opposed to the chain cells it loads).
  Shadow indexShadow(Frame &Fr, const MemRef &Ref) const {
    return Ref.hasIndex() ? shadowOf(Fr, Ref.Index) : Shadow();
  }

  void recordLeak(Frame &Fr, TaintTrace::Sink Sink, unsigned Line,
                  const Shadow &Sh) {
    if (!TT || !Sh.leaks())
      return;
    auto Key = std::make_tuple(Fr.F, Line, Sink);
    auto It = LeakIndex.find(Key);
    if (It != LeakIndex.end()) {
      TT->Leaks[It->second].SpecMask |= Sh.Spec;
      return;
    }
    LeakIndex[Key] = TT->Leaks.size();
    TT->Leaks.push_back(
        TaintTrace::Leak{Sink, Fr.F->getName(), Line, Sh.Spec});
  }

  const ir::Module &M;
  AliasProfile *AP;
  EdgeProfile *EP;
  AlatObserver *AO;
  MemTrace *MT;
  TaintTrace *TT;
  uint64_t FuelLeft;
  /// Address of the cell the last chain pointer was loaded from; set by
  /// computeAccessAddress for indirect references. This is the address an
  /// advanced load's chain-pointer ALAT entry covers.
  uint64_t LastChainSlot = 0;

  PagedMemory Memory; ///< Keyed by Addr >> 3.
  std::map<uint64_t, ObjectInfo> Objects;        ///< Keyed by start address.
  /// Taint mode: shadow of every written/initialized cell (same key).
  std::unordered_map<uint64_t, Shadow> MemTaint;
  /// Taint mode: ALAT site bit of each advanced-load statement.
  std::unordered_map<const ir::Stmt *, uint64_t> SpecSiteBit;
  /// Taint mode: dedup index into TT->Leaks by (function, line, sink).
  std::map<std::tuple<const Function *, unsigned, TaintTrace::Sink>, size_t>
      LeakIndex;
  uint64_t StackTop = layout::StackBase;
  uint64_t HeapTop = layout::HeapBase;
  unsigned CallDepth = 0;

  std::vector<std::string> Output;
  uint64_t StmtsExecuted = 0;
  uint64_t LoadsExecuted = 0;
  uint64_t StoresExecuted = 0;

  std::map<const Symbol *, uint64_t> GlobalAddr;

  bool Trapped = false;
  std::string TrapMessage;
};

} // namespace srp::interp

// Traps record the first failure and set Trapped; every execution layer
// checks the flag and unwinds with inert values. The project has no C++
// exceptions, and fatalError would kill the process, which tests that
// exercise trapping programs must survive.
void Execution::trap(std::string Message) {
  if (!Trapped) {
    Trapped = true;
    TrapMessage = std::move(Message);
  }
}

bool Execution::consumeFuel() {
  if (FuelLeft == 0) {
    trap("fuel exhausted");
    return false;
  }
  --FuelLeft;
  return true;
}

void Execution::layoutGlobals() {
  uint64_t Next = layout::GlobalBase;
  for (const Symbol *Global : M.globals()) {
    Objects[Next] = ObjectInfo{Next + Global->sizeInBytes(), Global->Id};
    GlobalAddr[Global] = Next;
    if (TT && Global->Secret)
      for (unsigned I = 0; I < Global->NumElems; ++I)
        MemTaint[(Next + 8 * I) >> 3] = Shadow{true, 0};
    Next += (Global->sizeInBytes() + 63) & ~63ULL;
  }
}

uint64_t Execution::read64(uint64_t Addr) {
  if (Addr % 8 != 0) {
    trap(formatString("unaligned read at 0x%llx",
                      static_cast<unsigned long long>(Addr)));
    return 0;
  }
  return Memory.load(Addr >> 3);
}

void Execution::write64(uint64_t Addr, uint64_t Bits) {
  if (Addr % 8 != 0) {
    trap(formatString("unaligned write at 0x%llx",
                      static_cast<unsigned long long>(Addr)));
    return;
  }
  Memory.store(Addr >> 3, Bits);
}

unsigned Execution::symbolAt(uint64_t Addr) const {
  auto It = Objects.upper_bound(Addr);
  if (It == Objects.begin())
    return AliasProfile::UnknownTarget;
  --It;
  if (Addr >= It->second.End)
    return AliasProfile::UnknownTarget;
  return It->second.SymbolId;
}

uint64_t Execution::evalOperand(Frame &Fr, const Operand &Op) {
  switch (Op.K) {
  case Operand::Kind::Temp:
    return Fr.Temps[Op.TempId];
  case Operand::Kind::ConstInt:
    return static_cast<uint64_t>(Op.IntVal);
  case Operand::Kind::ConstFloat:
    return std::bit_cast<uint64_t>(Op.FloatVal);
  case Operand::Kind::None:
    trap("evaluating a missing operand");
    return 0;
  }
  SRP_UNREACHABLE("invalid operand kind");
}

uint64_t Execution::evalAssign(Frame &Fr, const Stmt &S) {
  uint64_t A = evalOperand(Fr, S.A);
  uint64_t B = S.B.isNone() ? 0 : evalOperand(Fr, S.B);
  auto SA = static_cast<int64_t>(A);
  auto SB = static_cast<int64_t>(B);
  auto FA = std::bit_cast<double>(A);
  auto FB = std::bit_cast<double>(B);
  auto I = [](int64_t V) { return static_cast<uint64_t>(V); };
  auto D = [](double V) { return std::bit_cast<uint64_t>(V); };
  switch (S.Op) {
  case Opcode::Copy:
    return A;
  case Opcode::Add:
    return I(SA + SB);
  case Opcode::Sub:
    return I(SA - SB);
  case Opcode::Mul:
    return I(SA * SB);
  case Opcode::Div:
    return SB == 0 ? 0 : I(SA / SB);
  case Opcode::Rem:
    return SB == 0 ? 0 : I(SA % SB);
  case Opcode::And:
    return A & B;
  case Opcode::Or:
    return A | B;
  case Opcode::Xor:
    return A ^ B;
  case Opcode::Shl:
    return A << (B & 63);
  case Opcode::Shr:
    return A >> (B & 63);
  case Opcode::CmpEq:
    return SA == SB;
  case Opcode::CmpNe:
    return SA != SB;
  case Opcode::CmpLt:
    return SA < SB;
  case Opcode::CmpLe:
    return SA <= SB;
  case Opcode::FAdd:
    return D(FA + FB);
  case Opcode::FSub:
    return D(FA - FB);
  case Opcode::FMul:
    return D(FA * FB);
  case Opcode::FDiv:
    return D(FB == 0.0 ? 0.0 : FA / FB);
  case Opcode::FCmpLt:
    return FA < FB;
  case Opcode::IntToFp:
    return D(static_cast<double>(SA));
  case Opcode::FpToInt:
    return I(static_cast<int64_t>(FA));
  case Opcode::Select:
    return A != 0 ? B : evalOperand(Fr, S.C);
  }
  SRP_UNREACHABLE("invalid opcode");
}

uint64_t Execution::symbolAddress(Frame &Fr, const Symbol *Sym) {
  if (Sym->Kind == SymbolKind::Global) {
    auto It = GlobalAddr.find(Sym);
    if (It == GlobalAddr.end()) {
      trap("reference to unlaid-out global");
      return 0;
    }
    return It->second;
  }
  auto It = Fr.SlotAddr.find(Sym);
  if (It == Fr.SlotAddr.end()) {
    trap(formatString("reference to foreign local '%s'", Sym->Name.c_str()));
    return 0;
  }
  return It->second;
}

uint64_t Execution::computeAccessAddress(Frame &Fr, const Stmt &S,
                                         const MemRef &Ref,
                                         uint64_t &ChainPtr,
                                         Shadow *WalkShadow) {
  uint64_t Addr = symbolAddress(Fr, Ref.Base);
  int64_t Extra = Ref.Offset;
  if (Ref.hasIndex())
    Extra += static_cast<int64_t>(evalOperand(Fr, Ref.Index)) * 8;
  bool SpecChain = S.Kind == StmtKind::Load && isAdvancedFlag(S.Flag);
  ChainPtr = Addr;
  for (unsigned Level = 1; Level <= Ref.Depth; ++Level) {
    if (Level == Ref.Depth)
      LastChainSlot = Addr;
    recordAccess(Addr, /*IsLoad=*/true, SpecChain);
    if (WalkShadow) {
      WalkShadow->merge(memShadow(Addr));
      if (SpecChain) {
        auto It = SpecSiteBit.find(&S);
        WalkShadow->Spec |= It == SpecSiteBit.end() ? 0 : It->second;
      }
    }
    Addr = read64(Addr);
    ++LoadsExecuted;
    ChainPtr = Addr;
    if (Level == Ref.Depth)
      Addr += static_cast<uint64_t>(Extra);
    if (AP)
      AP->recordTarget(Fr.F, S.Id, Level, symbolAt(Addr));
  }
  if (Ref.Depth == 0)
    Addr += static_cast<uint64_t>(Extra);
  return Addr;
}

uint64_t Execution::allocateObject(const Symbol &Sym, uint64_t Bytes,
                                   bool OnStack) {
  Bytes = (Bytes + 7) & ~7ULL;
  if (Bytes == 0)
    Bytes = 8;
  uint64_t Start;
  if (OnStack) {
    StackTop -= (Bytes + 63) & ~63ULL;
    Start = StackTop;
  } else {
    Start = HeapTop;
    HeapTop += (Bytes + 63) & ~63ULL;
  }
  Objects[Start] = ObjectInfo{Start + Bytes, Sym.Id};
  // Taint mode: a fresh slot's cells carry exactly the symbol's own
  // label, even though Memory may still hold stale bits from a popped
  // frame. Defining "fresh slots are fresh" keeps the dynamic taint an
  // under-approximation of what the symbol-granular static analysis can
  // derive, so dynamic leaks are always statically visible.
  if (TT)
    for (uint64_t Cell = Start; Cell < Start + Bytes; Cell += 8)
      MemTaint[Cell >> 3] = Shadow{Sym.Secret, 0};
  return Start;
}

const BasicBlock *Execution::execBlock(Frame &Fr, const BasicBlock *BB,
                                       uint64_t &RetBits) {
  if (EP)
    EP->countBlock(BB);
  // Entering a block costs one fuel unit on its own: a cycle of
  // statement-free blocks must still exhaust the budget eventually.
  if (Trapped || !consumeFuel())
    return nullptr;
  for (size_t SI = 0, SE = BB->size(); SI != SE; ++SI) {
    if (Trapped || !consumeFuel())
      return nullptr;
    const Stmt &S = *BB->stmt(SI);
    ++StmtsExecuted;
    switch (S.Kind) {
    case StmtKind::Assign:
      Fr.Temps[S.Dst] = evalAssign(Fr, S);
      if (TT) {
        Shadow Sh = shadowOf(Fr, S.A);
        Sh.merge(shadowOf(Fr, S.B));
        Sh.merge(shadowOf(Fr, S.C));
        setTempShadow(Fr, S.Dst, Sh);
      }
      break;
    case StmtKind::Load: {
      // AddrSrc checking loads (ld.c) take the saved chain pointer and
      // re-apply index/offset; chk.a checks re-walk the whole chain (the
      // recovery reloads the address) and refresh the saved pointer.
      bool IsChkA =
          S.Flag == SpecFlag::ChkA || S.Flag == SpecFlag::ChkAnc;
      uint64_t Addr;
      uint64_t ChainPtr = 0;
      uint64_t PtrPre = 0; // Saved pointer register before a chk.a refresh.
      Shadow AddrShadow;   // Taint mode: shadow of the final address.
      if (S.hasAddrSrc() && !IsChkA) {
        int64_t Extra = S.Ref.Offset;
        if (S.Ref.hasIndex())
          Extra += static_cast<int64_t>(evalOperand(Fr, S.Ref.Index)) * 8;
        Addr = S.Ref.isIndirect()
                   ? Fr.Temps[S.AddrSrc] + static_cast<uint64_t>(Extra)
                   : Fr.Temps[S.AddrSrc];
        if (TT && S.AddrSrc < Fr.TempTaint.size())
          AddrShadow = Fr.TempTaint[S.AddrSrc];
      } else {
        if (IsChkA && S.AddrSrc != NoTemp)
          PtrPre = Fr.Temps[S.AddrSrc];
        Addr = computeAccessAddress(Fr, S, S.Ref, ChainPtr,
                                    TT ? &AddrShadow : nullptr);
        if (IsChkA && S.AddrSrc != NoTemp) {
          Fr.Temps[S.AddrSrc] = ChainPtr;
          // The check re-walked the chain architecturally, so the saved
          // pointer's shadow is refreshed from the (non-speculative) walk.
          setTempShadow(Fr, S.AddrSrc, AddrShadow);
        }
      }
      if (TT)
        AddrShadow.merge(indexShadow(Fr, S.Ref));
      if (S.AddrDst != NoTemp) {
        Fr.Temps[S.AddrDst] = S.Ref.isIndirect() ? ChainPtr : Addr;
        setTempShadow(Fr, S.AddrDst, AddrShadow);
      }
      uint64_t RegPre = Fr.Temps[S.Dst];
      recordAccess(Addr, /*IsLoad=*/true, isAdvancedFlag(S.Flag));
      recordLeak(Fr, TaintTrace::Sink::Address, S.Line, AddrShadow);
      uint64_t Value = read64(Addr);
      Fr.Temps[S.Dst] = Value;
      ++LoadsExecuted;
      if (TT) {
        Shadow DstShadow = memShadow(Addr);
        DstShadow.merge(AddrShadow);
        if (isAdvancedFlag(S.Flag)) {
          auto It = SpecSiteBit.find(&S);
          DstShadow.Spec |= It == SpecSiteBit.end() ? 0 : It->second;
        }
        // Checking loads (ld.c / chk.a) re-define Dst from architectural
        // memory without an advanced bit: a checked value stops being
        // speculative.
        setTempShadow(Fr, S.Dst, DstShadow);
      }
      if (AO && S.Flag != SpecFlag::None) {
        if (isAdvancedFlag(S.Flag)) {
          // Lowering allocates the chain-pointer entry first, then the
          // data entry (accessAddress, then the ld.a itself).
          if (S.Ref.isIndirect() && S.AddrDst != NoTemp)
            AO->onAllocate(Fr.F, S.AddrDst, LastChainSlot);
          AO->onAllocate(Fr.F, S.Dst, Addr);
        } else if (IsChkA) {
          // chk.a checks the chain pointer; on a miss its recovery
          // re-executes both advanced loads, then the continuation
          // re-checks the data with ld.c.nc (see codegen/Lowering.cpp).
          bool PtrHit = true;
          if (S.AddrSrc != NoTemp)
            PtrHit = AO->onCheck(Fr.F, S.AddrSrc, LastChainSlot,
                                 /*Clear=*/S.Flag == SpecFlag::ChkA,
                                 PtrPre, ChainPtr);
          if (!PtrHit) {
            AO->onAllocate(Fr.F, S.AddrSrc, LastChainSlot);
            AO->onAllocate(Fr.F, S.Dst, Addr);
          }
          AO->onCheck(Fr.F, S.Dst, Addr, /*Clear=*/false,
                      PtrHit ? RegPre : Value, Value);
        } else {
          AO->onCheck(Fr.F, S.Dst, Addr,
                      /*Clear=*/S.Flag == SpecFlag::LdC, RegPre, Value);
        }
      }
      break;
    }
    case StmtKind::Store: {
      uint64_t ChainPtr = 0;
      Shadow AddrShadow;
      uint64_t Addr = computeAccessAddress(Fr, S, S.Ref, ChainPtr,
                                           TT ? &AddrShadow : nullptr);
      if (TT)
        AddrShadow.merge(indexShadow(Fr, S.Ref));
      if (S.AddrDst != NoTemp) {
        Fr.Temps[S.AddrDst] = Addr; // stores expose the final address
        setTempShadow(Fr, S.AddrDst, AddrShadow);
      }
      recordAccess(Addr, /*IsLoad=*/false, /*Speculative=*/false);
      recordLeak(Fr, TaintTrace::Sink::Address, S.Line, AddrShadow);
      write64(Addr, evalOperand(Fr, S.A));
      if (TT)
        MemTaint[Addr >> 3] = shadowOf(Fr, S.A); // strong update
      ++StoresExecuted;
      if (AO) {
        AO->onStore(Addr);
        if (S.StA && S.AlatDst != NoTemp)
          AO->onAllocate(Fr.F, S.AlatDst, Addr);
      }
      break;
    }
    case StmtKind::AddrOf: {
      uint64_t Addr = symbolAddress(Fr, S.Ref.Base);
      if (S.Ref.hasIndex())
        Addr += static_cast<uint64_t>(
                    static_cast<int64_t>(evalOperand(Fr, S.Ref.Index))) *
                8;
      Addr += static_cast<uint64_t>(S.Ref.Offset);
      Fr.Temps[S.Dst] = Addr;
      setTempShadow(Fr, S.Dst, indexShadow(Fr, S.Ref));
      break;
    }
    case StmtKind::Alloc: {
      int64_t Count = static_cast<int64_t>(evalOperand(Fr, S.A));
      if (Count < 1)
        Count = 1;
      Fr.Temps[S.Dst] = allocateObject(
          *S.HeapSym, static_cast<uint64_t>(Count) * 8, /*OnStack=*/false);
      setTempShadow(Fr, S.Dst, Shadow());
      break;
    }
    case StmtKind::Call: {
      std::vector<uint64_t> Args;
      Args.reserve(S.Args.size());
      for (const Operand &Arg : S.Args)
        Args.push_back(evalOperand(Fr, Arg));
      std::vector<Shadow> ArgShadows;
      if (TT) {
        ArgShadows.reserve(S.Args.size());
        for (const Operand &Arg : S.Args)
          ArgShadows.push_back(shadowOf(Fr, Arg));
      }
      uint64_t CallRet = 0;
      Shadow CallRetShadow;
      if (!callFunction(*S.Callee, Args, CallRet,
                        TT ? &ArgShadows : nullptr,
                        TT ? &CallRetShadow : nullptr))
        return nullptr;
      if (S.Dst != NoTemp) {
        Fr.Temps[S.Dst] = CallRet;
        setTempShadow(Fr, S.Dst, CallRetShadow);
      }
      break;
    }
    case StmtKind::Invala:
      // Architectural hint; no functional effect.
      if (AO)
        AO->onInvala(Fr.F, S.Dst);
      break;
    case StmtKind::Print: {
      uint64_t Bits = evalOperand(Fr, S.A);
      recordLeak(Fr, TaintTrace::Sink::Output, S.Line, shadowOf(Fr, S.A));
      bool IsFloat = S.A.K == Operand::Kind::ConstFloat ||
                     (S.A.isTemp() &&
                      Fr.F->tempType(S.A.TempId) == TypeKind::Float);
      if (IsFloat)
        Output.push_back(
            formatString("%.6g", std::bit_cast<double>(Bits)));
      else
        Output.push_back(formatString(
            "%lld", static_cast<long long>(static_cast<int64_t>(Bits))));
      break;
    }
    }
  }
  if (Trapped)
    return nullptr;
  const Terminator &T = BB->term();
  switch (T.Kind) {
  case TermKind::Br:
    if (EP)
      EP->countEdge(BB, T.Target);
    return T.Target;
  case TermKind::CondBr: {
    bool Taken = evalOperand(Fr, T.Cond) != 0;
    // Terminators carry no line; attribute branch leaks to the block's
    // final statement (0 for statement-free blocks).
    recordLeak(Fr, TaintTrace::Sink::Branch,
               BB->size() ? BB->stmt(BB->size() - 1)->Line : 0,
               shadowOf(Fr, T.Cond));
    const BasicBlock *Next = Taken ? T.Target : T.FalseTarget;
    if (EP)
      EP->countEdge(BB, Next);
    return Next;
  }
  case TermKind::Ret:
    RetBits = T.RetVal.isNone() ? 0 : evalOperand(Fr, T.RetVal);
    if (TT)
      Fr.RetShadow = shadowOf(Fr, T.RetVal);
    return nullptr;
  }
  SRP_UNREACHABLE("invalid terminator");
}

bool Execution::callFunction(const Function &F,
                             const std::vector<uint64_t> &Args,
                             uint64_t &RetBits,
                             const std::vector<Shadow> *ArgShadows,
                             Shadow *RetShadow) {
  if (++CallDepth > 512) {
    trap("call depth limit exceeded");
    --CallDepth;
    return false;
  }
  Frame Fr;
  Fr.F = &F;
  Fr.Temps.assign(F.numTemps(), 0);
  if (TT)
    Fr.TempTaint.assign(F.numTemps(), Shadow());
  Fr.SavedStackTop = StackTop;

  auto PlaceSlot = [&](const Symbol *Sym) {
    Fr.SlotAddr[Sym] = allocateObject(*Sym, Sym->sizeInBytes(),
                                      /*OnStack=*/true);
  };
  for (const Symbol *Formal : F.formals())
    PlaceSlot(Formal);
  for (const Symbol *Local : F.locals())
    PlaceSlot(Local);
  for (size_t I = 0; I < Args.size() && I < F.formals().size(); ++I) {
    write64(Fr.SlotAddr[F.formals()[I]], Args[I]);
    // allocateObject seeded the slot with the formal's own Secret label;
    // the incoming argument's shadow merges on top.
    if (TT && ArgShadows && I < ArgShadows->size())
      MemTaint[Fr.SlotAddr[F.formals()[I]] >> 3].merge((*ArgShadows)[I]);
  }

  const BasicBlock *BB = F.entry();
  RetBits = 0;
  while (BB && !Trapped)
    BB = execBlock(Fr, BB, RetBits);

  // Pop the frame: remove stack objects and restore the stack pointer.
  for (auto &[Sym, Addr] : Fr.SlotAddr)
    Objects.erase(Addr);
  StackTop = Fr.SavedStackTop;
  --CallDepth;
  if (AO)
    AO->onReturn(&F);
  if (RetShadow)
    *RetShadow = Fr.RetShadow;
  return !Trapped;
}

RunResult Interpreter::run(uint64_t Fuel) {
  Execution Exec(M, AP, EP, AO, MT, TT, Fuel);
  return Exec.run();
}

const char *srp::interp::taintSinkName(TaintTrace::Sink S) {
  switch (S) {
  case TaintTrace::Sink::Address:
    return "address";
  case TaintTrace::Sink::Branch:
    return "branch";
  case TaintTrace::Sink::Output:
    return "output";
  }
  SRP_UNREACHABLE("invalid taint sink");
}

std::vector<std::pair<const ir::Stmt *, unsigned>>
srp::interp::specSiteIndex(const ir::Module &M) {
  std::vector<std::pair<const ir::Stmt *, unsigned>> Sites;
  unsigned Next = 0;
  for (unsigned FI = 0, FE = M.numFunctions(); FI != FE; ++FI) {
    const Function *F = M.function(FI);
    for (unsigned BI = 0, BE = F->numBlocks(); BI != BE; ++BI) {
      const BasicBlock *BB = F->block(BI);
      for (size_t SI = 0, SE = BB->size(); SI != SE; ++SI) {
        const Stmt *S = BB->stmt(SI);
        if (S->Kind == StmtKind::Load && isAdvancedFlag(S->Flag)) {
          Sites.emplace_back(S, std::min(Next, 63u));
          ++Next;
        }
      }
    }
  }
  return Sites;
}
