//===- Profile.h - Alias and edge profiles ----------------------*- C++ -*-===//
//
// Part of the srp-alat project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runtime feedback containers. The paper's framework instruments a run on
/// the train input and collects, for every load/store site, the set of
/// symbols the access actually touched (Chen et al. [7,8]); the HSSA
/// builder then marks χ/μ whose target never appears in the profile as
/// speculative. The edge profile guides PRE's profitability heuristics.
///
//===----------------------------------------------------------------------===//

#ifndef SRP_INTERP_PROFILE_H
#define SRP_INTERP_PROFILE_H

#include "ir/CFG.h"

#include <cstdint>
#include <map>
#include <set>
#include <utility>

namespace srp::interp {

/// Per-site observed points-to targets.
///
/// A site is (function, statement id); for an access of dereference depth
/// D, level i in [1, D] records the symbol whose storage the i-th
/// dereference landed in. Dereferences of addresses outside any known
/// object record the distinguished UnknownTarget.
class AliasProfile {
public:
  /// Marker for a dereference that escaped all known objects.
  static constexpr unsigned UnknownTarget = ~0u;

  /// Records one observed target at \p Level (1-based) of the access at
  /// statement \p StmtId in \p F. Hot interpreter loops record the same
  /// (site, symbol) observation millions of times in a row, so the last
  /// observation short-circuits the map-and-set insert; the cache holds
  /// no pointers and only ever skips work already done, so it stays
  /// correct under copy and move.
  void recordTarget(const ir::Function *F, unsigned StmtId, unsigned Level,
                    unsigned SymbolId) {
    if (F == LastKey.F && StmtId == LastKey.StmtId &&
        Level == LastKey.Level && SymbolId == LastSym)
      return;
    Targets[SiteKey{F, StmtId, Level}].insert(SymbolId);
    LastKey = SiteKey{F, StmtId, Level};
    LastSym = SymbolId;
  }

  /// True if the site executed at least once (any level).
  bool siteExecuted(const ir::Function *F, unsigned StmtId) const {
    auto It = Targets.lower_bound(SiteKey{F, StmtId, 0});
    return It != Targets.end() && It->first.F == F &&
           It->first.StmtId == StmtId;
  }

  /// True if \p Sym was ever a level-\p Level target of the site. Returns
  /// true as well when the site recorded an unknown target at that level
  /// (the profile cannot rule anything out then).
  bool observed(const ir::Function *F, unsigned StmtId, unsigned Level,
                const ir::Symbol *Sym) const {
    auto It = Targets.find(SiteKey{F, StmtId, Level});
    if (It == Targets.end())
      return false;
    return It->second.count(Sym->Id) || It->second.count(UnknownTarget);
  }

  /// Observed target set of one level, or null.
  const std::set<unsigned> *targets(const ir::Function *F, unsigned StmtId,
                                    unsigned Level) const {
    auto It = Targets.find(SiteKey{F, StmtId, Level});
    return It == Targets.end() ? nullptr : &It->second;
  }

  /// Number of profiled (site, level) entries.
  size_t size() const { return Targets.size(); }

private:
  struct SiteKey {
    const ir::Function *F;
    unsigned StmtId;
    unsigned Level;

    bool operator<(const SiteKey &O) const {
      if (F != O.F)
        return F < O.F;
      if (StmtId != O.StmtId)
        return StmtId < O.StmtId;
      return Level < O.Level;
    }
  };

  std::map<SiteKey, std::set<unsigned>> Targets;
  /// Last recorded observation (see recordTarget).
  SiteKey LastKey{nullptr, 0, 0};
  unsigned LastSym = 0;
};

/// Block and edge execution counts.
///
/// The two count methods run once per interpreted block and branch, and
/// repeated executions of a loop hit the same key every time, so each
/// keeps a one-entry cache of the last counter. The cached pointers
/// target map nodes (stable under insert), but must not survive into a
/// copy or out of a move — the special members below reset them.
class EdgeProfile {
public:
  EdgeProfile() = default;
  EdgeProfile(const EdgeProfile &O)
      : BlockCounts(O.BlockCounts), EdgeCounts(O.EdgeCounts) {}
  EdgeProfile(EdgeProfile &&O)
      : BlockCounts(std::move(O.BlockCounts)),
        EdgeCounts(std::move(O.EdgeCounts)) {
    O.resetCache();
  }
  EdgeProfile &operator=(const EdgeProfile &O) {
    BlockCounts = O.BlockCounts;
    EdgeCounts = O.EdgeCounts;
    resetCache();
    return *this;
  }
  EdgeProfile &operator=(EdgeProfile &&O) {
    BlockCounts = std::move(O.BlockCounts);
    EdgeCounts = std::move(O.EdgeCounts);
    resetCache();
    O.resetCache();
    return *this;
  }

  void countBlock(const ir::BasicBlock *BB) {
    if (BB != LastBlock) {
      LastBlock = BB;
      LastBlockCount = &BlockCounts[BB];
    }
    ++*LastBlockCount;
  }

  void countEdge(const ir::BasicBlock *From, const ir::BasicBlock *To) {
    if (From != LastEdge.first || To != LastEdge.second) {
      LastEdge = {From, To};
      LastEdgeCount = &EdgeCounts[LastEdge];
    }
    ++*LastEdgeCount;
  }

  /// Bulk accumulation (profile remapping across module rebuilds).
  void addBlockCount(const ir::BasicBlock *BB, uint64_t N) {
    BlockCounts[BB] += N;
  }
  void addEdgeCount(const ir::BasicBlock *From, const ir::BasicBlock *To,
                    uint64_t N) {
    EdgeCounts[{From, To}] += N;
  }

  uint64_t blockCount(const ir::BasicBlock *BB) const {
    auto It = BlockCounts.find(BB);
    return It == BlockCounts.end() ? 0 : It->second;
  }

  uint64_t edgeCount(const ir::BasicBlock *From,
                     const ir::BasicBlock *To) const {
    auto It = EdgeCounts.find({From, To});
    return It == EdgeCounts.end() ? 0 : It->second;
  }

  bool empty() const { return BlockCounts.empty(); }

private:
  void resetCache() {
    LastBlock = nullptr;
    LastBlockCount = nullptr;
    LastEdge = {nullptr, nullptr};
    LastEdgeCount = nullptr;
  }

  std::map<const ir::BasicBlock *, uint64_t> BlockCounts;
  std::map<std::pair<const ir::BasicBlock *, const ir::BasicBlock *>,
           uint64_t>
      EdgeCounts;
  const ir::BasicBlock *LastBlock = nullptr;
  uint64_t *LastBlockCount = nullptr;
  std::pair<const ir::BasicBlock *, const ir::BasicBlock *> LastEdge{nullptr,
                                                                     nullptr};
  uint64_t *LastEdgeCount = nullptr;
};

} // namespace srp::interp

#endif // SRP_INTERP_PROFILE_H
