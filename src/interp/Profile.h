//===- Profile.h - Alias and edge profiles ----------------------*- C++ -*-===//
//
// Part of the srp-alat project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runtime feedback containers. The paper's framework instruments a run on
/// the train input and collects, for every load/store site, the set of
/// symbols the access actually touched (Chen et al. [7,8]); the HSSA
/// builder then marks χ/μ whose target never appears in the profile as
/// speculative. The edge profile guides PRE's profitability heuristics.
///
//===----------------------------------------------------------------------===//

#ifndef SRP_INTERP_PROFILE_H
#define SRP_INTERP_PROFILE_H

#include "ir/CFG.h"

#include <cstdint>
#include <map>
#include <set>

namespace srp::interp {

/// Per-site observed points-to targets.
///
/// A site is (function, statement id); for an access of dereference depth
/// D, level i in [1, D] records the symbol whose storage the i-th
/// dereference landed in. Dereferences of addresses outside any known
/// object record the distinguished UnknownTarget.
class AliasProfile {
public:
  /// Marker for a dereference that escaped all known objects.
  static constexpr unsigned UnknownTarget = ~0u;

  /// Records one observed target at \p Level (1-based) of the access at
  /// statement \p StmtId in \p F.
  void recordTarget(const ir::Function *F, unsigned StmtId, unsigned Level,
                    unsigned SymbolId) {
    Targets[SiteKey{F, StmtId, Level}].insert(SymbolId);
  }

  /// True if the site executed at least once (any level).
  bool siteExecuted(const ir::Function *F, unsigned StmtId) const {
    auto It = Targets.lower_bound(SiteKey{F, StmtId, 0});
    return It != Targets.end() && It->first.F == F &&
           It->first.StmtId == StmtId;
  }

  /// True if \p Sym was ever a level-\p Level target of the site. Returns
  /// true as well when the site recorded an unknown target at that level
  /// (the profile cannot rule anything out then).
  bool observed(const ir::Function *F, unsigned StmtId, unsigned Level,
                const ir::Symbol *Sym) const {
    auto It = Targets.find(SiteKey{F, StmtId, Level});
    if (It == Targets.end())
      return false;
    return It->second.count(Sym->Id) || It->second.count(UnknownTarget);
  }

  /// Observed target set of one level, or null.
  const std::set<unsigned> *targets(const ir::Function *F, unsigned StmtId,
                                    unsigned Level) const {
    auto It = Targets.find(SiteKey{F, StmtId, Level});
    return It == Targets.end() ? nullptr : &It->second;
  }

  /// Number of profiled (site, level) entries.
  size_t size() const { return Targets.size(); }

private:
  struct SiteKey {
    const ir::Function *F;
    unsigned StmtId;
    unsigned Level;

    bool operator<(const SiteKey &O) const {
      if (F != O.F)
        return F < O.F;
      if (StmtId != O.StmtId)
        return StmtId < O.StmtId;
      return Level < O.Level;
    }
  };

  std::map<SiteKey, std::set<unsigned>> Targets;
};

/// Block and edge execution counts.
class EdgeProfile {
public:
  void countBlock(const ir::BasicBlock *BB) { ++BlockCounts[BB]; }

  void countEdge(const ir::BasicBlock *From, const ir::BasicBlock *To) {
    ++EdgeCounts[{From, To}];
  }

  /// Bulk accumulation (profile remapping across module rebuilds).
  void addBlockCount(const ir::BasicBlock *BB, uint64_t N) {
    BlockCounts[BB] += N;
  }
  void addEdgeCount(const ir::BasicBlock *From, const ir::BasicBlock *To,
                    uint64_t N) {
    EdgeCounts[{From, To}] += N;
  }

  uint64_t blockCount(const ir::BasicBlock *BB) const {
    auto It = BlockCounts.find(BB);
    return It == BlockCounts.end() ? 0 : It->second;
  }

  uint64_t edgeCount(const ir::BasicBlock *From,
                     const ir::BasicBlock *To) const {
    auto It = EdgeCounts.find({From, To});
    return It == EdgeCounts.end() ? 0 : It->second;
  }

  bool empty() const { return BlockCounts.empty(); }

private:
  std::map<const ir::BasicBlock *, uint64_t> BlockCounts;
  std::map<std::pair<const ir::BasicBlock *, const ir::BasicBlock *>,
           uint64_t>
      EdgeCounts;
};

} // namespace srp::interp

#endif // SRP_INTERP_PROFILE_H
