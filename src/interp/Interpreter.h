//===- Interpreter.h - IR execution and profiling ---------------*- C++ -*-===//
//
// Part of the srp-alat project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes a Module directly. The interpreter is (a) the correctness
/// oracle the differential tests compare every compiled configuration
/// against, and (b) the profiling vehicle: with profiles attached it
/// records per-site alias targets (train run) and edge counts.
///
/// The memory layout (globals / stack / heap bases) matches the simulator
/// so that address-dependent behaviour cannot diverge between the oracle
/// and compiled code.
///
//===----------------------------------------------------------------------===//

#ifndef SRP_INTERP_INTERPRETER_H
#define SRP_INTERP_INTERPRETER_H

#include "interp/Profile.h"
#include "ir/CFG.h"

#include <string>
#include <unordered_map>
#include <vector>

namespace srp::interp {

/// Shared address-space constants (also used by the simulator's loader).
namespace layout {
inline constexpr uint64_t GlobalBase = 0x0000000000010000ULL;
inline constexpr uint64_t StackBase = 0x0000000040000000ULL; ///< grows down
inline constexpr uint64_t HeapBase = 0x0000000080000000ULL;  ///< grows up
} // namespace layout

/// Outcome of one interpreted run.
struct RunResult {
  bool Ok = false;
  std::string Error;                ///< Set when !Ok (trap, fuel, ...).
  std::vector<std::string> Output;  ///< One entry per executed print.
  uint64_t StmtsExecuted = 0;
  uint64_t LoadsExecuted = 0;
  uint64_t StoresExecuted = 0;
  int64_t ExitValue = 0;            ///< main's return value (0 if void).
};

class AlatObserver;

/// Observable memory behaviour of one run, filled when a trace sink is
/// attached (Interpreter::setMemTrace). The differential oracle
/// (valid::DiffOracle) compares promoted against unpromoted runs on this:
/// final memory state, and — for the SNIP-style non-interference check —
/// which objects speculative (advanced-flagged) loads observed.
struct MemTrace {
  struct Access {
    uint64_t Addr = 0;
    /// Symbol whose storage the access landed in, or
    /// AliasProfile::UnknownTarget for an address outside every object.
    unsigned Symbol = 0;
    bool IsLoad = false;
    /// True for loads executed under an advanced flag (ld.a / ld.sa),
    /// including the pointer-chain dereferences such a load performs:
    /// these may execute with a value the architectural program would
    /// not have used, so their addresses are the speculative
    /// observations promotion introduces.
    bool Speculative = false;
  };
  std::vector<Access> Accesses;
  /// Final value of every global cell after the run, in declaration
  /// order (each global contributes NumElems consecutive cells).
  std::vector<uint64_t> FinalGlobals;
};

/// Shadow taint of one runtime value (a temp or an 8-byte memory cell).
/// Secret marks data derived from a `secret`-annotated symbol; Spec is a
/// bitmask of the advanced-load sites (see specSiteIndex) whose unchecked
/// values the data depends on — nonzero means "speculative". A value that
/// is both secret and speculative reaching an address computation, branch
/// condition, or program output is a speculative leak.
struct Shadow {
  bool Secret = false;
  uint64_t Spec = 0;

  void merge(const Shadow &O) {
    Secret |= O.Secret;
    Spec |= O.Spec;
  }
  bool leaks() const { return Secret && Spec != 0; }
};

/// Dynamic taint observations of one run, filled when attached with
/// Interpreter::setTaintTrace. The shadow propagation intentionally
/// *under*-approximates information flow (no implicit flows through
/// branches, fresh frames reset slot taint) so that every recorded leak
/// is also derivable by the static analysis::TaintFlow over-approximation
/// — the two sides audit each other (valid::DiffOracle reports a static
/// PASS with a dynamic leak as a disagreement finding).
struct TaintTrace {
  enum class Sink : uint8_t {
    Address, ///< Tainted speculative value formed a memory-access address.
    Branch,  ///< ... decided a conditional branch.
    Output,  ///< ... was printed.
  };

  struct Leak {
    Sink S = Sink::Address;
    std::string Function;
    unsigned Line = 0;    ///< Stmt::Line (0 for synthesised IR / branches).
    uint64_t SpecMask = 0; ///< Advanced-load sites the value depended on.
  };
  /// Deduplicated by (function, line, sink); masks of repeats are merged.
  std::vector<Leak> Leaks;
};

const char *taintSinkName(TaintTrace::Sink S);

/// Deterministic indexing of the module's advanced-load sites (ld.a /
/// ld.sa statements, in function/block/statement order): the bit each
/// site owns in Shadow::Spec masks. Sites past 63 share bit 63. Both the
/// interpreter's shadow propagation and analysis::TaintFlow use this, so
/// their masks are comparable.
std::vector<std::pair<const ir::Stmt *, unsigned>>
specSiteIndex(const ir::Module &M);

/// Direct executor for the IR.
class Interpreter {
public:
  explicit Interpreter(const ir::Module &M) : M(M) {}

  /// Attaches an alias profile to fill during subsequent runs.
  void setAliasProfile(AliasProfile *Profile) { AP = Profile; }

  /// Attaches an edge profile to fill during subsequent runs.
  void setEdgeProfile(EdgeProfile *Profile) { EP = Profile; }

  /// Attaches an ALAT observer (see AlatObserver.h) that replays the
  /// run's speculation against an adversarial hardware model.
  void setAlatObserver(AlatObserver *Observer) { AO = Observer; }

  /// Attaches a memory-trace sink recording every access and the final
  /// global state (cleared at the start of each run).
  void setMemTrace(MemTrace *Trace) { MT = Trace; }

  /// Attaches a taint-trace sink: the run shadow-propagates secret/
  /// speculative bits through temps and memory cells and records every
  /// speculative-leak sink it executes (cleared at the start of each
  /// run). Costs nothing when unset.
  void setTaintTrace(TaintTrace *Trace) { TT = Trace; }

  /// Runs main() with at most \p Fuel statements; resets memory first.
  RunResult run(uint64_t Fuel = 100'000'000);

private:
  friend class Execution;

  const ir::Module &M;
  AliasProfile *AP = nullptr;
  EdgeProfile *EP = nullptr;
  AlatObserver *AO = nullptr;
  MemTrace *MT = nullptr;
  TaintTrace *TT = nullptr;
};

} // namespace srp::interp

#endif // SRP_INTERP_INTERPRETER_H
