//===- Interpreter.h - IR execution and profiling ---------------*- C++ -*-===//
//
// Part of the srp-alat project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes a Module directly. The interpreter is (a) the correctness
/// oracle the differential tests compare every compiled configuration
/// against, and (b) the profiling vehicle: with profiles attached it
/// records per-site alias targets (train run) and edge counts.
///
/// The memory layout (globals / stack / heap bases) matches the simulator
/// so that address-dependent behaviour cannot diverge between the oracle
/// and compiled code.
///
//===----------------------------------------------------------------------===//

#ifndef SRP_INTERP_INTERPRETER_H
#define SRP_INTERP_INTERPRETER_H

#include "interp/Profile.h"
#include "ir/CFG.h"

#include <string>
#include <unordered_map>
#include <vector>

namespace srp::interp {

/// Shared address-space constants (also used by the simulator's loader).
namespace layout {
inline constexpr uint64_t GlobalBase = 0x0000000000010000ULL;
inline constexpr uint64_t StackBase = 0x0000000040000000ULL; ///< grows down
inline constexpr uint64_t HeapBase = 0x0000000080000000ULL;  ///< grows up
} // namespace layout

/// Outcome of one interpreted run.
struct RunResult {
  bool Ok = false;
  std::string Error;                ///< Set when !Ok (trap, fuel, ...).
  std::vector<std::string> Output;  ///< One entry per executed print.
  uint64_t StmtsExecuted = 0;
  uint64_t LoadsExecuted = 0;
  uint64_t StoresExecuted = 0;
  int64_t ExitValue = 0;            ///< main's return value (0 if void).
};

class AlatObserver;

/// Observable memory behaviour of one run, filled when a trace sink is
/// attached (Interpreter::setMemTrace). The differential oracle
/// (valid::DiffOracle) compares promoted against unpromoted runs on this:
/// final memory state, and — for the SNIP-style non-interference check —
/// which objects speculative (advanced-flagged) loads observed.
struct MemTrace {
  struct Access {
    uint64_t Addr = 0;
    /// Symbol whose storage the access landed in, or
    /// AliasProfile::UnknownTarget for an address outside every object.
    unsigned Symbol = 0;
    bool IsLoad = false;
    /// True for loads executed under an advanced flag (ld.a / ld.sa),
    /// including the pointer-chain dereferences such a load performs:
    /// these may execute with a value the architectural program would
    /// not have used, so their addresses are the speculative
    /// observations promotion introduces.
    bool Speculative = false;
  };
  std::vector<Access> Accesses;
  /// Final value of every global cell after the run, in declaration
  /// order (each global contributes NumElems consecutive cells).
  std::vector<uint64_t> FinalGlobals;
};

/// Direct executor for the IR.
class Interpreter {
public:
  explicit Interpreter(const ir::Module &M) : M(M) {}

  /// Attaches an alias profile to fill during subsequent runs.
  void setAliasProfile(AliasProfile *Profile) { AP = Profile; }

  /// Attaches an edge profile to fill during subsequent runs.
  void setEdgeProfile(EdgeProfile *Profile) { EP = Profile; }

  /// Attaches an ALAT observer (see AlatObserver.h) that replays the
  /// run's speculation against an adversarial hardware model.
  void setAlatObserver(AlatObserver *Observer) { AO = Observer; }

  /// Attaches a memory-trace sink recording every access and the final
  /// global state (cleared at the start of each run).
  void setMemTrace(MemTrace *Trace) { MT = Trace; }

  /// Runs main() with at most \p Fuel statements; resets memory first.
  RunResult run(uint64_t Fuel = 100'000'000);

private:
  friend class Execution;

  const ir::Module &M;
  AliasProfile *AP = nullptr;
  EdgeProfile *EP = nullptr;
  AlatObserver *AO = nullptr;
  MemTrace *MT = nullptr;
};

} // namespace srp::interp

#endif // SRP_INTERP_INTERPRETER_H
