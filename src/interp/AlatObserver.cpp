//===- AlatObserver.cpp - IR-level ALAT observation -------------------------===//

#include "interp/AlatObserver.h"

using namespace srp::interp;

void AlatObserver::insert(const void *Owner, unsigned Reg, uint64_t Addr) {
  Key K{Owner, Reg};
  auto It = Table.find(K);
  if (It != Table.end()) {
    It->second.Addr = Addr;
    It->second.Stamp = ++Stamp;
    return;
  }
  if (Table.size() >= Capacity) {
    auto Oldest = Table.begin();
    for (auto I = Table.begin(); I != Table.end(); ++I)
      if (I->second.Stamp < Oldest->second.Stamp)
        Oldest = I;
    Table.erase(Oldest);
    ++Stats.CapacityEvictions;
  }
  Table.emplace(K, Entry{Addr, ++Stamp});
}

void AlatObserver::onAllocate(const void *Owner, unsigned Reg,
                              uint64_t Addr) {
  ++Stats.Allocations;
  insert(Owner, Reg, Addr);
}

void AlatObserver::onStore(uint64_t Addr) {
  for (auto It = Table.begin(); It != Table.end();) {
    if (It->second.Addr == Addr) {
      It = Table.erase(It);
      ++Stats.StoreInvalidations;
    } else {
      ++It;
    }
  }
}

bool AlatObserver::onCheck(const void *Owner, unsigned Reg, uint64_t Addr,
                           bool Clear, uint64_t RegValue,
                           uint64_t MemValue) {
  Key K{Owner, Reg};
  auto It = Table.find(K);
  bool Hit = It != Table.end() && It->second.Addr == Addr;
  if (Hit) {
    ++Stats.CheckHits;
    if (RegValue != MemValue)
      ++Stats.StaleHits; // Hardware would have kept the stale register.
    if (Clear)
      Table.erase(It);
  } else {
    ++Stats.CheckMisses;
    if (Clear) {
      // The .clr completer leaves no entry behind either way.
      if (It != Table.end())
        Table.erase(It);
    } else {
      // ld.c.nc re-allocates after its reload.
      ++Stats.Allocations;
      insert(Owner, Reg, Addr);
    }
  }
  return Hit;
}

void AlatObserver::onInvala(const void *Owner, unsigned Reg) {
  Table.erase(Key{Owner, Reg});
}

void AlatObserver::onReturn(const void *Owner) {
  for (auto It = Table.begin(); It != Table.end();) {
    if (It->first.first == Owner)
      It = Table.erase(It);
    else
      ++It;
  }
}
