//===- RegAlloc.cpp - Linear-scan register allocation ------------------------===//

#include "codegen/RegAlloc.h"

#include "support/Error.h"

#include <algorithm>
#include <cassert>
#include <set>

using namespace srp;
using namespace srp::codegen;

namespace {

/// Allocates one function.
class FunctionAllocator {
public:
  FunctionAllocator(MFunction &F, const RegAllocOptions &Options,
                    RegAllocStats &Stats)
      : F(F), Options(Options), Stats(Stats) {}

  void run() {
    numberInstructions();
    computeLiveness();
    buildIntervals();
    allocate();
    rewrite();
    patchPrologue();
  }

private:
  struct Interval {
    unsigned VReg;
    unsigned Start;
    unsigned End;
    bool Fp;
    bool AlatTracked;
    unsigned Assigned = NoReg;
    int64_t SpillSlot = 0;
    bool Spilled = false;
  };

  unsigned vindex(unsigned Reg) const { return Reg - FirstVirtualReg; }

  void numberInstructions() {
    unsigned N = 0;
    BlockStart.resize(F.numBlocks());
    BlockEnd.resize(F.numBlocks());
    for (unsigned BI = 0; BI < F.numBlocks(); ++BI) {
      BlockStart[BI] = N;
      N += static_cast<unsigned>(F.block(BI).Instrs.size());
      BlockEnd[BI] = N; // one past the last instruction
    }
    NumPositions = N;
  }

  /// Successor blocks of BI, derived from the terminator (plus call
  /// resume and chk.a recovery edges).
  std::vector<unsigned> successors(unsigned BI) const {
    std::vector<unsigned> Out;
    const auto &Instrs = F.block(BI).Instrs;
    if (Instrs.empty())
      return Out;
    const MInstr &T = Instrs.back();
    switch (T.Op) {
    case MOp::Br:
      Out.push_back(T.Target);
      break;
    case MOp::BrCond:
      Out.push_back(T.Target);
      Out.push_back(T.FalseTarget);
      break;
    case MOp::ChkA:
      Out.push_back(T.Target);
      Out.push_back(T.Recovery);
      break;
    case MOp::Call:
      Out.push_back(T.Target);
      break;
    case MOp::Ret:
      break;
    default:
      // Fall-through should not happen (blocks always end in a
      // terminator); be permissive for partially built functions.
      if (BI + 1 < F.numBlocks())
        Out.push_back(BI + 1);
      break;
    }
    return Out;
  }

  void computeLiveness() {
    unsigned NumV = F.numVirtualRegs();
    LiveIn.assign(F.numBlocks(), std::vector<bool>(NumV, false));
    LiveOut.assign(F.numBlocks(), std::vector<bool>(NumV, false));
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (unsigned BI = F.numBlocks(); BI-- > 0;) {
        std::vector<bool> Out(NumV, false);
        for (unsigned Succ : successors(BI))
          for (unsigned V = 0; V < NumV; ++V)
            if (LiveIn[Succ][V])
              Out[V] = true;
        std::vector<bool> In = Out;
        const auto &Instrs = F.block(BI).Instrs;
        for (auto It = Instrs.rbegin(); It != Instrs.rend(); ++It) {
          if (It->definesReg() && isVirtualReg(It->Rd))
            In[vindex(It->Rd)] = false;
          unsigned Srcs[3];
          unsigned Count;
          It->sources(Srcs, Count);
          for (unsigned K = 0; K < Count; ++K)
            if (isVirtualReg(Srcs[K]))
              In[vindex(Srcs[K])] = true;
        }
        if (In != LiveIn[BI] || Out != LiveOut[BI]) {
          LiveIn[BI] = std::move(In);
          LiveOut[BI] = std::move(Out);
          Changed = true;
        }
      }
    }
  }

  void buildIntervals() {
    unsigned NumV = F.numVirtualRegs();
    std::vector<unsigned> Start(NumV, ~0u), End(NumV, 0);
    std::vector<bool> Tracked(NumV, false), Seen(NumV, false);
    auto Extend = [&](unsigned V, unsigned Pos) {
      Seen[V] = true;
      Start[V] = std::min(Start[V], Pos);
      End[V] = std::max(End[V], Pos + 1);
    };
    for (unsigned BI = 0; BI < F.numBlocks(); ++BI) {
      unsigned Pos = BlockStart[BI];
      for (const MInstr &I : F.block(BI).Instrs) {
        if (I.definesReg() && isVirtualReg(I.Rd)) {
          Extend(vindex(I.Rd), Pos);
          if (I.Op == MOp::LdA || I.Op == MOp::LdSA || isCheckLoad(I.Op))
            Tracked[vindex(I.Rd)] = true;
        }
        unsigned Srcs[3];
        unsigned Count;
        I.sources(Srcs, Count);
        for (unsigned K = 0; K < Count; ++K)
          if (isVirtualReg(Srcs[K]))
            Extend(vindex(Srcs[K]), Pos);
        if (I.Op == MOp::StA && isVirtualReg(I.Rs2))
          Tracked[vindex(I.Rs2)] = true;
        if ((I.Op == MOp::InvalaE || I.Op == MOp::ChkA) &&
            isVirtualReg(I.Rs1))
          Tracked[vindex(I.Rs1)] = true;
        ++Pos;
      }
      for (unsigned V = 0; V < NumV; ++V) {
        if (LiveIn[BI][V])
          Extend(V, BlockStart[BI]);
        if (LiveOut[BI][V])
          Extend(V, BlockEnd[BI] == 0 ? 0 : BlockEnd[BI] - 1);
      }
    }
    for (unsigned V = 0; V < NumV; ++V) {
      if (!Seen[V])
        continue;
      Interval IV;
      IV.VReg = FirstVirtualReg + V;
      IV.Start = Start[V];
      IV.End = End[V];
      IV.Fp = F.isVirtFp(IV.VReg);
      IV.AlatTracked = Tracked[V];
      Intervals.push_back(IV);
    }
    std::sort(Intervals.begin(), Intervals.end(),
              [](const Interval &A, const Interval &B) {
                return A.Start < B.Start ||
                       (A.Start == B.Start && A.VReg < B.VReg);
              });
  }

  void allocate() {
    // Two independent pools; classic linear scan with furthest-end spill,
    // preferring to spill untracked intervals.
    std::vector<unsigned> FreeInt, FreeFp;
    for (unsigned I = 0; I < Options.IntPoolSize; ++I)
      FreeInt.push_back(FirstStackedReg + I);
    for (unsigned I = 0; I < Options.FpPoolSize; ++I)
      FreeFp.push_back(FpRegBase + FirstStackedReg + I);
    std::reverse(FreeInt.begin(), FreeInt.end());
    std::reverse(FreeFp.begin(), FreeFp.end());

    std::vector<Interval *> Active;
    unsigned IntInUse = 0, FpInUse = 0;
    for (Interval &IV : Intervals) {
      // Expire old intervals.
      for (size_t K = 0; K < Active.size();) {
        if (Active[K]->End <= IV.Start) {
          (Active[K]->Fp ? FreeFp : FreeInt)
              .push_back(Active[K]->Assigned);
          (Active[K]->Fp ? FpInUse : IntInUse) -= 1;
          Active.erase(Active.begin() + static_cast<ptrdiff_t>(K));
        } else {
          ++K;
        }
      }
      auto &Pool = IV.Fp ? FreeFp : FreeInt;
      if (!Pool.empty()) {
        IV.Assigned = Pool.back();
        Pool.pop_back();
        Active.push_back(&IV);
        unsigned &InUse = IV.Fp ? FpInUse : IntInUse;
        ++InUse;
        unsigned &MaxP = IV.Fp ? Stats.MaxFpPressure : Stats.MaxIntPressure;
        MaxP = std::max(MaxP, InUse);
        continue;
      }
      // Spill: the active interval of the same class with the furthest
      // end that is not ALAT-tracked; otherwise spill the new interval.
      Interval *Victim = nullptr;
      for (Interval *Cand : Active)
        if (Cand->Fp == IV.Fp && !Cand->AlatTracked)
          if (!Victim || Cand->End > Victim->End)
            Victim = Cand;
      if (Victim && Victim->End > IV.End && !IV.AlatTracked) {
        IV.Assigned = Victim->Assigned;
        Victim->Assigned = NoReg;
        Victim->Spilled = true;
        Victim->SpillSlot = F.allocateFrameBytes(8);
        ++Stats.SpilledRegs;
        *std::find(Active.begin(), Active.end(), Victim) = &IV;
        continue;
      }
      if (IV.AlatTracked && Victim) {
        // Tracked intervals must stay in registers; evict the victim.
        IV.Assigned = Victim->Assigned;
        Victim->Assigned = NoReg;
        Victim->Spilled = true;
        Victim->SpillSlot = F.allocateFrameBytes(8);
        ++Stats.SpilledRegs;
        *std::find(Active.begin(), Active.end(), Victim) = &IV;
        continue;
      }
      IV.Spilled = true;
      IV.SpillSlot = F.allocateFrameBytes(8);
      ++Stats.SpilledRegs;
    }

    // Count distinct physical registers for the RSE frame model.
    std::set<unsigned> UsedInt, UsedFp;
    for (const Interval &IV : Intervals) {
      if (IV.Assigned == NoReg)
        continue;
      if (IV.Fp)
        UsedFp.insert(IV.Assigned);
      else
        UsedInt.insert(IV.Assigned);
    }
    F.StackedRegsUsed = static_cast<unsigned>(UsedInt.size());
    F.FpRegsUsed = static_cast<unsigned>(UsedFp.size());
    // The rewritten code writes no stacked register above the highest
    // assignment (fixed scratch/return regs sit below the stacked
    // range), so the simulator only saves up to these around calls.
    F.StackedRegHigh =
        UsedInt.empty() ? FirstStackedReg : *UsedInt.rbegin() + 1;
    F.FpRegHigh =
        UsedFp.empty() ? FpRegBase + FirstStackedReg : *UsedFp.rbegin() + 1;
  }

  void rewrite() {
    // Map vreg -> interval.
    std::map<unsigned, Interval *> ByReg;
    for (Interval &IV : Intervals)
      ByReg[IV.VReg] = &IV;

    for (unsigned BI = 0; BI < F.numBlocks(); ++BI) {
      auto &Instrs = F.block(BI).Instrs;
      std::vector<MInstr> Out;
      Out.reserve(Instrs.size());
      for (MInstr I : Instrs) {
        unsigned ScratchInt = RegScratch0;
        unsigned ScratchFp = FpScratch0;
        auto MapSrc = [&](unsigned &Reg) {
          if (!isVirtualReg(Reg))
            return;
          Interval *IV = ByReg.at(Reg);
          if (!IV->Spilled) {
            Reg = IV->Assigned;
            return;
          }
          unsigned Scratch = IV->Fp ? ScratchFp++ : ScratchInt++;
          MInstr Fill;
          Fill.Op = MOp::Ld;
          Fill.Rd = Scratch;
          Fill.Rs1 = RegFP;
          Fill.Imm = IV->SpillSlot;
          Fill.FpVal = IV->Fp;
          Out.push_back(Fill);
          Reg = Scratch;
        };
        MapSrc(I.Rs1);
        if (!I.HasImm)
          MapSrc(I.Rs2);
        MapSrc(I.Rs3);
        if (I.definesReg() && isVirtualReg(I.Rd)) {
          Interval *IV = ByReg.at(I.Rd);
          if (!IV->Spilled) {
            I.Rd = IV->Assigned;
            Out.push_back(I);
          } else {
            unsigned Scratch = IV->Fp ? FpScratch1 : RegScratch1;
            I.Rd = Scratch;
            Out.push_back(I);
            MInstr Spill;
            Spill.Op = MOp::St;
            Spill.Rs1 = RegFP;
            Spill.Imm = IV->SpillSlot;
            Spill.Rs3 = Scratch;
            Spill.FpVal = IV->Fp;
            Out.push_back(Spill);
          }
        } else {
          Out.push_back(I);
        }
      }
      Instrs = std::move(Out);
    }
  }

  void patchPrologue() {
    // The frame-open Add SP = SP + imm in the entry block gets the final
    // frame size (spill slots included).
    for (MInstr &I : F.block(0).Instrs) {
      if (I.Op == MOp::Add && I.Rd == RegSP && I.Rs1 == RegSP && I.HasImm &&
          I.Imm == 0) {
        I.Imm = -static_cast<int64_t>(F.frameSize());
        return;
      }
    }
    SRP_UNREACHABLE("prologue frame-open instruction not found");
  }

  MFunction &F;
  const RegAllocOptions &Options;
  RegAllocStats &Stats;
  std::vector<unsigned> BlockStart, BlockEnd;
  unsigned NumPositions = 0;
  std::vector<std::vector<bool>> LiveIn, LiveOut;
  std::vector<Interval> Intervals;
};

} // namespace

RegAllocStats srp::codegen::allocateRegisters(MModule &M,
                                              const RegAllocOptions &Options) {
  RegAllocStats Stats;
  for (unsigned FI = 0; FI < M.numFunctions(); ++FI) {
    FunctionAllocator FA(*M.function(FI), Options, Stats);
    FA.run();
  }
  return Stats;
}
