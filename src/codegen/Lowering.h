//===- Lowering.h - IR to machine IR lowering -------------------*- C++ -*-===//
//
// Part of the srp-alat project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers the (possibly promoted) IR to ITA machine code:
///
///  * memory references expand to address arithmetic plus chain loads;
///  * speculation flags map to the ld.a/ld.sa/ld.c/chk.a family, with
///    chk.a recovery blocks generated in the Ju-et-al. style (reload the
///    address chain and the data, branch back);
///  * st.a stores carry the ALAT register of the promoted temp;
///  * calls pass arguments through the callee's frame below SP; the frame
///    pointer is callee-saved in the frame.
///
/// The output uses virtual registers; run allocateRegisters() next.
///
//===----------------------------------------------------------------------===//

#ifndef SRP_CODEGEN_LOWERING_H
#define SRP_CODEGEN_LOWERING_H

#include "codegen/MIR.h"

#include <memory>

namespace srp::codegen {

/// Lowers \p M; the result still uses virtual registers.
std::unique_ptr<MModule> lowerModule(const ir::Module &M);

} // namespace srp::codegen

#endif // SRP_CODEGEN_LOWERING_H
