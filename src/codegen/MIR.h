//===- MIR.h - IA-64-style machine IR ---------------------------*- C++ -*-===//
//
// Part of the srp-alat project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The ITA machine IR: an IA-64-flavoured instruction set with the data
/// speculation family the paper uses (ld.a / ld.sa / ld.c.clr / ld.c.nc /
/// chk.a with recovery blocks / invala.e, plus the proposed st.a of §2.5).
///
/// Register conventions (a simplified register stack model):
///   r0  — always zero          r1  — stack pointer (SP)
///   r2  — frame pointer (FP)   r4..r7 — spill scratch
///   r8  — integer return value
///   r32..r127 — stacked, allocatable (the RSE spills/fills these)
///   f8  — float return value   f32..f127 — allocatable floats
/// Virtual registers are numbered from FirstVirtualReg upward until
/// register allocation replaces them.
///
//===----------------------------------------------------------------------===//

#ifndef SRP_CODEGEN_MIR_H
#define SRP_CODEGEN_MIR_H

#include "ir/CFG.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace srp {
class OStream;
} // namespace srp

namespace srp::codegen {

inline constexpr unsigned NoReg = ~0u;
inline constexpr unsigned RegZero = 0;
inline constexpr unsigned RegSP = 1;
inline constexpr unsigned RegFP = 2;
inline constexpr unsigned RegScratch0 = 4;
inline constexpr unsigned RegScratch1 = 5;
inline constexpr unsigned RegRetInt = 8;
inline constexpr unsigned FirstStackedReg = 32;
inline constexpr unsigned NumStackedRegs = 96; ///< r32..r127
inline constexpr unsigned FpRegBase = 128;     ///< f0 is reg 128, etc.
inline constexpr unsigned RegRetFp = FpRegBase + 8;
inline constexpr unsigned FpScratch0 = FpRegBase + 4;
inline constexpr unsigned FpScratch1 = FpRegBase + 5;
inline constexpr unsigned FirstVirtualReg = 1024;

/// True for f-register ids (physical only).
inline bool isFpReg(unsigned Reg) {
  return Reg >= FpRegBase && Reg < FirstVirtualReg;
}

inline bool isVirtualReg(unsigned Reg) {
  return Reg != NoReg && Reg >= FirstVirtualReg;
}

/// Machine opcodes.
enum class MOp : uint8_t {
  // Data movement and arithmetic.
  MovI,   ///< Rd = Imm
  Mov,    ///< Rd = Rs1
  Add,    ///< Rd = Rs1 + (Rs2 | Imm)
  Sub,
  Mul,
  Div,    ///< Zero divisor yields zero (matches the IR semantics).
  Rem,
  And,
  Or,
  Xor,
  Shl,
  Shr,
  ShlAdd, ///< Rd = Rs1*8 + Rs2 (IA-64 shladd)
  CmpEq,
  CmpNe,
  CmpLt,
  CmpLe,
  FAdd,
  FSub,
  FMul,
  FDiv,
  FCmpLt,
  ICvtF,
  FCvtI,
  Sel,    ///< Rd = Rs1 != 0 ? Rs2 : Rs3 (predicated move pair on IA-64)
  // Memory.
  Ld,     ///< Rd = [Rs1 + Imm]
  LdA,    ///< Advanced load: also allocates an ALAT entry for Rd.
  LdSA,   ///< Speculative advanced load (control + data speculation).
  LdCClr, ///< Check load; reload on miss, clear the entry on hit.
  LdCNc,  ///< Check load; reload on miss, keep the entry.
  St,     ///< [Rs1 + Imm] = Rs3
  StA,    ///< St plus ALAT entry allocation for register Rs2 (§2.5 st.a).
  InvalaE,///< Invalidate the ALAT entry of register Rs1.
  AllocHeap, ///< Rd = address of a fresh heap block of (Rs1|Imm)*8 bytes.
  Print,  ///< Emit Rs1 to the program output (FpVal selects formatting).
  // Control flow (block terminators, except ChkA's fall-through form).
  Br,     ///< to Target
  BrCond, ///< Rs1 != 0 ? Target : FalseTarget
  ChkA,   ///< ALAT entry for Rs1 valid ? Target : Recovery (chk.a)
  Call,   ///< Callee; return lands on the next block (Target)
  Ret,
  Nop,
};

/// Returns the assembly mnemonic.
const char *mopName(MOp Op);

/// Returns true for the ld/ld.a/ld.sa family (real loads; checking loads
/// only count when they miss).
inline bool isRealLoad(MOp Op) {
  return Op == MOp::Ld || Op == MOp::LdA || Op == MOp::LdSA;
}

inline bool isCheckLoad(MOp Op) {
  return Op == MOp::LdCClr || Op == MOp::LdCNc;
}

inline bool isTerminator(MOp Op) {
  switch (Op) {
  case MOp::Br:
  case MOp::BrCond:
  case MOp::ChkA:
  case MOp::Ret:
    return true;
  default:
    return false;
  }
}

class MFunction;

/// One machine instruction.
struct MInstr {
  MOp Op = MOp::Nop;
  unsigned Rd = NoReg;
  unsigned Rs1 = NoReg;
  unsigned Rs2 = NoReg;
  unsigned Rs3 = NoReg;
  int64_t Imm = 0;
  bool HasImm = false;   ///< ALU ops: second operand is Imm.
  bool FpVal = false;    ///< Loads/stores/prints move a float value.
  unsigned Target = ~0u;       ///< Block index (Br/BrCond/ChkA/Call resume).
  unsigned FalseTarget = ~0u;  ///< BrCond.
  unsigned Recovery = ~0u;     ///< ChkA recovery block.
  MFunction *Callee = nullptr;

  /// Registers this instruction reads, in a small inline buffer.
  /// Inline (header-defined): the simulator calls this once per
  /// simulated instruction.
  void sources(unsigned Out[3], unsigned &Count) const {
    Count = 0;
    auto Push = [&](unsigned Reg) {
      if (Reg != NoReg)
        Out[Count++] = Reg;
    };
    switch (Op) {
    case MOp::MovI:
    case MOp::Br:
    case MOp::Ret:
    case MOp::Nop:
    case MOp::Call:
      break;
    case MOp::St:
    case MOp::StA:
      Push(Rs1);
      Push(Rs3);
      break;
    case MOp::Sel:
      Push(Rs1);
      Push(Rs2);
      Push(Rs3);
      break;
    default:
      Push(Rs1);
      if (!HasImm)
        Push(Rs2);
      break;
    }
  }
  bool definesReg() const { return Rd != NoReg; }
};

/// A machine basic block. The last instruction is always a terminator.
struct MBlock {
  std::string Name;
  std::vector<MInstr> Instrs;
  bool IsRecovery = false; ///< chk.a recovery code (Ju et al. style).
};

/// A machine function.
class MFunction {
public:
  MFunction(std::string Name) : Name(std::move(Name)) {}

  const std::string &getName() const { return Name; }

  unsigned createBlock(std::string BlockName) {
    Blocks.push_back(MBlock{std::move(BlockName), {}, false});
    return static_cast<unsigned>(Blocks.size()) - 1;
  }

  unsigned numBlocks() const { return static_cast<unsigned>(Blocks.size()); }
  MBlock &block(unsigned I) { return Blocks[I]; }
  const MBlock &block(unsigned I) const { return Blocks[I]; }

  /// Creates a virtual register.
  unsigned createVirtualReg(bool Fp) {
    VirtRegFp.push_back(Fp);
    return FirstVirtualReg + static_cast<unsigned>(VirtRegFp.size()) - 1;
  }
  bool isVirtFp(unsigned Reg) const {
    return VirtRegFp[Reg - FirstVirtualReg];
  }
  unsigned numVirtualRegs() const {
    return static_cast<unsigned>(VirtRegFp.size());
  }

  /// Frame slot assignment (negative FP-relative offsets).
  int64_t frameOffsetOf(const ir::Symbol *Sym) const {
    return SlotOffsets.at(Sym);
  }
  bool hasSlot(const ir::Symbol *Sym) const {
    return SlotOffsets.count(Sym) != 0;
  }
  void assignSlot(const ir::Symbol *Sym, int64_t Offset) {
    SlotOffsets[Sym] = Offset;
  }

  /// Allocates \p Bytes more frame space; returns the new slot's offset.
  int64_t allocateFrameBytes(uint64_t Bytes) {
    FrameSize += (Bytes + 7) & ~7ULL;
    return -static_cast<int64_t>(FrameSize);
  }
  uint64_t frameSize() const { return FrameSize; }

  /// Register-stack frame size after allocation (drives the RSE model).
  unsigned StackedRegsUsed = 0;
  /// Number of FP registers used (no RSE, but reported).
  unsigned FpRegsUsed = 0;
  /// One past the highest register id this function's code writes, split
  /// by file (stacked r32.. / float f32..). The simulator saves and
  /// restores only these windows around calls; the defaults cover the
  /// whole files so hand-built MIR that bypasses the register allocator
  /// (micro benches, tests) stays correct. RegAlloc tightens them.
  unsigned StackedRegHigh = FirstStackedReg + NumStackedRegs;
  unsigned FpRegHigh = FpRegBase + 128;

private:
  std::string Name;
  std::vector<MBlock> Blocks;
  std::vector<bool> VirtRegFp;
  std::map<const ir::Symbol *, int64_t> SlotOffsets;
  uint64_t FrameSize = 0;
};

/// A lowered module: machine functions plus the global memory image.
class MModule {
public:
  MModule() = default;
  MModule(const MModule &) = delete;
  MModule &operator=(const MModule &) = delete;

  MFunction *createFunction(std::string Name) {
    Functions.push_back(MirArena.create<MFunction>(std::move(Name)));
    return Functions.back();
  }

  unsigned numFunctions() const {
    return static_cast<unsigned>(Functions.size());
  }
  MFunction *function(unsigned I) { return Functions[I]; }
  const MFunction *function(unsigned I) const { return Functions[I]; }

  MFunction *findFunction(std::string_view Name);
  const MFunction *findFunction(std::string_view Name) const {
    return const_cast<MModule *>(this)->findFunction(Name);
  }

  /// Global symbol addresses (same layout as the interpreter's).
  std::map<const ir::Symbol *, uint64_t> GlobalAddr;

  Arena &arena() { return MirArena; }

private:
  /// Declared before Functions so teardown runs the MFunction
  /// destructors (queued in the arena) before the pointer list dies.
  Arena MirArena;
  std::vector<MFunction *> Functions; ///< Objects live in MirArena.
};

/// Prints \p M as assembly-style text.
void printMModule(const MModule &M, OStream &OS);
void printMFunction(const MFunction &F, OStream &OS);
std::string minstrToString(const MInstr &I);

} // namespace srp::codegen

#endif // SRP_CODEGEN_MIR_H
