//===- Lowering.cpp - IR to machine IR lowering ------------------------------===//

#include "codegen/Lowering.h"

#include "interp/Interpreter.h" // layout constants
#include "support/Error.h"

#include <cassert>

using namespace srp;
using namespace srp::ir;
using namespace srp::codegen;

namespace {

/// Lowers one function.
class FunctionLowering {
public:
  FunctionLowering(const ir::Function &F, MFunction &MF, MModule &MM,
                   const std::map<const ir::Function *, MFunction *> &FnMap)
      : F(F), MF(MF), MM(MM), FnMap(FnMap) {}

  void run();

private:
  MBlock &cur() { return MF.block(CurMB); }

  MInstr &emit(MInstr I) {
    cur().Instrs.push_back(I);
    return cur().Instrs.back();
  }

  unsigned freshReg(bool Fp = false) { return MF.createVirtualReg(Fp); }

  unsigned tempReg(unsigned TempId) {
    unsigned &Reg = TempRegs[TempId];
    if (Reg == 0)
      Reg = freshReg(F.tempType(TempId) == TypeKind::Float);
    return Reg;
  }

  /// Materializes an operand into a register.
  unsigned operandReg(const Operand &Op);

  /// Emits Rd = Imm into a fresh register (FpVal carries raw bits).
  unsigned emitMovI(int64_t Imm, bool Fp = false);

  /// Address of a symbol's storage as (BaseReg, Displacement).
  void symbolSlot(const Symbol *Sym, unsigned &BaseReg, int64_t &Disp);

  /// Emits the address computation of \p Ref. Returns (BaseReg, Disp) for
  /// the final access. \p ChainPtrReg receives the register holding the
  /// last chain pointer (NoReg for direct refs). Chain loads use ld.a
  /// when \p AdvancedChain (cascade defs re-establish the pointer
  /// entry); when \p ChainDestReg is given, the last chain load writes
  /// it directly, so a later chk.a on that register finds the entry.
  void accessAddress(const MemRef &Ref, bool AdvancedChain,
                     unsigned &BaseReg, int64_t &Disp,
                     unsigned &ChainPtrReg,
                     unsigned ChainDestReg = NoReg);

  /// Address for checking loads: from a saved chain pointer register.
  void checkAddress(const Stmt &S, unsigned &BaseReg, int64_t &Disp);

  void lowerStmt(const Stmt &S);
  void lowerLoad(const Stmt &S);
  void lowerStore(const Stmt &S);
  void lowerAssign(const Stmt &S);
  void lowerCall(const Stmt &S);
  void lowerTerminator(const Terminator &T);

  void emitPrologue();
  void emitEpilogue(const Operand &RetVal);

  const ir::Function &F;
  MFunction &MF;
  MModule &MM;
  const std::map<const ir::Function *, MFunction *> &FnMap;

  std::map<unsigned, unsigned> TempRegs; ///< IR temp -> virtual register.
  std::vector<unsigned> BlockHead;       ///< IR block id -> mblock index.
  unsigned CurMB = 0;
};

void FunctionLowering::symbolSlot(const Symbol *Sym, unsigned &BaseReg,
                                  int64_t &Disp) {
  if (Sym->Kind == SymbolKind::Global) {
    BaseReg = RegZero;
    Disp = static_cast<int64_t>(MM.GlobalAddr.at(Sym));
    return;
  }
  BaseReg = RegFP;
  Disp = MF.frameOffsetOf(Sym);
}

unsigned FunctionLowering::emitMovI(int64_t Imm, bool Fp) {
  MInstr I;
  I.Op = MOp::MovI;
  I.Rd = freshReg(Fp);
  I.Imm = Imm;
  I.FpVal = Fp;
  emit(I);
  return I.Rd;
}

unsigned FunctionLowering::operandReg(const Operand &Op) {
  switch (Op.K) {
  case Operand::Kind::Temp:
    return tempReg(Op.getTemp());
  case Operand::Kind::ConstInt:
    return emitMovI(Op.IntVal);
  case Operand::Kind::ConstFloat: {
    uint64_t Bits;
    static_assert(sizeof(double) == sizeof(uint64_t));
    __builtin_memcpy(&Bits, &Op.FloatVal, sizeof(Bits));
    return emitMovI(static_cast<int64_t>(Bits), /*Fp=*/true);
  }
  case Operand::Kind::None:
    SRP_UNREACHABLE("materializing a missing operand");
  }
  SRP_UNREACHABLE("invalid operand kind");
}

void FunctionLowering::accessAddress(const MemRef &Ref, bool AdvancedChain,
                                     unsigned &BaseReg, int64_t &Disp,
                                     unsigned &ChainPtrReg,
                                     unsigned ChainDestReg) {
  unsigned SlotBase;
  int64_t SlotDisp;
  symbolSlot(Ref.Base, SlotBase, SlotDisp);
  ChainPtrReg = NoReg;

  unsigned Reg = SlotBase;
  int64_t Offset = SlotDisp;
  for (unsigned Level = 1; Level <= Ref.Depth; ++Level) {
    MInstr Chain;
    Chain.Op = AdvancedChain ? MOp::LdA : MOp::Ld;
    bool Last = Level == Ref.Depth;
    Chain.Rd = Last && ChainDestReg != NoReg ? ChainDestReg : freshReg();
    Chain.Rs1 = Reg;
    Chain.Imm = Offset;
    emit(Chain);
    Reg = Chain.Rd;
    Offset = 0;
  }
  if (Ref.Depth > 0)
    ChainPtrReg = Reg;

  if (Ref.hasIndex()) {
    MInstr Sh;
    Sh.Op = MOp::ShlAdd;
    Sh.Rd = freshReg();
    Sh.Rs1 = operandReg(Ref.Index);
    Sh.Rs2 = Reg;
    emit(Sh);
    Reg = Sh.Rd;
  }
  BaseReg = Reg;
  Disp = Offset + Ref.Offset;
}

void FunctionLowering::checkAddress(const Stmt &S, unsigned &BaseReg,
                                    int64_t &Disp) {
  if (S.Ref.isDirect()) {
    unsigned ChainPtr;
    accessAddress(S.Ref, false, BaseReg, Disp, ChainPtr);
    return;
  }
  assert(S.AddrSrc != NoTemp && "indirect check needs a chain pointer");
  unsigned Reg = tempReg(S.AddrSrc);
  if (S.Ref.hasIndex()) {
    MInstr Sh;
    Sh.Op = MOp::ShlAdd;
    Sh.Rd = freshReg();
    Sh.Rs1 = operandReg(S.Ref.Index);
    Sh.Rs2 = Reg;
    emit(Sh);
    Reg = Sh.Rd;
  }
  BaseReg = Reg;
  Disp = S.Ref.Offset;
}

void FunctionLowering::lowerLoad(const Stmt &S) {
  bool Fp = S.Ref.ValueType == TypeKind::Float;
  unsigned Rd = tempReg(S.Dst);

  switch (S.Flag) {
  case SpecFlag::None:
  case SpecFlag::LdA:
  case SpecFlag::LdSA: {
    bool Advanced = S.Flag != SpecFlag::None;
    unsigned BaseReg, ChainPtr;
    int64_t Disp;
    // Cascade defs (AddrDst on an advanced indirect load) re-advance the
    // chain pointer so a later chk.a can test it (Figure 4(c)); the last
    // chain load writes the exposed register directly so the ALAT entry
    // is keyed by the register the check will name.
    bool AdvancedChain = Advanced && S.AddrDst != NoTemp;
    unsigned ChainDest =
        S.AddrDst != NoTemp && S.Ref.isIndirect() ? tempReg(S.AddrDst)
                                                  : NoReg;
    accessAddress(S.Ref, AdvancedChain, BaseReg, Disp, ChainPtr,
                  ChainDest);
    MInstr L;
    L.Op = S.Flag == SpecFlag::None
               ? MOp::Ld
               : (S.Flag == SpecFlag::LdA ? MOp::LdA : MOp::LdSA);
    L.Rd = Rd;
    L.Rs1 = BaseReg;
    L.Imm = Disp;
    L.FpVal = Fp;
    emit(L);
    return;
  }
  case SpecFlag::LdC:
  case SpecFlag::LdCnc: {
    unsigned BaseReg;
    int64_t Disp;
    checkAddress(S, BaseReg, Disp);
    MInstr L;
    L.Op = S.Flag == SpecFlag::LdC ? MOp::LdCClr : MOp::LdCNc;
    L.Rd = Rd;
    L.Rs1 = BaseReg;
    L.Imm = Disp;
    L.FpVal = Fp;
    emit(L);
    return;
  }
  case SpecFlag::ChkA:
  case SpecFlag::ChkAnc: {
    // chk.a on the saved chain pointer, then a data check; the recovery
    // block reloads both (cascade failure handling, §2.4).
    assert(S.Ref.Depth == 1 && S.AddrSrc != NoTemp &&
           "cascade checks are depth-1 with a saved pointer");
    unsigned AddrReg = tempReg(S.AddrSrc);
    unsigned Cont = MF.createBlock(cur().Name + ".cont");
    unsigned Rec = MF.createBlock(cur().Name + ".recover");
    MF.block(Rec).IsRecovery = true;

    MInstr Chk;
    Chk.Op = MOp::ChkA;
    Chk.Rs1 = AddrReg;
    Chk.Target = Cont;
    Chk.Recovery = Rec;
    emit(Chk);

    // Recovery: reload the pointer (re-advanced) and the data.
    CurMB = Rec;
    {
      unsigned SlotBase;
      int64_t SlotDisp;
      symbolSlot(S.Ref.Base, SlotBase, SlotDisp);
      MInstr Rp;
      Rp.Op = MOp::LdA;
      Rp.Rd = AddrReg;
      Rp.Rs1 = SlotBase;
      Rp.Imm = SlotDisp;
      emit(Rp);
      unsigned BaseReg;
      int64_t Disp;
      checkAddress(S, BaseReg, Disp);
      MInstr Rdata;
      Rdata.Op = MOp::LdA;
      Rdata.Rd = Rd;
      Rdata.Rs1 = BaseReg;
      Rdata.Imm = Disp;
      Rdata.FpVal = Fp;
      emit(Rdata);
      MInstr B;
      B.Op = MOp::Br;
      B.Target = Cont;
      emit(B);
    }

    // Continuation: the data itself may have been clobbered even when the
    // pointer survived; check it too.
    CurMB = Cont;
    unsigned BaseReg;
    int64_t Disp;
    checkAddress(S, BaseReg, Disp);
    MInstr L;
    L.Op = MOp::LdCNc;
    L.Rd = Rd;
    L.Rs1 = BaseReg;
    L.Imm = Disp;
    L.FpVal = Fp;
    emit(L);
    return;
  }
  }
  SRP_UNREACHABLE("invalid spec flag");
}

void FunctionLowering::lowerStore(const Stmt &S) {
  unsigned BaseReg, ChainPtr;
  int64_t Disp;
  accessAddress(S.Ref, false, BaseReg, Disp, ChainPtr);
  if (S.AddrDst != NoTemp) {
    // Stores expose their final address (free: it is in a register).
    if (BaseReg == RegZero) {
      MInstr Mv;
      Mv.Op = MOp::MovI;
      Mv.Rd = tempReg(S.AddrDst);
      Mv.Imm = Disp;
      emit(Mv);
    } else {
      MInstr AddI;
      AddI.Op = MOp::Add;
      AddI.Rd = tempReg(S.AddrDst);
      AddI.Rs1 = BaseReg;
      AddI.HasImm = true;
      AddI.Imm = Disp;
      emit(AddI);
    }
  }
  MInstr St;
  St.Op = S.StA ? MOp::StA : MOp::St;
  St.Rs1 = BaseReg;
  St.Imm = Disp;
  St.Rs3 = operandReg(S.A);
  St.FpVal = S.Ref.ValueType == TypeKind::Float;
  if (S.StA) {
    assert(S.AlatDst != NoTemp && "st.a needs the tracked register");
    St.Rs2 = tempReg(S.AlatDst);
  }
  emit(St);
}

void FunctionLowering::lowerAssign(const Stmt &S) {
  unsigned Rd = tempReg(S.Dst);
  auto Binary = [&](MOp Op, bool Commutative) {
    MInstr I;
    I.Op = Op;
    I.Rd = Rd;
    if (S.B.K == Operand::Kind::ConstInt) {
      I.Rs1 = operandReg(S.A);
      I.HasImm = true;
      I.Imm = S.B.IntVal;
    } else if (Commutative && S.A.K == Operand::Kind::ConstInt) {
      I.Rs1 = operandReg(S.B);
      I.HasImm = true;
      I.Imm = S.A.IntVal;
    } else {
      I.Rs1 = operandReg(S.A);
      I.Rs2 = operandReg(S.B);
    }
    emit(I);
  };
  switch (S.Op) {
  case Opcode::Copy: {
    MInstr I;
    I.Op = MOp::Mov;
    I.Rd = Rd;
    I.Rs1 = operandReg(S.A);
    emit(I);
    return;
  }
  case Opcode::Add:
    Binary(MOp::Add, true);
    return;
  case Opcode::Sub:
    Binary(MOp::Sub, false);
    return;
  case Opcode::Mul:
    Binary(MOp::Mul, true);
    return;
  case Opcode::Div:
    Binary(MOp::Div, false);
    return;
  case Opcode::Rem:
    Binary(MOp::Rem, false);
    return;
  case Opcode::And:
    Binary(MOp::And, true);
    return;
  case Opcode::Or:
    Binary(MOp::Or, true);
    return;
  case Opcode::Xor:
    Binary(MOp::Xor, true);
    return;
  case Opcode::Shl:
    Binary(MOp::Shl, false);
    return;
  case Opcode::Shr:
    Binary(MOp::Shr, false);
    return;
  case Opcode::CmpEq:
    Binary(MOp::CmpEq, true);
    return;
  case Opcode::CmpNe:
    Binary(MOp::CmpNe, true);
    return;
  case Opcode::CmpLt:
    Binary(MOp::CmpLt, false);
    return;
  case Opcode::CmpLe:
    Binary(MOp::CmpLe, false);
    return;
  case Opcode::FAdd:
    Binary(MOp::FAdd, false);
    return;
  case Opcode::FSub:
    Binary(MOp::FSub, false);
    return;
  case Opcode::FMul:
    Binary(MOp::FMul, false);
    return;
  case Opcode::FDiv:
    Binary(MOp::FDiv, false);
    return;
  case Opcode::FCmpLt:
    Binary(MOp::FCmpLt, false);
    return;
  case Opcode::IntToFp: {
    MInstr I;
    I.Op = MOp::ICvtF;
    I.Rd = Rd;
    I.Rs1 = operandReg(S.A);
    emit(I);
    return;
  }
  case Opcode::FpToInt: {
    MInstr I;
    I.Op = MOp::FCvtI;
    I.Rd = Rd;
    I.Rs1 = operandReg(S.A);
    emit(I);
    return;
  }
  case Opcode::Select: {
    MInstr I;
    I.Op = MOp::Sel;
    I.Rd = Rd;
    I.Rs1 = operandReg(S.A);
    I.Rs2 = operandReg(S.B);
    I.Rs3 = operandReg(S.C);
    emit(I);
    return;
  }
  }
  SRP_UNREACHABLE("invalid opcode");
}

void FunctionLowering::lowerCall(const Stmt &S) {
  MFunction *Callee = FnMap.at(S.Callee);
  // Arguments go just below the current SP, where the callee's formal
  // slots will land once its prologue runs.
  for (size_t I = 0; I < S.Args.size(); ++I) {
    MInstr St;
    St.Op = MOp::St;
    St.Rs1 = RegSP;
    St.Imm = -8 * static_cast<int64_t>(I + 1);
    St.Rs3 = operandReg(S.Args[I]);
    emit(St);
  }
  unsigned Resume = MF.createBlock(cur().Name + ".ret");
  MInstr C;
  C.Op = MOp::Call;
  C.Callee = Callee;
  C.Target = Resume;
  emit(C);
  CurMB = Resume;
  if (S.Dst != NoTemp) {
    bool Fp = F.tempType(S.Dst) == TypeKind::Float;
    MInstr Mv;
    Mv.Op = MOp::Mov;
    Mv.Rd = tempReg(S.Dst);
    Mv.Rs1 = Fp ? RegRetFp : RegRetInt;
    emit(Mv);
  }
}

void FunctionLowering::lowerStmt(const Stmt &S) {
  switch (S.Kind) {
  case StmtKind::Assign:
    lowerAssign(S);
    return;
  case StmtKind::Load:
    lowerLoad(S);
    return;
  case StmtKind::Store:
    lowerStore(S);
    return;
  case StmtKind::AddrOf: {
    unsigned SlotBase;
    int64_t SlotDisp;
    symbolSlot(S.Ref.Base, SlotBase, SlotDisp);
    unsigned Reg = SlotBase;
    if (S.Ref.hasIndex()) {
      MInstr Sh;
      Sh.Op = MOp::ShlAdd;
      Sh.Rd = freshReg();
      Sh.Rs1 = operandReg(S.Ref.Index);
      Sh.Rs2 = Reg;
      emit(Sh);
      Reg = Sh.Rd;
    }
    MInstr AddI;
    AddI.Op = Reg == RegZero ? MOp::MovI : MOp::Add;
    AddI.Rd = tempReg(S.Dst);
    AddI.Rs1 = Reg == RegZero ? NoReg : Reg;
    AddI.HasImm = Reg != RegZero;
    AddI.Imm = SlotDisp + S.Ref.Offset;
    emit(AddI);
    return;
  }
  case StmtKind::Alloc: {
    MInstr I;
    I.Op = MOp::AllocHeap;
    I.Rd = tempReg(S.Dst);
    if (S.A.K == Operand::Kind::ConstInt) {
      I.HasImm = true;
      I.Imm = S.A.IntVal;
    } else {
      I.Rs1 = operandReg(S.A);
    }
    emit(I);
    return;
  }
  case StmtKind::Call:
    lowerCall(S);
    return;
  case StmtKind::Invala: {
    MInstr I;
    I.Op = MOp::InvalaE;
    I.Rs1 = tempReg(S.Dst);
    emit(I);
    return;
  }
  case StmtKind::Print: {
    MInstr I;
    I.Op = MOp::Print;
    I.Rs1 = operandReg(S.A);
    I.FpVal = S.A.K == Operand::Kind::ConstFloat ||
              (S.A.isTemp() &&
               F.tempType(S.A.getTemp()) == TypeKind::Float);
    emit(I);
    return;
  }
  }
  SRP_UNREACHABLE("invalid statement kind");
}

void FunctionLowering::emitPrologue() {
  // Save the caller's FP below the formal slots, establish our FP, and
  // open the frame. The frame-size immediate is patched after register
  // allocation adds spill slots.
  int64_t FpSave = -8 * static_cast<int64_t>(F.formals().size() + 1);
  MInstr SaveFP;
  SaveFP.Op = MOp::St;
  SaveFP.Rs1 = RegSP;
  SaveFP.Imm = FpSave;
  SaveFP.Rs3 = RegFP;
  emit(SaveFP);
  MInstr SetFP;
  SetFP.Op = MOp::Mov;
  SetFP.Rd = RegFP;
  SetFP.Rs1 = RegSP;
  emit(SetFP);
  MInstr OpenFrame;
  OpenFrame.Op = MOp::Add;
  OpenFrame.Rd = RegSP;
  OpenFrame.Rs1 = RegSP;
  OpenFrame.HasImm = true;
  OpenFrame.Imm = 0; // patched to -frameSize() after register allocation
  emit(OpenFrame);
}

void FunctionLowering::emitEpilogue(const Operand &RetVal) {
  if (!RetVal.isNone()) {
    bool Fp = RetVal.K == Operand::Kind::ConstFloat ||
              (RetVal.isTemp() &&
               F.tempType(RetVal.getTemp()) == TypeKind::Float);
    MInstr Mv;
    Mv.Op = MOp::Mov;
    Mv.Rd = Fp ? RegRetFp : RegRetInt;
    Mv.Rs1 = operandReg(RetVal);
    emit(Mv);
  }
  int64_t FpSave = -8 * static_cast<int64_t>(F.formals().size() + 1);
  MInstr CloseFrame;
  CloseFrame.Op = MOp::Mov;
  CloseFrame.Rd = RegSP;
  CloseFrame.Rs1 = RegFP;
  emit(CloseFrame);
  MInstr RestoreFP;
  RestoreFP.Op = MOp::Ld;
  RestoreFP.Rd = RegFP;
  RestoreFP.Rs1 = RegSP;
  RestoreFP.Imm = FpSave;
  emit(RestoreFP);
  MInstr R;
  R.Op = MOp::Ret;
  emit(R);
}

void FunctionLowering::lowerTerminator(const Terminator &T) {
  switch (T.Kind) {
  case TermKind::Br: {
    MInstr B;
    B.Op = MOp::Br;
    B.Target = BlockHead[T.Target->getId()];
    emit(B);
    return;
  }
  case TermKind::CondBr: {
    MInstr B;
    B.Op = MOp::BrCond;
    B.Rs1 = operandReg(T.Cond);
    B.Target = BlockHead[T.Target->getId()];
    B.FalseTarget = BlockHead[T.FalseTarget->getId()];
    emit(B);
    return;
  }
  case TermKind::Ret:
    emitEpilogue(T.RetVal);
    return;
  }
  SRP_UNREACHABLE("invalid terminator");
}

void FunctionLowering::run() {
  BlockHead.resize(F.numBlocks());
  for (unsigned BI = 0; BI < F.numBlocks(); ++BI)
    BlockHead[BI] = MF.createBlock(F.block(BI)->getName());

  for (unsigned BI = 0; BI < F.numBlocks(); ++BI) {
    CurMB = BlockHead[BI];
    if (BI == 0)
      emitPrologue();
    const BasicBlock *BB = F.block(BI);
    for (size_t SI = 0; SI < BB->size(); ++SI)
      lowerStmt(*BB->stmt(SI));
    lowerTerminator(BB->term());
  }
}

} // namespace

std::unique_ptr<MModule> srp::codegen::lowerModule(const ir::Module &M) {
  auto MM = std::make_unique<MModule>();

  // Global layout identical to the interpreter's.
  uint64_t Next = interp::layout::GlobalBase;
  for (const Symbol *Global : M.globals()) {
    MM->GlobalAddr[Global] = Next;
    Next += (Global->sizeInBytes() + 63) & ~63ULL;
  }

  // Create all functions and lay out frames first (callers write argument
  // slots relative to the callee frame's top, which only depends on the
  // formal count).
  std::map<const ir::Function *, MFunction *> FnMap;
  for (unsigned FI = 0; FI < M.numFunctions(); ++FI) {
    const ir::Function *F = M.function(FI);
    MFunction *MF = MM->createFunction(F->getName());
    FnMap[F] = MF;
    // Formals at FP-8(i+1), then the FP save slot, then locals.
    int64_t Offset = 0;
    for (const Symbol *Formal : F->formals()) {
      Offset -= 8;
      MF->assignSlot(Formal, Offset);
      MF->allocateFrameBytes(8);
    }
    MF->allocateFrameBytes(8); // caller-FP save slot
    for (const Symbol *Local : F->locals()) {
      int64_t SlotOff =
          MF->allocateFrameBytes(Local->sizeInBytes());
      MF->assignSlot(Local, SlotOff);
    }
  }
  for (unsigned FI = 0; FI < M.numFunctions(); ++FI) {
    FunctionLowering FL(*M.function(FI), *FnMap.at(M.function(FI)), *MM,
                        FnMap);
    FL.run();
  }
  return MM;
}
