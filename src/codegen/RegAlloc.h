//===- RegAlloc.h - Linear-scan register allocation -------------*- C++ -*-===//
//
// Part of the srp-alat project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Linear-scan allocation of virtual registers onto the stacked register
/// file (r32..r127 and f32..f127). Live ranges come from an iterative
/// block liveness analysis, so loop-carried values are handled correctly.
///
/// ALAT-tracked registers (targets of ld.a/ld.sa/ld.c, the st.a register,
/// chk.a sources and invala.e operands) are never spilled: an ALAT entry
/// is keyed by its physical register, so a spilled temp would silently
/// lose its entry. They get allocation priority instead.
///
/// After allocation the function records its register-stack frame size
/// (StackedRegsUsed), which the simulator's RSE model charges on deep
/// call chains — the effect Figure 11 measures.
///
//===----------------------------------------------------------------------===//

#ifndef SRP_CODEGEN_REGALLOC_H
#define SRP_CODEGEN_REGALLOC_H

#include "codegen/MIR.h"

namespace srp::codegen {

struct RegAllocOptions {
  unsigned IntPoolSize = NumStackedRegs; ///< allocatable int registers
  unsigned FpPoolSize = NumStackedRegs;  ///< allocatable fp registers
};

struct RegAllocStats {
  unsigned SpilledRegs = 0;
  unsigned MaxIntPressure = 0;
  unsigned MaxFpPressure = 0;
};

/// Allocates every function of \p M in place and patches the prologue
/// frame-open immediates.
RegAllocStats allocateRegisters(MModule &M, const RegAllocOptions &Options =
                                                RegAllocOptions());

} // namespace srp::codegen

#endif // SRP_CODEGEN_REGALLOC_H
