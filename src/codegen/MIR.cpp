//===- MIR.cpp - IA-64-style machine IR ------------------------------------===//

#include "codegen/MIR.h"

#include "support/Error.h"
#include "support/OStream.h"
#include "support/StringUtils.h"

using namespace srp;
using namespace srp::codegen;

const char *srp::codegen::mopName(MOp Op) {
  switch (Op) {
  case MOp::MovI:
    return "movi";
  case MOp::Mov:
    return "mov";
  case MOp::Add:
    return "add";
  case MOp::Sub:
    return "sub";
  case MOp::Mul:
    return "mul";
  case MOp::Div:
    return "div";
  case MOp::Rem:
    return "rem";
  case MOp::And:
    return "and";
  case MOp::Or:
    return "or";
  case MOp::Xor:
    return "xor";
  case MOp::Shl:
    return "shl";
  case MOp::Shr:
    return "shr";
  case MOp::ShlAdd:
    return "shladd";
  case MOp::CmpEq:
    return "cmp.eq";
  case MOp::CmpNe:
    return "cmp.ne";
  case MOp::CmpLt:
    return "cmp.lt";
  case MOp::CmpLe:
    return "cmp.le";
  case MOp::FAdd:
    return "fadd";
  case MOp::FSub:
    return "fsub";
  case MOp::FMul:
    return "fmul";
  case MOp::FDiv:
    return "fdiv";
  case MOp::FCmpLt:
    return "fcmp.lt";
  case MOp::ICvtF:
    return "setf";
  case MOp::FCvtI:
    return "getf";
  case MOp::Sel:
    return "sel";
  case MOp::Ld:
    return "ld8";
  case MOp::LdA:
    return "ld8.a";
  case MOp::LdSA:
    return "ld8.sa";
  case MOp::LdCClr:
    return "ld8.c.clr";
  case MOp::LdCNc:
    return "ld8.c.nc";
  case MOp::St:
    return "st8";
  case MOp::StA:
    return "st8.a";
  case MOp::InvalaE:
    return "invala.e";
  case MOp::AllocHeap:
    return "alloc.heap";
  case MOp::Print:
    return "print";
  case MOp::Br:
    return "br";
  case MOp::BrCond:
    return "br.cond";
  case MOp::ChkA:
    return "chk.a.nc";
  case MOp::Call:
    return "br.call";
  case MOp::Ret:
    return "br.ret";
  case MOp::Nop:
    return "nop";
  }
  SRP_UNREACHABLE("invalid MOp");
}

static std::string regName(unsigned Reg) {
  if (Reg == NoReg)
    return "-";
  if (isVirtualReg(Reg))
    return formatString("v%u", Reg - FirstVirtualReg);
  if (isFpReg(Reg))
    return formatString("f%u", Reg - FpRegBase);
  return formatString("r%u", Reg);
}

std::string srp::codegen::minstrToString(const MInstr &I) {
  std::string Out = mopName(I.Op);
  auto Append = [&Out](const std::string &S) { Out += S; };
  switch (I.Op) {
  case MOp::MovI:
    Append(formatString(" %s = %lld", regName(I.Rd).c_str(),
                        static_cast<long long>(I.Imm)));
    break;
  case MOp::Mov:
  case MOp::ICvtF:
  case MOp::FCvtI:
    Append(formatString(" %s = %s", regName(I.Rd).c_str(),
                        regName(I.Rs1).c_str()));
    break;
  case MOp::Sel:
    Append(formatString(" %s = %s ? %s : %s", regName(I.Rd).c_str(),
                        regName(I.Rs1).c_str(), regName(I.Rs2).c_str(),
                        regName(I.Rs3).c_str()));
    break;
  case MOp::Ld:
  case MOp::LdA:
  case MOp::LdSA:
  case MOp::LdCClr:
  case MOp::LdCNc:
  case MOp::AllocHeap:
    Append(formatString(" %s = [%s%+lld]", regName(I.Rd).c_str(),
                        regName(I.Rs1).c_str(),
                        static_cast<long long>(I.Imm)));
    break;
  case MOp::St:
    Append(formatString(" [%s%+lld] = %s", regName(I.Rs1).c_str(),
                        static_cast<long long>(I.Imm),
                        regName(I.Rs3).c_str()));
    break;
  case MOp::StA:
    Append(formatString(" [%s%+lld] = %s, alat(%s)",
                        regName(I.Rs1).c_str(),
                        static_cast<long long>(I.Imm),
                        regName(I.Rs3).c_str(), regName(I.Rs2).c_str()));
    break;
  case MOp::InvalaE:
  case MOp::Print:
    Append(formatString(" %s", regName(I.Rs1).c_str()));
    break;
  case MOp::Br:
    Append(formatString(" b%u", I.Target));
    break;
  case MOp::BrCond:
    Append(formatString(" %s, b%u, b%u", regName(I.Rs1).c_str(), I.Target,
                        I.FalseTarget));
    break;
  case MOp::ChkA:
    Append(formatString(" %s, recover=b%u, resume=b%u",
                        regName(I.Rs1).c_str(), I.Recovery, I.Target));
    break;
  case MOp::Call:
    Append(formatString(" %s, resume=b%u",
                        I.Callee ? I.Callee->getName().c_str() : "<null>",
                        I.Target));
    break;
  case MOp::Ret:
  case MOp::Nop:
    break;
  default:
    if (I.HasImm)
      Append(formatString(" %s = %s, %lld", regName(I.Rd).c_str(),
                          regName(I.Rs1).c_str(),
                          static_cast<long long>(I.Imm)));
    else
      Append(formatString(" %s = %s, %s", regName(I.Rd).c_str(),
                          regName(I.Rs1).c_str(),
                          regName(I.Rs2).c_str()));
    break;
  }
  return Out;
}

MFunction *MModule::findFunction(std::string_view Name) {
  for (MFunction *F : Functions)
    if (F->getName() == Name)
      return F;
  return nullptr;
}

void srp::codegen::printMFunction(const MFunction &F, OStream &OS) {
  OS << F.getName() << ":  // frame " << F.frameSize() << " bytes, "
     << F.StackedRegsUsed << " stacked regs\n";
  for (unsigned BI = 0; BI < F.numBlocks(); ++BI) {
    const MBlock &BB = F.block(BI);
    OS << "b" << BI << ": // " << BB.Name;
    if (BB.IsRecovery)
      OS << " (recovery)";
    OS << '\n';
    for (const MInstr &I : BB.Instrs)
      OS << "  " << minstrToString(I) << '\n';
  }
}

void srp::codegen::printMModule(const MModule &M, OStream &OS) {
  for (unsigned I = 0; I < M.numFunctions(); ++I) {
    printMFunction(*M.function(I), OS);
    OS << '\n';
  }
}
