//===- Witness.cpp - Proof witnesses for promoted webs -----------------------===//

#include "analysis/Witness.h"

#include "alias/AliasAnalysis.h"
#include "ir/Printer.h"
#include "support/Error.h"
#include "support/JSON.h"

#include <algorithm>
#include <set>

using namespace srp;
using namespace srp::analysis;
using namespace srp::ir;

const char *analysis::witnessStatusName(Witness::Status St) {
  switch (St) {
  case Witness::Status::Confirmed:
    return "CONFIRMED";
  case Witness::Status::Refuted:
    return "REFUTED";
  }
  SRP_UNREACHABLE("invalid witness status");
}

bool analysis::hasRefutedWitness(const std::vector<Witness> &Ws) {
  return std::any_of(Ws.begin(), Ws.end(), [](const Witness &W) {
    return W.St == Witness::Status::Refuted;
  });
}

std::vector<Witness>
analysis::buildWitnesses(ir::Module &M, const TaintFlow &TF,
                         const std::vector<SpecDiag> &SpecDiags,
                         const interp::TaintTrace *Dyn) {
  std::vector<Witness> Out;
  for (unsigned FI = 0, FE = M.numFunctions(); FI != FE; ++FI) {
    ir::Function &F = *M.function(FI);
    for (unsigned BI = 0, BE = F.numBlocks(); BI != BE; ++BI) {
      const BasicBlock *BB = F.block(BI);
      for (size_t SI = 0, SE = BB->size(); SI != SE; ++SI) {
        const Stmt &C = *BB->stmt(SI);
        if (C.Kind != StmtKind::Load || !isCheckFlag(C.Flag))
          continue;

        Witness W;
        W.FunctionName = F.getName();
        W.CheckKind = specFlagName(C.Flag);
        W.CheckText = stmtToString(C);
        W.CheckLine = C.Line;
        W.Temp = C.Dst;
        W.RefText = memRefToString(C.Ref);

        // The web: every advanced load in the function arming the same
        // promoted register, i.e. the anchors this check commits.
        std::set<unsigned> WebLines;
        WebLines.insert(C.Line);
        for (unsigned BJ = 0; BJ != BE; ++BJ) {
          const BasicBlock *BA = F.block(BJ);
          for (size_t SJ = 0, SN = BA->size(); SJ != SN; ++SJ) {
            const Stmt &A = *BA->stmt(SJ);
            if (A.Kind == StmtKind::Load && isAdvancedFlag(A.Flag) &&
                A.Dst == C.Dst) {
              W.AnchorLines.push_back(A.Line);
              W.WebMask |= TF.siteBitOf(&A);
              WebLines.insert(A.Line);
            }
          }
        }
        std::sort(W.AnchorLines.begin(), W.AnchorLines.end());

        // Anchoring invariant: clean webs uphold "anchored-check" (every
        // path to the check passes an anchor and nothing clobbers the
        // register in between — exactly what SpecVerifier proves); a web
        // the verifier flagged carries the violated invariant's tag.
        W.Anchored = true;
        for (const SpecDiag &D : SpecDiags) {
          if (D.FunctionName != W.FunctionName || !WebLines.count(D.Line))
            continue;
          if (D.Severity == SpecDiagSeverity::Error) {
            W.Anchored = false;
            W.Invariant = specDiagKindName(D.Kind);
            break;
          }
        }
        if (W.Anchored)
          W.Invariant = "anchored-check";

        // Alias facts for the promoted reference: the base plus whatever
        // the backing points-to analysis says the final dereference may
        // touch, sorted for determinism.
        W.AliasAnalysisName = TF.aliasName();
        {
          std::set<std::string> Names;
          Names.insert(C.Ref.Base->Name);
          if (C.Ref.isIndirect())
            for (const Symbol *Sym :
                 TF.aliasAnalysis().mayPointees(C.Ref, &F))
              Names.insert(Sym->Name);
          W.Pointees.assign(Names.begin(), Names.end());
        }

        // Taint verdict.
        interp::Shadow Checked = TF.tempShadow(&F, C.Dst);
        W.SecretInvolved = Checked.Secret;
        W.ResidualMask = Checked.Spec;
        for (const TaintDiag &D : TF.diags())
          if (D.SpecMask & W.WebMask)
            W.StaticLeak = true;
        if (Dyn)
          for (const interp::TaintTrace::Leak &L : Dyn->Leaks)
            if (L.SpecMask & W.WebMask)
              W.DynamicLeak = true;
        W.St = (!W.StaticLeak && W.DynamicLeak) ? Witness::Status::Refuted
                                                : Witness::Status::Confirmed;
        Out.push_back(std::move(W));
      }
    }
  }
  return Out;
}

void analysis::writeWitnesses(const std::vector<Witness> &Ws,
                              const ir::Module &M, const TaintFlow &TF,
                              OStream &OS) {
  JSONWriter J(OS);
  J.beginObject();
  J.key("schema").value("srp-witness/1");
  J.key("aliasAnalysis").value(TF.aliasName());
  J.key("secretSymbols").beginArray();
  for (unsigned I = 0, E = M.numSymbols(); I != E; ++I)
    if (M.symbol(I)->Secret)
      J.value(M.symbol(I)->Name);
  J.endArray();
  J.key("webs").beginArray();
  for (const Witness &W : Ws) {
    J.beginObject();
    J.key("function").value(W.FunctionName);
    J.key("check").beginObject();
    J.key("kind").value(W.CheckKind);
    J.key("line").value(W.CheckLine);
    J.key("temp").value(W.Temp);
    J.key("ref").value(W.RefText);
    J.key("text").value(W.CheckText);
    J.endObject();
    J.key("invariant").value(W.Invariant);
    J.key("anchored").value(W.Anchored);
    J.key("anchorLines").beginArray();
    for (unsigned L : W.AnchorLines)
      J.value(L);
    J.endArray();
    J.key("alias").beginObject();
    J.key("analysis").value(W.AliasAnalysisName);
    J.key("mayTouch").beginArray();
    for (const std::string &P : W.Pointees)
      J.value(P);
    J.endArray();
    J.endObject();
    J.key("taint").beginObject();
    J.key("secretInvolved").value(W.SecretInvolved);
    J.key("webMask").value(W.WebMask);
    J.key("residualMask").value(W.ResidualMask);
    J.key("staticLeak").value(W.StaticLeak);
    J.key("dynamicLeak").value(W.DynamicLeak);
    J.endObject();
    J.key("status").value(witnessStatusName(W.St));
    J.endObject();
  }
  J.endArray();
  J.endObject();
  OS << '\n';
}
