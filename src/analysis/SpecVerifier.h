//===- SpecVerifier.h - Speculation-safety static checks --------*- C++ -*-===//
//
// Part of the srp-alat project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Static verification of the ALAT-speculation invariants the promoted IR
/// must uphold (the compiler obligations §2.3–§2.5 of the paper assume and
/// Alat.h's model documents). ir::Verifier checks structure and types;
/// SpecVerifier checks the *speculation discipline*:
///
///   E1 UnanchoredCheck    — every checking load (ld.c / chk.a) must be
///       preceded on every CFG path by a matching anchor for the same
///       promoted register: an advanced load (ld.a / ld.sa), an st.a that
///       arms its entry, or an invala.e that guarantees a clean miss. On
///       real IA-64 hardware an unanchored check can hit a stale entry
///       left by an unrelated use of the register.
///   E2 ClobberedRegister  — between arming and checking, the promoted
///       register must not be redefined by an unflagged statement: a
///       subsequent check could hit and keep the clobbered value.
///   E3 MalformedRecovery  — chk.a needs a depth-1 reference and a saved
///       chain pointer so lowering can materialise the recovery block that
///       re-executes the advanced load and its cascaded loads (§2.4);
///       indirect ld.c needs a saved address, and every saved address must
///       be defined on all paths; all speculative statements for one
///       register must agree on the promoted lexical expression.
///   E4 StaleCheckAddress  — a checking load that reuses a saved address
///       (Stmt::AddrSrc) is only sound while the address part of the
///       reference is unchanged; a may-aliasing store to the pointer cell
///       between the advanced load and the check invalidates that.
///       Requires an alias analysis (SpecVerifyConfig::AA).
///   W1 OverCapacity       — a region keeping more may-live ALAT entries
///       than the table holds makes capacity evictions (and hence check
///       misses) certain; reported as a warning since it is a performance
///       bug, not a correctness bug.
///
/// The pass runs on post-promotion IR (core/Pipeline runs it after the
/// Promoter) and requires up-to-date CFG edges (Function::recomputeCFG).
///
//===----------------------------------------------------------------------===//

#ifndef SRP_ANALYSIS_SPECVERIFIER_H
#define SRP_ANALYSIS_SPECVERIFIER_H

#include "arch/Alat.h"

#include <string>
#include <string_view>
#include <vector>

namespace srp::ir {
class Module;
} // namespace srp::ir

namespace srp::alias {
class AliasAnalysis;
} // namespace srp::alias

namespace srp::analysis {

/// Which invariant a diagnostic reports.
enum class SpecDiagKind : uint8_t {
  UnanchoredCheck,   ///< E1: check not dominated by an anchor.
  ClobberedRegister, ///< E2: unflagged redefinition before a check.
  MalformedRecovery, ///< E3: chk.a / saved-address plumbing broken.
  StaleCheckAddress, ///< E4: saved check address may be stale.
  OverCapacity,      ///< W1: live entries exceed the ALAT size.
};

/// Returns a short lint-tag name, e.g. "unanchored-check".
const char *specDiagKindName(SpecDiagKind Kind);

/// Errors are correctness violations; warnings predict misspeculation.
enum class SpecDiagSeverity : uint8_t { Error, Warning };

/// One finding, with enough location material for file:line output.
struct SpecDiag {
  SpecDiagKind Kind = SpecDiagKind::UnanchoredCheck;
  SpecDiagSeverity Severity = SpecDiagSeverity::Error;
  std::string FunctionName;
  std::string BlockName;
  std::string StmtText; ///< Offending statement (empty for region diags).
  unsigned Line = 0;    ///< Source line in the .sir file; 0 if synthesised.
  std::string Message;
};

/// Knobs for one verification run.
struct SpecVerifyConfig {
  /// Capacity threshold for W1; defaults to the modelled ALAT geometry.
  unsigned AlatEntries = arch::AlatConfig().Entries;
  /// Enables E4 (stale saved addresses). Pass the same analysis the
  /// promoter used so the verdicts agree on what may alias.
  const alias::AliasAnalysis *AA = nullptr;
  /// Disables the W1 capacity lint (e.g. for geometry-ablation benches
  /// that shrink the table on purpose).
  bool CheckCapacity = true;
};

/// Verifies every function of \p M; returns all findings (empty when the
/// module upholds the speculation discipline).
std::vector<SpecDiag> verifySpeculation(const ir::Module &M,
                                        const SpecVerifyConfig &Config = {});

/// True if any finding is an error.
bool hasSpecErrors(const std::vector<SpecDiag> &Diags);

/// Renders \p D as "file:line: severity: message [tag]" with a trailing
/// context line. \p File may be empty (tests, pipeline-internal IR).
std::string formatSpecDiag(const SpecDiag &D, std::string_view File = {});

} // namespace srp::analysis

#endif // SRP_ANALYSIS_SPECVERIFIER_H
