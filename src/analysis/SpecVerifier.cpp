//===- SpecVerifier.cpp - Speculation-safety static checks ------------------===//
//
// Four forward dataflow analyses over the post-promotion CFG, all keyed by
// the small set of temps that participate in speculation:
//
//   1. A per-register ALAT state machine (E1/E2): the power set of
//      {Unanchored, Cleared, Armed, Clobbered, PendingCopy} flows forward
//      with union at joins, so a check can be diagnosed against every
//      state any path can reach it in.
//   2. Definite assignment of saved addresses (E3): intersection at
//      joins; a check whose AddrSrc is not defined on all paths reads a
//      garbage address.
//   3. Saved-address staleness (E4): may-analysis marking a saved pointer
//      stale when a store can write the pointer cell it was loaded from.
//   4. May-live ALAT entries (W1): union at joins; the peak count per
//      program point, plus callee peaks at call sites, bounds the dynamic
//      entry pressure (interp::AlatObserver enforces the same accounting
//      dynamically, which is what the differential test compares).
//
//===----------------------------------------------------------------------===//

#include "analysis/SpecVerifier.h"

#include "alias/AliasAnalysis.h"
#include "ir/CFG.h"
#include "ir/Printer.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>

using namespace srp;
using namespace srp::ir;
using namespace srp::analysis;

namespace {

/// Per-register abstract ALAT states (a power set; forward may-analysis).
enum StateBits : uint8_t {
  StUnanchored = 1 << 0, ///< No anchor reached on some path.
  StCleared = 1 << 1,    ///< Entry known absent (invala / clearing check).
  StArmed = 1 << 2,      ///< Entry may be valid, register in sync.
  StClobbered = 1 << 3,  ///< Entry may be valid, register redefined.
  StPendingCopy = 1 << 4 ///< st.a armed, companion copy still pending.
};

bool isChkFamily(SpecFlag Flag) {
  return Flag == SpecFlag::ChkA || Flag == SpecFlag::ChkAnc;
}

/// The software-check pattern the promoter emits (Select keeping the old
/// promoted value on the no-alias path) is a guarded, sound redefinition.
bool isGuardedSelect(const Stmt &S) {
  return S.Kind == StmtKind::Assign && S.Op == Opcode::Select &&
         S.C.isTemp() && S.C.getTemp() == S.Dst;
}

class FunctionChecker {
public:
  FunctionChecker(const Function &F, const SpecVerifyConfig &Config,
                  const std::map<const Function *, unsigned> &CalleePeak,
                  std::vector<SpecDiag> &Diags)
      : F(F), Config(Config), CalleePeak(CalleePeak), Diags(Diags) {}

  /// Runs every check. Returns the function's worst-case ALAT pressure
  /// (own live entries plus the deepest callee contribution).
  unsigned run() {
    computeRPO();
    collectTemps();
    if (N == 0)
      return 0; // Nothing speculative anywhere in the function.
    checkStructure();
    runStateMachine();
    runDefinedness();
    if (Config.AA)
      runAddrStaleness();
    return runCapacity();
  }

private:
  //===--------------------------------------------------------------===//
  // Infrastructure
  //===--------------------------------------------------------------===//

  void emit(SpecDiagKind Kind, SpecDiagSeverity Sev, const BasicBlock *BB,
            const Stmt *S, std::string Message) {
    SpecDiag D;
    D.Kind = Kind;
    D.Severity = Sev;
    D.FunctionName = F.getName();
    D.BlockName = BB ? BB->getName() : std::string();
    if (S) {
      D.StmtText = stmtToString(*S);
      D.Line = S->Line;
    }
    D.Message = std::move(Message);
    Diags.push_back(std::move(D));
  }

  void computeRPO() {
    std::vector<const BasicBlock *> Post;
    std::set<const BasicBlock *> Seen;
    // Iterative DFS from the entry; unreachable blocks are skipped (no
    // executable path means no speculation obligation).
    std::vector<std::pair<const BasicBlock *, size_t>> Stack;
    Stack.push_back({F.entry(), 0});
    Seen.insert(F.entry());
    while (!Stack.empty()) {
      auto &[BB, NextSucc] = Stack.back();
      if (NextSucc < BB->succs().size()) {
        const BasicBlock *S = BB->succs()[NextSucc++];
        if (Seen.insert(S).second)
          Stack.push_back({S, 0});
      } else {
        Post.push_back(BB);
        Stack.pop_back();
      }
    }
    RPO.assign(Post.rbegin(), Post.rend());
    RpoIndex.clear();
    for (size_t I = 0; I < RPO.size(); ++I)
      RpoIndex[RPO[I]] = I;
  }

  bool tracked(unsigned Temp) const {
    return Temp != NoTemp && Index.count(Temp) != 0;
  }
  unsigned idx(unsigned Temp) const { return Index.at(Temp); }

  void addTemp(unsigned Temp) {
    if (Temp == NoTemp || Index.count(Temp))
      return;
    Index[Temp] = N++;
    TempIds.push_back(Temp);
  }

  /// Collects every temp participating in speculation: flagged load
  /// destinations, chain pointers (AddrDst of advanced loads, AddrSrc of
  /// checks), st.a entry registers and invala.e targets.
  void collectTemps() {
    for (const BasicBlock *BB : RPO) {
      for (size_t SI = 0, SE = BB->size(); SI != SE; ++SI) {
        const Stmt &S = *BB->stmt(SI);
        switch (S.Kind) {
        case StmtKind::Load:
          if (S.Flag != SpecFlag::None) {
            addTemp(S.Dst);
            if (isAdvancedFlag(S.Flag) && S.Ref.isIndirect())
              addTemp(S.AddrDst);
            if (isCheckFlag(S.Flag))
              addTemp(S.AddrSrc);
          }
          break;
        case StmtKind::Store:
          if (S.StA)
            addTemp(S.AlatDst);
          break;
        case StmtKind::Invala:
          addTemp(S.Dst);
          break;
        default:
          break;
        }
      }
    }
  }

  //===--------------------------------------------------------------===//
  // E3: structural checks and expression consistency
  //===--------------------------------------------------------------===//

  void checkStructure() {
    // Canonical promoted expression per register, from the first flagged
    // statement that names it.
    std::unordered_map<unsigned, const MemRef *> Canon;
    std::set<unsigned> RefMismatchReported;
    auto NoteRef = [&](unsigned Temp, const Stmt &S, const BasicBlock *BB) {
      auto [It, Inserted] = Canon.insert({Temp, &S.Ref});
      if (Inserted || It->second->sameLexicalRef(S.Ref))
        return;
      if (RefMismatchReported.insert(Temp).second)
        emit(SpecDiagKind::MalformedRecovery, SpecDiagSeverity::Error, BB,
             &S,
             formatString("speculative statements for t%u disagree on the "
                          "promoted expression ('%s' here vs '%s' at its "
                          "first speculative use)",
                          Temp, memRefToString(S.Ref).c_str(),
                          memRefToString(*It->second).c_str()));
    };

    for (const BasicBlock *BB : RPO) {
      for (size_t SI = 0, SE = BB->size(); SI != SE; ++SI) {
        const Stmt &S = *BB->stmt(SI);
        if (S.isStore() && S.StA && S.AlatDst != NoTemp)
          NoteRef(S.AlatDst, S, BB);
        if (!S.isLoad() || S.Flag == SpecFlag::None)
          continue;
        NoteRef(S.Dst, S, BB);
        if (isChkFamily(S.Flag)) {
          if (S.Ref.Depth != 1)
            emit(SpecDiagKind::MalformedRecovery, SpecDiagSeverity::Error,
                 BB, &S,
                 formatString("chk.a over a depth-%u reference: recovery "
                              "can only re-execute a single-level pointer "
                              "cascade (§2.4)",
                              S.Ref.Depth));
          if (S.AddrSrc == NoTemp)
            emit(SpecDiagKind::MalformedRecovery, SpecDiagSeverity::Error,
                 BB, &S,
                 "chk.a without a saved chain pointer: lowering has no "
                 "register to check and recovery cannot rebuild the "
                 "address");
        } else if (isCheckFlag(S.Flag) && S.Ref.isIndirect() &&
                   S.AddrSrc == NoTemp) {
          emit(SpecDiagKind::MalformedRecovery, SpecDiagSeverity::Error, BB,
               &S,
               "indirect checking load without a saved address: re-walking "
               "the chain would re-speculate the pointer load");
        }
      }
    }
  }

  //===--------------------------------------------------------------===//
  // E1/E2: the per-register ALAT state machine
  //===--------------------------------------------------------------===//

  void plainDef(uint8_t &M, const Stmt &S) {
    uint8_t Out = 0;
    if (M & StUnanchored)
      Out |= StUnanchored;
    if (M & StCleared)
      Out |= StCleared; // Entry absent: a later check misses and reloads.
    if (M & StArmed)
      Out |= isGuardedSelect(S) ? StArmed : StClobbered;
    if (M & StClobbered)
      Out |= StClobbered;
    if (M & StPendingCopy)
      Out |= (S.Kind == StmtKind::Assign && S.Op == Opcode::Copy)
                 ? StArmed // The st.a companion copy syncs the register.
                 : StClobbered;
    M = Out;
  }

  void transferState(const Stmt &S, std::vector<uint8_t> &St, bool Report,
                     const BasicBlock *BB) {
    switch (S.Kind) {
    case StmtKind::Load:
      if (isCheckFlag(S.Flag)) {
        uint8_t &M = St[idx(S.Dst)];
        if (Report) {
          if (M & StUnanchored)
            emit(SpecDiagKind::UnanchoredCheck, SpecDiagSeverity::Error, BB,
                 &S,
                 formatString(
                     "t%u is checked here, but no advanced load, st.a or "
                     "invala.e for it reaches this check on every path; a "
                     "register-keyed ALAT could hit a stale entry",
                     S.Dst));
          if (M & StClobbered)
            emit(SpecDiagKind::ClobberedRegister, SpecDiagSeverity::Error,
                 BB, &S,
                 formatString(
                     "t%u may have been redefined by an unflagged "
                     "statement since its ALAT entry was armed; a check "
                     "hit would keep the clobbered value",
                     S.Dst));
          if (M & StPendingCopy)
            emit(SpecDiagKind::ClobberedRegister, SpecDiagSeverity::Error,
                 BB, &S,
                 formatString("t%u is checked between its st.a and the "
                              "copy that syncs the register",
                              S.Dst));
          if (isChkFamily(S.Flag) && tracked(S.AddrSrc) &&
              (St[idx(S.AddrSrc)] & StUnanchored))
            emit(SpecDiagKind::UnanchoredCheck, SpecDiagSeverity::Error, BB,
                 &S,
                 formatString(
                     "chk.a checks chain pointer t%u, but no advanced "
                     "load allocates its entry on every path",
                     S.AddrSrc));
        }
        switch (S.Flag) {
        case SpecFlag::LdC:
          M = StCleared;
          break;
        case SpecFlag::LdCnc:
        case SpecFlag::ChkAnc:
          M = StArmed;
          break;
        case SpecFlag::ChkA:
          // Hit path clears the entry; miss path re-arms via recovery.
          M = StArmed | StCleared;
          break;
        default:
          break;
        }
        // chk.a recovery re-executes the pointer load, re-arming the
        // chain entry and refreshing the saved pointer register.
        if (isChkFamily(S.Flag) && tracked(S.AddrSrc))
          St[idx(S.AddrSrc)] = StArmed;
      } else if (isAdvancedFlag(S.Flag)) {
        St[idx(S.Dst)] = StArmed;
        if (S.Ref.isIndirect() && tracked(S.AddrDst))
          St[idx(S.AddrDst)] = StArmed; // Chain entry allocated alongside.
      } else {
        if (tracked(S.Dst))
          plainDef(St[idx(S.Dst)], S);
        if (tracked(S.AddrDst))
          plainDef(St[idx(S.AddrDst)], S);
      }
      break;
    case StmtKind::Store:
      if (S.StA && tracked(S.AlatDst))
        St[idx(S.AlatDst)] = StPendingCopy;
      if (tracked(S.AddrDst))
        plainDef(St[idx(S.AddrDst)], S);
      break;
    case StmtKind::Invala:
      if (tracked(S.Dst))
        St[idx(S.Dst)] = StCleared;
      break;
    default:
      if (S.definesTemp() && tracked(S.Dst))
        plainDef(St[idx(S.Dst)], S);
      break;
    }
  }

  void runStateMachine() {
    const size_t B = RPO.size();
    std::vector<std::vector<uint8_t>> Out(B, std::vector<uint8_t>(N, 0));
    auto InOf = [&](size_t BI) {
      std::vector<uint8_t> In(N, 0);
      const BasicBlock *BB = RPO[BI];
      if (BB == F.entry())
        In.assign(N, StUnanchored);
      for (const BasicBlock *P : BB->preds()) {
        auto It = RpoIndex.find(P);
        if (It == RpoIndex.end())
          continue; // Unreachable predecessor.
        for (unsigned I = 0; I < N; ++I)
          In[I] |= Out[It->second][I];
      }
      return In;
    };
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (size_t BI = 0; BI < B; ++BI) {
        std::vector<uint8_t> St = InOf(BI);
        for (size_t SI = 0, SE = RPO[BI]->size(); SI != SE; ++SI)
          transferState(*RPO[BI]->stmt(SI), St, /*Report=*/false, RPO[BI]);
        if (St != Out[BI]) {
          Out[BI] = std::move(St);
          Changed = true;
        }
      }
    }
    // Reporting pass over the converged states.
    for (size_t BI = 0; BI < B; ++BI) {
      std::vector<uint8_t> St = InOf(BI);
      for (size_t SI = 0, SE = RPO[BI]->size(); SI != SE; ++SI)
        transferState(*RPO[BI]->stmt(SI), St, /*Report=*/true, RPO[BI]);
    }
  }

  //===--------------------------------------------------------------===//
  // E3 (dataflow half): saved addresses defined on all paths
  //===--------------------------------------------------------------===//

  void transferDefined(const Stmt &S, std::vector<uint8_t> &Def,
                       bool Report, const BasicBlock *BB) {
    if (S.isLoad() && isCheckFlag(S.Flag) && tracked(S.AddrSrc) &&
        !Def[idx(S.AddrSrc)] && Report)
      emit(SpecDiagKind::MalformedRecovery, SpecDiagSeverity::Error, BB, &S,
           formatString("saved check address t%u may be undefined on a "
                        "path reaching this check",
                        S.AddrSrc));
    if (S.definesTemp() && tracked(S.Dst))
      Def[idx(S.Dst)] = 1;
    if (S.accessesMemory() && tracked(S.AddrDst))
      Def[idx(S.AddrDst)] = 1;
    // chk.a refreshes the saved pointer after checking it.
    if (S.isLoad() && isChkFamily(S.Flag) && tracked(S.AddrSrc))
      Def[idx(S.AddrSrc)] = 1;
  }

  void runDefinedness() {
    const size_t B = RPO.size();
    // Must-analysis: meet is intersection, so non-entry blocks start from
    // the optimistic all-defined state.
    std::vector<std::vector<uint8_t>> Out(B, std::vector<uint8_t>(N, 1));
    auto InOf = [&](size_t BI) {
      const BasicBlock *BB = RPO[BI];
      std::vector<uint8_t> In(N, BB == F.entry() ? 0 : 1);
      for (const BasicBlock *P : BB->preds()) {
        auto It = RpoIndex.find(P);
        if (It == RpoIndex.end())
          continue;
        for (unsigned I = 0; I < N; ++I)
          In[I] = In[I] && Out[It->second][I];
      }
      return In;
    };
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (size_t BI = 0; BI < B; ++BI) {
        std::vector<uint8_t> Def = InOf(BI);
        for (size_t SI = 0, SE = RPO[BI]->size(); SI != SE; ++SI)
          transferDefined(*RPO[BI]->stmt(SI), Def, /*Report=*/false,
                          RPO[BI]);
        if (Def != Out[BI]) {
          Out[BI] = std::move(Def);
          Changed = true;
        }
      }
    }
    for (size_t BI = 0; BI < B; ++BI) {
      std::vector<uint8_t> Def = InOf(BI);
      for (size_t SI = 0, SE = RPO[BI]->size(); SI != SE; ++SI)
        transferDefined(*RPO[BI]->stmt(SI), Def, /*Report=*/true, RPO[BI]);
    }
  }

  //===--------------------------------------------------------------===//
  // E4: saved-address staleness
  //===--------------------------------------------------------------===//

  /// The memory cell the saved address was loaded from: stripping one
  /// dereference level off the promoted reference (index/offset apply
  /// after the final deref, so they do not name the pointer cell).
  static MemRef pointerSlot(const MemRef &Ref) {
    MemRef Slot;
    Slot.Base = Ref.Base;
    Slot.Depth = Ref.Depth - 1;
    Slot.ValueType = TypeKind::Int;
    return Slot;
  }

  void runAddrStaleness() {
    // Saved pointers of plain (non-chk.a) checks over indirect refs; the
    // chk.a family re-walks the chain and cannot use a stale address.
    std::unordered_map<unsigned, MemRef> Slot; // dense idx -> pointer cell
    for (const BasicBlock *BB : RPO)
      for (size_t SI = 0, SE = BB->size(); SI != SE; ++SI) {
        const Stmt &S = *BB->stmt(SI);
        if (S.isLoad() && isCheckFlag(S.Flag) && !isChkFamily(S.Flag) &&
            S.Ref.isIndirect() && tracked(S.AddrSrc))
          Slot.emplace(idx(S.AddrSrc), pointerSlot(S.Ref));
      }
    if (Slot.empty())
      return;

    const alias::AliasAnalysis &AA = *Config.AA;
    auto Transfer = [&](const Stmt &S, std::vector<uint8_t> &Stale,
                        bool Report, const BasicBlock *BB) {
      if (S.isLoad() && isCheckFlag(S.Flag) && !isChkFamily(S.Flag) &&
          tracked(S.AddrSrc)) {
        auto It = Slot.find(idx(S.AddrSrc));
        if (Report && It != Slot.end() && Stale[idx(S.AddrSrc)])
          emit(SpecDiagKind::StaleCheckAddress, SpecDiagSeverity::Error, BB,
               &S,
               formatString("the saved address in t%u may be stale: a "
                            "store can modify '%s' between the advanced "
                            "load and this check",
                            S.AddrSrc,
                            memRefToString(It->second).c_str()));
      }
      if (S.isStore()) {
        for (auto &[I, Cell] : Slot)
          if (AA.mayAlias(S.Ref, &F, Cell, &F))
            Stale[I] = 1;
      } else if (S.Kind == StmtKind::Call) {
        for (auto &[I, Cell] : Slot)
          if (Cell.Depth > 0 || AA.isCallClobbered(Cell.Base))
            Stale[I] = 1;
      }
      // Any (re)definition of the saved pointer freshens it: the advanced
      // load's AddrDst, an explicit address materialisation, or a chk.a
      // refresh after its recovery.
      if (S.definesTemp() && tracked(S.Dst))
        Stale[idx(S.Dst)] = 0;
      if (S.accessesMemory() && tracked(S.AddrDst))
        Stale[idx(S.AddrDst)] = 0;
      if (S.isLoad() && isChkFamily(S.Flag) && tracked(S.AddrSrc))
        Stale[idx(S.AddrSrc)] = 0;
    };

    const size_t B = RPO.size();
    std::vector<std::vector<uint8_t>> Out(B, std::vector<uint8_t>(N, 0));
    auto InOf = [&](size_t BI) {
      std::vector<uint8_t> In(N, 0);
      for (const BasicBlock *P : RPO[BI]->preds()) {
        auto It = RpoIndex.find(P);
        if (It == RpoIndex.end())
          continue;
        for (unsigned I = 0; I < N; ++I)
          In[I] |= Out[It->second][I];
      }
      return In;
    };
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (size_t BI = 0; BI < B; ++BI) {
        std::vector<uint8_t> Stale = InOf(BI);
        for (size_t SI = 0, SE = RPO[BI]->size(); SI != SE; ++SI)
          Transfer(*RPO[BI]->stmt(SI), Stale, /*Report=*/false, RPO[BI]);
        if (Stale != Out[BI]) {
          Out[BI] = std::move(Stale);
          Changed = true;
        }
      }
    }
    for (size_t BI = 0; BI < B; ++BI) {
      std::vector<uint8_t> Stale = InOf(BI);
      for (size_t SI = 0, SE = RPO[BI]->size(); SI != SE; ++SI)
        Transfer(*RPO[BI]->stmt(SI), Stale, /*Report=*/true, RPO[BI]);
    }
  }

  //===--------------------------------------------------------------===//
  // W1: ALAT capacity pressure
  //===--------------------------------------------------------------===//

  void transferLive(const Stmt &S, std::vector<uint8_t> &Live) {
    switch (S.Kind) {
    case StmtKind::Load:
      if (isAdvancedFlag(S.Flag)) {
        Live[idx(S.Dst)] = 1;
        if (S.Ref.isIndirect() && tracked(S.AddrDst))
          Live[idx(S.AddrDst)] = 1;
      } else if (S.Flag == SpecFlag::LdC) {
        Live[idx(S.Dst)] = 0; // .clr drops the entry, hit or miss.
      } else if (S.Flag == SpecFlag::LdCnc) {
        Live[idx(S.Dst)] = 1; // .nc keeps on hit, re-allocates on miss.
      } else if (isChkFamily(S.Flag)) {
        // Miss-path recovery re-allocates both data and chain entries.
        Live[idx(S.Dst)] = 1;
        if (tracked(S.AddrSrc))
          Live[idx(S.AddrSrc)] = 1;
      }
      break;
    case StmtKind::Store:
      if (S.StA && tracked(S.AlatDst))
        Live[idx(S.AlatDst)] = 1;
      break;
    case StmtKind::Invala:
      if (tracked(S.Dst))
        Live[idx(S.Dst)] = 0;
      break;
    default:
      break;
    }
  }

  unsigned runCapacity() {
    const size_t B = RPO.size();
    std::vector<std::vector<uint8_t>> Out(B, std::vector<uint8_t>(N, 0));
    auto InOf = [&](size_t BI) {
      std::vector<uint8_t> In(N, 0);
      for (const BasicBlock *P : RPO[BI]->preds()) {
        auto It = RpoIndex.find(P);
        if (It == RpoIndex.end())
          continue;
        for (unsigned I = 0; I < N; ++I)
          In[I] |= Out[It->second][I];
      }
      return In;
    };
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (size_t BI = 0; BI < B; ++BI) {
        std::vector<uint8_t> Live = InOf(BI);
        for (size_t SI = 0, SE = RPO[BI]->size(); SI != SE; ++SI)
          transferLive(*RPO[BI]->stmt(SI), Live);
        if (Live != Out[BI]) {
          Out[BI] = std::move(Live);
          Changed = true;
        }
      }
    }
    unsigned Peak = 0;
    bool Warned = false;
    for (size_t BI = 0; BI < B; ++BI) {
      std::vector<uint8_t> Live = InOf(BI);
      for (size_t SI = 0, SE = RPO[BI]->size(); SI != SE; ++SI) {
        const Stmt &S = *RPO[BI]->stmt(SI);
        transferLive(S, Live);
        unsigned Count = 0;
        for (unsigned I = 0; I < N; ++I)
          Count += Live[I];
        if (S.Kind == StmtKind::Call && S.Callee) {
          auto It = CalleePeak.find(S.Callee);
          if (It != CalleePeak.end())
            Count += It->second;
        }
        Peak = std::max(Peak, Count);
        if (Config.CheckCapacity && Count > Config.AlatEntries && !Warned) {
          Warned = true;
          emit(SpecDiagKind::OverCapacity, SpecDiagSeverity::Warning,
               RPO[BI], &S,
               formatString(
                   "%u ALAT entries may be live here but the table holds "
                   "%u; capacity evictions make some checks miss on every "
                   "execution reaching this point",
                   Count, Config.AlatEntries));
        }
      }
    }
    return Peak;
  }

  const Function &F;
  const SpecVerifyConfig &Config;
  const std::map<const Function *, unsigned> &CalleePeak;
  std::vector<SpecDiag> &Diags;

  std::vector<const BasicBlock *> RPO;
  std::map<const BasicBlock *, size_t> RpoIndex;
  std::unordered_map<unsigned, unsigned> Index; ///< Temp id -> dense index.
  std::vector<unsigned> TempIds;                ///< Dense index -> temp id.
  unsigned N = 0;
};

/// Verifies functions bottom-up over the call graph so each call site can
/// account for its callee's ALAT pressure. Recursive cycles contribute a
/// zero peak (their pressure is unbounded statically; the dynamic observer
/// still catches the evictions).
class ModuleChecker {
public:
  ModuleChecker(const Module &M, const SpecVerifyConfig &Config)
      : M(M), Config(Config) {}

  std::vector<SpecDiag> run() {
    for (unsigned I = 0; I < M.numFunctions(); ++I)
      visit(M.function(I));
    return std::move(Diags);
  }

private:
  void visit(const Function *F) {
    if (Done.count(F) || InProgress.count(F))
      return;
    InProgress.insert(F);
    for (unsigned BI = 0; BI < F->numBlocks(); ++BI) {
      const BasicBlock *BB = F->block(BI);
      for (size_t SI = 0, SE = BB->size(); SI != SE; ++SI) {
        const Stmt &S = *BB->stmt(SI);
        if (S.Kind == StmtKind::Call && S.Callee)
          visit(S.Callee);
      }
    }
    InProgress.erase(F);
    FunctionChecker FC(*F, Config, Peaks, Diags);
    Peaks[F] = FC.run();
    Done.insert(F);
  }

  const Module &M;
  const SpecVerifyConfig &Config;
  std::vector<SpecDiag> Diags;
  std::map<const Function *, unsigned> Peaks;
  std::set<const Function *> Done, InProgress;
};

} // namespace

namespace srp::analysis {

const char *specDiagKindName(SpecDiagKind Kind) {
  switch (Kind) {
  case SpecDiagKind::UnanchoredCheck:
    return "unanchored-check";
  case SpecDiagKind::ClobberedRegister:
    return "clobbered-register";
  case SpecDiagKind::MalformedRecovery:
    return "malformed-recovery";
  case SpecDiagKind::StaleCheckAddress:
    return "stale-check-address";
  case SpecDiagKind::OverCapacity:
    return "over-capacity";
  }
  return "unknown";
}

std::vector<SpecDiag> verifySpeculation(const Module &M,
                                        const SpecVerifyConfig &Config) {
  return ModuleChecker(M, Config).run();
}

bool hasSpecErrors(const std::vector<SpecDiag> &Diags) {
  for (const SpecDiag &D : Diags)
    if (D.Severity == SpecDiagSeverity::Error)
      return true;
  return false;
}

std::string formatSpecDiag(const SpecDiag &D, std::string_view File) {
  std::string Out;
  if (!File.empty()) {
    Out += File;
    Out += ':';
    if (D.Line)
      Out += std::to_string(D.Line) + ":";
    Out += ' ';
  }
  Out += D.Severity == SpecDiagSeverity::Error ? "error: " : "warning: ";
  Out += D.Message;
  Out += " [";
  Out += specDiagKindName(D.Kind);
  Out += ']';
  Out += "\n  in " + D.FunctionName;
  if (!D.BlockName.empty())
    Out += ", block '" + D.BlockName + "'";
  if (!D.StmtText.empty())
    Out += ": " + D.StmtText;
  return Out;
}

} // namespace srp::analysis
