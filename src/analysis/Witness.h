//===- Witness.h - Proof witnesses for promoted webs ------------*- C++ -*-===//
//
// Part of the srp-alat project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A *proof witness* is the machine-checkable record the lint mode emits
/// for every promoted web (one checking load plus the advanced loads that
/// anchor it): which anchoring invariant the web upholds, what the alias
/// analysis believes the access can touch, and the taint verdict — did
/// the static analysis::TaintFlow prove no secret escapes the web's
/// speculative window, and does the dynamic oracle (the interpreter's
/// shadow-taint run) agree?
///
/// The cross-validated status is the point:
///
///   CONFIRMED — the static verdict and the dynamic observation agree
///               (both clean, or both leaky: a flagged leak the run
///               reproduced is still a *confirmed* analysis).
///   REFUTED   — the static analysis passed the web but the dynamic run
///               observed a leak depending on one of its anchors. This
///               is an analysis soundness bug, never an acceptable
///               outcome; the fuzzer treats it as a finding.
///
/// Witnesses serialize to JSON through support/JSON.h; emission is
/// byte-deterministic (fixed key order, sorted sets) so identical inputs
/// produce identical files across runs and thread counts.
///
//===----------------------------------------------------------------------===//

#ifndef SRP_ANALYSIS_WITNESS_H
#define SRP_ANALYSIS_WITNESS_H

#include "analysis/SpecVerifier.h"
#include "analysis/TaintFlow.h"

#include <string>
#include <vector>

namespace srp {
class OStream;
} // namespace srp

namespace srp::analysis {

/// One promoted web's witness record.
struct Witness {
  std::string FunctionName;
  std::string CheckKind;   ///< Mnemonic of the checking load (ld.c, chk.a...).
  std::string CheckText;   ///< The checking statement, printed.
  unsigned CheckLine = 0;  ///< Source line of the check (0 if synthesised).
  unsigned Temp = 0;       ///< The promoted register the web commits.
  std::string RefText;     ///< The promoted lexical reference.

  /// Anchoring invariant the web upholds, named: "anchored-check" when
  /// the speculation verifier found no error on the web, otherwise the
  /// tag of the violated invariant (e.g. "unanchored-check").
  std::string Invariant;
  bool Anchored = false;
  std::vector<unsigned> AnchorLines; ///< Lines of the web's advanced loads.

  /// Alias facts: the backing analysis and what it says the promoted
  /// reference may touch (sorted symbol names).
  std::string AliasAnalysisName;
  std::vector<std::string> Pointees;

  /// Taint verdict.
  bool SecretInvolved = false; ///< The checked value may carry a secret.
  uint64_t WebMask = 0;        ///< Site bits of the web's advanced loads.
  uint64_t ResidualMask = 0;   ///< Spec bits still on the checked temp.
  bool StaticLeak = false;     ///< A TaintFlow diag depends on this web.
  bool DynamicLeak = false;    ///< A dynamic leak depends on this web.

  enum class Status : uint8_t { Confirmed, Refuted };
  Status St = Status::Confirmed;
};

const char *witnessStatusName(Witness::Status St);

/// Builds one witness per checking load in \p M, cross-validating
/// \p TF's static verdict against the speculation diagnostics
/// \p SpecDiags and (when non-null) the dynamic taint observations
/// \p Dyn. Deterministic (function, block, statement) order.
std::vector<Witness> buildWitnesses(ir::Module &M, const TaintFlow &TF,
                                    const std::vector<SpecDiag> &SpecDiags,
                                    const interp::TaintTrace *Dyn);

/// True if any witness is REFUTED (static PASS with a dynamic leak).
bool hasRefutedWitness(const std::vector<Witness> &Ws);

/// Serializes \p Ws as one deterministic JSON document.
void writeWitnesses(const std::vector<Witness> &Ws, const ir::Module &M,
                    const TaintFlow &TF, OStream &OS);

} // namespace srp::analysis

#endif // SRP_ANALYSIS_WITNESS_H
