//===- TaintFlow.cpp - Speculative secret-taint dataflow ---------------------===//

#include "analysis/TaintFlow.h"

#include "alias/Andersen.h"
#include "ir/Printer.h"
#include "ssa/AnalysisCache.h"
#include "ssa/HSSA.h"
#include "support/Error.h"
#include "support/StringUtils.h"

#include <algorithm>

using namespace srp;
using namespace srp::analysis;
using namespace srp::ir;
using interp::Shadow;

const char *analysis::taintDiagKindName(TaintDiagKind Kind) {
  switch (Kind) {
  case TaintDiagKind::SpecSecretAddress:
    return "spec-secret-address";
  case TaintDiagKind::SpecSecretBranch:
    return "spec-secret-branch";
  case TaintDiagKind::SpecSecretOutput:
    return "spec-secret-output";
  }
  SRP_UNREACHABLE("invalid taint diag kind");
}

std::string analysis::formatTaintDiag(const TaintDiag &D,
                                      std::string_view File) {
  std::string Out;
  if (!File.empty())
    Out += std::string(File) + ":";
  Out += formatString("%u: error: ", D.Line);
  Out += D.Message;
  Out += formatString(" [%s]", taintDiagKindName(D.Kind));
  Out += formatString("\n  in %s, block %s", D.FunctionName.c_str(),
                      D.BlockName.c_str());
  if (!D.StmtText.empty())
    Out += ": " + D.StmtText;
  return Out;
}

namespace srp::analysis {

/// The module fixpoint engine. Builds HSSA once per function, then
/// iterates: per-function forward dataflow on temp shadows (flow-
/// sensitive; OR-join at block heads) with monotone weak updates to the
/// module-wide symbol shadows, until nothing changes. A final reporting
/// pass re-runs each function's transfer with the stable state and emits
/// diagnostics at the sinks.
class TaintSolver {
public:
  TaintSolver(ir::Module &M, TaintFlow &TF, ssa::AnalysisCache *Cache)
      : M(M), TF(TF) {
    for (const auto &[S, Index] : interp::specSiteIndex(M))
      TF.SiteBits[S] = 1ULL << Index;
    for (unsigned I = 0, E = M.numSymbols(); I != E; ++I)
      if (M.symbol(I)->Secret) {
        TF.SymShadow[I].Secret = true;
        TF.AnySecret = true;
      }
    if (!TF.AnySecret)
      return;
    // HSSA is immutable once built and the analysis never mutates the IR,
    // so one build per function serves every iteration.
    for (unsigned FI = 0, FE = M.numFunctions(); FI != FE; ++FI) {
      ir::Function &F = *M.function(FI);
      if (F.numBlocks() == 0)
        continue;
      if (Cache) {
        Forms.push_back(std::make_unique<ssa::HSSA>(
            F, Cache->dominators(F), *TF.AA, /*Profile=*/nullptr));
      } else {
        OwnedDoms.push_back(std::make_unique<ssa::DominatorTree>(F));
        Forms.push_back(std::make_unique<ssa::HSSA>(F, *OwnedDoms.back(),
                                                    *TF.AA,
                                                    /*Profile=*/nullptr));
      }
    }
    solve();
    report();
  }

private:
  /// Dataflow state: one shadow per temp.
  using State = std::vector<Shadow>;

  static bool merge(Shadow &Into, const Shadow &From) {
    bool Changed = (From.Secret && !Into.Secret) ||
                   (From.Spec & ~Into.Spec) != 0;
    Into.merge(From);
    return Changed;
  }

  Shadow operandShadow(const State &In, const Operand &Op) const {
    if (Op.isTemp() && Op.TempId < In.size())
      return In[Op.TempId];
    return Shadow();
  }

  /// Content shadow of one HSSA object: symbols read their own cell,
  /// virtual variables widen to their points-to set (wild when empty).
  Shadow objectShadow(const ssa::HSSA &H, ssa::ObjectId Obj,
                      const ir::Function *F) const {
    const ssa::SSAObject &O = H.object(Obj);
    if (!O.isVirtual())
      return TF.SymShadow[O.Sym->Id];
    Shadow Sh;
    auto Pointees = TF.AA->mayPointees(O.Ref, F);
    if (Pointees.empty())
      return TF.WildShadow;
    for (const Symbol *Sym : Pointees)
      Sh.merge(TF.SymShadow[Sym->Id]);
    return Sh;
  }

  /// Weak-updates the content of one HSSA object with \p Sh. Returns
  /// true if any shadow grew.
  bool taintObject(const ssa::HSSA &H, ssa::ObjectId Obj,
                   const ir::Function *F, const Shadow &Sh) {
    const ssa::SSAObject &O = H.object(Obj);
    if (!O.isVirtual())
      return merge(TF.SymShadow[O.Sym->Id], Sh);
    auto Pointees = TF.AA->mayPointees(O.Ref, F);
    if (Pointees.empty())
      return merge(TF.WildShadow, Sh);
    bool Changed = false;
    for (const Symbol *Sym : Pointees)
      Changed |= merge(TF.SymShadow[Sym->Id], Sh);
    return Changed;
  }

  /// Shadow the address-chain walk of \p S accumulates: the content of
  /// every level object the walk dereferences, plus the advanced load's
  /// own site bit (a chain cell an ld.a walks is itself speculative).
  /// Mirrors Execution::computeAccessAddress's WalkShadow.
  Shadow walkShadow(const ssa::HSSA &H, const ir::Stmt &S,
                    const ir::Function *F) const {
    const ssa::StmtAccess *AI = H.accessInfo(&S);
    Shadow Sh;
    if (!AI)
      return Sh;
    unsigned Depth = S.Ref.Depth;
    for (unsigned L = 0; L < Depth && L < AI->LevelObjs.size(); ++L)
      Sh.merge(objectShadow(H, AI->LevelObjs[L], F));
    if (S.Kind == StmtKind::Load && isAdvancedFlag(S.Flag))
      Sh.Spec |= TF.siteBitOf(&S);
    return Sh;
  }

  /// Content shadow of the data object (the cell the final read/write
  /// touches).
  Shadow dataShadow(const ssa::HSSA &H, const ir::Stmt &S,
                    const ir::Function *F) const {
    const ssa::StmtAccess *AI = H.accessInfo(&S);
    return AI ? objectShadow(H, AI->dataObj(), F) : Shadow();
  }

  void setTemp(State &In, unsigned Temp, const Shadow &Sh) {
    if (Temp != NoTemp && Temp < In.size())
      In[Temp] = Sh;
  }

  /// One statement's transfer on \p In. When \p GrewMemory is non-null,
  /// memory/summary weak updates are applied and their growth reported
  /// through it; the reporting pass passes null and \p Sink to collect
  /// diagnostics instead.
  void transfer(const ssa::HSSA &H, const ir::Function *F, const Stmt &S,
                State &In, bool *GrewMemory,
                std::vector<TaintDiag> *Sink, const BasicBlock *BB) {
    switch (S.Kind) {
    case StmtKind::Assign: {
      Shadow Sh = operandShadow(In, S.A);
      Sh.merge(operandShadow(In, S.B));
      Sh.merge(operandShadow(In, S.C));
      setTemp(In, S.Dst, Sh);
      break;
    }
    case StmtKind::Load: {
      bool IsChkA = S.Flag == SpecFlag::ChkA || S.Flag == SpecFlag::ChkAnc;
      Shadow AddrShadow;
      if (S.hasAddrSrc() && !IsChkA) {
        // The load reuses a saved pointer: its speculative history is the
        // saved temp's, not the chain's.
        if (S.AddrSrc < In.size())
          AddrShadow = In[S.AddrSrc];
      } else {
        AddrShadow = walkShadow(H, S, F);
        // chk.a re-walks the chain architecturally and refreshes the
        // saved pointer (flow-sensitive strong update, like the
        // interpreter's).
        if (IsChkA && S.AddrSrc != NoTemp)
          setTemp(In, S.AddrSrc, AddrShadow);
      }
      if (S.Ref.hasIndex())
        AddrShadow.merge(operandShadow(In, S.Ref.Index));
      if (S.AddrDst != NoTemp)
        setTemp(In, S.AddrDst, AddrShadow);
      emitIf(Sink, TaintDiagKind::SpecSecretAddress, AddrShadow, F, BB, &S);
      Shadow DstShadow = dataShadow(H, S, F);
      DstShadow.merge(AddrShadow);
      if (isAdvancedFlag(S.Flag))
        DstShadow.Spec |= TF.siteBitOf(&S);
      // Checking loads (ld.c / chk.a) re-define Dst without an advanced
      // bit: the check is the commit point, after it the value is
      // architectural.
      setTemp(In, S.Dst, DstShadow);
      break;
    }
    case StmtKind::Store: {
      Shadow AddrShadow = walkShadow(H, S, F);
      if (S.Ref.hasIndex())
        AddrShadow.merge(operandShadow(In, S.Ref.Index));
      if (S.AddrDst != NoTemp)
        setTemp(In, S.AddrDst, AddrShadow);
      emitIf(Sink, TaintDiagKind::SpecSecretAddress, AddrShadow, F, BB, &S);
      if (GrewMemory) {
        const ssa::StmtAccess *AI = H.accessInfo(&S);
        if (AI)
          *GrewMemory |=
              taintObject(H, AI->dataObj(), F, operandShadow(In, S.A));
      }
      break;
    }
    case StmtKind::AddrOf:
      setTemp(In, S.Dst,
              S.Ref.hasIndex() ? operandShadow(In, S.Ref.Index) : Shadow());
      break;
    case StmtKind::Alloc:
      setTemp(In, S.Dst, Shadow());
      break;
    case StmtKind::Call: {
      if (GrewMemory) {
        const auto &Formals = S.Callee->formals();
        for (size_t I = 0; I < S.Args.size() && I < Formals.size(); ++I)
          *GrewMemory |= merge(TF.SymShadow[Formals[I]->Id],
                               operandShadow(In, S.Args[I]));
      }
      setTemp(In, S.Dst, RetSummary[S.Callee]);
      break;
    }
    case StmtKind::Invala:
      break;
    case StmtKind::Print:
      emitIf(Sink, TaintDiagKind::SpecSecretOutput, operandShadow(In, S.A),
             F, BB, &S);
      break;
    }
  }

  void transferTerminator(const ir::Function *F, const BasicBlock *BB,
                          State &Out, bool *GrewMemory,
                          std::vector<TaintDiag> *Sink) {
    const Terminator &T = BB->term();
    if (T.Kind == TermKind::CondBr)
      emitIf(Sink, TaintDiagKind::SpecSecretBranch,
             operandShadow(Out, T.Cond), F, BB, /*S=*/nullptr);
    if (T.Kind == TermKind::Ret && GrewMemory && !T.RetVal.isNone())
      *GrewMemory |=
          merge(RetSummary[F], operandShadow(Out, T.RetVal));
  }

  void emitIf(std::vector<TaintDiag> *Sink, TaintDiagKind Kind,
              const Shadow &Sh, const ir::Function *F, const BasicBlock *BB,
              const Stmt *S) {
    if (!Sink || !Sh.leaks())
      return;
    TaintDiag D;
    D.Kind = Kind;
    D.FunctionName = F->getName();
    D.BlockName = BB->getName();
    D.SpecMask = Sh.Spec;
    if (S) {
      D.StmtText = stmtToString(*S);
      D.Line = S->Line;
    } else {
      // Terminators carry no line; attribute branch leaks to the block's
      // final statement, matching the interpreter's dynamic trace.
      D.Line = BB->size() ? BB->stmt(BB->size() - 1)->Line : 0;
    }
    const char *What = Kind == TaintDiagKind::SpecSecretAddress
                           ? "an access address"
                       : Kind == TaintDiagKind::SpecSecretBranch
                           ? "a branch condition"
                           : "program output";
    D.Message = formatString(
        "secret-derived value reaches %s inside a speculative window "
        "(advanced-load sites 0x%llx)",
        What, static_cast<unsigned long long>(Sh.Spec));
    Sink->push_back(std::move(D));
  }

  const ssa::HSSA *formOf(const ir::Function *F) const {
    for (const auto &H : Forms)
      if (&H->function() == F)
        return H.get();
    return nullptr;
  }

  /// Runs one function's forward dataflow to a local fixpoint under the
  /// current module state. Returns true if memory/summaries grew. Leaves
  /// the per-block OUT states in BlockOut[F].
  bool solveFunction(ir::Function &F) {
    const ssa::HSSA *H = formOf(&F);
    if (!H)
      return false;
    auto &Out = BlockOut[&F];
    Out.assign(F.numBlocks(), State(F.numTemps()));
    bool GrewMemory = false;
    bool LocalChanged = true;
    // The state is finite and every transfer monotone in it, so the loop
    // terminates; the block count bounds the longest acyclic chain.
    while (LocalChanged) {
      LocalChanged = false;
      for (unsigned BI = 0, BE = F.numBlocks(); BI != BE; ++BI) {
        BasicBlock *BB = F.block(BI);
        State In(F.numTemps());
        for (const BasicBlock *P : BB->preds())
          for (unsigned T = 0; T < In.size(); ++T)
            In[T].merge(Out[P->getId()][T]);
        for (size_t SI = 0, SE = BB->size(); SI != SE; ++SI)
          transfer(*H, &F, *BB->stmt(SI), In, &GrewMemory,
                   /*Sink=*/nullptr, BB);
        transferTerminator(&F, BB, In, &GrewMemory, /*Sink=*/nullptr);
        for (unsigned T = 0; T < In.size(); ++T)
          LocalChanged |= merge(Out[BI][T], In[T]);
      }
    }
    return GrewMemory;
  }

  void solve() {
    bool Changed = true;
    while (Changed) {
      Changed = false;
      ++TF.Iterations;
      for (unsigned FI = 0, FE = M.numFunctions(); FI != FE; ++FI)
        Changed |= solveFunction(*M.function(FI));
      // Summaries feeding call sites change temp states too, so one more
      // sweep runs whenever anything grew; the finite lattice bounds the
      // iteration count.
    }
  }

  /// Emits diagnostics and the final per-temp shadows with the stable
  /// state. Re-runs each block's transfer from its (now stable) IN.
  void report() {
    for (unsigned FI = 0, FE = M.numFunctions(); FI != FE; ++FI) {
      ir::Function &F = *M.function(FI);
      const ssa::HSSA *H = formOf(&F);
      if (!H)
        continue;
      auto &Out = BlockOut[&F];
      State &Final = TF.TempShadows[&F];
      Final.assign(F.numTemps(), Shadow());
      for (unsigned BI = 0, BE = F.numBlocks(); BI != BE; ++BI) {
        BasicBlock *BB = F.block(BI);
        State In(F.numTemps());
        for (const BasicBlock *P : BB->preds())
          for (unsigned T = 0; T < In.size(); ++T)
            In[T].merge(Out[P->getId()][T]);
        for (size_t SI = 0, SE = BB->size(); SI != SE; ++SI)
          transfer(*H, &F, *BB->stmt(SI), In, /*GrewMemory=*/nullptr,
                   &TF.Diags, BB);
        transferTerminator(&F, BB, In, /*GrewMemory=*/nullptr, &TF.Diags);
        for (unsigned T = 0; T < In.size(); ++T)
          Final[T].merge(In[T]);
      }
    }
  }

  ir::Module &M;
  TaintFlow &TF;
  std::vector<std::unique_ptr<ssa::DominatorTree>> OwnedDoms;
  std::vector<std::unique_ptr<ssa::HSSA>> Forms;
  std::map<const ir::Function *, Shadow> RetSummary;
  std::map<const ir::Function *, std::vector<State>> BlockOut;
};

} // namespace srp::analysis

TaintFlow::TaintFlow(ir::Module &M, const TaintFlowConfig &Config) {
  if (Config.AA) {
    AA = Config.AA;
  } else {
    // Lint-path instance: taint webs query only the references secret
    // values reach, so demand mode solves a fraction of the program.
    OwnedAA = std::make_unique<alias::AndersenAnalysis>(
        M, alias::AndersenAnalysis::SolveMode::Demand);
    AA = OwnedAA.get();
  }
  SymShadow.assign(M.numSymbols(), Shadow());
  TaintSolver Solver(M, *this, Config.Cache);
}

TaintFlow::~TaintFlow() = default;

Shadow TaintFlow::tempShadow(const ir::Function *F, unsigned Temp) const {
  auto It = TempShadows.find(F);
  if (It == TempShadows.end() || Temp >= It->second.size())
    return Shadow();
  return It->second[Temp];
}

Shadow TaintFlow::symbolShadow(const ir::Symbol *Sym) const {
  return Sym && Sym->Id < SymShadow.size() ? SymShadow[Sym->Id] : Shadow();
}

uint64_t TaintFlow::siteBitOf(const ir::Stmt *S) const {
  auto It = SiteBits.find(S);
  return It == SiteBits.end() ? 0 : It->second;
}

const char *TaintFlow::aliasName() const { return AA->name(); }
