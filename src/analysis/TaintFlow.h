//===- TaintFlow.h - Speculative secret-taint dataflow ----------*- C++ -*-===//
//
// Part of the srp-alat project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Static, interprocedural secret-taint analysis over the HSSA form.
///
/// `secret`-annotated symbols (globals, formals, locals — see ir::Symbol::
/// Secret) are taint sources. The analysis propagates a two-part shadow
/// lattice per value:
///
///   Secret : bool      — derived from a secret symbol;
///   Spec   : uint64_t  — bitmask of the advanced-load sites (ld.a /
///                        ld.sa; interp::specSiteIndex assigns the bits)
///                        whose *unchecked* values the value depends on.
///
/// A value that is Secret with Spec != 0 is a secret observed inside a
/// speculative window: an advanced load produced it (or its address) and
/// no check has committed it yet. Such a value reaching an address
/// computation, a conditional branch, or a print statement is the leak
/// the paper's promotion discipline must not introduce — the ALAT check
/// is the commit point, and before it the value may be one the
/// architectural program never uses.
///
/// Propagation is flow-sensitive on temps (the checking loads ld.c /
/// chk.a re-define the promoted register, so the same temp is clean after
/// the check and speculative inside the window; a forward CFG dataflow
/// with OR-join captures exactly that) and flow-insensitive on memory
/// (one monotone shadow per symbol, weak updates only). Memory edges go
/// through the HSSA μ/χ object sets: each access level of a load/store
/// maps to the SSAObject the HSSA builder planned for it, and virtual
/// objects widen to their points-to sets (Andersen by default). An
/// access level whose points-to set is empty falls back to a module-wide
/// "wild" shadow so no store's taint is ever dropped.
///
/// The shadow rules mirror interp::Interpreter's dynamic taint mode
/// statement by statement, with the static side always over-approximating
/// (symbol-granular memory, all paths joined, calls context-insensitive).
/// Every leak the dynamic oracle can observe is therefore also derivable
/// statically; valid::DiffOracle cross-checks the two and reports a
/// static PASS with a dynamic leak as a disagreement.
///
//===----------------------------------------------------------------------===//

#ifndef SRP_ANALYSIS_TAINTFLOW_H
#define SRP_ANALYSIS_TAINTFLOW_H

#include "interp/Interpreter.h"
#include "ir/CFG.h"

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace srp::alias {
class AliasAnalysis;
} // namespace srp::alias

namespace srp::ssa {
class AnalysisCache;
} // namespace srp::ssa

namespace srp::analysis {

/// Which sink a speculative secret reached.
enum class TaintDiagKind : uint8_t {
  SpecSecretAddress, ///< Tainted speculative value formed an access address.
  SpecSecretBranch,  ///< ... decided a conditional branch.
  SpecSecretOutput,  ///< ... was printed.
};

/// Short lint-tag name, e.g. "spec-secret-address".
const char *taintDiagKindName(TaintDiagKind Kind);

/// One finding: a speculative secret reaching a sink.
struct TaintDiag {
  TaintDiagKind Kind = TaintDiagKind::SpecSecretAddress;
  std::string FunctionName;
  std::string BlockName;
  std::string StmtText;  ///< Offending statement (empty for bare branches).
  unsigned Line = 0;     ///< Source line in the .sir file; 0 if synthesised.
  uint64_t SpecMask = 0; ///< Advanced-load sites the value depended on.
  std::string Message;
};

/// Renders \p D as "file:line: error: message [tag]" plus a context line,
/// in the same shape as analysis::formatSpecDiag.
std::string formatTaintDiag(const TaintDiag &D, std::string_view File = {});

/// Knobs for one analysis run.
struct TaintFlowConfig {
  /// Points-to backing for the μ/χ object sets. When null the analysis
  /// builds its own alias::AndersenAnalysis.
  const alias::AliasAnalysis *AA = nullptr;
  /// Dominator-tree cache to reuse (the pass pipeline's); optional.
  ssa::AnalysisCache *Cache = nullptr;
};

/// The analysis result. Construction runs the module fixpoint; the object
/// then answers shadow queries (the witness builder consumes these) and
/// owns the diagnostics.
class TaintFlow {
public:
  TaintFlow(ir::Module &M, const TaintFlowConfig &Config = {});
  ~TaintFlow();

  /// True if the module declares any secret symbol. When false the whole
  /// analysis is a no-op and diags() is empty.
  bool hasSecrets() const { return AnySecret; }

  /// All findings, in deterministic (function, block, statement) order.
  const std::vector<TaintDiag> &diags() const { return Diags; }

  /// Fixpoint shadow of a temp (the join over every program point, i.e.
  /// the temp's OUT state at its defining statements; monotone, so this
  /// is the weakest claim that holds somewhere).
  interp::Shadow tempShadow(const ir::Function *F, unsigned Temp) const;

  /// Fixpoint memory shadow of a symbol's content.
  interp::Shadow symbolShadow(const ir::Symbol *Sym) const;

  /// Site bit of an advanced-load statement (0 for anything else).
  uint64_t siteBitOf(const ir::Stmt *S) const;

  /// Name of the alias analysis backing the μ/χ object sets.
  const char *aliasName() const;

  /// The alias analysis the solve used (the witness builder reuses it so
  /// alias facts in witnesses match the verdicts).
  const alias::AliasAnalysis &aliasAnalysis() const { return *AA; }

  /// Fixpoint iterations the module solve took (observability).
  unsigned iterations() const { return Iterations; }

  TaintFlow(const TaintFlow &) = delete;
  TaintFlow &operator=(const TaintFlow &) = delete;

private:
  friend class TaintSolver;

  bool AnySecret = false;
  unsigned Iterations = 0;
  std::vector<TaintDiag> Diags;
  /// Memory shadow per symbol id, plus the wild fallback.
  std::vector<interp::Shadow> SymShadow;
  interp::Shadow WildShadow;
  /// Final per-temp shadows per function (join of all OUT states).
  std::map<const ir::Function *, std::vector<interp::Shadow>> TempShadows;
  std::map<const ir::Stmt *, uint64_t> SiteBits;
  const alias::AliasAnalysis *AA = nullptr;
  std::unique_ptr<const alias::AliasAnalysis> OwnedAA;
};

/// True if any diagnostic is present (all taint findings are errors).
inline bool hasTaintErrors(const std::vector<TaintDiag> &Diags) {
  return !Diags.empty();
}

} // namespace srp::analysis

#endif // SRP_ANALYSIS_TAINTFLOW_H
