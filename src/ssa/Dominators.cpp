//===- Dominators.cpp - Dominator tree and frontiers -------------------------===//

#include "ssa/Dominators.h"

#include "support/Error.h"

#include <algorithm>
#include <map>
#include <cassert>

using namespace srp;
using namespace srp::ir;
using namespace srp::ssa;

DominatorTree::DominatorTree(ir::Function &F) : F(F) {
  computeRpo();
  computeIdom();
  computeFrontiers();
}

void DominatorTree::computeRpo() {
  unsigned N = F.numBlocks();
  RpoNumber.assign(N, ~0u);
  std::vector<ir::BasicBlock *> Postorder;
  std::vector<char> Visited(N, 0);
  // Iterative DFS producing postorder.
  std::vector<std::pair<BasicBlock *, size_t>> Stack;
  Stack.push_back({F.entry(), 0});
  Visited[F.entry()->getId()] = 1;
  while (!Stack.empty()) {
    auto &[BB, Next] = Stack.back();
    if (Next < BB->succs().size()) {
      BasicBlock *Succ = BB->succs()[Next++];
      if (!Visited[Succ->getId()]) {
        Visited[Succ->getId()] = 1;
        Stack.push_back({Succ, 0});
      }
      continue;
    }
    Postorder.push_back(BB);
    Stack.pop_back();
  }
  Rpo.assign(Postorder.rbegin(), Postorder.rend());
  for (unsigned I = 0; I < Rpo.size(); ++I)
    RpoNumber[Rpo[I]->getId()] = I;
}

void DominatorTree::computeIdom() {
  unsigned N = F.numBlocks();
  Idom.assign(N, nullptr);
  if (Rpo.empty())
    return;
  // Cooper-Harvey-Kennedy: iterate to fixpoint over RPO.
  std::vector<BasicBlock *> Doms(N, nullptr);
  BasicBlock *Entry = F.entry();
  Doms[Entry->getId()] = Entry;

  auto Intersect = [&](BasicBlock *A, BasicBlock *B) {
    while (A != B) {
      while (RpoNumber[A->getId()] > RpoNumber[B->getId()])
        A = Doms[A->getId()];
      while (RpoNumber[B->getId()] > RpoNumber[A->getId()])
        B = Doms[B->getId()];
    }
    return A;
  };

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (BasicBlock *BB : Rpo) {
      if (BB == Entry)
        continue;
      BasicBlock *NewIdom = nullptr;
      for (BasicBlock *Pred : BB->preds()) {
        if (!isReachable(Pred) || !Doms[Pred->getId()])
          continue;
        NewIdom = NewIdom ? Intersect(NewIdom, Pred) : Pred;
      }
      if (NewIdom && Doms[BB->getId()] != NewIdom) {
        Doms[BB->getId()] = NewIdom;
        Changed = true;
      }
    }
  }

  Children.assign(N, {});
  for (BasicBlock *BB : Rpo) {
    if (BB == Entry)
      continue;
    Idom[BB->getId()] = Doms[BB->getId()];
    Children[Doms[BB->getId()]->getId()].push_back(BB);
  }

  // Preorder stamps for dominates().
  DfsIn.assign(N, 0);
  DfsOut.assign(N, 0);
  unsigned Clock = 0;
  std::vector<std::pair<BasicBlock *, size_t>> Stack;
  Stack.push_back({Entry, 0});
  DfsIn[Entry->getId()] = ++Clock;
  while (!Stack.empty()) {
    auto &[BB, Next] = Stack.back();
    auto &Kids = Children[BB->getId()];
    if (Next < Kids.size()) {
      BasicBlock *Kid = Kids[Next++];
      DfsIn[Kid->getId()] = ++Clock;
      Stack.push_back({Kid, 0});
      continue;
    }
    DfsOut[BB->getId()] = ++Clock;
    Stack.pop_back();
  }
}

bool DominatorTree::dominates(const ir::BasicBlock *A,
                              const ir::BasicBlock *B) const {
  if (!isReachable(A) || !isReachable(B))
    return false;
  return DfsIn[A->getId()] <= DfsIn[B->getId()] &&
         DfsOut[B->getId()] <= DfsOut[A->getId()];
}

void DominatorTree::computeFrontiers() {
  Frontier.assign(F.numBlocks(), {});
  for (BasicBlock *BB : Rpo) {
    if (BB->preds().size() < 2)
      continue;
    for (BasicBlock *Pred : BB->preds()) {
      if (!isReachable(Pred))
        continue;
      BasicBlock *Runner = Pred;
      while (Runner && Runner != Idom[BB->getId()]) {
        auto &DF = Frontier[Runner->getId()];
        if (std::find(DF.begin(), DF.end(), BB) == DF.end())
          DF.push_back(BB);
        Runner = Idom[Runner->getId()];
      }
    }
  }
}

std::vector<ir::BasicBlock *> DominatorTree::iteratedFrontier(
    const std::vector<ir::BasicBlock *> &Defs) const {
  std::vector<char> InResult(F.numBlocks(), 0);
  std::vector<ir::BasicBlock *> Result;
  std::vector<ir::BasicBlock *> Work(Defs.begin(), Defs.end());
  std::vector<char> Queued(F.numBlocks(), 0);
  for (BasicBlock *BB : Work)
    Queued[BB->getId()] = 1;
  while (!Work.empty()) {
    BasicBlock *BB = Work.back();
    Work.pop_back();
    if (!isReachable(BB))
      continue;
    for (BasicBlock *DF : Frontier[BB->getId()]) {
      if (InResult[DF->getId()])
        continue;
      InResult[DF->getId()] = 1;
      Result.push_back(DF);
      if (!Queued[DF->getId()]) {
        Queued[DF->getId()] = 1;
        Work.push_back(DF);
      }
    }
  }
  return Result;
}

//===----------------------------------------------------------------------===//
// LoopInfo
//===----------------------------------------------------------------------===//

bool LoopInfo::Loop::contains(const ir::BasicBlock *BB) const {
  return std::find(Blocks.begin(), Blocks.end(), BB) != Blocks.end();
}

LoopInfo::LoopInfo(const DominatorTree &DT) {
  ir::Function &F = DT.function();
  BlockLoop.assign(F.numBlocks(), nullptr);

  // Find back edges; group by header.
  std::map<BasicBlock *, std::vector<BasicBlock *>> HeaderLatches;
  for (BasicBlock *BB : DT.rpo())
    for (BasicBlock *Succ : BB->succs())
      if (DT.dominates(Succ, BB))
        HeaderLatches[Succ].push_back(BB);

  for (auto &[Header, Latches] : HeaderLatches) {
    auto L = std::make_unique<Loop>();
    L->Header = Header;
    L->Latches = Latches;
    // Reverse reachability from latches, stopping at the header.
    std::vector<char> InLoop(F.numBlocks(), 0);
    InLoop[Header->getId()] = 1;
    L->Blocks.push_back(Header);
    std::vector<BasicBlock *> Work(Latches.begin(), Latches.end());
    while (!Work.empty()) {
      BasicBlock *BB = Work.back();
      Work.pop_back();
      if (InLoop[BB->getId()])
        continue;
      InLoop[BB->getId()] = 1;
      L->Blocks.push_back(BB);
      for (BasicBlock *Pred : BB->preds())
        if (DT.isReachable(Pred))
          Work.push_back(Pred);
    }
    Loops.push_back(std::move(L));
  }

  // Nesting: smaller loops nested in larger ones containing their header.
  std::sort(Loops.begin(), Loops.end(),
            [](const auto &A, const auto &B) {
              return A->Blocks.size() < B->Blocks.size();
            });
  for (size_t I = 0; I < Loops.size(); ++I) {
    for (size_t J = I + 1; J < Loops.size(); ++J) {
      if (Loops[J].get() != Loops[I].get() &&
          Loops[J]->contains(Loops[I]->Header) &&
          Loops[J]->Blocks.size() > Loops[I]->Blocks.size()) {
        Loops[I]->Parent = Loops[J].get();
        break;
      }
    }
  }
  for (auto &L : Loops) {
    unsigned Depth = 1;
    for (Loop *P = L->Parent; P; P = P->Parent)
      ++Depth;
    L->Depth = Depth;
  }
  // Innermost mapping: loops are size-sorted, so first hit wins.
  for (auto &L : Loops)
    for (BasicBlock *BB : L->Blocks)
      if (!BlockLoop[BB->getId()])
        BlockLoop[BB->getId()] = L.get();
}

ir::BasicBlock *LoopInfo::preheader(const Loop &L) const {
  ir::BasicBlock *Candidate = nullptr;
  for (BasicBlock *Pred : L.Header->preds()) {
    if (L.contains(Pred))
      continue;
    if (Candidate)
      return nullptr; // multiple outside predecessors
    Candidate = Pred;
  }
  // The preheader must branch only into the header.
  if (Candidate && Candidate->succs().size() == 1)
    return Candidate;
  return nullptr;
}
