//===- Dominators.h - Dominator tree and frontiers --------------*- C++ -*-===//
//
// Part of the srp-alat project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dominator tree (Cooper-Harvey-Kennedy iterative algorithm), dominance
/// frontiers, and a preorder over the dominator tree — the substrate the
/// φ-insertion and both renaming passes (HSSA and SSAPRE) walk.
///
//===----------------------------------------------------------------------===//

#ifndef SRP_SSA_DOMINATORS_H
#define SRP_SSA_DOMINATORS_H

#include "ir/CFG.h"

#include <memory>
#include <vector>

namespace srp::ssa {

/// Dominator information for one function. Requires Function::recomputeCFG
/// to have run. Blocks unreachable from the entry have no dominator data
/// and are reported by isReachable().
class DominatorTree {
public:
  explicit DominatorTree(ir::Function &F);

  ir::Function &function() const { return F; }

  bool isReachable(const ir::BasicBlock *BB) const {
    return RpoNumber[BB->getId()] != ~0u;
  }

  /// Immediate dominator; null for the entry and unreachable blocks.
  ir::BasicBlock *idom(const ir::BasicBlock *BB) const {
    return Idom[BB->getId()];
  }

  /// True if \p A dominates \p B (reflexive).
  bool dominates(const ir::BasicBlock *A, const ir::BasicBlock *B) const;

  /// Dominance frontier of \p BB.
  const std::vector<ir::BasicBlock *> &
  frontier(const ir::BasicBlock *BB) const {
    return Frontier[BB->getId()];
  }

  /// Children in the dominator tree.
  const std::vector<ir::BasicBlock *> &
  children(const ir::BasicBlock *BB) const {
    return Children[BB->getId()];
  }

  /// Reachable blocks in reverse postorder (entry first).
  const std::vector<ir::BasicBlock *> &rpo() const { return Rpo; }

  /// Iterated dominance frontier of a set of blocks (the φ placement set).
  std::vector<ir::BasicBlock *>
  iteratedFrontier(const std::vector<ir::BasicBlock *> &Defs) const;

private:
  void computeRpo();
  void computeIdom();
  void computeFrontiers();

  ir::Function &F;
  std::vector<ir::BasicBlock *> Rpo;
  std::vector<unsigned> RpoNumber;             ///< by block id; ~0u if dead
  std::vector<ir::BasicBlock *> Idom;          ///< by block id
  std::vector<std::vector<ir::BasicBlock *>> Frontier;  ///< by block id
  std::vector<std::vector<ir::BasicBlock *>> Children;  ///< by block id
  /// Preorder in/out stamps for O(1) dominance queries.
  std::vector<unsigned> DfsIn, DfsOut;
};

/// Natural-loop information derived from the dominator tree.
///
/// A back edge T->H with H dominating T defines a loop with header H; the
/// loop body is found by the usual reverse reachability walk. Loops sharing
/// a header are merged.
class LoopInfo {
public:
  struct Loop {
    ir::BasicBlock *Header = nullptr;
    std::vector<ir::BasicBlock *> Blocks;    ///< includes the header
    std::vector<ir::BasicBlock *> Latches;   ///< sources of back edges
    Loop *Parent = nullptr;
    unsigned Depth = 1;

    bool contains(const ir::BasicBlock *BB) const;
  };

  explicit LoopInfo(const DominatorTree &DT);

  /// Innermost loop containing \p BB, or null.
  const Loop *loopFor(const ir::BasicBlock *BB) const {
    return BlockLoop[BB->getId()];
  }

  const std::vector<std::unique_ptr<Loop>> &loops() const { return Loops; }

  /// The unique block that branches into the header from outside the loop,
  /// or null if the header has multiple or fall-through-only outside
  /// predecessors (no preheader).
  ir::BasicBlock *preheader(const Loop &L) const;

private:
  std::vector<std::unique_ptr<Loop>> Loops;
  std::vector<Loop *> BlockLoop; ///< innermost loop by block id
};

} // namespace srp::ssa

#endif // SRP_SSA_DOMINATORS_H
