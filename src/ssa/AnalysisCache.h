//===- AnalysisCache.h - Cached per-function analyses -----------*- C++ -*-===//
//
// Part of the srp-alat project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A per-pipeline cache of the function analyses every pass used to
/// recompute ad hoc: the dominator tree and the loop nest. The pass
/// manager owns one cache per pipeline; analyses are computed on first
/// request and reused until a mutating pass invalidates the function
/// (passes that change the CFG or statement list must call invalidate).
/// The cache is deliberately per-pipeline, never global: the parallel
/// experiment driver runs one pipeline per worker thread, and a shared
/// cache would either race or serialize them.
///
//===----------------------------------------------------------------------===//

#ifndef SRP_SSA_ANALYSISCACHE_H
#define SRP_SSA_ANALYSISCACHE_H

#include "ssa/Dominators.h"

#include <cstdint>
#include <map>
#include <memory>

namespace srp::ssa {

/// Caches DominatorTree and LoopInfo per function. Not thread-safe by
/// design (see file comment); each pipeline owns its own instance.
///
/// Invalidation protocol (DESIGN.md §7): passes that mutate a function
/// call invalidate(F) for exactly the functions they changed — there is
/// no whole-pipeline flush on the mutating-pass boundary any more, so a
/// promoter that rewrites one function leaves every sibling's dominator
/// tree and loop nest cached for the verifier and lint passes behind it.
/// Each function carries a monotonic generation number, bumped by every
/// invalidation; analyses handed out are valid for exactly the
/// generation they were computed in, which gives consumers a cheap
/// staleness token instead of re-requesting defensively.
class AnalysisCache {
public:
  /// Dominator tree of \p F, computed on first request. The reference is
  /// stable until invalidate(F) or clear().
  DominatorTree &dominators(ir::Function &F);

  /// Loop nest of \p F (computes the dominator tree if needed).
  LoopInfo &loops(ir::Function &F);

  /// Drops cached analyses of \p F and bumps its generation. Mutating
  /// passes must call this for every function they transform.
  void invalidate(ir::Function &F);

  /// Invalidates every cached function (counts each one). For callers
  /// that rewrite the whole module and cannot name the changed set.
  void invalidateAll();

  /// Drops everything silently (teardown/reuse; no invalidation counts).
  void clear();

  /// Generation of \p F: 0 until first invalidated, +1 per invalidation.
  uint64_t generation(const ir::Function &F) const;

  /// Cache effectiveness counters (observability, tested).
  struct CacheStats {
    uint64_t Hits = 0;
    uint64_t Misses = 0;
    uint64_t Invalidations = 0;
  };
  const CacheStats &stats() const { return Stats; }

  /// Invalidation counts per function name (aggregated; names outlive
  /// the ir::Function objects, so this is safe to read after teardown).
  const std::map<std::string, uint64_t> &invalidationsByFunction() const {
    return InvalByName;
  }

  /// Adds the counters accumulated since the last call into the
  /// process-wide StatsRegistry: `analysis.cache.{hits,misses,
  /// invalidations}` plus `analysis.cache.invalidations.<function>`.
  /// Called by the pass manager at end of pipeline; delta-based, so
  /// repeated calls never double-count.
  void publishStats();

private:
  struct Entry {
    std::unique_ptr<DominatorTree> DT;
    std::unique_ptr<LoopInfo> LI;
  };
  std::map<const ir::Function *, Entry> Entries;
  std::map<const ir::Function *, uint64_t> Gens;
  std::map<std::string, uint64_t> InvalByName;
  CacheStats Stats;
  CacheStats Published;                       ///< publishStats() watermark
  std::map<std::string, uint64_t> InvalPublished;
};

} // namespace srp::ssa

#endif // SRP_SSA_ANALYSISCACHE_H
