//===- AnalysisCache.h - Cached per-function analyses -----------*- C++ -*-===//
//
// Part of the srp-alat project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A per-pipeline cache of the function analyses every pass used to
/// recompute ad hoc: the dominator tree and the loop nest. The pass
/// manager owns one cache per pipeline; analyses are computed on first
/// request and reused until a mutating pass invalidates the function
/// (passes that change the CFG or statement list must call invalidate).
/// The cache is deliberately per-pipeline, never global: the parallel
/// experiment driver runs one pipeline per worker thread, and a shared
/// cache would either race or serialize them.
///
//===----------------------------------------------------------------------===//

#ifndef SRP_SSA_ANALYSISCACHE_H
#define SRP_SSA_ANALYSISCACHE_H

#include "ssa/Dominators.h"

#include <cstdint>
#include <map>
#include <memory>

namespace srp::ssa {

/// Caches DominatorTree and LoopInfo per function. Not thread-safe by
/// design (see file comment); each pipeline owns its own instance.
class AnalysisCache {
public:
  /// Dominator tree of \p F, computed on first request. The reference is
  /// stable until invalidate(F) or clear().
  DominatorTree &dominators(ir::Function &F);

  /// Loop nest of \p F (computes the dominator tree if needed).
  LoopInfo &loops(ir::Function &F);

  /// Drops cached analyses of \p F. Mutating passes must call this after
  /// transforming the function (CFG recompute included).
  void invalidate(ir::Function &F);

  /// Drops everything.
  void clear();

  /// Cache effectiveness counters (observability, tested).
  struct CacheStats {
    uint64_t Hits = 0;
    uint64_t Misses = 0;
    uint64_t Invalidations = 0;
  };
  const CacheStats &stats() const { return Stats; }

private:
  struct Entry {
    std::unique_ptr<DominatorTree> DT;
    std::unique_ptr<LoopInfo> LI;
  };
  std::map<const ir::Function *, Entry> Entries;
  CacheStats Stats;
};

} // namespace srp::ssa

#endif // SRP_SSA_ANALYSISCACHE_H
