//===- HSSA.cpp - Alias-aware SSA with chi/mu and speculation ---------------===//

#include "ssa/HSSA.h"

#include "support/Error.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cassert>
#include <set>

using namespace srp;
using namespace srp::ir;
using namespace srp::ssa;

std::string SSAObject::name() const {
  if (K == Kind::Symbol)
    return Sym->Name;
  std::string Out = "v(";
  for (unsigned I = 0; I < Ref.Depth; ++I)
    Out += '*';
  Out += Ref.Base->Name;
  if (Ref.hasIndex())
    Out += Ref.Index.isTemp() ? formatString("[t%u]", Ref.Index.TempId)
                              : formatString("[%lld]", static_cast<long long>(
                                                           Ref.Index.IntVal));
  if (Ref.Offset)
    Out += formatString("{%+lld}", static_cast<long long>(Ref.Offset));
  Out += ')';
  return Out;
}

bool HSSA::VKey::operator<(const VKey &O) const {
  return std::tie(BaseId, Depth, IndexKind, IndexVal, Offset) <
         std::tie(O.BaseId, O.Depth, O.IndexKind, O.IndexVal, O.Offset);
}

HSSA::VKey HSSA::vkeyFor(const ir::MemRef &Ref, unsigned Level) {
  assert(Level >= 1 && Level <= Ref.Depth && "level out of range");
  VKey Key;
  Key.BaseId = Ref.Base->Id;
  Key.Depth = Level;
  // Index and offset only apply at the final level of the chain.
  if (Level == Ref.Depth) {
    Key.Offset = Ref.Offset;
    switch (Ref.Index.K) {
    case Operand::Kind::None:
      Key.IndexKind = 0;
      Key.IndexVal = 0;
      break;
    case Operand::Kind::Temp:
      Key.IndexKind = 1;
      Key.IndexVal = Ref.Index.TempId;
      break;
    case Operand::Kind::ConstInt:
      Key.IndexKind = 2;
      Key.IndexVal = static_cast<uint64_t>(Ref.Index.IntVal);
      break;
    case Operand::Kind::ConstFloat:
      SRP_UNREACHABLE("float index");
    }
  } else {
    Key.IndexKind = 0;
    Key.IndexVal = 0;
    Key.Offset = 0;
  }
  return Key;
}

/// Canonical lexical ref of the level-\p Level prefix of \p Ref.
static MemRef levelRef(const MemRef &Ref, unsigned Level) {
  MemRef Out = Ref;
  Out.Depth = Level;
  if (Level != Ref.Depth) {
    Out.Index = Operand();
    Out.Offset = 0;
    Out.ValueType = TypeKind::Int; // Interior levels hold addresses.
  }
  return Out;
}

namespace srp::ssa {

/// Builds the HSSA annotations (object discovery, χ/μ planning, φ
/// insertion and renaming).
class HSSABuilder {
public:
  HSSABuilder(HSSA &H, const DominatorTree &DT,
              const alias::AliasAnalysis &AA,
              const interp::AliasProfile *Profile)
      : H(H), F(H.F), DT(DT), AA(AA), Profile(Profile) {}

  void run() {
    discoverObjects();
    planChisAndMus();
    insertPhis();
    rename();
    computeCanonical();
  }

private:
  struct ChiPlan {
    ObjectId Obj;
    bool Spec;
  };

  ObjectId symbolObject(const Symbol *Sym) {
    auto It = H.SymbolObjects.find(Sym);
    if (It != H.SymbolObjects.end())
      return It->second;
    ObjectId Id = static_cast<ObjectId>(H.Objects.size());
    SSAObject Obj;
    Obj.K = SSAObject::Kind::Symbol;
    Obj.Sym = Sym;
    H.Objects.push_back(Obj);
    H.SymbolObjects[Sym] = Id;
    return Id;
  }

  ObjectId vvarObject(const MemRef &Ref, unsigned Level) {
    HSSA::VKey Key = HSSA::vkeyFor(Ref, Level);
    auto It = H.VirtualObjects.find(Key);
    if (It != H.VirtualObjects.end())
      return It->second;
    ObjectId Id = static_cast<ObjectId>(H.Objects.size());
    SSAObject Obj;
    Obj.K = SSAObject::Kind::Virtual;
    Obj.Sym = Ref.Base;
    Obj.Ref = levelRef(Ref, Level);
    H.Objects.push_back(Obj);
    H.VirtualObjects[Key] = Id;
    return Id;
  }

  /// Level objects of \p Ref, base symbol first.
  std::vector<ObjectId> levelObjects(const MemRef &Ref) {
    std::vector<ObjectId> Objs;
    Objs.push_back(symbolObject(Ref.Base));
    for (unsigned L = 1; L <= Ref.Depth; ++L)
      Objs.push_back(vvarObject(Ref, L));
    return Objs;
  }

  void discoverObjects() {
    for (unsigned BI = 0, BE = F.numBlocks(); BI != BE; ++BI) {
      BasicBlock *BB = F.block(BI);
      for (size_t SI = 0, SE = BB->size(); SI != SE; ++SI) {
        Stmt *S = BB->stmt(SI);
        if (!S->accessesMemory())
          continue;
        std::vector<ObjectId> Objs = levelObjects(S->Ref);
        AccessLevels[S] = Objs;
        // Pointee symbols of every level become objects too, and the
        // observed targets feed the per-vvar profiled-target sets.
        for (unsigned L = 1; L <= S->Ref.Depth; ++L) {
          for (const Symbol *Pointee :
               AA.mayPointees(levelRef(S->Ref, L), &F))
            symbolObject(Pointee);
          if (Profile)
            if (const std::set<unsigned> *T =
                    Profile->targets(&F, S->Id, L))
              ProfiledTargets[Objs[L]].insert(T->begin(), T->end());
        }
      }
    }
  }

  /// True if the profile proves the vvar \p Obj never touched \p Sym.
  bool vvarAvoidsSymbol(ObjectId Obj, const Symbol *Sym) const {
    if (!Profile)
      return false;
    auto It = ProfiledTargets.find(Obj);
    if (It == ProfiledTargets.end())
      return true; // Never executed: everything is speculative.
    return !It->second.count(Sym->Id) &&
           !It->second.count(interp::AliasProfile::UnknownTarget);
  }

  /// True if the profile proves the store site \p S (final level targets)
  /// and the vvar \p Obj are disjoint.
  bool storeAvoidsVVar(const Stmt *S, ObjectId Obj) const {
    if (!Profile)
      return false;
    const std::set<unsigned> *Stored =
        Profile->targets(&F, S->Id, S->Ref.Depth);
    if (!Stored)
      return true; // Store never executed.
    if (Stored->count(interp::AliasProfile::UnknownTarget))
      return false;
    auto It = ProfiledTargets.find(Obj);
    if (It == ProfiledTargets.end())
      return true;
    const std::set<unsigned> &Used = It->second;
    if (Used.count(interp::AliasProfile::UnknownTarget))
      return false;
    for (unsigned Sym : *Stored)
      if (Used.count(Sym))
        return false;
    return true;
  }

  void planChisAndMus() {
    // Interesting symbols for call clobbering: everything in the table.
    for (unsigned BI = 0, BE = F.numBlocks(); BI != BE; ++BI) {
      BasicBlock *BB = F.block(BI);
      for (size_t SI = 0, SE = BB->size(); SI != SE; ++SI) {
        Stmt *S = BB->stmt(SI);
        switch (S->Kind) {
        case StmtKind::Load:
          planLoad(S);
          break;
        case StmtKind::Store:
          planStore(S);
          break;
        case StmtKind::Call:
          planCall(S);
          break;
        default:
          break;
        }
      }
    }
  }

  void planLoad(Stmt *S) {
    // Interior levels and the final level each may-use their pointees.
    auto &Mus = H.StmtMus[S];
    for (unsigned L = 1; L <= S->Ref.Depth; ++L) {
      MemRef LRef = levelRef(S->Ref, L);
      for (const Symbol *Pointee : AA.mayPointees(LRef, &F)) {
        MuRecord Mu;
        Mu.Obj = symbolObject(Pointee);
        Mu.Spec = Profile && !Profile->observed(&F, S->Id, L, Pointee);
        Mu.S = S;
        Mus.push_back(Mu);
      }
    }
  }

  void planStore(Stmt *S) {
    auto &Plans = ChiPlans[S];
    const std::vector<ObjectId> &Levels = AccessLevels[S];
    ObjectId DataObj = Levels.back();
    if (S->Ref.isDirect()) {
      // Writes exactly the base symbol; χ every vvar that may overlap it.
      for (auto &[Key, VObj] : H.VirtualObjects) {
        const SSAObject &V = H.Objects[VObj];
        if (!AA.mayAlias(S->Ref, &F, V.Ref, &F))
          continue;
        Plans.push_back({VObj, vvarAvoidsSymbol(VObj, S->Ref.Base)});
      }
      // Interior reads: none for direct stores.
      return;
    }
    // Indirect store: real def of its own vvar (not a χ); χ on every
    // may-pointee symbol and on every other overlapping vvar. Interior
    // levels are reads and get μs like loads.
    auto &Mus = H.StmtMus[S];
    for (unsigned L = 1; L < S->Ref.Depth; ++L) {
      MemRef LRef = levelRef(S->Ref, L);
      for (const Symbol *Pointee : AA.mayPointees(LRef, &F)) {
        MuRecord Mu;
        Mu.Obj = symbolObject(Pointee);
        Mu.Spec = Profile && !Profile->observed(&F, S->Id, L, Pointee);
        Mu.S = S;
        Mus.push_back(Mu);
      }
    }
    for (const Symbol *Pointee : AA.mayPointees(S->Ref, &F)) {
      bool Spec =
          Profile && !Profile->observed(&F, S->Id, S->Ref.Depth, Pointee);
      Plans.push_back({symbolObject(Pointee), Spec});
    }
    for (auto &[Key, VObj] : H.VirtualObjects) {
      if (VObj == DataObj)
        continue;
      const SSAObject &V = H.Objects[VObj];
      if (!AA.mayAlias(S->Ref, &F, V.Ref, &F))
        continue;
      Plans.push_back({VObj, storeAvoidsVVar(S, VObj)});
    }
  }

  void planCall(Stmt *S) {
    auto &Plans = ChiPlans[S];
    // χ (never speculative) on every call-clobbered symbol object and
    // every vvar that may reach one.
    for (unsigned Obj = 0, E = static_cast<unsigned>(H.Objects.size());
         Obj != E; ++Obj) {
      const SSAObject &O = H.Objects[Obj];
      if (O.K == SSAObject::Kind::Symbol) {
        if (AA.isCallClobbered(O.Sym))
          Plans.push_back({Obj, false});
        continue;
      }
      for (const Symbol *Pointee : AA.mayPointees(O.Ref, &F)) {
        if (AA.isCallClobbered(Pointee)) {
          Plans.push_back({Obj, false});
          break;
        }
      }
    }
  }

  void insertPhis() {
    unsigned NumObjs = static_cast<unsigned>(H.Objects.size());
    std::vector<std::vector<BasicBlock *>> DefBlocks(NumObjs);
    auto NoteDef = [&](ObjectId Obj, BasicBlock *BB) {
      auto &V = DefBlocks[Obj];
      if (V.empty() || V.back() != BB)
        V.push_back(BB);
    };
    for (unsigned BI = 0, BE = F.numBlocks(); BI != BE; ++BI) {
      BasicBlock *BB = F.block(BI);
      for (size_t SI = 0, SE = BB->size(); SI != SE; ++SI) {
        Stmt *S = BB->stmt(SI);
        if (S->isStore())
          NoteDef(AccessLevels[S].back(), BB);
        auto It = ChiPlans.find(S);
        if (It != ChiPlans.end())
          for (const ChiPlan &Plan : It->second)
            NoteDef(Plan.Obj, BB);
      }
    }
    for (ObjectId Obj = 0; Obj != NumObjs; ++Obj) {
      if (DefBlocks[Obj].empty())
        continue;
      for (BasicBlock *BB : DT.iteratedFrontier(DefBlocks[Obj])) {
        PhiRecord Phi;
        Phi.Obj = Obj;
        Phi.BB = BB;
        Phi.Args.assign(BB->preds().size(), 0);
        H.BlockPhis[BB].push_back(Phi);
      }
    }
  }

  unsigned newVersion(ObjectId Obj, VersionOrigin Origin) {
    auto &Vers = H.Origins[Obj];
    Vers.push_back(Origin);
    return static_cast<unsigned>(Vers.size()) - 1;
  }

  void rename() {
    unsigned NumObjs = static_cast<unsigned>(H.Objects.size());
    H.Origins.assign(NumObjs, {});
    H.EntryVer.assign(F.numBlocks(), std::vector<unsigned>(NumObjs, 0));
    H.ExitVer.assign(F.numBlocks(), std::vector<unsigned>(NumObjs, 0));
    Stacks.assign(NumObjs, {});
    for (ObjectId Obj = 0; Obj != NumObjs; ++Obj) {
      VersionOrigin LiveIn;
      LiveIn.K = VersionOrigin::Kind::LiveIn;
      LiveIn.BB = F.entry();
      newVersion(Obj, LiveIn);
      Stacks[Obj].push_back(0);
    }
    renameBlock(F.entry());
  }

  void renameBlock(BasicBlock *BB) {
    std::vector<ObjectId> Pushed;

    auto Push = [&](ObjectId Obj, unsigned Ver) {
      Stacks[Obj].push_back(Ver);
      Pushed.push_back(Obj);
    };
    auto Top = [&](ObjectId Obj) { return Stacks[Obj].back(); };

    // φ definitions first.
    auto PhiIt = H.BlockPhis.find(BB);
    if (PhiIt != H.BlockPhis.end()) {
      for (unsigned PI = 0; PI < PhiIt->second.size(); ++PI) {
        PhiRecord &Phi = PhiIt->second[PI];
        VersionOrigin O;
        O.K = VersionOrigin::Kind::Phi;
        O.BB = BB;
        O.PhiIndex = PI;
        Phi.DefVer = newVersion(Phi.Obj, O);
        Push(Phi.Obj, Phi.DefVer);
      }
    }
    for (ObjectId Obj = 0; Obj < Stacks.size(); ++Obj)
      H.EntryVer[BB->getId()][Obj] = Top(Obj);

    for (size_t SI = 0, SE = BB->size(); SI != SE; ++SI) {
      Stmt *S = BB->stmt(SI);
      // Record access-path versions for loads and stores.
      if (S->accessesMemory()) {
        StmtAccess Acc;
        Acc.LevelObjs = AccessLevels[S];
        for (ObjectId Obj : Acc.LevelObjs)
          Acc.LevelVers.push_back(Top(Obj));
        if (S->isStore()) {
          VersionOrigin O;
          O.K = VersionOrigin::Kind::RealDef;
          O.DefStmt = S;
          O.BB = BB;
          ObjectId DataObj = Acc.LevelObjs.back();
          Acc.DefVer = newVersion(DataObj, O);
          Push(DataObj, Acc.DefVer);
        }
        H.StmtAccesses[S] = std::move(Acc);
      }
      // μ versions.
      auto MuIt = H.StmtMus.find(S);
      if (MuIt != H.StmtMus.end())
        for (MuRecord &Mu : MuIt->second)
          Mu.Ver = Top(Mu.Obj);
      // χ defs.
      auto ChiIt = ChiPlans.find(S);
      if (ChiIt != ChiPlans.end()) {
        for (const ChiPlan &Plan : ChiIt->second) {
          ChiRecord Chi;
          Chi.Obj = Plan.Obj;
          Chi.Spec = Plan.Spec;
          Chi.S = S;
          Chi.BB = BB;
          Chi.UseVer = Top(Plan.Obj);
          VersionOrigin O;
          O.K = VersionOrigin::Kind::Chi;
          O.DefStmt = S;
          O.BB = BB;
          O.ChiIndex = static_cast<unsigned>(H.Chis.size());
          Chi.DefVer = newVersion(Plan.Obj, O);
          Push(Plan.Obj, Chi.DefVer);
          H.StmtChis[S].push_back(static_cast<unsigned>(H.Chis.size()));
          H.Chis.push_back(Chi);
        }
      }
    }
    for (ObjectId Obj = 0; Obj < Stacks.size(); ++Obj)
      H.ExitVer[BB->getId()][Obj] = Top(Obj);

    // Fill successor φ arguments.
    for (BasicBlock *Succ : BB->succs()) {
      auto SuccPhiIt = H.BlockPhis.find(Succ);
      if (SuccPhiIt == H.BlockPhis.end())
        continue;
      const auto &Preds = Succ->preds();
      for (size_t PI = 0; PI < Preds.size(); ++PI) {
        if (Preds[PI] != BB)
          continue;
        for (PhiRecord &Phi : SuccPhiIt->second)
          Phi.Args[PI] = Top(Phi.Obj);
      }
    }

    for (BasicBlock *Kid : DT.children(BB))
      renameBlock(Kid);

    for (auto It = Pushed.rbegin(); It != Pushed.rend(); ++It)
      Stacks[*It].pop_back();
  }

  void computeCanonical() {
    H.Canonical = H.canonicalMap(
        [](const ChiRecord &Chi) { return Chi.Spec; });
  }

  HSSA &H;
  ir::Function &F;
  const DominatorTree &DT;
  const alias::AliasAnalysis &AA;
  const interp::AliasProfile *Profile;

  std::map<const Stmt *, std::vector<ObjectId>> AccessLevels;
  std::map<const Stmt *, std::vector<ChiPlan>> ChiPlans;
  std::map<ObjectId, std::set<unsigned>> ProfiledTargets;
  std::vector<std::vector<unsigned>> Stacks;
};

} // namespace srp::ssa

HSSA::HSSA(ir::Function &F, const DominatorTree &DT,
           const alias::AliasAnalysis &AA,
           const interp::AliasProfile *Profile)
    : F(F) {
  HSSABuilder(*this, DT, AA, Profile).run();
}

ObjectId HSSA::symbolObject(const ir::Symbol *Sym) const {
  auto It = SymbolObjects.find(Sym);
  return It == SymbolObjects.end() ? InvalidObject : It->second;
}

ObjectId HSSA::vvarObject(const ir::MemRef &Ref) const {
  if (Ref.isDirect())
    return symbolObject(Ref.Base);
  auto It = VirtualObjects.find(vkeyFor(Ref, Ref.Depth));
  return It == VirtualObjects.end() ? InvalidObject : It->second;
}

std::vector<ObjectId> HSSA::refObjects(const ir::MemRef &Ref) const {
  std::vector<ObjectId> Objs;
  Objs.push_back(symbolObject(Ref.Base));
  for (unsigned L = 1; L <= Ref.Depth; ++L) {
    auto It = VirtualObjects.find(vkeyFor(Ref, L));
    Objs.push_back(It == VirtualObjects.end() ? InvalidObject : It->second);
  }
  return Objs;
}

const StmtAccess *HSSA::accessInfo(const ir::Stmt *S) const {
  auto It = StmtAccesses.find(S);
  return It == StmtAccesses.end() ? nullptr : &It->second;
}

const std::vector<unsigned> &HSSA::chiIndicesOf(const ir::Stmt *S) const {
  static const std::vector<unsigned> Empty;
  auto It = StmtChis.find(S);
  return It == StmtChis.end() ? Empty : It->second;
}

const std::vector<MuRecord> &HSSA::musOf(const ir::Stmt *S) const {
  static const std::vector<MuRecord> Empty;
  auto It = StmtMus.find(S);
  return It == StmtMus.end() ? Empty : It->second;
}

const std::vector<PhiRecord> &HSSA::phisOf(const ir::BasicBlock *BB) const {
  static const std::vector<PhiRecord> Empty;
  auto It = BlockPhis.find(BB);
  return It == BlockPhis.end() ? Empty : It->second;
}

// Optimistic fixpoint over a two-level lattice (Unknown above everything,
// then concrete/self): collapsible χ defs take the canonical version they
// shadow; φs take the single canonical version of their arguments (cycles
// through still-Unknown arguments are ignored optimistically, which is what
// lets loop-carried φs collapse, Figure 3) or pin to themselves on a real
// merge.
std::vector<std::vector<unsigned>> HSSA::canonicalMap(
    const std::function<bool(const ChiRecord &)> &Collapsible) const {
  constexpr unsigned Unknown = ~0u;
  unsigned NumObjs = static_cast<unsigned>(Objects.size());
  std::vector<std::vector<unsigned>> Canonical(NumObjs);
  for (ObjectId Obj = 0; Obj != NumObjs; ++Obj) {
    auto &Canon = Canonical[Obj];
    Canon.assign(Origins[Obj].size(), Unknown);
    for (unsigned Ver = 0; Ver < Canon.size(); ++Ver) {
      const VersionOrigin &O = Origins[Obj][Ver];
      bool SelfCanonical =
          O.K == VersionOrigin::Kind::LiveIn ||
          O.K == VersionOrigin::Kind::RealDef ||
          (O.K == VersionOrigin::Kind::Chi &&
           !Collapsible(Chis[O.ChiIndex]));
      if (SelfCanonical)
        Canon[Ver] = Ver;
    }
  }
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (ObjectId Obj = 0; Obj != NumObjs; ++Obj) {
      auto &Canon = Canonical[Obj];
      for (unsigned Ver = 0; Ver < Canon.size(); ++Ver) {
        if (Canon[Ver] == Ver)
          continue; // Already pinned to self.
        const VersionOrigin &O = Origins[Obj][Ver];
        unsigned NewVal = Canon[Ver];
        if (O.K == VersionOrigin::Kind::Chi) {
          NewVal = Canon[Chis[O.ChiIndex].UseVer];
        } else if (O.K == VersionOrigin::Kind::Phi) {
          const PhiRecord &Phi = BlockPhis.at(O.BB)[O.PhiIndex];
          NewVal = Unknown;
          for (unsigned Arg : Phi.Args) {
            unsigned ArgCanon = Canon[Arg];
            if (ArgCanon == Unknown)
              continue; // Optimistically ignore cycles.
            if (NewVal == Unknown)
              NewVal = ArgCanon;
            else if (NewVal != ArgCanon)
              NewVal = Ver; // Real merge: canonical is itself.
          }
        }
        if (NewVal != Canon[Ver] && NewVal != Unknown) {
          Canon[Ver] = NewVal;
          Changed = true;
        }
      }
    }
  }
  // Anything still unknown is an unresolvable self-cycle; pin to self.
  for (ObjectId Obj = 0; Obj != NumObjs; ++Obj)
    for (unsigned Ver = 0; Ver < Canonical[Obj].size(); ++Ver)
      if (Canonical[Obj][Ver] == Unknown)
        Canonical[Obj][Ver] = Ver;
  return Canonical;
}

std::vector<const ChiRecord *>
HSSA::speculatedChis(ObjectId Obj, unsigned CanonicalVer) const {
  std::vector<const ChiRecord *> Result;
  for (const ChiRecord &Chi : Chis)
    if (Chi.Obj == Obj && Chi.Spec &&
        Canonical[Obj][Chi.DefVer] == CanonicalVer)
      Result.push_back(&Chi);
  return Result;
}
