//===- AnalysisCache.cpp - Cached per-function analyses -----------------------===//

#include "ssa/AnalysisCache.h"

#include "support/Stats.h"

using namespace srp;
using namespace srp::ssa;

DominatorTree &AnalysisCache::dominators(ir::Function &F) {
  Entry &E = Entries[&F];
  if (!E.DT) {
    ++Stats.Misses;
    E.DT = std::make_unique<DominatorTree>(F);
  } else {
    ++Stats.Hits;
  }
  return *E.DT;
}

LoopInfo &AnalysisCache::loops(ir::Function &F) {
  DominatorTree &DT = dominators(F);
  Entry &E = Entries[&F];
  if (!E.LI) {
    ++Stats.Misses;
    E.LI = std::make_unique<LoopInfo>(DT);
  } else {
    ++Stats.Hits;
  }
  return *E.LI;
}

void AnalysisCache::invalidate(ir::Function &F) {
  ++Gens[&F];
  auto It = Entries.find(&F);
  if (It == Entries.end())
    return;
  ++Stats.Invalidations;
  ++InvalByName[F.getName()];
  Entries.erase(It);
}

void AnalysisCache::invalidateAll() {
  for (auto &[F, E] : Entries) {
    ++Gens[F];
    ++Stats.Invalidations;
    ++InvalByName[F->getName()];
  }
  Entries.clear();
}

void AnalysisCache::clear() {
  Entries.clear();
  Gens.clear();
}

uint64_t AnalysisCache::generation(const ir::Function &F) const {
  auto It = Gens.find(&F);
  return It == Gens.end() ? 0 : It->second;
}

void AnalysisCache::publishStats() {
  StatsRegistry &SR = StatsRegistry::current();
  SR.add("analysis.cache.hits", Stats.Hits - Published.Hits);
  SR.add("analysis.cache.misses", Stats.Misses - Published.Misses);
  SR.add("analysis.cache.invalidations",
         Stats.Invalidations - Published.Invalidations);
  Published = Stats;
  for (const auto &[Name, N] : InvalByName) {
    uint64_t &Done = InvalPublished[Name];
    if (N > Done)
      SR.add("analysis.cache.invalidations." + Name, N - Done);
    Done = N;
  }
}
