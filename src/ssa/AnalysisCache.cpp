//===- AnalysisCache.cpp - Cached per-function analyses -----------------------===//

#include "ssa/AnalysisCache.h"

using namespace srp;
using namespace srp::ssa;

DominatorTree &AnalysisCache::dominators(ir::Function &F) {
  Entry &E = Entries[&F];
  if (!E.DT) {
    ++Stats.Misses;
    E.DT = std::make_unique<DominatorTree>(F);
  } else {
    ++Stats.Hits;
  }
  return *E.DT;
}

LoopInfo &AnalysisCache::loops(ir::Function &F) {
  DominatorTree &DT = dominators(F);
  Entry &E = Entries[&F];
  if (!E.LI) {
    ++Stats.Misses;
    E.LI = std::make_unique<LoopInfo>(DT);
  } else {
    ++Stats.Hits;
  }
  return *E.LI;
}

void AnalysisCache::invalidate(ir::Function &F) {
  auto It = Entries.find(&F);
  if (It == Entries.end())
    return;
  ++Stats.Invalidations;
  Entries.erase(It);
}

void AnalysisCache::clear() { Entries.clear(); }
