//===- HSSA.h - Alias-aware SSA with chi/mu and speculation -----*- C++ -*-===//
//
// Part of the srp-alat project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The HSSA-style SSA form of Chow et al. (CC'96) as adopted by ORC, plus
/// the paper's speculative extension (§3.1):
///
///  * every *symbol* and every *virtual variable* (one per lexical indirect
///    reference) carries SSA versions;
///  * stores and calls carry χ operations (may-defs) on everything they may
///    alias; loads carry μ operations (may-uses) on their may-pointees;
///  * with an alias profile attached, χ/μ whose target was never observed
///    at run time are flagged *speculative* (χ_s / μ_s, Figure 5);
///  * specCanonicalVersion() exposes the paper's speculative Rename rule:
///    versions created only by speculative χs (and φs that merge nothing
///    else) collapse to the version they shadow, which is what lets the
///    promotion pass treat the occurrences as redundant.
///
/// The IR invariant that temps are single-assignment (each temp has exactly
/// one defining statement) means temps need no versions here; an index
/// temp's defining statement is simply an extra kill site for expressions
/// using it, handled by the PRE pass directly.
///
//===----------------------------------------------------------------------===//

#ifndef SRP_SSA_HSSA_H
#define SRP_SSA_HSSA_H

#include "alias/AliasAnalysis.h"
#include "interp/Profile.h"
#include "ir/CFG.h"
#include "ssa/Dominators.h"

#include <functional>
#include <map>
#include <string>
#include <vector>

namespace srp::ssa {

/// Index into the HSSA object table.
using ObjectId = unsigned;
inline constexpr ObjectId InvalidObject = ~0u;

/// One versioned entity: a symbol's memory content, or a virtual variable
/// standing for the locations a lexical indirect reference can touch.
struct SSAObject {
  enum class Kind : uint8_t { Symbol, Virtual };

  Kind K = Kind::Symbol;
  const ir::Symbol *Sym = nullptr; ///< Symbol kind: the symbol itself.
  ir::MemRef Ref;                  ///< Virtual kind: canonical lexical ref.

  bool isVirtual() const { return K == Kind::Virtual; }

  /// "a" for symbols, "v(*p)" style for virtual variables.
  std::string name() const;
};

/// A may-def: the statement may overwrite Obj; DefVer shadows UseVer.
struct ChiRecord {
  ObjectId Obj = InvalidObject;
  unsigned DefVer = 0;
  unsigned UseVer = 0;
  bool Spec = false;           ///< χ_s: profile says this def never happens.
  const ir::Stmt *S = nullptr;
  ir::BasicBlock *BB = nullptr;
};

/// A may-use: the load may read Obj at version Ver.
struct MuRecord {
  ObjectId Obj = InvalidObject;
  unsigned Ver = 0;
  bool Spec = false;           ///< μ_s: profile says this use never happens.
  const ir::Stmt *S = nullptr;
};

/// A variable φ at a block head. Args are parallel to BB->preds().
struct PhiRecord {
  ObjectId Obj = InvalidObject;
  unsigned DefVer = 0;
  std::vector<unsigned> Args;
  ir::BasicBlock *BB = nullptr;
};

/// Provenance of one version of one object.
struct VersionOrigin {
  enum class Kind : uint8_t { LiveIn, RealDef, Chi, Phi };
  Kind K = Kind::LiveIn;
  const ir::Stmt *DefStmt = nullptr; ///< RealDef and Chi.
  ir::BasicBlock *BB = nullptr;
  unsigned ChiIndex = ~0u;           ///< Into chis().
  unsigned PhiIndex = ~0u;           ///< Into phis().
};

/// Versions a load/store sees along its access path.
///
/// LevelObjs/LevelVers have Depth+1 entries: index 0 is the base symbol's
/// content (the address chain's root), index i (1..Depth) is the virtual
/// variable of the i-th dereference; for direct references there is just
/// the one entry (the symbol). The last entry is the *data object*.
struct StmtAccess {
  std::vector<ObjectId> LevelObjs;
  std::vector<unsigned> LevelVers;
  unsigned DefVer = 0; ///< Stores: the new version of the data object.

  ObjectId dataObj() const { return LevelObjs.back(); }
  unsigned dataVer() const { return LevelVers.back(); }
};

/// The computed SSA form for one function. Immutable once built; passes
/// that transform the IR must rebuild it.
class HSSA {
public:
  /// Builds the form. \p Profile may be null: every χ/μ is then real and
  /// specCanonicalVersion degenerates to the identity (no speculation).
  HSSA(ir::Function &F, const DominatorTree &DT,
       const alias::AliasAnalysis &AA,
       const interp::AliasProfile *Profile);

  ir::Function &function() const { return F; }

  //===--------------------------------------------------------------===//
  // Object table
  //===--------------------------------------------------------------===//

  unsigned numObjects() const {
    return static_cast<unsigned>(Objects.size());
  }
  const SSAObject &object(ObjectId Id) const { return Objects[Id]; }

  /// Object of a symbol's content; InvalidObject if the function never
  /// references it.
  ObjectId symbolObject(const ir::Symbol *Sym) const;

  /// Virtual variable of the final level of \p Ref (indirect refs only).
  ObjectId vvarObject(const ir::MemRef &Ref) const;

  /// All level objects of \p Ref, base first (see StmtAccess).
  std::vector<ObjectId> refObjects(const ir::MemRef &Ref) const;

  //===--------------------------------------------------------------===//
  // Per-statement and per-block annotations
  //===--------------------------------------------------------------===//

  /// Access-path versions at a Load or Store; null for other statements.
  const StmtAccess *accessInfo(const ir::Stmt *S) const;

  /// χ operations attached to \p S (stores and calls).
  const std::vector<unsigned> &chiIndicesOf(const ir::Stmt *S) const;

  const std::vector<MuRecord> &musOf(const ir::Stmt *S) const;

  const std::vector<PhiRecord> &phisOf(const ir::BasicBlock *BB) const;

  const std::vector<ChiRecord> &chis() const { return Chis; }
  const ChiRecord &chi(unsigned Index) const { return Chis[Index]; }

  /// Version of \p Obj live after the φs of \p BB.
  unsigned versionAtEntry(const ir::BasicBlock *BB, ObjectId Obj) const {
    return EntryVer[BB->getId()][Obj];
  }

  /// Version of \p Obj live at the end of \p BB.
  unsigned versionAtExit(const ir::BasicBlock *BB, ObjectId Obj) const {
    return ExitVer[BB->getId()][Obj];
  }

  unsigned numVersions(ObjectId Obj) const {
    return static_cast<unsigned>(Origins[Obj].size());
  }
  const VersionOrigin &origin(ObjectId Obj, unsigned Ver) const {
    return Origins[Obj][Ver];
  }

  //===--------------------------------------------------------------===//
  // Speculative renaming support (§3.3)
  //===--------------------------------------------------------------===//

  /// The version \p Ver collapses to when speculative χs are ignored and
  /// φs that merge a single speculative-canonical version are looked
  /// through. Equal canonical versions mean "speculatively redundant".
  unsigned specCanonicalVersion(ObjectId Obj, unsigned Ver) const {
    return Canonical[Obj][Ver];
  }

  /// Generalized collapse: computes a canonical-version map that looks
  /// through every χ for which \p Collapsible returns true (and φs whose
  /// arguments all collapse to one version). The promotion strategies
  /// instantiate this differently: ALAT collapses speculative χs, the
  /// software-check baseline collapses all store χs it can guard with an
  /// address compare.
  std::vector<std::vector<unsigned>>
  canonicalMap(const std::function<bool(const ChiRecord &)> &Collapsible)
      const;

  /// The speculative χ records a reuse of canonical version
  /// specCanonicalVersion(Obj, Ver) speculates across, i.e. every spec χ
  /// of Obj whose Def collapses to that canonical version. These are the
  /// stores after which the promotion pass must place check statements.
  std::vector<const ChiRecord *> speculatedChis(ObjectId Obj,
                                                unsigned CanonicalVer) const;

private:
  friend class HSSABuilder;

  ir::Function &F;
  std::vector<SSAObject> Objects;
  std::map<const ir::Symbol *, ObjectId> SymbolObjects;
  /// Virtual variable lookup: key fields of the canonical ref.
  struct VKey {
    unsigned BaseId;
    unsigned Depth;
    int IndexKind; ///< 0 none, 1 temp, 2 const
    uint64_t IndexVal;
    int64_t Offset;
    bool operator<(const VKey &O) const;
  };
  std::map<VKey, ObjectId> VirtualObjects;
  static VKey vkeyFor(const ir::MemRef &Ref, unsigned Level);

  std::vector<ChiRecord> Chis;
  std::map<const ir::Stmt *, std::vector<unsigned>> StmtChis;
  std::map<const ir::Stmt *, std::vector<MuRecord>> StmtMus;
  std::map<const ir::Stmt *, StmtAccess> StmtAccesses;
  std::map<const ir::BasicBlock *, std::vector<PhiRecord>> BlockPhis;
  std::vector<std::vector<unsigned>> EntryVer, ExitVer; ///< [block][obj]
  std::vector<std::vector<VersionOrigin>> Origins;      ///< [obj][ver]
  std::vector<std::vector<unsigned>> Canonical;         ///< [obj][ver]
};

} // namespace srp::ssa

#endif // SRP_SSA_HSSA_H
