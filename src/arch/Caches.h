//===- Caches.h - Itanium-like cache hierarchy -------------------*- C++ -*-===//
//
// Part of the srp-alat project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A three-level data-cache model with Itanium-flavoured parameters. The
/// single behaviour the paper's evaluation leans on: integer loads hit a
/// 2-cycle L1D, while floating-point loads bypass L1 entirely and cost at
/// least the 9-cycle L2 latency — which is why the FP benchmarks gain the
/// most from eliminated loads (§4).
///
//===----------------------------------------------------------------------===//

#ifndef SRP_ARCH_CACHES_H
#define SRP_ARCH_CACHES_H

#include <cstdint>
#include <vector>

namespace srp::arch {

/// One set-associative level with LRU replacement.
class CacheLevel {
public:
  CacheLevel(uint64_t SizeBytes, unsigned Ways, unsigned LineBytes);

  /// True on hit; on miss the line is installed (possibly evicting LRU).
  bool access(uint64_t Addr);

  /// Installs a line without reporting hit/miss (used on write-allocate).
  void install(uint64_t Addr);

  /// True without installing.
  bool probe(uint64_t Addr) const;

  uint64_t hits() const { return Hits; }
  uint64_t misses() const { return Misses; }

private:
  struct Line {
    bool Valid = false;
    uint64_t Tag = 0;
    uint64_t Lru = 0;
  };

  unsigned indexOf(uint64_t Addr) const {
    return static_cast<unsigned>((Addr / LineBytes) % NumSets);
  }
  uint64_t tagOf(uint64_t Addr) const { return Addr / LineBytes / NumSets; }

  unsigned Ways;
  unsigned LineBytes;
  unsigned NumSets;
  std::vector<Line> Lines;
  uint64_t Clock = 0;
  uint64_t Hits = 0;
  uint64_t Misses = 0;
};

/// Latency parameters (cycles), roughly the 733 MHz Itanium of the paper.
struct MemoryConfig {
  unsigned L1Latency = 2;
  unsigned L2Latency = 9;
  unsigned L3Latency = 24;
  unsigned MemLatency = 120;
  uint64_t L1Size = 16 * 1024;
  unsigned L1Ways = 4;
  uint64_t L2Size = 96 * 1024;
  unsigned L2Ways = 6;
  uint64_t L3Size = 2 * 1024 * 1024;
  unsigned L3Ways = 4;
  unsigned LineBytes = 64;
};

/// The hierarchy. Loads return their latency; stores update the caches
/// (write-allocate into L2, update L1 when present).
class MemoryHierarchy {
public:
  explicit MemoryHierarchy(const MemoryConfig &Config);

  /// Latency of a load; \p Fp loads bypass L1 (Itanium floating point
  /// loads are served from L2).
  unsigned loadLatency(uint64_t Addr, bool Fp);

  /// Store: updates the hierarchy; stores are fire-and-forget for timing.
  void store(uint64_t Addr);

  uint64_t l1Hits() const { return L1.hits(); }
  uint64_t l1Misses() const { return L1.misses(); }
  uint64_t l2Hits() const { return L2.hits(); }
  uint64_t l2Misses() const { return L2.misses(); }

private:
  MemoryConfig Config;
  CacheLevel L1, L2, L3;
};

} // namespace srp::arch

#endif // SRP_ARCH_CACHES_H
