//===- Caches.h - Itanium-like cache hierarchy -------------------*- C++ -*-===//
//
// Part of the srp-alat project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A three-level data-cache model with Itanium-flavoured parameters. The
/// single behaviour the paper's evaluation leans on: integer loads hit a
/// 2-cycle L1D, while floating-point loads bypass L1 entirely and cost at
/// least the 9-cycle L2 latency — which is why the FP benchmarks gain the
/// most from eliminated loads (§4).
///
//===----------------------------------------------------------------------===//

#ifndef SRP_ARCH_CACHES_H
#define SRP_ARCH_CACHES_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace srp::arch {

/// One set-associative level with LRU replacement.
class CacheLevel {
public:
  CacheLevel(uint64_t SizeBytes, unsigned Ways, unsigned LineBytes);

  /// True on hit; on miss the line is installed (possibly evicting LRU).
  /// Header-inline MRU fast path (one compare, no way scan) in front of
  /// the out-of-line scan: the simulator calls this per retired load.
  bool access(uint64_t Addr) {
    unsigned Set = indexOf(Addr);
    uint64_t Tag = tagOf(Addr);
    ++Clock;
    if (LastLine && Set == LastSet && Tag == LastTag && LastLine->Valid &&
        LastLine->Tag == Tag) {
      LastLine->Lru = Clock;
      ++Hits;
      return true;
    }
    return accessScan(Set, Tag);
  }

  /// Installs a line without reporting hit/miss (used on write-allocate).
  void install(uint64_t Addr) {
    unsigned Set = indexOf(Addr);
    uint64_t Tag = tagOf(Addr);
    ++Clock;
    if (LastLine && Set == LastSet && Tag == LastTag && LastLine->Valid &&
        LastLine->Tag == Tag) {
      LastLine->Lru = Clock;
      return;
    }
    installScan(Set, Tag);
  }

  /// True without installing.
  bool probe(uint64_t Addr) const;

  /// probe-then-install-if-present in one scan: refreshes the line's LRU
  /// stamp when resident, does nothing (and leaves Clock untouched, like
  /// a miss-side probe) when not. Equivalent to
  /// `if (probe(A)) install(A);` without the second way scan.
  void refresh(uint64_t Addr) {
    unsigned Set = indexOf(Addr);
    uint64_t Tag = tagOf(Addr);
    if (LastLine && Set == LastSet && Tag == LastTag && LastLine->Valid &&
        LastLine->Tag == Tag) {
      LastLine->Lru = ++Clock;
      return;
    }
    if (Lines.empty()) // nothing resident yet; refresh never installs
      return;
    // Stores mostly miss this level, and a refresh miss is a no-op; the
    // negative MRU below remembers the last line confirmed absent. It is
    // cleared whenever a line is installed (the only way a line can
    // appear), so a negative hit is always still a miss.
    if (Set == NegSet && Tag == NegTag)
      return;
    refreshScan(Set, Tag);
  }

  uint64_t hits() const { return Hits; }
  uint64_t misses() const { return Misses; }

private:
  struct Line {
    bool Valid = false;
    uint64_t Tag = 0;
    uint64_t Lru = 0;
  };

  // Every simulated load runs indexOf/tagOf on up to three levels; with
  // the usual power-of-two line size and set count they are shifts and
  // masks (precomputed in the constructor), with a divide fallback for
  // odd geometries.
  unsigned indexOf(uint64_t Addr) const {
    if (Pow2Geometry)
      return static_cast<unsigned>((Addr >> LineShift) & (NumSets - 1));
    return static_cast<unsigned>((Addr / LineBytes) % NumSets);
  }
  uint64_t tagOf(uint64_t Addr) const {
    if (Pow2Geometry)
      return Addr >> (LineShift + SetShift);
    return Addr / LineBytes / NumSets;
  }

  bool accessScan(unsigned Set, uint64_t Tag);
  void installScan(unsigned Set, uint64_t Tag);
  void refreshScan(unsigned Set, uint64_t Tag);

  /// Lines is sized on first use: a hierarchy is built per simulated
  /// run, and zero-filling L3's line array (~32k lines) for short
  /// programs that never miss L2 dominates construction cost.
  void materialize() {
    if (Lines.empty())
      Lines.assign(static_cast<std::size_t>(NumSets) * Ways, Line());
  }

  unsigned Ways;
  unsigned LineBytes;
  unsigned NumSets;
  bool Pow2Geometry = false;
  unsigned LineShift = 0;
  unsigned SetShift = 0;
  // One-entry MRU cache: consecutive accesses mostly land in the line
  // touched last, and when that line still holds the tag the way scan
  // and victim search are pure overhead. The fast path performs the
  // identical Clock/Lru/Hits updates, so replacement behaviour and
  // counters are unchanged. Line pointers are stable (Lines never
  // resizes); an eviction reusing the slot changes its Tag, which the
  // fast-path compare catches.
  Line *LastLine = nullptr;
  unsigned LastSet = 0;
  uint64_t LastTag = 0;
  /// Negative MRU for refresh(): the last (set, tag) a refresh scan
  /// found absent. ~0 values never match a real lookup.
  unsigned NegSet = ~0u;
  uint64_t NegTag = ~uint64_t(0);
  std::vector<Line> Lines;
  uint64_t Clock = 0;
  uint64_t Hits = 0;
  uint64_t Misses = 0;
};

/// Latency parameters (cycles), roughly the 733 MHz Itanium of the paper.
struct MemoryConfig {
  unsigned L1Latency = 2;
  unsigned L2Latency = 9;
  unsigned L3Latency = 24;
  unsigned MemLatency = 120;
  uint64_t L1Size = 16 * 1024;
  unsigned L1Ways = 4;
  uint64_t L2Size = 96 * 1024;
  unsigned L2Ways = 6;
  uint64_t L3Size = 2 * 1024 * 1024;
  unsigned L3Ways = 4;
  unsigned LineBytes = 64;
};

/// The hierarchy. Loads return their latency; stores update the caches
/// (write-allocate into L2, update L1 when present).
class MemoryHierarchy {
public:
  explicit MemoryHierarchy(const MemoryConfig &Config);

  /// Latency of a load; \p Fp loads bypass L1 (Itanium floating point
  /// loads are served from L2). Header-inline so the per-load L1 MRU hit
  /// costs no cross-TU call.
  unsigned loadLatency(uint64_t Addr, bool Fp) {
    if (!Fp && L1.access(Addr))
      return Config.L1Latency;
    return loadLatencyL2(Addr, Fp);
  }

  /// Store: updates the hierarchy; stores are fire-and-forget for timing.
  void store(uint64_t Addr) {
    // Write-allocate into L2; refresh L1 when the line is already present.
    L1.refresh(Addr);
    L2.install(Addr);
  }

  unsigned loadLatencyL2(uint64_t Addr, bool Fp);

  uint64_t l1Hits() const { return L1.hits(); }
  uint64_t l1Misses() const { return L1.misses(); }
  uint64_t l2Hits() const { return L2.hits(); }
  uint64_t l2Misses() const { return L2.misses(); }

private:
  MemoryConfig Config;
  CacheLevel L1, L2, L3;
};

} // namespace srp::arch

#endif // SRP_ARCH_CACHES_H
