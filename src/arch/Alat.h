//===- Alat.h - Advanced Load Address Table model ----------------*- C++ -*-===//
//
// Part of the srp-alat project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The ALAT (§2.1): a small set-associative table of (register, address)
/// entries. Advanced loads allocate entries; every store compares its
/// address against all entries using a *partial* tag and invalidates
/// matches — partial tags make false collisions possible, which is a pure
/// performance effect the ablation benches measure. invala.e removes a
/// single register's entry; checks query by register.
///
/// One deliberate safety deviation from the Itanium manuals: check hits
/// additionally require the full address recorded at allocation to match
/// the checking load's address. Production IA-64 compilers guarantee this
/// by construction (a path from every ld.c leads back to a matching ld.a
/// or an invala); verifying it in hardware-model code makes register
/// reuse by the allocator architecturally safe rather than a compiler
/// proof obligation.
///
//===----------------------------------------------------------------------===//

#ifndef SRP_ARCH_ALAT_H
#define SRP_ARCH_ALAT_H

#include "arch/FaultPlan.h"
#include "support/RNG.h"

#include <cstdint>
#include <vector>

namespace srp::arch {

/// ALAT geometry and behaviour knobs.
struct AlatConfig {
  unsigned Entries = 32;      ///< Total entries (Itanium: 32).
  unsigned Ways = 2;          ///< Set associativity (Itanium: 2).
  unsigned PartialTagBits = 20; ///< Address bits compared on stores.
};

/// Statistics the evaluation section needs.
struct AlatStats {
  uint64_t Allocations = 0;
  uint64_t Invalidations = 0;      ///< Entries removed by stores.
  uint64_t FalseInvalidations = 0; ///< ... where full addresses differed.
  uint64_t CapacityEvictions = 0;  ///< Entries displaced by allocation.
  uint64_t CheckHits = 0;
  uint64_t CheckMisses = 0;
  /// Injected-fault counters; all zero when no FaultPlan is attached.
  FaultStats Faults;
};

/// The table itself.
class Alat {
public:
  explicit Alat(const AlatConfig &Config);

  /// A table with a fault-injection schedule attached (FaultPlan.h). A
  /// disabled plan behaves bit-identically to the plain constructor.
  Alat(const AlatConfig &Config, const FaultPlan &Faults);

  /// Allocates (or refreshes) the entry for \p Reg covering \p Addr.
  void allocate(unsigned Reg, uint64_t Addr);

  /// A store to \p Addr: invalidates every entry whose partial tag
  /// matches. Runs once per simulated store, so the empty-table and
  /// Bloom rejections stay inline and the table scan is out of line.
  void storeNotify(uint64_t Addr) {
    if (NumValid == 0)
      return;
    uint64_t Tag = partialTag(Addr);
    if (!((TagBloom >> bloomBit(Tag)) & 1))
      return; // no live entry can carry this tag
    storeNotifyScan(Addr, Tag);
  }

  /// True if \p Reg has a valid entry whose recorded address is \p Addr.
  /// \p Clear removes the entry on a hit (the .clr completer).
  bool check(unsigned Reg, uint64_t Addr, bool Clear);

  /// chk.a-style query: valid entry for \p Reg (address already verified
  /// at allocation; the recovery reloads everything anyway). Non-const:
  /// an attached FaultPlan may invalidate entries during the check.
  bool checkRegister(unsigned Reg);

  /// invala.e: drops \p Reg's entry.
  void invalidateRegister(unsigned Reg);

  /// Drops everything (context switch / invala).
  void invalidateAll();

  const AlatStats &stats() const { return Stats; }
  unsigned numValidEntries() const;

private:
  struct Entry {
    bool Valid = false;
    unsigned Reg = 0;
    uint64_t Addr = 0;
  };

  uint64_t partialTag(uint64_t Addr) const {
    return Addr & ((uint64_t(1) << Config.PartialTagBits) - 1);
  }

  /// Bloom bucket of a partial tag. Skips the low three bits: accesses
  /// are 8-byte aligned, so they never discriminate and would collapse
  /// the filter to eight buckets.
  static unsigned bloomBit(uint64_t Tag) {
    return static_cast<unsigned>((Tag >> 3) & 63);
  }

  /// Entries are organized in Entries/Ways sets indexed by register
  /// number, mirroring the register-indexed Itanium organization.
  unsigned setOf(unsigned Reg) const { return Reg % NumSets; }

  void storeNotifyScan(uint64_t Addr, uint64_t Tag);

  Entry *findEntry(unsigned Reg);
  const Entry *findEntry(unsigned Reg) const;

  /// Fault hooks (no-ops when Faults is disabled): \see FaultPlan.
  void faultSpuriousInvalidate();
  void faultCapacitySqueeze();
  bool faultForcesMiss();
  void dropRandomValidEntry(uint64_t &Counter);

  AlatConfig Config;
  unsigned NumSets;
  std::vector<Entry> Table; ///< NumSets * Ways.
  /// Count of valid entries, maintained at every transition: storeNotify
  /// runs per simulated store and skips the table scan when it is zero
  /// (always, for non-speculative configs).
  unsigned NumValid = 0;
  /// Bloom mask over the partial tags of entries allocated since the
  /// table was last empty (bit = tag's low six bits). storeNotify's
  /// table scan is skipped when the store's tag cannot match any entry;
  /// invalidations leave the mask conservatively stale, and it resets
  /// whenever NumValid reaches zero.
  uint64_t TagBloom = 0;
  /// Drops one valid entry's accounting (the caller clears E.Valid).
  void noteDropped() {
    if (--NumValid == 0)
      TagBloom = 0;
  }
  bool Trace = false; ///< SRP_ALAT_TRACE, latched at construction.
  AlatStats Stats;
  FaultPlan Faults;   ///< Disabled by default.
  RNG FaultRng{0};    ///< Only drawn from when Faults.enabled().
};

} // namespace srp::arch

#endif // SRP_ARCH_ALAT_H
