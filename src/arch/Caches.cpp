//===- Caches.cpp - Itanium-like cache hierarchy ------------------------------===//

#include "arch/Caches.h"

#include <cassert>
#include <cstddef>

using namespace srp::arch;

CacheLevel::CacheLevel(uint64_t SizeBytes, unsigned Ways, unsigned LineBytes)
    : Ways(Ways), LineBytes(LineBytes) {
  assert(Ways >= 1 && LineBytes >= 8 && "degenerate cache geometry");
  uint64_t NumLines = SizeBytes / LineBytes;
  NumSets = static_cast<unsigned>(NumLines / Ways);
  if (NumSets == 0)
    NumSets = 1;
  Lines.assign(static_cast<size_t>(NumSets) * Ways, Line());
}

bool CacheLevel::access(uint64_t Addr) {
  unsigned Set = indexOf(Addr);
  uint64_t Tag = tagOf(Addr);
  ++Clock;
  Line *Victim = nullptr;
  for (unsigned W = 0; W < Ways; ++W) {
    Line &L = Lines[static_cast<size_t>(Set) * Ways + W];
    if (L.Valid && L.Tag == Tag) {
      L.Lru = Clock;
      ++Hits;
      return true;
    }
    if (!Victim || !L.Valid || (Victim->Valid && L.Lru < Victim->Lru))
      Victim = &L;
  }
  ++Misses;
  Victim->Valid = true;
  Victim->Tag = Tag;
  Victim->Lru = Clock;
  return false;
}

void CacheLevel::install(uint64_t Addr) {
  unsigned Set = indexOf(Addr);
  uint64_t Tag = tagOf(Addr);
  ++Clock;
  Line *Victim = nullptr;
  for (unsigned W = 0; W < Ways; ++W) {
    Line &L = Lines[static_cast<size_t>(Set) * Ways + W];
    if (L.Valid && L.Tag == Tag) {
      L.Lru = Clock;
      return;
    }
    if (!Victim || !L.Valid || (Victim->Valid && L.Lru < Victim->Lru))
      Victim = &L;
  }
  Victim->Valid = true;
  Victim->Tag = Tag;
  Victim->Lru = Clock;
}

bool CacheLevel::probe(uint64_t Addr) const {
  unsigned Set = indexOf(Addr);
  uint64_t Tag = tagOf(Addr);
  for (unsigned W = 0; W < Ways; ++W) {
    const Line &L = Lines[static_cast<size_t>(Set) * Ways + W];
    if (L.Valid && L.Tag == Tag)
      return true;
  }
  return false;
}

MemoryHierarchy::MemoryHierarchy(const MemoryConfig &Config)
    : Config(Config), L1(Config.L1Size, Config.L1Ways, Config.LineBytes),
      L2(Config.L2Size, Config.L2Ways, Config.LineBytes),
      L3(Config.L3Size, Config.L3Ways, Config.LineBytes) {}

unsigned MemoryHierarchy::loadLatency(uint64_t Addr, bool Fp) {
  if (!Fp && L1.access(Addr))
    return Config.L1Latency;
  if (L2.access(Addr)) {
    if (!Fp)
      L1.install(Addr);
    return Config.L2Latency;
  }
  if (L3.access(Addr)) {
    if (!Fp)
      L1.install(Addr);
    return Config.L3Latency;
  }
  if (!Fp)
    L1.install(Addr);
  return Config.MemLatency;
}

void MemoryHierarchy::store(uint64_t Addr) {
  // Write-allocate into L2; refresh L1 when the line is already present.
  if (L1.probe(Addr))
    L1.install(Addr);
  L2.install(Addr);
}
