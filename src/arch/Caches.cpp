//===- Caches.cpp - Itanium-like cache hierarchy ------------------------------===//

#include "arch/Caches.h"

#include <cassert>
#include <cstddef>

using namespace srp::arch;

CacheLevel::CacheLevel(uint64_t SizeBytes, unsigned Ways, unsigned LineBytes)
    : Ways(Ways), LineBytes(LineBytes) {
  assert(Ways >= 1 && LineBytes >= 8 && "degenerate cache geometry");
  uint64_t NumLines = SizeBytes / LineBytes;
  NumSets = static_cast<unsigned>(NumLines / Ways);
  if (NumSets == 0)
    NumSets = 1;
  auto IsPow2 = [](unsigned V) { return V != 0 && (V & (V - 1)) == 0; };
  Pow2Geometry = IsPow2(LineBytes) && IsPow2(NumSets);
  if (Pow2Geometry) {
    while ((1u << LineShift) < LineBytes)
      ++LineShift;
    while ((1u << SetShift) < NumSets)
      ++SetShift;
  }
}

bool CacheLevel::accessScan(unsigned Set, uint64_t Tag) {
  materialize();
  NegSet = ~0u; // a miss installs a line; drop the negative MRU
  NegTag = ~uint64_t(0);
  Line *Victim = nullptr;
  for (unsigned W = 0; W < Ways; ++W) {
    Line &L = Lines[static_cast<size_t>(Set) * Ways + W];
    if (L.Valid && L.Tag == Tag) {
      L.Lru = Clock;
      ++Hits;
      LastLine = &L;
      LastSet = Set;
      LastTag = Tag;
      return true;
    }
    if (!Victim || !L.Valid || (Victim->Valid && L.Lru < Victim->Lru))
      Victim = &L;
  }
  ++Misses;
  Victim->Valid = true;
  Victim->Tag = Tag;
  Victim->Lru = Clock;
  LastLine = Victim;
  LastSet = Set;
  LastTag = Tag;
  return false;
}

void CacheLevel::installScan(unsigned Set, uint64_t Tag) {
  materialize();
  NegSet = ~0u;
  NegTag = ~uint64_t(0);
  Line *Victim = nullptr;
  for (unsigned W = 0; W < Ways; ++W) {
    Line &L = Lines[static_cast<size_t>(Set) * Ways + W];
    if (L.Valid && L.Tag == Tag) {
      L.Lru = Clock;
      LastLine = &L;
      LastSet = Set;
      LastTag = Tag;
      return;
    }
    if (!Victim || !L.Valid || (Victim->Valid && L.Lru < Victim->Lru))
      Victim = &L;
  }
  Victim->Valid = true;
  Victim->Tag = Tag;
  Victim->Lru = Clock;
  LastLine = Victim;
  LastSet = Set;
  LastTag = Tag;
}

bool CacheLevel::probe(uint64_t Addr) const {
  if (Lines.empty())
    return false;
  unsigned Set = indexOf(Addr);
  uint64_t Tag = tagOf(Addr);
  if (LastLine && Set == LastSet && Tag == LastTag && LastLine->Valid &&
      LastLine->Tag == Tag)
    return true;
  for (unsigned W = 0; W < Ways; ++W) {
    const Line &L = Lines[static_cast<size_t>(Set) * Ways + W];
    if (L.Valid && L.Tag == Tag)
      return true;
  }
  return false;
}

void CacheLevel::refreshScan(unsigned Set, uint64_t Tag) {
  for (unsigned W = 0; W < Ways; ++W) {
    Line &L = Lines[static_cast<size_t>(Set) * Ways + W];
    if (L.Valid && L.Tag == Tag) {
      L.Lru = ++Clock;
      LastLine = &L;
      LastSet = Set;
      LastTag = Tag;
      return;
    }
  }
  NegSet = Set;
  NegTag = Tag;
}

MemoryHierarchy::MemoryHierarchy(const MemoryConfig &Config)
    : Config(Config), L1(Config.L1Size, Config.L1Ways, Config.LineBytes),
      L2(Config.L2Size, Config.L2Ways, Config.LineBytes),
      L3(Config.L3Size, Config.L3Ways, Config.LineBytes) {}

unsigned MemoryHierarchy::loadLatencyL2(uint64_t Addr, bool Fp) {
  if (L2.access(Addr)) {
    if (!Fp)
      L1.install(Addr);
    return Config.L2Latency;
  }
  if (L3.access(Addr)) {
    if (!Fp)
      L1.install(Addr);
    return Config.L3Latency;
  }
  if (!Fp)
    L1.install(Addr);
  return Config.MemLatency;
}

