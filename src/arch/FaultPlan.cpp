//===- FaultPlan.cpp - Deterministic ALAT fault injection ---------------------===//

#include "arch/FaultPlan.h"

#include "support/RNG.h"
#include "support/StringUtils.h"

using namespace srp;
using namespace srp::arch;

FaultPlan FaultPlan::fromSeed(uint64_t Seed) {
  FaultPlan P;
  if (Seed == 0)
    return P;
  P.Seed = Seed;
  // Draw each axis independently so schedules cover the corner cases
  // (only forced misses, only squeezes, everything at once, ...).
  RNG R(Seed * 0x9e3779b97f4a7c15ULL + 0xfa17);
  static const double MissProbs[] = {0.0, 0.05, 0.25, 0.75};
  static const double InvalProbs[] = {0.0, 0.02, 0.10, 0.50};
  static const unsigned Capacities[] = {0, 1, 2, 4, 8};
  P.ForcedMissProb = MissProbs[R.nextBelow(4)];
  P.SpuriousInvalidateProb = InvalProbs[R.nextBelow(4)];
  P.CapacityLimit = Capacities[R.nextBelow(5)];
  // An all-zero draw would be a silently disabled schedule; give it the
  // mildest real fault instead so every nonzero seed injects something.
  if (!P.enabled())
    P.ForcedMissProb = 0.05;
  return P;
}

std::string FaultPlan::describe() const {
  if (!enabled())
    return "none";
  return formatString("seed=%llu,miss=%.2f,inv=%.2f,cap=%u",
                      static_cast<unsigned long long>(Seed), ForcedMissProb,
                      SpuriousInvalidateProb, CapacityLimit);
}
