//===- FaultPlan.h - Deterministic ALAT fault injection ---------*- C++ -*-===//
//
// Part of the srp-alat project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A seeded schedule of hardware faults injected into the simulator's
/// ALAT. Every fault only *removes* entries or *forces check misses* —
/// directions in which the architecture is self-correcting: a missing
/// entry makes ld.c reload and chk.a take its recovery path. A compiler
/// whose recovery code is correct therefore produces identical program
/// output under any fault schedule; the differential oracle
/// (valid::DiffOracle) asserts exactly that. Faults never force a *hit*,
/// which would require the hardware to lie about address matching.
///
/// Schedules are a pure function of a 64-bit seed, so a failure report
/// of (program seed, config, fault seed) replays exactly.
///
//===----------------------------------------------------------------------===//

#ifndef SRP_ARCH_FAULTPLAN_H
#define SRP_ARCH_FAULTPLAN_H

#include <cstdint>
#include <string>

namespace srp::arch {

/// One deterministic fault-injection schedule. Default-constructed plans
/// are disabled and leave the ALAT's behaviour bit-identical to a run
/// with no fault layer at all (the determinism tests rely on this).
struct FaultPlan {
  /// Seed of the injection RNG; 0 disables the plan entirely.
  uint64_t Seed = 0;
  /// Per check (ld.c / chk.a), probability that a would-be hit is turned
  /// into a miss by invalidating the entry first (a spurious context
  /// switch, purge, or tag-parity drop at the worst moment).
  double ForcedMissProb = 0.0;
  /// Per ALAT event, probability of invalidating one random valid entry
  /// (spurious invalidation pressure).
  double SpuriousInvalidateProb = 0.0;
  /// If nonzero, the table behaves as if it had at most this many valid
  /// entries: allocations beyond the limit drop a random victim (a
  /// capacity squeeze, e.g. SMT sharing or power-gated ways).
  unsigned CapacityLimit = 0;

  bool enabled() const {
    return Seed != 0 && (ForcedMissProb > 0.0 ||
                         SpuriousInvalidateProb > 0.0 || CapacityLimit > 0);
  }

  /// Derives a full schedule from one seed (the fuzzer's fault axis).
  /// Seed 0 returns a disabled plan.
  static FaultPlan fromSeed(uint64_t Seed);

  /// One-line reproducible description, e.g.
  /// "seed=7,miss=0.20,inv=0.05,cap=4".
  std::string describe() const;
};

/// Counters for injected faults (folded into AlatStats reporting).
struct FaultStats {
  uint64_t ForcedMisses = 0;
  uint64_t SpuriousInvalidations = 0;
  uint64_t CapacityDrops = 0;
};

} // namespace srp::arch

#endif // SRP_ARCH_FAULTPLAN_H
