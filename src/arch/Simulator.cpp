//===- Simulator.cpp - ITA functional + timing simulator ----------------------===//

#include "arch/Simulator.h"

#include "interp/Interpreter.h" // layout constants
#include "support/Error.h"
#include "support/StringUtils.h"

#include <bit>
#include <cassert>
#include <unordered_map>

using namespace srp;
using namespace srp::arch;
using namespace srp::codegen;

namespace {

/// One simulated run.
class Machine {
public:
  Machine(const MModule &M, const SimConfig &Config)
      : M(M), Config(Config), Table(Config.Alat, Config.Faults),
        Mem(Config.Memory) {}

  SimResult run();

private:
  struct ReturnPoint {
    const MFunction *F;
    unsigned Block;
    unsigned Index;
    unsigned StackedRegs; ///< callee's frame for the RSE pop.
    /// The caller's stacked register window (r32..r127 and f32..f127).
    /// The IA-64 register stack renames these per frame; a flat register
    /// file must save and restore them instead. The RSE *timing* of the
    /// same mechanism is charged by rseCall/rseReturn.
    std::vector<uint64_t> SavedStacked;
  };

  void trap(std::string Message) {
    if (!Trapped) {
      Trapped = true;
      TrapMessage = std::move(Message);
    }
  }

  uint64_t read64(uint64_t Addr) {
    if (Addr % 8 != 0) {
      trap(formatString("unaligned read at 0x%llx",
                        static_cast<unsigned long long>(Addr)));
      return 0;
    }
    auto It = Memory.find(Addr >> 3);
    return It == Memory.end() ? 0 : It->second;
  }

  void write64(uint64_t Addr, uint64_t Bits) {
    if (Addr % 8 != 0) {
      trap(formatString("unaligned write at 0x%llx",
                        static_cast<unsigned long long>(Addr)));
      return;
    }
    Memory[Addr >> 3] = Bits;
  }

  uint64_t reg(unsigned R) const {
    assert(R < Regs.size() && "register id out of range");
    return R == RegZero ? 0 : Regs[R];
  }

  void setReg(unsigned R, uint64_t V, uint64_t ReadyAt, bool FromLoad) {
    assert(R < Regs.size() && "register id out of range");
    if (R == RegZero)
      return;
    Regs[R] = V;
    Ready[R] = ReadyAt;
    LoadProduced[R] = FromLoad;
  }

  /// Advances the issue clock over source dependences and a slot.
  void issue(const MInstr &I) {
    unsigned Srcs[3];
    unsigned Count;
    I.sources(Srcs, Count);
    uint64_t Avail = Cycle;
    bool LoadLimited = false;
    for (unsigned K = 0; K < Count; ++K) {
      unsigned R = Srcs[K];
      if (R == RegZero || R >= Regs.size())
        continue;
      if (Ready[R] > Avail) {
        Avail = Ready[R];
        LoadLimited = LoadProduced[R];
      } else if (Ready[R] == Avail && Avail > Cycle && LoadProduced[R]) {
        LoadLimited = true;
      }
    }
    if (Avail > Cycle) {
      if (LoadLimited)
        Counters.DataAccessCycles += Avail - Cycle;
      Cycle = Avail;
      SlotsUsed = 0;
    }
    ++SlotsUsed;
    if (SlotsUsed >= Config.IssueWidth) {
      ++Cycle;
      SlotsUsed = 0;
    }
    ++Counters.Instructions;
  }

  void takenBranch(unsigned Penalty) {
    Cycle += Penalty;
    SlotsUsed = 0;
    ++Counters.TakenBranches;
  }

  /// RSE bookkeeping for a call into a frame of \p N stacked registers.
  void rseCall(unsigned N) {
    RseTotal += N;
    if (RseTotal > RseSpilled + NumStackedRegs) {
      uint64_t D = RseTotal - RseSpilled - NumStackedRegs;
      RseSpilled += D;
      Counters.RseSpills += D;
      Counters.RseCycles += D * Config.RsePerRegCycles;
    }
  }

  void rseReturn(unsigned N) {
    RseTotal -= N;
    if (RseSpilled > RseTotal) {
      uint64_t D = RseSpilled - RseTotal;
      RseSpilled -= D;
      Counters.RseFills += D;
      Counters.RseCycles += D * Config.RsePerRegCycles;
    }
  }

  uint64_t performLoad(uint64_t Addr, bool Fp) {
    ++Counters.RetiredLoads;
    LastLoadLatency = Mem.loadLatency(Addr, Fp);
    return read64(Addr);
  }

  void execute(const MInstr &I);

  const MModule &M;
  const SimConfig &Config;
  Alat Table;
  MemoryHierarchy Mem;

  std::vector<uint64_t> Regs = std::vector<uint64_t>(FirstVirtualReg, 0);
  std::vector<uint64_t> Ready = std::vector<uint64_t>(FirstVirtualReg, 0);
  std::vector<bool> LoadProduced = std::vector<bool>(FirstVirtualReg, 0);
  std::unordered_map<uint64_t, uint64_t> Memory;
  uint64_t HeapTop = interp::layout::HeapBase;

  const MFunction *CurF = nullptr;
  unsigned CurBlock = 0;
  unsigned CurIndex = 0;
  std::vector<ReturnPoint> CallStack;

  uint64_t Cycle = 0;
  unsigned SlotsUsed = 0;
  unsigned LastLoadLatency = 0;
  uint64_t RseTotal = 0;
  uint64_t RseSpilled = 0;

  PerfCounters Counters;
  std::vector<std::string> Output;
  bool Trapped = false;
  bool Finished = false;
  std::string TrapMessage;
};

void Machine::execute(const MInstr &I) {
  auto S1 = [&] { return reg(I.Rs1); };
  auto S2 = [&] { return I.HasImm ? static_cast<uint64_t>(I.Imm)
                                  : reg(I.Rs2); };
  auto Int = [](int64_t V) { return static_cast<uint64_t>(V); };
  auto Dbl = [](double V) { return std::bit_cast<uint64_t>(V); };
  auto AsI = [](uint64_t V) { return static_cast<int64_t>(V); };
  auto AsD = [](uint64_t V) { return std::bit_cast<double>(V); };

  issue(I);
  LastLoadLatency = 0;

  auto SetAlu = [&](uint64_t V, unsigned Latency = 1) {
    setReg(I.Rd, V, Cycle + Latency - 1, false);
  };

  switch (I.Op) {
  case MOp::MovI:
    SetAlu(static_cast<uint64_t>(I.Imm));
    break;
  case MOp::Mov:
    SetAlu(S1());
    break;
  case MOp::Add:
    SetAlu(Int(AsI(S1()) + AsI(S2())));
    break;
  case MOp::Sub:
    SetAlu(Int(AsI(S1()) - AsI(S2())));
    break;
  case MOp::Mul:
    SetAlu(Int(AsI(S1()) * AsI(S2())), Config.MulLatency);
    break;
  case MOp::Div:
    SetAlu(AsI(S2()) == 0 ? 0 : Int(AsI(S1()) / AsI(S2())),
           Config.DivLatency);
    break;
  case MOp::Rem:
    SetAlu(AsI(S2()) == 0 ? 0 : Int(AsI(S1()) % AsI(S2())),
           Config.DivLatency);
    break;
  case MOp::And:
    SetAlu(S1() & S2());
    break;
  case MOp::Or:
    SetAlu(S1() | S2());
    break;
  case MOp::Xor:
    SetAlu(S1() ^ S2());
    break;
  case MOp::Shl:
    SetAlu(S1() << (S2() & 63));
    break;
  case MOp::Shr:
    SetAlu(S1() >> (S2() & 63));
    break;
  case MOp::ShlAdd:
    SetAlu((S1() << 3) + (I.HasImm ? static_cast<uint64_t>(I.Imm)
                                   : reg(I.Rs2)));
    break;
  case MOp::CmpEq:
    SetAlu(AsI(S1()) == AsI(S2()));
    break;
  case MOp::CmpNe:
    SetAlu(AsI(S1()) != AsI(S2()));
    break;
  case MOp::CmpLt:
    SetAlu(AsI(S1()) < AsI(S2()));
    break;
  case MOp::CmpLe:
    SetAlu(AsI(S1()) <= AsI(S2()));
    break;
  case MOp::FAdd:
    SetAlu(Dbl(AsD(S1()) + AsD(S2())), Config.FpLatency);
    break;
  case MOp::FSub:
    SetAlu(Dbl(AsD(S1()) - AsD(S2())), Config.FpLatency);
    break;
  case MOp::FMul:
    SetAlu(Dbl(AsD(S1()) * AsD(S2())), Config.FpLatency);
    break;
  case MOp::FDiv:
    SetAlu(Dbl(AsD(S2()) == 0.0 ? 0.0 : AsD(S1()) / AsD(S2())),
           Config.FpDivLatency);
    break;
  case MOp::FCmpLt:
    SetAlu(AsD(S1()) < AsD(S2()), Config.FpLatency);
    break;
  case MOp::ICvtF:
    SetAlu(Dbl(static_cast<double>(AsI(S1()))), Config.FpLatency);
    break;
  case MOp::FCvtI:
    SetAlu(Int(static_cast<int64_t>(AsD(S1()))), Config.FpLatency);
    break;
  case MOp::Sel:
    SetAlu(S1() != 0 ? reg(I.Rs2) : reg(I.Rs3));
    break;

  case MOp::Ld: {
    uint64_t Addr = S1() + static_cast<uint64_t>(I.Imm);
    uint64_t V = performLoad(Addr, I.FpVal);
    setReg(I.Rd, V, Cycle + LastLoadLatency - 1, true);
    break;
  }
  case MOp::LdA:
  case MOp::LdSA: {
    uint64_t Addr = S1() + static_cast<uint64_t>(I.Imm);
    uint64_t V = performLoad(Addr, I.FpVal);
    Table.allocate(I.Rd, Addr);
    setReg(I.Rd, V, Cycle + LastLoadLatency - 1, true);
    break;
  }
  case MOp::LdCClr:
  case MOp::LdCNc: {
    uint64_t Addr = S1() + static_cast<uint64_t>(I.Imm);
    ++Counters.AlatChecks;
    if (Table.check(I.Rd, Addr, /*Clear=*/I.Op == MOp::LdCClr)) {
      // Hit: the register already holds the memory value; no latency.
      // (Functionally we refresh it, which is a no-op on a hit.)
      Regs[I.Rd] = read64(Addr);
      break;
    }
    ++Counters.AlatCheckFailures;
    uint64_t V = performLoad(Addr, I.FpVal);
    if (I.Op == MOp::LdCNc)
      Table.allocate(I.Rd, Addr);
    setReg(I.Rd, V, Cycle + LastLoadLatency - 1, true);
    break;
  }
  case MOp::St:
  case MOp::StA: {
    uint64_t Addr = S1() + static_cast<uint64_t>(I.Imm);
    write64(Addr, reg(I.Rs3));
    Mem.store(Addr);
    Table.storeNotify(Addr);
    ++Counters.RetiredStores;
    if (I.Op == MOp::StA) {
      if (!Config.UseStA) {
        trap("st.a executed on a machine without the st.a extension");
        break;
      }
      // The §2.5 extension: the store itself allocates the entry.
      Table.allocate(I.Rs2, Addr);
    }
    break;
  }
  case MOp::InvalaE:
    Table.invalidateRegister(I.Rs1);
    break;
  case MOp::AllocHeap: {
    int64_t Count = I.HasImm ? I.Imm : AsI(S1());
    if (Count < 1)
      Count = 1;
    uint64_t Bytes = (static_cast<uint64_t>(Count) * 8 + 63) & ~63ULL;
    SetAlu(HeapTop);
    HeapTop += Bytes;
    break;
  }
  case MOp::Print: {
    uint64_t Bits = reg(I.Rs1);
    if (I.FpVal)
      Output.push_back(formatString("%.6g", AsD(Bits)));
    else
      Output.push_back(formatString(
          "%lld", static_cast<long long>(AsI(Bits))));
    break;
  }

  case MOp::Br:
    CurBlock = I.Target;
    CurIndex = 0;
    takenBranch(Config.TakenBranchPenalty);
    return;
  case MOp::BrCond:
    if (S1() != 0) {
      CurBlock = I.Target;
      takenBranch(Config.TakenBranchPenalty);
    } else {
      CurBlock = I.FalseTarget;
      takenBranch(Config.TakenBranchPenalty);
    }
    CurIndex = 0;
    return;
  case MOp::ChkA:
    ++Counters.AlatChecks;
    if (Table.checkRegister(I.Rs1)) {
      CurBlock = I.Target;
    } else {
      ++Counters.AlatCheckFailures;
      ++Counters.ChkARecoveries;
      Cycle += Config.ChkMissPenalty;
      SlotsUsed = 0;
      CurBlock = I.Recovery;
    }
    CurIndex = 0;
    return;
  case MOp::Call: {
    if (CallStack.size() >= 512) {
      trap("call depth limit exceeded");
      return;
    }
    ReturnPoint RP{CurF, I.Target, 0, I.Callee->StackedRegsUsed, {}};
    RP.SavedStacked.reserve(2 * NumStackedRegs);
    for (unsigned R = FirstStackedReg;
         R < FirstStackedReg + NumStackedRegs; ++R)
      RP.SavedStacked.push_back(Regs[R]);
    for (unsigned R = FpRegBase + FirstStackedReg;
         R < FpRegBase + FirstStackedReg + NumStackedRegs; ++R)
      RP.SavedStacked.push_back(Regs[R]);
    CallStack.push_back(std::move(RP));
    rseCall(I.Callee->StackedRegsUsed);
    CurF = I.Callee;
    CurBlock = 0;
    CurIndex = 0;
    takenBranch(Config.CallPenalty);
    return;
  }
  case MOp::Ret: {
    if (CallStack.empty()) {
      Finished = true;
      return;
    }
    ReturnPoint RP = std::move(CallStack.back());
    CallStack.pop_back();
    rseReturn(RP.StackedRegs);
    size_t K = 0;
    for (unsigned R = FirstStackedReg;
         R < FirstStackedReg + NumStackedRegs; ++R, ++K) {
      Regs[R] = RP.SavedStacked[K];
      Ready[R] = Cycle;
    }
    for (unsigned R = FpRegBase + FirstStackedReg;
         R < FpRegBase + FirstStackedReg + NumStackedRegs; ++R, ++K) {
      Regs[R] = RP.SavedStacked[K];
      Ready[R] = Cycle;
    }
    CurF = RP.F;
    CurBlock = RP.Block;
    CurIndex = RP.Index;
    takenBranch(Config.CallPenalty);
    return;
  }
  case MOp::Nop:
    break;
  }
  ++CurIndex;
}

SimResult Machine::run() {
  SimResult Result;
  const MFunction *Main = M.findFunction("main");
  if (!Main) {
    Result.Error = "module has no main function";
    return Result;
  }
  Regs[RegSP] = interp::layout::StackBase;
  Regs[RegFP] = interp::layout::StackBase;
  CurF = Main;
  rseCall(Main->StackedRegsUsed);

  while (!Finished && !Trapped) {
    if (Counters.Instructions >= Config.MaxInstructions) {
      trap("instruction budget exhausted");
      break;
    }
    if (CurBlock >= CurF->numBlocks() ||
        CurIndex >= CurF->block(CurBlock).Instrs.size()) {
      trap(formatString("fell off block b%u of %s", CurBlock,
                        CurF->getName().c_str()));
      break;
    }
    execute(CurF->block(CurBlock).Instrs[CurIndex]);
  }

  Result.Output = std::move(Output);
  if (Trapped) {
    Result.Error = TrapMessage;
    return Result;
  }
  Result.Ok = true;
  Result.ExitValue = static_cast<int64_t>(Regs[RegRetInt]);
  Counters.Cycles = Cycle;
  Counters.L1Hits = Mem.l1Hits();
  Counters.L1Misses = Mem.l1Misses();
  Counters.L2Hits = Mem.l2Hits();
  Counters.L2Misses = Mem.l2Misses();
  Result.Counters = Counters;
  Result.Alat = Table.stats();
  return Result;
}

} // namespace

SimResult srp::arch::simulate(const codegen::MModule &M,
                              const SimConfig &Config) {
  Machine Mach(M, Config);
  return Mach.run();
}
